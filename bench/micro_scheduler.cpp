// Micro-benchmarks for the pooled event-arena Scheduler against the seed
// design it replaced (std::function entries in a priority_queue with
// unordered_set tombstones), which is reproduced verbatim below as
// `legacy::Scheduler`. The headline workload is the MAC's churn pattern:
// most events (ACK timeouts, backoff slots) are cancelled before firing.
//
// Run:  ./micro_scheduler --benchmark_filter=Churn
// Compare the pooled vs legacy time for the same /1000000 arg; the PR
// gate is pooled >= 2x faster on the 1M-event churn workload.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "sim/scheduler.h"
#include "util/units.h"

namespace legacy {

using ezflow::util::SimTime;

struct EventId {
    std::uint64_t value = 0;
    bool valid() const { return value != 0; }
};

/// The seed repo's scheduler, kept as the benchmark baseline.
class Scheduler {
public:
    SimTime now() const { return now_; }

    EventId schedule_at(SimTime at, std::function<void()> action)
    {
        if (at < now_) throw std::invalid_argument("legacy: time in the past");
        if (!action) throw std::invalid_argument("legacy: empty action");
        const std::uint64_t id = next_id_++;
        queue_.push(Entry{at, next_seq_++, id, std::move(action)});
        pending_ids_.insert(id);
        ++live_events_;
        return EventId{id};
    }

    EventId schedule_in(SimTime delay, std::function<void()> action)
    {
        return schedule_at(now_ + delay, std::move(action));
    }

    bool cancel(EventId id)
    {
        if (!id.valid()) return false;
        if (pending_ids_.erase(id.value) == 0) return false;
        cancelled_.insert(id.value);
        --live_events_;
        return true;
    }

    void run()
    {
        while (pop_and_run_next(std::numeric_limits<SimTime>::max())) {
        }
    }

    void run_until(SimTime until)
    {
        while (pop_and_run_next(until)) {
        }
        if (now_ < until) now_ = until;
    }

    std::size_t pending() const { return live_events_; }

private:
    struct Entry {
        SimTime at;
        std::uint64_t seq;
        std::uint64_t id;
        std::function<void()> action;
        bool operator>(const Entry& other) const
        {
            if (at != other.at) return at > other.at;
            return seq > other.seq;
        }
    };

    bool pop_and_run_next(SimTime limit)
    {
        while (!queue_.empty()) {
            const Entry& top = queue_.top();
            if (top.at > limit) return false;
            if (cancelled_.erase(top.id) > 0) {
                queue_.pop();
                continue;
            }
            Entry entry = std::move(const_cast<Entry&>(top));
            queue_.pop();
            pending_ids_.erase(entry.id);
            now_ = entry.at;
            --live_events_;
            entry.action();
            return true;
        }
        return false;
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::unordered_set<std::uint64_t> pending_ids_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_id_ = 1;
    std::size_t live_events_ = 0;
};

}  // namespace legacy

namespace {

using ezflow::util::SimTime;

/// The MAC-shaped churn workload: per iteration arm a timeout, cancel
/// 80% of them before expiry (an ACK arrived), and periodically advance
/// the clock so survivors fire. Same code drives both schedulers.
template <typename SchedulerT>
std::int64_t churn(SchedulerT& scheduler, int events)
{
    std::int64_t fired = 0;
    for (int i = 0; i < events; ++i) {
        const auto id =
            scheduler.schedule_in(200 + (i % 7) * 50, [&fired] { ++fired; });
        if (i % 5 != 0) scheduler.cancel(id);
        if (i % 16 == 15) scheduler.run_until(scheduler.now() + 40);
    }
    scheduler.run_until(scheduler.now() + 1000);
    return fired;
}

void BM_PooledChurn(benchmark::State& state)
{
    for (auto _ : state) {
        ezflow::sim::Scheduler scheduler;
        benchmark::DoNotOptimize(churn(scheduler, static_cast<int>(state.range(0))));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_LegacyChurn(benchmark::State& state)
{
    for (auto _ : state) {
        legacy::Scheduler scheduler;
        benchmark::DoNotOptimize(churn(scheduler, static_cast<int>(state.range(0))));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

/// Schedule-then-fire with no cancellation (the traffic-source pattern).
template <typename SchedulerT>
std::int64_t schedule_fire(SchedulerT& scheduler, int events)
{
    std::int64_t fired = 0;
    for (int i = 0; i < events; ++i)
        scheduler.schedule_at(scheduler.now() + i % 997, [&fired] { ++fired; });
    scheduler.run_until(scheduler.now() + 1000);
    return fired;
}

void BM_PooledScheduleFire(benchmark::State& state)
{
    for (auto _ : state) {
        ezflow::sim::Scheduler scheduler;
        benchmark::DoNotOptimize(schedule_fire(scheduler, static_cast<int>(state.range(0))));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_LegacyScheduleFire(benchmark::State& state)
{
    for (auto _ : state) {
        legacy::Scheduler scheduler;
        benchmark::DoNotOptimize(schedule_fire(scheduler, static_cast<int>(state.range(0))));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_PooledChurn)->Arg(1'000'000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LegacyChurn)->Arg(1'000'000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PooledScheduleFire)->Arg(1'000'000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LegacyScheduleFire)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// event queue churn, BOE matching, channel dispatch, CAA decisions and
// the model's pattern sampler. These bound the simulator's cost per
// simulated packet, which is what makes the paper-scale runs fast.

#include <benchmark/benchmark.h>

#include "analysis/experiment.h"
#include "core/boe.h"
#include "core/caa.h"
#include "mac/mac_queue.h"
#include "model/walk.h"
#include "net/packet.h"
#include "net/topologies.h"
#include "sim/scheduler.h"
#include "traffic/source.h"

namespace {

using namespace ezflow;

void BM_SchedulerScheduleRun(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Scheduler scheduler;
        std::int64_t sum = 0;
        for (int i = 0; i < state.range(0); ++i)
            scheduler.schedule_at(i % 997, [&sum] { ++sum; });
        scheduler.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(16384);

void BM_SchedulerCancel(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Scheduler scheduler;
        std::vector<sim::EventId> ids;
        ids.reserve(static_cast<std::size_t>(state.range(0)));
        for (int i = 0; i < state.range(0); ++i)
            ids.push_back(scheduler.schedule_at(i + 1, [] {}));
        for (const auto& id : ids) scheduler.cancel(id);
        scheduler.run();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerCancel)->Arg(4096);

void BM_BoeMatch(benchmark::State& state)
{
    core::BufferOccupancyEstimator boe(static_cast<std::size_t>(state.range(0)));
    std::uint64_t seq = 0;
    for (int i = 0; i < state.range(0); ++i)
        boe.on_packet_sent(net::packet_checksum(1, seq++, 0, 5, 1000));
    std::uint64_t heard = 0;
    for (auto _ : state) {
        boe.on_packet_sent(net::packet_checksum(1, seq++, 0, 5, 1000));
        benchmark::DoNotOptimize(boe.on_packet_overheard(net::packet_checksum(1, heard++, 0, 5, 1000)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoeMatch)->Arg(100)->Arg(1000);

void BM_CaaDecision(benchmark::State& state)
{
    core::ChannelAccessAdaptation caa(core::CaaConfig{}, nullptr);
    int occupancy = 0;
    for (auto _ : state) {
        caa.on_sample(occupancy);
        occupancy = (occupancy + 7) % 60;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CaaDecision);

void BM_PacketChecksum(benchmark::State& state)
{
    std::uint64_t seq = 0;
    for (auto _ : state) benchmark::DoNotOptimize(net::packet_checksum(1, seq++, 0, 5, 1000));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketChecksum);

void BM_ModelStep(benchmark::State& state)
{
    model::RandomWalkModel::Config config;
    config.hops = static_cast<int>(state.range(0));
    model::RandomWalkModel walk(config, util::Rng(7));
    for (auto _ : state) benchmark::DoNotOptimize(walk.step());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelStep)->Arg(4)->Arg(8);

void BM_FourHopSimulatedSecond(benchmark::State& state)
{
    // Cost of simulating one second of the saturated 4-hop chain.
    for (auto _ : state) {
        state.PauseTiming();
        net::Scenario scenario = net::make_line(4, 3600.0, 7);
        analysis::ExperimentOptions options;
        options.mode = analysis::Mode::kEzFlow;
        analysis::Experiment exp(std::move(scenario), options);
        state.ResumeTiming();
        exp.run_until_s(1.0 * static_cast<double>(state.range(0)));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FourHopSimulatedSecond)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// event queue churn, BOE matching, channel dispatch, CAA decisions and
// the model's pattern sampler. These bound the simulator's cost per
// simulated packet, which is what makes the paper-scale runs fast.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "analysis/experiment.h"
#include "core/boe.h"
#include "core/caa.h"
#include "mac/contention.h"
#include "mac/dcf.h"
#include "mac/mac_queue.h"
#include "model/walk.h"
#include "net/packet.h"
#include "net/routing.h"
#include "net/topologies.h"
#include "phy/channel.h"
#include "sim/event_fn.h"
#include "sim/scheduler.h"
#include "traffic/source.h"

namespace {

using namespace ezflow;

void BM_SchedulerScheduleRun(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Scheduler scheduler;
        std::int64_t sum = 0;
        for (int i = 0; i < state.range(0); ++i)
            scheduler.schedule_at(i % 997, [&sum] { ++sum; });
        scheduler.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(16384);

void BM_SchedulerCancel(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Scheduler scheduler;
        std::vector<sim::EventId> ids;
        ids.reserve(static_cast<std::size_t>(state.range(0)));
        for (int i = 0; i < state.range(0); ++i)
            ids.push_back(scheduler.schedule_at(i + 1, [] {}));
        for (const auto& id : ids) scheduler.cancel(id);
        scheduler.run();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerCancel)->Arg(4096);

void BM_BoeMatch(benchmark::State& state)
{
    core::BufferOccupancyEstimator boe(static_cast<std::size_t>(state.range(0)));
    std::uint64_t seq = 0;
    for (int i = 0; i < state.range(0); ++i)
        boe.on_packet_sent(net::packet_checksum(1, seq++, 0, 5, 1000));
    std::uint64_t heard = 0;
    for (auto _ : state) {
        boe.on_packet_sent(net::packet_checksum(1, seq++, 0, 5, 1000));
        benchmark::DoNotOptimize(boe.on_packet_overheard(net::packet_checksum(1, heard++, 0, 5, 1000)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoeMatch)->Arg(100)->Arg(1000);

void BM_CaaDecision(benchmark::State& state)
{
    core::ChannelAccessAdaptation caa(core::CaaConfig{}, nullptr);
    int occupancy = 0;
    for (auto _ : state) {
        caa.on_sample(occupancy);
        occupancy = (occupancy + 7) % 60;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CaaDecision);

void BM_PacketChecksum(benchmark::State& state)
{
    std::uint64_t seq = 0;
    for (auto _ : state) benchmark::DoNotOptimize(net::packet_checksum(1, seq++, 0, 5, 1000));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketChecksum);

void BM_ModelStep(benchmark::State& state)
{
    model::RandomWalkModel::Config config;
    config.hops = static_cast<int>(state.range(0));
    model::RandomWalkModel walk(config, util::Rng(7));
    for (auto _ : state) benchmark::DoNotOptimize(walk.step());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelStep)->Arg(4)->Arg(8);

void BM_RoutingLookup(benchmark::State& state)
{
    // Per-forwarded-packet routing cost at 1k flows x 64-hop paths:
    // Arg(0) scans the map-based StaticRouting builder (O(log flows) +
    // O(hops), the pre-PR-4 hot path), Arg(1) probes the compiled
    // RoutingTable the forwarding plane now uses (O(1)).
    const bool compiled = state.range(0) != 0;
    constexpr int kFlows = 1000;
    constexpr int kHops = 64;
    net::StaticRouting routing;
    std::vector<net::NodeId> path;
    for (int n = 0; n <= kHops; ++n) path.push_back(n);
    for (int f = 0; f < kFlows; ++f) routing.add_flow(f, path);
    const net::RoutingTable table(routing);
    int flow = 0;
    net::NodeId node = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(compiled ? table.next_hop(flow, node)
                                          : routing.next_hop(flow, node));
        flow = (flow + 7) % kFlows;
        node = (node + 13) % kHops;  // stays short of the destination
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingLookup)->Arg(0)->Arg(1);

net::Packet bench_packet(std::uint64_t seq)
{
    net::Packet p;
    p.uid = seq;
    p.seq = seq;
    p.flow_id = 0;
    p.bytes = 1000;
    return p;
}

/// Saturated single-hop contention bed: `nodes` DcfMacs in mutual carrier
/// sense, each flooding its neighbour, CWmin forced to `cw` (EZ-Flow
/// adapts CWmin within [2^4, 2^15], so large windows are the production
/// regime — and the regime where per-slot backoff events dominate).
struct ContentionBed {
    sim::Scheduler scheduler;
    phy::Channel channel;
    mac::ContentionCoordinator coordinator{scheduler};
    std::vector<std::unique_ptr<phy::NodePhy>> phys;
    std::vector<std::unique_ptr<mac::DcfMac>> macs;

    struct NullCallbacks final : mac::MacCallbacks {
        void mac_rx(const phy::Frame&) override {}
        void mac_sniffed(const phy::Frame&) override {}
        void mac_first_tx(const mac::QueueKey&, const net::Packet&) override {}
        void mac_tx_success(const mac::QueueKey&, const net::Packet&) override {}
        void mac_tx_drop(const mac::QueueKey&, const net::Packet&) override {}
    } callbacks;
    std::uint64_t next_seq = 0;

    ContentionBed(int nodes, int cw) : channel(scheduler, util::Rng(7), phy::PhyParams{})
    {
        mac::MacParams mp;
        mp.cw_min = cw;
        for (int i = 0; i < nodes; ++i) {
            phys.push_back(
                std::make_unique<phy::NodePhy>(i, phy::Position{i * 10.0, 0.0}, scheduler));
            channel.attach(*phys.back());
            macs.push_back(std::make_unique<mac::DcfMac>(*phys.back(), scheduler, coordinator,
                                                         util::Rng(1000 + i), mp));
            macs.back()->set_callbacks(&callbacks);
        }
        top_up();
    }

    void top_up()
    {
        const int nodes = static_cast<int>(macs.size());
        for (int i = 0; i < nodes; ++i) {
            const mac::QueueKey key{(i + 1) % nodes, true};
            while (macs[i]->enqueue(key, bench_packet(next_seq++))) {
            }
        }
        scheduler.schedule_in(10 * util::kMillisecond, [this] { top_up(); });
    }
};

void BM_BackoffContention(benchmark::State& state)
{
    // Simulated-time throughput of N contending MACs. items = simulated
    // microseconds; the events counter exposes how many scheduler events
    // one simulated second of contention costs (the quantity the batched
    // coordinator collapses).
    const int nodes = static_cast<int>(state.range(0));
    const int cw = static_cast<int>(state.range(1));
    const util::SimTime sim_us = 2 * util::kSecond;
    std::uint64_t events = 0;
    std::uint64_t attempts = 0;
    for (auto _ : state) {
        state.PauseTiming();
        ContentionBed bed(nodes, cw);
        state.ResumeTiming();
        bed.scheduler.run_until(sim_us);
        events += bed.scheduler.processed();
        for (const auto& mac : bed.macs) attempts += mac->data_attempts();
    }
    state.SetItemsProcessed(state.iterations() * sim_us);
    state.counters["events"] =
        benchmark::Counter(static_cast<double>(events) / static_cast<double>(state.iterations()));
    state.counters["events_per_s"] = benchmark::Counter(static_cast<double>(events),
                                                        benchmark::Counter::kIsRate);
    state.counters["tx_attempts"] =
        benchmark::Counter(static_cast<double>(attempts) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_BackoffContention)
    ->Args({8, 32})
    ->Args({8, 1024})
    ->Args({16, 1024})
    ->Args({8, 16384})
    ->Unit(benchmark::kMillisecond);

void BM_FrameFanout(benchmark::State& state)
{
    // Per-receiver cost of fanning one transmission out to 64 signal-end
    // events: construct, invoke and destroy the event batch. Arg(0)
    // reproduces the pre-PR-5 shape — every per-receiver event captures
    // the full Frame (payload Packet included, ~96 B) by value, which
    // also overflows the EventFn inline buffer and heap-allocates per
    // signal. Arg(1) is the single-copy pipeline — one pooled
    // FrameRecord per transmission, every event captures a pointer-sized
    // FrameRef and stays inline. The shared scheduler arena cost is kept
    // out so the ratio isolates exactly what the fan-out refactor
    // changed.
    const bool single_copy = state.range(0) != 0;
    constexpr int kReceivers = 64;
    phy::FramePool pool;
    phy::Frame proto;
    proto.type = phy::FrameType::kData;
    proto.tx_node = 0;
    proto.rx_node = 1;
    proto.has_packet = true;
    proto.packet = bench_packet(1);
    std::uint64_t sink = 0;
    std::vector<sim::EventFn> batch;
    batch.reserve(kReceivers);
    const std::uint64_t copies_before = phy::Frame::copies();
    bool inline_events = true;
    for (auto _ : state) {
        if (single_copy) {
            const phy::FrameRef ref = pool.make(phy::Frame(proto));
            for (int r = 0; r < kReceivers; ++r)
                batch.emplace_back([ref = ref, &sink] {
                    sink += static_cast<std::uint64_t>(ref->packet.bytes);
                });
        } else {
            for (int r = 0; r < kReceivers; ++r)
                batch.emplace_back([frame = proto, &sink] {
                    sink += static_cast<std::uint64_t>(frame.packet.bytes);
                });
        }
        inline_events = inline_events && batch.front().is_inline();
        for (sim::EventFn& event : batch) event();
        batch.clear();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * kReceivers);
    state.counters["frame_copies_per_tx"] =
        benchmark::Counter(static_cast<double>(phy::Frame::copies() - copies_before) /
                           static_cast<double>(state.iterations()));
    state.counters["inline_events"] = benchmark::Counter(inline_events ? 1.0 : 0.0);
}
BENCHMARK(BM_FrameFanout)->Arg(0)->Arg(1);

void BM_SaturatedSource(benchmark::State& state)
{
    // Scheduler events needed per simulated second when a greedy CBR
    // source offers 10x the link capacity. Arg(0): the per-period
    // reference burns one emit event per nominal packet (plus the drop);
    // Arg(1): the backpressure gate parks the source on queue-vacancy
    // callbacks, so only accepted generations cost events.
    const bool gated = state.range(0) != 0;
    const util::SimTime sim_us = 2 * util::kSecond;
    std::uint64_t events = 0;
    std::uint64_t generated = 0;
    for (auto _ : state) {
        state.PauseTiming();
        net::Scenario scenario = net::make_line(1, 1000.0, 7);
        net::Network& network = *scenario.network;
        traffic::CbrSource source(network, 0, 1000, 8e6);
        source.set_backpressure_gating(gated);
        source.activate(0, sim_us);
        state.ResumeTiming();
        network.run_until(sim_us);
        events += network.scheduler().processed();
        generated += source.stats().generated;
    }
    state.SetItemsProcessed(state.iterations() * sim_us);
    state.counters["events"] =
        benchmark::Counter(static_cast<double>(events) / static_cast<double>(state.iterations()));
    state.counters["events_per_s"] =
        benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
    state.counters["generated"] = benchmark::Counter(static_cast<double>(generated) /
                                                     static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SaturatedSource)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ChannelFanout(benchmark::State& state)
{
    // Per-transmission delivery cost vs node count on a 200 m-spaced line:
    // carrier sense reaches ~2 hops either side, so the reachability cull
    // keeps the cost flat as the line grows.
    const int nodes = static_cast<int>(state.range(0));
    sim::Scheduler scheduler;
    phy::Channel channel(scheduler, util::Rng(7), phy::PhyParams{});
    std::vector<std::unique_ptr<phy::NodePhy>> phys;
    for (int i = 0; i < nodes; ++i) {
        phys.push_back(std::make_unique<phy::NodePhy>(i, phy::Position{i * 200.0, 0.0}, scheduler));
        channel.attach(*phys.back());
    }
    phy::Frame frame;
    frame.type = phy::FrameType::kData;
    frame.tx_node = nodes / 2;
    frame.has_packet = true;
    frame.packet = bench_packet(1);
    for (auto _ : state) {
        phys[static_cast<std::size_t>(nodes) / 2]->start_tx(frame);
        scheduler.run();  // drain the signal-end and tx-end events
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["reachable"] = benchmark::Counter(
        static_cast<double>(channel.reachable_count(static_cast<net::NodeId>(nodes / 2))));
}
BENCHMARK(BM_ChannelFanout)->Arg(16)->Arg(64)->Arg(256);

void BM_FourHopSimulatedSecond(benchmark::State& state)
{
    // Cost of simulating one second of the saturated 4-hop chain.
    for (auto _ : state) {
        state.PauseTiming();
        net::Scenario scenario = net::make_line(4, 3600.0, 7);
        analysis::ExperimentOptions options;
        options.mode = analysis::Mode::kEzFlow;
        analysis::Experiment exp(std::move(scenario), options);
        state.ResumeTiming();
        exp.run_until_s(1.0 * static_cast<double>(state.range(0)));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FourHopSimulatedSecond)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Figure 1: buffer evolution of the relay nodes in 3- and 4-hop chains
// under plain IEEE 802.11. The 3-hop network is stable; the 4-hop network
// is turbulent, with the first relay's buffer building up to saturation.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

void run_chain(const BenchArgs& args, int hops)
{
    const double duration_s = 1800.0 * args.scale;
    ExperimentOptions options;
    options.mode = Mode::kBaseline80211;
    Experiment exp(net::make_line(hops, duration_s, args.seed), options);
    exp.run();

    std::printf("\n%d-hop chain, IEEE 802.11, %.0f s:\n", hops, duration_s);
    util::Table table({"relay", "mean buffer [pkts]", "max buffer [pkts]", "drops"});
    const double warmup = 0.2 * duration_s;
    std::vector<std::pair<std::string, const util::TimeSeries*>> series;
    for (int n = 1; n < hops; ++n) {
        table.add_row({"N" + std::to_string(n),
                       util::Table::num(exp.buffers().mean_occupancy(
                           n, util::from_seconds(warmup), util::from_seconds(duration_s + 5))),
                       util::Table::num(exp.buffers().max_occupancy(n), 0),
                       std::to_string(exp.network().node(n).forward_queue_drops())});
        series.emplace_back("N" + std::to_string(n), &exp.buffers().trace(n));
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("end-to-end goodput: %.1f kb/s\n",
                exp.summarize(0, warmup, duration_s).mean_kbps);
    maybe_dump_series(args, "fig01_" + std::to_string(hops) + "hop", series);
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.12);
    print_header("fig01_instability: relay buffers, 3-hop vs 4-hop chain",
                 "Fig. 1 — 3-hop stable, 4-hop first relay saturates");
    run_chain(args, 3);
    run_chain(args, 4);
    std::printf(
        "\nExpected shape (paper): 3-hop relay buffers stay bounded well below the\n"
        "50-packet cap; the 4-hop chain's first relay rides the cap and drops packets.\n");
    return 0;
}

// Ablation (paper's conclusion): the routing-layer rate-pacing variant of
// EZ-Flow vs the CWmin variant. The conclusion proposes pacing for dense
// deployments where per-successor MAC queues run out; this bench checks
// that pacing achieves the same stabilization on the 4-hop chain, with
// the backlog held above the MAC instead of inside it.

#include "bench_common.h"
#include "core/pacer.h"
#include "traffic/sink.h"
#include "traffic/source.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

struct Row {
    std::string policy;
    double goodput;
    double mac_b1;
    double delay_s;
};

Row run_cw_variant(const BenchArgs& args, Mode mode, double duration_s)
{
    ExperimentOptions options;
    options.mode = mode;
    Experiment exp(net::make_line(4, duration_s, args.seed), options);
    exp.run();
    const double from = 0.5 * duration_s;
    const auto summary = exp.summarize(0, from, duration_s);
    return Row{mode_name(mode), summary.mean_kbps,
               exp.buffers().mean_occupancy(1, util::from_seconds(from),
                                            util::from_seconds(duration_s)),
               summary.mean_delay_s};
}

Row run_paced(const BenchArgs& args, double duration_s)
{
    net::Scenario scenario = net::make_line(4, duration_s, args.seed);
    net::Network& network = *scenario.network;
    auto agents = core::install_paced_ezflow(network, core::PacedEzFlowAgent::Options{});
    traffic::Sink sink(network);
    sink.attach_flow(0);
    analysis::BufferTracer tracer(network, {1}, 100 * util::kMillisecond);
    tracer.start();
    traffic::CbrSource source(network, 0, 1000, 2e6);
    source.activate(util::from_seconds(5), util::from_seconds(duration_s));
    network.run_until(util::from_seconds(duration_s));
    const double from = 0.5 * duration_s;
    const auto& rec = sink.flow(0);
    return Row{"EZ-flow (paced)", sink.goodput_kbps(0, util::from_seconds(from),
                                                    util::from_seconds(duration_s)),
               tracer.mean_occupancy(1, util::from_seconds(from), util::from_seconds(duration_s)),
               rec.delay_series.mean_between(util::from_seconds(from),
                                             util::from_seconds(duration_s)) /
                   static_cast<double>(util::kSecond)};
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.1);
    const double duration_s = 4000.0 * args.scale;
    print_header("ablation_pacer: CWmin control vs routing-layer rate pacing",
                 "Conclusion — the pacing variant for dense neighbourhoods");
    util::Table table({"policy", "goodput [kb/s]", "MAC b1 [pkts]", "delay [s]"});
    for (const Row& r : {run_cw_variant(args, Mode::kBaseline80211, duration_s),
                         run_cw_variant(args, Mode::kEzFlow, duration_s),
                         run_paced(args, duration_s)}) {
        table.add_row({r.policy, util::Table::num(r.goodput, 1), util::Table::num(r.mac_b1, 1),
                       util::Table::num(r.delay_s, 2)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: both EZ-flow variants drain the first relay's MAC buffer\n"
        "that plain 802.11 saturates; the paced variant keeps its backlog in the\n"
        "routing layer without touching any MAC parameter at all.\n");
    return 0;
}

// Figure 12 / Theorem 1: the 4-hop random walk on Z^3. Two experiments:
//  (i) trajectories of the total backlog h(b) with fixed equal windows
//      (divergent) vs EZ-Flow dynamics (bounded) — the instability of [9]
//      and the stabilization of Theorem 1, empirically;
//  (ii) the Foster-Lyapunov drift E[h(b(n+k)) - h(b(n))] per region with
//      the paper's look-ahead horizons k(region), which must be negative
//      outside the finite set S.

#include "bench_common.h"
#include "model/lyapunov.h"
#include "model/region.h"
#include "model/walk.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;

void trajectories(const BenchArgs& args)
{
    const std::uint64_t slots = static_cast<std::uint64_t>(300000 * std::max(args.scale, 0.05));
    std::printf("\n(i) total backlog h(b) along the walk (%llu slots):\n",
                static_cast<unsigned long long>(slots));
    util::Table table({"dynamics", "h @25%", "h @50%", "h @75%", "h @end", "delivered"});
    for (const bool ezflow : {false, true}) {
        model::RandomWalkModel::Config config;
        config.hops = 4;
        config.ezflow_enabled = ezflow;
        if (!ezflow) config.initial_cw = {32, 32, 32, 32};
        model::RandomWalkModel walk(config, util::Rng(args.seed));
        std::vector<long long> checkpoints;
        for (int quarter = 1; quarter <= 4; ++quarter) {
            walk.run(slots / 4);
            checkpoints.push_back(walk.total_backlog());
        }
        table.add_row({ezflow ? "EZ-flow (Eq. 2)" : "fixed cw = 32",
                       std::to_string(checkpoints[0]), std::to_string(checkpoints[1]),
                       std::to_string(checkpoints[2]), std::to_string(checkpoints[3]),
                       std::to_string(walk.delivered())});
    }
    std::printf("%s", table.to_string().c_str());
}

void drifts(const BenchArgs& args)
{
    std::printf("\n(ii) Foster-Lyapunov drift per region (EZ-flow stable windows):\n");
    model::RandomWalkModel::Config config;
    config.hops = 4;
    config.ezflow_enabled = true;
    model::LyapunovEstimator estimator(config, {1 << 9, 1 << 4, 1 << 4, 1 << 4},
                                       util::Rng(args.seed));
    const long long big = 60;
    const std::vector<std::pair<int, model::BufferVector>> states = {
        {model::kRegionB, {big, 0, 0}},   {model::kRegionC, {0, big, 0}},
        {model::kRegionD, {0, 0, big}},   {model::kRegionE, {big, big, 0}},
        {model::kRegionF, {big, 0, big}}, {model::kRegionG, {0, big, big}},
        {model::kRegionH, {big, big, big}},
    };
    const int samples = static_cast<int>(8000 * std::max(args.scale, 0.05));
    util::Table table({"region", "horizon k", "mean drift", "std err", "verdict"});
    for (const auto& [region, relays] : states) {
        const int k = model::LyapunovEstimator::paper_horizon(region);
        const auto d = estimator.estimate(relays, k, samples);
        table.add_row({model::region_name(region, 3), std::to_string(k),
                       util::Table::num(d.mean_drift, 3), util::Table::num(d.stderr_drift, 3),
                       d.mean_drift + 2 * d.stderr_drift < 0.05 ? "negative (stable)"
                                                                : "NOT negative"});
    }
    std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 1.0);
    print_header("fig12_lyapunov_walk: random-walk stability of the 4-hop model",
                 "Fig. 12 / Theorem 1 — EZ-flow keeps the walk near the origin");
    trajectories(args);
    drifts(args);
    std::printf(
        "\nExpected shape: the fixed-window walk's backlog grows roughly linearly in\n"
        "time (instability of [9]); the EZ-flow walk stays within tens of packets,\n"
        "and the per-region drifts of h are negative — Foster's criterion, i.e.\n"
        "Theorem 1.\n");
    return 0;
}

// Thin launcher kept for muscle memory: the implementation now lives in
// the figure registry (src/cli/figures/) under the name "fig12".
// Equivalent to `ezflow run fig12`; flags --scale/--seed/--seeds/
// --threads/--csv/--out/--smoke pass through.

#include "cli/app.h"

int main(int argc, char** argv)
{
    return ezflow::cli::run_figure_main("fig12", argc, argv);
}

// Figure 7: end-to-end delay over time of flows F1 and F2 in scenario 1.
// Paper: 802.11 suffers ~4.1 s single-flow delay (5.8 s with both flows);
// EZ-Flow drops it to ~0.2 s with two transient peaks at the traffic
// matrix changes (flow F2 arriving, and the post-arrival re-convergence).
// Swept over --seeds root seeds in parallel; cells are mean +/- 95% CI.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

void report(const BenchArgs& args, const SweepResult& result, Mode mode, double transient_to_s)
{
    std::printf("\nscenario 1, %s:\n", mode_name(mode).c_str());
    util::Table table({"period", "F1 mean delay [s]", "F1 max [s]", "F2 mean delay [s]"});
    const char* labels[] = {"F1 alone", "F1 + F2", "F1 alone again"};
    for (std::size_t w = 0; w < 3; ++w) {
        const WindowAggregate& window = result.windows[w];
        table.add_row({labels[w], with_ci(window.flows[0].mean_delay_s, 2),
                       with_ci(window.flows[0].max_delay_s, 2),
                       window.flows.size() > 1 ? with_ci(window.flows[1].mean_delay_s, 2)
                                               : std::string("-")});
    }
    std::printf("%s", table.to_string().c_str());

    // The transient right after F2 arrives (the paper's delay peak),
    // measured as its own window (index 3).
    std::printf("transient after F2 arrival (to %.0f s): F1 max delay %s s\n", transient_to_s,
                with_ci(result.windows[3].flows[0].max_delay_s, 2).c_str());
    print_sweep_footer(args, result);

    if (!result.experiments.empty()) {
        Experiment& first = *result.experiments.front();
        maybe_dump_series(args,
                          std::string("fig07_") + (mode == Mode::kEzFlow ? "ezflow" : "80211"),
                          {{"F1", &first.sink().flow(1).delay_series},
                           {"F2", &first.sink().flow(2).delay_series}});
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.3);
    print_header("fig07_scenario1_delay: end-to-end delay vs time, 2-flow merge",
                 "Fig. 7 — 802.11 ~4-6 s; EZ-flow ~0.2 s with transient peaks at load changes");
    const Scenario1Periods periods(args.scale);
    std::vector<SweepWindow> windows = periods.windows();
    const double w2 = 0.3 * (periods.p2_end - periods.p2_begin);
    windows.push_back(SweepWindow{"transient", periods.p2_begin, periods.p2_begin + w2, {1, 2}});
    const std::vector<Mode> modes = {Mode::kBaseline80211, Mode::kEzFlow};
    const auto results =
        sweep_modes(args, ScenarioSpec::scenario1(args.scale), modes, std::move(windows));
    for (std::size_t m = 0; m < modes.size(); ++m)
        report(args, results[m], modes[m], periods.p2_begin + w2);
    std::printf(
        "\nExpected shape: an order-of-magnitude delay reduction under EZ-flow in\n"
        "every period; a visible transient peak right after F2 joins, quickly damped\n"
        "as the contention windows re-converge.\n");
    return 0;
}

// Figure 7: end-to-end delay over time of flows F1 and F2 in scenario 1.
// Paper: 802.11 suffers ~4.1 s single-flow delay (5.8 s with both flows);
// EZ-Flow drops it to ~0.2 s with two transient peaks at the traffic
// matrix changes (flow F2 arriving, and the post-arrival re-convergence).

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

void report(const BenchArgs& args, Mode mode)
{
    const Scenario1Periods periods(args.scale);
    auto exp = run_scenario1(args, mode);

    std::printf("\nscenario 1, %s:\n", mode_name(mode).c_str());
    util::Table table({"period", "F1 mean delay [s]", "F1 max [s]", "F2 mean delay [s]"});
    auto row = [&](const char* label, double from, double to, bool f2_active) {
        const auto f1 = exp->summarize(1, from, to);
        const auto f2 = exp->summarize(2, from, to);
        table.add_row({label, util::Table::num(f1.mean_delay_s, 2),
                       util::Table::num(f1.max_delay_s, 2),
                       f2_active ? util::Table::num(f2.mean_delay_s, 2) : std::string("-")});
    };
    const double w1 = 0.3 * (periods.p1_end - periods.p1_begin);
    const double w2 = 0.3 * (periods.p2_end - periods.p2_begin);
    row("F1 alone", periods.p1_begin + w1, periods.p1_end, false);
    row("F1 + F2", periods.p2_begin + w2, periods.p2_end, true);
    row("F1 alone again", periods.p3_begin + w2, periods.p3_end, false);
    std::printf("%s", table.to_string().c_str());

    // The transient right after F2 arrives (the paper's delay peak).
    const auto transient = exp->summarize(1, periods.p2_begin, periods.p2_begin + w2);
    std::printf("transient after F2 arrival: F1 max delay %.2f s\n", transient.max_delay_s);

    maybe_dump_series(args, std::string("fig07_") + (mode == Mode::kEzFlow ? "ezflow" : "80211"),
                      {{"F1", &exp->sink().flow(1).delay_series},
                       {"F2", &exp->sink().flow(2).delay_series}});
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.3);
    print_header("fig07_scenario1_delay: end-to-end delay vs time, 2-flow merge",
                 "Fig. 7 — 802.11 ~4-6 s; EZ-flow ~0.2 s with transient peaks at load changes");
    report(args, Mode::kBaseline80211);
    report(args, Mode::kEzFlow);
    std::printf(
        "\nExpected shape: an order-of-magnitude delay reduction under EZ-flow in\n"
        "every period; a visible transient peak right after F2 joins, quickly damped\n"
        "as the contention windows re-converge.\n");
    return 0;
}

// Microbenchmarks for the pluggable-PHY hot paths: per-link model lookup
// (the flat LinkTable vs the ordered map it replaced), interference-ledger
// maintenance at signal edges, the cumulative-SINR capture decision, and
// the Jakes fading gain evaluation. The LinkTable ratio is the number the
// PR-7 container swap is accountable to.

#include <benchmark/benchmark.h>

#include <map>
#include <utility>
#include <vector>

#include "phy/frame.h"
#include "phy/link_table.h"
#include "phy/phy.h"
#include "phy/propagation.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace {

using namespace ezflow;
using phy::LinkTable;

/// Directed links of a synthetic topology: every node talks to its
/// neighbours within two hops either side, the shape the Channel's
/// per-receiver lookups actually see on the chain/grid workloads.
std::vector<std::pair<net::NodeId, net::NodeId>> synthetic_links(int nodes)
{
    std::vector<std::pair<net::NodeId, net::NodeId>> links;
    for (int tx = 0; tx < nodes; ++tx)
        for (int d = -2; d <= 2; ++d) {
            const int rx = tx + d;
            if (d == 0 || rx < 0 || rx >= nodes) continue;
            links.emplace_back(tx, rx);
        }
    return links;
}

void BM_LinkLookupFlat(benchmark::State& state)
{
    const auto links = synthetic_links(static_cast<int>(state.range(0)));
    LinkTable<double> table;
    for (const auto& [tx, rx] : links) table.insert_or_assign(tx, rx, 0.25);
    double sum = 0.0;
    for (auto _ : state) {
        for (const auto& [tx, rx] : links) {
            const double* value = table.find(tx, rx);
            if (value != nullptr) sum += *value;
            // Misses are as hot as hits: most receivers have no model.
            benchmark::DoNotOptimize(table.find(rx + 1, tx));
        }
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * links.size()));
}
BENCHMARK(BM_LinkLookupFlat)->Arg(16)->Arg(256);

void BM_LinkLookupMap(benchmark::State& state)
{
    // The container the LinkTable replaced: ordered map with a pair key.
    const auto links = synthetic_links(static_cast<int>(state.range(0)));
    std::map<std::pair<net::NodeId, net::NodeId>, double> table;
    for (const auto& [tx, rx] : links) table[{tx, rx}] = 0.25;
    double sum = 0.0;
    for (auto _ : state) {
        for (const auto& [tx, rx] : links) {
            const auto it = table.find({tx, rx});
            if (it != table.end()) sum += it->second;
            benchmark::DoNotOptimize(table.find({rx + 1, tx}));
        }
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * links.size()));
}
BENCHMARK(BM_LinkLookupMap)->Arg(16)->Arg(256);

void BM_LedgerUpdate(benchmark::State& state)
{
    // Interference-ledger maintenance: signal_start/signal_end edges on a
    // node that is neither transmitting nor locked, the pure bookkeeping
    // cost every overheard transmission pays at every receiver in range.
    sim::Scheduler scheduler;
    phy::NodePhy node(0, phy::Position{0.0, 0.0}, scheduler);
    phy::Frame frame;
    frame.type = phy::FrameType::kData;
    constexpr int kBatch = 64;
    std::uint64_t id = 1;
    for (auto _ : state) {
        for (int i = 0; i < kBatch; ++i) {
            phy::RxEvent rx;
            rx.signal_id = id + static_cast<std::uint64_t>(i);
            rx.frame = &frame;
            rx.power_w = 1e-10;
            rx.sensed = true;
            node.signal_start(rx);
        }
        for (int i = kBatch - 1; i >= 0; --i)
            node.signal_end(id + static_cast<std::uint64_t>(i), frame);
        id += kBatch;
        benchmark::DoNotOptimize(node.interference_ledger_w());
    }
    // One item = one ledger update (a start or an end edge).
    state.SetItemsProcessed(state.iterations() * 2 * kBatch);
}
BENCHMARK(BM_LedgerUpdate);

void BM_SinrCaptureDecision(benchmark::State& state)
{
    // Cumulative-SINR capture test rate: a locked reception re-evaluated
    // against the exact interference sum at every interferer arrival.
    sim::Scheduler scheduler;
    phy::NodePhy node(0, phy::Position{0.0, 0.0}, scheduler);
    phy::Frame frame;
    frame.type = phy::FrameType::kData;
    constexpr int kInterferers = 32;
    std::uint64_t id = 1;
    for (auto _ : state) {
        phy::RxEvent lock;
        lock.signal_id = id;
        lock.frame = &frame;
        lock.power_w = 6.25e-10;
        lock.noise_w = 1e-12;
        lock.capture_threshold = 10.0;
        lock.in_delivery = true;
        lock.sensed = true;
        node.signal_start(lock);
        for (int i = 1; i <= kInterferers; ++i) {
            phy::RxEvent rx;
            rx.signal_id = id + static_cast<std::uint64_t>(i);
            rx.frame = &frame;
            rx.power_w = 1e-12;  // weak: the lock survives every re-check
            rx.sensed = true;
            node.signal_start(rx);
        }
        for (int i = kInterferers; i >= 1; --i)
            node.signal_end(id + static_cast<std::uint64_t>(i), frame);
        node.signal_end(id, frame);
        id += kInterferers + 1;
    }
    benchmark::DoNotOptimize(node.frames_decoded());
    // One item = one capture decision (lock + one per interferer arrival).
    state.SetItemsProcessed(state.iterations() * (kInterferers + 1));
}
BENCHMARK(BM_SinrCaptureDecision);

void BM_JakesGain(benchmark::State& state)
{
    // Per-transmission fading evaluation: one |h(t)|^2 over the default
    // 16-oscillator ray bank (the extra cost every transmit pays per
    // reachable receiver when fading is installed).
    phy::JakesFading model(std::make_unique<phy::TwoRayReference>(), /*doppler_hz=*/10.0,
                           /*seed=*/7);
    util::SimTime now = 0;
    double sum = 0.0;
    for (auto _ : state) {
        sum += model.power_gain(0, 1, now);
        now += 8480;  // one data-frame airtime apart
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JakesGain);

}  // namespace

BENCHMARK_MAIN();

// Ablation (Sec. 3.3): the CAA averages 50 BOE samples per decision. This
// sweep varies the window to expose the averaging-vs-reactivity trade-off
// on a load-changing workload (second flow joins and leaves, as in
// scenario 1's timeline).

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.1);
    const double duration_s = 6000.0 * args.scale;
    print_header("ablation_sample_window: CAA decision window sweep",
                 "Sec. 3.3 / Alg. 1 — decisions every 50 BOE samples");
    util::Table table({"window", "b1 mean [pkts]", "goodput [kb/s]", "delay [s]",
                       "cw changes @src"});
    for (const int window : {5, 20, 50, 200, 1000}) {
        ExperimentOptions options;
        options.mode = Mode::kEzFlow;
        options.caa.sample_window = window;
        // F2 joins for the middle third of the run.
        net::Scenario scenario = net::make_testbed(5.0, duration_s, duration_s / 3.0,
                                                   2.0 * duration_s / 3.0, args.seed);
        Experiment exp(std::move(scenario), options);
        exp.run_until_s(duration_s);
        const double warmup = 0.15 * duration_s;
        const auto summary = exp.summarize(1, warmup, duration_s);
        const auto* agent = exp.agent(0);
        std::uint64_t changes = 0;
        if (agent != nullptr) {
            for (const auto& [succ, state] : agent->successors())
                changes += state->caa->increases() + state->caa->decreases();
        }
        table.add_row(
            {std::to_string(window),
             util::Table::num(exp.buffers().mean_occupancy(1, util::from_seconds(warmup),
                                                           util::from_seconds(duration_s)),
                              1),
             util::Table::num(summary.mean_kbps, 1), util::Table::num(summary.mean_delay_s, 2),
             std::to_string(changes)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: tiny windows over-react (more cw churn for no gain);\n"
        "huge windows adapt sluggishly when the second flow joins. The paper's 50\n"
        "sits in the flat middle of the trade-off.\n");
    return 0;
}

// Figure 11: EZ-Flow's CWmin evolution at the two first nodes of each flow
// in scenario 2. Paper: cw10 (F2's source) climbs to 2^10 in period 1;
// in period 2 the sources sit at cw10 = cw19 = 2^9 and cw0 = 2^7, the
// competition-aware distribution that un-starves the crossing flows.
// The sweep runs --seeds EZ-Flow simulations in parallel; each node's
// settled log2(cw) is reported as mean +/- 95% CI across seeds.

#include <cmath>

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

int label_to_node(const net::Scenario& scenario, const std::string& label)
{
    for (const auto& [id, l] : scenario.labels)
        if (l == label) return id;
    return -1;
}

double log_cw_at(const util::TimeSeries& trace, double t_s, double scale)
{
    const double cw =
        trace.mean_between(util::from_seconds(t_s - 60.0 * scale), util::from_seconds(t_s));
    return cw > 0 ? std::log2(cw) : 0.0;
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.15);
    print_header("fig11_scenario2_cw: contention windows at the flows' first nodes",
                 "Fig. 11 — sources self-throttle (2^7..2^10); first relays stay aggressive");
    const Scenario2Periods periods(args.scale);
    const auto results = sweep_modes(args, ScenarioSpec::scenario2(args.scale), {Mode::kEzFlow},
                                     periods.windows(), /*keep_experiments=*/true);
    const SweepResult& result = results.front();
    const net::Scenario& scenario = result.experiments.front()->scenario();

    // The paper plots cw0, cw1 (F1), cw10, cw11 (F2), cw19, cw20 (F3).
    const std::vector<std::string> labels = {"N0", "N1", "N10", "N11", "N19", "N20"};
    const double sample_times[] = {periods.p1_end, periods.p2_end, periods.p3_end};
    util::Table table({"node", "log2(cw) @P1", "log2(cw) @P2", "log2(cw) @P3"});
    std::vector<std::pair<std::string, const util::TimeSeries*>> series;
    for (const std::string& label : labels) {
        const int node = label_to_node(scenario, label);
        if (node < 0) continue;
        util::RunningStats per_time[3];
        for (const auto& experiment : result.experiments) {
            const util::TimeSeries& trace = experiment->cw_tracer().trace(node);
            for (int t = 0; t < 3; ++t)
                per_time[t].add(log_cw_at(trace, sample_times[t], args.scale));
        }
        table.add_row({label, with_ci(per_time[0], 1), with_ci(per_time[1], 1),
                       with_ci(per_time[2], 1)});
        series.emplace_back(label, &result.experiments.front()->cw_tracer().trace(node));
    }
    std::printf("%s", table.to_string().c_str());
    print_sweep_footer(args, result);
    maybe_dump_series(args, "fig11_cw", series);
    std::printf(
        "\nExpected shape: each flow's source carries a much larger window than its\n"
        "first relay; windows grow when a new flow joins (period 2) and relax when\n"
        "traffic leaves (period 3) — EZ-flow tracking the traffic matrix.\n");
    return 0;
}

// Space-parallel benchmarks for the sharded engine: aggregate event rate
// on the disconnected-islands topology at 1..N shards, the explicit
// 1-vs-2-shard scaling ratio recorded in the BENCH trajectory, and a
// 10k-node grid driven through the same sweep path as the CI perf smoke.
// Peak RSS (VmHWM) rides along as a counter so the streaming recorders'
// flat-memory claim is measurable, not just asserted.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "net/topo_gen.h"
#include "util/units.h"

namespace {

using namespace ezflow;

/// Peak resident set size in MB (VmHWM), or 0 when unavailable.
double peak_rss_mb()
{
#ifdef __linux__
    std::FILE* status = std::fopen("/proc/self/status", "r");
    if (status == nullptr) return 0.0;
    char line[256];
    double kb = 0.0;
    while (std::fgets(line, sizeof line, status) != nullptr) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            std::sscanf(line + 6, "%lf", &kb);
            break;
        }
    }
    std::fclose(status);
    return kb / 1024.0;
#else
    return 0.0;
#endif
}

analysis::ScenarioSpec islands_spec(int islands, int shards, double duration_s)
{
    net::IslandsSpec spec;
    spec.islands = islands;
    spec.cols = 4;
    spec.rows = 4;
    spec.sources = 2;
    spec.duration_s = duration_s;
    spec.max_shards = shards;
    return analysis::ScenarioSpec::islands_spec(spec);
}

std::unique_ptr<analysis::Experiment> make_islands_experiment(int islands, int shards,
                                                             double duration_s, int threads,
                                                             bool streaming)
{
    analysis::ExperimentOptions options;
    options.streaming = streaming;
    analysis::ExperimentFactory factory(islands_spec(islands, shards, duration_s), options);
    std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/7);
    experiment->network().set_shard_threads(threads);
    return experiment;
}

void BM_IslandsEventRate(benchmark::State& state)
{
    // Aggregate event throughput of 4 convergecast islands. Arg 0 is the
    // shard budget (1 = the serial reference), Arg 1 the worker threads.
    // items = simulated microseconds, so items/s is sim-us per wall
    // second; events_per_s is the aggregate processed-event rate.
    const int shards = static_cast<int>(state.range(0));
    const int threads = static_cast<int>(state.range(1));
    constexpr double kSimSeconds = 3.0;
    std::uint64_t events = 0;
    int shard_count = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto experiment =
            make_islands_experiment(4, shards, kSimSeconds, threads, /*streaming=*/true);
        state.ResumeTiming();
        experiment->run();
        events += experiment->network().total_processed();
        shard_count = experiment->network().shard_count();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kSimSeconds * util::kSecond));
    state.counters["events_per_s"] =
        benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
    state.counters["events"] =
        benchmark::Counter(static_cast<double>(events) / static_cast<double>(state.iterations()));
    state.counters["shards"] = benchmark::Counter(static_cast<double>(shard_count));
    state.counters["peak_rss_mb"] = benchmark::Counter(peak_rss_mb());
}
// UseRealTime: with worker threads the main thread's CPU clock stops at
// the epoch barrier, so rates must be against wall time.
BENCHMARK(BM_IslandsEventRate)
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({4, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ShardScalingRatio(benchmark::State& state)
{
    // The acceptance measurement: aggregate event rate of the islands
    // workload serial vs 2 shards on 2 workers, as explicit counters
    // (rate_1shard / rate_2shard events per wall second, their ratio,
    // and the cores available — CI containers may be core-limited, in
    // which case the ratio documents that limit rather than the engine).
    using clock = std::chrono::steady_clock;
    constexpr double kSimSeconds = 3.0;
    const auto timed_rate = [&](int shards, int threads) {
        // Best of three: single-shot wall times on shared CI hosts are
        // noisy and the ratio is the quantity under test.
        double best = 0.0;
        for (int attempt = 0; attempt < 3; ++attempt) {
            auto experiment =
                make_islands_experiment(2, shards, kSimSeconds, threads, /*streaming=*/true);
            const auto start = clock::now();
            experiment->run();
            const double seconds = std::chrono::duration<double>(clock::now() - start).count();
            best = std::max(best,
                            static_cast<double>(experiment->network().total_processed()) / seconds);
        }
        return best;
    };
    double rate_1 = 0.0;
    double rate_2 = 0.0;
    for (auto _ : state) {
        rate_1 = timed_rate(1, 1);
        rate_2 = timed_rate(2, 2);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["rate_1shard"] = benchmark::Counter(rate_1);
    state.counters["rate_2shard"] = benchmark::Counter(rate_2);
    state.counters["ratio"] = benchmark::Counter(rate_1 > 0.0 ? rate_2 / rate_1 : 0.0);
    state.counters["cores"] =
        benchmark::Counter(static_cast<double>(std::thread::hardware_concurrency()));
}
BENCHMARK(BM_ShardScalingRatio)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_TenKGridSimulatedSecond(benchmark::State& state)
{
    // Wall cost of one simulated second on a 100x100 grid (10k nodes, 8
    // crossing flows) through the streaming recorders — the CI perf-smoke
    // case. Uniformly connected with no interference-only band, so it
    // stays one shard; what it measures is the per-event cost at scale
    // and the flat recorder memory. BM_ClusterGridEventRate below is the
    // 10k-node case that does cut.
    constexpr double kSimSeconds = 1.0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        state.PauseTiming();
        net::GridSpec grid;
        grid.cols = 100;
        grid.rows = 100;
        grid.cross_flows = 8;
        grid.start_s = 0.0;
        grid.duration_s = kSimSeconds;
        analysis::ExperimentOptions options;
        options.streaming = true;
        analysis::ExperimentFactory factory(analysis::ScenarioSpec::grid_cross(grid), options);
        auto experiment = factory.make(/*seed=*/7);
        state.ResumeTiming();
        experiment->run_until_s(kSimSeconds);
        events += experiment->network().total_processed();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kSimSeconds * util::kSecond));
    state.counters["events_per_s"] =
        benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
    state.counters["peak_rss_mb"] = benchmark::Counter(peak_rss_mb());
}
BENCHMARK(BM_TenKGridSimulatedSecond)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ClusterGridEventRate(benchmark::State& state)
{
    // One simulated second on a 10k-node connected clustered grid (4
    // clusters of 50x50, gaps inside the interference-only band), the
    // workload the boundary-proxy layer exists for: a connected conflict
    // graph that still cuts. Arg 0 is the shard budget (1 = serial
    // reference), Arg 1 the worker threads; ghost mirroring across the
    // gaps rides in the event counts.
    const int shards = static_cast<int>(state.range(0));
    const int threads = static_cast<int>(state.range(1));
    constexpr double kSimSeconds = 1.0;
    std::uint64_t events = 0;
    int shard_count = 0;
    for (auto _ : state) {
        state.PauseTiming();
        net::ClustersSpec clusters;
        clusters.clusters = 4;
        clusters.cols = 50;
        clusters.rows = 50;
        clusters.sources = 2;
        clusters.start_s = 0.0;
        clusters.duration_s = kSimSeconds;
        clusters.max_shards = shards;
        analysis::ExperimentOptions options;
        options.streaming = true;
        analysis::ExperimentFactory factory(analysis::ScenarioSpec::clusters_spec(clusters),
                                            options);
        auto experiment = factory.make(/*seed=*/7);
        experiment->network().set_shard_threads(threads);
        state.ResumeTiming();
        experiment->run_until_s(kSimSeconds);
        events += experiment->network().total_processed();
        shard_count = experiment->network().shard_count();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kSimSeconds * util::kSecond));
    state.counters["events_per_s"] =
        benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
    state.counters["shards"] = benchmark::Counter(static_cast<double>(shard_count));
    state.counters["peak_rss_mb"] = benchmark::Counter(peak_rss_mb());
}
BENCHMARK(BM_ClusterGridEventRate)
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({4, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();

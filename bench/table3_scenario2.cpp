// Table 3: mean throughput, standard deviation and Jain's fairness index
// for the three periods of scenario 2, with and without EZ-Flow.
// Paper headline: period 2 cumulative throughput 188.2 -> 304.6 kb/s
// (+62%) and FI 0.64 -> 0.80.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

void report(const BenchArgs& args, Mode mode, util::Table& table)
{
    const Scenario2Periods periods(args.scale);
    auto exp = run_scenario2(args, mode);
    const std::string suffix = mode == Mode::kEzFlow ? " (EZ)" : "";

    const double w1 = 0.3 * (periods.p1_end - periods.p1_begin);
    const double w2 = 0.3 * (periods.p2_end - periods.p2_begin);
    const double w3 = 0.3 * (periods.p3_end - periods.p3_begin);

    auto emit = [&](const std::string& label, int flow, double from, double to, double fi) {
        const auto s = exp->summarize(flow, from, to);
        table.add_row({label + suffix, util::Table::num(s.mean_kbps, 1),
                       util::Table::num(s.stddev_kbps, 1),
                       fi < 0 ? "-" : util::Table::num(fi, 2)});
    };
    // Period 1: F1 + F2.
    double fi = exp->fairness({1, 2}, periods.p1_begin + w1, periods.p1_end);
    emit("P1 F1", 1, periods.p1_begin + w1, periods.p1_end, -1);
    emit("P1 F2", 2, periods.p1_begin + w1, periods.p1_end, fi);
    // Period 2: all three flows.
    fi = exp->fairness({1, 2, 3}, periods.p2_begin + w2, periods.p2_end);
    emit("P2 F1", 1, periods.p2_begin + w2, periods.p2_end, -1);
    emit("P2 F2", 2, periods.p2_begin + w2, periods.p2_end, -1);
    emit("P2 F3", 3, periods.p2_begin + w2, periods.p2_end, fi);
    // Period 3: F1 alone.
    emit("P3 F1", 1, periods.p3_begin + w3, periods.p3_end, -1);

    const double cumulative =
        exp->summarize(1, periods.p2_begin + w2, periods.p2_end).mean_kbps +
        exp->summarize(2, periods.p2_begin + w2, periods.p2_end).mean_kbps +
        exp->summarize(3, periods.p2_begin + w2, periods.p2_end).mean_kbps;
    std::printf("period-2 cumulative throughput, %s: %.1f kb/s\n", mode_name(mode).c_str(),
                cumulative);
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.15);
    print_header("table3_scenario2: per-period throughput / stddev / fairness",
                 "Table 3 — EZ-flow: +62% cumulative throughput and FI 0.64 -> 0.80 in period 2");
    util::Table table({"period/flow", "mean [kb/s]", "stddev [kb/s]", "Jain FI"});
    report(args, Mode::kBaseline80211, table);
    report(args, Mode::kEzFlow, table);
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: under 802.11 the crossing flows starve each other\n"
        "(low FI); EZ-flow lifts the starved flows, raises the cumulative\n"
        "throughput and the fairness index, and period 3 matches scenario 1's\n"
        "single-flow regime.\n");
    return 0;
}

// Table 3: mean throughput, standard deviation and Jain's fairness index
// for the three periods of scenario 2, with and without EZ-Flow.
// Paper headline: period 2 cumulative throughput 188.2 -> 304.6 kb/s
// (+62%) and FI 0.64 -> 0.80. Swept over --seeds root seeds in parallel;
// cells are mean +/- 95% CI across seeds.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

void report(const BenchArgs& args, const SweepResult& result, Mode mode, util::Table& table)
{
    const std::string suffix = mode == Mode::kEzFlow ? " (EZ)" : "";
    const char* period_names[] = {"P1", "P2", "P3"};
    for (std::size_t w = 0; w < result.windows.size(); ++w) {
        const WindowAggregate& window = result.windows[w];
        for (std::size_t f = 0; f < window.flows.size(); ++f) {
            const bool last_flow = f + 1 == window.flows.size();
            table.add_row({std::string(period_names[w]) + " F" + std::to_string(f + 1) + suffix,
                           with_ci(window.flows[f].mean_kbps, 1),
                           with_ci(window.flows[f].stddev_kbps, 1),
                           last_flow && window.flows.size() > 1 ? with_ci(window.fairness, 2)
                                                                : std::string("-")});
        }
    }
    std::printf("period-2 cumulative throughput, %s: %s kb/s\n", mode_name(mode).c_str(),
                with_ci(result.windows[1].aggregate_kbps, 1).c_str());
    print_sweep_footer(args, result);
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.15);
    print_header("table3_scenario2: per-period throughput / stddev / fairness",
                 "Table 3 — EZ-flow: +62% cumulative throughput and FI 0.64 -> 0.80 in period 2");
    const Scenario2Periods periods(args.scale);
    const std::vector<Mode> modes = {Mode::kBaseline80211, Mode::kEzFlow};
    const auto results =
        sweep_modes(args, ScenarioSpec::scenario2(args.scale), modes, periods.windows());
    util::Table table({"period/flow", "mean [kb/s]", "stddev [kb/s]", "Jain FI"});
    for (std::size_t m = 0; m < modes.size(); ++m) report(args, results[m], modes[m], table);
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: under 802.11 the crossing flows starve each other\n"
        "(low FI); EZ-flow lifts the starved flows, raises the cumulative\n"
        "throughput and the fairness index, and period 3 matches scenario 1's\n"
        "single-flow regime.\n");
    return 0;
}

// Thin launcher kept for muscle memory: the implementation now lives in
// the figure registry (src/cli/figures/) under the name "ablation_thresholds".
// Equivalent to `ezflow run ablation_thresholds`; flags --scale/--seed/--seeds/
// --threads/--csv/--out/--smoke pass through.

#include "cli/app.h"

int main(int argc, char** argv)
{
    return ezflow::cli::run_figure_main("ablation_thresholds", argc, argv);
}

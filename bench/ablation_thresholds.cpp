// Ablation (Sec. 3.3): sensitivity of EZ-Flow to the bmin/bmax thresholds.
// The paper argues bmin must be very small (~0.1) so nodes do not turn
// aggressive too eagerly, while bmax mainly tunes reactivity. This sweep
// runs the 4-hop chain for a grid of (bmin, bmax) values.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

struct Result {
    double b1_mean;
    double goodput_kbps;
    double delay_s;
};

Result run(const BenchArgs& args, double bmin, double bmax)
{
    const double duration_s = 600.0 * args.scale * 10.0;  // default scale 0.1 -> 600 s
    ExperimentOptions options;
    options.mode = Mode::kEzFlow;
    options.caa.bmin = bmin;
    options.caa.bmax = bmax;
    Experiment exp(net::make_line(4, duration_s, args.seed), options);
    exp.run();
    const double warmup = 0.4 * duration_s;
    Result r;
    r.b1_mean = exp.buffers().mean_occupancy(1, util::from_seconds(warmup),
                                             util::from_seconds(duration_s + 5));
    const auto summary = exp.summarize(0, warmup, duration_s);
    r.goodput_kbps = summary.mean_kbps;
    r.delay_s = summary.mean_delay_s;
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.1);
    print_header("ablation_thresholds: bmin/bmax sensitivity on the 4-hop chain",
                 "Sec. 3.3 — small bmin is essential; bmax trades reactivity for calm");
    util::Table table({"bmin", "bmax", "b1 mean [pkts]", "goodput [kb/s]", "delay [s]"});
    for (const double bmin : {0.05, 0.5, 2.0}) {
        for (const double bmax : {10.0, 20.0, 40.0}) {
            const Result r = run(args, bmin, bmax);
            table.add_row({util::Table::num(bmin, 2), util::Table::num(bmax, 0),
                           util::Table::num(r.b1_mean, 1), util::Table::num(r.goodput_kbps, 1),
                           util::Table::num(r.delay_s, 2)});
        }
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: the paper's (0.05, 20) keeps the relay drained at full\n"
        "goodput. Large bmin values make nodes regain aggressiveness too easily\n"
        "(higher buffers/delay); the bmax choice matters much less.\n");
    return 0;
}

// Ablation (Sec. 3.2): robustness of the BOE to missed sniffs. The paper
// claims EZ-Flow keeps working even when most forwarded packets are not
// overheard (hidden nodes, channel variability) — missing samples only
// slow the reaction. This sweep drops a fraction of sniffed frames before
// they reach the BOE.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.1);
    const double duration_s = 6000.0 * args.scale;
    print_header("ablation_sniff_loss: EZ-Flow under missed sniffs",
                 "Sec. 3.2 — 'invulnerability of EZ-flow to forwarded packets that are "
                 "not overheard'");
    util::Table table(
        {"sniff loss", "b1 mean [pkts]", "goodput [kb/s]", "delay [s]", "source cw"});
    for (const double loss : {0.0, 0.5, 0.8, 0.95}) {
        ExperimentOptions options;
        options.mode = Mode::kEzFlow;
        options.boe_sniff_loss = loss;
        Experiment exp(net::make_line(4, duration_s, args.seed), options);
        exp.run();
        const double warmup = 0.4 * duration_s;
        const auto summary = exp.summarize(0, warmup, duration_s);
        const auto* agent = exp.agent(0);
        table.add_row(
            {util::Table::num(loss, 2),
             util::Table::num(exp.buffers().mean_occupancy(1, util::from_seconds(warmup),
                                                           util::from_seconds(duration_s + 5)),
                              1),
             util::Table::num(summary.mean_kbps, 1), util::Table::num(summary.mean_delay_s, 2),
             std::to_string(agent != nullptr ? agent->cw_toward(1) : -1)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: stabilization persists across the sweep — the relay\n"
        "buffer stays drained and goodput flat even when 95%% of sniffs are lost;\n"
        "only the convergence time stretches.\n");
    return 0;
}

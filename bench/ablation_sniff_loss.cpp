// Thin launcher kept for muscle memory: the implementation now lives in
// the figure registry (src/cli/figures/) under the name "ablation_sniff_loss".
// Equivalent to `ezflow run ablation_sniff_loss`; flags --scale/--seed/--seeds/
// --threads/--csv/--out/--smoke pass through.

#include "cli/app.h"

int main(int argc, char** argv)
{
    return ezflow::cli::run_figure_main("ablation_sniff_loss", argc, argv);
}

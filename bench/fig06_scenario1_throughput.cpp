// Figure 6: throughput over time of flows F1 and F2 in scenario 1 (two
// 8-hop flows merging toward a gateway), with standard IEEE 802.11 and
// with EZ-Flow. The paper's per-period means: F1 alone 153.2 -> 183.9 kb/s
// (+20%); both flows 76.5 -> 82.1 kb/s average. Each mode is swept over
// --seeds root seeds in parallel and reported as mean +/- 95% CI.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

void report(const BenchArgs& args, const SweepResult& result, Mode mode)
{
    std::printf("\nscenario 1, %s:\n", mode_name(mode).c_str());
    util::Table table({"period", "F1 [kb/s]", "F2 [kb/s]", "aggregate [kb/s]"});
    const char* labels[] = {"F1 alone", "F1 + F2", "F1 alone again"};
    for (std::size_t w = 0; w < result.windows.size(); ++w) {
        const WindowAggregate& window = result.windows[w];
        table.add_row({labels[w], with_ci(window.flows[0].mean_kbps, 1),
                       window.flows.size() > 1 ? with_ci(window.flows[1].mean_kbps, 1)
                                               : std::string("-"),
                       with_ci(window.aggregate_kbps, 1)});
    }
    std::printf("%s", table.to_string().c_str());
    print_sweep_footer(args, result);

    if (!result.experiments.empty()) {
        Experiment& first = *result.experiments.front();
        maybe_dump_series(args,
                          std::string("fig06_") + (mode == Mode::kEzFlow ? "ezflow" : "80211"),
                          {{"F1", &first.throughput(1).series()},
                           {"F2", &first.throughput(2).series()}});
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.3);
    print_header("fig06_scenario1_throughput: throughput vs time, 2-flow merge",
                 "Fig. 6 — EZ-flow raises F1-alone throughput ~20% and smooths both flows");
    const Scenario1Periods periods(args.scale);
    const std::vector<Mode> modes = {Mode::kBaseline80211, Mode::kEzFlow};
    const auto results =
        sweep_modes(args, ScenarioSpec::scenario1(args.scale), modes, periods.windows());
    for (std::size_t m = 0; m < modes.size(); ++m) report(args, results[m], modes[m]);
    std::printf(
        "\nExpected shape: EZ-flow improves the single-flow period's throughput\n"
        "(~20%% in the paper) and keeps the two-flow period smoother (lower spread)\n"
        "at an equal or better aggregate.\n");
    return 0;
}

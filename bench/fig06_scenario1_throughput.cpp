// Figure 6: throughput over time of flows F1 and F2 in scenario 1 (two
// 8-hop flows merging toward a gateway), with standard IEEE 802.11 and
// with EZ-Flow. The paper's per-period means: F1 alone 153.2 -> 183.9 kb/s
// (+20%); both flows 76.5 -> 82.1 kb/s average.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

void report(const BenchArgs& args, Mode mode)
{
    const Scenario1Periods periods(args.scale);
    auto exp = run_scenario1(args, mode);

    std::printf("\nscenario 1, %s:\n", mode_name(mode).c_str());
    util::Table table({"period", "F1 [kb/s]", "F2 [kb/s]", "aggregate [kb/s]"});
    auto row = [&](const char* label, double from, double to, bool f2_active) {
        const auto f1 = exp->summarize(1, from, to);
        const auto f2 = exp->summarize(2, from, to);
        table.add_row({label, util::Table::num(f1.mean_kbps, 1),
                       f2_active ? util::Table::num(f2.mean_kbps, 1) : std::string("-"),
                       util::Table::num(f1.mean_kbps + f2.mean_kbps, 1)});
    };
    // Skip a short warmup inside each period so means reflect the settled
    // regime the paper reports.
    const double w1 = 0.3 * (periods.p1_end - periods.p1_begin);
    const double w2 = 0.3 * (periods.p2_end - periods.p2_begin);
    row("F1 alone", periods.p1_begin + w1, periods.p1_end, false);
    row("F1 + F2", periods.p2_begin + w2, periods.p2_end, true);
    row("F1 alone again", periods.p3_begin + w2, periods.p3_end, false);
    std::printf("%s", table.to_string().c_str());

    maybe_dump_series(args, std::string("fig06_") + (mode == Mode::kEzFlow ? "ezflow" : "80211"),
                      {{"F1", &exp->throughput(1).series()}, {"F2", &exp->throughput(2).series()}});
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.3);
    print_header("fig06_scenario1_throughput: throughput vs time, 2-flow merge",
                 "Fig. 6 — EZ-flow raises F1-alone throughput ~20% and smooths both flows");
    report(args, Mode::kBaseline80211);
    report(args, Mode::kEzFlow);
    std::printf(
        "\nExpected shape: EZ-flow improves the single-flow period's throughput\n"
        "(~20%% in the paper) and keeps the two-flow period smoother (lower spread)\n"
        "at an equal or better aggregate.\n");
    return 0;
}

// A-MPDU aggregation benchmarks: the grid_gateway convergecast workload
// at TXOP batch sizes K = 1, 4, 8, 16. The headline counter is
// events_per_kb — scheduler events per delivered kilobyte — which must
// fall as K grows: one DIFS/backoff/BA exchange settles a whole batch,
// so the per-byte event cost is the aggregation win in engine terms,
// independent of wall clock noise on shared CI hosts.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "net/topo_gen.h"
#include "util/units.h"

namespace {

using namespace ezflow;

std::unique_ptr<analysis::Experiment> make_gateway_experiment(int ampdu_k, double duration_s)
{
    net::GridSpec grid;
    grid.cols = 5;
    grid.rows = 5;
    grid.sources = 4;
    grid.start_s = 0.0;
    grid.duration_s = duration_s;
    analysis::ScenarioSpec spec = analysis::ScenarioSpec::grid_gateway(grid);
    spec.ampdu_max_mpdus = ampdu_k;
    analysis::ExperimentOptions options;
    options.streaming = true;
    analysis::ExperimentFactory factory(spec, options);
    return factory.make(/*seed=*/7);
}

std::uint64_t delivered_packets(net::Network& network)
{
    std::uint64_t delivered = 0;
    for (net::NodeId id = 0; id < network.node_count(); ++id)
        delivered += network.node(id).delivered();
    return delivered;
}

void BM_GatewayConvergecast(benchmark::State& state)
{
    // Arg 0 is the A-MPDU batch size K (1 = the legacy per-MSDU MAC).
    // items = simulated microseconds; events_per_kb is the acceptance
    // metric (events per delivered kilobyte must shrink with K).
    const int ampdu_k = static_cast<int>(state.range(0));
    constexpr double kSimSeconds = 3.0;
    constexpr double kPayloadBytes = 1000.0;  // ExperimentOptions default
    std::uint64_t events = 0;
    std::uint64_t delivered = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto experiment = make_gateway_experiment(ampdu_k, kSimSeconds);
        state.ResumeTiming();
        experiment->run();
        events += experiment->network().total_processed();
        delivered += delivered_packets(experiment->network());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kSimSeconds * util::kSecond));
    const double delivered_kb = static_cast<double>(delivered) * kPayloadBytes / 1000.0;
    state.counters["events"] =
        benchmark::Counter(static_cast<double>(events) / static_cast<double>(state.iterations()));
    state.counters["delivered_pkts"] = benchmark::Counter(
        static_cast<double>(delivered) / static_cast<double>(state.iterations()));
    state.counters["events_per_kb"] = benchmark::Counter(
        delivered_kb > 0.0 ? static_cast<double>(events) / delivered_kb : 0.0);
    state.counters["ampdu_k"] = benchmark::Counter(static_cast<double>(ampdu_k));
}
BENCHMARK(BM_GatewayConvergecast)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_AmpduEventReduction(benchmark::State& state)
{
    // The acceptance measurement in one record: events per delivered byte
    // at K=1 vs K=8 on the same convergecast grid, and their ratio
    // (must be >= 3 for the aggregation refactor to have paid off).
    constexpr double kSimSeconds = 3.0;
    const auto events_per_byte = [&](int k) {
        auto experiment = make_gateway_experiment(k, kSimSeconds);
        experiment->run();
        const double bytes = static_cast<double>(delivered_packets(experiment->network())) * 1000.0;
        return bytes > 0.0 ? static_cast<double>(experiment->network().total_processed()) / bytes
                           : 0.0;
    };
    double per_byte_k1 = 0.0;
    double per_byte_k8 = 0.0;
    for (auto _ : state) {
        per_byte_k1 = events_per_byte(1);
        per_byte_k8 = events_per_byte(8);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["events_per_byte_k1"] = benchmark::Counter(per_byte_k1);
    state.counters["events_per_byte_k8"] = benchmark::Counter(per_byte_k8);
    state.counters["reduction"] =
        benchmark::Counter(per_byte_k8 > 0.0 ? per_byte_k1 / per_byte_k8 : 0.0);
}
BENCHMARK(BM_AmpduEventReduction)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();

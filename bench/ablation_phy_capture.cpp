// Ablation (DESIGN.md §4.0): the capture effect is load-bearing for the
// paper's phenomena. With ns-2's 10 dB capture threshold the 3-hop chain
// is stable and the 4-hop chain saturates its first relay (Fig. 1); with
// capture disabled (threshold -> infinity) every overlap corrupts, far
// ACKs puncture strong links, and the dichotomy is destroyed.

#include "bench_common.h"
#include "traffic/sink.h"
#include "traffic/source.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;

struct Row {
    double b1;
    double b_last;
    double goodput;
};

Row run(const BenchArgs& args, int hops, double capture_threshold, double duration_s)
{
    net::Network::Config config = net::testbed_config(args.seed);
    config.phy.capture_threshold = capture_threshold;
    net::Network network(config);
    std::vector<net::NodeId> path;
    for (int i = 0; i <= hops; ++i) path.push_back(network.add_node({200.0 * i, 0.0}));
    network.add_flow(0, path);
    traffic::Sink sink(network);
    sink.attach_flow(0);
    analysis::BufferTracer tracer(network, {path.begin() + 1, path.end() - 1},
                                  100 * util::kMillisecond);
    tracer.start();
    traffic::CbrSource source(network, 0, 1000, 2e6);
    source.activate(util::from_seconds(5), util::from_seconds(duration_s));
    network.run_until(util::from_seconds(duration_s));
    const double from = 0.4 * duration_s;
    Row row{};
    row.b1 = tracer.mean_occupancy(1, util::from_seconds(from), util::from_seconds(duration_s));
    row.b_last = tracer.mean_occupancy(hops - 1, util::from_seconds(from),
                                       util::from_seconds(duration_s));
    row.goodput =
        sink.goodput_kbps(0, util::from_seconds(from), util::from_seconds(duration_s));
    return row;
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.1);
    const double duration_s = 1800.0 * args.scale;
    print_header("ablation_phy_capture: capture threshold vs the Fig. 1 dichotomy",
                 "modelling ablation — why SIR capture is required to reproduce the paper");
    util::Table table({"capture", "hops", "b1 [pkts]", "b_last [pkts]", "goodput [kb/s]"});
    for (const double threshold : {10.0, 1e9}) {
        for (const int hops : {3, 4}) {
            const Row r = run(args, hops, threshold, duration_s);
            table.add_row({threshold < 1e6 ? "10 dB (ns-2)" : "disabled", std::to_string(hops),
                           util::Table::num(r.b1, 1), util::Table::num(r.b_last, 1),
                           util::Table::num(r.goodput, 1)});
        }
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: with 10 dB capture, 3-hop stays drained while 4-hop's\n"
        "first relay saturates (the paper's Fig. 1). With capture disabled the\n"
        "structure degrades: far interferers corrupt receptions they physically\n"
        "could not, and congestion appears in the wrong places.\n");
    return 0;
}

// Ablation (§5.1): the paper disables RTS/CTS, arguing that (i) real
// deployments disable it by default and (ii) it is useless when the
// carrier-sense range (550 m) already covers the area an RTS/CTS exchange
// would reserve (2 x 250 m). This bench tests the claim in both
// carrier-sense regimes: with ns-2's 550 m CS the handshake is pure
// overhead; with the testbed's 1-hop CS (hidden 2-hop neighbours) it buys
// cheap collision recovery but costs airtime per frame — and EZ-Flow
// beats it either way by removing the collisions' cause.

#include "bench_common.h"
#include "traffic/sink.h"
#include "traffic/source.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

struct Row {
    double goodput;
    double b1;
};

Row run(const BenchArgs& args, double cs_range, bool rts, bool ezflow, double duration_s)
{
    net::Network::Config config = net::default_config(args.seed);
    config.phy.cs_range_m = cs_range;
    config.mac.rts_cts_enabled = rts;
    net::Network network(config);
    std::vector<net::NodeId> path;
    for (int i = 0; i <= 4; ++i) path.push_back(network.add_node({200.0 * i, 0.0}));
    network.add_flow(0, path);

    std::map<net::NodeId, std::unique_ptr<core::EzFlowAgent>> agents;
    if (ezflow) agents = core::install_ezflow(network, core::CaaConfig{});

    traffic::Sink sink(network);
    sink.attach_flow(0);
    analysis::BufferTracer tracer(network, {1}, 100 * util::kMillisecond);
    tracer.start();
    traffic::CbrSource source(network, 0, 1000, 2e6);
    source.activate(util::from_seconds(5), util::from_seconds(duration_s));
    network.run_until(util::from_seconds(duration_s));
    const double from = 0.4 * duration_s;
    return Row{sink.goodput_kbps(0, util::from_seconds(from), util::from_seconds(duration_s)),
               tracer.mean_occupancy(1, util::from_seconds(from), util::from_seconds(duration_s))};
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.1);
    const double duration_s = 3000.0 * args.scale;
    print_header("ablation_rtscts: is RTS/CTS an alternative to EZ-Flow?",
                 "§5.1 — the paper disables RTS/CTS; EZ-flow attacks the cause instead");
    util::Table table({"CS regime", "MAC", "goodput [kb/s]", "b1 [pkts]"});
    for (const double cs : {550.0, 250.0}) {
        const std::string regime = cs > 400 ? "ns-2 (550 m)" : "testbed (1-hop)";
        const Row basic = run(args, cs, false, false, duration_s);
        const Row rts = run(args, cs, true, false, duration_s);
        const Row ez = run(args, cs, false, true, duration_s);
        table.add_row({regime, "802.11 basic", util::Table::num(basic.goodput, 1),
                       util::Table::num(basic.b1, 1)});
        table.add_row({regime, "802.11 + RTS/CTS", util::Table::num(rts.goodput, 1),
                       util::Table::num(rts.b1, 1)});
        table.add_row({regime, "EZ-flow (no RTS)", util::Table::num(ez.goodput, 1),
                       util::Table::num(ez.b1, 1)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: under 550 m carrier sense the handshake only costs\n"
        "airtime (the paper's argument (ii)). Under 1-hop sensing it softens the\n"
        "hidden-terminal losses but does not drain the relay buffers; EZ-flow\n"
        "does, at full goodput, without per-frame overhead.\n");
    return 0;
}

// Figure 10: end-to-end delay over time for the three flows of scenario 2
// (crossing flows with hidden sources). Paper: under 802.11, F2 sees ~15 s
// delays in period 1 and all flows suffer high delay in period 2; EZ-Flow
// cuts delays by at least an order of magnitude. Swept over --seeds root
// seeds in parallel; cells are mean +/- 95% CI across seeds.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

void report(const BenchArgs& args, const SweepResult& result, Mode mode)
{
    std::printf("\nscenario 2, %s:\n", mode_name(mode).c_str());
    util::Table table({"period", "F1 delay [s]", "F2 delay [s]", "F3 delay [s]"});
    const char* labels[] = {"F1+F2", "F1+F2+F3", "F1 alone"};
    for (std::size_t w = 0; w < result.windows.size(); ++w) {
        const WindowAggregate& window = result.windows[w];
        std::vector<std::string> row = {labels[w]};
        for (std::size_t f = 0; f < 3; ++f)
            row.push_back(f < window.flows.size() ? with_ci(window.flows[f].mean_delay_s, 2)
                                                  : std::string("-"));
        table.add_row(row);
    }
    std::printf("%s", table.to_string().c_str());
    print_sweep_footer(args, result);

    if (!result.experiments.empty()) {
        Experiment& first = *result.experiments.front();
        maybe_dump_series(args,
                          std::string("fig10_") + (mode == Mode::kEzFlow ? "ezflow" : "80211"),
                          {{"F1", &first.sink().flow(1).delay_series},
                           {"F2", &first.sink().flow(2).delay_series},
                           {"F3", &first.sink().flow(3).delay_series}});
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.15);
    print_header("fig10_scenario2_delay: end-to-end delay vs time, 3 crossing flows",
                 "Fig. 10 — 802.11: seconds-to-tens-of-seconds delays; EZ-flow: >=10x lower");
    const Scenario2Periods periods(args.scale);
    const std::vector<Mode> modes = {Mode::kBaseline80211, Mode::kEzFlow};
    const auto results =
        sweep_modes(args, ScenarioSpec::scenario2(args.scale), modes, periods.windows());
    for (std::size_t m = 0; m < modes.size(); ++m) report(args, results[m], modes[m]);
    std::printf(
        "\nExpected shape: EZ-flow reduces every flow's delay by an order of\n"
        "magnitude in every period, and the final F1-alone period returns to the\n"
        "single-flow regime of scenario 1.\n");
    return 0;
}

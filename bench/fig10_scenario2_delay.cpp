// Figure 10: end-to-end delay over time for the three flows of scenario 2
// (crossing flows with hidden sources). Paper: under 802.11, F2 sees ~15 s
// delays in period 1 and all flows suffer high delay in period 2; EZ-Flow
// cuts delays by at least an order of magnitude.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

void report(const BenchArgs& args, Mode mode)
{
    const Scenario2Periods periods(args.scale);
    auto exp = run_scenario2(args, mode);

    std::printf("\nscenario 2, %s:\n", mode_name(mode).c_str());
    util::Table table({"period", "F1 delay [s]", "F2 delay [s]", "F3 delay [s]"});
    auto cell = [&](int flow, double from, double to, bool active) {
        if (!active) return std::string("-");
        return util::Table::num(exp->summarize(flow, from, to).mean_delay_s, 2);
    };
    const double w1 = 0.3 * (periods.p1_end - periods.p1_begin);
    const double w2 = 0.3 * (periods.p2_end - periods.p2_begin);
    const double w3 = 0.3 * (periods.p3_end - periods.p3_begin);
    table.add_row({"F1+F2", cell(1, periods.p1_begin + w1, periods.p1_end, true),
                   cell(2, periods.p1_begin + w1, periods.p1_end, true), "-"});
    table.add_row({"F1+F2+F3", cell(1, periods.p2_begin + w2, periods.p2_end, true),
                   cell(2, periods.p2_begin + w2, periods.p2_end, true),
                   cell(3, periods.p2_begin + w2, periods.p2_end, true)});
    table.add_row({"F1 alone", cell(1, periods.p3_begin + w3, periods.p3_end, true), "-", "-"});
    std::printf("%s", table.to_string().c_str());

    maybe_dump_series(args, std::string("fig10_") + (mode == Mode::kEzFlow ? "ezflow" : "80211"),
                      {{"F1", &exp->sink().flow(1).delay_series},
                       {"F2", &exp->sink().flow(2).delay_series},
                       {"F3", &exp->sink().flow(3).delay_series}});
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.15);
    print_header("fig10_scenario2_delay: end-to-end delay vs time, 3 crossing flows",
                 "Fig. 10 — 802.11: seconds-to-tens-of-seconds delays; EZ-flow: >=10x lower");
    report(args, Mode::kBaseline80211);
    report(args, Mode::kEzFlow);
    std::printf(
        "\nExpected shape: EZ-flow reduces every flow's delay by an order of\n"
        "magnitude in every period, and the final F1-alone period returns to the\n"
        "single-flow regime of scenario 1.\n");
    return 0;
}

// Micro-benchmarks (google-benchmark) for the fault-injection path:
// incremental route repair against the full-recompile strawman, the
// injector's live-path BFS, and a full kill/revive cycle on a running
// network. The headline comparison is incremental vs recompile — the
// change-log patch must make churn repair O(changed flows), not
// O(flows).

#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "net/fault_plan.h"
#include "net/network.h"
#include "net/routing.h"
#include "net/topo_gen.h"
#include "net/topologies.h"
#include "sim/fault_injector.h"
#include "util/units.h"

namespace {

using namespace ezflow;

/// A routing builder with `flows` parallel 6-hop paths over a disjoint
/// node strip each, plus the two alternate paths churn flips between.
struct RepairBed {
    net::StaticRouting routing;
    std::vector<std::vector<net::NodeId>> primary;
    std::vector<std::vector<net::NodeId>> alternate;

    explicit RepairBed(int flows)
    {
        for (int f = 0; f < flows; ++f) {
            const net::NodeId base = f * 8;
            std::vector<net::NodeId> a, b;
            for (net::NodeId i = 0; i < 7; ++i) a.push_back(base + i);
            // Alternate detours through the strip's spare node.
            b = a;
            b[3] = base + 7;
            primary.push_back(a);
            alternate.push_back(b);
            routing.add_flow(f + 1, std::move(a));
        }
    }
};

/// Incremental: one persistent RoutingTable; each churn step patches the
/// single dirty flow through the change log.
void BM_RepairIncremental(benchmark::State& state)
{
    const int flows = static_cast<int>(state.range(0));
    RepairBed bed(flows);
    net::RoutingTable table(bed.routing);
    benchmark::DoNotOptimize(table.next_hop(1, 0));  // initial compile outside the loop
    int step = 0;
    for (auto _ : state) {
        const int flow = step % flows + 1;
        const auto& path =
            (step / flows) % 2 ? bed.primary[flow - 1] : bed.alternate[flow - 1];
        bed.routing.update_flow(flow, path);
        benchmark::DoNotOptimize(table.next_hop(flow, path[2]));
        ++step;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RepairIncremental)->Arg(64)->Arg(512);

/// Strawman: recompile the whole table after every change (a fresh
/// RoutingTable per step compiles all flows on first lookup).
void BM_RepairFullRecompile(benchmark::State& state)
{
    const int flows = static_cast<int>(state.range(0));
    RepairBed bed(flows);
    int step = 0;
    for (auto _ : state) {
        const int flow = step % flows + 1;
        const auto& path =
            (step / flows) % 2 ? bed.primary[flow - 1] : bed.alternate[flow - 1];
        bed.routing.update_flow(flow, path);
        net::RoutingTable table(bed.routing);
        benchmark::DoNotOptimize(table.next_hop(flow, path[2]));
        ++step;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RepairFullRecompile)->Arg(64)->Arg(512);

/// The injector's end of the same work: a node death and revival on a
/// convergecast grid mid-run, including teardown, per-flow BFS repair
/// and restoration. Measures the whole kill/revive cycle.
void BM_KillReviveCycle(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        net::GridSpec grid;
        grid.cols = 7;
        grid.rows = 7;
        grid.sources = 4;
        grid.duration_s = 60.0;
        net::Scenario scenario = net::make_grid_convergecast(grid, /*seed=*/3);
        net::FaultPlan plan;
        plan.node_down(6.0, 1).node_up(6.5, 1);
        sim::FaultInjector injector(*scenario.network, plan);
        injector.arm();
        scenario.network->run_until(util::from_seconds(5.9));
        state.ResumeTiming();
        scenario.network->run_until(util::from_seconds(7.0));
        benchmark::DoNotOptimize(injector.stats().flows_restored);
    }
}
BENCHMARK(BM_KillReviveCycle)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Table 2: mean throughput, standard deviation and Jain's fairness index
// on the testbed, with and without EZ-Flow, for (i) each flow alone and
// (ii) the two flows together (the parking-lot scenario where 802.11
// starves the 7-hop flow F1).

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

struct Row {
    std::string label;
    double mean_kbps;
    double stddev_kbps;
    double fairness;  ///< < 0 when not applicable
};

std::vector<Row> run_config(const BenchArgs& args, bool f1_active, bool f2_active, Mode mode,
                            double duration_s)
{
    // Disabled flows get a zero-length window after the measured horizon.
    const double off = duration_s + 1.0;
    net::Scenario scenario = net::make_testbed(
        f1_active ? 5.0 : off, f1_active ? duration_s : off + 0.001, f2_active ? 5.0 : off,
        f2_active ? duration_s : off + 0.001, args.seed);
    ExperimentOptions options;
    options.mode = mode;
    options.caa.max_cw = 1 << 10;  // testbed hardware cap
    Experiment exp(std::move(scenario), options);
    exp.run_until_s(duration_s);

    const double warmup = 0.2 * duration_s;
    const std::string suffix = mode == Mode::kEzFlow ? " (EZ)" : "";
    std::vector<Row> rows;
    if (f1_active) {
        const auto s = exp.summarize(1, warmup, duration_s);
        rows.push_back({"F1" + suffix + (f2_active ? " [both]" : " [alone]"), s.mean_kbps,
                        s.stddev_kbps, -1.0});
    }
    if (f2_active) {
        const auto s = exp.summarize(2, warmup, duration_s);
        rows.push_back({"F2" + suffix + (f1_active ? " [both]" : " [alone]"), s.mean_kbps,
                        s.stddev_kbps, -1.0});
    }
    if (f1_active && f2_active) rows.back().fairness = exp.fairness({1, 2}, warmup, duration_s);
    return rows;
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.15);
    const double duration_s = 1800.0 * args.scale;
    print_header("table2_testbed: testbed throughput / stddev / fairness",
                 "Table 2 — 802.11: F1 119, F2 157 alone; (7, 143) FI 0.55 together; "
                 "EZ-flow: 148, 185 alone; (71, 110) FI 0.96 together");

    util::Table table({"flow", "mean [kb/s]", "stddev [kb/s]", "Jain FI"});
    auto emit = [&](const std::vector<Row>& rows) {
        for (const Row& r : rows)
            table.add_row({r.label, util::Table::num(r.mean_kbps, 0),
                           util::Table::num(r.stddev_kbps, 0),
                           r.fairness < 0 ? "-" : util::Table::num(r.fairness, 2)});
    };
    emit(run_config(args, true, false, Mode::kBaseline80211, duration_s));
    emit(run_config(args, false, true, Mode::kBaseline80211, duration_s));
    emit(run_config(args, true, true, Mode::kBaseline80211, duration_s));
    emit(run_config(args, true, false, Mode::kEzFlow, duration_s));
    emit(run_config(args, false, true, Mode::kEzFlow, duration_s));
    emit(run_config(args, true, true, Mode::kEzFlow, duration_s));
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: alone, each flow gains ~20%% with EZ-flow. Together,\n"
        "802.11 starves the long flow F1 (low FI); EZ-flow restores both flows to\n"
        "comparable rates and pushes the fairness index toward 1.\n");
    return 0;
}

// Figure 8: evolution of the CWmin values EZ-Flow assigns at the nodes of
// scenario 1. Paper: in the single-flow stable regime the relays sit at
// the minimum 2^4 while the source rises to 2^7; during the two-flow
// period the sources climb to ~2^11 (matching the static penalty solution
// q = 2^4 / 2^11 = 1/128 of [9]). The sweep runs --seeds EZ-Flow
// simulations in parallel and reports each node's settled log2(cw) as
// mean +/- 95% CI across seeds; plotted series come from the first seed.

#include <cmath>

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

int label_to_node(const net::Scenario& scenario, const std::string& label)
{
    for (const auto& [id, l] : scenario.labels)
        if (l == label) return id;
    return -1;
}

double log_cw_at(const util::TimeSeries& trace, double t_s, double scale)
{
    const double cw = trace.mean_between(util::from_seconds(t_s - 10.0 * scale),
                                         util::from_seconds(t_s + 40.0 * scale));
    return cw > 0 ? std::log2(cw) : 0.0;
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.3);
    print_header("fig08_scenario1_cw: EZ-Flow contention-window evolution",
                 "Fig. 8 — relays at 2^4; F1 source to ~2^7 alone, sources to ~2^11 together");
    const Scenario1Periods periods(args.scale);
    // The contention windows live in the per-seed CwTracers, so keep the
    // experiments alive rather than relying on FlowSummary aggregates.
    const auto results = sweep_modes(args, ScenarioSpec::scenario1(args.scale), {Mode::kEzFlow},
                                     periods.windows(), /*keep_experiments=*/true);
    const SweepResult& result = results.front();
    const net::Scenario& scenario = result.experiments.front()->scenario();

    // The nodes the paper plots: the two sources (N12, N11), the first
    // relays of each branch (N10, N9, N8, N7) and a trunk relay (N4).
    const std::vector<std::string> labels = {"N12", "N11", "N10", "N9", "N8", "N7", "N4"};
    const double sample_times[] = {periods.p1_end - 50 * args.scale,
                                   periods.p2_end - 50 * args.scale,
                                   periods.p3_end - 50 * args.scale};
    util::Table table({"node", "log2(cw) @F1-alone", "log2(cw) @both", "log2(cw) @end"});
    std::vector<std::pair<std::string, const util::TimeSeries*>> series;
    for (const std::string& label : labels) {
        const int node = label_to_node(scenario, label);
        if (node < 0) continue;
        util::RunningStats per_time[3];
        for (const auto& experiment : result.experiments) {
            const util::TimeSeries& trace = experiment->cw_tracer().trace(node);
            for (int t = 0; t < 3; ++t)
                per_time[t].add(log_cw_at(trace, sample_times[t], args.scale));
        }
        table.add_row({label, with_ci(per_time[0], 1), with_ci(per_time[1], 1),
                       with_ci(per_time[2], 1)});
        series.emplace_back(label, &result.experiments.front()->cw_tracer().trace(node));
    }
    std::printf("%s", table.to_string().c_str());
    print_sweep_footer(args, result);
    maybe_dump_series(args, "fig08_cw", series);
    std::printf(
        "\nExpected shape: sources carry the largest windows (self-throttling),\n"
        "relays near the gateway stay at/near the 2^4 minimum, windows rise when\n"
        "F2 joins and relax back after it leaves — the distribution [9] proved\n"
        "stable, discovered online.\n");
    return 0;
}

// Figure 4: buffer evolution of the relay nodes on the testbed when flow
// F1 (7 hops) or F2 (4 hops) runs alone, with and without EZ-Flow.
// The testbed's MadWifi driver capped CWmin at 2^10; the same cap is
// applied to the EZ-Flow runs here (the paper shows the limit keeps N1
// from draining fully on F1's path).

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

struct FlowCase {
    const char* name;
    int flow_id;
    std::vector<int> relays;  ///< labels of the relay nodes the paper plots
};

void run_case(const BenchArgs& args, const FlowCase& fc, Mode mode)
{
    const double duration_s = 2000.0 * args.scale;
    // Activate only the flow under test (the other gets a null window).
    const bool is_f1 = fc.flow_id == 1;
    net::Scenario scenario =
        net::make_testbed(is_f1 ? 5.0 : duration_s, is_f1 ? duration_s : duration_s + 0.001,
                          is_f1 ? duration_s : 5.0, is_f1 ? duration_s + 0.001 : duration_s,
                          args.seed);
    ExperimentOptions options;
    options.mode = mode;
    options.caa.max_cw = 1 << 10;  // MadWifi hardware limit (Sec. 4.1)
    Experiment exp(std::move(scenario), options);
    exp.run_until_s(duration_s);

    std::printf("\n%s, %s:\n", fc.name, mode_name(mode).c_str());
    util::Table table({"relay", "mean buffer [pkts]", "max buffer [pkts]"});
    const double warmup = 0.25 * duration_s;
    std::vector<std::pair<std::string, const util::TimeSeries*>> series;
    for (int n : fc.relays) {
        table.add_row({"N" + std::to_string(n),
                       util::Table::num(exp.buffers().mean_occupancy(
                           n, util::from_seconds(warmup), util::from_seconds(duration_s))),
                       util::Table::num(exp.buffers().max_occupancy(n), 0)});
        series.emplace_back("N" + std::to_string(n), &exp.buffers().trace(n));
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("goodput: %.1f kb/s\n",
                exp.summarize(fc.flow_id, warmup, duration_s).mean_kbps);
    if (mode == Mode::kEzFlow) {
        const auto* src = exp.agent(exp.scenario().flows[static_cast<std::size_t>(fc.flow_id - 1)].path[0]);
        if (src != nullptr) {
            const auto succ = exp.scenario().flows[static_cast<std::size_t>(fc.flow_id - 1)].path[1];
            std::printf("source cw: %d (hardware cap 2^10 = 1024)\n", src->cw_toward(succ));
        }
    }
    maybe_dump_series(args,
                      std::string("fig04_") + fc.name + "_" +
                          (mode == Mode::kEzFlow ? "ezflow" : "80211"),
                      series);
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.1);
    print_header("fig04_testbed_buffers: testbed relay buffers with/without EZ-Flow",
                 "Fig. 4 — 802.11: ~42-44 pkts at N1/N2 (F1) and N4 (F2); "
                 "EZ-flow: 29.5 / 5.2 / 5.3");
    const FlowCase f1{"F1", 1, {1, 2, 3}};
    const FlowCase f2{"F2", 2, {4, 5, 6}};
    for (const FlowCase& fc : {f1, f2}) {
        run_case(args, fc, Mode::kBaseline80211);
        run_case(args, fc, Mode::kEzFlow);
    }
    std::printf(
        "\nExpected shape: under 802.11 the relays before the bottleneck saturate\n"
        "(F1: N1, N2 at the l2 bottleneck; F2: N4). EZ-flow drains them by an order\n"
        "of magnitude; F1's N1 stays partially loaded because the 2^10 cw cap limits\n"
        "how far the source can throttle itself.\n");
    return 0;
}

// Table 4: probability of each transmission pattern in every region A..H
// of the 4-hop slotted model. Prints the closed-form values next to
// Monte-Carlo estimates from the generative sampler, for both equal and
// EZ-Flow-like (source-throttled) window vectors.

#include "bench_common.h"
#include "model/region.h"
#include "model/table4.h"
#include "model/walk.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;

std::string pattern_key(const std::vector<int>& z)
{
    std::string key = "[";
    for (std::size_t i = 0; i < z.size(); ++i) {
        key += static_cast<char>('0' + z[i]);
        if (i + 1 < z.size()) key += ',';
    }
    return key + "]";
}

void report(const BenchArgs& args, const std::vector<double>& cw, const char* cw_label)
{
    std::printf("\ncontention windows %s:\n", cw_label);
    util::Table table({"region", "pattern z", "closed form", "Monte-Carlo"});

    model::RandomWalkModel::Config config;
    config.hops = 4;
    model::RandomWalkModel sampler(config, util::Rng(args.seed));

    const int n = static_cast<int>(50000 * std::max(args.scale, 0.02));
    for (int region = 0; region < 8; ++region) {
        model::BufferVector relays = {0, 0, 0};
        for (int i = 0; i < 3; ++i)
            if (region & (1 << i)) relays[static_cast<std::size_t>(i)] = 5;

        std::map<std::string, int> counts;
        for (int i = 0; i < n; ++i) ++counts[pattern_key(sampler.sample_pattern(relays, cw))];

        for (const model::Pattern& p : model::table4_distribution(region, cw)) {
            const std::string key = pattern_key(p.z);
            const double observed = counts.count(key) ? counts[key] / double(n) : 0.0;
            table.add_row({model::region_name(region, 3), key, util::Table::num(p.probability, 4),
                           util::Table::num(observed, 4)});
        }
    }
    std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 1.0);
    print_header("table4_model_probabilities: pattern distribution per region",
                 "Table 4 — closed forms vs the generative race/interference process");
    report(args, {32, 32, 32, 32}, "cw = (32, 32, 32, 32) [plain 802.11]");
    report(args, {512, 16, 16, 16}, "cw = (512, 16, 16, 16) [EZ-flow stable pattern]");
    std::printf(
        "\nExpected shape: Monte-Carlo matches the closed forms in every region;\n"
        "with the EZ-flow window vector the source-favouring patterns lose most of\n"
        "their probability mass (e.g. region B's [1,0,0,0]).\n");
    return 0;
}

// Ablation (Sec. 2.3): the static penalty policy of [9] stabilizes a
// chain when its throttling factor q matches the topology — but q is
// topology-dependent, which is exactly why EZ-Flow exists. This bench
// sweeps q over 3-, 4- and 5-hop chains and compares against EZ-Flow's
// self-tuned result.

#include "bench_common.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;
using namespace ezflow::analysis;

struct Outcome {
    double b_worst;  ///< worst mean relay backlog
    double goodput_kbps;
};

Outcome run(const BenchArgs& args, int hops, Mode mode, double q)
{
    const double duration_s = 4000.0 * args.scale;
    ExperimentOptions options;
    options.mode = mode;
    options.penalty.relay_cw = 1 << 4;
    options.penalty.q = q;
    Experiment exp(net::make_line(hops, duration_s, args.seed), options);
    exp.run();
    const double warmup = 0.4 * duration_s;
    Outcome o{0.0, exp.summarize(0, warmup, duration_s).mean_kbps};
    for (int n = 1; n < hops; ++n)
        o.b_worst = std::max(o.b_worst,
                             exp.buffers().mean_occupancy(n, util::from_seconds(warmup),
                                                          util::from_seconds(duration_s + 5)));
    return o;
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.1);
    print_header("ablation_penalty_q: static penalty of [9] vs self-tuning EZ-Flow",
                 "Sec. 2.3 — q is topology-dependent; EZ-flow discovers it online");
    util::Table table({"hops", "policy", "worst relay buffer [pkts]", "goodput [kb/s]"});
    for (const int hops : {3, 4, 5}) {
        for (const double q : {1.0, 1.0 / 4.0, 1.0 / 16.0, 1.0 / 64.0}) {
            const Outcome o = run(args, hops, Mode::kPenalty, q);
            table.add_row({std::to_string(hops), "penalty q=1/" + std::to_string(int(1.0 / q)),
                           util::Table::num(o.b_worst, 1), util::Table::num(o.goodput_kbps, 1)});
        }
        const Outcome ez = run(args, hops, Mode::kEzFlow, 1.0);
        table.add_row({std::to_string(hops), "EZ-flow (self-tuned)", util::Table::num(ez.b_worst, 1),
                       util::Table::num(ez.goodput_kbps, 1)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: no single q works everywhere — q = 1 (plain 802.11)\n"
        "saturates relays, very small q wastes capacity on short chains. EZ-flow\n"
        "matches the best static q per topology without knowing it in advance.\n");
    return 0;
}

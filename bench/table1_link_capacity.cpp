// Table 1: capacity of each link l0..l6 of flow F1 on the testbed.
// Each link is measured in isolation with a saturating CBR source, the
// same way the authors measured their radios; the per-link loss rates of
// net::testbed_link_loss() are the calibration knob.

#include "bench_common.h"
#include "traffic/source.h"

namespace {

using namespace ezflow;
using namespace ezflow::bench;

// Paper values, kb/s (means over 1200 s).
constexpr double kPaperCapacity[7] = {845, 672, 408, 748, 746, 805, 648};

double measure_link(const BenchArgs& args, int link, double duration_s)
{
    // A 1-hop network with the link's loss rate applied.
    net::Network net(net::testbed_config(args.seed + static_cast<std::uint64_t>(link)));
    const auto tx = net.add_node({0, 0});
    const auto rx = net.add_node({200, 0});
    net.add_flow(0, {tx, rx});
    net.channel().set_link_loss(tx, rx, net::testbed_link_loss()[static_cast<std::size_t>(link)]);
    traffic::Sink sink(net);
    sink.attach_flow(0);
    traffic::CbrSource source(net, 0, 1000, 2e6);
    source.activate(0, util::from_seconds(duration_s));
    net.run_until(util::from_seconds(duration_s));
    return sink.goodput_kbps(0, util::from_seconds(duration_s * 0.05),
                             util::from_seconds(duration_s));
}

}  // namespace

int main(int argc, char** argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv, 0.1);
    const double duration_s = 1200.0 * args.scale;
    print_header("table1_link_capacity: per-link capacity of flow F1's links",
                 "Table 1 — l2 is the bottleneck at ~408 kb/s");

    util::Table table({"link", "measured [kb/s]", "paper [kb/s]", "loss calib."});
    for (int l = 0; l < 7; ++l) {
        const double measured = measure_link(args, l, duration_s);
        table.add_row({"l" + std::to_string(l), util::Table::num(measured, 0),
                       util::Table::num(kPaperCapacity[l], 0),
                       util::Table::num(net::testbed_link_loss()[static_cast<std::size_t>(l)], 2)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "\nExpected shape: l0 fastest (~845 kb/s at 1 Mb/s PHY), l2 the bottleneck\n"
        "around half of that, the remaining links in between.\n");
    return 0;
}

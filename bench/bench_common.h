#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "net/topologies.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

// Shared plumbing for the per-table/per-figure harnesses.
//
// Every harness accepts:
//   --scale=<f>   multiply the paper's timeline by f (default below 1 so the
//                 whole bench directory replays in minutes; use --scale=1
//                 for the paper's full durations)
//   --seed=<n>    root RNG seed
//   --csv=<dir>   also dump figure series as CSV files into <dir>
namespace ezflow::bench {

struct BenchArgs {
    double scale;
    std::uint64_t seed;
    std::string csv_dir;

    static BenchArgs parse(int argc, char** argv, double default_scale)
    {
        util::Cli cli(argc, argv);
        BenchArgs args;
        args.scale = cli.get_double("scale", default_scale);
        args.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
        args.csv_dir = cli.get("csv", "");
        return args;
    }
};

inline void print_header(const std::string& title, const std::string& paper_reference)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s)\n", paper_reference.c_str());
    std::printf("==============================================================\n");
}

/// The three activity periods of scenario 1 (Fig. 5 timeline), scaled.
struct Scenario1Periods {
    double p1_begin, p1_end;  ///< F1 alone
    double p2_begin, p2_end;  ///< F1 + F2
    double p3_begin, p3_end;  ///< F1 alone again
    double total;

    explicit Scenario1Periods(double scale)
        : p1_begin(5 * scale),
          p1_end(605 * scale),
          p2_begin(605 * scale),
          p2_end(1804 * scale),
          p3_begin(1804 * scale),
          p3_end(2504 * scale),
          total(2504 * scale)
    {
    }
};

/// Run scenario 1 under one mode and return the finished experiment.
inline std::unique_ptr<analysis::Experiment> run_scenario1(const BenchArgs& args,
                                                           analysis::Mode mode)
{
    analysis::ExperimentOptions options;
    options.mode = mode;
    auto exp =
        std::make_unique<analysis::Experiment>(net::make_scenario1(args.scale, args.seed), options);
    exp->run();
    return exp;
}

/// The three activity periods of scenario 2 (Fig. 9 timeline), scaled.
struct Scenario2Periods {
    double p1_begin, p1_end;  ///< F1 + F2
    double p2_begin, p2_end;  ///< F1 + F2 + F3
    double p3_begin, p3_end;  ///< F1 alone
    double total;

    explicit Scenario2Periods(double scale)
        : p1_begin(5 * scale),
          p1_end(1805 * scale),
          p2_begin(1805 * scale),
          p2_end(3605 * scale),
          p3_begin(3605 * scale),
          p3_end(4500 * scale),
          total(4500 * scale)
    {
    }
};

inline std::unique_ptr<analysis::Experiment> run_scenario2(const BenchArgs& args,
                                                           analysis::Mode mode)
{
    analysis::ExperimentOptions options;
    options.mode = mode;
    auto exp =
        std::make_unique<analysis::Experiment>(net::make_scenario2(args.scale, args.seed), options);
    exp->run();
    return exp;
}

/// Dump a time series as CSV when --csv was given.
inline void maybe_dump_series(const BenchArgs& args, const std::string& name,
                              const std::vector<std::pair<std::string, const util::TimeSeries*>>& series)
{
    if (args.csv_dir.empty()) return;
    for (const auto& [label, ts] : series) {
        util::CsvWriter csv(args.csv_dir + "/" + name + "_" + label + ".csv", {"time_s", "value"});
        for (std::size_t i = 0; i < ts->size(); ++i)
            csv.add_row(std::vector<double>{util::to_seconds(ts->times()[i]), ts->values()[i]});
    }
    std::printf("[csv] wrote %zu series under %s/%s_*.csv\n", series.size(), args.csv_dir.c_str(),
                name.c_str());
}

}  // namespace ezflow::bench

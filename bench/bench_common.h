#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "analysis/sweep.h"
#include "net/topologies.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

// Shared plumbing for the per-table/per-figure harnesses.
//
// Every harness accepts:
//   --scale=<f>    multiply the paper's timeline by f (default below 1 so the
//                  whole bench directory replays in minutes; use --scale=1
//                  for the paper's full durations)
//   --seed=<n>     first root RNG seed
//   --seeds=<k>    sweep k consecutive seeds (seed, seed+1, ...) and report
//                  mean +/- 95% CI across them
//   --threads=<t>  worker threads for the sweep (0 = hardware concurrency)
//   --csv=<dir>    also dump figure series as CSV files into <dir>
//                  (series come from the first seed's run)
namespace ezflow::bench {

struct BenchArgs {
    double scale;
    std::uint64_t seed;
    int seeds;
    int threads;
    std::string csv_dir;

    static BenchArgs parse(int argc, char** argv, double default_scale, int default_seeds = 8)
    {
        util::Cli cli(argc, argv);
        BenchArgs args;
        args.scale = cli.get_double("scale", default_scale);
        args.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
        args.seeds = std::max(1, cli.get_int("seeds", default_seeds));
        args.threads = cli.get_int("threads", 0);
        args.csv_dir = cli.get("csv", "");
        return args;
    }

    std::vector<std::uint64_t> seed_grid() const
    {
        std::vector<std::uint64_t> grid;
        grid.reserve(static_cast<std::size_t>(seeds));
        for (int i = 0; i < seeds; ++i) grid.push_back(seed + static_cast<std::uint64_t>(i));
        return grid;
    }
};

inline void print_header(const std::string& title, const std::string& paper_reference)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s)\n", paper_reference.c_str());
    std::printf("==============================================================\n");
}

/// "183.9 +/-4.2" — a sweep aggregate cell for the report tables.
inline std::string with_ci(const util::RunningStats& stats, int decimals)
{
    if (stats.count() <= 1) return util::Table::num(stats.mean(), decimals);
    return util::Table::num(stats.mean(), decimals) + " +/-" +
           util::Table::num(util::ci95_halfwidth(stats), decimals);
}

/// Fan `modes` x the args' seed grid across a thread pool. Results are in
/// mode order; each carries per-window aggregates (mean/CI across seeds).
inline std::vector<analysis::SweepResult> sweep_modes(
    const BenchArgs& args, const analysis::ScenarioSpec& spec,
    const std::vector<analysis::Mode>& modes, std::vector<analysis::SweepWindow> windows,
    bool keep_experiments = false)
{
    std::vector<analysis::ExperimentFactory> cells;
    cells.reserve(modes.size());
    for (analysis::Mode mode : modes) {
        analysis::ExperimentOptions options;
        options.mode = mode;
        cells.emplace_back(spec, options);
    }
    analysis::SweepConfig config;
    config.windows = std::move(windows);
    config.seeds = args.seed_grid();
    config.keep_experiments = keep_experiments || !args.csv_dir.empty();
    auto results = analysis::SweepRunner(args.threads).run_grid(cells, config);
    // --csv only plots the first seed's series; don't keep the other
    // seeds' Networks alive unless the driver asked for all of them.
    if (!keep_experiments) {
        for (analysis::SweepResult& result : results)
            if (result.experiments.size() > 1) result.experiments.resize(1);
    }
    return results;
}

inline void print_sweep_footer(const BenchArgs& args, const analysis::SweepResult& result)
{
    std::printf("[sweep] %d seed(s) (%llu..%llu), %.2f s wall%s\n", args.seeds,
                static_cast<unsigned long long>(args.seed),
                static_cast<unsigned long long>(args.seed + static_cast<std::uint64_t>(args.seeds) - 1),
                result.wall_seconds, args.threads == 0 ? " (all cores)" : "");
}

/// The three activity periods of scenario 1 (Fig. 5 timeline), scaled.
struct Scenario1Periods {
    double p1_begin, p1_end;  ///< F1 alone
    double p2_begin, p2_end;  ///< F1 + F2
    double p3_begin, p3_end;  ///< F1 alone again
    double total;

    explicit Scenario1Periods(double scale)
        : p1_begin(5 * scale),
          p1_end(605 * scale),
          p2_begin(605 * scale),
          p2_end(1804 * scale),
          p3_begin(1804 * scale),
          p3_end(2504 * scale),
          total(2504 * scale)
    {
    }

    /// The settled regime of each period (the paper reports means net of a
    /// warmup after every traffic-matrix change), as sweep windows.
    std::vector<analysis::SweepWindow> windows() const
    {
        const double w1 = 0.3 * (p1_end - p1_begin);
        const double w2 = 0.3 * (p2_end - p2_begin);
        return {
            {"F1 alone", p1_begin + w1, p1_end, {1}},
            {"F1 + F2", p2_begin + w2, p2_end, {1, 2}},
            {"F1 alone again", p3_begin + w2, p3_end, {1}},
        };
    }
};

/// The three activity periods of scenario 2 (Fig. 9 timeline), scaled.
struct Scenario2Periods {
    double p1_begin, p1_end;  ///< F1 + F2
    double p2_begin, p2_end;  ///< F1 + F2 + F3
    double p3_begin, p3_end;  ///< F1 alone
    double total;

    explicit Scenario2Periods(double scale)
        : p1_begin(5 * scale),
          p1_end(1805 * scale),
          p2_begin(1805 * scale),
          p2_end(3605 * scale),
          p3_begin(3605 * scale),
          p3_end(4500 * scale),
          total(4500 * scale)
    {
    }

    std::vector<analysis::SweepWindow> windows() const
    {
        const double w1 = 0.3 * (p1_end - p1_begin);
        const double w2 = 0.3 * (p2_end - p2_begin);
        const double w3 = 0.3 * (p3_end - p3_begin);
        return {
            {"F1 + F2", p1_begin + w1, p1_end, {1, 2}},
            {"F1 + F2 + F3", p2_begin + w2, p2_end, {1, 2, 3}},
            {"F1 alone", p3_begin + w3, p3_end, {1}},
        };
    }
};

/// Dump a time series as CSV when --csv was given.
inline void maybe_dump_series(const BenchArgs& args, const std::string& name,
                              const std::vector<std::pair<std::string, const util::TimeSeries*>>& series)
{
    if (args.csv_dir.empty()) return;
    for (const auto& [label, ts] : series) {
        util::CsvWriter csv(args.csv_dir + "/" + name + "_" + label + ".csv", {"time_s", "value"});
        for (std::size_t i = 0; i < ts->size(); ++i)
            csv.add_row(std::vector<double>{util::to_seconds(ts->times()[i]), ts->values()[i]});
    }
    std::printf("[csv] wrote %zu series under %s/%s_*.csv\n", series.size(), args.csv_dir.c_str(),
                name.c_str());
}

}  // namespace ezflow::bench

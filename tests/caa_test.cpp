#include <gtest/gtest.h>

#include <vector>

#include "core/caa.h"

namespace ezflow::core {
namespace {

/// Harness recording every cw the CAA applies.
struct CaaBed {
    std::vector<int> applied;
    ChannelAccessAdaptation caa;

    explicit CaaBed(CaaConfig config = {})
        : caa(config, [this](int cw) { applied.push_back(cw); })
    {
    }

    /// Feed one full decision window of identical samples.
    void window(int occupancy)
    {
        for (int i = 0; i < caa.config().sample_window; ++i) caa.on_sample(occupancy);
    }
};

TEST(Caa, AppliesInitialCwOnConstruction)
{
    CaaBed bed;
    ASSERT_EQ(bed.applied.size(), 1u);
    EXPECT_EQ(bed.applied[0], 1 << 4);
}

TEST(Caa, NoDecisionBeforeFullWindow)
{
    CaaBed bed;
    for (int i = 0; i < bed.caa.config().sample_window - 1; ++i) bed.caa.on_sample(100);
    EXPECT_EQ(bed.caa.decisions(), 0u);
    bed.caa.on_sample(100);
    EXPECT_EQ(bed.caa.decisions(), 1u);
}

TEST(Caa, OverUtilizationNeedsLog2CwConsecutiveWindows)
{
    // At cw = 16, log2(cw) = 4 consecutive over-threshold windows double
    // the window; the counter then resets.
    CaaBed bed;
    for (int w = 0; w < 3; ++w) {
        bed.window(30);
        EXPECT_EQ(bed.caa.cw(), 16) << "window " << w;
    }
    EXPECT_EQ(bed.caa.countup(), 3);
    bed.window(30);
    EXPECT_EQ(bed.caa.cw(), 32);
    EXPECT_EQ(bed.caa.countup(), 0);
}

TEST(Caa, HigherCwReactsSlowerToOverUtilization)
{
    // From cw = 32 (log2 = 5), five windows are needed for the next
    // doubling — the fairness asymmetry of Algorithm 1.
    CaaBed bed;
    for (int w = 0; w < 4; ++w) bed.window(30);  // 16 -> 32
    ASSERT_EQ(bed.caa.cw(), 32);
    for (int w = 0; w < 4; ++w) bed.window(30);
    EXPECT_EQ(bed.caa.cw(), 32) << "needs 5 windows at cw=32";
    bed.window(30);
    EXPECT_EQ(bed.caa.cw(), 64);
}

TEST(Caa, UnderUtilizationNeedsCountBaseMinusLog2Windows)
{
    // Drive cw up to 64 first, then drain: at cw = 64 (log2 = 6),
    // 15 - 6 = 9 consecutive empty windows halve it.
    CaaBed bed;
    for (int w = 0; w < 4 + 5; ++w) bed.window(30);
    ASSERT_EQ(bed.caa.cw(), 64);
    for (int w = 0; w < 8; ++w) {
        bed.window(0);
        EXPECT_EQ(bed.caa.cw(), 64) << "window " << w;
    }
    bed.window(0);
    EXPECT_EQ(bed.caa.cw(), 32);
    EXPECT_EQ(bed.caa.countdown(), 0);
}

TEST(Caa, HighCwReactsFasterToUnderUtilization)
{
    // The countdown threshold shrinks as cw grows: at cw = 2^10 only
    // 15 - 10 = 5 empty windows are needed.
    CaaConfig config;
    config.initial_cw = 1 << 10;
    CaaBed bed(config);
    for (int w = 0; w < 4; ++w) {
        bed.window(0);
        EXPECT_EQ(bed.caa.cw(), 1 << 10);
    }
    bed.window(0);
    EXPECT_EQ(bed.caa.cw(), 1 << 9);
}

TEST(Caa, MiddleBandResetsBothCounters)
{
    CaaBed bed;
    bed.window(30);
    bed.window(30);
    EXPECT_EQ(bed.caa.countup(), 2);
    bed.window(5);  // bmin < 5 < bmax: healthy
    EXPECT_EQ(bed.caa.countup(), 0);
    EXPECT_EQ(bed.caa.countdown(), 0);
    EXPECT_EQ(bed.caa.cw(), 16);
}

TEST(Caa, AlternatingSignalsNeverAdapt)
{
    // Hysteresis: alternating over/under windows keep resetting the
    // opposite counter; cw never moves.
    CaaBed bed;
    for (int w = 0; w < 20; ++w) bed.window(w % 2 == 0 ? 30 : 0);
    EXPECT_EQ(bed.caa.cw(), 16);
}

TEST(Caa, ClampsAtMaxCw)
{
    CaaConfig config;
    config.max_cw = 1 << 6;
    CaaBed bed(config);
    for (int w = 0; w < 200; ++w) bed.window(30);
    EXPECT_EQ(bed.caa.cw(), 1 << 6);
}

TEST(Caa, ClampsAtMinCw)
{
    CaaBed bed;
    for (int w = 0; w < 300; ++w) bed.window(0);
    EXPECT_EQ(bed.caa.cw(), bed.caa.config().min_cw);
}

TEST(Caa, TestbedHardwareCapAt2Pow10)
{
    // The MadWifi driver ignored CWmin above 2^10; modelled as max_cw.
    CaaConfig config;
    config.max_cw = 1 << 10;
    CaaBed bed(config);
    for (int w = 0; w < 400; ++w) bed.window(50);
    EXPECT_EQ(bed.caa.cw(), 1 << 10);
}

TEST(Caa, BminIsFractional)
{
    // bmin = 0.05: a single non-zero sample in a 50-sample window pushes
    // the average to 0.02 < bmin only if the other 49 are zero and the
    // one sample is 1 -> 1/50 = 0.02 < 0.05: still "empty". Two such
    // samples (0.04) remain under; three (0.06) do not.
    CaaConfig config;
    config.initial_cw = 1 << 5;
    CaaBed bed(config);
    auto feed = [&](int nonzero) {
        for (int i = 0; i < bed.caa.config().sample_window; ++i)
            bed.caa.on_sample(i < nonzero ? 1 : 0);
    };
    const int before = bed.caa.countdown();
    feed(2);
    EXPECT_EQ(bed.caa.countdown(), before + 1) << "avg 0.04 < bmin";
    feed(3);
    EXPECT_EQ(bed.caa.countdown(), 0) << "avg 0.06 >= bmin resets";
}

TEST(Caa, AppliesCwThroughCallbackExactlyOnChanges)
{
    CaaBed bed;
    for (int w = 0; w < 4; ++w) bed.window(30);
    for (int w = 0; w < 5; ++w) bed.window(30);
    // initial 16, then 32, then 64.
    EXPECT_EQ(bed.applied, (std::vector<int>{16, 32, 64}));
}

TEST(Caa, RejectsInvalidConfig)
{
    CaaConfig bad;
    bad.min_cw = 20;  // not a power of two
    EXPECT_THROW(ChannelAccessAdaptation(bad, nullptr), std::invalid_argument);
    bad = CaaConfig{};
    bad.initial_cw = 1 << 20;  // above max
    EXPECT_THROW(ChannelAccessAdaptation(bad, nullptr), std::invalid_argument);
    bad = CaaConfig{};
    bad.bmin = 30.0;
    bad.bmax = 20.0;
    EXPECT_THROW(ChannelAccessAdaptation(bad, nullptr), std::invalid_argument);
    bad = CaaConfig{};
    bad.sample_window = 0;
    EXPECT_THROW(ChannelAccessAdaptation(bad, nullptr), std::invalid_argument);
}

TEST(Caa, RejectsNegativeSample)
{
    CaaBed bed;
    EXPECT_THROW(bed.caa.on_sample(-1), std::invalid_argument);
}

TEST(Caa, Log2Exact)
{
    EXPECT_EQ(ChannelAccessAdaptation::log2_exact(1), 0);
    EXPECT_EQ(ChannelAccessAdaptation::log2_exact(16), 4);
    EXPECT_EQ(ChannelAccessAdaptation::log2_exact(1 << 15), 15);
    EXPECT_THROW(ChannelAccessAdaptation::log2_exact(24), std::invalid_argument);
    EXPECT_THROW(ChannelAccessAdaptation::log2_exact(0), std::invalid_argument);
}

// Property sweep: from any initial power-of-two cw, sustained congestion
// drives cw to max_cw and sustained idleness back to min_cw, and cw is a
// power of two throughout (the hardware constraint Sec. 3.3 cites).
class CaaProperty : public ::testing::TestWithParam<int> {};

TEST_P(CaaProperty, SaturationAndDrainReachBounds)
{
    CaaConfig config;
    config.initial_cw = 1 << GetParam();
    CaaBed bed(config);
    for (int w = 0; w < 300; ++w) {
        bed.window(25);
        const int cw = bed.caa.cw();
        EXPECT_EQ(cw & (cw - 1), 0) << "cw must stay a power of two";
    }
    EXPECT_EQ(bed.caa.cw(), config.max_cw);
    for (int w = 0; w < 300; ++w) bed.window(0);
    EXPECT_EQ(bed.caa.cw(), config.min_cw);
}

INSTANTIATE_TEST_SUITE_P(InitialCwSweep, CaaProperty, ::testing::Values(4, 6, 8, 10, 12, 15));

}  // namespace
}  // namespace ezflow::core

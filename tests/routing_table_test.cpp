// Property test for the compiled RoutingTable: across randomized
// topologies and flow sets, its answers (next_hop, has_next_hop, error
// behaviour) must be identical to the map-based StaticRouting scan it
// compiles from — the builder stays the executable reference so the O(1)
// swap can never silently change a simulation.

#include "net/routing.h"

#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <set>
#include <vector>

#include "util/rng.h"

namespace ezflow::net {
namespace {

/// Outcome of one lookup: the next hop, or "threw std::invalid_argument".
struct LookupOutcome {
    std::optional<NodeId> next;
    bool threw = false;

    bool operator==(const LookupOutcome& other) const
    {
        return threw == other.threw && next == other.next;
    }
};

template <typename Lookup>
LookupOutcome probe(Lookup&& lookup)
{
    LookupOutcome outcome;
    try {
        outcome.next = lookup();
    } catch (const std::invalid_argument&) {
        outcome.threw = true;
    }
    return outcome;
}

/// A random simple path of 2..max_len distinct nodes out of `universe`,
/// occasionally shifted below zero: StaticRouting itself accepts any
/// NodeId values (Network validates ids separately), so the compiled
/// table must agree on negative ids too.
std::vector<NodeId> random_path(util::Rng& rng, int universe, int max_len)
{
    const int want = rng.uniform_int(2, max_len);
    const int shift = rng.bernoulli(0.2) ? rng.uniform_int(1, 4) : 0;
    std::vector<NodeId> pool;
    for (int n = 0; n < universe; ++n) pool.push_back(n - shift);
    std::vector<NodeId> path;
    for (int i = 0; i < want && !pool.empty(); ++i) {
        const int pick = rng.uniform_int(0, static_cast<int>(pool.size()) - 1);
        path.push_back(pool[static_cast<std::size_t>(pick)]);
        pool.erase(pool.begin() + pick);
    }
    return path;
}

TEST(RoutingTable, MatchesMapScanReferenceOn200RandomTopologies)
{
    util::Rng rng(20260728);
    for (int trial = 0; trial < 200; ++trial) {
        const int universe = rng.uniform_int(2, 60);
        const int flows = rng.uniform_int(0, 12);
        // Mix of packed and sparse flow ids: sparse sets exercise the
        // binary-search fallback of the compiled index.
        const bool sparse_ids = rng.bernoulli(0.25);

        StaticRouting reference;
        std::set<int> used_ids;
        for (int f = 0; f < flows; ++f) {
            const int flow_id = sparse_ids ? rng.uniform_int(0, 1'000'000'000)
                                           : rng.uniform_int(0, 16);
            if (!used_ids.insert(flow_id).second) continue;
            std::vector<NodeId> path = random_path(rng, universe, 8);
            if (path.size() < 2) continue;
            reference.add_flow(flow_id, std::move(path));
        }
        RoutingTable table(reference);

        // Probe every registered flow plus unknown ids, across all nodes
        // in (and slightly beyond) the universe, including negatives.
        std::vector<int> probe_flows(used_ids.begin(), used_ids.end());
        probe_flows.push_back(-1);
        probe_flows.push_back(17);
        probe_flows.push_back(rng.uniform_int(0, 1'000'000'000));
        for (const int flow_id : probe_flows) {
            for (NodeId node = -6; node < universe + 2; ++node) {
                EXPECT_EQ(reference.has_next_hop(flow_id, node),
                          table.has_next_hop(flow_id, node))
                    << "trial " << trial << " flow " << flow_id << " node " << node;
                const LookupOutcome expected =
                    probe([&] { return reference.next_hop(flow_id, node); });
                const LookupOutcome actual = probe([&] { return table.next_hop(flow_id, node); });
                EXPECT_EQ(expected, actual)
                    << "trial " << trial << " flow " << flow_id << " node " << node;
            }
        }
    }
}

TEST(RoutingTable, RecompilesWhenTheBuilderGrows)
{
    StaticRouting builder;
    RoutingTable table(builder);
    builder.add_flow(1, {0, 1, 2});
    EXPECT_EQ(table.next_hop(1, 0), 1);
    EXPECT_FALSE(table.has_next_hop(2, 0));
    // Flows added after the first lookups must be picked up transparently.
    builder.add_flow(2, {2, 1, 0});
    EXPECT_EQ(table.next_hop(2, 2), 1);
    EXPECT_EQ(table.next_hop(2, 1), 0);
    EXPECT_EQ(table.flow_count(), 2);
    EXPECT_EQ(table.node_stride(), 3);
}

TEST(RoutingTable, SingleProbeLookupMirrorsHasNextHop)
{
    StaticRouting builder;
    builder.add_flow(7, {3, 1, 4});
    RoutingTable table(builder);
    EXPECT_EQ(table.next_hop_or_none(7, 3), 1);
    EXPECT_EQ(table.next_hop_or_none(7, 1), 4);
    EXPECT_EQ(table.next_hop_or_none(7, 4), RoutingTable::kNoNextHop);   // destination
    EXPECT_EQ(table.next_hop_or_none(7, 0), RoutingTable::kNoNextHop);   // off path
    EXPECT_EQ(table.next_hop_or_none(8, 3), RoutingTable::kNoNextHop);   // unknown flow
    EXPECT_EQ(table.next_hop_or_none(7, -5), RoutingTable::kNoNextHop);  // bad node
    // Extreme probes must stay defined (64-bit slot arithmetic).
    EXPECT_EQ(table.next_hop_or_none(7, std::numeric_limits<NodeId>::min()),
              RoutingTable::kNoNextHop);
    EXPECT_EQ(table.next_hop_or_none(7, std::numeric_limits<NodeId>::max()),
              RoutingTable::kNoNextHop);
    EXPECT_FALSE(table.has_next_hop(7, std::numeric_limits<NodeId>::min()));
}

TEST(RoutingTable, HandlesNegativeNodeIdsLikeTheReference)
{
    // The builder does not constrain NodeId values (Network validates
    // ids against the node table separately), so the compiled axis must
    // cover whatever range the paths use.
    StaticRouting builder;
    builder.add_flow(1, {-5, 3, -2});
    RoutingTable table(builder);
    EXPECT_EQ(table.next_hop(1, -5), 3);
    EXPECT_EQ(table.next_hop(1, 3), -2);
    EXPECT_FALSE(table.has_next_hop(1, -2));  // destination
    EXPECT_FALSE(table.has_next_hop(1, 0));   // inside the range, off path
    EXPECT_THROW(table.next_hop(1, -6), std::invalid_argument);
}

TEST(RoutingTable, BuilderRejectsOutOfRangeNodeIds)
{
    // The bounded id domain is what makes table-vs-builder equivalence
    // total: no accepted path can collide with the kNoNextHop sentinel
    // or overflow the dense axis.
    StaticRouting builder;
    EXPECT_THROW(builder.add_flow(1, {0, std::numeric_limits<NodeId>::min()}),
                 std::invalid_argument);
    EXPECT_THROW(builder.add_flow(1, {-StaticRouting::kMaxNodeId - 1, 0}),
                 std::invalid_argument);
    EXPECT_THROW(builder.add_flow(1, {0, StaticRouting::kMaxNodeId + 1}),
                 std::invalid_argument);
    builder.add_flow(1, {-3, 0});  // in-range negatives stay legal
    EXPECT_EQ(RoutingTable(builder).next_hop(1, -3), 0);
}

TEST(RoutingTable, EmptyBuilderAnswersLikeTheReference)
{
    StaticRouting builder;
    RoutingTable table(builder);
    EXPECT_FALSE(table.has_next_hop(0, 0));
    EXPECT_THROW(table.next_hop(0, 0), std::invalid_argument);
    EXPECT_EQ(table.flow_count(), 0);
}

}  // namespace
}  // namespace ezflow::net

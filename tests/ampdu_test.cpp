// A-MPDU aggregation & block-ack: the BlockAckManager's selective
// retransmit and receiver scoreboard, the PHY's per-MPDU interference
// intervals and overlap-weighted capture, and the end-to-end properties
// the TXOP-batch refactor must keep — exactly-once in-order delivery
// under random loss, balanced drop ledgers under churn and kill-time
// scans, and deterministic replays at K > 1.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "analysis/drop_audit.h"
#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "experiment_fingerprint.h"
#include "mac/block_ack.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "net/topo_gen.h"
#include "phy/channel.h"
#include "phy/frame.h"
#include "phy/phy.h"
#include "sim/fault_injector.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/units.h"

namespace ezflow {
namespace {

using analysis::ExperimentFactory;
using analysis::ExperimentOptions;
using analysis::ScenarioSpec;
using mac::BlockAckManager;

// ------------------------------------------- BlockAckManager: sender side

net::Packet test_packet(std::uint64_t uid)
{
    net::Packet packet;
    packet.uid = uid;
    packet.flow_id = 1;
    packet.seq = uid;
    packet.bytes = 1000;
    return packet;
}

TEST(BlockAckSender, SelectiveRetransmitKeepsOnlyUnacked)
{
    BlockAckManager ba;
    for (std::uint32_t seq = 10; seq < 14; ++seq) ba.add_mpdu(test_packet(seq), seq);
    ASSERT_TRUE(ba.batch_active());
    EXPECT_EQ(ba.window_start(), 10u);

    // Block-ack acknowledges seq 10 and 12 (bits 0 and 2).
    const auto settled = ba.on_block_ack(10, 0b101, /*retry_limit=*/7);
    ASSERT_EQ(settled.acked.size(), 2u);
    EXPECT_EQ(settled.acked[0].seq, 10u);
    EXPECT_EQ(settled.acked[1].seq, 12u);
    EXPECT_TRUE(settled.dropped.empty());
    ASSERT_EQ(ba.window_size(), 2u);
    EXPECT_EQ(ba.window_start(), 11u);
    EXPECT_EQ(ba.window()[0].retry, 1);
    EXPECT_EQ(ba.window()[1].retry, 1);
}

TEST(BlockAckSender, SlidPastStartCountsAsAcked)
{
    BlockAckManager ba;
    for (std::uint32_t seq = 0; seq < 3; ++seq) ba.add_mpdu(test_packet(seq), seq);
    // A start beyond seq 0 and 1 acknowledges them even with a zero bitmap.
    const auto settled = ba.on_block_ack(2, 0, /*retry_limit=*/7);
    ASSERT_EQ(settled.acked.size(), 2u);
    EXPECT_EQ(ba.window_size(), 1u);
    EXPECT_EQ(ba.window_start(), 2u);
}

TEST(BlockAckSender, TimeoutPastRetryLimitDropsExactlyOnce)
{
    BlockAckManager ba;
    ba.add_mpdu(test_packet(5), 5);
    for (int attempt = 0; attempt < 2; ++attempt) {
        const auto settled = ba.on_timeout(/*retry_limit=*/3);
        EXPECT_TRUE(settled.acked.empty());
        EXPECT_TRUE(settled.dropped.empty());
    }
    EXPECT_EQ(ba.window()[0].retry, 2);
    ba.on_timeout(3);
    const auto last = ba.on_timeout(3);  // retry 4 > limit 3
    ASSERT_EQ(last.dropped.size(), 1u);
    EXPECT_EQ(last.dropped[0].seq, 5u);
    EXPECT_FALSE(ba.batch_active());
}

TEST(BlockAckSender, NonAscendingSeqRejected)
{
    BlockAckManager ba;
    ba.add_mpdu(test_packet(4), 4);
    EXPECT_THROW(ba.add_mpdu(test_packet(3), 3), std::logic_error);
}

// ----------------------------------------- BlockAckManager: receiver side

phy::Frame aggregated_frame(net::NodeId from, net::NodeId to, std::uint32_t start, int count)
{
    phy::Frame frame;
    frame.type = phy::FrameType::kData;
    frame.tx_node = from;
    frame.rx_node = to;
    frame.mac_seq = start;
    frame.ba_start_seq = start;
    for (int i = 0; i < count; ++i) {
        phy::Mpdu mpdu;
        mpdu.packet = test_packet(start + static_cast<std::uint32_t>(i));
        mpdu.seq = start + static_cast<std::uint32_t>(i);
        frame.subframes.push_back(std::move(mpdu));
    }
    return frame;
}

TEST(BlockAckReceiver, ScoresDedupsAndAnswers)
{
    BlockAckManager ba;
    const phy::Frame frame = aggregated_frame(7, 8, 0, 4);
    // Subframe 1 corrupted on the air.
    const auto first = ba.receive(frame, 0b0010);
    EXPECT_EQ(first.ok_bits, 0b1101u);
    EXPECT_EQ(first.duplicates, 0u);

    const auto response = ba.response_for(7);
    EXPECT_EQ(response.start, 0u);
    EXPECT_EQ(response.bitmap, 0b1101u);

    // Retransmission of the full batch: only the hole is new.
    const auto second = ba.receive(frame, 0);
    EXPECT_EQ(second.ok_bits, 0b0010u);
    EXPECT_EQ(second.duplicates, 3u);
    EXPECT_EQ(ba.response_for(7).bitmap, 0b1111u);
}

TEST(BlockAckReceiver, AdvertisedStartReleasesScoreboard)
{
    BlockAckManager ba;
    ba.receive(aggregated_frame(7, 8, 0, 2), 0);
    // The sender's window moved to 2: the next frame advertises it and the
    // receiver releases everything below.
    const auto verdict = ba.receive(aggregated_frame(7, 8, 2, 2), 0);
    EXPECT_EQ(verdict.release_below, 2u);
    EXPECT_EQ(verdict.ok_bits, 0b11u);
    const auto response = ba.response_for(7);
    EXPECT_EQ(response.start, 2u);
    EXPECT_EQ(response.bitmap, 0b11u);
}

// --------------------------------------------- PHY: A-MPDU airtime tiling

TEST(AmpduPhy, MpduEndOffsetsTileTheAirtime)
{
    phy::PhyParams params;
    phy::Frame frame = aggregated_frame(0, 1, 0, 5);
    frame.subframes[2].packet.bytes = 250;  // uneven subframe sizes
    std::vector<util::SimTime> ends;
    params.mpdu_end_offsets(frame, ends);
    ASSERT_EQ(ends.size(), 5u);
    for (std::size_t i = 1; i < ends.size(); ++i) EXPECT_GT(ends[i], ends[i - 1]);
    // The last offset is the whole PPDU airtime: per-MPDU interference
    // intervals tile the frame exactly, with no uncovered tail.
    EXPECT_EQ(ends.back(), params.tx_duration(frame));
    EXPECT_GT(ends.front(), params.plcp_overhead_us);
}

// ----------------------------- PHY: overlap-weighted interference verdict

/// Minimal channel bed (mirrors phy_test.cpp): raw NodePhys on a channel,
/// no MAC, transmissions driven by hand.
class CountingListener final : public phy::PhyListener {
public:
    int decoded = 0;
    void phy_busy_changed(bool) override {}
    void phy_frame_decoded(const phy::Frame&) override { ++decoded; }
    void phy_tx_done(const phy::Frame&) override {}
};

struct PhyBed {
    sim::Scheduler scheduler;
    phy::Channel channel;
    std::vector<std::unique_ptr<phy::NodePhy>> phys;
    std::vector<std::unique_ptr<CountingListener>> listeners;

    explicit PhyBed(phy::PhyParams params) : channel(scheduler, util::Rng(7), params) {}

    phy::NodePhy& add(double x)
    {
        const auto id = static_cast<net::NodeId>(phys.size());
        phys.push_back(std::make_unique<phy::NodePhy>(id, phy::Position{x, 0.0}, scheduler));
        listeners.push_back(std::make_unique<CountingListener>());
        channel.attach(*phys.back());
        phys.back()->set_listener(listeners.back().get());
        return *phys.back();
    }
};

phy::Frame plain_data(net::NodeId from, net::NodeId to, int bytes)
{
    phy::Frame frame;
    frame.type = phy::FrameType::kData;
    frame.tx_node = from;
    frame.rx_node = to;
    frame.has_packet = true;
    frame.packet.bytes = bytes;
    return frame;
}

/// Run the hidden-terminal geometry — a(0) -> b(200) locked, interferer
/// c(400) equal-power at b — with an interferer of `interferer_bytes`
/// starting 1 ms into the data frame. Returns whether b decoded the frame.
bool hidden_terminal_decodes(bool weighted, int interferer_bytes)
{
    phy::PhyParams params;
    params.weighted_overlap_interference = weighted;
    PhyBed bed(params);
    phy::NodePhy& a = bed.add(0);
    bed.add(200);
    phy::NodePhy& c = bed.add(400);
    a.start_tx(plain_data(0, 1, 1000));
    bed.scheduler.schedule_at(1000, [&] { c.start_tx(plain_data(2, 3, interferer_bytes)); });
    bed.scheduler.run();
    EXPECT_EQ(bed.listeners[1]->decoded + static_cast<int>(bed.phys[1]->frames_corrupted()), 1);
    return bed.listeners[1]->decoded == 1;
}

TEST(WeightedOverlap, FullOverlapMatchesStickyVerdict)
{
    // An equal-power interferer spanning (essentially all of) the locked
    // frame corrupts it under both regimes: the overlap weight is ~1, so
    // the weighted mean equals the instantaneous sum the sticky test uses.
    EXPECT_FALSE(hidden_terminal_decodes(/*weighted=*/false, /*interferer_bytes=*/1000));
    EXPECT_FALSE(hidden_terminal_decodes(/*weighted=*/true, /*interferer_bytes=*/1000));
}

TEST(WeightedOverlap, BriefInterfererOnlyCorruptsSticky)
{
    // A 10-byte burst overlaps ~6% of the 1000-byte frame: the sticky
    // instantaneous test corrupts the whole frame, the overlap-weighted
    // integral amortises the burst below the capture threshold.
    EXPECT_FALSE(hidden_terminal_decodes(/*weighted=*/false, /*interferer_bytes=*/10));
    EXPECT_TRUE(hidden_terminal_decodes(/*weighted=*/true, /*interferer_bytes=*/10));
}

// --------------------- end to end: exactly-once, in-order, audited, deterministic

std::uint64_t total_block_acks(net::Network& network)
{
    std::uint64_t total = 0;
    for (int id = 0; id < network.node_count(); ++id)
        total += network.node(id).mac().block_acks_sent();
    return total;
}

TEST(AmpduEndToEnd, RandomLossDeliversExactlyOnceInOrder)
{
    // 4-hop chain at K=8 with 15% loss in both directions of every hop:
    // data MPDUs, block-acks and retransmissions all get lost, so the
    // selective-retransmit, timeout and duplicate-suppression paths are
    // all exercised. Every delivered packet must arrive exactly once and
    // in sequence order (gaps from retry-limit drops are legitimate).
    ScenarioSpec spec = ScenarioSpec::line(4, /*duration_s=*/8.0);
    spec.ampdu_max_mpdus = 8;
    ExperimentFactory factory(spec, ExperimentOptions{});
    std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/5);
    net::Network& network = experiment->network();
    const auto& path = network.routing().path(0);  // line flows are id 0
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        network.channel().set_link_loss(path[i], path[i + 1], 0.15);
        network.channel().set_link_loss(path[i + 1], path[i], 0.15);
    }
    std::map<int, std::vector<std::uint64_t>> delivered;
    network.node(path.back())
        .add_delivery_handler(
            [&](const net::Packet& packet) { delivered[packet.flow_id].push_back(packet.seq); });
    experiment->run();
    experiment->run_until_s(20.0);

    ASSERT_FALSE(delivered.empty());
    for (const auto& [flow, seqs] : delivered) {
        ASSERT_FALSE(seqs.empty()) << "flow " << flow;
        for (std::size_t i = 1; i < seqs.size(); ++i)
            ASSERT_LT(seqs[i - 1], seqs[i])
                << "flow " << flow << " duplicate or out-of-order at delivery " << i;
    }
    EXPECT_GT(total_block_acks(network), 0u);  // aggregation actually engaged
    EXPECT_EQ(network.channel().frame_pool().live(), 0u);
    const auto ledger = analysis::audit_drop_accounting(*experiment);
    EXPECT_GT(ledger.generated, 0u);
}

TEST(AmpduEndToEnd, AggregatedRunsAreDeterministic)
{
    const auto fingerprint = [] {
        ScenarioSpec spec = ScenarioSpec::line(3, /*duration_s=*/4.0);
        spec.ampdu_max_mpdus = 4;
        ExperimentFactory factory(spec, ExperimentOptions{});
        std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/11);
        experiment->run();
        return testutil::experiment_fingerprint(*experiment);
    };
    EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(AmpduFaults, KillScanAtK4BalancesLedgerAndLeaksNothing)
{
    // The fault_test kill scan, rerun with batches in flight: the kill can
    // land mid-batch (sender window non-empty, receiver reorder buffer
    // holding), and the quiesce must surrender every window entry into
    // ampdu_node_down_drops with the conservation laws intact.
    for (int i = 0; i < 8; ++i) {
        const util::SimTime kill = util::from_seconds(5.2) + i * 13'777;
        ScenarioSpec spec = ScenarioSpec::line(4, /*duration_s=*/1.2);
        spec.ampdu_max_mpdus = 4;
        spec.faults.events.push_back({kill, net::FaultKind::kNodeDown, /*node=*/2, -1, -1});
        spec.faults.events.push_back(
            {kill + 300'000, net::FaultKind::kNodeUp, /*node=*/2, -1, -1});
        ExperimentFactory factory(spec, ExperimentOptions{});
        std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/11);
        experiment->run();
        experiment->run_until_s(10.0);
        EXPECT_EQ(experiment->network().channel().frame_pool().live(), 0u) << "kill at " << kill;
        analysis::audit_drop_accounting(*experiment);  // throws on any leak
    }
}

TEST(AmpduFaults, ChurnedRunAtK4BalancesItsLedger)
{
    net::GridSpec grid;
    grid.cols = 4;
    grid.rows = 3;
    grid.sources = 3;
    grid.duration_s = 25.0;
    ScenarioSpec spec = ScenarioSpec::grid_gateway(grid);
    spec.ampdu_max_mpdus = 4;
    net::ChurnSpec churn;
    churn.candidates = {1, 2, 4, 5};
    churn.cycles = 6;
    churn.from_s = 7.0;
    churn.to_s = 28.0;
    churn.min_down_s = 0.5;
    churn.max_down_s = 2.0;
    spec.faults = net::FaultPlan::random_churn(churn, 99);
    ASSERT_FALSE(spec.faults.empty());
    ExperimentFactory factory(spec, ExperimentOptions{});
    std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/17);
    experiment->run();
    experiment->run_until_s(40.0);
    EXPECT_EQ(experiment->network().channel().frame_pool().live(), 0u);
    const auto ledger = analysis::audit_drop_accounting(*experiment);
    EXPECT_GT(ledger.generated, 0u);
    EXPECT_GT(total_block_acks(experiment->network()), 0u);
    const sim::FaultInjector* injector = experiment->fault_injector();
    EXPECT_EQ(injector->stats().node_downs, injector->stats().node_ups);
}

}  // namespace
}  // namespace ezflow

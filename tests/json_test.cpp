#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ezflow::util {
namespace {

TEST(Json, ScalarDump)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(0.1).dump(), "0.1");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscapes)
{
    EXPECT_EQ(Json("a\"b\\c\nd\te").dump(), "\"a\\\"b\\\\c\\nd\\te\"");
    const Json parsed = Json::parse("\"a\\\"b\\\\c\\nd\\te\\u0041\"");
    EXPECT_EQ(parsed.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json object = Json::object();
    object.set("zeta", 1).set("alpha", 2).set("mid", 3);
    EXPECT_EQ(object.dump(0), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
    // Overwrite keeps the original position.
    object.set("alpha", 9);
    EXPECT_EQ(object.dump(0), "{\"zeta\":1,\"alpha\":9,\"mid\":3}");
}

TEST(Json, NumbersRoundTripExactly)
{
    for (const double value : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 123456.789,
                               0.30000000000000004}) {
        const std::string text = Json::number_to_string(value);
        const Json parsed = Json::parse(text);
        EXPECT_EQ(parsed.as_number(), value) << text;
    }
}

TEST(Json, DumpParseDumpIsIdentity)
{
    Json root = Json::object();
    root.set("name", "fig06");
    root.set("pi", 3.141592653589793);
    Json array = Json::array();
    array.push_back(1);
    array.push_back(Json::object().set("nested", true));
    array.push_back(Json());
    root.set("values", std::move(array));
    const std::string once = root.dump();
    const std::string twice = Json::parse(once).dump();
    EXPECT_EQ(once, twice);
}

TEST(Json, ParseWhitespaceAndNesting)
{
    const Json parsed = Json::parse("  { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] }  ");
    ASSERT_TRUE(parsed.is_object());
    const Json* a = parsed.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->size(), 3u);
    EXPECT_EQ(a->at(0).as_number(), 1.0);
    EXPECT_EQ(a->at(1).as_number(), 2.5);
    EXPECT_TRUE(a->at(2).find("b")->is_null());
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(Json::parse(""), std::runtime_error);
    EXPECT_THROW(Json::parse("{"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::runtime_error);
    EXPECT_THROW(Json::parse("nul"), std::runtime_error);
    EXPECT_THROW(Json::parse("1.2.3"), std::runtime_error);
    EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, TypeMismatchThrows)
{
    EXPECT_THROW(Json(1.0).as_string(), std::runtime_error);
    EXPECT_THROW(Json("x").as_number(), std::runtime_error);
    EXPECT_THROW(Json().push_back(1), std::runtime_error);
    EXPECT_THROW(Json::array().set("k", 1), std::runtime_error);
    EXPECT_EQ(Json(1.0).find("k"), nullptr);
}

TEST(Json, DeepNestingFailsCleanly)
{
    // Past the parser's recursion cap the error must be a clean throw,
    // not a stack overflow.
    const std::string deep(100000, '[');
    EXPECT_THROW(Json::parse(deep), std::runtime_error);
    // Well under the cap still parses.
    std::string ok;
    for (int i = 0; i < 100; ++i) ok += '[';
    ok += "1";
    for (int i = 0; i < 100; ++i) ok += ']';
    EXPECT_EQ(Json::parse(ok).size(), 1u);
}

TEST(Json, NonFiniteSerializesAsNull)
{
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
    EXPECT_EQ(Json(INFINITY).dump(), "null");
}

}  // namespace
}  // namespace ezflow::util

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "model/lyapunov.h"
#include "model/region.h"
#include "model/table4.h"
#include "model/walk.h"

namespace ezflow::model {
namespace {

// --------------------------------------------------------------- regions

TEST(Region, IndexIsBitmaskOfNonEmptyBuffers)
{
    EXPECT_EQ(region_index({0, 0, 0}), kRegionA);
    EXPECT_EQ(region_index({5, 0, 0}), kRegionB);
    EXPECT_EQ(region_index({0, 2, 0}), kRegionC);
    EXPECT_EQ(region_index({0, 0, 9}), kRegionD);
    EXPECT_EQ(region_index({1, 1, 0}), kRegionE);
    EXPECT_EQ(region_index({1, 0, 1}), kRegionF);
    EXPECT_EQ(region_index({0, 1, 1}), kRegionG);
    EXPECT_EQ(region_index({3, 3, 3}), kRegionH);
}

TEST(Region, NamesMatchPaperLettering)
{
    EXPECT_EQ(region_name(kRegionA, 3), "A");
    EXPECT_EQ(region_name(kRegionB, 3), "B");
    EXPECT_EQ(region_name(kRegionC, 3), "C");
    EXPECT_EQ(region_name(kRegionD, 3), "D");
    EXPECT_EQ(region_name(kRegionE, 3), "E");
    EXPECT_EQ(region_name(kRegionF, 3), "F");
    EXPECT_EQ(region_name(kRegionG, 3), "G");
    EXPECT_EQ(region_name(kRegionH, 3), "H");
}

TEST(Region, GeneralKUsesBitstrings)
{
    EXPECT_EQ(region_name(0b1011, 4), "1101");  // bit i printed at position i
}

TEST(Region, Validation)
{
    EXPECT_THROW(region_index({}), std::invalid_argument);
    EXPECT_THROW(region_index({-1, 0, 0}), std::invalid_argument);
    EXPECT_THROW(region_name(8, 3), std::invalid_argument);
}

// --------------------------------------------------------------- table 4

std::map<std::string, double> distribution_as_map(int region, const std::vector<double>& cw)
{
    std::map<std::string, double> out;
    for (const Pattern& p : table4_distribution(region, cw)) {
        std::string key;
        for (int z : p.z) key += static_cast<char>('0' + z);
        out[key] += p.probability;
    }
    return out;
}

TEST(Table4, RegionADeterministic)
{
    const auto dist = distribution_as_map(kRegionA, {16, 16, 16, 16});
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_DOUBLE_EQ(dist.at("1000"), 1.0);
}

TEST(Table4, RegionBSplitsByWindows)
{
    // P([1,0,0,0]) = cw1 / (cw0 + cw1).
    const auto dist = distribution_as_map(kRegionB, {32, 16, 16, 16});
    EXPECT_DOUBLE_EQ(dist.at("1000"), 16.0 / 48.0);
    EXPECT_DOUBLE_EQ(dist.at("0100"), 32.0 / 48.0);
}

TEST(Table4, RegionCDeterministicLink2)
{
    const auto dist = distribution_as_map(kRegionC, {16, 99, 7, 3});
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_DOUBLE_EQ(dist.at("0010"), 1.0);
}

TEST(Table4, RegionDSpatialReuse)
{
    const auto dist = distribution_as_map(kRegionD, {16, 16, 16, 16});
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_DOUBLE_EQ(dist.at("1001"), 1.0);
}

TEST(Table4, RegionEMatchesPaperExpression)
{
    // P([0,1,0,0]) = cw0*cw2 / sum_{i in {0,1,2}} prod_{j != i} cwj.
    const std::vector<double> cw = {16, 64, 32, 8};
    const double denom = 64 * 32 + 16 * 32 + 16 * 64;  // i = 0, 1, 2
    const auto dist = distribution_as_map(kRegionE, cw);
    EXPECT_NEAR(dist.at("0100"), 16 * 32 / denom, 1e-12);
    EXPECT_NEAR(dist.at("0010"), 1.0 - 16 * 32 / denom, 1e-12);
}

TEST(Table4, RegionFMatchesPaperExpression)
{
    const std::vector<double> cw = {16, 64, 32, 128};
    const double cw0 = cw[0], cw1 = cw[1], cw3 = cw[3];
    const double denom = cw1 * cw3 + cw0 * cw3 + cw0 * cw1;
    const double p_0and3 = cw1 * cw3 / denom + (cw0 * cw1 / denom) * (cw1 / (cw0 + cw1));
    const auto dist = distribution_as_map(kRegionF, cw);
    EXPECT_NEAR(dist.at("1001"), p_0and3, 1e-12);
    EXPECT_NEAR(dist.at("0001"), 1.0 - p_0and3, 1e-12);
}

TEST(Table4, RegionGMatchesPaperExpression)
{
    const std::vector<double> cw = {16, 64, 32, 128};
    const double cw0 = cw[0], cw2 = cw[2], cw3 = cw[3];
    const double denom = cw2 * cw3 + cw0 * cw3 + cw0 * cw2;
    const double p_link2 = cw0 * cw3 / denom + (cw2 * cw3 / denom) * (cw3 / (cw2 + cw3));
    const auto dist = distribution_as_map(kRegionG, cw);
    EXPECT_NEAR(dist.at("0010"), p_link2, 1e-12);
    EXPECT_NEAR(dist.at("1001"), 1.0 - p_link2, 1e-12);
}

TEST(Table4, RegionHMatchesPaperExpression)
{
    const std::vector<double> cw = {16, 64, 32, 128};
    const double cw0 = cw[0], cw1 = cw[1], cw2 = cw[2], cw3 = cw[3];
    const double denom = cw1 * cw2 * cw3 + cw0 * cw2 * cw3 + cw0 * cw1 * cw3 + cw0 * cw1 * cw2;
    const double p_link2 =
        cw0 * cw1 * cw3 / denom + (cw1 * cw2 * cw3 / denom) * (cw3 / (cw2 + cw3));
    const double p_link3 =
        cw0 * cw2 * cw3 / denom + (cw0 * cw1 * cw2 / denom) * (cw0 / (cw0 + cw1));
    const auto dist = distribution_as_map(kRegionH, cw);
    EXPECT_NEAR(dist.at("0010"), p_link2, 1e-12);
    EXPECT_NEAR(dist.at("0001"), p_link3, 1e-12);
    EXPECT_NEAR(dist.at("1001"), 1.0 - p_link2 - p_link3, 1e-12);
}

TEST(Table4, AllRegionsSumToOne)
{
    const std::vector<double> cw = {16, 1024, 64, 32768};
    for (int region = 0; region < 8; ++region) {
        double total = 0.0;
        for (const Pattern& p : table4_distribution(region, cw)) {
            EXPECT_GE(p.probability, 0.0);
            total += p.probability;
        }
        EXPECT_NEAR(total, 1.0, 1e-12) << "region " << region_name(region, 3);
    }
}

TEST(Table4, Validation)
{
    EXPECT_THROW(table4_distribution(0, {1, 2, 3}), std::invalid_argument);
    EXPECT_THROW(table4_distribution(0, {1, 2, 3, 0}), std::invalid_argument);
    EXPECT_THROW(table4_distribution(9, {1, 2, 3, 4}), std::invalid_argument);
}

// ---------------------------------------------------- walk vs closed form

/// Monte-Carlo check: the generative sampler's pattern frequencies match
/// the Table 4 closed forms for every region and several window vectors.
class WalkVsTable4 : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WalkVsTable4, SamplerMatchesClosedForm)
{
    const auto [region, cw_case] = GetParam();
    static const std::vector<std::vector<double>> kCwCases = {
        {16, 16, 16, 16},
        {16, 64, 32, 128},
        {1024, 16, 16, 16},
        {16, 16, 1024, 16},
    };
    const std::vector<double>& cw = kCwCases[static_cast<std::size_t>(cw_case)];

    BufferVector relays = {0, 0, 0};
    for (int i = 0; i < 3; ++i)
        if (region & (1 << i)) relays[static_cast<std::size_t>(i)] = 10;

    RandomWalkModel::Config config;
    config.hops = 4;
    RandomWalkModel walk(config, util::Rng(1234 + region * 7 + cw_case));

    std::map<std::string, int> counts;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        std::string key;
        for (int z : walk.sample_pattern(relays, cw)) key += static_cast<char>('0' + z);
        ++counts[key];
    }

    const auto expected = distribution_as_map(region, cw);
    // Every observed pattern must be predicted, and vice versa (within
    // Monte-Carlo noise ~3 sigma).
    for (const auto& [pattern, probability] : expected) {
        const double observed = counts.count(pattern) ? counts[pattern] / double(n) : 0.0;
        const double sigma = std::sqrt(probability * (1 - probability) / n);
        EXPECT_NEAR(observed, probability, std::max(5 * sigma, 0.004))
            << "region " << region_name(region, 3) << " pattern " << pattern;
    }
    for (const auto& [pattern, count] : counts) {
        EXPECT_TRUE(expected.count(pattern) > 0)
            << "sampler produced unpredicted pattern " << pattern << " (" << count << "x)"
            << " in region " << region_name(region, 3);
    }
}

INSTANTIATE_TEST_SUITE_P(AllRegions, WalkVsTable4,
                         ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 4)));

// ------------------------------------------------------------------ walk

TEST(Walk, BufferUpdateFollowsEq3)
{
    RandomWalkModel::Config config;
    config.hops = 4;
    config.ezflow_enabled = false;
    RandomWalkModel walk(config, util::Rng(5));
    walk.set_relays({3, 2, 1});
    const BufferVector before = walk.relays();
    const std::vector<int> z = walk.step();
    const BufferVector& after = walk.relays();
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(after[i - 1], before[i - 1] + z[i - 1] - z[i]) << "relay " << i;
}

TEST(Walk, DeliveredCountsLastLink)
{
    RandomWalkModel::Config config;
    config.hops = 4;
    RandomWalkModel walk(config, util::Rng(5));
    walk.run(5000);
    EXPECT_GT(walk.delivered(), 0u);
}

TEST(Walk, SourceAlwaysContends)
{
    // From the all-empty state the only possible pattern is [1,0,0,0].
    RandomWalkModel::Config config;
    config.hops = 4;
    config.ezflow_enabled = false;
    RandomWalkModel walk(config, util::Rng(5));
    const std::vector<int> z = walk.step();
    EXPECT_EQ(z, (std::vector<int>{1, 0, 0, 0}));
    EXPECT_EQ(walk.relays()[0], 1);
}

TEST(Walk, FixedEqualWindowsDivergeAtFourHops)
{
    // The [9] instability result in model form: with fixed equal windows
    // the 4-hop chain's total backlog grows without bound.
    RandomWalkModel::Config config;
    config.hops = 4;
    config.ezflow_enabled = false;
    config.initial_cw = {32, 32, 32, 32};
    RandomWalkModel walk(config, util::Rng(6));
    walk.run(200000);
    EXPECT_GT(walk.total_backlog(), 2000);
}

TEST(Walk, EzFlowKeepsFourHopBacklogBounded)
{
    // Theorem 1 in empirical form: with EZ-Flow dynamics the same walk
    // stays near the origin.
    RandomWalkModel::Config config;
    config.hops = 4;
    config.ezflow_enabled = true;
    RandomWalkModel walk(config, util::Rng(6));
    long long max_backlog = 0;
    for (int i = 0; i < 200000; ++i) {
        walk.step();
        max_backlog = std::max(max_backlog, walk.total_backlog());
    }
    EXPECT_LT(max_backlog, 500);
    EXPECT_LT(walk.total_backlog(), 200);
}

TEST(Walk, EzFlowBoundedForLongerChains)
{
    // The paper extends Theorem 1 to general K; check K = 5, 6 empirically.
    for (int hops : {5, 6}) {
        RandomWalkModel::Config config;
        config.hops = hops;
        config.ezflow_enabled = true;
        RandomWalkModel walk(config, util::Rng(60 + hops));
        walk.run(150000);
        EXPECT_LT(walk.total_backlog(), 500) << hops << " hops";
    }
}

TEST(Walk, CaaDynamicsFollowEq2)
{
    // One relay far above bmax: its predecessor's window doubles each
    // slot (clamped); windows of nodes with empty successors halve down
    // to min_cw. (CAA reacts to the post-update buffers; in region B the
    // pattern never touches b3, so cw2 and cw3 see empty successors.)
    RandomWalkModel::Config config;
    config.hops = 4;
    config.initial_cw = {64, 64, 64, 64};
    RandomWalkModel walk(config, util::Rng(7));
    walk.set_relays({30, 0, 0});  // b1 = 30 > bmax
    walk.step();
    EXPECT_EQ(walk.cw()[0], 128);  // doubled toward congested b1
    EXPECT_EQ(walk.cw()[2], 32);   // b3 stayed empty: halved
    EXPECT_EQ(walk.cw()[3], 32);   // destination always empty: halved
}

TEST(Walk, CwClampedToBounds)
{
    RandomWalkModel::Config config;
    config.hops = 4;
    config.caa.min_cw = 16;
    config.caa.max_cw = 256;
    config.initial_cw = {256, 16, 16, 16};
    RandomWalkModel walk(config, util::Rng(7));
    walk.set_relays({50, 0, 0});
    for (int i = 0; i < 20; ++i) walk.step();
    EXPECT_LE(walk.cw()[0], 256);
    EXPECT_GE(walk.cw()[3], 16);
}

TEST(Walk, Validation)
{
    RandomWalkModel::Config config;
    config.hops = 1;
    EXPECT_THROW(RandomWalkModel(config, util::Rng(1)), std::invalid_argument);
    config.hops = 4;
    config.initial_cw = {16, 16};
    EXPECT_THROW(RandomWalkModel(config, util::Rng(1)), std::invalid_argument);
    config.initial_cw.clear();
    RandomWalkModel walk(config, util::Rng(1));
    EXPECT_THROW(walk.set_relays({1, 2}), std::invalid_argument);
    EXPECT_THROW(walk.set_relays({-1, 0, 0}), std::invalid_argument);
    EXPECT_THROW(walk.set_cw({0, 1, 1, 1}), std::invalid_argument);
}

// -------------------------------------------------------------- lyapunov

TEST(Lyapunov, PaperHorizons)
{
    EXPECT_EQ(LyapunovEstimator::paper_horizon(kRegionF), 1);
    EXPECT_EQ(LyapunovEstimator::paper_horizon(kRegionH), 1);
    EXPECT_EQ(LyapunovEstimator::paper_horizon(kRegionD), 2);
    EXPECT_EQ(LyapunovEstimator::paper_horizon(kRegionE), 2);
    EXPECT_EQ(LyapunovEstimator::paper_horizon(kRegionG), 3);
    EXPECT_EQ(LyapunovEstimator::paper_horizon(kRegionC), 4);
    EXPECT_EQ(LyapunovEstimator::paper_horizon(kRegionB), 25);
    EXPECT_THROW(LyapunovEstimator::paper_horizon(kRegionA), std::invalid_argument);
}

TEST(Lyapunov, DriftNegativeOutsideSUnderEzFlow)
{
    // Theorem 1's condition (6), checked by Monte-Carlo: in every region
    // far from the origin, the expected k-step change of h(b) = sum b_i
    // is negative once the windows reflect EZ-Flow's stable pattern
    // (source throttled, relays aggressive).
    RandomWalkModel::Config config;
    config.hops = 4;
    config.ezflow_enabled = true;
    LyapunovEstimator estimator(config, {1 << 9, 1 << 4, 1 << 4, 1 << 4}, util::Rng(99));
    const long long big = 60;  // deep inside each region
    const std::map<int, BufferVector> states = {
        {kRegionB, {big, 0, 0}}, {kRegionC, {0, big, 0}},   {kRegionD, {0, 0, big}},
        {kRegionE, {big, big, 0}}, {kRegionF, {big, 0, big}}, {kRegionG, {0, big, big}},
        {kRegionH, {big, big, big}},
    };
    for (const auto& [region, relays] : states) {
        const int horizon = LyapunovEstimator::paper_horizon(region);
        const auto drift = estimator.estimate(relays, horizon, 4000);
        EXPECT_LT(drift.mean_drift + 2 * drift.stderr_drift, 0.1)
            << "region " << region_name(region, 3);
    }
}

TEST(Lyapunov, FixedEqualWindowsHavePositiveDriftSomewhere)
{
    // Contrast: without EZ-Flow (equal windows) region B pumps h upward:
    // the source wins with probability 1/2 (injection, dh = +1) while the
    // alternative only shifts backlog downstream (dh = 0). This is the
    // signature of the 4-hop instability.
    RandomWalkModel::Config config;
    config.hops = 4;
    config.ezflow_enabled = false;
    LyapunovEstimator estimator(config, {32, 32, 32, 32}, util::Rng(99));
    const auto drift_b = estimator.estimate({40, 0, 0}, 1, 4000);
    EXPECT_NEAR(drift_b.mean_drift, 0.5, 0.05) << "region B injects without draining";
    // Region D converts drained b3 into trapped b1 (dh = 0): the source
    // free-rides the far link's spatial reuse.
    const auto drift_d = estimator.estimate({0, 0, 40}, 1, 4000);
    EXPECT_NEAR(drift_d.mean_drift, 0.0, 0.05);
}

TEST(Lyapunov, Validation)
{
    RandomWalkModel::Config config;
    config.hops = 4;
    LyapunovEstimator estimator(config, {16, 16, 16, 16}, util::Rng(1));
    EXPECT_THROW(estimator.estimate({1, 1, 1}, 0, 10), std::invalid_argument);
    EXPECT_THROW(estimator.estimate({1, 1, 1}, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ezflow::model

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "analysis/experiment_factory.h"
#include "analysis/sweep.h"
#include "util/thread_pool.h"

namespace ezflow::analysis {
namespace {

SweepConfig small_config()
{
    SweepConfig config;
    // make_line flows are active on [5, 5 + duration); measure the settled
    // tail of that window.
    config.windows.push_back(SweepWindow{"steady", 7.0, 11.0, {0}});
    config.seeds = {7, 8, 9};
    return config;
}

ExperimentFactory small_factory(Mode mode)
{
    ExperimentOptions options;
    options.mode = mode;
    options.throughput_window = util::kSecond;
    return ExperimentFactory(ScenarioSpec::line(3, 6.0), options);
}

void expect_identical(const SweepResult& a, const SweepResult& b)
{
    ASSERT_EQ(a.per_seed.size(), b.per_seed.size());
    for (std::size_t s = 0; s < a.per_seed.size(); ++s) {
        EXPECT_EQ(a.per_seed[s].seed, b.per_seed[s].seed);
        ASSERT_EQ(a.per_seed[s].windows.size(), b.per_seed[s].windows.size());
        for (std::size_t w = 0; w < a.per_seed[s].windows.size(); ++w) {
            const auto& wa = a.per_seed[s].windows[w];
            const auto& wb = b.per_seed[s].windows[w];
            // Bit-identical, not approximately equal: the sweep must not
            // depend on thread count or scheduling.
            EXPECT_EQ(wa.fairness, wb.fairness);
            EXPECT_EQ(wa.aggregate_kbps, wb.aggregate_kbps);
            ASSERT_EQ(wa.flows.size(), wb.flows.size());
            for (std::size_t f = 0; f < wa.flows.size(); ++f) {
                EXPECT_EQ(wa.flows[f].mean_kbps, wb.flows[f].mean_kbps);
                EXPECT_EQ(wa.flows[f].stddev_kbps, wb.flows[f].stddev_kbps);
                EXPECT_EQ(wa.flows[f].mean_delay_s, wb.flows[f].mean_delay_s);
                EXPECT_EQ(wa.flows[f].max_delay_s, wb.flows[f].max_delay_s);
            }
        }
    }
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (std::size_t w = 0; w < a.windows.size(); ++w) {
        EXPECT_EQ(a.windows[w].fairness.mean(), b.windows[w].fairness.mean());
        EXPECT_EQ(a.windows[w].aggregate_kbps.mean(), b.windows[w].aggregate_kbps.mean());
    }
}

TEST(SweepRunner, SameSeedGridIsBitIdenticalAcrossThreadCounts)
{
    const SweepConfig config = small_config();
    const std::vector<ExperimentFactory> cells = {small_factory(Mode::kBaseline80211),
                                                  small_factory(Mode::kEzFlow)};
    const std::vector<SweepResult> serial = SweepRunner(1).run_grid(cells, config);
    const std::vector<SweepResult> threaded = SweepRunner(4).run_grid(cells, config);
    ASSERT_EQ(serial.size(), 2u);
    ASSERT_EQ(threaded.size(), 2u);
    expect_identical(serial[0], threaded[0]);
    expect_identical(serial[1], threaded[1]);
    // And re-running the threaded sweep reproduces itself.
    const std::vector<SweepResult> again = SweepRunner(4).run_grid(cells, config);
    expect_identical(threaded[0], again[0]);
    expect_identical(threaded[1], again[1]);
}

TEST(SweepRunner, SeedsActuallyVaryTheRuns)
{
    const SweepConfig config = small_config();
    const SweepResult result = SweepRunner(2).run(small_factory(Mode::kBaseline80211), config);
    ASSERT_EQ(result.per_seed.size(), 3u);
    std::set<double> distinct;
    for (const SeedResult& seed_result : result.per_seed)
        distinct.insert(seed_result.windows[0].flows[0].mean_kbps);
    EXPECT_GT(distinct.size(), 1u);  // different seeds, different runs
    // The aggregate accumulated one sample per seed.
    EXPECT_EQ(result.windows[0].flows[0].mean_kbps.count(), 3);
    EXPECT_GT(result.windows[0].flows[0].mean_kbps.mean(), 0.0);
}

TEST(SweepRunner, KeepExperimentsRetainsPerSeedRuns)
{
    SweepConfig config = small_config();
    config.keep_experiments = true;
    const SweepResult result = SweepRunner(2).run(small_factory(Mode::kBaseline80211), config);
    ASSERT_EQ(result.experiments.size(), 3u);
    for (const auto& experiment : result.experiments) {
        ASSERT_NE(experiment, nullptr);
        EXPECT_FALSE(experiment->throughput(0).series().empty());
    }
}

TEST(SweepRunner, RejectsEmptyGrids)
{
    SweepConfig config = small_config();
    const SweepRunner runner(2);
    EXPECT_THROW(runner.run_grid({}, config), std::invalid_argument);
    config.seeds.clear();
    EXPECT_THROW(runner.run(small_factory(Mode::kBaseline80211), config), std::invalid_argument);
}

TEST(SweepRunner, WorkerExceptionsPropagate)
{
    SweepConfig config = small_config();
    config.windows[0].flow_ids = {42};  // no such flow in the scenario
    EXPECT_THROW(SweepRunner(2).run(small_factory(Mode::kBaseline80211), config),
                 std::invalid_argument);
}

TEST(ScenarioSpec, BuildsEveryKind)
{
    EXPECT_EQ(scenario_name(ScenarioSpec::line(4, 10.0)), "line-4hop");
    EXPECT_EQ(scenario_name(ScenarioSpec::testbed(5, 65, 5, 65)), "testbed");
    const net::Scenario line = build_scenario(ScenarioSpec::line(4, 10.0), 7);
    EXPECT_EQ(line.network->node_count(), 5);
    EXPECT_EQ(line.flows.size(), 1u);
    const net::Scenario testbed = build_scenario(ScenarioSpec::testbed(5, 65, 10, 60), 7);
    EXPECT_EQ(testbed.flows.size(), 2u);
    EXPECT_DOUBLE_EQ(testbed.flows[1].start_s, 10.0);
}

TEST(ExperimentFactory, WithModeChangesOnlyTheMode)
{
    const ExperimentFactory base = small_factory(Mode::kBaseline80211);
    const ExperimentFactory ez = base.with_mode(Mode::kEzFlow);
    EXPECT_EQ(ez.options().mode, Mode::kEzFlow);
    EXPECT_EQ(ez.options().payload_bytes, base.options().payload_bytes);
    EXPECT_EQ(ez.spec().line_hops, base.spec().line_hops);
    EXPECT_EQ(base.label(), "line-3hop / 802.11");
    EXPECT_EQ(ez.label(), "line-3hop / EZ-flow");
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    util::parallel_for(257, 4, [&](int i) { ++hits[static_cast<std::size_t>(i)]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRunsInlineWhenSingleThreaded)
{
    std::vector<int> order;
    util::parallel_for(5, 1, [&](int i) { order.push_back(i); });  // no locking needed
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    EXPECT_THROW(util::parallel_for(16, 4,
                                    [](int i) {
                                        if (i % 3 == 0) throw std::runtime_error("boom");
                                    }),
                 std::runtime_error);
}

TEST(ThreadPool, SubmitAndWaitIdle)
{
    util::ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3);
    std::atomic<int> done{0};
    for (int i = 0; i < 20; ++i) pool.submit([&done] { ++done; });
    pool.wait_idle();
    EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace ezflow::analysis

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "core/agent.h"
#include "net/topologies.h"
#include "traffic/source.h"

namespace ezflow::core {
namespace {

using util::kSecond;

/// A 4-hop line with EZ-Flow installed, driven by a saturating CBR source.
struct AgentBed {
    net::Scenario scenario;
    net::Network& net;
    std::map<net::NodeId, std::unique_ptr<EzFlowAgent>> agents;
    std::unique_ptr<traffic::CbrSource> source;

    explicit AgentBed(CaaConfig config = {}, double sniff_loss = 0.0, std::uint64_t seed = 5)
        : scenario(net::make_line(4, 600.0, seed)), net(*scenario.network)
    {
        agents = install_ezflow(net, config, 1000, sniff_loss);
        source = std::make_unique<traffic::CbrSource>(net, 0, 1000, 2e6);
        source->activate(util::from_seconds(5), util::from_seconds(605));
    }
};

TEST(Agent, InstallsOnSourceAndRelaysOnly)
{
    AgentBed bed;
    EXPECT_EQ(bed.agents.size(), 4u);  // N0..N3 transmit; N4 is the sink
    EXPECT_EQ(bed.agents.count(4), 0u);
}

TEST(Agent, InstallSkipsDuplicateNodesAcrossFlows)
{
    net::Scenario s = net::make_testbed(5, 100, 5, 100, 6);
    auto agents = install_ezflow(*s.network, CaaConfig{});
    // F1 spans N0..N6 (7 transmitters), F2 adds N0' only (N4..N6 shared).
    EXPECT_EQ(agents.size(), 8u);
}

TEST(Agent, BoeRecordsSentPackets)
{
    AgentBed bed;
    bed.net.run_until(30 * kSecond);
    const auto& state = bed.agents.at(0)->successors();
    ASSERT_EQ(state.count(1), 1u);
    EXPECT_GT(state.at(1)->boe.sent_recorded(), 100u);
}

TEST(Agent, BoeMatchesSniffedForwards)
{
    AgentBed bed;
    bed.net.run_until(60 * kSecond);
    // The source overhears N1's forwards constantly; estimates flow.
    EXPECT_GT(bed.agents.at(0)->samples_delivered(), 500u);
}

TEST(Agent, EstimateTrackMatchesBufferScale)
{
    AgentBed bed;
    bed.net.run_until(120 * kSecond);
    // After stabilization, the source's estimate of b1 must be small
    // (the integration suite checks b1 itself; here we check the BOE's
    // view agrees).
    const auto& state = *bed.agents.at(0)->successors().at(1);
    const double estimate =
        state.estimate_trace.mean_between(util::from_seconds(60), util::from_seconds(120));
    EXPECT_LT(estimate, 25.0);
}

TEST(Agent, CwTraceRecordsTransitions)
{
    AgentBed bed;
    bed.net.run_until(120 * kSecond);
    const auto& state = *bed.agents.at(0)->successors().at(1);
    ASSERT_FALSE(state.cw_trace.empty());
    // First recorded value is the initial cw.
    EXPECT_DOUBLE_EQ(state.cw_trace.values().front(), 16.0);
}

TEST(Agent, CwTowardUnknownSuccessorThrows)
{
    AgentBed bed;
    EXPECT_THROW(bed.agents.at(0)->cw_toward(99), std::invalid_argument);
}

TEST(Agent, SniffLossSlowsButDoesNotStopSampling)
{
    AgentBed lossless(CaaConfig{}, 0.0, 7);
    lossless.net.run_until(60 * kSecond);
    AgentBed lossy(CaaConfig{}, 0.9, 7);
    lossy.net.run_until(60 * kSecond);
    const auto full = lossless.agents.at(0)->samples_delivered();
    const auto degraded = lossy.agents.at(0)->samples_delivered();
    EXPECT_GT(degraded, 0u);
    EXPECT_LT(degraded, full / 2);
}

TEST(Agent, SniffLossStillStabilizes)
{
    // Sec. 3.2: "even in the hypothetical case where Nk is unable to hear
    // most of the forwarded packets, it will still adapt".
    analysis::ExperimentOptions options;
    options.mode = analysis::Mode::kEzFlow;
    options.boe_sniff_loss = 0.8;
    analysis::Experiment exp(net::make_line(4, 400.0, 8), options);
    exp.run();
    const double b1 =
        exp.buffers().mean_occupancy(1, util::from_seconds(250), util::from_seconds(400));
    EXPECT_LT(b1, 20.0);
}

TEST(Agent, RejectsBadSniffLoss)
{
    net::Scenario s = net::make_line(2, 10, 9);
    EXPECT_THROW(EzFlowAgent(*s.network, 0, CaaConfig{}, 1000, 1.5), std::invalid_argument);
}

TEST(Agent, MultipleSuccessorsGetIndependentCaa)
{
    // A node relaying two flows toward different successors runs one
    // BOE+CAA pair per successor (Sec. 3.1).
    net::Network::Config config = net::testbed_config(10);
    net::Network net(config);
    const auto hub = net.add_node({0, 0});
    const auto succ_a = net.add_node({200, 0});
    const auto succ_b = net.add_node({0, 200});
    const auto dst_a = net.add_node({400, 0});
    const auto dst_b = net.add_node({0, 400});
    net.add_flow(1, {hub, succ_a, dst_a});
    net.add_flow(2, {hub, succ_b, dst_b});
    auto agents = install_ezflow(net, CaaConfig{});
    traffic::CbrSource f1(net, 1, 1000, 1e6);
    traffic::CbrSource f2(net, 2, 1000, 1e6);
    f1.activate(0, 60 * kSecond);
    f2.activate(0, 60 * kSecond);
    net.run_until(60 * kSecond);
    const auto& hub_agent = *agents.at(hub);
    EXPECT_EQ(hub_agent.successors().size(), 2u);
    EXPECT_GT(hub_agent.successors().at(succ_a)->boe.sent_recorded(), 0u);
    EXPECT_GT(hub_agent.successors().at(succ_b)->boe.sent_recorded(), 0u);
}

TEST(Agent, AppliesCwToBothTrafficClasses)
{
    // EZ-Flow's cw must govern own-traffic and forwarded queues alike.
    AgentBed bed;
    bed.net.run_until(60 * kSecond);
    const int agent_cw = bed.agents.at(0)->cw_toward(1);
    EXPECT_EQ(bed.net.node(0).mac().queue_cw_min(mac::QueueKey{1, true}), agent_cw);
    EXPECT_EQ(bed.net.node(0).mac().queue_cw_min(mac::QueueKey{1, false}), agent_cw);
}

}  // namespace
}  // namespace ezflow::core

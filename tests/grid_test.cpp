// Stress/determinism tier for the generated large topologies: a 7x7 grid
// carrying 12 crossing flows must run entirely under the PR-3 fast path
// (contention coordinator + reachability-culled channel) and produce
// byte-identical result JSON regardless of the sweep thread count, and
// identical per-node fingerprints with the reference full-broadcast
// channel.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "cli/figures.h"
#include "cli/registry.h"
#include "experiment_fingerprint.h"
#include "net/network.h"
#include "net/topo_gen.h"

namespace ezflow {
namespace {

analysis::ScenarioSpec stress_grid_spec()
{
    net::GridSpec grid;
    grid.cols = 7;
    grid.rows = 7;
    grid.cross_flows = 12;
    grid.duration_s = 6.0;
    return analysis::ScenarioSpec::grid_cross(grid);
}

using testutil::experiment_fingerprint;

TEST(GridStress, SevenBySevenTwelveFlowsRunsAndDelivers)
{
    analysis::ExperimentFactory factory(stress_grid_spec(), analysis::ExperimentOptions{});
    std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/3);
    ASSERT_EQ(experiment->network().node_count(), 49);
    EXPECT_GE(experiment->transmitting_nodes().size(), 40u)
        << "12 straight 6-hop flows should put most of the lattice on air";
    experiment->run();
    std::uint64_t delivered = 0;
    for (int id = 0; id < experiment->network().node_count(); ++id)
        delivered += experiment->network().node(id).delivered();
    EXPECT_GT(delivered, 100u) << "the stress grid must actually carry traffic";
}

TEST(GridStress, CullFastPathMatchesFullBroadcastOnStressGrid)
{
    const auto run_with_cull = [](bool cull) {
        analysis::ExperimentFactory factory(stress_grid_spec(), analysis::ExperimentOptions{});
        std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/11);
        net::ReferenceModeFlags flags;
        flags.reachability_cull = cull;
        experiment->network().set_reference_mode(flags);
        experiment->run();
        return experiment_fingerprint(*experiment);
    };
    EXPECT_EQ(run_with_cull(true), run_with_cull(false));
}

TEST(GridStress, FigureJsonIsByteIdenticalAcrossThreadCounts)
{
    cli::register_builtin_figures();
    const cli::FigureSpec* spec = cli::FigureRegistry::instance().find("grid_cross");
    ASSERT_NE(spec, nullptr);
    const auto run_with_threads = [spec](int threads) {
        cli::FigureContext ctx;
        ctx.spec = spec;
        ctx.scale = 0.05;
        ctx.seed = 7;
        ctx.seeds = 3;
        ctx.threads = threads;
        ctx.extra = {{"cols", "7"}, {"rows", "7"}, {"flows", "12"}, {"duration", "6"}};
        return spec->run(ctx).to_json().dump();
    };
    const std::string single = run_with_threads(1);
    const std::string pooled = run_with_threads(4);
    EXPECT_FALSE(single.empty());
    EXPECT_EQ(single, pooled);
}

TEST(GridStress, MaxminFigureIsByteIdenticalAcrossThreadCounts)
{
    cli::register_builtin_figures();
    const cli::FigureSpec* spec = cli::FigureRegistry::instance().find("grid_maxmin");
    ASSERT_NE(spec, nullptr);
    const auto run_with_threads = [spec](int threads) {
        cli::FigureContext ctx;
        ctx.spec = spec;
        ctx.scale = 0.05;
        ctx.seed = 5;
        ctx.seeds = 2;
        ctx.threads = threads;
        return spec->run(ctx).to_json().dump();
    };
    EXPECT_EQ(run_with_threads(1), run_with_threads(4));
}

}  // namespace
}  // namespace ezflow

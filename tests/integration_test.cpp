#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "net/topologies.h"

// End-to-end checks of the phenomena the paper is built on. These are the
// scientific core of the reproduction:
//  * a 3-hop 802.11 chain is stable, a 4-hop chain is turbulent (Fig. 1);
//  * EZ-Flow stabilizes the 4-hop chain and raises goodput (Sec. 4/5);
//  * EZ-Flow raises the source's cw while relays stay aggressive (Fig. 8).
namespace ezflow::analysis {
namespace {

Experiment line_experiment(int hops, Mode mode, double duration_s, std::uint64_t seed)
{
    ExperimentOptions options;
    options.mode = mode;
    return Experiment(net::make_line(hops, duration_s, seed), options);
}

TEST(Instability, ThreeHopChainKeepsFirstRelayBounded)
{
    Experiment exp = line_experiment(3, Mode::kBaseline80211, 120.0, 21);
    exp.run();
    // Mean backlog at N1 stays well below the 50-packet buffer.
    const double mean_b1 = exp.buffers().mean_occupancy(1, util::from_seconds(30), util::from_seconds(125));
    EXPECT_LT(mean_b1, 35.0);
}

TEST(Instability, FourHopChainSaturatesFirstRelay)
{
    Experiment exp = line_experiment(4, Mode::kBaseline80211, 120.0, 21);
    exp.run();
    const double mean_b1 = exp.buffers().mean_occupancy(1, util::from_seconds(30), util::from_seconds(125));
    // Turbulence: the first relay's buffer rides near its 50-packet cap.
    EXPECT_GT(mean_b1, 40.0);
}

TEST(Instability, FourHopDropsPacketsAtRelay)
{
    Experiment exp = line_experiment(4, Mode::kBaseline80211, 120.0, 21);
    exp.run();
    EXPECT_GT(exp.network().node(1).forward_queue_drops(), 0u);
}

TEST(EzFlowStabilization, FourHopRelaysDrainUnderEzFlow)
{
    Experiment exp = line_experiment(4, Mode::kEzFlow, 300.0, 21);
    exp.run();
    // After convergence the relay buffers stay small (the paper's Fig. 4
    // shows ~5 packets at stabilized relays).
    const double mean_b1 =
        exp.buffers().mean_occupancy(1, util::from_seconds(150), util::from_seconds(305));
    EXPECT_LT(mean_b1, 15.0);
}

TEST(EzFlowStabilization, SourceCwRisesRelaysStayAggressive)
{
    Experiment exp = line_experiment(4, Mode::kEzFlow, 300.0, 21);
    exp.run();
    const core::EzFlowAgent* source_agent = exp.agent(0);
    ASSERT_NE(source_agent, nullptr);
    const int source_cw = source_agent->cw_toward(1);
    // The paper's stable pattern: a contention-window distribution where
    // the source is throttled relative to the relays (q < 1 in [9]'s
    // terms). How far the source climbs depends on link capacities; on
    // this clean chain one doubling already stabilizes.
    EXPECT_GE(source_cw, 2 * (1 << 4)) << "source must throttle itself below relay aggressiveness";
    // Last relay (N3) never gets BOE samples (successor is the sink) and
    // stays at the initial aggressive window.
    const core::EzFlowAgent* last_relay = exp.agent(3);
    ASSERT_NE(last_relay, nullptr);
    EXPECT_EQ(last_relay->cw_toward(4), 1 << 4);
    EXPECT_GE(source_cw, 2 * last_relay->cw_toward(4));
}

TEST(EzFlowStabilization, GoodputNotWorseThanBaseline)
{
    Experiment base = line_experiment(4, Mode::kBaseline80211, 300.0, 22);
    base.run();
    Experiment ez = line_experiment(4, Mode::kEzFlow, 300.0, 22);
    ez.run();
    const auto base_summary = base.summarize(0, 100.0, 300.0);
    const auto ez_summary = ez.summarize(0, 100.0, 300.0);
    // The paper reports ~20% gain in scenario 1; require no regression
    // beyond noise here.
    EXPECT_GT(ez_summary.mean_kbps, base_summary.mean_kbps * 0.9);
}

TEST(EzFlowStabilization, DelayDropsByOrderOfMagnitude)
{
    Experiment base = line_experiment(4, Mode::kBaseline80211, 300.0, 23);
    base.run();
    Experiment ez = line_experiment(4, Mode::kEzFlow, 300.0, 23);
    ez.run();
    const auto base_summary = base.summarize(0, 150.0, 300.0);
    const auto ez_summary = ez.summarize(0, 150.0, 300.0);
    EXPECT_LT(ez_summary.mean_delay_s, base_summary.mean_delay_s * 0.5);
}

TEST(Penalty, StaticPolicyAlsoStabilizesFourHop)
{
    // Reference [9]'s penalty policy with q = 1/8 stabilizes the 4-hop
    // chain (EZ-Flow's contribution is finding q automatically).
    ExperimentOptions options;
    options.mode = Mode::kPenalty;
    options.penalty.relay_cw = 1 << 4;
    options.penalty.q = 1.0 / 8.0;
    Experiment exp(net::make_line(4, 300.0, 24), options);
    exp.run();
    const double mean_b1 =
        exp.buffers().mean_occupancy(1, util::from_seconds(150), util::from_seconds(305));
    EXPECT_LT(mean_b1, 15.0);
}

TEST(ParkingLot, BaselineStarvesLongFlow)
{
    // Testbed topology, both flows active: under 802.11 the 7-hop F1 is
    // starved by the 4-hop F2 (Table 2: 7 vs 143 kb/s, FI = 0.55).
    ExperimentOptions options;
    options.mode = Mode::kBaseline80211;
    Experiment exp(net::make_testbed(5, 300, 5, 300, 25), options);
    exp.run();
    const auto f1 = exp.summarize(1, 100.0, 300.0);
    const auto f2 = exp.summarize(2, 100.0, 300.0);
    EXPECT_LT(f1.mean_kbps, f2.mean_kbps * 0.6) << "long flow should be starved";
}

TEST(ParkingLot, EzFlowImprovesFairness)
{
    ExperimentOptions base_options;
    base_options.mode = Mode::kBaseline80211;
    Experiment base(net::make_testbed(5, 400, 5, 400, 26), base_options);
    base.run();
    ExperimentOptions ez_options;
    ez_options.mode = Mode::kEzFlow;
    Experiment ez(net::make_testbed(5, 400, 5, 400, 26), ez_options);
    ez.run();
    const double fi_base = base.fairness({1, 2}, 200.0, 400.0);
    const double fi_ez = ez.fairness({1, 2}, 200.0, 400.0);
    EXPECT_GT(fi_ez, fi_base) << "Jain index must improve (paper: 0.55 -> 0.96)";
}

TEST(Adaptivity, EzFlowRecoversAfterFlowDeparture)
{
    // Scenario-1-style adaptivity: when the second flow leaves, the first
    // flow's cw distribution relaxes and goodput recovers.
    ExperimentOptions options;
    options.mode = Mode::kEzFlow;
    Experiment exp(net::make_testbed(5, 600, 200, 400, 27), options);
    exp.run();
    const auto during = exp.summarize(1, 250.0, 400.0);
    const auto after = exp.summarize(1, 500.0, 600.0);
    EXPECT_GT(after.mean_kbps, during.mean_kbps);
}

}  // namespace
}  // namespace ezflow::analysis

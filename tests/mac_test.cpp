#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "mac/dcf.h"
#include "mac/mac_queue.h"
#include "phy/channel.h"
#include "sim/scheduler.h"
#include "util/units.h"

namespace ezflow::mac {
namespace {

using util::SimTime;
using util::kSecond;

// ------------------------------------------------------------ MacQueue

TEST(MacQueue, PushPopFifo)
{
    MacQueue q(QueueKey{1, false}, 3, 32);
    net::Packet p;
    for (std::uint64_t i = 0; i < 3; ++i) {
        p.seq = i;
        EXPECT_TRUE(q.push(p));
    }
    EXPECT_EQ(q.size(), 3);
    EXPECT_EQ(q.front().seq, 0u);
    q.pop();
    EXPECT_EQ(q.front().seq, 1u);
    EXPECT_EQ(q.dequeued(), 1u);
}

TEST(MacQueue, DropTailWhenFull)
{
    MacQueue q(QueueKey{1, false}, 2, 32);
    net::Packet p;
    EXPECT_TRUE(q.push(p));
    EXPECT_TRUE(q.push(p));
    EXPECT_FALSE(q.push(p));
    EXPECT_EQ(q.dropped_full(), 1u);
    EXPECT_EQ(q.size(), 2);
}

TEST(MacQueue, FrontPopOnEmptyThrow)
{
    MacQueue q(QueueKey{1, false}, 2, 32);
    EXPECT_THROW(q.front(), std::logic_error);
    EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(MacQueue, CwMinValidation)
{
    MacQueue q(QueueKey{1, false}, 2, 32);
    q.set_cw_min(1 << 10);
    EXPECT_EQ(q.cw_min(), 1 << 10);
    EXPECT_THROW(q.set_cw_min(0), std::invalid_argument);
    EXPECT_THROW(MacQueue(QueueKey{1, false}, 0, 32), std::invalid_argument);
}

TEST(MacQueueSet, EnsureCreatesOnce)
{
    MacQueueSet set(50, 32);
    MacQueue& a = set.ensure(QueueKey{1, false});
    MacQueue& b = set.ensure(QueueKey{1, false});
    EXPECT_EQ(&a, &b);
    MacQueue& own = set.ensure(QueueKey{1, true});
    EXPECT_NE(&a, &own);  // own-traffic queue is separate (paper Sec. 3.1)
}

TEST(MacQueueSet, RoundRobinSkipsEmpty)
{
    MacQueueSet set(50, 32);
    MacQueue& q1 = set.ensure(QueueKey{1, false});
    set.ensure(QueueKey{2, false});
    MacQueue& q3 = set.ensure(QueueKey{3, false});
    net::Packet p;
    q1.push(p);
    q3.push(p);
    EXPECT_EQ(set.next_nonempty(), &q1);
    EXPECT_EQ(set.next_nonempty(), &q3);
    EXPECT_EQ(set.next_nonempty(), &q1);  // wraps, skipping empty q2
}

TEST(MacQueueSet, NextNonemptyOnAllEmpty)
{
    MacQueueSet set(50, 32);
    EXPECT_EQ(set.next_nonempty(), nullptr);
    set.ensure(QueueKey{1, false});
    EXPECT_EQ(set.next_nonempty(), nullptr);
}

TEST(MacQueueSet, TotalPacketsSumsQueues)
{
    MacQueueSet set(50, 32);
    net::Packet p;
    set.ensure(QueueKey{1, false}).push(p);
    set.ensure(QueueKey{2, false}).push(p);
    set.ensure(QueueKey{2, false}).push(p);
    EXPECT_EQ(set.total_packets(), 3);
}

// ------------------------------------------------------------- DcfMac

/// Two-or-more-node MAC test bench with delivery/sniff recording.
struct MacBed {
    sim::Scheduler scheduler;
    phy::PhyParams phy_params;
    MacParams mac_params;
    phy::Channel channel;
    ContentionCoordinator coordinator{scheduler};
    std::vector<std::unique_ptr<phy::NodePhy>> phys;
    std::vector<std::unique_ptr<DcfMac>> macs;
    std::vector<std::unique_ptr<class Recorder>> recorders;

    explicit MacBed(MacParams mp = {}, phy::PhyParams pp = {}, std::uint64_t seed = 7)
        : phy_params(pp), mac_params(mp), channel(scheduler, util::Rng(seed), pp)
    {
    }

    DcfMac& add(double x, double y = 0.0);
};

class Recorder final : public MacCallbacks {
public:
    std::vector<phy::Frame> received;
    std::vector<phy::Frame> sniffed;
    std::vector<net::Packet> first_tx;
    std::vector<net::Packet> successes;
    std::vector<net::Packet> drops;

    void mac_rx(const phy::Frame& frame) override { received.push_back(frame); }
    void mac_sniffed(const phy::Frame& frame) override { sniffed.push_back(frame); }
    void mac_first_tx(const QueueKey&, const net::Packet& p) override { first_tx.push_back(p); }
    void mac_tx_success(const QueueKey&, const net::Packet& p) override { successes.push_back(p); }
    void mac_tx_drop(const QueueKey&, const net::Packet& p) override { drops.push_back(p); }
};

DcfMac& MacBed::add(double x, double y)
{
    const auto id = static_cast<net::NodeId>(phys.size());
    phys.push_back(std::make_unique<phy::NodePhy>(id, phy::Position{x, y}, scheduler));
    channel.attach(*phys.back());
    macs.push_back(std::make_unique<DcfMac>(*phys.back(), scheduler, coordinator,
                                            util::Rng(1000 + id), mac_params));
    recorders.push_back(std::make_unique<Recorder>());
    macs.back()->set_callbacks(recorders.back().get());
    return *macs.back();
}

net::Packet packet(std::uint64_t seq, int bytes = 1000)
{
    net::Packet p;
    p.uid = seq;
    p.seq = seq;
    p.flow_id = 0;
    p.bytes = bytes;
    p.checksum = static_cast<std::uint16_t>(seq * 7919);
    return p;
}

/// Keep `mac`'s queue toward `key` saturated: tops it up to capacity every
/// 10 ms (the DropTail queue holds only 50 packets, so tests cannot
/// enqueue their whole workload up front).
class Saturator {
public:
    Saturator(MacBed& bed, DcfMac& mac, QueueKey key, int bytes = 1000)
        : bed_(bed), mac_(mac), key_(key), bytes_(bytes)
    {
        top_up();
    }

private:
    void top_up()
    {
        while (mac_.enqueue(key_, packet(next_seq_++, bytes_))) {
        }
        bed_.scheduler.schedule_in(10 * util::kMillisecond, [this] { top_up(); });
    }

    MacBed& bed_;
    DcfMac& mac_;
    QueueKey key_;
    int bytes_;
    std::uint64_t next_seq_ = 0;
};

TEST(Dcf, SinglePacketDeliveredAndAcked)
{
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(200);
    a.enqueue(QueueKey{1, true}, packet(0));
    bed.scheduler.run_until(kSecond);
    ASSERT_EQ(bed.recorders[1]->received.size(), 1u);
    EXPECT_EQ(bed.recorders[0]->successes.size(), 1u);
    EXPECT_EQ(a.successes(), 1u);
    EXPECT_EQ(a.retransmissions(), 0u);
    EXPECT_EQ(bed.macs[1]->acks_sent(), 1u);
    EXPECT_EQ(a.queues().total_packets(), 0);
}

TEST(Dcf, FirstTxHookFiresOncePerPacket)
{
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(200);
    for (int i = 0; i < 5; ++i) a.enqueue(QueueKey{1, true}, packet(i));
    bed.scheduler.run_until(kSecond);
    EXPECT_EQ(bed.recorders[0]->first_tx.size(), 5u);
    EXPECT_EQ(bed.recorders[0]->successes.size(), 5u);
}

TEST(Dcf, RetriesUntilLimitThenDrops)
{
    MacBed bed;
    bed.channel.set_link_loss(0, 1, 1.0);  // nothing ever arrives
    DcfMac& a = bed.add(0);
    bed.add(200);
    a.enqueue(QueueKey{1, true}, packet(0));
    bed.scheduler.run_until(10 * kSecond);
    EXPECT_EQ(bed.recorders[0]->drops.size(), 1u);
    EXPECT_EQ(a.retry_drops(), 1u);
    // 1 initial attempt + retry_limit retransmissions.
    EXPECT_EQ(a.data_attempts(), static_cast<std::uint64_t>(1 + bed.mac_params.retry_limit));
    EXPECT_EQ(bed.recorders[1]->received.size(), 0u);
}

TEST(Dcf, LostAckCausesRetransmissionAndReceiverDedups)
{
    MacBed bed;
    bed.channel.set_link_loss(1, 0, 1.0);  // ACKs from node 1 never arrive
    DcfMac& a = bed.add(0);
    bed.add(200);
    a.enqueue(QueueKey{1, true}, packet(0));
    bed.scheduler.run_until(10 * kSecond);
    // Sender exhausts retries (never sees the ACK) and drops.
    EXPECT_EQ(a.retry_drops(), 1u);
    // Receiver got every copy but delivered exactly once.
    EXPECT_EQ(bed.recorders[1]->received.size(), 1u);
    EXPECT_GE(bed.macs[1]->acks_sent(), 2u);
}

TEST(Dcf, PromiscuousSniffSeesForeignFrames)
{
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(200);
    bed.add(100, 100);  // bystander
    a.enqueue(QueueKey{1, true}, packet(0));
    bed.scheduler.run_until(kSecond);
    // The bystander sniffs the data frame (and the ACK addressed to a).
    bool saw_data = false;
    for (const auto& f : bed.recorders[2]->sniffed)
        if (f.type == phy::FrameType::kData) saw_data = true;
    EXPECT_TRUE(saw_data);
}

TEST(Dcf, BackoffDrawsStayWithinWindow)
{
    // With cw = 16 and slot 20 us the access delay of an isolated sender
    // is DIFS + backoff in [0, 15] slots: between 50 and 50 + 300 us.
    MacParams mp;
    mp.cw_min = 16;
    for (int trial = 0; trial < 20; ++trial) {
        MacBed bed(mp, {}, 100 + trial);
        DcfMac& a = bed.add(0);
        bed.add(200);
        a.enqueue(QueueKey{1, true}, packet(0));
        // Find when the data frame hits the air: first busy transition at
        // the receiver.
        SimTime tx_start = -1;
        while (bed.scheduler.pending() > 0 && tx_start < 0) {
            const SimTime before = bed.scheduler.now();
            bed.scheduler.run_until(before + 10);
            if (bed.phys[1]->busy() && tx_start < 0) tx_start = bed.scheduler.now();
        }
        ASSERT_GE(tx_start, 50);
        ASSERT_LE(tx_start, 50 + 15 * 20 + 10);
    }
}

TEST(Dcf, SingleLinkSaturationThroughputMatchesAnalytic)
{
    // Analytic cycle at 1 Mb/s, 1000 B payload, cw 32:
    //   DIFS 50 + E[backoff] 310 + preamble 192 + 8288 (data) + SIFS 10
    //   + preamble 192 + 112 (ack) = 9154 us per packet
    //   => ~874 kb/s. Table 1's best link measures 845 kb/s.
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(200);
    Saturator sat(bed, a, QueueKey{1, true});
    const SimTime horizon = 20 * kSecond;
    bed.scheduler.run_until(horizon);
    const double kbps =
        static_cast<double>(bed.recorders[1]->received.size()) * 8000.0 / util::to_seconds(horizon) / 1000.0;
    EXPECT_NEAR(kbps, 874.0, 30.0);
}

TEST(Dcf, LargerCwMinLowersAccessRate)
{
    // Two saturated contenders; one with cw 16, one with cw 256. The
    // aggressive one should win most transmission opportunities — this is
    // the lever EZ-Flow pulls.
    MacParams mp;
    MacBed bed(mp);
    DcfMac& a = bed.add(0);
    DcfMac& b = bed.add(100);
    bed.add(200);
    a.set_queue_cw_min(QueueKey{2, true}, 16);
    b.set_queue_cw_min(QueueKey{2, true}, 256);
    Saturator sat_a(bed, a, QueueKey{2, true});
    Saturator sat_b(bed, b, QueueKey{2, true});
    bed.scheduler.run_until(30 * kSecond);
    const double a_share = static_cast<double>(a.successes());
    const double b_share = static_cast<double>(b.successes());
    ASSERT_GT(a_share + b_share, 0.0);
    // 1/cw ratio predicts ~16:1; allow a broad band.
    EXPECT_GT(a_share / (a_share + b_share), 0.75);
}

TEST(Dcf, EqualCwSharesFairly)
{
    MacBed bed;
    DcfMac& a = bed.add(0);
    DcfMac& b = bed.add(100);
    bed.add(200);
    Saturator sat_a(bed, a, QueueKey{2, true});
    Saturator sat_b(bed, b, QueueKey{2, true});
    bed.scheduler.run_until(30 * kSecond);
    const double a_share = static_cast<double>(a.successes());
    const double b_share = static_cast<double>(b.successes());
    ASSERT_GT(a_share + b_share, 0.0);
    const double ratio = a_share / (a_share + b_share);
    EXPECT_GT(ratio, 0.40);
    EXPECT_LT(ratio, 0.60);
}

TEST(Dcf, HiddenTransmitterDegradesVictimLink)
{
    // Chain-style hidden terminal: a(0 m) -> b(250 m), while c(560 m) ->
    // d(760 m). c is hidden from a (560 > 550) and its signal reaches b at
    // 310 m — only (310/250)^4 ~ 2.4x weaker than a's, below the 10x
    // capture threshold, so overlaps corrupt a's frames. c's own receiver
    // d is beyond a's interference range, so c's link stays clean.
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(250);  // b
    DcfMac& c = bed.add(560);
    bed.add(760);  // d
    Saturator sat_a(bed, a, QueueKey{1, true});
    Saturator sat_c(bed, c, QueueKey{3, true});
    bed.scheduler.run_until(30 * kSecond);
    const auto a_delivered = bed.recorders[1]->received.size();
    const auto c_delivered = bed.recorders[3]->received.size();
    ASSERT_GT(c_delivered, 1000u);
    // The victim link is heavily degraded but not (necessarily) dead.
    EXPECT_LT(a_delivered, c_delivered / 2);
    EXPECT_GT(a.retransmissions(), a.successes());
}

TEST(Dcf, CaptureProtectsStrongLinkFromFarInterference)
{
    // Same layout but the victim link is short: a(0) -> b(200); the
    // interferer c(700) reaches b at 500 m, (500/200)^4 = 39x weaker than
    // a's signal — captured. a's link survives c's saturation.
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(200);  // b
    DcfMac& c = bed.add(700);
    bed.add(900);  // d
    Saturator sat_a(bed, a, QueueKey{1, true});
    Saturator sat_c(bed, c, QueueKey{3, true});
    bed.scheduler.run_until(20 * kSecond);
    const auto a_delivered = bed.recorders[1]->received.size();
    const auto c_delivered = bed.recorders[3]->received.size();
    ASSERT_GT(c_delivered, 500u);
    EXPECT_GT(a_delivered, c_delivered / 2);
}

TEST(Dcf, LightlyLoadedHiddenTerminalsGetThrough)
{
    // The same hidden pair under light, alternating load delivers fine:
    // collisions require temporal overlap.
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(250);
    DcfMac& c = bed.add(560);
    bed.add(760);
    for (int i = 0; i < 50; ++i) {
        bed.scheduler.schedule_at(i * 100 * util::kMillisecond,
                                  [&a, i] { a.enqueue(QueueKey{1, true}, packet(2 * i)); });
        bed.scheduler.schedule_at((i * 100 + 50) * util::kMillisecond,
                                  [&c, i] { c.enqueue(QueueKey{3, true}, packet(2 * i + 1)); });
    }
    bed.scheduler.run_until(10 * kSecond);
    EXPECT_GE(bed.recorders[1]->received.size(), 48u);
    EXPECT_GE(bed.recorders[3]->received.size(), 48u);
}

TEST(Dcf, CarrierSenseAvoidsCollisionsBetweenNeighbours)
{
    // Two mutually-sensing senders to a common receiver should almost
    // never collide (only same-slot draws do). Collisions show up as
    // retransmissions.
    MacBed bed;
    DcfMac& a = bed.add(0);
    DcfMac& b = bed.add(100);
    bed.add(200);
    Saturator sat_a(bed, a, QueueKey{2, true});
    Saturator sat_b(bed, b, QueueKey{2, true});
    bed.scheduler.run_until(20 * kSecond);
    const auto total = a.successes() + b.successes();
    const auto rtx = a.retransmissions() + b.retransmissions();
    ASSERT_GT(total, 500u);
    // Collision rate bounded: same-slot probability with cw 32 is ~3%,
    // plus alignment effects; allow up to 25%.
    EXPECT_LT(static_cast<double>(rtx) / static_cast<double>(total), 0.25);
}

TEST(Dcf, PerQueueCwMinIsIndependent)
{
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(200);
    bed.add(150, 150);
    a.set_queue_cw_min(QueueKey{1, false}, 64);
    a.set_queue_cw_min(QueueKey{2, false}, 1 << 12);
    EXPECT_EQ(a.queue_cw_min(QueueKey{1, false}), 64);
    EXPECT_EQ(a.queue_cw_min(QueueKey{2, false}), 1 << 12);
    EXPECT_THROW(a.queue_cw_min(QueueKey{9, false}), std::invalid_argument);
}

TEST(Dcf, OwnTrafficDoesNotStarveForwardedTraffic)
{
    // The paper's §3.1 requirement: a node that is both source and relay
    // keeps independent queues "in order not to starve forwarded
    // traffic". With both queues saturated toward the same successor,
    // round-robin service must split transmissions near-evenly.
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(200);
    Saturator own(bed, a, QueueKey{1, true});
    Saturator forwarded(bed, a, QueueKey{1, false});
    bed.scheduler.run_until(30 * kSecond);
    const MacQueue* own_q = a.queues().find(QueueKey{1, true});
    const MacQueue* fwd_q = a.queues().find(QueueKey{1, false});
    ASSERT_NE(own_q, nullptr);
    ASSERT_NE(fwd_q, nullptr);
    ASSERT_GT(own_q->dequeued() + fwd_q->dequeued(), 1000u);
    const double own_share = static_cast<double>(own_q->dequeued()) /
                             static_cast<double>(own_q->dequeued() + fwd_q->dequeued());
    EXPECT_NEAR(own_share, 0.5, 0.05);
}

TEST(Dcf, RoundRobinServesBothQueues)
{
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(200);
    bed.add(150, 150);
    for (int i = 0; i < 50; ++i) {
        a.enqueue(QueueKey{1, false}, packet(2 * i));
        a.enqueue(QueueKey{2, false}, packet(2 * i + 1));
    }
    bed.scheduler.run_until(10 * kSecond);
    EXPECT_GT(bed.recorders[1]->received.size(), 20u);
    EXPECT_GT(bed.recorders[2]->received.size(), 20u);
}

TEST(Dcf, QueueOverflowCountsDrops)
{
    MacBed bed;
    DcfMac& a = bed.add(0);
    bed.add(200);
    int accepted = 0;
    for (int i = 0; i < 200; ++i)
        if (a.enqueue(QueueKey{1, true}, packet(i))) ++accepted;
    // Capacity 50 plus whatever drained in zero simulated time (none).
    EXPECT_EQ(accepted, bed.mac_params.queue_capacity);
    const MacQueue* q = a.queues().find(QueueKey{1, true});
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->dropped_full(), 150u);
}

TEST(Dcf, BidirectionalTrafficOnOneLink)
{
    // Both endpoints send to each other; ACK scheduling and contention
    // interleave without deadlock and both directions make progress.
    MacBed bed;
    DcfMac& a = bed.add(0);
    DcfMac& b = bed.add(200);
    Saturator sat_a(bed, a, QueueKey{1, true});
    Saturator sat_b(bed, b, QueueKey{0, true});
    bed.scheduler.run_until(10 * kSecond);
    EXPECT_GT(bed.recorders[0]->received.size(), 100u);
    EXPECT_GT(bed.recorders[1]->received.size(), 100u);
}

TEST(Dcf, EscalatedCwCapsAtMaxEscalation)
{
    // With a lossy link the retry windows escalate but stay bounded; the
    // packet still eventually drops after retry_limit attempts.
    MacParams mp;
    mp.cw_min = 512;
    mp.cw_max_escalation = 1024;
    MacBed bed(mp);
    bed.channel.set_link_loss(0, 1, 1.0);
    DcfMac& a = bed.add(0);
    bed.add(200);
    a.enqueue(QueueKey{1, true}, packet(0));
    bed.scheduler.run_until(60 * kSecond);
    EXPECT_EQ(a.retry_drops(), 1u);
}

TEST(Dcf, ThroughputScalesInverselyWithPayload)
{
    // Halving the payload should not halve throughput (fixed overheads),
    // sanity-checking the airtime model end to end.
    auto run = [](int bytes) {
        MacBed bed;
        DcfMac& a = bed.add(0);
        bed.add(200);
        Saturator sat(bed, a, QueueKey{1, true}, bytes);
        bed.scheduler.run_until(10 * kSecond);
        return static_cast<double>(bed.recorders[1]->received.size()) * bytes * 8;
    };
    const double full = run(1000);
    const double half = run(500);
    EXPECT_GT(half, full * 0.5);  // better than half
    EXPECT_LT(half, full);        // but strictly worse than full-size
}

}  // namespace
}  // namespace ezflow::mac

// Invariants of the topology/scenario generators: every generated mesh is
// connected, every planned flow path is loop-free and hop-contiguous in
// the link graph, grid neighbour sets match an independent brute-force
// recomputation, and shortest paths are actually shortest.

#include "net/topo_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/network.h"
#include "phy/geometry.h"
#include "util/rng.h"

namespace ezflow::net {
namespace {

/// Brute-force all-pairs hop distances over delivery links (independent
/// of the generator's BFS: plain O(N^3)-ish relaxation).
std::vector<std::vector<int>> brute_force_distances(const Topology& topo)
{
    const int n = topo.node_count();
    constexpr int kInf = 1 << 20;
    std::vector<std::vector<int>> dist(static_cast<std::size_t>(n),
                                       std::vector<int>(static_cast<std::size_t>(n), kInf));
    for (int a = 0; a < n; ++a) {
        dist[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)] = 0;
        for (int b = 0; b < n; ++b) {
            if (a != b && phy::distance(topo.positions[static_cast<std::size_t>(a)],
                                        topo.positions[static_cast<std::size_t>(b)]) <=
                              topo.link_range_m)
                dist[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 1;
        }
    }
    for (int k = 0; k < n; ++k)
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j)
                dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = std::min(
                    dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                    dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] +
                        dist[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]);
    return dist;
}

/// Every flow path must be loop-free, hop-contiguous under the network's
/// delivery range, and registered with the routing layer.
void check_flow_invariants(const Scenario& scenario)
{
    ASSERT_NE(scenario.network, nullptr);
    const double range = scenario.network->config().phy.tx_range_m;
    for (const FlowPlan& plan : scenario.flows) {
        ASSERT_GE(plan.path.size(), 2u) << "flow " << plan.flow_id;
        std::set<NodeId> seen(plan.path.begin(), plan.path.end());
        EXPECT_EQ(seen.size(), plan.path.size()) << "flow " << plan.flow_id << " revisits a node";
        for (std::size_t i = 0; i + 1 < plan.path.size(); ++i) {
            const double d = phy::distance(
                scenario.network->node(plan.path[i]).phy().position(),
                scenario.network->node(plan.path[i + 1]).phy().position());
            EXPECT_LE(d, range) << "flow " << plan.flow_id << " hop " << i << " too long";
        }
        EXPECT_EQ(scenario.network->routing().path(plan.flow_id), plan.path);
        EXPECT_EQ(scenario.network->routing_table().next_hop(plan.flow_id, plan.path[0]),
                  plan.path[1]);
    }
}

TEST(TopoGen, GridNeighbourSetsMatchBruteForce)
{
    for (const auto& [cols, rows] : std::vector<std::pair<int, int>>{{2, 2}, {5, 3}, {7, 7}}) {
        const Topology topo = make_grid_topology(cols, rows, 200.0);
        ASSERT_EQ(topo.node_count(), cols * rows);
        for (int a = 0; a < topo.node_count(); ++a) {
            std::vector<NodeId> expected;
            for (int b = 0; b < topo.node_count(); ++b) {
                if (a == b) continue;
                if (phy::distance(topo.positions[static_cast<std::size_t>(a)],
                                  topo.positions[static_cast<std::size_t>(b)]) <=
                    topo.link_range_m)
                    expected.push_back(b);
            }
            EXPECT_EQ(topo.neighbours[static_cast<std::size_t>(a)], expected)
                << cols << "x" << rows << " node " << a;
            // On a 200 m lattice under the 250 m delivery range the links
            // are exactly the axis-aligned lattice edges.
            const int row = a / cols;
            const int col = a % cols;
            const std::size_t lattice_degree =
                static_cast<std::size_t>((row > 0) + (row + 1 < rows) + (col > 0) +
                                         (col + 1 < cols));
            EXPECT_EQ(topo.neighbours[static_cast<std::size_t>(a)].size(), lattice_degree);
        }
    }
}

TEST(TopoGen, RandomMeshesAreConnectedAndSeeded)
{
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        const Topology topo = make_random_topology(20, 1200.0, 1200.0, 250.0, seed);
        ASSERT_EQ(topo.node_count(), 20);
        EXPECT_TRUE(is_connected(topo)) << "seed " << seed;
        // Deterministic in the seed.
        const Topology again = make_random_topology(20, 1200.0, 1200.0, 250.0, seed);
        for (int i = 0; i < topo.node_count(); ++i) {
            EXPECT_EQ(topo.positions[static_cast<std::size_t>(i)].x,
                      again.positions[static_cast<std::size_t>(i)].x);
            EXPECT_EQ(topo.positions[static_cast<std::size_t>(i)].y,
                      again.positions[static_cast<std::size_t>(i)].y);
        }
    }
    // An impossible density must fail loudly, not loop forever.
    EXPECT_THROW(make_random_topology(3, 50'000.0, 50'000.0, 100.0, 7), std::runtime_error);
}

TEST(TopoGen, ShortestPathsAreShortestAndDeterministic)
{
    util::Rng rng(99);
    for (int trial = 0; trial < 25; ++trial) {
        const Topology topo = make_random_topology(18, 1100.0, 1100.0, 250.0,
                                                   1000 + static_cast<std::uint64_t>(trial));
        const auto dist = brute_force_distances(topo);
        for (int probe = 0; probe < 12; ++probe) {
            const NodeId src = rng.uniform_int(0, topo.node_count() - 1);
            const NodeId dst = rng.uniform_int(0, topo.node_count() - 1);
            const std::vector<NodeId> path = shortest_path(topo, src, dst);
            if (src == dst) {
                EXPECT_TRUE(path.empty());
                continue;
            }
            ASSERT_FALSE(path.empty()) << "mesh is connected, a path must exist";
            EXPECT_EQ(path.front(), src);
            EXPECT_EQ(path.back(), dst);
            EXPECT_EQ(static_cast<int>(path.size()) - 1,
                      dist[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)]);
            for (std::size_t i = 0; i + 1 < path.size(); ++i)
                EXPECT_TRUE(topo.has_link(path[i], path[i + 1]));
            EXPECT_EQ(path, shortest_path(topo, src, dst));  // deterministic
        }
    }
}

TEST(TopoGen, GridCrossScenarioInvariants)
{
    GridSpec spec;
    spec.cols = 7;
    spec.rows = 7;
    spec.cross_flows = 12;
    spec.duration_s = 10.0;
    const Scenario scenario = make_grid_cross(spec, 5);
    EXPECT_EQ(scenario.network->node_count(), 49);
    ASSERT_EQ(scenario.flows.size(), 12u);
    check_flow_invariants(scenario);
    // Straight flows span the full lattice extent.
    for (const FlowPlan& plan : scenario.flows) EXPECT_EQ(plan.path.size(), 7u);
}

TEST(TopoGen, GridCrossRejectsDegenerateLattices)
{
    GridSpec spec;
    spec.cols = 1;
    spec.rows = 5;
    EXPECT_THROW(make_grid_cross(spec, 1), std::invalid_argument);
    spec.cols = 5;
    spec.cross_flows = 0;
    EXPECT_THROW(make_grid_cross(spec, 1), std::invalid_argument);
}

TEST(TopoGen, GridConvergecastRoutesEverySourceToTheGateway)
{
    GridSpec spec;
    spec.cols = 6;
    spec.rows = 5;
    spec.sources = 6;
    spec.duration_s = 10.0;
    const Scenario scenario = make_grid_convergecast(spec, 3);
    ASSERT_EQ(scenario.flows.size(), 6u);
    check_flow_invariants(scenario);
    std::set<NodeId> sources;
    for (const FlowPlan& plan : scenario.flows) {
        EXPECT_EQ(plan.path.back(), 0) << "all flows drain to the gateway";
        sources.insert(plan.path.front());
        // Shortest on the lattice: hops = manhattan distance to node 0.
        const NodeId src = plan.path.front();
        EXPECT_EQ(static_cast<int>(plan.path.size()) - 1, src / spec.cols + src % spec.cols);
    }
    EXPECT_EQ(sources.size(), 6u) << "sources are distinct";
    spec.sources = 100;
    EXPECT_THROW(make_grid_convergecast(spec, 3), std::invalid_argument);
}

TEST(TopoGen, ParkingLotChainSpreadsEntriesTowardTheGateway)
{
    const Scenario scenario = make_parking_lot_chain(9, 3, 5.0, 10.0, 7);
    EXPECT_EQ(scenario.network->node_count(), 10);
    ASSERT_EQ(scenario.flows.size(), 3u);
    check_flow_invariants(scenario);
    EXPECT_EQ(scenario.flows[0].path.front(), 0);
    EXPECT_EQ(scenario.flows[0].path.size(), 10u);  // the full chain
    std::set<NodeId> entries;
    for (const FlowPlan& plan : scenario.flows) {
        EXPECT_EQ(plan.path.back(), 9);
        entries.insert(plan.path.front());
    }
    EXPECT_EQ(entries.size(), 3u);
    EXPECT_THROW(make_parking_lot_chain(3, 4, 5.0, 10.0, 7), std::invalid_argument);
}

TEST(TopoGen, RandomMeshScenarioInvariants)
{
    MeshSpec spec;
    spec.nodes = 22;
    spec.flows = 5;
    spec.width_m = 1300.0;
    spec.height_m = 1300.0;
    spec.duration_s = 10.0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const Scenario scenario = make_random_mesh(spec, seed);
        EXPECT_EQ(scenario.network->node_count(), 22);
        ASSERT_EQ(scenario.flows.size(), 5u);
        check_flow_invariants(scenario);
    }
    // A pinned layout seed keeps the workload identical across run seeds.
    spec.topo_seed = 42;
    const Scenario a = make_random_mesh(spec, 1);
    const Scenario b = make_random_mesh(spec, 2);
    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t f = 0; f < a.flows.size(); ++f)
        EXPECT_EQ(a.flows[f].path, b.flows[f].path);
}

}  // namespace
}  // namespace ezflow::net

#include <gtest/gtest.h>

#include "analysis/recorder.h"
#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"

// RTS/CTS handshake tests. The paper runs with RTS/CTS disabled and
// argues (§5.1) that it is useless when the carrier-sense range already
// covers the area RTS/CTS would protect; the handshake is implemented to
// test that claim (see bench/ablation_rtscts.cpp) and to harden the MAC.
namespace ezflow::mac {
namespace {

using util::kSecond;

/// A small one-flow network with configurable MAC params.
struct RtsBed {
    net::Network network;
    std::vector<net::NodeId> path;
    traffic::Sink sink;

    RtsBed(int hops, MacParams mac_params, double cs_range, std::uint64_t seed = 5)
        : network(make_config(mac_params, cs_range, seed)), sink((build(hops), network))
    {
    }

    static net::Network::Config make_config(MacParams mac_params, double cs_range,
                                             std::uint64_t seed)
    {
        net::Network::Config config = net::default_config(seed);
        config.mac = mac_params;
        config.phy.cs_range_m = cs_range;
        return config;
    }

    void build(int hops)
    {
        for (int i = 0; i <= hops; ++i) path.push_back(network.add_node({200.0 * i, 0.0}));
        network.add_flow(0, path);
    }
};

MacParams rts_on(int threshold = 0)
{
    MacParams params;
    params.rts_cts_enabled = true;
    params.rts_threshold_bytes = threshold;
    return params;
}

TEST(RtsCts, SingleLinkDeliversWithHandshake)
{
    RtsBed bed(1, rts_on(), 550.0);
    bed.sink.attach_flow(0);
    traffic::CbrSource source(bed.network, 0, 1000, 100'000.0);
    source.activate(0, 10 * kSecond);
    bed.network.run_until(11 * kSecond);
    EXPECT_GE(bed.sink.flow(0).packets, 120u);  // ~12.5 pkt/s offered
    EXPECT_EQ(bed.sink.flow(0).duplicates, 0u);
}

TEST(RtsCts, HandshakeCostsThroughput)
{
    // On a clean link the handshake is pure overhead: basic access must
    // be strictly faster at saturation.
    auto saturate = [](MacParams params) {
        RtsBed bed(1, params, 550.0);
        bed.sink.attach_flow(0);
        traffic::CbrSource source(bed.network, 0, 1000, 2e6);
        source.activate(0, 20 * kSecond);
        bed.network.run_until(20 * kSecond);
        return bed.sink.goodput_kbps(0, kSecond, 20 * kSecond);
    };
    const double basic = saturate(MacParams{});
    const double handshake = saturate(rts_on());
    EXPECT_GT(basic, handshake);
    // RTS(20B) + CTS(14B) + 2 SIFS + 2 preambles ~ 0.7 ms per 9.2 ms
    // exchange: expect single-digit percentage loss.
    EXPECT_GT(handshake, basic * 0.85);
}

TEST(RtsCts, ThresholdExemptsSmallFrames)
{
    // With a threshold above the payload, no RTS is ever sent: the
    // saturation throughput matches basic access exactly.
    auto saturate = [](MacParams params, std::uint64_t seed) {
        RtsBed bed(1, params, 550.0, seed);
        bed.sink.attach_flow(0);
        traffic::CbrSource source(bed.network, 0, 500, 2e6);
        source.activate(0, 10 * kSecond);
        bed.network.run_until(10 * kSecond);
        return bed.sink.flow(0).packets;
    };
    EXPECT_EQ(saturate(rts_on(1000), 5), saturate(MacParams{}, 5));
}

namespace {

/// Two saturated senders toward the same receiver b; a and c are hidden
/// from each other under 1-hop carrier sensing. Returns total goodput.
double shared_receiver_goodput(MacParams params, std::uint64_t seed)
{
    net::Network::Config config = net::default_config(seed);
    config.mac = params;
    config.phy.cs_range_m = 250.0;  // a and c (400 m apart) are hidden
    net::Network network(config);
    const auto a = network.add_node({0, 0});
    const auto b = network.add_node({200, 0});
    const auto c = network.add_node({400, 0});
    network.add_flow(0, {a, b});
    network.add_flow(1, {c, b});
    traffic::Sink sink(network);
    sink.attach_flow(0);
    sink.attach_flow(1);
    traffic::CbrSource f0(network, 0, 1000, 2e6);
    traffic::CbrSource f1(network, 1, 1000, 2e6);
    f0.activate(0, 30 * kSecond);
    f1.activate(0, 30 * kSecond);
    network.run_until(30 * kSecond);
    return sink.goodput_kbps(0, 5 * kSecond, 30 * kSecond) +
           sink.goodput_kbps(1, 5 * kSecond, 30 * kSecond);
}

}  // namespace

TEST(RtsCts, ProtectsSharedReceiverFromHiddenSenders)
{
    // The textbook case RTS/CTS was designed for: both hidden senders can
    // decode the receiver's CTS, so a granted exchange silences the other
    // sender. Basic access collapses (8.5 ms frames collide constantly);
    // the handshake restores most of the channel.
    const double basic = shared_receiver_goodput(MacParams{}, 9);
    const double handshake = shared_receiver_goodput(rts_on(), 9);
    EXPECT_LT(basic, 150.0) << "basic access must collapse under hidden senders";
    EXPECT_GT(handshake, basic * 4.0) << "CTS grants should restore most of the channel";
    EXPECT_GT(handshake, 600.0);
}

TEST(RtsCts, CannotProtectBeyondCtsDecodeRange)
{
    // The failure mode that justifies the paper's choice to disable the
    // handshake: a(0) -> b(250) jammed by hidden c(560) -> d(760). c sits
    // 310 m from b — inside interference range but outside CTS decode
    // range — so b's CTS never silences it and the victim link stays dead
    // with or without RTS/CTS. The fix must remove the cause (EZ-Flow),
    // not armour individual frames.
    auto run = [](MacParams params) {
        net::Network::Config config = net::default_config(9);
        config.mac = params;
        net::Network network(config);
        const auto a = network.add_node({0, 0});
        const auto b = network.add_node({250, 0});
        const auto c = network.add_node({560, 0});
        const auto d = network.add_node({760, 0});
        network.add_flow(0, {a, b});
        network.add_flow(1, {c, d});
        traffic::Sink sink(network);
        sink.attach_flow(0);
        sink.attach_flow(1);
        traffic::CbrSource victim(network, 0, 1000, 2e6);
        traffic::CbrSource jammer(network, 1, 1000, 2e6);
        victim.activate(0, 20 * kSecond);
        jammer.activate(0, 20 * kSecond);
        network.run_until(20 * kSecond);
        return sink.goodput_kbps(0, 5 * kSecond, 20 * kSecond);
    };
    EXPECT_LT(run(MacParams{}), 30.0);
    EXPECT_LT(run(rts_on()), 30.0);
}

TEST(RtsCts, MultiHopChainStillWorks)
{
    RtsBed bed(3, rts_on(), 550.0);
    bed.sink.attach_flow(0);
    traffic::CbrSource source(bed.network, 0, 1000, 2e6);
    source.activate(0, 60 * kSecond);
    bed.network.run_until(60 * kSecond);
    EXPECT_GT(bed.sink.goodput_kbps(0, 20 * kSecond, 60 * kSecond), 100.0);
    EXPECT_EQ(bed.sink.flow(0).reordered, 0u);
}

TEST(RtsCts, NavFieldsAdvertiseExchange)
{
    // A third node overhearing only the RTS must defer for the whole
    // exchange: its MAC nav_until extends beyond now + data airtime.
    net::Network::Config config = net::default_config(9);
    config.mac = rts_on();
    net::Network network(config);
    const auto a = network.add_node({0, 0});
    const auto b = network.add_node({200, 0});
    const auto w = network.add_node({100, 100});  // witness
    network.add_flow(0, {a, b});
    traffic::Sink sink(network);
    sink.attach_flow(0);
    traffic::CbrSource source(network, 0, 1000, 50'000.0);
    source.activate(0, 5 * kSecond);
    network.run_until(5 * kSecond);
    EXPECT_GT(network.node(w).mac().nav_until(), 0);
    EXPECT_GT(sink.flow(0).packets, 20u);
}

}  // namespace
}  // namespace ezflow::mac

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.h"
#include "util/csv.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace ezflow::util {
namespace {

// ---------------------------------------------------------------- units

TEST(Units, SecondsRoundTrip)
{
    EXPECT_EQ(from_seconds(1.5), 1'500'000);
    EXPECT_DOUBLE_EQ(to_seconds(2'500'000), 2.5);
}

TEST(Units, KbpsComputesKilobitsPerSecond)
{
    // 8000 bits over 1 second = 8 kb/s.
    EXPECT_DOUBLE_EQ(kbps(8000, kSecond), 8.0);
    // 8000 bits over 10 ms = 800 kb/s.
    EXPECT_DOUBLE_EQ(kbps(8000, 10 * kMillisecond), 800.0);
}

TEST(Units, KbpsZeroDurationIsZero)
{
    EXPECT_DOUBLE_EQ(kbps(1000, 0), 0.0);
}

// ------------------------------------------------------------------ rng

TEST(Rng, UniformIntWithinBounds)
{
    Rng rng(42);
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniform_int(3, 17);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 17);
    }
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(42);
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange)
{
    Rng rng(42);
    EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(7);
    Rng b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDecorrelatedFromParent)
{
    Rng parent(7);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (parent.next_u64() == child.next_u64()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDeterministicAcrossRuns)
{
    Rng a(99);
    Rng b(99);
    Rng fa = a.fork();
    Rng fb = b.fork();
    EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

// Fork derivation is keyed on (stream, fork index): drawing values from
// the parent between forks must not change which stream a child gets.
// This is what keeps a parallel sweep reproducible when tasks fork their
// RNGs in a fixed order but draw in a thread-dependent one.
TEST(Rng, ForkOrderIsStableUnderInterleavedDraws)
{
    Rng a(99);
    Rng b(99);
    Rng a1 = a.fork();
    for (int i = 0; i < 1000; ++i) b.next_u64();  // draws between forks
    Rng b1 = b.fork();
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a1.next_u64(), b1.next_u64());

    a.next_u64();
    Rng a2 = a.fork();
    Rng b2 = b.fork();
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a2.next_u64(), b2.next_u64());
}

TEST(Rng, SiblingForksAreDecorrelated)
{
    Rng parent(7);
    Rng first = parent.fork();
    Rng second = parent.fork();
    // No stream coincidence...
    int equal = 0;
    std::vector<std::uint64_t> xs, ys;
    for (int i = 0; i < 4096; ++i) {
        xs.push_back(first.next_u64());
        ys.push_back(second.next_u64());
        if (xs.back() == ys.back()) ++equal;
    }
    EXPECT_LT(equal, 3);
    // ...and no linear correlation between the streams (Pearson r of the
    // top 32 bits, which would catch shifted/overlapping sequences).
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    const double n = static_cast<double>(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double x = static_cast<double>(xs[i] >> 32);
        const double y = static_cast<double>(ys[i] >> 32);
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double var_x = sxx / n - (sx / n) * (sx / n);
    const double var_y = syy / n - (sy / n) * (sy / n);
    const double r = cov / std::sqrt(var_x * var_y);
    EXPECT_LT(std::abs(r), 0.05);
}

TEST(Rng, ForkedSeedStreamsAcrossSeedsDiffer)
{
    // Adjacent sweep seeds must yield unrelated child streams (the old
    // draw-based fork made this depend on engine state quality).
    Rng a(1);
    Rng b(2);
    Rng fa = a.fork();
    Rng fb = b.fork();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (fa.next_u64() == fb.next_u64()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRateApproximatesP)
{
    Rng rng(1);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanApproximatesParameter)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
    EXPECT_NEAR(sum / n, 250.0, 10.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean)
{
    Rng rng(5);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(11);
    std::vector<double> weights = {1.0, 3.0};
    int ones = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.weighted_index(weights) == 1) ++ones;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadInput)
{
    Rng rng(11);
    EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), std::invalid_argument);
}

// ---------------------------------------------------------- ring buffer

TEST(RingBuffer, RejectsZeroCapacity)
{
    EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, PushAssignsSequentialSeqs)
{
    RingBuffer<int> ring(4);
    EXPECT_EQ(ring.push(10), 0u);
    EXPECT_EQ(ring.push(11), 1u);
    EXPECT_EQ(ring.push(12), 2u);
    EXPECT_EQ(ring.size(), 3u);
}

TEST(RingBuffer, OverwritesOldestWhenFull)
{
    RingBuffer<int> ring(3);
    for (int i = 0; i < 5; ++i) ring.push(i);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.oldest_seq(), 2u);
    EXPECT_EQ(ring.newest_seq(), 4u);
    EXPECT_EQ(ring.at_seq(2), 2);
    EXPECT_EQ(ring.at_seq(4), 4);
}

TEST(RingBuffer, ContainsSeqTracksEviction)
{
    RingBuffer<int> ring(2);
    ring.push(0);
    ring.push(1);
    ring.push(2);
    EXPECT_FALSE(ring.contains_seq(0));
    EXPECT_TRUE(ring.contains_seq(1));
    EXPECT_TRUE(ring.contains_seq(2));
    EXPECT_FALSE(ring.contains_seq(3));
}

TEST(RingBuffer, AtSeqThrowsForEvicted)
{
    RingBuffer<int> ring(2);
    ring.push(0);
    ring.push(1);
    ring.push(2);
    EXPECT_THROW(ring.at_seq(0), std::out_of_range);
}

TEST(RingBuffer, EmptyAccessorsThrow)
{
    RingBuffer<int> ring(2);
    EXPECT_TRUE(ring.empty());
    EXPECT_THROW(ring.oldest_seq(), std::out_of_range);
    EXPECT_THROW(ring.newest_seq(), std::out_of_range);
}

TEST(RingBuffer, ClearResets)
{
    RingBuffer<int> ring(2);
    ring.push(1);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.push(9), 0u);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, MeanVarianceMinMax)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_EQ(s.count(), 8);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance)
{
    RunningStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStats, Ci95HalfwidthMatchesStudentT)
{
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
    // n = 4, mean 2.5, stddev sqrt(5/3); t_{0.975,3} = 3.182.
    EXPECT_NEAR(ci95_halfwidth(s), 3.182 * std::sqrt(5.0 / 3.0) / 2.0, 1e-9);

    RunningStats tiny;
    EXPECT_DOUBLE_EQ(ci95_halfwidth(tiny), 0.0);
    tiny.add(1.0);
    EXPECT_DOUBLE_EQ(ci95_halfwidth(tiny), 0.0);

    RunningStats wide;
    for (int i = 0; i < 100; ++i) wide.add(i % 2 == 0 ? 1.0 : -1.0);
    // Large n uses the normal quantile: 1.96 * stddev / 10.
    EXPECT_NEAR(ci95_halfwidth(wide), 1.96 * wide.stddev() / 10.0, 1e-9);
}

TEST(TimeSeries, RejectsDecreasingTimestamps)
{
    TimeSeries ts;
    ts.add(10, 1.0);
    EXPECT_THROW(ts.add(5, 2.0), std::invalid_argument);
}

TEST(TimeSeries, WindowedMean)
{
    TimeSeries ts;
    for (SimTime t = 0; t < 10; ++t) ts.add(t, static_cast<double>(t));
    // Values 3,4,5,6 fall in [3,7).
    EXPECT_DOUBLE_EQ(ts.mean_between(3, 7), 4.5);
    EXPECT_DOUBLE_EQ(ts.max_between(3, 7), 6.0);
}

TEST(TimeSeries, WindowOutsideDataIsZero)
{
    TimeSeries ts;
    ts.add(5, 3.0);
    EXPECT_DOUBLE_EQ(ts.mean_between(100, 200), 0.0);
}

TEST(Percentile, InterpolatesLinearly)
{
    std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Percentile, RejectsBadInput)
{
    EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
    EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

// ---------------------------------------------------------------- table

TEST(Table, FormatsAlignedColumns)
{
    Table t({"link", "kb/s"});
    t.add_row({"l0", "845"});
    t.add_row({"l2", "408"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| link"), std::string::npos);
    EXPECT_NE(s.find("845"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(7.0, 0), "7");
}

// ------------------------------------------------------------------ csv

TEST(Csv, WritesHeaderAndRows)
{
    const std::string path = ::testing::TempDir() + "/ezf_csv_test.csv";
    {
        CsvWriter csv(path, {"t", "v"});
        csv.add_row(std::vector<double>{1.0, 2.0});
        csv.add_row(std::vector<std::string>{"3", "4"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "t,v");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::getline(in, line);
    EXPECT_EQ(line, "3,4");
}

TEST(Csv, RejectsWrongColumnCount)
{
    const std::string path = ::testing::TempDir() + "/ezf_csv_test2.csv";
    CsvWriter csv(path, {"a", "b"});
    EXPECT_THROW(csv.add_row(std::vector<double>{1.0}), std::invalid_argument);
}

// ------------------------------------------------------------------ cli

TEST(Cli, ParsesEqualsAndSwitchForms)
{
    const char* argv[] = {"prog", "--rate=2.5", "--hops=4", "--verbose", "positional"};
    Cli cli(5, argv);
    EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
    EXPECT_EQ(cli.get_int("hops", 0), 4);
    EXPECT_TRUE(cli.get_bool("verbose", false));
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, FallbacksWhenAbsent)
{
    const char* argv[] = {"prog"};
    Cli cli(1, argv);
    EXPECT_EQ(cli.get("name", "dflt"), "dflt");
    EXPECT_EQ(cli.get_int("n", 9), 9);
    EXPECT_FALSE(cli.has("x"));
}

}  // namespace
}  // namespace ezflow::util

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.h"
#include "util/csv.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace ezflow::util {
namespace {

// ---------------------------------------------------------------- units

TEST(Units, SecondsRoundTrip)
{
    EXPECT_EQ(from_seconds(1.5), 1'500'000);
    EXPECT_DOUBLE_EQ(to_seconds(2'500'000), 2.5);
}

TEST(Units, KbpsComputesKilobitsPerSecond)
{
    // 8000 bits over 1 second = 8 kb/s.
    EXPECT_DOUBLE_EQ(kbps(8000, kSecond), 8.0);
    // 8000 bits over 10 ms = 800 kb/s.
    EXPECT_DOUBLE_EQ(kbps(8000, 10 * kMillisecond), 800.0);
}

TEST(Units, KbpsZeroDurationIsZero)
{
    EXPECT_DOUBLE_EQ(kbps(1000, 0), 0.0);
}

// ------------------------------------------------------------------ rng

TEST(Rng, UniformIntWithinBounds)
{
    Rng rng(42);
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniform_int(3, 17);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 17);
    }
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(42);
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange)
{
    Rng rng(42);
    EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(7);
    Rng b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDecorrelatedFromParent)
{
    Rng parent(7);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (parent.next_u64() == child.next_u64()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDeterministicAcrossRuns)
{
    Rng a(99);
    Rng b(99);
    Rng fa = a.fork();
    Rng fb = b.fork();
    EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRateApproximatesP)
{
    Rng rng(1);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanApproximatesParameter)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
    EXPECT_NEAR(sum / n, 250.0, 10.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean)
{
    Rng rng(5);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(11);
    std::vector<double> weights = {1.0, 3.0};
    int ones = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.weighted_index(weights) == 1) ++ones;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadInput)
{
    Rng rng(11);
    EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), std::invalid_argument);
}

// ---------------------------------------------------------- ring buffer

TEST(RingBuffer, RejectsZeroCapacity)
{
    EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, PushAssignsSequentialSeqs)
{
    RingBuffer<int> ring(4);
    EXPECT_EQ(ring.push(10), 0u);
    EXPECT_EQ(ring.push(11), 1u);
    EXPECT_EQ(ring.push(12), 2u);
    EXPECT_EQ(ring.size(), 3u);
}

TEST(RingBuffer, OverwritesOldestWhenFull)
{
    RingBuffer<int> ring(3);
    for (int i = 0; i < 5; ++i) ring.push(i);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.oldest_seq(), 2u);
    EXPECT_EQ(ring.newest_seq(), 4u);
    EXPECT_EQ(ring.at_seq(2), 2);
    EXPECT_EQ(ring.at_seq(4), 4);
}

TEST(RingBuffer, ContainsSeqTracksEviction)
{
    RingBuffer<int> ring(2);
    ring.push(0);
    ring.push(1);
    ring.push(2);
    EXPECT_FALSE(ring.contains_seq(0));
    EXPECT_TRUE(ring.contains_seq(1));
    EXPECT_TRUE(ring.contains_seq(2));
    EXPECT_FALSE(ring.contains_seq(3));
}

TEST(RingBuffer, AtSeqThrowsForEvicted)
{
    RingBuffer<int> ring(2);
    ring.push(0);
    ring.push(1);
    ring.push(2);
    EXPECT_THROW(ring.at_seq(0), std::out_of_range);
}

TEST(RingBuffer, EmptyAccessorsThrow)
{
    RingBuffer<int> ring(2);
    EXPECT_TRUE(ring.empty());
    EXPECT_THROW(ring.oldest_seq(), std::out_of_range);
    EXPECT_THROW(ring.newest_seq(), std::out_of_range);
}

TEST(RingBuffer, ClearResets)
{
    RingBuffer<int> ring(2);
    ring.push(1);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.push(9), 0u);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, MeanVarianceMinMax)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_EQ(s.count(), 8);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance)
{
    RunningStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(TimeSeries, RejectsDecreasingTimestamps)
{
    TimeSeries ts;
    ts.add(10, 1.0);
    EXPECT_THROW(ts.add(5, 2.0), std::invalid_argument);
}

TEST(TimeSeries, WindowedMean)
{
    TimeSeries ts;
    for (SimTime t = 0; t < 10; ++t) ts.add(t, static_cast<double>(t));
    // Values 3,4,5,6 fall in [3,7).
    EXPECT_DOUBLE_EQ(ts.mean_between(3, 7), 4.5);
    EXPECT_DOUBLE_EQ(ts.max_between(3, 7), 6.0);
}

TEST(TimeSeries, WindowOutsideDataIsZero)
{
    TimeSeries ts;
    ts.add(5, 3.0);
    EXPECT_DOUBLE_EQ(ts.mean_between(100, 200), 0.0);
}

TEST(Percentile, InterpolatesLinearly)
{
    std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Percentile, RejectsBadInput)
{
    EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
    EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

// ---------------------------------------------------------------- table

TEST(Table, FormatsAlignedColumns)
{
    Table t({"link", "kb/s"});
    t.add_row({"l0", "845"});
    t.add_row({"l2", "408"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| link"), std::string::npos);
    EXPECT_NE(s.find("845"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(7.0, 0), "7");
}

// ------------------------------------------------------------------ csv

TEST(Csv, WritesHeaderAndRows)
{
    const std::string path = ::testing::TempDir() + "/ezf_csv_test.csv";
    {
        CsvWriter csv(path, {"t", "v"});
        csv.add_row(std::vector<double>{1.0, 2.0});
        csv.add_row(std::vector<std::string>{"3", "4"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "t,v");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::getline(in, line);
    EXPECT_EQ(line, "3,4");
}

TEST(Csv, RejectsWrongColumnCount)
{
    const std::string path = ::testing::TempDir() + "/ezf_csv_test2.csv";
    CsvWriter csv(path, {"a", "b"});
    EXPECT_THROW(csv.add_row(std::vector<double>{1.0}), std::invalid_argument);
}

// ------------------------------------------------------------------ cli

TEST(Cli, ParsesEqualsAndSwitchForms)
{
    const char* argv[] = {"prog", "--rate=2.5", "--hops=4", "--verbose", "positional"};
    Cli cli(5, argv);
    EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
    EXPECT_EQ(cli.get_int("hops", 0), 4);
    EXPECT_TRUE(cli.get_bool("verbose", false));
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, FallbacksWhenAbsent)
{
    const char* argv[] = {"prog"};
    Cli cli(1, argv);
    EXPECT_EQ(cli.get("name", "dflt"), "dflt");
    EXPECT_EQ(cli.get_int("n", 9), 9);
    EXPECT_FALSE(cli.has("x"));
}

}  // namespace
}  // namespace ezflow::util

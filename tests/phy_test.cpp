#include <gtest/gtest.h>

#include <vector>

#include "phy/channel.h"
#include "phy/frame.h"
#include "phy/geometry.h"
#include "phy/phy.h"
#include "phy/propagation.h"
#include "sim/scheduler.h"

namespace ezflow::phy {
namespace {

// ------------------------------------------------------------- geometry

TEST(Geometry, DistanceEuclidean)
{
    EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

// ---------------------------------------------------------- propagation

TEST(Propagation, FreeSpaceFollowsInverseSquare)
{
    FreeSpace model(0.328);  // ~914 MHz
    const double p100 = model.rx_power_w(0.28, 100.0);
    const double p200 = model.rx_power_w(0.28, 200.0);
    EXPECT_NEAR(p100 / p200, 4.0, 1e-9);
}

TEST(Propagation, TwoRayFollowsInverseFourthBeyondCrossover)
{
    const double lambda = Ns2DefaultPhy::kSpeedOfLight / Ns2DefaultPhy::kFrequencyHz;
    TwoRayGround model(lambda, Ns2DefaultPhy::kAntennaHeightM);
    const double cross = model.crossover_distance_m();
    const double p1 = model.rx_power_w(0.28, cross * 2.0);
    const double p2 = model.rx_power_w(0.28, cross * 4.0);
    EXPECT_NEAR(p1 / p2, 16.0, 1e-9);
}

TEST(Propagation, Ns2ThresholdsYieldPaperRanges)
{
    // The 250 m delivery / 550 m carrier-sense ranges the paper quotes are
    // the ns-2 defaults; verify our two-ray model reproduces them from the
    // raw PHY constants.
    const double lambda = Ns2DefaultPhy::kSpeedOfLight / Ns2DefaultPhy::kFrequencyHz;
    TwoRayGround model(lambda, Ns2DefaultPhy::kAntennaHeightM);
    const double rx_range =
        model.range_for_threshold(Ns2DefaultPhy::kTxPowerW, Ns2DefaultPhy::kRxThresholdW);
    const double cs_range =
        model.range_for_threshold(Ns2DefaultPhy::kTxPowerW, Ns2DefaultPhy::kCsThresholdW);
    EXPECT_NEAR(rx_range, 250.0, 10.0);
    EXPECT_NEAR(cs_range, 550.0, 15.0);
}

TEST(Propagation, RangeForThresholdRejectsBadThreshold)
{
    FreeSpace model(0.328);
    EXPECT_THROW(model.range_for_threshold(0.28, 0.0), std::invalid_argument);
}

// ----------------------------------------------------------- PHY params

TEST(PhyParams, DataFrameAirtime)
{
    PhyParams params;
    Frame frame;
    frame.type = FrameType::kData;
    frame.has_packet = true;
    frame.packet.bytes = 1000;
    // 192 us PLCP + (1000 + 36) * 8 bits at 1 Mb/s.
    EXPECT_EQ(params.tx_duration(frame), 192 + 8288);
}

TEST(PhyParams, AckFrameAirtime)
{
    PhyParams params;
    Frame ack;
    ack.type = FrameType::kAck;
    EXPECT_EQ(params.tx_duration(ack), 192 + 112);
}

TEST(PhyParams, AirtimeRoundsUpAtNonDividingBitrates)
{
    // (1000 + 36) * 8 = 8288 bits. At 1 Mb/s that is exactly 8288 us
    // (paper figures unaffected); at 11 Mb/s truncation would undercount
    // the 753.45 us payload time by a partial symbol.
    PhyParams params;
    Frame frame;
    frame.type = FrameType::kData;
    frame.has_packet = true;
    frame.packet.bytes = 1000;

    params.bitrate_bps = 11'000'000;
    EXPECT_EQ(params.tx_duration(frame), params.plcp_overhead_us + 754);  // ceil(8288/11)
    params.bitrate_bps = 5'500'000;
    EXPECT_EQ(params.tx_duration(frame), params.plcp_overhead_us + 1507);  // ceil(8288/5.5)
    params.bitrate_bps = 2'000'000;
    EXPECT_EQ(params.tx_duration(frame), params.plcp_overhead_us + 4144);  // exact
    params.bitrate_bps = 1'000'000;
    EXPECT_EQ(params.tx_duration(frame), params.plcp_overhead_us + 8288);  // exact

    Frame ack;
    ack.type = FrameType::kAck;
    params.bitrate_bps = 11'000'000;
    EXPECT_EQ(params.tx_duration(ack), params.plcp_overhead_us + 11);  // ceil(112/11)
}

// -------------------------------------------------- channel and NodePhy

/// Records everything the PHY reports, for assertions.
class RecordingListener final : public PhyListener {
public:
    std::vector<bool> busy_transitions;
    std::vector<Frame> decoded;
    std::vector<Frame> tx_done;

    void phy_busy_changed(bool busy) override { busy_transitions.push_back(busy); }
    void phy_frame_decoded(const Frame& frame) override { decoded.push_back(frame); }
    void phy_tx_done(const Frame& frame) override { tx_done.push_back(frame); }
};

struct TestBed {
    sim::Scheduler scheduler;
    PhyParams params;
    Channel channel;
    std::vector<std::unique_ptr<NodePhy>> phys;
    std::vector<std::unique_ptr<RecordingListener>> listeners;

    explicit TestBed(PhyParams p = {}) : params(p), channel(scheduler, util::Rng(7), p) {}

    NodePhy& add(double x, double y = 0.0)
    {
        const auto id = static_cast<net::NodeId>(phys.size());
        phys.push_back(std::make_unique<NodePhy>(id, Position{x, y}, scheduler));
        listeners.push_back(std::make_unique<RecordingListener>());
        channel.attach(*phys.back());
        phys.back()->set_listener(listeners.back().get());
        return *phys.back();
    }

    RecordingListener& listener(std::size_t i) { return *listeners[i]; }
};

Frame data_frame(net::NodeId from, net::NodeId to, int bytes = 1000)
{
    Frame f;
    f.type = FrameType::kData;
    f.tx_node = from;
    f.rx_node = to;
    f.has_packet = true;
    f.packet.bytes = bytes;
    f.packet.checksum = 0xBEEF;
    return f;
}

TEST(Channel, DeliversWithinRange)
{
    TestBed bed;
    NodePhy& a = bed.add(0);
    bed.add(200);  // within 250 m
    a.start_tx(data_frame(0, 1));
    bed.scheduler.run();
    ASSERT_EQ(bed.listener(1).decoded.size(), 1u);
    EXPECT_EQ(bed.listener(1).decoded[0].rx_node, 1);
    EXPECT_EQ(bed.listener(0).tx_done.size(), 1u);
}

TEST(Channel, NoDeliveryBeyondDeliveryRange)
{
    TestBed bed;
    NodePhy& a = bed.add(0);
    bed.add(300);  // beyond 250 m but within CS range
    a.start_tx(data_frame(0, 1));
    bed.scheduler.run();
    EXPECT_TRUE(bed.listener(1).decoded.empty());
    // Still sensed: busy toggled on and off.
    ASSERT_EQ(bed.listener(1).busy_transitions.size(), 2u);
    EXPECT_TRUE(bed.listener(1).busy_transitions[0]);
    EXPECT_FALSE(bed.listener(1).busy_transitions[1]);
}

TEST(Channel, NoSensingBeyondCsRange)
{
    TestBed bed;
    NodePhy& a = bed.add(0);
    bed.add(600);  // beyond 550 m
    a.start_tx(data_frame(0, 1));
    bed.scheduler.run();
    EXPECT_TRUE(bed.listener(1).busy_transitions.empty());
    EXPECT_TRUE(bed.listener(1).decoded.empty());
}

TEST(Channel, EveryNodeInRangeHearsEverything)
{
    // The broadcast property EZ-Flow relies on: a third party within
    // delivery range decodes frames not addressed to it.
    TestBed bed;
    NodePhy& a = bed.add(0);
    bed.add(200);
    bed.add(100, 100);  // bystander within range of the transmitter
    a.start_tx(data_frame(0, 1));
    bed.scheduler.run();
    ASSERT_EQ(bed.listener(2).decoded.size(), 1u);
    EXPECT_EQ(bed.listener(2).decoded[0].rx_node, 1);  // addressed elsewhere
}

TEST(Channel, HiddenTerminalCollisionCorruptsReception)
{
    // a(0) -> b(200); c at 400 is within interference range of b but
    // hidden from a. Overlapping transmissions corrupt b's reception.
    TestBed bed;
    NodePhy& a = bed.add(0);
    bed.add(200);
    NodePhy& c = bed.add(400);
    a.start_tx(data_frame(0, 1));
    bed.scheduler.schedule_at(1000, [&] { c.start_tx(data_frame(2, 3)); });
    bed.scheduler.run();
    EXPECT_TRUE(bed.listener(1).decoded.empty());
    EXPECT_EQ(bed.phys[1]->frames_corrupted(), 1u);
}

TEST(Channel, CollisionWhenSecondSignalArrivesFirstFrameAlreadyLocked)
{
    // Locked reception is corrupted by any later overlapping signal, and
    // the later signal itself is not decodable either.
    TestBed bed;
    NodePhy& a = bed.add(0);
    bed.add(200);          // receiver
    NodePhy& c = bed.add(150, 150);  // also within delivery range of b
    a.start_tx(data_frame(0, 1));
    bed.scheduler.schedule_at(500, [&] { c.start_tx(data_frame(2, 1)); });
    bed.scheduler.run();
    EXPECT_TRUE(bed.listener(1).decoded.empty());
}

TEST(Channel, BackToBackTransmissionsBothDecoded)
{
    TestBed bed;
    NodePhy& a = bed.add(0);
    bed.add(200);
    a.start_tx(data_frame(0, 1));
    const SimTime first_ends = bed.params.tx_duration(data_frame(0, 1));
    bed.scheduler.schedule_at(first_ends + 10, [&] { a.start_tx(data_frame(0, 1, 500)); });
    bed.scheduler.run();
    EXPECT_EQ(bed.listener(1).decoded.size(), 2u);
}

TEST(Channel, TransmitterCannotHearWhileTransmitting)
{
    // Half-duplex: b transmits while a's frame is on the air; b decodes
    // nothing (this is the paper's "sniffer constraint").
    TestBed bed;
    NodePhy& a = bed.add(0);
    NodePhy& b = bed.add(200);
    b.start_tx(data_frame(1, 2));  // long frame
    bed.scheduler.schedule_at(100, [&] { a.start_tx(data_frame(0, 1, 100)); });
    bed.scheduler.run();
    EXPECT_TRUE(bed.listener(1).decoded.empty());
    EXPECT_GE(bed.phys[1]->frames_missed_busy(), 1u);
}

TEST(Channel, PerLinkLossDropsFrames)
{
    TestBed bed;
    bed.channel.set_link_loss(0, 1, 1.0);
    NodePhy& a = bed.add(0);
    bed.add(200);
    a.start_tx(data_frame(0, 1));
    bed.scheduler.run();
    EXPECT_TRUE(bed.listener(1).decoded.empty());
}

TEST(Channel, LinkLossIsDirectional)
{
    TestBed bed;
    bed.channel.set_link_loss(0, 1, 1.0);
    NodePhy& a = bed.add(0);
    NodePhy& b = bed.add(200);
    a.start_tx(data_frame(0, 1));
    bed.scheduler.run();
    EXPECT_TRUE(bed.listener(1).decoded.empty());
    b.start_tx(data_frame(1, 0));
    bed.scheduler.run();
    EXPECT_EQ(bed.listener(0).decoded.size(), 1u);
}

TEST(Channel, LinkLossValidation)
{
    TestBed bed;
    EXPECT_THROW(bed.channel.set_link_loss(0, 1, -0.1), std::invalid_argument);
    EXPECT_THROW(bed.channel.set_link_loss(0, 1, 1.1), std::invalid_argument);
    EXPECT_DOUBLE_EQ(bed.channel.link_loss(3, 4), 0.0);
}

TEST(Channel, RejectsDuplicateNodeIds)
{
    TestBed bed;
    bed.add(0);
    NodePhy dup(0, Position{10, 10}, bed.scheduler);
    EXPECT_THROW(bed.channel.attach(dup), std::invalid_argument);
}

TEST(NodePhy, StartTxWhileTransmittingThrows)
{
    TestBed bed;
    NodePhy& a = bed.add(0);
    a.start_tx(data_frame(0, 1));
    EXPECT_THROW(a.start_tx(data_frame(0, 1)), std::logic_error);
}

TEST(NodePhy, BusyDuringOwnTransmission)
{
    TestBed bed;
    NodePhy& a = bed.add(0);
    EXPECT_FALSE(a.busy());
    a.start_tx(data_frame(0, 1));
    EXPECT_TRUE(a.busy());
    EXPECT_TRUE(a.transmitting());
    bed.scheduler.run();
    EXPECT_FALSE(a.busy());
}

TEST(NodePhy, TxWhileReceivingAbortsReception)
{
    TestBed bed;
    NodePhy& a = bed.add(0);
    NodePhy& b = bed.add(200);
    a.start_tx(data_frame(0, 1));
    bed.scheduler.schedule_at(100, [&] { b.start_tx(data_frame(1, 0, 50)); });
    bed.scheduler.run();
    EXPECT_TRUE(bed.listener(1).decoded.empty());  // b aborted its RX
    // And a cannot decode b's frame either: it was transmitting during
    // part of b's frame? No -- a finished at 8480 while b's short frame
    // ended earlier; a was still transmitting: missed.
    EXPECT_TRUE(bed.listener(0).decoded.empty());
}

TEST(NodePhy, ChannelParamsRequiresAttachment)
{
    sim::Scheduler sched;
    NodePhy lone(0, Position{0, 0}, sched);
    EXPECT_THROW(lone.channel_params(), std::logic_error);
}

// ------------------------------------------- single-copy frame pipeline

TEST(Channel, FanoutPerformsZeroPerReceiverFrameCopies)
{
    // A dense cluster: every node is within delivery range of the
    // transmitter, so one transmission fans out to every other PHY. The
    // whole pipeline — start_tx, the pooled FrameRecord, per-receiver
    // signal_start/signal_end and the sender's tx_end — must not copy the
    // Frame at all, regardless of the receiver count (listeners are left
    // unset: delivery callbacks may copy, the transport may not).
    for (const int nodes : {3, 61}) {
        sim::Scheduler scheduler;
        Channel channel(scheduler, util::Rng(7), PhyParams{});
        std::vector<std::unique_ptr<NodePhy>> phys;
        for (int i = 0; i < nodes; ++i) {
            phys.push_back(std::make_unique<NodePhy>(i, Position{i * 1.0, 0.0}, scheduler));
            channel.attach(*phys.back());
        }
        const std::uint64_t copies_before = Frame::copies();
        phys[0]->start_tx(data_frame(0, 1));
        scheduler.run();
        EXPECT_EQ(Frame::copies() - copies_before, 0u) << "nodes=" << nodes;
        EXPECT_EQ(channel.frame_pool().created(), 1u) << "nodes=" << nodes;
    }
}

TEST(Channel, FramePoolRecyclesAcrossTransmissions)
{
    TestBed bed;
    NodePhy& a = bed.add(0);
    bed.add(200);
    a.start_tx(data_frame(0, 1));
    bed.scheduler.run();
    EXPECT_EQ(bed.channel.frame_pool().created(), 1u);
    EXPECT_EQ(bed.channel.frame_pool().live(), 0u);  // all signal ends fired
    a.start_tx(data_frame(0, 1));
    bed.scheduler.run();
    // The second transmission reuses the recycled record: steady state
    // allocates nothing.
    EXPECT_EQ(bed.channel.frame_pool().created(), 1u);
    EXPECT_EQ(bed.channel.frame_pool().reused(), 1u);
    EXPECT_EQ(bed.listener(1).decoded.size(), 2u);
}

TEST(Channel, FramePoolSharesOneRecordOnBroadcastPath)
{
    // Cull disabled (reference full-broadcast scan) with a lossy Gilbert
    // link in the fan-out: still one record per transmission, released
    // when the last signal end fires.
    TestBed bed;
    bed.channel.set_reachability_cull(false);
    bed.channel.set_link_error_model(0, 1, make_gilbert(GilbertParams{1.0, 1.0, 0.0, 1.0}));
    NodePhy& a = bed.add(0);
    bed.add(200);
    bed.add(400);
    a.start_tx(data_frame(0, 1));
    EXPECT_EQ(bed.channel.frame_pool().created(), 1u);
    EXPECT_EQ(bed.channel.frame_pool().live(), 1u);  // signal ends pending
    bed.scheduler.run();
    EXPECT_EQ(bed.channel.frame_pool().live(), 0u);
}

TEST(Channel, MidFlightRecordsSurviveChannelDestruction)
{
    // The scheduler can outlive the channel with signal-end events still
    // pending (Network destroys members in reverse order). The pending
    // FrameRefs must keep their orphaned records alive and free them when
    // the events are destroyed — ASan runs of this test pin the lifetime
    // down.
    sim::Scheduler scheduler;
    std::vector<std::unique_ptr<NodePhy>> phys;
    {
        Channel channel(scheduler, util::Rng(7), PhyParams{});
        for (int i = 0; i < 3; ++i) {
            phys.push_back(std::make_unique<NodePhy>(i, Position{i * 200.0, 0.0}, scheduler));
            channel.attach(*phys.back());
        }
        phys[0]->start_tx(data_frame(0, 1));
        EXPECT_EQ(channel.frame_pool().live(), 1u);
        // Channel (and pool) destroyed here with the events mid-flight.
    }
    EXPECT_GT(scheduler.pending(), 0u);
    // Scheduler destruction releases the orphaned record via the last ref.
}

TEST(Channel, TransmissionCountersTrackTypes)
{
    TestBed bed;
    NodePhy& a = bed.add(0);
    bed.add(200);
    a.start_tx(data_frame(0, 1));
    bed.scheduler.run();
    Frame ack;
    ack.type = FrameType::kAck;
    ack.tx_node = 0;
    ack.rx_node = 1;
    a.start_tx(ack);
    bed.scheduler.run();
    EXPECT_EQ(bed.channel.transmissions(), 2u);
    EXPECT_EQ(bed.channel.data_transmissions(), 1u);
}

}  // namespace
}  // namespace ezflow::phy

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "net/topologies.h"
#include "phy/error_model.h"
#include "traffic/sink.h"
#include "traffic/source.h"

// Gilbert–Elliott bursty-loss channel tests: the substrate behind the
// paper's "variability of the wireless channel" robustness discussion
// (§3.2). Losses arrive in bursts (bad state) separated by clean periods,
// unlike the independent per-frame losses of the Table 1 calibration.
// Gilbert–Elliott is one ErrorModel implementation installed through the
// generic Channel::set_link_error_model surface.
namespace ezflow::phy {
namespace {

using util::kSecond;

TEST(Gilbert, StationaryLossFormula)
{
    GilbertParams params;
    params.to_bad_per_s = 1.0;
    params.to_good_per_s = 3.0;
    params.loss_good = 0.0;
    params.loss_bad = 0.8;
    // pi_bad = 1/4 -> stationary loss 0.2.
    EXPECT_DOUBLE_EQ(gilbert_stationary_loss(params), 0.2);
    // The model reports the same value through the generic interface.
    EXPECT_DOUBLE_EQ(make_gilbert(params)->mean_loss(), 0.2);
}

TEST(Gilbert, RejectsBadParams)
{
    GilbertParams params;
    params.to_bad_per_s = 0.0;
    EXPECT_THROW(make_gilbert(params), std::invalid_argument);
    params = GilbertParams{};
    params.loss_bad = 1.5;
    EXPECT_THROW(make_gilbert(params), std::invalid_argument);
}

TEST(Gilbert, LinkLossReportsInstalledModelMean)
{
    net::Scenario s = net::make_line(1, 10, 3);
    Channel& channel = s.network->channel();
    EXPECT_DOUBLE_EQ(channel.link_loss(0, 1), 0.0);
    GilbertParams params;
    params.to_bad_per_s = 1.0;
    params.to_good_per_s = 3.0;
    params.loss_bad = 0.8;
    channel.set_link_error_model(0, 1, make_gilbert(params));
    EXPECT_DOUBLE_EQ(channel.link_loss(0, 1), 0.2);
    // Re-installing replaces the model (LinkTable assign path).
    channel.set_link_loss(0, 1, 0.5);
    EXPECT_DOUBLE_EQ(channel.link_loss(0, 1), 0.5);
    EXPECT_THROW(channel.set_link_error_model(0, 1, nullptr), std::invalid_argument);
}

TEST(Gilbert, ErrorModelInstallMatchesStationaryLoss)
{
    // The one-call install path (set_link_error_model + make_gilbert)
    // reports the model's stationary loss; the former set_link_gilbert
    // shim is gone.
    net::Scenario s = net::make_line(1, 10, 3);
    GilbertParams params;
    params.to_bad_per_s = 1.0;
    params.to_good_per_s = 3.0;
    params.loss_bad = 0.8;
    s.network->channel().set_link_error_model(0, 1, make_gilbert(params));
    EXPECT_DOUBLE_EQ(Channel::gilbert_stationary_loss(params), 0.2);
    EXPECT_DOUBLE_EQ(s.network->channel().link_loss(0, 1), 0.2);
}

TEST(Gilbert, LongRunLossMatchesStationary)
{
    // Saturate a 1-hop link with a bursty loss process and compare the
    // delivered fraction (per attempt) against the stationary loss.
    net::Scenario s = net::make_line(1, 400, 5);
    net::Network& network = *s.network;
    GilbertParams params;
    params.to_bad_per_s = 0.5;
    params.to_good_per_s = 1.5;
    params.loss_good = 0.0;
    params.loss_bad = 1.0;  // bad state kills everything
    network.channel().set_link_error_model(0, 1, make_gilbert(params));
    traffic::Sink sink(network);
    sink.attach_flow(0);
    traffic::CbrSource source(network, 0, 1000, 2e6);
    source.activate(0, 300 * kSecond);
    network.run_until(300 * kSecond);
    const auto& mac = network.node(0).mac();
    const double per_attempt_loss = 1.0 - static_cast<double>(mac.successes() + mac.retry_drops()) /
                                              // successes need 1 clean data + 1 clean... the ACK
                                              // direction is loss-free here, so attempts fail only
                                              // on the data roll.
                                              static_cast<double>(mac.data_attempts());
    (void)per_attempt_loss;
    // pi_bad = 0.25 of wall time is bad. The per-attempt loss tracks it
    // from below: binary-exponential backoff stretches the gap between
    // attempts inside a bad burst, so bad periods are undersampled
    // (empirically ~0.16-0.20 across seeds for these parameters).
    const double expected = gilbert_stationary_loss(params);
    const double measured = static_cast<double>(mac.retransmissions() + mac.retry_drops()) /
                            static_cast<double>(mac.data_attempts());
    EXPECT_GT(measured, 0.10);            // bursts clearly present...
    EXPECT_LT(measured, expected + 0.05);  // ...but not oversampled
}

TEST(Gilbert, LossesAreBursty)
{
    // With slow state flips, consecutive frames share the state: compare
    // observed burstiness against an independent-loss link of the same
    // average rate by counting retransmission "runs" at the MAC.
    auto consecutive_failure_ratio = [](bool bursty, std::uint64_t seed) {
        net::Scenario s = net::make_line(1, 200, seed);
        net::Network& network = *s.network;
        if (bursty) {
            GilbertParams params;
            params.to_bad_per_s = 0.25;
            params.to_good_per_s = 0.75;
            params.loss_good = 0.0;
            params.loss_bad = 1.0;  // stationary 0.25
            network.channel().set_link_error_model(0, 1, make_gilbert(params));
        } else {
            network.channel().set_link_loss(0, 1, 0.25);
        }
        traffic::Sink sink(network);
        sink.attach_flow(0);
        traffic::CbrSource source(network, 0, 1000, 2e6);
        source.activate(0, 150 * kSecond);
        network.run_until(150 * kSecond);
        // Bursty links exhaust retries (8 straight losses) often;
        // independent 25% loss almost never does (0.25^8 ~ 1.5e-5).
        const auto& mac = network.node(0).mac();
        return static_cast<double>(mac.retry_drops()) /
               static_cast<double>(mac.successes() + mac.retry_drops());
    };
    EXPECT_GT(consecutive_failure_ratio(true, 7), 50 * consecutive_failure_ratio(false, 7) + 0.001);
}

TEST(Gilbert, EzFlowStillStabilizesUnderBurstyLoss)
{
    // The robustness claim end-to-end: a bursty middle link on the 4-hop
    // chain (losing sniffs and data alike in bursts) does not break the
    // stabilization.
    analysis::ExperimentOptions options;
    options.mode = analysis::Mode::kEzFlow;
    analysis::Experiment exp(net::make_line(4, 400.0, 6), options);
    GilbertParams params;
    params.to_bad_per_s = 0.2;
    params.to_good_per_s = 1.8;
    params.loss_good = 0.0;
    params.loss_bad = 0.9;
    exp.network().channel().set_link_error_model(1, 2, make_gilbert(params));
    exp.run();
    const double b1 =
        exp.buffers().mean_occupancy(1, util::from_seconds(250), util::from_seconds(400));
    // The bursty link makes N1's service worse, so some backlog is
    // expected — but EZ-Flow must keep it off the 50-packet cap and keep
    // traffic flowing.
    EXPECT_LT(b1, 40.0);
    EXPECT_GT(exp.summarize(0, 250, 400).mean_kbps, 50.0);
}

}  // namespace
}  // namespace ezflow::phy

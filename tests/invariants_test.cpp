#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "model/walk.h"
#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"

// Cross-cutting invariants of the whole system: packet conservation,
// bitwise determinism, and structural properties that must hold on any
// topology and under any policy. These are the guards that keep the
// experiment results trustworthy.
namespace ezflow {
namespace {

using util::kSecond;

// ------------------------------------------------------- conservation

/// Account for every packet a source generated: delivered, dropped at the
/// source queue, dropped at a relay queue, dropped by MAC retries, or
/// still queued/in flight at the end.
void check_conservation(analysis::Mode mode, int hops, std::uint64_t seed)
{
    analysis::ExperimentOptions options;
    options.mode = mode;
    analysis::Experiment exp(net::make_line(hops, 60.0, seed), options);
    exp.run();

    net::Network& network = exp.network();
    const auto& record = exp.sink().flow(0);

    std::uint64_t source_drops = 0;
    std::uint64_t relay_drops = 0;
    std::uint64_t retry_drops = 0;
    std::uint64_t still_queued = 0;
    for (int n = 0; n < network.node_count(); ++n) {
        source_drops += network.node(n).source_queue_drops();
        relay_drops += network.node(n).forward_queue_drops();
        retry_drops += network.node(n).mac().retry_drops();
        still_queued += static_cast<std::uint64_t>(network.node(n).mac().queues().total_packets());
    }
    // The CBR source reports how many packets it generated and how many
    // the own-traffic queue accepted.
    std::uint64_t generated = 0;
    std::uint64_t accepted = 0;
    // (Experiment owns the sources; recover totals via the source node's
    // counters: generated = accepted + dropped_at_source.)
    accepted = record.packets + record.duplicates + relay_drops + retry_drops + still_queued;
    generated = accepted + source_drops;
    // Sanity: the sink cannot have seen more packets than were accepted.
    EXPECT_LE(record.packets, accepted);
    // All drop counters must be internally consistent (no negative slack).
    EXPECT_GE(generated, record.packets);
}

TEST(Conservation, BaselineFourHop) { check_conservation(analysis::Mode::kBaseline80211, 4, 31); }
TEST(Conservation, EzFlowFourHop) { check_conservation(analysis::Mode::kEzFlow, 4, 31); }
TEST(Conservation, PenaltySixHop) { check_conservation(analysis::Mode::kPenalty, 6, 32); }

TEST(Conservation, ExactAccountingOnCleanLink)
{
    // On a 1-hop loss-free link every number is exact: generated =
    // delivered + source drops + queued.
    net::Scenario s = net::make_line(1, 30.0, 33);
    net::Network& network = *s.network;
    traffic::Sink sink(network);
    sink.attach_flow(0);
    traffic::CbrSource source(network, 0, 1000, 2e6);
    source.activate(0, 20 * kSecond);
    network.run_until(30 * kSecond);
    const auto& stats = source.stats();
    const auto queued = static_cast<std::uint64_t>(network.node(0).mac().queues().total_packets());
    EXPECT_EQ(stats.generated, stats.accepted + stats.dropped_at_source);
    EXPECT_EQ(stats.accepted, sink.flow(0).packets + queued);
    EXPECT_EQ(sink.flow(0).duplicates, 0u);
}

// -------------------------------------------------------- determinism

TEST(Determinism, SameSeedSameResults)
{
    auto fingerprint = [](std::uint64_t seed) {
        analysis::ExperimentOptions options;
        options.mode = analysis::Mode::kEzFlow;
        analysis::Experiment exp(net::make_testbed(5, 120, 5, 120, seed), options);
        exp.run_until_s(120);
        const auto& f1 = exp.sink().flow(1);
        const auto& f2 = exp.sink().flow(2);
        return std::tuple(f1.packets, f2.packets, f1.delay_us.sum(), f2.delay_us.sum(),
                          exp.network().scheduler().processed());
    };
    EXPECT_EQ(fingerprint(77), fingerprint(77));
}

TEST(Determinism, DifferentSeedsDiffer)
{
    auto packets = [](std::uint64_t seed) {
        analysis::ExperimentOptions options;
        analysis::Experiment exp(net::make_line(3, 60, seed), options);
        exp.run();
        return exp.sink().flow(0).packets;
    };
    // Saturated runs of different seeds almost surely differ in at least
    // one delivered-packet count.
    EXPECT_NE(packets(1), packets(2));
}

// ------------------------------------------- random-topology property

/// Random gateway trees: a handful of flows over random branch lengths.
/// EZ-Flow must never perform (much) worse than the baseline on total
/// goodput and must keep relay buffers lower on average.
class RandomTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreeProperty, EzFlowNeverMuchWorse)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    util::Rng rng(seed);
    // Build a random two-branch tree into a gateway line.
    const int trunk = rng.uniform_int(2, 4);
    const int branch = rng.uniform_int(1, 3);

    auto build = [&](std::uint64_t net_seed) {
        auto config = net::testbed_config(net_seed);
        auto network = std::make_unique<net::Network>(config);
        std::vector<net::NodeId> trunk_path;
        for (int i = 0; i <= trunk; ++i) trunk_path.push_back(network->add_node({200.0 * i, 0.0}));
        std::vector<net::NodeId> branch_path;
        for (int i = 1; i <= branch; ++i)
            branch_path.push_back(
                network->add_node({200.0 * trunk + 120.0 * i, 160.0 * i}));
        // Flow 1: branch tip -> gateway (through the trunk end).
        std::vector<net::NodeId> f1(branch_path.rbegin(), branch_path.rend());
        f1.insert(f1.end(), trunk_path.rbegin(), trunk_path.rend());
        // Flow 2: trunk end -> gateway.
        std::vector<net::NodeId> f2(trunk_path.rbegin(), trunk_path.rend());
        network->add_flow(1, f1);
        network->add_flow(2, f2);
        net::Scenario scenario;
        scenario.network = std::move(network);
        scenario.flows.push_back(net::FlowPlan{1, f1, 5.0, 180.0});
        scenario.flows.push_back(net::FlowPlan{2, f2, 5.0, 180.0});
        return scenario;
    };

    auto total_goodput = [&](analysis::Mode mode) {
        analysis::ExperimentOptions options;
        options.mode = mode;
        analysis::Experiment exp(build(seed * 13 + 1), options);
        exp.run();
        return exp.summarize(1, 60, 180).mean_kbps + exp.summarize(2, 60, 180).mean_kbps;
    };

    const double base = total_goodput(analysis::Mode::kBaseline80211);
    const double ez = total_goodput(analysis::Mode::kEzFlow);
    EXPECT_GT(ez, base * 0.8) << "trunk=" << trunk << " branch=" << branch;
}

INSTANTIATE_TEST_SUITE_P(Topologies, RandomTreeProperty, ::testing::Range(1, 7));

// -------------------------------------------------- model invariants

/// For any K and any buffer state, a sampled pattern must satisfy the
/// interference constraints: an active link's receiver has no other
/// transmitter within one hop, active transmitters are backlogged (or the
/// source), and no two carrier-sensing neighbours transmit together.
class ModelPatternInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ModelPatternInvariants, SampledPatternsAreFeasible)
{
    const int hops = GetParam();
    model::RandomWalkModel::Config config;
    config.hops = hops;
    model::RandomWalkModel walk(config, util::Rng(500 + hops));
    util::Rng state_rng(900 + hops);

    const std::vector<double> cw(static_cast<std::size_t>(hops), 32.0);
    for (int trial = 0; trial < 500; ++trial) {
        model::BufferVector relays(static_cast<std::size_t>(hops - 1));
        for (auto& b : relays) b = state_rng.uniform_int(0, 3);
        const std::vector<int> z = walk.sample_pattern(relays, cw);
        for (int i = 0; i < hops; ++i) {
            if (z[static_cast<std::size_t>(i)] == 0) continue;
            // Active transmitter must be the source or backlogged.
            if (i > 0) EXPECT_GT(relays[static_cast<std::size_t>(i - 1)], 0) << "link " << i;
            // No other active link's transmitter within 1 hop of the
            // receiver i+1.
            for (int j = 0; j < hops; ++j) {
                if (j == i || z[static_cast<std::size_t>(j)] == 0) continue;
                EXPECT_GT(std::abs(j - (i + 1)), 1)
                    << "link " << j << " too close to receiver of link " << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Hops, ModelPatternInvariants, ::testing::Values(2, 3, 4, 5, 6, 8));

/// Throughput of the walk (deliveries per slot) is at most the spatial
/// reuse bound: floor(K / 3) concurrent links, and at least positive.
TEST(ModelInvariants, DeliveryRateWithinPhysicalBounds)
{
    for (int hops : {4, 6, 8}) {
        model::RandomWalkModel::Config config;
        config.hops = hops;
        model::RandomWalkModel walk(config, util::Rng(42));
        walk.run(50000);
        const double rate = static_cast<double>(walk.delivered()) / 50000.0;
        EXPECT_GT(rate, 0.01) << hops;
        EXPECT_LE(rate, 1.0) << hops;
    }
}

TEST(ModelInvariants, BuffersNeverNegative)
{
    model::RandomWalkModel::Config config;
    config.hops = 5;
    model::RandomWalkModel walk(config, util::Rng(43));
    for (int i = 0; i < 20000; ++i) {
        walk.step();
        for (long long b : walk.relays()) ASSERT_GE(b, 0);
    }
}

}  // namespace
}  // namespace ezflow

// Equivalence of the batched backoff (mac::ContentionCoordinator) against
// a per-slot reference: the pre-refactor DcfMac countdown, reimplemented
// here verbatim (one timer event per slot, decrement at each boundary,
// freeze on busy). Both run the same scripted busy/idle traces — including
// exact slot-boundary ties and hidden stations — and must produce
// identical transmission instants from identical Rng consumption.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "mac/contention.h"
#include "sim/scheduler.h"
#include "sim/timer.h"
#include "util/rng.h"
#include "util/units.h"

namespace ezflow::mac {
namespace {

using util::SimTime;

constexpr SimTime kSlot = 20;
constexpr SimTime kDifs = 50;

struct TxRecord {
    SimTime at;
    int station;
    bool operator==(const TxRecord& o) const { return at == o.at && station == o.station; }
};

class StationBase;

/// Scripted medium with per-station carrier sense (a visibility matrix
/// stands in for geometry). Busy edges are delivered synchronously in
/// station-index order, mirroring Channel's attach-order listener loop.
class Medium {
public:
    void add_station(StationBase* station) { stations_.push_back(station); }

    /// One end of a busy period for the given stations (+1 start, -1 end).
    void adjust(const std::vector<int>& stations, int delta);

    bool busy_for(int station) const { return counts_[static_cast<std::size_t>(station)] > 0; }

private:
    std::vector<StationBase*> stations_;
    std::vector<int> counts_ = std::vector<int>(16, 0);
};

/// Common station plumbing: saturated source, fresh backoff draw per
/// transmission, fixed airtime, shared tx log.
class StationBase {
public:
    StationBase(int id, sim::Scheduler& scheduler, Medium& medium, std::uint64_t rng_seed, int cw,
                SimTime airtime, std::vector<int> visible_to, std::vector<TxRecord>& log)
        : id_(id),
          scheduler_(scheduler),
          medium_(medium),
          rng_(rng_seed),
          cw_(cw),
          airtime_(airtime),
          visible_to_(std::move(visible_to)),
          log_(log)
    {
        medium.add_station(this);
    }
    virtual ~StationBase() = default;

    /// Draw a fresh backoff and enter the access procedure.
    void start_contention()
    {
        remaining_ = rng_.uniform_int(0, cw_ - 1);
        resume();
    }

    virtual void medium_changed(bool busy) = 0;

    int id() const { return id_; }
    std::uint64_t draws() const { return draws_; }
    std::uint64_t rng_probe() { return rng_.next_u64(); }

protected:
    enum class State { kWaitIdle, kWaitDifs, kBackoff, kTx };

    void resume()
    {
        if (medium_.busy_for(id_)) {
            state_ = State::kWaitIdle;
            return;
        }
        start_difs();
    }

    virtual void start_difs() = 0;

    void transmit()
    {
        log_.push_back(TxRecord{scheduler_.now(), id_});
        state_ = State::kTx;
        medium_.adjust(visible_to_, +1);
        scheduler_.schedule_in(airtime_, [this] {
            medium_.adjust(visible_to_, -1);
            state_ = State::kWaitIdle;
            start_contention();
        });
    }

    int id_;
    sim::Scheduler& scheduler_;
    Medium& medium_;
    util::Rng rng_;
    int cw_;
    SimTime airtime_;
    std::vector<int> visible_to_;
    std::vector<TxRecord>& log_;
    State state_ = State::kWaitIdle;
    int remaining_ = 0;
    std::uint64_t draws_ = 0;
};

void Medium::adjust(const std::vector<int>& stations, int delta)
{
    for (int index : stations) {
        int& count = counts_[static_cast<std::size_t>(index)];
        const bool was_busy = count > 0;
        count += delta;
        const bool now_busy = count > 0;
        if (was_busy != now_busy && static_cast<std::size_t>(index) < stations_.size())
            stations_[static_cast<std::size_t>(index)]->medium_changed(now_busy);
    }
}

/// The pre-refactor countdown, one scheduler event per slot: DIFS timer,
/// then a slot timer that decrements at every boundary (first decrement
/// immediately at DIFS end) and freezes by cancelling the pending event.
class PerSlotStation final : public StationBase {
public:
    PerSlotStation(int id, sim::Scheduler& scheduler, Medium& medium, std::uint64_t rng_seed,
                   int cw, SimTime airtime, std::vector<int> visible_to,
                   std::vector<TxRecord>& log)
        : StationBase(id, scheduler, medium, rng_seed, cw, airtime, std::move(visible_to), log),
          difs_timer_(scheduler, [this] { on_difs(); }),
          slot_timer_(scheduler, [this] { on_slot(); })
    {
    }

    void medium_changed(bool busy) override
    {
        if (busy) {
            if (state_ == State::kWaitDifs || state_ == State::kBackoff) {
                difs_timer_.cancel();
                slot_timer_.cancel();
                state_ = State::kWaitIdle;
            }
            return;
        }
        if (state_ == State::kWaitIdle) start_difs();
    }

private:
    void start_difs() override
    {
        state_ = State::kWaitDifs;
        difs_timer_.arm_in(kDifs);
    }

    void on_difs()
    {
        state_ = State::kBackoff;
        on_slot();
    }

    void on_slot()
    {
        if (remaining_ == 0) {
            transmit();
            return;
        }
        --remaining_;
        slot_timer_.arm_in(kSlot);
    }

    sim::Timer difs_timer_;
    sim::Timer slot_timer_;
};

/// The batched countdown: DIFS timer plus a registration with the shared
/// ContentionCoordinator, exactly as DcfMac wires it.
class BatchedStation final : public StationBase, public BackoffClient {
public:
    BatchedStation(int id, sim::Scheduler& scheduler, Medium& medium,
                   ContentionCoordinator& coordinator, std::uint64_t rng_seed, int cw,
                   SimTime airtime, std::vector<int> visible_to, std::vector<TxRecord>& log)
        : StationBase(id, scheduler, medium, rng_seed, cw, airtime, std::move(visible_to), log),
          coordinator_(coordinator),
          difs_timer_(scheduler, [this] { on_difs(); })
    {
    }

    ~BatchedStation() override { coordinator_.unregister(*this); }

    void medium_changed(bool busy) override
    {
        if (busy) {
            if (state_ == State::kWaitDifs) {
                difs_timer_.cancel();
                state_ = State::kWaitIdle;
            } else if (state_ == State::kBackoff) {
                remaining_ -= coordinator_.freeze(*this);
                state_ = State::kWaitIdle;
            }
            return;
        }
        if (state_ == State::kWaitIdle) start_difs();
    }

    void backoff_expired() override
    {
        remaining_ = 0;
        transmit();
    }

private:
    void start_difs() override
    {
        state_ = State::kWaitDifs;
        difs_timer_.arm_in(kDifs);
    }

    void on_difs()
    {
        state_ = State::kBackoff;
        if (remaining_ == 0) {
            coordinator_.begin_external_tx(/*late_trigger=*/false);
            transmit();
            coordinator_.end_external_tx();
            return;
        }
        --remaining_;
        coordinator_.register_backoff(*this, remaining_, kSlot);
    }

    ContentionCoordinator& coordinator_;
    sim::Timer difs_timer_;
};

/// The fused registration: a single register_access covers the DIFS wait
/// and the backoff countdown, exactly as DcfMac wires it post-fusion.
/// Note there is no DIFS timer at all — one scheduler insert per cycle.
class FusedStation final : public StationBase, public BackoffClient {
public:
    FusedStation(int id, sim::Scheduler& scheduler, Medium& medium,
                 ContentionCoordinator& coordinator, std::uint64_t rng_seed, int cw,
                 SimTime airtime, std::vector<int> visible_to, std::vector<TxRecord>& log)
        : StationBase(id, scheduler, medium, rng_seed, cw, airtime, std::move(visible_to), log),
          coordinator_(coordinator)
    {
    }

    ~FusedStation() override { coordinator_.unregister(*this); }

    void medium_changed(bool busy) override
    {
        if (busy) {
            if (state_ == State::kBackoff) {  // contending: DIFS + backoff fused
                remaining_ -= coordinator_.freeze(*this);
                state_ = State::kWaitIdle;
            }
            return;
        }
        if (state_ == State::kWaitIdle) start_difs();
    }

    void backoff_expired() override
    {
        remaining_ = 0;
        transmit();
    }

private:
    void start_difs() override
    {
        state_ = State::kBackoff;
        coordinator_.register_access(*this, kDifs, remaining_, kSlot);
    }

    ContentionCoordinator& coordinator_;
};

struct BusyInterval {
    SimTime start;
    SimTime end;
    bool late;  ///< start event scheduled SIFS-style, 10 us ahead
    std::vector<int> stations;
};

struct TraceSpec {
    std::vector<BusyInterval> intervals;
    std::vector<int> cw;                          ///< per station
    std::vector<SimTime> airtime;                 ///< per station
    std::vector<std::vector<int>> visible_to;     ///< per station (includes self-free set)
    SimTime horizon = 0;
};

/// Randomized busy/idle script. Half the busy edges are forced onto
/// 20 us multiples so exact slot-boundary ties actually occur.
TraceSpec make_trace(std::uint64_t seed, int stations)
{
    util::Rng rng(seed);
    TraceSpec spec;
    spec.horizon = 200 * util::kMillisecond;
    const bool hidden = rng.bernoulli(0.5);
    for (int i = 0; i < stations; ++i) {
        const int exponent = rng.uniform_int(4, 9);
        spec.cw.push_back(1 << exponent);
        SimTime airtime = 200 + 50 * rng.uniform_int(0, 20);
        if (rng.bernoulli(0.5)) airtime = (airtime / kSlot) * kSlot;  // boundary-aligned
        spec.airtime.push_back(airtime);
        std::vector<int> visible;
        for (int other = 0; other < stations; ++other) {
            if (other == i) continue;
            // A line-like hidden-terminal pattern: stations further than
            // one index apart cannot sense each other.
            if (!hidden || std::abs(other - i) <= 1) visible.push_back(other);
        }
        spec.visible_to.push_back(visible);
    }
    SimTime t = 100;
    while (t < spec.horizon) {
        t += 50 + rng.uniform_int(0, 4000);
        if (rng.bernoulli(0.5)) t = (t / kSlot) * kSlot;  // tie pressure
        SimTime duration = 30 + rng.uniform_int(0, 2000);
        if (rng.bernoulli(0.5)) duration = std::max<SimTime>(kSlot, (duration / kSlot) * kSlot);
        BusyInterval interval;
        interval.start = t;
        interval.end = t + duration;
        interval.late = rng.bernoulli(0.3);
        for (int i = 0; i < stations; ++i)
            if (rng.bernoulli(0.8)) interval.stations.push_back(i);
        if (!interval.stations.empty()) spec.intervals.push_back(interval);
        t += duration;
    }
    return spec;
}

struct TraceOutcome {
    std::vector<TxRecord> log;
    std::vector<std::uint64_t> rng_probes;  ///< one raw draw per station
    std::uint64_t events = 0;               ///< scheduler events processed
};

enum class Impl { kPerSlot, kBatched, kFused };

/// Run the trace on one implementation. Members are declared so that
/// stations are destroyed before the coordinator, and both before the
/// scheduler their timers reference.
TraceOutcome run_trace(const TraceSpec& spec, Impl impl)
{
    sim::Scheduler scheduler;
    Medium medium;
    std::unique_ptr<ContentionCoordinator> coordinator;
    std::vector<std::unique_ptr<StationBase>> stations;
    TraceOutcome outcome;
    if (impl != Impl::kPerSlot) coordinator = std::make_unique<ContentionCoordinator>(scheduler);
    const int n = static_cast<int>(spec.cw.size());
    for (int i = 0; i < n; ++i) {
        const auto index = static_cast<std::size_t>(i);
        const std::uint64_t rng_seed = 1000 + static_cast<std::uint64_t>(i);
        if (impl == Impl::kBatched) {
            stations.push_back(std::make_unique<BatchedStation>(
                i, scheduler, medium, *coordinator, rng_seed, spec.cw[index],
                spec.airtime[index], spec.visible_to[index], outcome.log));
        } else if (impl == Impl::kFused) {
            stations.push_back(std::make_unique<FusedStation>(
                i, scheduler, medium, *coordinator, rng_seed, spec.cw[index],
                spec.airtime[index], spec.visible_to[index], outcome.log));
        } else {
            stations.push_back(std::make_unique<PerSlotStation>(
                i, scheduler, medium, rng_seed, spec.cw[index], spec.airtime[index],
                spec.visible_to[index], outcome.log));
        }
    }
    // Scripted busy periods. "Early" edges are pre-scheduled here at t=0
    // (lowest FIFO sequence at their instant, like a long-armed DIFS-end
    // transmission); "late" edges are armed 10 us ahead by a parent
    // event, like a SIFS-timed control response.
    for (const BusyInterval& interval : spec.intervals) {
        ContentionCoordinator* coord = coordinator.get();
        auto begin = [&medium, &interval, coord] {
            if (coord != nullptr) coord->begin_external_tx(/*late_trigger=*/false);
            medium.adjust(interval.stations, +1);
            if (coord != nullptr) coord->end_external_tx();
        };
        auto begin_late = [&medium, &interval, coord] {
            if (coord != nullptr) coord->begin_external_tx(/*late_trigger=*/true);
            medium.adjust(interval.stations, +1);
            if (coord != nullptr) coord->end_external_tx();
        };
        if (interval.late) {
            scheduler.schedule_at(interval.start - 10, [&scheduler, begin_late] {
                scheduler.schedule_in(10, begin_late);
            });
        } else {
            scheduler.schedule_at(interval.start, begin);
        }
        scheduler.schedule_at(interval.end,
                              [&medium, &interval] { medium.adjust(interval.stations, -1); });
    }
    for (auto& station : stations) station->start_contention();
    scheduler.run_until(spec.horizon);
    for (auto& station : stations) outcome.rng_probes.push_back(station->rng_probe());
    outcome.events = scheduler.processed();
    return outcome;
}

// ------------------------------------------------- randomized equivalence

TEST(ContentionEquivalence, RandomizedBusyIdleTraces)
{
    std::uint64_t batched_events = 0;
    std::uint64_t fused_events = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const TraceSpec spec = make_trace(seed, 2 + static_cast<int>(seed % 4));
        const TraceOutcome reference = run_trace(spec, Impl::kPerSlot);
        const TraceOutcome batched = run_trace(spec, Impl::kBatched);
        const TraceOutcome fused = run_trace(spec, Impl::kFused);
        ASSERT_FALSE(reference.log.empty()) << "trace " << seed << " produced no transmissions";
        ASSERT_EQ(reference.log.size(), batched.log.size()) << "trace " << seed;
        ASSERT_EQ(reference.log.size(), fused.log.size()) << "trace " << seed;
        for (std::size_t i = 0; i < reference.log.size(); ++i) {
            ASSERT_EQ(reference.log[i].at, batched.log[i].at) << "trace " << seed << " tx " << i;
            ASSERT_EQ(reference.log[i].station, batched.log[i].station)
                << "trace " << seed << " tx " << i;
            ASSERT_EQ(reference.log[i].at, fused.log[i].at) << "trace " << seed << " tx " << i;
            ASSERT_EQ(reference.log[i].station, fused.log[i].station)
                << "trace " << seed << " tx " << i;
        }
        // Identical Rng consumption: the next raw draw matches per station.
        ASSERT_EQ(reference.rng_probes, batched.rng_probes) << "trace " << seed;
        ASSERT_EQ(reference.rng_probes, fused.rng_probes) << "trace " << seed;
        batched_events += batched.events;
        fused_events += fused.events;
    }
    // The fused registration drops the separate DIFS timer: one fewer
    // scheduler insert per contention cycle than the batched API.
    EXPECT_LT(fused_events, batched_events);
}

TEST(ContentionEquivalence, EventCountCollapses)
{
    // Same dynamics, far fewer scheduler events: that is the point of the
    // batched coordinator.
    TraceSpec spec = make_trace(99, 4);
    for (auto& cw : spec.cw) cw = 1024;
    const TraceOutcome reference = run_trace(spec, Impl::kPerSlot);
    const TraceOutcome batched = run_trace(spec, Impl::kFused);
    ASSERT_EQ(reference.log, batched.log);
    EXPECT_GT(reference.events, 3 * batched.events)
        << "per-slot " << reference.events << " events vs batched " << batched.events;
}

// ------------------------------------------------- coordinator unit tests

struct ProbeClient final : BackoffClient {
    std::vector<SimTime>* fired_at = nullptr;
    std::vector<const ProbeClient*>* order = nullptr;
    sim::Scheduler* scheduler = nullptr;
    std::function<void()> on_fire;

    void backoff_expired() override
    {
        if (fired_at != nullptr && scheduler != nullptr) fired_at->push_back(scheduler->now());
        if (order != nullptr) order->push_back(this);
        if (on_fire) on_fire();
    }
};

TEST(ContentionCoordinator, ExpiresAtPerSlotInstant)
{
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient client;
    std::vector<SimTime> fired;
    client.fired_at = &fired;
    client.scheduler = &scheduler;
    // remaining = 5 decrements owed after now: the per-slot reference
    // transmits at now + (5 + 1) * slot.
    coordinator.register_backoff(client, 5, kSlot);
    EXPECT_TRUE(coordinator.is_registered(client));
    scheduler.run();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 6 * kSlot);
    EXPECT_FALSE(coordinator.is_registered(client));
    EXPECT_EQ(coordinator.expiries(), 1u);
}

TEST(ContentionCoordinator, FreezeConsumesWholeSlots)
{
    // freeze at D microseconds after registration consumes the slots the
    // per-slot countdown would have: ceil(D/slot) off-boundary, D/slot-1
    // on a boundary when the interrupter preempts the countdown event.
    const struct {
        SimTime at;
        int consumed;
    } cases[] = {
        {0, 0},    // same instant as registration: only the caller's own
                   // immediate decrement happened
        {1, 0},    {19, 0},  // inside the first slot
        {20, 0},   // exact boundary, unknown transmitter: event preempted
        {21, 1},   {40, 1},  {41, 2}, {59, 2}, {100, 4},
    };
    for (const auto& test_case : cases) {
        sim::Scheduler scheduler;
        ContentionCoordinator coordinator(scheduler);
        ProbeClient client;
        coordinator.register_backoff(client, 10, kSlot);
        scheduler.run_until(test_case.at);
        EXPECT_EQ(coordinator.freeze(client), test_case.consumed) << "D=" << test_case.at;
        EXPECT_FALSE(coordinator.is_registered(client));
    }
}

TEST(ContentionCoordinator, ExternalTxResolvesBoundaryTies)
{
    // At an exact boundary, a late-triggered (SIFS-timed) transmission
    // loses the FIFO race against the countdown event: the decrement
    // happened. An early-armed (DIFS-end) transmission wins it: no
    // decrement.
    for (const bool late : {false, true}) {
        sim::Scheduler scheduler;
        ContentionCoordinator coordinator(scheduler);
        ProbeClient client;
        coordinator.register_backoff(client, 10, kSlot);
        scheduler.run_until(2 * kSlot);
        coordinator.begin_external_tx(late);
        EXPECT_EQ(coordinator.freeze(client), late ? 2 : 1);
        coordinator.end_external_tx();
    }
}

TEST(ContentionCoordinator, CohortFiresInRegistrationOrder)
{
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient a;
    ProbeClient b;
    std::vector<const ProbeClient*> order;
    a.order = &order;
    b.order = &order;
    coordinator.register_backoff(a, 3, kSlot);
    coordinator.register_backoff(b, 3, kSlot);
    scheduler.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], &a);
    EXPECT_EQ(order[1], &b);
}

TEST(ContentionCoordinator, FreezeDuringFireSeesChainOrder)
{
    // a and b expire at the same instant; a fires first (registered
    // first) and its "transmission" freezes b, which therefore consumed
    // everything but never fires — exactly how a sensed same-slot winner
    // silences the rest of the cohort.
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient a;
    ProbeClient b;
    std::vector<const ProbeClient*> order;
    a.order = &order;
    b.order = &order;
    int b_consumed = -1;
    a.on_fire = [&] { b_consumed = coordinator.freeze(b); };
    coordinator.register_backoff(a, 3, kSlot);
    coordinator.register_backoff(b, 3, kSlot);
    scheduler.run();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], &a);
    EXPECT_EQ(b_consumed, 3);  // remaining fully consumed; b is at zero
    EXPECT_FALSE(coordinator.is_registered(b));
}

TEST(ContentionCoordinator, LateJoinerPrecedesOngoingChains)
{
    // c registers several slots after a (same boundary phase). In the
    // per-slot reference c's first event was armed before a's most
    // recent slot re-arm, so at their shared expiry instant c fires
    // first; a, frozen by c's transmission exactly on its own boundary,
    // loses that boundary's decrement.
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient a;
    ProbeClient c;
    std::vector<const ProbeClient*> order;
    a.order = &order;
    c.order = &order;
    int a_consumed = -1;
    c.on_fire = [&] { a_consumed = coordinator.freeze(a); };
    coordinator.register_backoff(a, 10, kSlot);
    scheduler.run_until(2 * kSlot);
    // Joins at t=40 (same phase), expires at t=40+(1+1)*20 = 80 = a's
    // fourth boundary.
    coordinator.register_backoff(c, 1, kSlot);
    scheduler.run();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], &c);
    // a's boundaries before/at t=80: 20, 40, 60 fired; 80 is a boundary
    // and a does NOT precede the firing chain c (c joined later, so it
    // goes first): 3 slots consumed... but the per-slot reference at the
    // t=80 instant fires c's chain first only when c's pending event was
    // armed earlier — c's expiry event is staged at t=60, a's virtual
    // re-arm is also t=60; c joined the front of the chain order, so c
    // fires first and a loses the t=80 decrement.
    EXPECT_EQ(a_consumed, 3);
}

TEST(ContentionCoordinator, RegistrationErrors)
{
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient client;
    EXPECT_THROW(coordinator.freeze(client), std::logic_error);
    EXPECT_THROW(coordinator.register_backoff(client, -1, kSlot), std::invalid_argument);
    EXPECT_THROW(coordinator.register_backoff(client, 1, 0), std::invalid_argument);
    coordinator.register_backoff(client, 1, kSlot);
    EXPECT_THROW(coordinator.register_backoff(client, 1, kSlot), std::logic_error);
    coordinator.unregister(client);
    EXPECT_FALSE(coordinator.is_registered(client));
    EXPECT_THROW(coordinator.end_external_tx(), std::logic_error);
}

// ------------------------------------------- fused register_access tests

TEST(ContentionCoordinator, FusedImmediateAccessFiresAtDifsEnd)
{
    // Zero backoff: the per-slot reference transmits inside its DIFS-end
    // event; the fused registration fires at exactly that instant.
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient client;
    std::vector<SimTime> fired;
    client.fired_at = &fired;
    client.scheduler = &scheduler;
    coordinator.register_access(client, kDifs, 0, kSlot);
    scheduler.run();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], kDifs);
}

TEST(ContentionCoordinator, FusedExpiryMatchesPerSlotInstant)
{
    // b slots: DIFS-end decrement plus b-1 boundary decrements, transmit
    // at now + difs + b*slot — the per-slot reference's instant.
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient client;
    std::vector<SimTime> fired;
    client.fired_at = &fired;
    client.scheduler = &scheduler;
    coordinator.register_access(client, kDifs, 5, kSlot);
    scheduler.run();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], kDifs + 5 * kSlot);
}

TEST(ContentionCoordinator, FusedFreezeInsideDifsConsumesNothing)
{
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient client;
    coordinator.register_access(client, kDifs, 7, kSlot);
    scheduler.run_until(kDifs - 1);
    EXPECT_EQ(coordinator.freeze(client), 0);
    EXPECT_FALSE(coordinator.is_registered(client));
}

TEST(ContentionCoordinator, FusedFreezeAtDifsEndHonorsTieOrder)
{
    // Exactly at DIFS end, the first decrement happened only when the
    // DIFS event beat the interrupting transmission in FIFO order: a
    // SIFS-timed (late) interrupter loses to it, an early-armed one wins.
    for (const bool late : {false, true}) {
        sim::Scheduler scheduler;
        ContentionCoordinator coordinator(scheduler);
        ProbeClient client;
        coordinator.register_access(client, kDifs, 7, kSlot);
        scheduler.run_until(kDifs);
        coordinator.begin_external_tx(late);
        EXPECT_EQ(coordinator.freeze(client), late ? 1 : 0);
        coordinator.end_external_tx();
    }
}

TEST(ContentionCoordinator, FusedFreezeCountsDifsEndDecrement)
{
    // Freeze D microseconds into the backoff: the DIFS-end decrement plus
    // the whole boundaries since — identical to what the reference's
    // immediate decrement + per-slot countdown would have consumed.
    const struct {
        SimTime at;
        int consumed;
    } cases[] = {
        {kDifs + 1, 1},  {kDifs + kSlot - 1, 1}, {kDifs + kSlot + 1, 2},
        {kDifs + 3 * kSlot + 5, 4},
    };
    for (const auto& test_case : cases) {
        sim::Scheduler scheduler;
        ContentionCoordinator coordinator(scheduler);
        ProbeClient client;
        coordinator.register_access(client, kDifs, 10, kSlot);
        scheduler.run_until(test_case.at);
        EXPECT_EQ(coordinator.freeze(client), test_case.consumed) << "at=" << test_case.at;
    }
}

TEST(ContentionCoordinator, DifsPhasePrecedesBackoffPhaseAtSharedInstant)
{
    // a is deep in backoff with a boundary at t=90; d's DIFS ends at the
    // same instant with a zero counter. d's pending event was armed a
    // whole DIFS back — earlier than a's virtual slot re-arm — so d fires
    // first and a, frozen by d's transmission exactly on its boundary,
    // loses that boundary's decrement (boundaries 60, 80 only... a
    // registered at t=0 via register_access: decrements at 50, 70, 90;
    // the one at 90 is lost, so 2 remain consumed).
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient a;
    ProbeClient d;
    std::vector<const ProbeClient*> order;
    a.order = &order;
    d.order = &order;
    int a_consumed = -1;
    d.on_fire = [&] { a_consumed = coordinator.freeze(a); };
    coordinator.register_access(a, kDifs, 10, kSlot);  // boundaries 50, 70, 90, ...
    scheduler.run_until(40);
    coordinator.register_access(d, kDifs, 0, kSlot);  // fires at 90
    scheduler.run();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], &d);
    EXPECT_EQ(a_consumed, 2);  // 50 and 70 fired; the tie at 90 went to d
}

TEST(ContentionCoordinator, FusedRegistrationErrors)
{
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient client;
    EXPECT_THROW(coordinator.register_access(client, kDifs, -1, kSlot), std::invalid_argument);
    EXPECT_THROW(coordinator.register_access(client, kDifs, 1, 0), std::invalid_argument);
    EXPECT_THROW(coordinator.register_access(client, kSlot, 1, kSlot), std::invalid_argument);
    coordinator.register_access(client, kDifs, 1, kSlot);
    EXPECT_THROW(coordinator.register_access(client, kDifs, 1, kSlot), std::logic_error);
    EXPECT_THROW(coordinator.register_backoff(client, 1, kSlot), std::logic_error);
    coordinator.unregister(client);
    EXPECT_FALSE(coordinator.is_registered(client));
}

TEST(ContentionCoordinator, SlotsBatchedStatistic)
{
    sim::Scheduler scheduler;
    ContentionCoordinator coordinator(scheduler);
    ProbeClient client;
    coordinator.register_backoff(client, 100, kSlot);
    scheduler.run_until(50 * kSlot + 7);
    EXPECT_EQ(coordinator.freeze(client), 50);
    EXPECT_EQ(coordinator.slots_batched(), 50u);
}

}  // namespace
}  // namespace ezflow::mac

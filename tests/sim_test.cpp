#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/scheduler.h"
#include "sim/timer.h"

namespace ezflow::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero)
{
    Scheduler s;
    EXPECT_EQ(s.now(), 0);
    EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder)
{
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(30, [&] { order.push_back(3); });
    s.schedule_at(10, [&] { order.push_back(1); });
    s.schedule_at(20, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, SameTimeEventsFifo)
{
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) s.schedule_at(5, [&order, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// The FIFO tie-break must survive slot recycling: cancelling events hands
// their arena slots back, and same-time events scheduled afterwards reuse
// those slots — their firing order is still scheduling order, not slot
// order.
TEST(Scheduler, SameTimeFifoUnderInterleavedScheduleCancel)
{
    Scheduler s;
    std::vector<int> order;
    std::vector<EventId> doomed;
    for (int round = 0; round < 8; ++round) {
        // Two keepers and one cancelled event per round, all at t = 100.
        order.reserve(16);
        s.schedule_at(100, [&order, round] { order.push_back(2 * round); });
        doomed.push_back(s.schedule_at(100, [&order] { order.push_back(-1); }));
        s.schedule_at(100, [&order, round] { order.push_back(2 * round + 1); });
        EXPECT_TRUE(s.cancel(doomed.back()));
    }
    s.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleInIsRelative)
{
    Scheduler s;
    SimTime fired_at = -1;
    s.schedule_at(100, [&] { s.schedule_in(50, [&] { fired_at = s.now(); }); });
    s.run();
    EXPECT_EQ(fired_at, 150);
}

TEST(Scheduler, RejectsPastAndNegative)
{
    Scheduler s;
    s.schedule_at(10, [] {});
    s.run();
    EXPECT_THROW(s.schedule_at(5, [] {}), std::invalid_argument);
    EXPECT_THROW(s.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Scheduler, RejectsEmptyAction)
{
    Scheduler s;
    EXPECT_THROW(s.schedule_at(1, EventFn{}), std::invalid_argument);
}

TEST(Scheduler, CancelPreventsExecution)
{
    Scheduler s;
    bool fired = false;
    const EventId id = s.schedule_at(10, [&] { fired = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelTwiceReturnsFalse)
{
    Scheduler s;
    const EventId id = s.schedule_at(10, [] {});
    EXPECT_TRUE(s.cancel(id));
    EXPECT_FALSE(s.cancel(id));
}

// An id whose event already ran must never cancel anything — even though
// the arena slot behind it may have been recycled for a newer event.
TEST(Scheduler, CancelAfterFireReturnsFalse)
{
    Scheduler s;
    const EventId id = s.schedule_at(10, [] {});
    s.run();
    EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, StaleIdCannotCancelSlotReuser)
{
    Scheduler s;
    const EventId first = s.schedule_at(10, [] {});
    s.run();  // fires; slot goes back to the free list

    bool second_fired = false;
    const EventId second = s.schedule_at(20, [&] { second_fired = true; });
    // The arena recycled the slot; only the generation differs.
    EXPECT_EQ(first.slot, second.slot);
    EXPECT_NE(first.gen, second.gen);

    EXPECT_FALSE(s.cancel(first));  // stale handle must not hit the new event
    s.run();
    EXPECT_TRUE(second_fired);
}

TEST(Scheduler, CancelInvalidIdReturnsFalse)
{
    Scheduler s;
    EXPECT_FALSE(s.cancel(EventId{}));
    EXPECT_FALSE(s.cancel(EventId{12345, 1}));  // slot never allocated
}

TEST(Scheduler, ArenaRecyclesSlots)
{
    Scheduler s;
    // Sequential schedule/fire churn touches one slot over and over.
    for (int i = 1; i <= 1000; ++i) {
        s.schedule_at(i, [] {});
        s.run();
    }
    EXPECT_EQ(s.arena_slots(), 1u);
    EXPECT_EQ(s.processed(), 1000u);
}

// Sustained cancel churn (the MAC arms and cancels an ACK timeout per
// frame) must not accumulate tombstones: the heap compacts itself and
// stays proportional to the live event count.
TEST(Scheduler, CancelChurnDoesNotGrowHeap)
{
    Scheduler s;
    s.schedule_at(1'000'000, [] {});  // one long-lived event
    for (int i = 0; i < 100000; ++i) {
        const EventId id = s.schedule_in(500, [] {});
        EXPECT_TRUE(s.cancel(id));
    }
    EXPECT_EQ(s.pending(), 1u);
    EXPECT_LE(s.heap_records(), 130u);  // compaction threshold, not O(cancels)
    EXPECT_LE(s.arena_slots(), 2u);
    s.run();
    EXPECT_EQ(s.processed(), 1u);
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock)
{
    Scheduler s;
    std::vector<SimTime> fired;
    s.schedule_at(10, [&] { fired.push_back(10); });
    s.schedule_at(20, [&] { fired.push_back(20); });
    s.schedule_at(30, [&] { fired.push_back(30); });
    s.run_until(20);
    EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
    EXPECT_EQ(s.now(), 20);
    s.run_until(100);
    EXPECT_EQ(fired.size(), 3u);
    EXPECT_EQ(s.now(), 100);  // clock reaches the horizon even when idle
}

TEST(Scheduler, RunUntilRejectsPast)
{
    Scheduler s;
    s.schedule_at(50, [] {});
    s.run_until(50);
    EXPECT_THROW(s.run_until(10), std::invalid_argument);
}

// Cancelled events whose timestamps lie beyond the run_until horizon must
// not pin their tombstones: pending() reflects only live events and a
// later run_until does not fire them.
TEST(Scheduler, RunUntilWithCancelledEventsBeyondHorizon)
{
    Scheduler s;
    bool fired = false;
    const EventId id = s.schedule_at(1000, [&] { fired = true; });
    s.schedule_at(10, [] {});
    s.run_until(100);
    EXPECT_EQ(s.pending(), 1u);
    EXPECT_TRUE(s.cancel(id));
    EXPECT_EQ(s.pending(), 0u);
    s.run_until(2000);
    EXPECT_FALSE(fired);
    EXPECT_EQ(s.now(), 2000);
}

TEST(Scheduler, StopHaltsProcessing)
{
    Scheduler s;
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        s.schedule_at(i, [&] {
            ++count;
            if (count == 3) s.stop();
        });
    }
    s.run();
    EXPECT_EQ(count, 3);
    EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, HandlerCanScheduleMoreEvents)
{
    Scheduler s;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100) s.schedule_in(1, chain);
    };
    s.schedule_at(0, chain);
    s.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(s.now(), 99);
}

TEST(Scheduler, PendingAndProcessedCounters)
{
    Scheduler s;
    s.schedule_at(1, [] {});
    s.schedule_at(2, [] {});
    const EventId id = s.schedule_at(3, [] {});
    EXPECT_EQ(s.pending(), 3u);
    s.cancel(id);
    EXPECT_EQ(s.pending(), 2u);
    s.run();
    EXPECT_EQ(s.pending(), 0u);
    EXPECT_EQ(s.processed(), 2u);
}

TEST(Scheduler, ManyEventsStress)
{
    Scheduler s;
    std::int64_t sum = 0;
    for (int i = 0; i < 100000; ++i) s.schedule_at(i % 997, [&] { ++sum; });
    s.run();
    EXPECT_EQ(sum, 100000);
}

TEST(Scheduler, CancellationInsideHandler)
{
    Scheduler s;
    bool second_fired = false;
    EventId second{};
    second = s.schedule_at(10, [&] { second_fired = true; });
    s.schedule_at(5, [&] { EXPECT_TRUE(s.cancel(second)); });
    s.run();
    EXPECT_FALSE(second_fired);
}

TEST(EventFn, SmallCapturesStayInline)
{
    int hits = 0;
    int* p = &hits;
    EventFn fn([p] { ++*p; });
    EXPECT_TRUE(fn.is_inline());
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(EventFn, LargeCapturesFallBackToHeap)
{
    struct Big {
        double payload[40];
    };
    Big big{};
    big.payload[0] = 1.5;
    double seen = 0.0;
    EventFn fn([big, &seen] { seen = big.payload[0]; });
    EXPECT_FALSE(fn.is_inline());
    fn();
    EXPECT_EQ(seen, 1.5);
}

TEST(EventFn, MoveTransfersOwnership)
{
    int hits = 0;
    EventFn a([&] { ++hits; });
    EventFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);
    // Move a heap-stored callable too.
    auto owned = std::make_unique<int>(7);
    int seen = 0;
    struct Pad {
        double fill[32];
    };
    Pad pad{};
    EventFn c([&seen, pad, ptr = std::move(owned)] {
        (void)pad;
        seen = *ptr;
    });
    EXPECT_FALSE(c.is_inline());
    EventFn d(std::move(c));
    d();
    EXPECT_EQ(seen, 7);
}

TEST(Timer, FiresOnceAndCanRearm)
{
    Scheduler s;
    int fired = 0;
    Timer t(s, [&] { ++fired; });
    t.arm_in(10);
    EXPECT_TRUE(t.armed());
    s.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(t.armed());
    t.arm_in(5);
    s.run();
    EXPECT_EQ(fired, 2);
}

TEST(Timer, RearmReplacesPendingExpiry)
{
    Scheduler s;
    std::vector<SimTime> fire_times;
    Timer t(s, [&] { fire_times.push_back(s.now()); });
    t.arm_at(10);
    t.arm_at(25);  // supersedes the first arm
    s.run();
    EXPECT_EQ(fire_times, (std::vector<SimTime>{25}));
}

TEST(Timer, CancelReportsWhetherPending)
{
    Scheduler s;
    Timer t(s, [] {});
    EXPECT_FALSE(t.cancel());
    t.arm_in(10);
    EXPECT_TRUE(t.cancel());
    EXPECT_FALSE(t.armed());
    s.run();
    EXPECT_EQ(s.processed(), 0u);
}

TEST(Timer, CallbackMayRearmItself)
{
    Scheduler s;
    int ticks = 0;
    std::unique_ptr<Timer> t;
    t = std::make_unique<Timer>(s, [&] {
        if (++ticks < 5) t->arm_in(10);
    });
    t->arm_in(10);
    s.run();
    EXPECT_EQ(ticks, 5);
    EXPECT_EQ(s.now(), 50);
}

}  // namespace
}  // namespace ezflow::sim

#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace ezflow::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero)
{
    Scheduler s;
    EXPECT_EQ(s.now(), 0);
    EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder)
{
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(30, [&] { order.push_back(3); });
    s.schedule_at(10, [&] { order.push_back(1); });
    s.schedule_at(20, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, SameTimeEventsFifo)
{
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) s.schedule_at(5, [&order, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleInIsRelative)
{
    Scheduler s;
    SimTime fired_at = -1;
    s.schedule_at(100, [&] { s.schedule_in(50, [&] { fired_at = s.now(); }); });
    s.run();
    EXPECT_EQ(fired_at, 150);
}

TEST(Scheduler, RejectsPastAndNegative)
{
    Scheduler s;
    s.schedule_at(10, [] {});
    s.run();
    EXPECT_THROW(s.schedule_at(5, [] {}), std::invalid_argument);
    EXPECT_THROW(s.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Scheduler, RejectsEmptyAction)
{
    Scheduler s;
    EXPECT_THROW(s.schedule_at(1, std::function<void()>{}), std::invalid_argument);
}

TEST(Scheduler, CancelPreventsExecution)
{
    Scheduler s;
    bool fired = false;
    const EventId id = s.schedule_at(10, [&] { fired = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelTwiceReturnsFalse)
{
    Scheduler s;
    const EventId id = s.schedule_at(10, [] {});
    EXPECT_TRUE(s.cancel(id));
    EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelAfterRunReturnsFalse)
{
    Scheduler s;
    const EventId id = s.schedule_at(10, [] {});
    s.run();
    EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelInvalidIdReturnsFalse)
{
    Scheduler s;
    EXPECT_FALSE(s.cancel(EventId{}));
    EXPECT_FALSE(s.cancel(EventId{12345}));
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock)
{
    Scheduler s;
    std::vector<SimTime> fired;
    s.schedule_at(10, [&] { fired.push_back(10); });
    s.schedule_at(20, [&] { fired.push_back(20); });
    s.schedule_at(30, [&] { fired.push_back(30); });
    s.run_until(20);
    EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
    EXPECT_EQ(s.now(), 20);
    s.run_until(100);
    EXPECT_EQ(fired.size(), 3u);
    EXPECT_EQ(s.now(), 100);  // clock reaches the horizon even when idle
}

TEST(Scheduler, RunUntilRejectsPast)
{
    Scheduler s;
    s.schedule_at(50, [] {});
    s.run_until(50);
    EXPECT_THROW(s.run_until(10), std::invalid_argument);
}

TEST(Scheduler, StopHaltsProcessing)
{
    Scheduler s;
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        s.schedule_at(i, [&] {
            ++count;
            if (count == 3) s.stop();
        });
    }
    s.run();
    EXPECT_EQ(count, 3);
    EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, HandlerCanScheduleMoreEvents)
{
    Scheduler s;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100) s.schedule_in(1, chain);
    };
    s.schedule_at(0, chain);
    s.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(s.now(), 99);
}

TEST(Scheduler, PendingAndProcessedCounters)
{
    Scheduler s;
    s.schedule_at(1, [] {});
    s.schedule_at(2, [] {});
    const EventId id = s.schedule_at(3, [] {});
    EXPECT_EQ(s.pending(), 3u);
    s.cancel(id);
    EXPECT_EQ(s.pending(), 2u);
    s.run();
    EXPECT_EQ(s.pending(), 0u);
    EXPECT_EQ(s.processed(), 2u);
}

TEST(Scheduler, ManyEventsStress)
{
    Scheduler s;
    std::int64_t sum = 0;
    for (int i = 0; i < 100000; ++i) s.schedule_at(i % 997, [&] { ++sum; });
    s.run();
    EXPECT_EQ(sum, 100000);
}

TEST(Scheduler, CancellationInsideHandler)
{
    Scheduler s;
    bool second_fired = false;
    EventId second{};
    second = s.schedule_at(10, [&] { second_fired = true; });
    s.schedule_at(5, [&] { EXPECT_TRUE(s.cancel(second)); });
    s.run();
    EXPECT_FALSE(second_fired);
}

}  // namespace
}  // namespace ezflow::sim

#include "cli/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/app.h"
#include "cli/figures.h"

namespace ezflow::cli {
namespace {

class RegistryTest : public ::testing::Test {
protected:
    void SetUp() override { register_builtin_figures(); }
};

TEST_F(RegistryTest, RegistrationIsIdempotent)
{
    const std::size_t count = FigureRegistry::instance().size();
    register_builtin_figures();
    register_builtin_figures();
    EXPECT_EQ(FigureRegistry::instance().size(), count);
}

TEST_F(RegistryTest, EnumeratesEveryFormerBenchAndExampleTarget)
{
    // Every former standalone main must be reachable by name.
    const std::vector<std::string> expected = {
        // bench figures/tables
        "fig01", "fig04", "fig06", "fig07", "fig08", "fig10", "fig11", "fig12",
        "table1", "table2", "table3", "table4",
        // bench ablations
        "ablation_pacer", "ablation_penalty_q", "ablation_phy_capture", "ablation_rtscts",
        "ablation_sample_window", "ablation_sniff_loss", "ablation_thresholds",
        // micro harnesses (listed, standalone)
        "micro_core", "micro_scheduler",
        // examples
        "quickstart", "parking_lot", "backhaul_gateway", "voip_mesh", "adaptive_traffic",
        "model_explorer"};
    for (const std::string& name : expected)
        EXPECT_NE(FigureRegistry::instance().find(name), nullptr) << name;
    EXPECT_GE(FigureRegistry::instance().size(), expected.size());
}

TEST_F(RegistryTest, FindResolvesFormerTargetNames)
{
    const FigureSpec* by_aka = FigureRegistry::instance().find("fig06_scenario1_throughput");
    ASSERT_NE(by_aka, nullptr);
    EXPECT_EQ(by_aka->name, "fig06");
    EXPECT_EQ(by_aka, FigureRegistry::instance().find("fig06"));
    EXPECT_EQ(FigureRegistry::instance().find("no_such_figure"), nullptr);
}

TEST_F(RegistryTest, ListIsNameSortedAndCategorized)
{
    const auto specs = FigureRegistry::instance().list();
    ASSERT_FALSE(specs.empty());
    EXPECT_TRUE(std::is_sorted(specs.begin(), specs.end(),
                               [](const FigureSpec* a, const FigureSpec* b) {
                                   return a->name < b->name;
                               }));
    for (const FigureSpec* spec : specs) {
        EXPECT_FALSE(spec->title.empty()) << spec->name;
        EXPECT_TRUE(spec->category == "figure" || spec->category == "table" ||
                    spec->category == "ablation" || spec->category == "example" ||
                    spec->category == "micro")
            << spec->name << " has category " << spec->category;
        // Only the micro google-benchmark harnesses are non-runnable.
        EXPECT_EQ(spec->runnable(), spec->category != "micro") << spec->name;
    }
}

TEST_F(RegistryTest, DuplicateRegistrationThrows)
{
    FigureSpec duplicate;
    duplicate.name = "fig06";
    EXPECT_THROW(FigureRegistry::instance().add(std::move(duplicate)), std::invalid_argument);
    FigureSpec aka_clash;
    aka_clash.name = "brand_new";
    aka_clash.aka = "fig06";
    // An aka colliding with an existing canonical name is also rejected.
    EXPECT_THROW(FigureRegistry::instance().add(std::move(aka_clash)), std::invalid_argument);
}

TEST_F(RegistryTest, SmokeGridsAreFasterThanDefaults)
{
    for (const FigureSpec* spec : FigureRegistry::instance().list()) {
        if (!spec->runnable()) continue;
        EXPECT_LE(spec->smoke_scale, spec->default_scale) << spec->name;
        EXPECT_LE(spec->smoke_seeds, spec->default_seeds) << spec->name;
        EXPECT_GT(spec->smoke_scale, 0.0) << spec->name;
        EXPECT_GE(spec->smoke_seeds, 1) << spec->name;
    }
}

TEST_F(RegistryTest, ContextDerivesSeedGridAndExtras)
{
    FigureContext ctx;
    ctx.seed = 100;
    ctx.seeds = 3;
    ctx.extra = {{"hops", "6"}, {"flag", "false"}};
    EXPECT_EQ(ctx.seed_grid(), (std::vector<std::uint64_t>{100, 101, 102}));
    EXPECT_EQ(ctx.extra_int("hops", 4), 6);
    EXPECT_EQ(ctx.extra_int("absent", 4), 4);
    EXPECT_FALSE(ctx.extra_bool("flag", true));
    EXPECT_TRUE(ctx.extra_bool("absent", true));
}

TEST_F(RegistryTest, RunnableFigureProducesStructuredResult)
{
    const FigureSpec* spec = FigureRegistry::instance().find("quickstart");
    ASSERT_NE(spec, nullptr);
    FigureContext ctx;
    ctx.spec = spec;
    ctx.scale = 0.1;  // 30 simulated seconds
    ctx.seed = 7;
    ctx.seeds = 1;
    ctx.threads = 1;
    const analysis::FigureResult result = spec->run(ctx);
    EXPECT_EQ(result.figure, "quickstart");
    ASSERT_EQ(result.cells.size(), 2u);  // 802.11 and EZ-flow
    for (const analysis::RunResult& cell : result.cells) {
        ASSERT_FALSE(cell.windows.empty());
        EXPECT_NE(cell.windows[0].find("goodput_kbps"), nullptr);
    }
    // And it serializes to stable JSON.
    const auto json = result.to_json();
    EXPECT_EQ(analysis::FigureResult::from_json(json).to_json().dump(), json.dump());
}

int run_cli(std::vector<std::string> args)
{
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (std::string& arg : args) argv.push_back(arg.data());
    return run_app(static_cast<int>(argv.size()), argv.data());
}

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(App, SweepGridAcceptsShardsAxis)
{
    // Regression: the sweep grid advertised scale/seeds/seed/threads but
    // rejected shards, so shard-scaling sweeps needed hand-rolled loops.
    const std::string out = testing::TempDir() + "ezflow_sweep_shards";
    std::filesystem::remove_all(out);
    EXPECT_EQ(run_cli({"ezflow", "sweep", "islands", "--grid=shards=1:2", "--smoke", "--quiet",
                       "--json-only", "--out=" + out}),
              0);
    const std::string s1 = slurp(out + "/islands_shards1/islands.json");
    const std::string s2 = slurp(out + "/islands_shards2/islands.json");
    EXPECT_FALSE(s1.empty());
    // Shard count is an execution knob, never a result knob: the two
    // sweep points must be byte-identical.
    EXPECT_EQ(s1, s2);
    std::filesystem::remove_all(out);

    // Unknown axes are still a usage error (exit code 2).
    EXPECT_EQ(run_cli({"ezflow", "sweep", "islands", "--grid=bogus=1:2", "--quiet"}), 2);
}

}  // namespace
}  // namespace ezflow::cli

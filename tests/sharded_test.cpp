// Space-parallel sharding tier: the partitioner's conservative guarantee
// (no conflict edge ever crosses a shard boundary) on random layouts, the
// ShardedEngine's epoch/handoff contract, and end-to-end byte-identity of
// the sharded engine against the serial reference — same fingerprints and
// the same figure JSON whatever the shard budget or thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "cli/figures.h"
#include "cli/registry.h"
#include "experiment_fingerprint.h"
#include "net/network.h"
#include "net/shard_plan.h"
#include "net/topo_gen.h"
#include "phy/frame.h"
#include "phy/models.h"
#include "sim/scheduler.h"
#include "sim/sharded_engine.h"
#include "util/rng.h"

namespace ezflow {
namespace {

using testutil::experiment_fingerprint;

double conflict_radius(const phy::PhyParams& phy)
{
    return std::max(phy.tx_range_m, std::max(phy.cs_range_m, phy.interference_range_m));
}

// ---------------------------------------------- partitioner property test

TEST(ShardPlanner, NoConflictEdgeCrossesShardsOn200RandomLayouts)
{
    // Random scatters over a field wide enough to fragment into clusters:
    // whatever the layout, no two nodes within the conflict radius may
    // land in different shards, and shard ids must be dense.
    const phy::PhyParams phy;
    const double radius = conflict_radius(phy);
    util::Rng rng(0xA11CE5ULL);
    int multi_shard_layouts = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const int nodes = rng.uniform_int(2, 60);
        const double width = rng.uniform_real(800.0, 12000.0);
        const double height = rng.uniform_real(800.0, 12000.0);
        std::vector<phy::Position> positions;
        positions.reserve(static_cast<std::size_t>(nodes));
        for (int i = 0; i < nodes; ++i)
            positions.push_back({rng.uniform_real(0.0, width), rng.uniform_real(0.0, height)});
        // A budget of 1 short-circuits to the empty serial-sentinel plan,
        // so the property is only meaningful from 2 up.
        const int max_shards = rng.uniform_int(2, 8);
        EXPECT_TRUE(net::plan_shards(positions, phy, 1).empty());

        const net::ShardPlan plan = net::plan_shards(positions, phy, max_shards);
        ASSERT_EQ(plan.shard_of_node.size(), positions.size());
        ASSERT_GE(plan.shard_count, 1);
        ASSERT_LE(plan.shard_count, max_shards);
        std::vector<bool> seen(static_cast<std::size_t>(plan.shard_count), false);
        for (const int shard : plan.shard_of_node) {
            ASSERT_GE(shard, 0);
            ASSERT_LT(shard, plan.shard_count);
            seen[static_cast<std::size_t>(shard)] = true;
        }
        for (const bool used : seen) ASSERT_TRUE(used) << "shard ids must be dense";

        for (std::size_t a = 0; a < positions.size(); ++a) {
            for (std::size_t b = a + 1; b < positions.size(); ++b) {
                if (phy::distance(positions[a], positions[b]) <= radius) {
                    ASSERT_EQ(plan.shard_of_node[a], plan.shard_of_node[b])
                        << "trial " << trial << ": conflict edge " << a << "-" << b
                        << " crosses shards";
                }
            }
        }

        // Deterministic: replanning the same layout yields the same plan.
        const net::ShardPlan replan = net::plan_shards(positions, phy, max_shards);
        ASSERT_EQ(replan.shard_count, plan.shard_count);
        ASSERT_EQ(replan.shard_of_node, plan.shard_of_node);
        if (plan.shard_count > 1) ++multi_shard_layouts;
    }
    // The field sizes above fragment often; the property must have been
    // exercised on genuinely multi-shard layouts, not vacuously.
    EXPECT_GT(multi_shard_layouts, 20);
}

TEST(ShardPlanner, ConnectedGridCollapsesToOneShard)
{
    const net::Topology grid = net::make_grid_topology(5, 5, 200.0);
    const phy::PhyParams phy;
    const net::ShardPlan plan = net::plan_shards(grid.positions, phy, 8);
    EXPECT_EQ(plan.shard_count, 1);
    EXPECT_EQ(plan.shard_of_node,
              std::vector<int>(static_cast<std::size_t>(grid.node_count()), 0));
}

TEST(ShardPlanner, SeparatedIslandsSplitUpToTheBudget)
{
    // Four 2-node islands 2 km apart: 4 components. The planner honors the
    // budget: 4 shards when allowed, packed down to 2 when capped.
    std::vector<phy::Position> positions;
    for (int island = 0; island < 4; ++island) {
        const double x = island * 2000.0;
        positions.push_back({x, 0.0});
        positions.push_back({x + 100.0, 0.0});
    }
    const phy::PhyParams phy;
    EXPECT_EQ(net::plan_shards(positions, phy, 8).shard_count, 4);
    const net::ShardPlan capped = net::plan_shards(positions, phy, 2);
    EXPECT_EQ(capped.shard_count, 2);
    for (std::size_t i = 0; i < positions.size(); i += 2)
        EXPECT_EQ(capped.shard_of_node[i], capped.shard_of_node[i + 1]);
}

// ----------------------------------- connected-cut partitioner properties

TEST(ShardPlanner, ConnectedCutPropertiesOn200RandomLayouts)
{
    // Widened interference opens an interference-only band (550, 700]:
    // the planner may cut those edges, but it must never cut a
    // sense/delivery edge, must register both endpoints of every cut
    // edge for ghost mirroring, must keep the greedy balance bound, and
    // must stay deterministic.
    phy::PhyParams phy;
    phy.interference_range_m = 700.0;
    const double radius = conflict_radius(phy);
    const double radius_hard = std::max(phy.tx_range_m, phy.cs_range_m);
    util::Rng rng(0xB0B57ULL);
    int cut_layouts = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const int nodes = rng.uniform_int(2, 60);
        const double width = rng.uniform_real(800.0, 9000.0);
        const double height = rng.uniform_real(800.0, 9000.0);
        std::vector<phy::Position> positions;
        positions.reserve(static_cast<std::size_t>(nodes));
        for (int i = 0; i < nodes; ++i)
            positions.push_back({rng.uniform_real(0.0, width), rng.uniform_real(0.0, height)});
        const int max_shards = rng.uniform_int(2, 8);
        const net::ShardPlan plan = net::plan_shards(positions, phy, max_shards);
        ASSERT_EQ(plan.shard_of_node.size(), positions.size());
        ASSERT_GE(plan.shard_count, 1);
        ASSERT_LE(plan.shard_count, max_shards);
        if (plan.connected_cut) {
            ASSERT_EQ(plan.boundary_nodes.size(), static_cast<std::size_t>(plan.shard_count));
            ASSERT_EQ(plan.ghost_targets_of_node.size(), positions.size());
        } else {
            ASSERT_TRUE(plan.boundary_nodes.empty());
            ASSERT_TRUE(plan.ghost_targets_of_node.empty());
        }

        bool saw_cut = false;
        for (std::size_t a = 0; a < positions.size(); ++a) {
            for (std::size_t b = a + 1; b < positions.size(); ++b) {
                const double d = phy::distance(positions[a], positions[b]);
                if (d > radius) continue;
                const int sa = plan.shard_of_node[a];
                const int sb = plan.shard_of_node[b];
                if (d <= radius_hard) {
                    ASSERT_EQ(sa, sb) << "trial " << trial << ": sense/delivery edge " << a
                                      << "-" << b << " crosses shards";
                } else if (sa != sb) {
                    // A cut interference-only edge: both endpoints must be
                    // wired for the ghost-mirror layer, in both directions.
                    saw_cut = true;
                    ASSERT_TRUE(plan.connected_cut);
                    const auto& ba = plan.boundary_nodes[static_cast<std::size_t>(sa)];
                    const auto& bb = plan.boundary_nodes[static_cast<std::size_t>(sb)];
                    ASSERT_TRUE(std::binary_search(ba.begin(), ba.end(), static_cast<int>(a)));
                    ASSERT_TRUE(std::binary_search(bb.begin(), bb.end(), static_cast<int>(b)));
                    const auto& ga = plan.ghost_targets_of_node[a];
                    const auto& gb = plan.ghost_targets_of_node[b];
                    ASSERT_TRUE(std::binary_search(ga.begin(), ga.end(), sb));
                    ASSERT_TRUE(std::binary_search(gb.begin(), gb.end(), sa));
                }
            }
        }
        EXPECT_EQ(plan.connected_cut, saw_cut) << "trial " << trial;

        // Balance: neither greedy packing nor the KL refinement may
        // spread the per-shard loads further apart than one largest
        // sense/delivery component (the planner's atomic unit).
        if (plan.shard_count > 1) {
            std::vector<std::size_t> parent(positions.size());
            for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
            const auto find = [&parent](std::size_t x) {
                while (parent[x] != x) x = parent[x] = parent[parent[x]];
                return x;
            };
            for (std::size_t a = 0; a < positions.size(); ++a)
                for (std::size_t b = a + 1; b < positions.size(); ++b)
                    if (phy::distance(positions[a], positions[b]) <= radius_hard)
                        parent[find(a)] = find(b);
            std::vector<int> comp_size(positions.size(), 0);
            int largest_unit = 0;
            for (std::size_t i = 0; i < positions.size(); ++i)
                largest_unit = std::max(largest_unit, ++comp_size[find(i)]);
            std::vector<int> load(static_cast<std::size_t>(plan.shard_count), 0);
            for (const int shard : plan.shard_of_node) ++load[static_cast<std::size_t>(shard)];
            const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
            EXPECT_LE(*hi - *lo, largest_unit) << "trial " << trial;
        }

        // Deterministic: replanning reproduces the whole wiring.
        const net::ShardPlan replan = net::plan_shards(positions, phy, max_shards);
        ASSERT_EQ(replan.shard_of_node, plan.shard_of_node);
        ASSERT_EQ(replan.connected_cut, plan.connected_cut);
        ASSERT_EQ(replan.boundary_nodes, plan.boundary_nodes);
        ASSERT_EQ(replan.ghost_targets_of_node, plan.ghost_targets_of_node);
        if (plan.connected_cut) ++cut_layouts;
    }
    // The band is narrow, but 200 layouts must exercise real cuts, not
    // pass vacuously.
    EXPECT_GT(cut_layouts, 10);
}

TEST(ShardPlanner, ClusterGridCutsOneShardPerCluster)
{
    // The canned connected-cut topology: 4 grids linked only across an
    // interference-only gap must split one shard per cluster, with every
    // shard carrying boundary nodes on the facing rim columns.
    net::ClustersSpec spec;
    spec.duration_s = 1.0;
    spec.max_shards = 4;
    const net::Scenario scenario = net::make_cluster_grid(spec, /*seed=*/1);
    const net::ShardPlan& plan = scenario.network->config().shard_plan;
    EXPECT_TRUE(plan.connected_cut);
    ASSERT_EQ(plan.shard_count, 4);
    EXPECT_EQ(scenario.network->shard_count(), 4);
    const int per_cluster = spec.cols * spec.rows;
    for (int id = 0; id < scenario.network->node_count(); ++id)
        EXPECT_EQ(plan.shard_of_node[static_cast<std::size_t>(id)], id / per_cluster);
    for (const auto& boundary : plan.boundary_nodes) {
        EXPECT_FALSE(boundary.empty());
        EXPECT_TRUE(std::is_sorted(boundary.begin(), boundary.end()));
    }
    // Ghost targets only ever name the adjacent cluster(s): the gap plus
    // one full cluster width is far beyond interference range.
    for (int id = 0; id < scenario.network->node_count(); ++id)
        for (const int target : plan.ghost_targets_of_node[static_cast<std::size_t>(id)])
            EXPECT_EQ(std::abs(target - id / per_cluster), 1);
}

// ------------------------------------------------ ShardedEngine contract

TEST(ShardedEngine, DeliversHandoffsAtTheBarrierInTimestampOrder)
{
    sim::Scheduler a;
    sim::Scheduler b;
    sim::ShardedEngine::Options options;
    options.threads = 1;
    options.lookahead = 100;
    sim::ShardedEngine engine({&a, &b}, options);

    std::vector<int> delivered;
    std::vector<util::SimTime> delivered_at;
    // Mid-epoch, shard 0 posts two handoffs into shard 1, timestamps
    // descending — the barrier must still deliver them time-sorted.
    a.schedule_at(10, [&] {
        engine.post(0, 1, 150, [&] {
            delivered.push_back(2);
            delivered_at.push_back(b.now());
        });
        engine.post(0, 1, 120, [&] {
            delivered.push_back(1);
            delivered_at.push_back(b.now());
        });
    });
    engine.run_until(300);
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered, (std::vector<int>{1, 2}));
    EXPECT_EQ(delivered_at, (std::vector<util::SimTime>{120, 150}));
    EXPECT_EQ(engine.handoffs(), 2u);
    EXPECT_EQ(engine.epochs(), 3u);  // 300 / lookahead(100)
    EXPECT_EQ(engine.now(), 300);
}

TEST(ShardedEngine, RejectsHandoffsBehindTheEpochHorizon)
{
    sim::Scheduler a;
    sim::Scheduler b;
    sim::ShardedEngine::Options options;
    options.threads = 1;
    options.lookahead = 100;
    sim::ShardedEngine engine({&a, &b}, options);
    bool threw = false;
    a.schedule_at(10, [&] {
        // The first epoch's horizon is 100; a handoff stamped inside the
        // epoch would have to rewind shard 1.
        try {
            engine.post(0, 1, 50, [] {});
        } catch (const std::logic_error&) {
            threw = true;
        }
    });
    engine.run_until(200);
    EXPECT_TRUE(threw);
    EXPECT_EQ(engine.handoffs(), 0u);
    EXPECT_THROW(engine.post(0, 2, 1000, [] {}), std::invalid_argument);
}

// --------------------------------------- end-to-end shard byte-identity

analysis::ScenarioSpec islands_scenario(int shards)
{
    net::IslandsSpec islands;
    islands.islands = 4;
    islands.cols = 3;
    islands.rows = 3;
    islands.sources = 2;
    islands.duration_s = 4.0;
    islands.max_shards = shards;
    return analysis::ScenarioSpec::islands_spec(islands);
}

TEST(ShardedRun, IslandsFingerprintMatchesSerialReference)
{
    const auto run_with_shards = [](int shards, int* shard_count) {
        analysis::ExperimentFactory factory(islands_scenario(shards),
                                            analysis::ExperimentOptions{});
        std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/3);
        experiment->run();
        *shard_count = experiment->network().shard_count();
        // Event totals legitimately differ across shard counts (one
        // tracer-sweep chain per shard), so compare dynamics only.
        return experiment_fingerprint(*experiment, /*include_processed=*/false);
    };
    int serial_shards = 0;
    int parallel_shards = 0;
    const auto serial = run_with_shards(1, &serial_shards);
    const auto sharded = run_with_shards(4, &parallel_shards);
    EXPECT_EQ(serial_shards, 1);
    EXPECT_EQ(parallel_shards, 4) << "four separated islands must actually shard";
    EXPECT_EQ(serial, sharded);
}

TEST(ShardedRun, IslandsFigureJsonIsByteIdenticalAcrossShardsAndThreads)
{
    cli::register_builtin_figures();
    const cli::FigureSpec* spec = cli::FigureRegistry::instance().find("islands");
    ASSERT_NE(spec, nullptr);
    const auto run = [spec](int shards, int threads) {
        cli::FigureContext ctx;
        ctx.spec = spec;
        ctx.scale = 0.1;
        ctx.seed = 7;
        ctx.seeds = 2;
        ctx.threads = threads;
        ctx.shards = shards;
        return spec->run(ctx).to_json().dump();
    };
    const std::string serial = run(1, 1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, run(4, 1));
    EXPECT_EQ(serial, run(4, 4));
}

analysis::ScenarioSpec clusters_scenario(int shards)
{
    net::ClustersSpec clusters;
    clusters.duration_s = 4.0;
    clusters.max_shards = shards;
    return analysis::ScenarioSpec::clusters_spec(clusters);
}

TEST(ShardedRun, ClustersGhostMirroringMatchesSerialReference)
{
    // The connected-cut equivalence gate: a 4-cluster grid coupled only
    // by cross-gap interference must produce identical radio/MAC/delivery
    // dynamics whether it runs serial or cut into 4 shards with ghost
    // mirroring — and the mirror layer must actually carry traffic, or
    // the comparison is vacuous.
    const auto run_with_shards = [](int shards, int* shard_count, std::uint64_t* handoffs) {
        analysis::ExperimentFactory factory(clusters_scenario(shards),
                                            analysis::ExperimentOptions{});
        std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/3);
        experiment->run();
        *shard_count = experiment->network().shard_count();
        sim::ShardedEngine* engine = experiment->network().sharded_engine();
        *handoffs = engine != nullptr ? engine->handoffs() : 0;
        return experiment_fingerprint(*experiment, /*include_processed=*/false);
    };
    int serial_shards = 0;
    int parallel_shards = 0;
    std::uint64_t serial_handoffs = 0;
    std::uint64_t parallel_handoffs = 0;
    const auto serial = run_with_shards(1, &serial_shards, &serial_handoffs);
    const auto sharded = run_with_shards(4, &parallel_shards, &parallel_handoffs);
    EXPECT_EQ(serial_shards, 1);
    EXPECT_EQ(parallel_shards, 4) << "the interference-only gap must actually be cut";
    EXPECT_GT(parallel_handoffs, 0u) << "boundary transmissions must be ghost-mirrored";
    EXPECT_EQ(serial, sharded);
}

TEST(ShardedRun, ClustersFigureJsonIsByteIdenticalAcrossShardsAndThreads)
{
    cli::register_builtin_figures();
    const cli::FigureSpec* spec = cli::FigureRegistry::instance().find("grid_clusters");
    ASSERT_NE(spec, nullptr);
    const auto run = [spec](int shards, int threads) {
        cli::FigureContext ctx;
        ctx.spec = spec;
        ctx.scale = 0.1;
        ctx.seed = 7;
        ctx.seeds = 2;
        ctx.threads = threads;
        ctx.shards = shards;
        return spec->run(ctx).to_json().dump();
    };
    const std::string serial = run(1, 1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, run(2, 1));
    EXPECT_EQ(serial, run(4, 4));
}

TEST(ShardedRun, ConnectedCutRejectsNonReferencePhyModels)
{
    // Per-shard channel RNG streams only stay equivalent to the serial
    // reference while no channel ever draws; installing a drawing model
    // on a connected-cut network must refuse loudly.
    analysis::ScenarioSpec spec = clusters_scenario(4);
    spec.models.propagation = phy::PhyModelConfig::Propagation::kJakes;
    spec.models.jakes_doppler_hz = 5.0;
    analysis::ExperimentFactory factory(spec, analysis::ExperimentOptions{});
    EXPECT_THROW(factory.make(/*seed=*/3), std::invalid_argument);
}

TEST(ShardedRun, ConnectedFiguresIgnoreTheShardBudget)
{
    // grid_cross / grid_gateway are connected: the planner must collapse
    // them to one shard and the JSON must not move under --shards.
    cli::register_builtin_figures();
    for (const char* name : {"grid_cross", "grid_gateway"}) {
        const cli::FigureSpec* spec = cli::FigureRegistry::instance().find(name);
        ASSERT_NE(spec, nullptr) << name;
        const auto run = [spec](int shards) {
            cli::FigureContext ctx;
            ctx.spec = spec;
            ctx.scale = 0.05;
            ctx.seed = 5;
            ctx.seeds = 2;
            ctx.threads = 1;
            ctx.shards = shards;
            ctx.extra = {{"cols", "4"}, {"rows", "4"}, {"duration", "4"}};
            return spec->run(ctx).to_json().dump();
        };
        EXPECT_EQ(run(1), run(4)) << name;
    }
}

// -------------------------------------------------- streaming recorders

TEST(StreamingRecorders, SameDeliveriesAndDelaysWithFlatMemory)
{
    const auto run = [](bool streaming) {
        analysis::ExperimentOptions options;
        options.streaming = streaming;
        analysis::ExperimentFactory factory(islands_scenario(4), options);
        std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/9);
        experiment->run();
        return experiment;
    };
    const auto stored = run(false);
    const auto streamed = run(true);

    // Streaming changes bookkeeping only: identical dynamics...
    EXPECT_EQ(experiment_fingerprint(*stored, /*include_processed=*/false),
              experiment_fingerprint(*streamed, /*include_processed=*/false));
    std::uint64_t packets = 0;
    for (const net::FlowPlan& flow : streamed->scenario().flows) {
        ASSERT_TRUE(streamed->sink().has_flow(flow.flow_id));
        const auto& a = stored->sink().flow(flow.flow_id);
        const auto& b = streamed->sink().flow(flow.flow_id);
        EXPECT_EQ(a.packets, b.packets);
        EXPECT_EQ(a.bytes, b.bytes);
        EXPECT_EQ(a.delay_us.count(), b.delay_us.count());
        EXPECT_EQ(a.delay_us.mean(), b.delay_us.mean());
        EXPECT_EQ(a.delay_us.max(), b.delay_us.max());
        packets += b.packets;
    }
    EXPECT_GT(packets, 0u);

    // ...with O(nodes + flows) state: no per-event series anywhere.
    EXPECT_EQ(streamed->sink().stored_samples(), 0u);
    EXPECT_EQ(streamed->buffers().stored_samples(), 0u);
    EXPECT_EQ(streamed->cw_tracer().stored_samples(), 0u);
    EXPECT_GT(stored->sink().stored_samples(), 0u);
    EXPECT_GT(stored->buffers().stored_samples(), 0u);
}

}  // namespace
}  // namespace ezflow

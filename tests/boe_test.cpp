#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "core/boe.h"
#include "net/packet.h"
#include "util/rng.h"

namespace ezflow::core {
namespace {

/// Reference model of the successor's FIFO queue, used to check the BOE's
/// estimates exactly: packets "sent" enter the queue, "forwards" pop it.
class SuccessorModel {
public:
    explicit SuccessorModel(BufferOccupancyEstimator& boe) : boe_(boe) {}

    void send(std::uint16_t checksum)
    {
        boe_.on_packet_sent(checksum);
        queue_.push_back(checksum);
    }

    /// Successor forwards its head-of-line packet; returns the BOE sample.
    std::optional<int> forward_and_sniff()
    {
        EXPECT_FALSE(queue_.empty());
        const std::uint16_t checksum = queue_.front();
        queue_.pop_front();
        return boe_.on_packet_overheard(checksum);
    }

    /// Forward without the BOE overhearing it (hidden sniff).
    void forward_silently() { queue_.pop_front(); }

    int true_backlog() const { return static_cast<int>(queue_.size()); }

private:
    BufferOccupancyEstimator& boe_;
    std::deque<std::uint16_t> queue_;
};

std::uint16_t cks(std::uint64_t seq) { return net::packet_checksum(1, seq, 0, 5, 1000); }

TEST(Boe, ExactEstimateUnderLossFreeSniffing)
{
    BufferOccupancyEstimator boe;
    SuccessorModel successor(boe);
    // Send 10, forward 4, checking each estimate against ground truth.
    for (std::uint64_t i = 0; i < 10; ++i) successor.send(cks(i));
    for (int f = 0; f < 4; ++f) {
        const auto estimate = successor.forward_and_sniff();
        ASSERT_TRUE(estimate.has_value());
        EXPECT_EQ(*estimate, successor.true_backlog());
    }
}

TEST(Boe, EstimateZeroWhenSuccessorDrained)
{
    BufferOccupancyEstimator boe;
    SuccessorModel successor(boe);
    successor.send(cks(0));
    const auto estimate = successor.forward_and_sniff();
    ASSERT_TRUE(estimate.has_value());
    EXPECT_EQ(*estimate, 0);
}

TEST(Boe, InterleavedSendForwardTracksTruth)
{
    BufferOccupancyEstimator boe;
    SuccessorModel successor(boe);
    util::Rng rng(7);
    std::uint64_t next = 0;
    for (int step = 0; step < 2000; ++step) {
        if (successor.true_backlog() == 0 || rng.bernoulli(0.55)) {
            successor.send(cks(next++));
        } else {
            const auto estimate = successor.forward_and_sniff();
            ASSERT_TRUE(estimate.has_value());
            EXPECT_EQ(*estimate, successor.true_backlog());
        }
    }
}

TEST(Boe, RobustToMissedSniffs)
{
    // The paper's key robustness claim (Sec. 3.2): missing overheard
    // packets only delays samples; the next heard packet still yields the
    // exact backlog.
    BufferOccupancyEstimator boe;
    SuccessorModel successor(boe);
    util::Rng rng(11);
    std::uint64_t next = 0;
    int sampled = 0;
    for (int step = 0; step < 3000; ++step) {
        if (successor.true_backlog() == 0 || rng.bernoulli(0.5)) {
            successor.send(cks(next++));
        } else if (rng.bernoulli(0.7)) {
            successor.forward_silently();  // sniff missed
        } else {
            const auto estimate = successor.forward_and_sniff();
            ASSERT_TRUE(estimate.has_value());
            EXPECT_EQ(*estimate, successor.true_backlog());
            ++sampled;
        }
    }
    EXPECT_GT(sampled, 100);
}

TEST(Boe, ResniffOfRetransmittedForwardDoesNotCorruptCursor)
{
    BufferOccupancyEstimator boe;
    SuccessorModel successor(boe);
    for (std::uint64_t i = 0; i < 6; ++i) successor.send(cks(i));
    const std::uint16_t first = cks(0);
    auto est1 = boe.on_packet_overheard(first);
    successor.forward_silently();
    ASSERT_TRUE(est1.has_value());
    EXPECT_EQ(*est1, 5);
    // The successor retransmits the same frame (its ACK was lost); the
    // duplicate sniff must not break subsequent estimates.
    auto est_dup = boe.on_packet_overheard(first);
    ASSERT_TRUE(est_dup.has_value());
    const auto est2 = successor.forward_and_sniff();
    ASSERT_TRUE(est2.has_value());
    EXPECT_EQ(*est2, successor.true_backlog());
}

TEST(Boe, UnknownChecksumIsAMiss)
{
    BufferOccupancyEstimator boe;
    boe.on_packet_sent(cks(0));
    EXPECT_FALSE(boe.on_packet_overheard(0x1234).has_value());
    EXPECT_EQ(boe.misses(), 1u);
    EXPECT_EQ(boe.matches(), 0u);
}

TEST(Boe, EmptyHistoryIsAMiss)
{
    BufferOccupancyEstimator boe;
    EXPECT_FALSE(boe.on_packet_overheard(cks(0)).has_value());
}

TEST(Boe, HistoryEvictionForgetsOldPackets)
{
    BufferOccupancyEstimator boe(100);
    for (std::uint64_t i = 0; i < 250; ++i) boe.on_packet_sent(cks(i));
    // Packet 0 has been evicted from the 100-entry ring.
    EXPECT_FALSE(boe.on_packet_overheard(cks(0)).has_value());
    // Packet 249 (newest) is present: backlog 0.
    const auto estimate = boe.on_packet_overheard(cks(249));
    ASSERT_TRUE(estimate.has_value());
    EXPECT_EQ(*estimate, 0);
}

TEST(Boe, PaperHistoryDefaultIs1000)
{
    BufferOccupancyEstimator boe;
    for (std::uint64_t i = 0; i < 1000; ++i) boe.on_packet_sent(cks(i));
    // Oldest of the 1000 still matches with distance 999.
    const auto estimate = boe.on_packet_overheard(cks(0));
    ASSERT_TRUE(estimate.has_value());
    EXPECT_EQ(*estimate, 999);
}

TEST(Boe, ChecksumCollisionCausesBoundedError)
{
    // Two different packets may share a 16-bit checksum; the cursor rule
    // (search forward from the oldest unforwarded entry) picks the FIFO-
    // consistent match, so the estimate error from a collision behind the
    // cursor stays transient rather than systematic.
    BufferOccupancyEstimator boe;
    boe.on_packet_sent(0xAAAA);
    boe.on_packet_sent(0xBBBB);
    boe.on_packet_sent(0xAAAA);  // collision with entry 0
    boe.on_packet_sent(0xCCCC);
    // Successor forwards entry 0 (0xAAAA): cursor at 0 matches entry 0.
    auto est = boe.on_packet_overheard(0xAAAA);
    ASSERT_TRUE(est.has_value());
    EXPECT_EQ(*est, 3);  // entries 1..3 behind it
    // Next forward 0xBBBB.
    est = boe.on_packet_overheard(0xBBBB);
    ASSERT_TRUE(est.has_value());
    EXPECT_EQ(*est, 2);
    // Next forward the second 0xAAAA: cursor is at 2, matches entry 2.
    est = boe.on_packet_overheard(0xAAAA);
    ASSERT_TRUE(est.has_value());
    EXPECT_EQ(*est, 1);
}

TEST(Boe, CountersTrackActivity)
{
    BufferOccupancyEstimator boe;
    boe.on_packet_sent(cks(0));
    boe.on_packet_sent(cks(1));
    boe.on_packet_overheard(cks(0));
    boe.on_packet_overheard(0x7777);
    EXPECT_EQ(boe.sent_recorded(), 2u);
    EXPECT_EQ(boe.matches(), 1u);
    EXPECT_EQ(boe.misses(), 1u);
}

// Property sweep: for random workloads and any history size, a sniffed
// estimate always equals the true backlog when checksums are unique.
class BoeProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoeProperty, EstimateMatchesTruthUnderRandomWorkload)
{
    const auto [history, seed] = GetParam();
    BufferOccupancyEstimator boe(static_cast<std::size_t>(history));
    SuccessorModel successor(boe);
    util::Rng rng(static_cast<std::uint64_t>(seed));
    std::uint64_t next = 0;
    for (int step = 0; step < 1500; ++step) {
        const bool can_forward = successor.true_backlog() > 0;
        // Keep backlog below history so entries are never evicted
        // (eviction behaviour is covered separately).
        const bool must_forward = successor.true_backlog() >= history - 1;
        if (!can_forward || (!must_forward && rng.bernoulli(0.5))) {
            successor.send(static_cast<std::uint16_t>(next++));  // unique ids
        } else if (rng.bernoulli(0.4)) {
            successor.forward_silently();
        } else {
            const auto estimate = successor.forward_and_sniff();
            ASSERT_TRUE(estimate.has_value());
            EXPECT_EQ(*estimate, successor.true_backlog());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoeProperty,
                         ::testing::Combine(::testing::Values(64, 256, 1000),
                                            ::testing::Values(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace ezflow::core

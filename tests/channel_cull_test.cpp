// Reachability culling equivalence: Channel::transmit with precomputed
// per-transmitter neighbour lists must produce exactly the simulation the
// full-broadcast scan produces — same Rng stream, same decodes, same
// corruption, same carrier sense — on chain, parking-lot and grid
// topologies. Plus unit coverage of the reachability sets themselves and
// the id-indexed attach.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "experiment_fingerprint.h"
#include "net/network.h"
#include "net/topo_gen.h"
#include "net/topologies.h"
#include "phy/channel.h"
#include "phy/phy.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/units.h"

namespace ezflow::phy {
namespace {

// ------------------------------------------------ full-run equivalence

using testutil::experiment_fingerprint;

std::vector<std::uint64_t> run_scenario(const analysis::ScenarioSpec& spec, bool cull)
{
    analysis::ExperimentFactory factory(spec, analysis::ExperimentOptions{});
    std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/11);
    net::ReferenceModeFlags flags;
    flags.reachability_cull = cull;
    experiment->network().set_reference_mode(flags);
    experiment->run();
    return experiment_fingerprint(*experiment);
}

TEST(ChannelCull, ChainRunMatchesFullBroadcast)
{
    // 4-hop chain: hidden terminals and chained interference.
    const analysis::ScenarioSpec spec = analysis::ScenarioSpec::line(4, /*duration_s=*/15.0);
    EXPECT_EQ(run_scenario(spec, true), run_scenario(spec, false));
}

TEST(ChannelCull, ParkingLotRunMatchesFullBroadcast)
{
    // Scenario 1 is the paper's parking-lot merge: two 8-hop branches
    // joining toward the gateway.
    const analysis::ScenarioSpec spec = analysis::ScenarioSpec::scenario1(/*time_scale=*/0.01);
    EXPECT_EQ(run_scenario(spec, true), run_scenario(spec, false));
}

TEST(ChannelCull, GeneratedGridGatewayMatchesFullBroadcast)
{
    // Generated convergecast lattice (net/topo_gen.h): every flow funnels
    // into one corner, so the gateway neighbourhood is the dense case the
    // cull must get exactly right.
    net::GridSpec grid;
    grid.cols = 5;
    grid.rows = 4;
    grid.sources = 5;
    grid.duration_s = 4.0;
    const analysis::ScenarioSpec spec = analysis::ScenarioSpec::grid_gateway(grid);
    EXPECT_EQ(run_scenario(spec, true), run_scenario(spec, false));
}

TEST(ChannelCull, GeneratedRandomMeshMatchesFullBroadcast)
{
    // Seeded random scatters: irregular reachability sets, including
    // asymmetric hidden-terminal geometry no hand-built scenario covers.
    net::MeshSpec mesh;
    mesh.nodes = 18;
    mesh.flows = 4;
    mesh.width_m = 1100.0;
    mesh.height_m = 1100.0;
    mesh.duration_s = 4.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        analysis::ExperimentFactory factory(analysis::ScenarioSpec::random_mesh(mesh),
                                            analysis::ExperimentOptions{});
        const auto run_with_cull = [&factory, seed](bool cull) {
            std::unique_ptr<analysis::Experiment> experiment = factory.make(seed);
            net::ReferenceModeFlags flags;
            flags.reachability_cull = cull;
            experiment->network().set_reference_mode(flags);
            experiment->run();
            return experiment_fingerprint(*experiment);
        };
        EXPECT_EQ(run_with_cull(true), run_with_cull(false)) << "seed " << seed;
    }
}

TEST(ChannelCull, GridRunMatchesFullBroadcast)
{
    // A 4x4 grid with two crossing flows, built directly.
    const auto build = [](bool cull) {
        net::Network::Config config;
        net::Network network(config);
        for (int y = 0; y < 4; ++y)
            for (int x = 0; x < 4; ++x)
                network.add_node(Position{x * 200.0, y * 200.0});
        net::ReferenceModeFlags flags;
        flags.reachability_cull = cull;
        network.set_reference_mode(flags);
        network.add_flow(1, {0, 1, 2, 3});       // west -> east along the top row
        network.add_flow(2, {0, 4, 8, 12});      // north -> south along the left column
        network.add_flow(3, {5, 6, 10});         // interior dog-leg
        util::Rng traffic(42);
        for (int i = 0; i < 400; ++i) {
            const util::SimTime at = 1000 + i * 2000;
            for (int flow = 1; flow <= 3; ++flow) {
                net::Packet packet;
                packet.uid = static_cast<std::uint64_t>(flow) * 100000 + i;
                packet.seq = static_cast<std::uint64_t>(i);
                packet.flow_id = flow;
                packet.bytes = 500;
                packet.src = flow == 2 ? 0 : (flow == 3 ? 5 : 0);
                packet.dst = flow == 1 ? 3 : (flow == 2 ? 12 : 10);
                net::NodeId src = packet.src;
                network.scheduler().schedule_at(at, [&network, src, packet] {
                    network.node(src).send(packet);
                });
            }
        }
        network.run_until(3 * util::kSecond);
        std::vector<std::uint64_t> print;
        print.push_back(network.channel().transmissions());
        print.push_back(network.scheduler().processed());
        for (int id = 0; id < network.node_count(); ++id) {
            const net::Node& node = network.node(id);
            print.push_back(node.phy().frames_decoded());
            print.push_back(node.phy().frames_corrupted());
            print.push_back(node.mac().successes());
            print.push_back(node.delivered());
            print.push_back(node.forwarded());
        }
        return print;
    };
    const auto culled = build(true);
    const auto broadcast = build(false);
    EXPECT_FALSE(culled.empty());
    EXPECT_EQ(culled, broadcast);
}

// ------------------------------------------------ reachability-set units

struct CullBed {
    sim::Scheduler scheduler;
    PhyParams params;
    Channel channel;
    std::vector<std::unique_ptr<NodePhy>> phys;

    explicit CullBed(PhyParams pp = {}) : params(pp), channel(scheduler, util::Rng(5), pp) {}

    NodePhy& add(double x, double y = 0.0)
    {
        const auto id = static_cast<net::NodeId>(phys.size());
        phys.push_back(std::make_unique<NodePhy>(id, Position{x, y}, scheduler));
        channel.attach(*phys.back());
        return *phys.back();
    }
};

TEST(ChannelCull, ReachableSetsMatchGeometry)
{
    // Random scatter: every transmitter's reachability set must contain
    // exactly the nodes the broadcast scan would not skip.
    CullBed bed;
    util::Rng rng(77);
    std::vector<Position> positions;
    for (int i = 0; i < 40; ++i) {
        const Position p{rng.uniform_real(0.0, 2500.0), rng.uniform_real(0.0, 2500.0)};
        positions.push_back(p);
        bed.add(p.x, p.y);
    }
    for (std::size_t tx = 0; tx < positions.size(); ++tx) {
        std::size_t expected = 0;
        for (std::size_t rx = 0; rx < positions.size(); ++rx) {
            if (rx == tx) continue;
            const double d = distance(positions[tx], positions[rx]);
            if (d <= bed.params.cs_range_m || d <= bed.params.interference_range_m) ++expected;
        }
        EXPECT_EQ(bed.channel.reachable_count(static_cast<net::NodeId>(tx)), expected)
            << "tx " << tx;
    }
}

TEST(ChannelCull, LineReachabilityIsLocal)
{
    // 200 m spacing, 550 m carrier sense: two hops either side.
    CullBed bed;
    for (int i = 0; i < 32; ++i) bed.add(i * 200.0);
    EXPECT_EQ(bed.channel.reachable_count(16), 4u);
    EXPECT_EQ(bed.channel.reachable_count(0), 2u);
    EXPECT_EQ(bed.channel.reachable_count(1), 3u);
}

TEST(ChannelCull, AttachAfterTransmitRebuildsReach)
{
    CullBed bed;
    NodePhy& a = bed.add(0);
    bed.add(200);
    Frame frame;
    frame.type = FrameType::kData;
    frame.tx_node = 0;
    frame.rx_node = 1;
    a.start_tx(frame);
    bed.scheduler.run();
    EXPECT_EQ(bed.phys[1]->frames_decoded(), 1u);
    // A node attached after traffic has flowed must still be reached.
    bed.add(100, 100);
    EXPECT_EQ(bed.channel.reachable_count(0), 2u);
    a.start_tx(frame);
    bed.scheduler.run();
    EXPECT_EQ(bed.phys[2]->frames_decoded(), 1u);  // sniffed the second frame
}

TEST(ChannelCull, DuplicateAttachThrowsViaIdIndex)
{
    CullBed bed;
    bed.add(0);
    NodePhy duplicate(0, Position{50, 50}, bed.scheduler);
    EXPECT_THROW(bed.channel.attach(duplicate), std::invalid_argument);
    EXPECT_THROW(bed.channel.reachable_count(99), std::invalid_argument);
}

}  // namespace
}  // namespace ezflow::phy

// Fault injection & churn: graceful node teardown/revival through every
// layer, incremental route repair, source pause/resume, and the drop
// accounting that must balance through all of it.
//
// The teardown lifetime scan is the heart: killing a node at many
// instants across an active period catches it mid-transmission,
// mid-backoff, mid-DIFS and (under the SINR ledger) while frames are
// locked in the interference ledger — every case must drain without a
// FramePool leak and with every queue's conservation law intact. CI runs
// this suite under ASan+UBSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "analysis/drop_audit.h"
#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "experiment_fingerprint.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "net/topo_gen.h"
#include "net/topologies.h"
#include "phy/channel.h"
#include "phy/phy.h"
#include "sim/fault_injector.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/units.h"

namespace ezflow {
namespace {

using analysis::ExperimentFactory;
using analysis::ExperimentOptions;
using analysis::ScenarioSpec;

// ------------------------------------------------------- FaultPlan units

TEST(FaultPlan, BuilderAndSortedTimeline)
{
    net::FaultPlan plan;
    plan.node_down(2.0, 3).link_down(1.0, 0, 1).node_up(4.0, 3).link_up(3.0, 0, 1);
    EXPECT_FALSE(plan.empty());
    const auto sorted = plan.sorted();
    ASSERT_EQ(sorted.size(), 4u);
    EXPECT_EQ(sorted[0].kind, net::FaultKind::kLinkDown);
    EXPECT_EQ(sorted[1].kind, net::FaultKind::kNodeDown);
    EXPECT_EQ(sorted[2].kind, net::FaultKind::kLinkUp);
    EXPECT_EQ(sorted[3].kind, net::FaultKind::kNodeUp);
    EXPECT_EQ(sorted[1].node, 3);
    EXPECT_EQ(sorted[0].a, 0);
    EXPECT_EQ(sorted[0].b, 1);
}

TEST(FaultPlan, RandomChurnIsSeededAndWellFormed)
{
    net::ChurnSpec spec;
    spec.candidates = {1, 2, 3, 4};
    spec.cycles = 8;
    spec.from_s = 10.0;
    spec.to_s = 60.0;
    spec.min_down_s = 1.0;
    spec.max_down_s = 4.0;
    const net::FaultPlan a = net::FaultPlan::random_churn(spec, 42);
    const net::FaultPlan b = net::FaultPlan::random_churn(spec, 42);
    const net::FaultPlan c = net::FaultPlan::random_churn(spec, 43);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].at, b.events[i].at);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].node, b.events[i].node);
    }
    // Different seeds draw a different timeline.
    bool differs = a.events.size() != c.events.size();
    for (std::size_t i = 0; !differs && i < a.events.size(); ++i)
        differs = a.events[i].at != c.events[i].at || a.events[i].node != c.events[i].node;
    EXPECT_TRUE(differs);

    // Every cycle is a paired down/up inside the window, and one node's
    // cycles never overlap.
    std::map<net::NodeId, util::SimTime> down_since;
    std::map<net::NodeId, util::SimTime> last_up;
    for (const net::FaultEvent& event : a.sorted()) {
        EXPECT_GE(event.at, util::from_seconds(spec.from_s));
        EXPECT_LE(event.at, util::from_seconds(spec.to_s));
        EXPECT_TRUE(std::count(spec.candidates.begin(), spec.candidates.end(), event.node) > 0);
        if (event.kind == net::FaultKind::kNodeDown) {
            EXPECT_EQ(down_since.count(event.node), 0u) << "overlapping cycles";
            if (last_up.count(event.node)) {
                EXPECT_GT(event.at, last_up[event.node]);
            }
            down_since[event.node] = event.at;
        } else {
            ASSERT_EQ(event.kind, net::FaultKind::kNodeUp);
            ASSERT_EQ(down_since.count(event.node), 1u);
            const util::SimTime down_for = event.at - down_since[event.node];
            EXPECT_GE(down_for, util::from_seconds(spec.min_down_s));
            EXPECT_LE(down_for, util::from_seconds(spec.max_down_s));
            down_since.erase(event.node);
            last_up[event.node] = event.at;
        }
    }
    EXPECT_TRUE(down_since.empty()) << "unpaired node_down";
}

// ------------------------------------- routing: incremental repair units

TEST(RoutingRepair, UpdateSuspendResumeMatchFreshBuilder)
{
    // Property check: after any batch of update/suspend/resume, the
    // incrementally repaired RoutingTable answers every probe exactly
    // like a freshly built reference (builder + full compile).
    util::Rng rng(7);
    net::StaticRouting routing;
    net::RoutingTable table(routing);
    const std::vector<std::vector<net::NodeId>> pool = {
        {0, 1, 2, 3}, {3, 2, 1, 0}, {0, 4, 8}, {8, 4, 0}, {1, 5, 9, 13}, {2, 6, 10}};
    for (int f = 1; f <= 6; ++f) routing.add_flow(f, pool[static_cast<std::size_t>(f - 1)]);
    (void)table.next_hop(1, 0);  // force the initial compile

    std::uint64_t expected_version = routing.version();
    for (int step = 0; step < 300; ++step) {
        const int flow = rng.uniform_int(1, 6);
        switch (rng.uniform_int(0, 2)) {
            case 0:
                routing.update_flow(flow, pool[static_cast<std::size_t>(rng.uniform_int(0, 5))]);
                ++expected_version;
                break;
            case 1:
                if (!routing.is_suspended(flow)) ++expected_version;  // idempotent otherwise
                routing.suspend_flow(flow);
                break;
            default:
                if (routing.is_suspended(flow)) ++expected_version;
                routing.resume_flow(flow);
                break;
        }
        // Fresh reference over the same builder state.
        net::StaticRouting reference;
        for (int f = 1; f <= 6; ++f) {
            reference.add_flow(f, routing.path(f));
            if (routing.is_suspended(f)) reference.suspend_flow(f);
        }
        net::RoutingTable fresh(reference);
        for (int f = 1; f <= 6; ++f) {
            for (net::NodeId node = 0; node <= 13; ++node) {
                EXPECT_EQ(table.has_next_hop(f, node), fresh.has_next_hop(f, node))
                    << "step " << step << " flow " << f << " node " << node;
                EXPECT_EQ(table.next_hop_or_none(f, node), fresh.next_hop_or_none(f, node))
                    << "step " << step << " flow " << f << " node " << node;
            }
        }
    }
    // 300 single-flow changes against an initial compile: the change log
    // must have carried them (no structure growth), and every effective
    // mutation — and only those — bumped the version.
    EXPECT_EQ(routing.structure_version(), 6u);
    EXPECT_EQ(routing.version(), expected_version);
}

TEST(RoutingRepair, SuspendedFlowHasNoNextHops)
{
    net::StaticRouting routing;
    routing.add_flow(1, {0, 1, 2});
    net::RoutingTable table(routing);
    EXPECT_EQ(table.next_hop(1, 0), 1);
    routing.suspend_flow(1);
    EXPECT_FALSE(table.has_next_hop(1, 0));
    EXPECT_EQ(table.next_hop_or_none(1, 0), net::RoutingTable::kNoNextHop);
    EXPECT_THROW(routing.next_hop(1, 0), std::invalid_argument);
    routing.resume_flow(1);
    EXPECT_EQ(table.next_hop(1, 0), 1);
    EXPECT_EQ(routing.path(1), (std::vector<net::NodeId>{0, 1, 2}));
}

TEST(RoutingRepair, ChangeLogPruningFallsBackToFullCompile)
{
    net::StaticRouting routing;
    routing.add_flow(1, {0, 1});
    routing.add_flow(2, {1, 2});
    net::RoutingTable table(routing);
    (void)table.next_hop(1, 0);
    // Blow far past the log capacity so the compiled version falls below
    // the floor; the table must recover via a full compile.
    for (int i = 0; i < 5000; ++i) routing.update_flow(2, i % 2 ? std::vector<net::NodeId>{2, 1}
                                                                : std::vector<net::NodeId>{1, 2});
    EXPECT_GT(routing.change_log_floor(), 0u);
    EXPECT_EQ(table.next_hop(2, 2), 1);  // last update left the path {2, 1}
    EXPECT_EQ(table.next_hop(1, 0), 1);
}

// ----------------------------------------- channel detach/attach symmetry

TEST(ChannelDetach, ReachCacheInvalidatedSymmetrically)
{
    sim::Scheduler scheduler;
    phy::PhyParams params;
    phy::Channel channel(scheduler, util::Rng(5), params);
    std::vector<std::unique_ptr<phy::NodePhy>> phys;
    for (int i = 0; i < 4; ++i) {
        phys.push_back(
            std::make_unique<phy::NodePhy>(i, phy::Position{i * 200.0, 0.0}, scheduler));
        channel.attach(*phys.back());
    }
    EXPECT_EQ(channel.reachable_count(1), 3u);  // 550 m cs: two hops each side
    EXPECT_TRUE(channel.is_attached(*phys[2]));

    // Detach after the cache was built: the cull must forget node 2 (the
    // staleness hazard — an early-return on reach_.size() would keep
    // serving the dead node).
    channel.detach(*phys[2]);
    EXPECT_FALSE(channel.is_attached(*phys[2]));
    EXPECT_EQ(channel.reachable_count(1), 2u);
    EXPECT_THROW(channel.reachable_count(2), std::invalid_argument);
    EXPECT_THROW(channel.detach(*phys[2]), std::invalid_argument);

    // Reattach: symmetric rebuild.
    channel.attach(*phys[2]);
    EXPECT_EQ(channel.reachable_count(1), 3u);
    EXPECT_EQ(channel.reachable_count(2), 3u);
}

// ------------------------------------------------- teardown lifetime scan

/// One kill/revive cycle on a 4-hop chain, killing relay 2 at
/// `kill_us` and reviving 300 ms later. Returns the run's fingerprint.
/// Asserts zero FramePool leakage and exact queue/MAC conservation
/// afterwards — whatever MAC/PHY state the kill interrupted.
std::vector<std::uint64_t> chain_kill_cycle(util::SimTime kill_us, bool sinr_ledger,
                                            bool cull = true)
{
    ScenarioSpec spec = ScenarioSpec::line(4, /*duration_s=*/1.2);
    if (sinr_ledger) spec.models.interference = phy::PhyModelConfig::Interference::kSinrLedger;
    spec.faults.events.push_back(
        {kill_us, net::FaultKind::kNodeDown, /*node=*/2, -1, -1});
    spec.faults.events.push_back(
        {kill_us + 300'000, net::FaultKind::kNodeUp, /*node=*/2, -1, -1});
    ExperimentFactory factory(spec, ExperimentOptions{});
    std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/11);
    net::ReferenceModeFlags flags;
    flags.reachability_cull = cull;
    experiment->network().set_reference_mode(flags);
    experiment->run();
    // Run far past the stop so every in-flight signal end has fired.
    experiment->run_until_s(10.0);

    net::Network& network = experiment->network();
    EXPECT_EQ(network.channel().frame_pool().live(), 0u) << "kill at " << kill_us;
    analysis::audit_drop_accounting(*experiment);  // throws on any leak
    const sim::FaultInjector* injector = experiment->fault_injector();
    EXPECT_EQ(injector->stats().node_downs, 1u);
    EXPECT_EQ(injector->stats().node_ups, 1u);
    // A 1-wide chain has no detour: the flow suspends and restores.
    EXPECT_EQ(injector->stats().flows_suspended, 1u);
    EXPECT_EQ(injector->stats().flows_restored, 1u);
    return testutil::experiment_fingerprint(*experiment);
}

TEST(FaultLifetime, KillScanAcrossActivePeriodLeaksNothing)
{
    // 5-s start + CBR at 2 Mb/s saturates immediately; sweeping the kill
    // instant at sub-slot offsets catches the MAC mid-DIFS, mid-backoff,
    // mid-data, mid-ACK-wait and the PHY mid-signal.
    for (int i = 0; i < 12; ++i) {
        const util::SimTime kill = util::from_seconds(5.2) + i * 13'777;
        chain_kill_cycle(kill, /*sinr_ledger=*/false);
    }
}

TEST(FaultLifetime, KillScanUnderSinrLedger)
{
    // The SINR ledger holds locked frame references during reception;
    // killing the receiver mid-lock must still release every record.
    for (int i = 0; i < 8; ++i) {
        const util::SimTime kill = util::from_seconds(5.2) + i * 17'333;
        chain_kill_cycle(kill, /*sinr_ledger=*/true);
    }
}

TEST(FaultLifetime, FlashReviveWithinSifsKeepsControlPathSane)
{
    // Regression for the stale control trigger: quiesce cannot cancel an
    // already-armed SIFS/slot control timer (scheduler events are fire-
    // and-forget), so a kill/revive cycle quicker than SIFS left the old
    // trigger to fire into the *revived* MAC — a double control send
    // violating SIFS spacing, or a send of a control frame the teardown
    // had already flushed. The MAC's generation counter turns stale
    // triggers into no-ops; this scan pins that across sub-SIFS kill
    // offsets (prime steps so the scan drifts through DIFS/backoff/ACK
    // phases) with a 4-microsecond outage, and re-checks determinism.
    const auto flash_cycle = [](util::SimTime kill_us) {
        ScenarioSpec spec = ScenarioSpec::line(4, /*duration_s=*/1.2);
        spec.faults.events.push_back({kill_us, net::FaultKind::kNodeDown, /*node=*/2, -1, -1});
        spec.faults.events.push_back(
            {kill_us + 4, net::FaultKind::kNodeUp, /*node=*/2, -1, -1});
        ExperimentFactory factory(spec, ExperimentOptions{});
        std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/11);
        experiment->run();
        experiment->run_until_s(10.0);
        EXPECT_EQ(experiment->network().channel().frame_pool().live(), 0u)
            << "kill at " << kill_us;
        analysis::audit_drop_accounting(*experiment);  // throws on any leak
        return testutil::experiment_fingerprint(*experiment);
    };
    for (int i = 0; i < 12; ++i) {
        const util::SimTime kill = util::from_seconds(5.2) + i * 2'503;
        const auto fingerprint = flash_cycle(kill);
        EXPECT_EQ(fingerprint, flash_cycle(kill)) << "kill at " << kill;
    }
}

TEST(FaultLifetime, CullMatchesBroadcastAcrossDownUpCycle)
{
    // Satellite of the reach-cache fix: the culled channel must produce
    // the exact run the full-broadcast reference produces across a
    // detach/reattach cycle (decode-for-decode, event-for-event).
    const util::SimTime kill = util::from_seconds(5.35);
    EXPECT_EQ(chain_kill_cycle(kill, false, /*cull=*/true),
              chain_kill_cycle(kill, false, /*cull=*/false));
}

// -------------------------------------------- source pause / repair flow

TEST(FaultFlow, GatewayDeathPausesSourcesAndRecovers)
{
    net::GridSpec grid;
    grid.cols = 4;
    grid.rows = 4;
    grid.sources = 3;
    grid.duration_s = 12.0;
    ScenarioSpec spec = ScenarioSpec::grid_gateway(grid);
    spec.faults.node_down(9.0, 0).node_up(13.0, 0);
    ExperimentFactory factory(spec, ExperimentOptions{});
    std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/3);

    experiment->run_until_s(8.9);
    std::uint64_t delivered_before = 0;
    for (int id = 0; id < experiment->network().node_count(); ++id)
        delivered_before += experiment->network().node(id).delivered();
    EXPECT_GT(delivered_before, 0u);

    // Mid-outage: gateway down, every flow suspended, sources pausing.
    experiment->run_until_s(12.9);
    EXPECT_FALSE(experiment->network().node_is_up(0));
    for (int f = 1; f <= grid.sources; ++f)
        EXPECT_TRUE(experiment->network().routing().is_suspended(f)) << "flow " << f;
    std::uint64_t delivered_outage = 0;
    for (int id = 0; id < experiment->network().node_count(); ++id)
        delivered_outage += experiment->network().node(id).delivered();

    // After revival: flows restored, delivery resumes, sources backed off
    // while the destination was gone.
    experiment->run();
    EXPECT_TRUE(experiment->network().node_is_up(0));
    std::uint64_t delivered_after = 0;
    for (int id = 0; id < experiment->network().node_count(); ++id)
        delivered_after += experiment->network().node(id).delivered();
    EXPECT_GT(delivered_after, delivered_outage);
    std::uint64_t backoffs = 0;
    for (const auto& source : experiment->sources()) backoffs += source->stats().backoff_retries;
    EXPECT_GT(backoffs, 0u);
    for (int f = 1; f <= grid.sources; ++f)
        EXPECT_FALSE(experiment->network().routing().is_suspended(f)) << "flow " << f;

    const auto ledger = analysis::audit_drop_accounting(*experiment);
    EXPECT_GT(ledger.generated, 0u);
    // The outage strands in-flight packets: flushed queues at the dead
    // node plus relays left holding frames for suspended flows.
    EXPECT_GT(ledger.drops_node_down + ledger.drops_unroutable, 0u);
}

TEST(FaultFlow, RelayDeathReroutesWithoutSuspension)
{
    net::GridSpec grid;
    grid.cols = 4;
    grid.rows = 4;
    grid.sources = 3;
    grid.duration_s = 10.0;
    ScenarioSpec spec = ScenarioSpec::grid_gateway(grid);
    spec.faults.node_down(8.0, 1).node_up(12.0, 1);
    ExperimentFactory factory(spec, ExperimentOptions{});
    std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/5);
    experiment->run();

    const sim::FaultInjector* injector = experiment->fault_injector();
    ASSERT_NE(injector, nullptr);
    EXPECT_GT(injector->stats().flows_rerouted, 0u);
    EXPECT_EQ(injector->stats().flows_suspended, 0u);
    EXPECT_EQ(injector->stats().flows_restored, injector->stats().flows_rerouted);
    // Restoration is exact: every flow ends on its planner-original path.
    for (const net::FlowPlan& plan : experiment->scenario().flows)
        EXPECT_EQ(experiment->network().routing().path(plan.flow_id), plan.path);
    analysis::audit_drop_accounting(*experiment);
}

TEST(FaultFlow, ChurnedRunBalancesItsLedger)
{
    // Seeded random churn over the relay column: many down/up cycles,
    // every one repaired, and the whole run's ledger still partitions.
    net::GridSpec grid;
    grid.cols = 4;
    grid.rows = 3;
    grid.sources = 3;
    grid.duration_s = 25.0;
    ScenarioSpec spec = ScenarioSpec::grid_gateway(grid);
    net::ChurnSpec churn;
    churn.candidates = {1, 2, 4, 5};
    churn.cycles = 6;
    churn.from_s = 7.0;
    churn.to_s = 28.0;
    churn.min_down_s = 0.5;
    churn.max_down_s = 2.0;
    spec.faults = net::FaultPlan::random_churn(churn, 99);
    ASSERT_FALSE(spec.faults.empty());
    ExperimentFactory factory(spec, ExperimentOptions{});
    std::unique_ptr<analysis::Experiment> experiment = factory.make(/*seed=*/17);
    experiment->run();
    experiment->run_until_s(40.0);
    EXPECT_EQ(experiment->network().channel().frame_pool().live(), 0u);
    const auto ledger = analysis::audit_drop_accounting(*experiment);
    EXPECT_GT(ledger.generated, 0u);
    const sim::FaultInjector* injector = experiment->fault_injector();
    EXPECT_EQ(injector->stats().node_downs, injector->stats().node_ups);
    EXPECT_GT(injector->stats().node_downs, 0u);
}

TEST(FaultInjectorGuards, MultiShardNetworkRefused)
{
    // Route repair mutates the shared routing builder; the injector must
    // refuse a genuinely sharded network outright.
    net::IslandsSpec islands;
    islands.islands = 2;
    islands.cols = 3;
    islands.rows = 2;
    islands.sources = 1;
    islands.max_shards = 2;
    net::Scenario scenario = net::make_islands(islands, /*seed=*/1);
    ASSERT_GT(scenario.network->shard_count(), 1);
    net::FaultPlan plan;
    plan.node_down(1.0, 1).node_up(2.0, 1);
    EXPECT_THROW(sim::FaultInjector(*scenario.network, plan), std::invalid_argument);
}

TEST(FaultInjectorGuards, DeterministicAcrossRepeatedRuns)
{
    // Same spec + seed -> byte-identical fingerprint, fault plan and all.
    const util::SimTime kill = util::from_seconds(5.3);
    EXPECT_EQ(chain_kill_cycle(kill, false), chain_kill_cycle(kill, false));
}

}  // namespace
}  // namespace ezflow

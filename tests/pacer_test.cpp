#include <gtest/gtest.h>

#include "analysis/recorder.h"
#include "core/pacer.h"
#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"

namespace ezflow::core {
namespace {

using util::kMillisecond;
using util::kSecond;

net::Packet packet(std::uint64_t seq)
{
    net::Packet p;
    p.uid = seq;
    p.seq = seq;
    p.flow_id = 0;
    p.src = 0;
    p.dst = 1;  // delivered at the neighbour, not forwarded further
    p.bytes = 1000;
    p.checksum = static_cast<std::uint16_t>(seq);
    return p;
}

struct PacerBed {
    net::Scenario scenario;
    net::Network& net;

    explicit PacerBed(int hops = 2, std::uint64_t seed = 3)
        : scenario(net::make_line(hops, 1000.0, seed)), net(*scenario.network)
    {
    }
};

TEST(PacedQueue, ReleasesAtBaseInterval)
{
    PacerBed bed;
    PacedQueue queue(bed.net, 0, mac::QueueKey{1, true}, CaaConfig{}, 100, 50 * kMillisecond);
    for (int i = 0; i < 10; ++i) queue.push(packet(i));
    bed.net.run_until(kSecond);
    // 1 s / 50 ms = 20 release opportunities; all 10 released.
    EXPECT_EQ(queue.released(), 10u);
    EXPECT_EQ(queue.size(), 0);
}

TEST(PacedQueue, DropsWhenFull)
{
    PacerBed bed;
    PacedQueue queue(bed.net, 0, mac::QueueKey{1, true}, CaaConfig{}, 5, kSecond);
    for (int i = 0; i < 10; ++i) queue.push(packet(i));
    EXPECT_EQ(queue.size(), 5);
    EXPECT_EQ(queue.dropped(), 5u);
}

TEST(PacedQueue, CongestionSignalSlowsRelease)
{
    PacerBed bed;
    CaaConfig config;
    PacedQueue queue(bed.net, 0, mac::QueueKey{1, true}, config, 100, 10 * kMillisecond);
    const util::SimTime before = queue.release_interval();
    // Four full windows of over-threshold samples: cw 16 -> 32.
    for (int w = 0; w < 4; ++w)
        for (int s = 0; s < config.sample_window; ++s) queue.on_sample(30);
    EXPECT_EQ(queue.release_interval(), before * 2);
}

TEST(PacedQueue, IdleSignalRestoresRate)
{
    PacerBed bed;
    CaaConfig config;
    config.initial_cw = 1 << 6;
    PacedQueue queue(bed.net, 0, mac::QueueKey{1, true}, config, 100, 10 * kMillisecond);
    EXPECT_EQ(queue.release_interval(), 40 * kMillisecond);  // 10ms * 64/16
    for (int w = 0; w < 200; ++w)
        for (int s = 0; s < config.sample_window; ++s) queue.on_sample(0);
    EXPECT_EQ(queue.release_interval(), 10 * kMillisecond);  // back to min_cw pace
}

TEST(PacedQueue, Validation)
{
    PacerBed bed;
    EXPECT_THROW(PacedQueue(bed.net, 0, mac::QueueKey{1, true}, CaaConfig{}, 0, kSecond),
                 std::invalid_argument);
    EXPECT_THROW(PacedQueue(bed.net, 0, mac::QueueKey{1, true}, CaaConfig{}, 10, 0),
                 std::invalid_argument);
}

TEST(PacedAgent, InterceptsSourceAndForwardTraffic)
{
    PacerBed bed(3);
    auto agents = install_paced_ezflow(bed.net, PacedEzFlowAgent::Options{});
    traffic::CbrSource source(bed.net, 0, 1000, 2e6);
    source.activate(0, 30 * kSecond);
    bed.net.run_until(30 * kSecond);
    const PacedQueue* q0 = agents.at(0)->queue_toward(1);
    const PacedQueue* q1 = agents.at(1)->queue_toward(2);
    ASSERT_NE(q0, nullptr);
    ASSERT_NE(q1, nullptr);
    EXPECT_GT(q0->released(), 100u);
    EXPECT_GT(q1->released(), 100u);
}

TEST(PacedAgent, MacQueueStaysShallow)
{
    // The point of the variant: congestion lives in the routing-layer
    // queue; the MAC's 50-packet buffer stays nearly empty.
    PacerBed bed(4, 9);
    auto agents = install_paced_ezflow(bed.net, PacedEzFlowAgent::Options{});
    traffic::CbrSource source(bed.net, 0, 1000, 2e6);
    source.activate(0, 120 * kSecond);
    analysis::BufferTracer tracer(bed.net, {0, 1, 2, 3}, 100 * kMillisecond);
    tracer.start();
    bed.net.run_until(120 * kSecond);
    for (int n = 0; n < 4; ++n) {
        // Far below the 50-packet cap: the backlog lives in the pacing
        // queue, not the MAC buffer.
        EXPECT_LT(tracer.mean_occupancy(n, util::from_seconds(60), util::from_seconds(120)), 20.0)
            << "MAC queue at N" << n;
    }
}

TEST(PacedAgent, StabilizesFourHopChain)
{
    // End-to-end: the paced variant also removes the 4-hop turbulence —
    // relay MAC buffers stay small and traffic flows.
    PacerBed bed(4, 11);
    auto agents = install_paced_ezflow(bed.net, PacedEzFlowAgent::Options{});
    traffic::Sink sink(bed.net);
    sink.attach_flow(0);
    traffic::CbrSource source(bed.net, 0, 1000, 2e6);
    source.activate(0, 300 * kSecond);
    analysis::BufferTracer tracer(bed.net, {1, 2, 3}, 100 * kMillisecond);
    tracer.start();
    bed.net.run_until(300 * kSecond);
    EXPECT_LT(tracer.mean_occupancy(1, util::from_seconds(150), util::from_seconds(300)), 15.0);
    EXPECT_GT(sink.goodput_kbps(0, util::from_seconds(150), util::from_seconds(300)), 100.0);
}

TEST(PacedAgent, SecondInterceptorRejected)
{
    PacerBed bed(2);
    PacedEzFlowAgent::Options options;
    PacedEzFlowAgent first(bed.net, 0, options);
    EXPECT_THROW(PacedEzFlowAgent(bed.net, 0, options), std::logic_error);
}

}  // namespace
}  // namespace ezflow::core

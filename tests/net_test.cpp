#include <gtest/gtest.h>

#include <set>

#include "net/network.h"
#include "net/packet.h"
#include "net/routing.h"
#include "net/topologies.h"

namespace ezflow::net {
namespace {

Network::Config topo_config() { return default_config(7); }

// --------------------------------------------------------------- packet

TEST(Packet, ChecksumDeterministic)
{
    EXPECT_EQ(packet_checksum(1, 42, 0, 5, 1000), packet_checksum(1, 42, 0, 5, 1000));
}

TEST(Packet, ChecksumSpreadsAcross16Bits)
{
    // A transport checksum should look uniform; over 20k packets of one
    // flow we expect most 16-bit values untouched but good dispersion and
    // some collisions (birthday bound), like real checksums.
    std::set<std::uint16_t> seen;
    const int n = 20000;
    for (int i = 0; i < n; ++i) seen.insert(packet_checksum(1, i, 0, 5, 1000));
    // With 2^16 buckets and 20k draws, expect ~17.3k distinct values.
    EXPECT_GT(seen.size(), 15000u);
    EXPECT_LT(seen.size(), static_cast<std::size_t>(n));  // collisions exist
}

TEST(Packet, ChecksumDependsOnAllFields)
{
    const auto base = packet_checksum(1, 42, 0, 5, 1000);
    EXPECT_NE(base, packet_checksum(2, 42, 0, 5, 1000));
    EXPECT_NE(base, packet_checksum(1, 43, 0, 5, 1000));
    EXPECT_NE(base, packet_checksum(1, 42, 1, 5, 1000));
}

// -------------------------------------------------------------- routing

TEST(Routing, NextHopFollowsPath)
{
    StaticRouting routing;
    routing.add_flow(1, {0, 1, 2, 3});
    EXPECT_EQ(routing.next_hop(1, 0), 1);
    EXPECT_EQ(routing.next_hop(1, 1), 2);
    EXPECT_EQ(routing.next_hop(1, 2), 3);
}

TEST(Routing, DestinationHasNoNextHop)
{
    StaticRouting routing;
    routing.add_flow(1, {0, 1, 2});
    EXPECT_FALSE(routing.has_next_hop(1, 2));
    EXPECT_THROW(routing.next_hop(1, 2), std::invalid_argument);
}

TEST(Routing, UnknownFlowThrows)
{
    StaticRouting routing;
    EXPECT_THROW(routing.next_hop(9, 0), std::invalid_argument);
    EXPECT_THROW(routing.path(9), std::invalid_argument);
    EXPECT_FALSE(routing.has_next_hop(9, 0));
}

TEST(Routing, RejectsBadPaths)
{
    StaticRouting routing;
    EXPECT_THROW(routing.add_flow(1, {0}), std::invalid_argument);
    EXPECT_THROW(routing.add_flow(1, {0, 1, 0}), std::invalid_argument);
    routing.add_flow(1, {0, 1});
    EXPECT_THROW(routing.add_flow(1, {2, 3}), std::invalid_argument);
}

TEST(Routing, FlowIdsSorted)
{
    StaticRouting routing;
    routing.add_flow(3, {0, 1});
    routing.add_flow(1, {2, 3});
    EXPECT_EQ(routing.flow_ids(), (std::vector<int>{1, 3}));
}

// -------------------------------------------------------------- network

TEST(Network, AddNodeAssignsDenseIds)
{
    Network net(topo_config());
    EXPECT_EQ(net.add_node({0, 0}), 0);
    EXPECT_EQ(net.add_node({200, 0}), 1);
    EXPECT_EQ(net.node_count(), 2);
    EXPECT_THROW(net.node(2), std::out_of_range);
}

TEST(Network, AddFlowValidatesNodesAndRange)
{
    Network net(topo_config());
    net.add_node({0, 0});
    net.add_node({200, 0});
    net.add_node({600, 0});
    EXPECT_THROW(net.add_flow(1, {0, 5}), std::invalid_argument);   // unknown node
    EXPECT_THROW(net.add_flow(1, {1, 2}), std::invalid_argument);   // 400 m hop
    net.add_flow(1, {0, 1});                                        // fine
}

TEST(Network, ForkRngDeterministicPerSeed)
{
    Network a(topo_config());
    Network b(topo_config());
    EXPECT_EQ(a.fork_rng().next_u64(), b.fork_rng().next_u64());
}

// ----------------------------------------------------------- topologies

TEST(Topologies, LineHasHopsPlusOneNodes)
{
    Scenario s = make_line(4, 100.0, 1);
    EXPECT_EQ(s.network->node_count(), 5);
    ASSERT_EQ(s.flows.size(), 1u);
    EXPECT_EQ(s.flows[0].path.size(), 5u);
    EXPECT_EQ(s.labels.at(0), "N0");
    EXPECT_EQ(s.labels.at(4), "N4");
}

TEST(Topologies, LineUsesTestbedCarrierSenseRegime)
{
    // Fig. 1 lines model the testbed: adjacent nodes carrier-sense each
    // other, 2-hop neighbours are hidden (weak through-building paths),
    // and interference still reaches 2 hops (within 550 m).
    Scenario s = make_line(4, 100.0, 1);
    const auto& phy = s.network->config().phy;
    const auto& n0 = s.network->node(0).phy().position();
    const auto& n1 = s.network->node(1).phy().position();
    const auto& n2 = s.network->node(2).phy().position();
    EXPECT_LE(phy::distance(n0, n1), phy.cs_range_m);  // 1 hop sensed
    EXPECT_GT(phy::distance(n0, n2), phy.cs_range_m);  // 2 hops hidden
    EXPECT_LE(phy::distance(n0, n2), phy.interference_range_m);
}

TEST(Topologies, Scenario1UsesNs2CarrierSenseRegime)
{
    // The merging scenarios keep the ns-2 defaults the paper's
    // simulations quote: 550 m carrier sense over 200 m spacing.
    Scenario s = make_scenario1(1.0, 1);
    const auto& phy = s.network->config().phy;
    EXPECT_DOUBLE_EQ(phy.cs_range_m, 550.0);
    const auto& n0 = s.network->node(0).phy().position();
    const auto& n2 = s.network->node(2).phy().position();
    EXPECT_LE(phy::distance(n0, n2), phy.cs_range_m);  // 2 hops sensed
}

TEST(Topologies, TestbedMatchesFig3Structure)
{
    Scenario s = make_testbed(5, 100, 5, 100, 1);
    EXPECT_EQ(s.network->node_count(), 9);  // N0..N7 plus N0'
    ASSERT_EQ(s.flows.size(), 2u);
    EXPECT_EQ(s.flows[0].path.size(), 8u);  // F1: 7 hops
    EXPECT_EQ(s.flows[1].path.size(), 5u);  // F2: 4 hops
    // F2 joins F1 at N4 and shares the tail.
    EXPECT_EQ(s.flows[1].path[1], s.flows[0].path[4]);
    EXPECT_EQ(s.flows[1].path.back(), s.flows[0].path.back());
}

TEST(Topologies, TestbedLinkLossMarksL2Bottleneck)
{
    const auto& loss = testbed_link_loss();
    ASSERT_EQ(loss.size(), 7u);
    for (std::size_t i = 0; i < loss.size(); ++i) {
        if (i == 2) continue;
        EXPECT_LT(loss[i], loss[2]) << "l2 must be the worst link";
    }
}

TEST(Topologies, Scenario1FlowsMergeAtN4)
{
    Scenario s = make_scenario1(1.0, 1);
    ASSERT_EQ(s.flows.size(), 2u);
    const auto& f1 = s.flows[0].path;
    const auto& f2 = s.flows[1].path;
    EXPECT_EQ(f1.size(), 9u);  // 8 hops
    EXPECT_EQ(f2.size(), 9u);
    // Last five nodes (N4..N0) are shared.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(f1[f1.size() - 1 - i], f2[f2.size() - 1 - i]);
    // Branch sources differ.
    EXPECT_NE(f1[0], f2[0]);
}

TEST(Topologies, Scenario1TimelineMatchesPaper)
{
    Scenario s = make_scenario1(1.0, 1);
    EXPECT_DOUBLE_EQ(s.flows[0].start_s, 5.0);
    EXPECT_DOUBLE_EQ(s.flows[0].stop_s, 2504.0);
    EXPECT_DOUBLE_EQ(s.flows[1].start_s, 605.0);
    EXPECT_DOUBLE_EQ(s.flows[1].stop_s, 1804.0);
}

TEST(Topologies, Scenario2HiddenSources)
{
    Scenario s = make_scenario2(1.0, 1);
    ASSERT_EQ(s.flows.size(), 3u);
    const auto& phy = s.network->config().phy;
    const auto& f1_src = s.network->node(s.flows[0].path[0]).phy().position();
    const auto& f2_src = s.network->node(s.flows[1].path[0]).phy().position();
    const auto& f3_src = s.network->node(s.flows[2].path[0]).phy().position();
    EXPECT_GT(phy::distance(f1_src, f2_src), phy.cs_range_m);
    EXPECT_GT(phy::distance(f1_src, f3_src), phy.cs_range_m);
    EXPECT_GT(phy::distance(f2_src, f3_src), phy.cs_range_m);
}

TEST(Topologies, Scenario2SourceCompetesWithTwoNodes)
{
    // The paper: "N10 only directly competes with two nodes (N11 and N12)".
    Scenario s = make_scenario2(1.0, 1);
    const auto& phy = s.network->config().phy;
    const NodeId n10 = s.flows[1].path[0];
    int sensed = 0;
    for (NodeId other = 0; other < s.network->node_count(); ++other) {
        if (other == n10) continue;
        if (phy::distance(s.network->node(n10).phy().position(),
                          s.network->node(other).phy().position()) <= phy.cs_range_m)
            ++sensed;
    }
    EXPECT_EQ(sensed, 2);
}

TEST(Topologies, AllScenarioHopsWithinDeliveryRange)
{
    // add_flow() validates this; building the scenarios must not throw.
    EXPECT_NO_THROW(make_line(7, 10, 1));
    EXPECT_NO_THROW(make_testbed(0, 10, 0, 10, 1));
    EXPECT_NO_THROW(make_scenario1(0.1, 1));
    EXPECT_NO_THROW(make_scenario2(0.1, 1));
}

}  // namespace
}  // namespace ezflow::net

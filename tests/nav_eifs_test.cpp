#include <gtest/gtest.h>

#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"

// Focused tests for the two carrier-sense refinements that turned out to
// be load-bearing for the paper's phenomena (DESIGN.md §4.0): the NAV
// (Duration-based virtual carrier sense) and EIFS. Both are exercised
// indirectly by every integration test; these pin down the mechanism.
namespace ezflow::mac {
namespace {

using util::kSecond;

TEST(Nav, ThirdPartyDefersOverAckExchange)
{
    // w decodes a's data frame to b and must hold its own transmission
    // until after b's ACK: b's ACK success rate stays perfect even though
    // w is saturated and cannot sense... w *can* sense everyone here; the
    // assertion is on zero ACK-collision retries at a.
    net::Network::Config config = net::default_config(3);
    net::Network network(config);
    const auto a = network.add_node({0, 0});
    const auto b = network.add_node({200, 0});
    const auto w = network.add_node({100, 150});
    const auto d = network.add_node({100, 350});
    network.add_flow(0, {a, b});
    network.add_flow(1, {w, d});
    traffic::Sink sink(network);
    sink.attach_flow(0);
    sink.attach_flow(1);
    traffic::CbrSource f0(network, 0, 1000, 2e6);
    traffic::CbrSource f1(network, 1, 1000, 2e6);
    f0.activate(0, 20 * kSecond);
    f1.activate(0, 20 * kSecond);
    network.run_until(20 * kSecond);
    // Mutually-sensing saturated neighbours: only same-slot draws collide.
    const auto retx = network.node(a).mac().retransmissions() +
                      network.node(w).mac().retransmissions();
    const auto succ =
        network.node(a).mac().successes() + network.node(w).mac().successes();
    ASSERT_GT(succ, 1000u);
    EXPECT_LT(static_cast<double>(retx) / static_cast<double>(succ), 0.25);
}

TEST(Nav, ExposedAckWindowProtectedAtOneHopSensing)
{
    // Testbed regime (1-hop CS): n1 decodes n2's data to n3 and must not
    // jam n3's ACK back to n2 even though n1 cannot sense n3 (400 m).
    // With the NAV in place, n2's exchanges complete without retries
    // caused by n1.
    net::Network::Config config = net::testbed_config(4);
    net::Network network(config);
    const auto n0 = network.add_node({0, 0});
    const auto n1 = network.add_node({200, 0});
    const auto n2 = network.add_node({400, 0});
    const auto n3 = network.add_node({600, 0});
    (void)n0;
    network.add_flow(0, {n1, n2, n3});  // n2 relays toward n3
    traffic::Sink sink(network);
    sink.attach_flow(0);
    traffic::CbrSource source(network, 0, 1000, 2e6);
    source.activate(0, 20 * kSecond);
    network.run_until(20 * kSecond);
    // n2's transmissions to n3: their ACKs come back through the window
    // n1 would jam without virtual carrier sense. Allow only the small
    // residue of genuine collisions.
    const auto& mac2 = network.node(n2).mac();
    ASSERT_GT(mac2.successes(), 500u);
    EXPECT_LT(static_cast<double>(mac2.retransmissions()),
              0.2 * static_cast<double>(mac2.successes()));
}

TEST(Eifs, AppliedAfterUndecodableBusyPeriod)
{
    // A node that senses energy it cannot decode must wait EIFS: measure
    // via the PHY flag directly.
    net::Network::Config config = net::default_config(5);
    net::Network network(config);
    const auto a = network.add_node({0, 0});
    const auto b = network.add_node({200, 0});
    // w senses a (350 < 550) and b's ACKs (550 <= 550) but can decode
    // neither (both beyond the 250 m delivery range), so every busy
    // period it observes ends in error.
    const auto w = network.add_node({-350, 0});
    network.add_flow(0, {a, b});
    traffic::Sink sink(network);
    sink.attach_flow(0);
    traffic::CbrSource source(network, 0, 1000, 100'000.0);
    source.activate(0, 2 * kSecond);
    network.run_until(2 * kSecond);
    EXPECT_TRUE(network.node(w).phy().last_rx_error())
        << "sensed-but-undecodable frames leave the EIFS flag set";
    EXPECT_FALSE(network.node(b).phy().last_rx_error())
        << "clean decodes clear the EIFS obligation";
}

TEST(Eifs, SourceDoesNotFreeRideAfterHiddenAck)
{
    // The regression the EIFS fixes (DESIGN.md §4.0): in a 3-hop chain
    // with 550 m CS, the source cannot decode N2's transmissions' ACKs
    // (from N3, 600 m away) but *can* sense N2's data; EIFS makes it wait
    // out the ACK window. Net effect: the source's share of transmission
    // opportunities stays near its fair third.
    net::Scenario s = net::make_scenario1(0.02, 6);  // tiny warm-up scenario
    (void)s;  // scenario1 exercises it implicitly; direct check below
    net::Network::Config config = net::default_config(6);
    net::Network network(config);
    std::vector<net::NodeId> path;
    for (int i = 0; i <= 3; ++i) path.push_back(network.add_node({200.0 * i, 0.0}));
    network.add_flow(0, path);
    traffic::Sink sink(network);
    sink.attach_flow(0);
    traffic::CbrSource source(network, 0, 1000, 2e6);
    source.activate(0, 60 * kSecond);
    network.run_until(60 * kSecond);
    const double n0 = static_cast<double>(network.node(0).mac().data_attempts());
    const double n1 = static_cast<double>(network.node(1).mac().data_attempts());
    ASSERT_GT(n1, 100.0);
    // Without EIFS the measured ratio was ~1.7; with it the source stays
    // below ~1.45x of the first relay.
    EXPECT_LT(n0 / n1, 1.45);
}

}  // namespace
}  // namespace ezflow::mac

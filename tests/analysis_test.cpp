#include <gtest/gtest.h>

#include "analysis/drop_audit.h"
#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "analysis/metrics.h"
#include "analysis/recorder.h"
#include "analysis/result.h"
#include "analysis/sweep.h"
#include "core/pacer.h"
#include "net/topologies.h"
#include "traffic/source.h"
#include "util/stats.h"

namespace ezflow::analysis {
namespace {

using util::kSecond;

// --------------------------------------------------------------- metrics

TEST(Jain, PerfectFairnessIsOne)
{
    EXPECT_DOUBLE_EQ(jain_index({100.0, 100.0, 100.0}), 1.0);
}

TEST(Jain, TotalStarvationIsOneOverN)
{
    EXPECT_DOUBLE_EQ(jain_index({100.0, 0.0}), 0.5);
    EXPECT_DOUBLE_EQ(jain_index({100.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(Jain, PaperTable2Value)
{
    // Table 2: F1 = 7, F2 = 143 kb/s -> FI = 0.55.
    EXPECT_NEAR(jain_index({7.0, 143.0}), 0.55, 0.005);
}

TEST(Jain, PaperTable3Value)
{
    // Table 3, 802.11 with three flows: 129.9, 31.0, 27.3 -> FI = 0.64.
    EXPECT_NEAR(jain_index({129.9, 31.0, 27.3}), 0.64, 0.005);
}

TEST(Jain, AllZeroIsFair)
{
    EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
}

TEST(Jain, RejectsBadInput)
{
    EXPECT_THROW(jain_index({}), std::invalid_argument);
    EXPECT_THROW(jain_index({-1.0, 5.0}), std::invalid_argument);
}

// -------------------------------------------------------------- recorders

TEST(BufferTracer, SamplesPeriodically)
{
    net::Scenario s = net::make_line(2, 100, 3);
    BufferTracer tracer(*s.network, {1}, kSecond);
    tracer.start();
    s.network->run_until(10 * kSecond + 1);
    EXPECT_EQ(tracer.trace(1).size(), 10u);
    EXPECT_THROW(tracer.trace(0), std::invalid_argument);
    EXPECT_THROW(tracer.start(), std::logic_error);
}

TEST(ThroughputMeter, MeasuresWindowedGoodput)
{
    net::Scenario s = net::make_line(1, 100, 3);
    ThroughputMeter meter(*s.network, 0, kSecond);
    meter.start();
    traffic::CbrSource source(*s.network, 0, 1000, 80'000.0);
    source.activate(0, 20 * kSecond);
    s.network->run_until(21 * kSecond);
    EXPECT_NEAR(meter.mean_kbps(2 * kSecond, 20 * kSecond), 80.0, 6.0);
}

TEST(TimeSeries, CountBetweenTellsNoDataFromMeasuredZero)
{
    // The window helpers return 0.0 for an empty window — only the count
    // distinguishes "no data" from a genuine measured zero.
    util::TimeSeries series;
    EXPECT_EQ(series.count_between(0, 100), 0);
    series.add(10, 0.0);
    series.add(20, 5.0);
    series.add(30, 0.0);
    EXPECT_EQ(series.count_between(0, 100), 3);
    EXPECT_EQ(series.count_between(10, 30), 2);  // half-open [from, to)
    EXPECT_EQ(series.count_between(30, 30), 0);
    EXPECT_EQ(series.count_between(40, 100), 0);
    EXPECT_DOUBLE_EQ(series.mean_between(40, 100), 0.0);  // the ambiguous zero
}

TEST(ThroughputMeter, ExposesWindowSampleCounts)
{
    net::Scenario s = net::make_line(1, 100, 3);
    ThroughputMeter meter(*s.network, 0, kSecond);
    meter.start();
    traffic::CbrSource source(*s.network, 0, 1000, 80'000.0);
    source.activate(0, 5 * kSecond);
    s.network->run_until(6 * kSecond);
    EXPECT_GT(meter.samples(0, 6 * kSecond), 0);
    // Beyond the run there are no windows at all: the mean reports 0.0
    // but the sample count exposes it as fabricated.
    EXPECT_EQ(meter.samples(50 * kSecond, 60 * kSecond), 0);
    EXPECT_DOUBLE_EQ(meter.mean_kbps(50 * kSecond, 60 * kSecond), 0.0);
}

TEST(CwTracer, TracksQueueCwMin)
{
    net::Scenario s = net::make_line(2, 100, 3);
    CwTracer tracer(*s.network, {{0, 1}}, kSecond);
    tracer.start();
    traffic::CbrSource source(*s.network, 0, 1000, 50'000.0);
    source.activate(0, 10 * kSecond);
    s.network->node(0).mac().set_queue_cw_min(mac::QueueKey{1, true}, 1 << 8);
    s.network->run_until(10 * kSecond + 1);
    ASSERT_FALSE(tracer.trace(0).empty());
    EXPECT_DOUBLE_EQ(tracer.trace(0).values().back(), 256.0);
}

// ------------------------------------------------------------- experiment

TEST(Experiment, ModeNames)
{
    EXPECT_EQ(mode_name(Mode::kBaseline80211), "802.11");
    EXPECT_EQ(mode_name(Mode::kEzFlow), "EZ-flow");
    EXPECT_EQ(mode_name(Mode::kPenalty), "penalty-q");
}

TEST(Experiment, CollectsTransmittersAcrossFlows)
{
    ExperimentOptions options;
    Experiment exp(net::make_testbed(5, 10, 5, 10, 4), options);
    // F1: N0..N6 transmit; F2 adds N0' (id 8).
    EXPECT_EQ(exp.transmitting_nodes().size(), 8u);
}

TEST(Experiment, RunCoversLatestFlowAndDrain)
{
    ExperimentOptions options;
    Experiment exp(net::make_line(2, 30, 4), options);
    exp.run();
    EXPECT_GE(exp.network().now(), util::from_seconds(35.0));
}

TEST(Experiment, SummaryAndFairnessKnownScenario)
{
    ExperimentOptions options;
    options.mode = Mode::kBaseline80211;
    Experiment exp(net::make_line(2, 60, 4), options);
    exp.run();
    const auto summary = exp.summarize(0, 20.0, 60.0);
    EXPECT_GT(summary.mean_kbps, 100.0);
    EXPECT_GT(summary.mean_delay_s, 0.0);
    EXPECT_DOUBLE_EQ(exp.fairness({0}, 20.0, 60.0), 1.0);
    EXPECT_THROW(exp.summarize(9, 0, 1), std::invalid_argument);
    EXPECT_THROW(exp.throughput(9), std::invalid_argument);
    EXPECT_THROW(exp.fairness({9}, 0, 1), std::invalid_argument);
}

TEST(Experiment, UnmeasuredWindowReportsZeroSamples)
{
    ExperimentOptions options;
    Experiment exp(net::make_line(2, 30, 4), options);
    exp.run();
    const auto measured = exp.summarize(0, 10.0, 30.0);
    EXPECT_GT(measured.throughput_samples, 0);
    EXPECT_GT(measured.delay_samples, 0);
    // A window long after the drain fabricates zeros in every statistic;
    // the sample counts are what let callers tell them apart.
    const auto empty = exp.summarize(0, 500.0, 600.0);
    EXPECT_EQ(empty.throughput_samples, 0);
    EXPECT_EQ(empty.delay_samples, 0);
    EXPECT_DOUBLE_EQ(empty.mean_kbps, 0.0);
}

TEST(Sweep, UnmeasuredWindowAggregatesToZeroSeedCells)
{
    // The aggregation guard: a window no seed ever measured must land in
    // the result JSON as n=0 (missing data), not as a measured zero that
    // drags the across-seed mean down.
    ExperimentFactory factory(ScenarioSpec::line(2, 10.0), ExperimentOptions{});
    SweepConfig config;
    config.windows = {SweepWindow{"active", 6.0, 15.0, {0}},
                      SweepWindow{"after", 500.0, 600.0, {0}}};
    config.seeds = {3, 4};
    const SweepResult sweep = SweepRunner(1).run(factory, config);
    const FlowAggregate& active = sweep.windows[0].flows[0];
    const FlowAggregate& after = sweep.windows[1].flows[0];
    EXPECT_EQ(active.mean_kbps.count(), 2);
    EXPECT_EQ(after.mean_kbps.count(), 0);
    EXPECT_EQ(after.mean_delay_s.count(), 0);
    EXPECT_EQ(metric_from_stats(after.mean_kbps).n, 0);
    EXPECT_DOUBLE_EQ(metric_from_stats(after.mean_kbps).mean, 0.0);
}

TEST(DropAudit, InterceptorRunsReportSkippedNotBalanced)
{
    // A plain 802.11 run balances its ledger; a paced EZ-Flow run holds
    // packets inside the pacer (a forward interceptor), so the audit
    // stands down — and must say so via status, not by returning an
    // all-zero ledger that reads as a verified zero-traffic run.
    ExperimentOptions baseline;
    baseline.mode = Mode::kBaseline80211;
    Experiment plain(net::make_line(2, 10, 4), baseline);
    plain.run();
    const DropLedger balanced = audit_drop_accounting(plain);
    EXPECT_FALSE(balanced.skipped());
    EXPECT_EQ(balanced.status, DropLedger::Status::kBalanced);
    EXPECT_GT(balanced.generated, 0u);

    Experiment paced(net::make_line(2, 10, 4), baseline);
    const auto pacers =
        core::install_paced_ezflow(paced.network(), core::PacedEzFlowAgent::Options{});
    paced.run();
    const DropLedger skipped = audit_drop_accounting(paced);
    EXPECT_TRUE(skipped.skipped());
    EXPECT_EQ(skipped.status, DropLedger::Status::kSkippedInterceptor);
    EXPECT_EQ(skipped.generated, 0u);
    EXPECT_EQ(skipped.accounted(), 0u);
}

TEST(Experiment, EzFlowModeInstallsAgents)
{
    ExperimentOptions options;
    options.mode = Mode::kEzFlow;
    Experiment exp(net::make_line(3, 10, 4), options);
    EXPECT_NE(exp.agent(0), nullptr);
    EXPECT_NE(exp.agent(2), nullptr);
    EXPECT_EQ(exp.agent(3), nullptr);  // destination has no agent
}

TEST(Experiment, BaselineModeHasNoAgents)
{
    ExperimentOptions options;
    Experiment exp(net::make_line(3, 10, 4), options);
    EXPECT_EQ(exp.agent(0), nullptr);
}

TEST(Experiment, PenaltyModeSetsStaticWindows)
{
    ExperimentOptions options;
    options.mode = Mode::kPenalty;
    options.penalty.relay_cw = 1 << 4;
    options.penalty.q = 1.0 / 16.0;
    Experiment exp(net::make_line(3, 10, 4), options);
    auto& net = exp.network();
    EXPECT_EQ(net.node(0).mac().queue_cw_min(mac::QueueKey{1, true}), 256);
    EXPECT_EQ(net.node(1).mac().queue_cw_min(mac::QueueKey{2, false}), 16);
}

TEST(Penalty, RejectsBadConfig)
{
    net::Scenario s = net::make_line(2, 10, 4);
    core::PenaltyConfig bad;
    bad.q = 0.0;
    EXPECT_THROW(core::apply_penalty_policy(*s.network, bad), std::invalid_argument);
    bad = core::PenaltyConfig{};
    bad.relay_cw = -1;
    EXPECT_THROW(core::apply_penalty_policy(*s.network, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ezflow::analysis

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"

namespace ezflow::traffic {
namespace {

using util::kSecond;

/// Two-node network with one flow, for source/sink behaviour tests.
struct OneLink {
    net::Scenario scenario;
    net::Network& net;

    OneLink() : scenario(net::make_line(1, 1000.0, 9)), net(*scenario.network) {}
};

TEST(Cbr, GeneratesAtConfiguredRate)
{
    OneLink bed;
    // 80 kb/s with 1000 B packets -> one packet every 100 ms.
    CbrSource src(bed.net, 0, 1000, 80'000.0);
    src.activate(0, 10 * kSecond);
    bed.net.run_until(10 * kSecond);
    EXPECT_EQ(src.stats().generated, 100u);
}

TEST(Cbr, RespectsStartStop)
{
    OneLink bed;
    CbrSource src(bed.net, 0, 1000, 80'000.0);
    src.activate(2 * kSecond, 4 * kSecond);
    bed.net.run_until(10 * kSecond);
    // Active for 2 s at 10 packets/s.
    EXPECT_NEAR(static_cast<double>(src.stats().generated), 20.0, 1.0);
}

TEST(Cbr, SaturatingRateDropsAtSource)
{
    OneLink bed;
    // 2 Mb/s offered on a ~870 kb/s link: the own-traffic queue fills and
    // the source counts drops (the paper's greedy access point).
    CbrSource src(bed.net, 0, 1000, 2e6);
    src.activate(0, 5 * kSecond);
    bed.net.run_until(5 * kSecond);
    EXPECT_GT(src.stats().dropped_at_source, 0u);
    EXPECT_EQ(src.stats().generated, src.stats().accepted + src.stats().dropped_at_source);
}

TEST(Cbr, ActivateTwiceThrows)
{
    OneLink bed;
    CbrSource src(bed.net, 0, 1000, 1e5);
    src.activate(0, kSecond);
    EXPECT_THROW(src.activate(2 * kSecond, 3 * kSecond), std::logic_error);
    EXPECT_THROW(CbrSource(bed.net, 0, 1000, 0.0), std::invalid_argument);
}

TEST(Poisson, MeanRateApproximatesTarget)
{
    OneLink bed;
    PoissonSource src(bed.net, 0, 1000, 160'000.0);  // 20 pkt/s
    src.activate(0, 100 * kSecond);
    bed.net.run_until(100 * kSecond);
    EXPECT_NEAR(static_cast<double>(src.stats().generated), 2000.0, 150.0);
}

TEST(OnOff, AlternatesBurstsAndSilence)
{
    OneLink bed;
    OnOffSource src(bed.net, 0, 1000, 400'000.0, 1.0, 1.0);
    src.activate(0, 100 * kSecond);
    bed.net.run_until(100 * kSecond);
    // Peak 50 pkt/s with ~50% duty cycle: between 15% and 85% of peak.
    EXPECT_GT(src.stats().generated, 750u);
    EXPECT_LT(src.stats().generated, 4250u);
}

TEST(Cbr, ErrorCarryingTimelineMatchesAwkwardRate)
{
    // 1.7 Mb/s with 1000 B packets: the ideal interval is 4705.88 us. A
    // single truncated interval (4705 us) would overshoot the nominal
    // rate by ~1.9e-4; the error-carrying timeline must stay within
    // 0.01 % of nominal over a long run.
    OneLink bed;
    CbrSource src(bed.net, 0, 1000, 1.7e6);
    src.set_backpressure_gating(false);  // count every generation as an event
    const double duration_s = 200.0;
    src.activate(0, util::from_seconds(duration_s));
    bed.net.run_until(util::from_seconds(duration_s));
    const double realized_bps =
        static_cast<double>(src.stats().generated) * 1000.0 * 8.0 / duration_s;
    EXPECT_NEAR(realized_bps / 1.7e6, 1.0, 1e-4);
}

TEST(Cbr, BackpressureGateSkipsEventsButKeepsAccounting)
{
    // 2 Mb/s offered on a ~870 kb/s link: the own-traffic queue fills and
    // stays full, so the gated source parks on vacancy callbacks instead
    // of burning one event per nominal packet period.
    OneLink bed;
    CbrSource src(bed.net, 0, 1000, 2e6);
    src.activate(0, 5 * kSecond);
    bed.net.run_until(5 * kSecond);

    const auto& stats = src.stats();
    EXPECT_GT(stats.gated_skips, 0u);  // the gate actually engaged
    EXPECT_EQ(stats.generated, stats.accepted + stats.dropped_at_source);

    // Queue-accounting invariants, including the closed-form drops.
    net::Node& node = bed.net.node(0);
    mac::MacQueue* queue = node.own_traffic_queue(0);
    ASSERT_NE(queue, nullptr);
    EXPECT_EQ(queue->enqueued(), queue->dequeued() + static_cast<std::uint64_t>(queue->size()));
    EXPECT_EQ(queue->enqueued(), stats.accepted);
    EXPECT_EQ(queue->dropped_full(), stats.dropped_at_source);
    EXPECT_EQ(node.source_queue_drops(), stats.dropped_at_source);
}

/// Everything observable that could differ if the gated fast path and the
/// one-event-per-period reference diverged (scheduler.processed() is
/// deliberately absent: saving events is the point).
std::vector<std::uint64_t> source_run_fingerprint(net::Network& net, Sink& sink,
                                                  std::vector<Source*> sources)
{
    std::vector<std::uint64_t> print;
    print.push_back(net.channel().transmissions());
    print.push_back(net.channel().data_transmissions());
    for (int id = 0; id < net.node_count(); ++id) {
        net::Node& node = net.node(id);
        print.push_back(node.phy().frames_decoded());
        print.push_back(node.phy().frames_corrupted());
        print.push_back(node.mac().data_attempts());
        print.push_back(node.mac().successes());
        print.push_back(node.delivered());
        print.push_back(node.forwarded());
        print.push_back(node.source_queue_drops());
        for (const auto& queue : node.mac().queues().queues()) {
            print.push_back(queue->enqueued());
            print.push_back(queue->dequeued());
            print.push_back(queue->dropped_full());
        }
    }
    for (Source* source : sources) {
        print.push_back(source->stats().generated);
        print.push_back(source->stats().accepted);
        print.push_back(source->stats().dropped_at_source);
    }
    for (int flow = 0; flow < 4; ++flow) {
        try {
            const auto& rec = sink.flow(flow);
            print.push_back(rec.packets);
            print.push_back(rec.bytes);
            print.push_back(static_cast<std::uint64_t>(rec.delay_us.mean() * 1e3));
        } catch (const std::invalid_argument&) {
            break;
        }
    }
    return print;
}

/// Two saturated flows sharing one own-traffic queue at the same source
/// node (the voip_mesh shape), run gated vs ungated: the vacancy-ordered
/// wakeups must reproduce the reference interleaving exactly.
std::vector<std::uint64_t> shared_queue_fingerprint(bool gated, std::uint64_t seed,
                                                    std::uint64_t* events_out = nullptr)
{
    net::Scenario scenario = net::make_line(3, 30.0, seed);
    net::Network& net = *scenario.network;
    net.add_flow(1, scenario.flows[0].path);  // same path => same own queue
    Sink sink(net);
    sink.attach_flow(0);
    sink.attach_flow(1);
    CbrSource bulk(net, 0, 1000, 2e6);
    CbrSource second(net, 1, 200, 64'000.0);
    bulk.set_backpressure_gating(gated);
    second.set_backpressure_gating(gated);
    bulk.activate(0, 20 * kSecond);
    second.activate(0, 20 * kSecond);
    net.run_until(25 * kSecond);
    if (events_out != nullptr) *events_out = net.scheduler().processed();
    return source_run_fingerprint(net, sink, {&bulk, &second});
}

TEST(Gating, SharedQueueMatchesUngatedReferenceAcrossSeeds)
{
    for (const std::uint64_t seed : {3u, 7u, 11u, 19u, 42u}) {
        std::uint64_t events_gated = 0;
        std::uint64_t events_reference = 0;
        const auto gated = shared_queue_fingerprint(true, seed, &events_gated);
        const auto reference = shared_queue_fingerprint(false, seed, &events_reference);
        EXPECT_EQ(gated, reference) << "seed=" << seed;
        // The gate must actually save scheduler events on a saturated run.
        EXPECT_LT(events_gated, events_reference) << "seed=" << seed;
    }
}

TEST(Gating, PoissonSourceReproducesDrawSequence)
{
    // An Rng-drawing source saturating the link: closed-form accounting
    // must consume the exact same draw sequence as per-packet events.
    for (const std::uint64_t seed : {5u, 23u}) {
        std::vector<std::uint64_t> prints[2];
        for (const bool gated : {true, false}) {
            net::Scenario scenario = net::make_line(1, 30.0, seed);
            net::Network& net = *scenario.network;
            Sink sink(net);
            sink.attach_flow(0);
            PoissonSource src(net, 0, 1000, 2.5e6);
            src.set_backpressure_gating(gated);
            src.activate(0, 20 * kSecond);
            net.run_until(25 * kSecond);
            prints[gated ? 0 : 1] = source_run_fingerprint(net, sink, {&src});
        }
        EXPECT_EQ(prints[0], prints[1]) << "seed=" << seed;
    }
}

TEST(OnOff, BurstLengthsFollowTheOnDraws)
{
    // Non-saturating one-hop flow (peak 400 kb/s, 500 B packets, link
    // capacity well above), so deliveries track generations closely and
    // off-gaps (mean 5 s) are clearly separable from in-burst gaps
    // (10 ms): classify a >1 s delivery gap as a burst boundary.
    OneLink bed;
    Sink sink(bed.net);
    sink.attach_flow(0);
    OnOffSource src(bed.net, 0, 500, 400'000.0, /*mean_on_s=*/0.2, /*mean_off_s=*/5.0);
    src.activate(0, 400 * kSecond);
    bed.net.run_until(405 * kSecond);

    const auto& times = sink.flow(0).delay_series.times();
    ASSERT_GT(times.size(), 100u);
    std::vector<std::uint64_t> burst_lengths{1};
    for (std::size_t i = 1; i < times.size(); ++i) {
        if (times[i] - times[i - 1] > kSecond) burst_lengths.push_back(0);
        ++burst_lengths.back();
    }
    // The activation burst is a real on-draw, not the singleton the
    // pre-fix first-burst produced unconditionally.
    EXPECT_GE(burst_lengths.front(), 2u);
    // Burst count and mean length must match the configured on/off
    // process: ~60 cycles of ~5.2 s in 400 s, ~20 packets per 0.2 s
    // burst at 100 pkt/s (loose bounds; the run is one seeded sample).
    EXPECT_GT(burst_lengths.size(), 20u);
    EXPECT_LT(burst_lengths.size(), 130u);
    std::uint64_t total = 0;
    for (const std::uint64_t len : burst_lengths) total += len;
    const double mean_len = static_cast<double>(total) / static_cast<double>(burst_lengths.size());
    EXPECT_GT(mean_len, 5.0);
    EXPECT_LT(mean_len, 80.0);
}

TEST(Sink, RecordsDeliveriesAndDelay)
{
    OneLink bed;
    Sink sink(bed.net);
    sink.attach_flow(0);
    CbrSource src(bed.net, 0, 1000, 80'000.0);
    src.activate(0, 5 * kSecond);
    bed.net.run_until(6 * kSecond);
    const auto& rec = sink.flow(0);
    EXPECT_EQ(rec.packets, 50u);
    EXPECT_EQ(rec.bytes, 50'000u);
    // One uncontended hop takes ~9 ms.
    EXPECT_GT(rec.delay_us.mean(), 8000.0);
    EXPECT_LT(rec.delay_us.mean(), 20000.0);
    EXPECT_EQ(rec.duplicates, 0u);
    EXPECT_EQ(rec.reordered, 0u);
}

TEST(Sink, GoodputWindowed)
{
    OneLink bed;
    Sink sink(bed.net);
    sink.attach_flow(0);
    CbrSource src(bed.net, 0, 1000, 80'000.0);
    src.activate(0, 10 * kSecond);
    bed.net.run_until(10 * kSecond);
    EXPECT_NEAR(sink.goodput_kbps(0, 0, 10 * kSecond), 80.0, 4.0);
    EXPECT_DOUBLE_EQ(sink.goodput_kbps(0, 10 * kSecond, 10 * kSecond), 0.0);
}

TEST(Sink, UnknownFlowThrows)
{
    OneLink bed;
    Sink sink(bed.net);
    EXPECT_THROW(sink.flow(7), std::invalid_argument);
    EXPECT_THROW(sink.goodput_kbps(7, 0, 1), std::invalid_argument);
    sink.attach_flow(0);
    EXPECT_THROW(sink.attach_flow(0), std::invalid_argument);
}

TEST(Sink, SeparatesFlowsAtSharedDestination)
{
    // Two flows ending at the same node: records must not mix.
    net::Scenario s = net::make_testbed(0, 20, 0, 20, 11);
    net::Network& net = *s.network;
    Sink sink(net);
    sink.attach_flow(1);
    sink.attach_flow(2);
    CbrSource f2(net, 2, 1000, 50'000.0);
    f2.activate(0, 10 * kSecond);
    net.run_until(12 * kSecond);
    EXPECT_EQ(sink.flow(1).packets, 0u);
    EXPECT_GT(sink.flow(2).packets, 0u);
}

}  // namespace
}  // namespace ezflow::traffic

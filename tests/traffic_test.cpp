#include <gtest/gtest.h>

#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"

namespace ezflow::traffic {
namespace {

using util::kSecond;

/// Two-node network with one flow, for source/sink behaviour tests.
struct OneLink {
    net::Scenario scenario;
    net::Network& net;

    OneLink() : scenario(net::make_line(1, 1000.0, 9)), net(*scenario.network) {}
};

TEST(Cbr, GeneratesAtConfiguredRate)
{
    OneLink bed;
    // 80 kb/s with 1000 B packets -> one packet every 100 ms.
    CbrSource src(bed.net, 0, 1000, 80'000.0);
    src.activate(0, 10 * kSecond);
    bed.net.run_until(10 * kSecond);
    EXPECT_EQ(src.stats().generated, 100u);
}

TEST(Cbr, RespectsStartStop)
{
    OneLink bed;
    CbrSource src(bed.net, 0, 1000, 80'000.0);
    src.activate(2 * kSecond, 4 * kSecond);
    bed.net.run_until(10 * kSecond);
    // Active for 2 s at 10 packets/s.
    EXPECT_NEAR(static_cast<double>(src.stats().generated), 20.0, 1.0);
}

TEST(Cbr, SaturatingRateDropsAtSource)
{
    OneLink bed;
    // 2 Mb/s offered on a ~870 kb/s link: the own-traffic queue fills and
    // the source counts drops (the paper's greedy access point).
    CbrSource src(bed.net, 0, 1000, 2e6);
    src.activate(0, 5 * kSecond);
    bed.net.run_until(5 * kSecond);
    EXPECT_GT(src.stats().dropped_at_source, 0u);
    EXPECT_EQ(src.stats().generated, src.stats().accepted + src.stats().dropped_at_source);
}

TEST(Cbr, ActivateTwiceThrows)
{
    OneLink bed;
    CbrSource src(bed.net, 0, 1000, 1e5);
    src.activate(0, kSecond);
    EXPECT_THROW(src.activate(2 * kSecond, 3 * kSecond), std::logic_error);
    EXPECT_THROW(CbrSource(bed.net, 0, 1000, 0.0), std::invalid_argument);
}

TEST(Poisson, MeanRateApproximatesTarget)
{
    OneLink bed;
    PoissonSource src(bed.net, 0, 1000, 160'000.0);  // 20 pkt/s
    src.activate(0, 100 * kSecond);
    bed.net.run_until(100 * kSecond);
    EXPECT_NEAR(static_cast<double>(src.stats().generated), 2000.0, 150.0);
}

TEST(OnOff, AlternatesBurstsAndSilence)
{
    OneLink bed;
    OnOffSource src(bed.net, 0, 1000, 400'000.0, 1.0, 1.0);
    src.activate(0, 100 * kSecond);
    bed.net.run_until(100 * kSecond);
    // Peak 50 pkt/s with ~50% duty cycle: between 15% and 85% of peak.
    EXPECT_GT(src.stats().generated, 750u);
    EXPECT_LT(src.stats().generated, 4250u);
}

TEST(Sink, RecordsDeliveriesAndDelay)
{
    OneLink bed;
    Sink sink(bed.net);
    sink.attach_flow(0);
    CbrSource src(bed.net, 0, 1000, 80'000.0);
    src.activate(0, 5 * kSecond);
    bed.net.run_until(6 * kSecond);
    const auto& rec = sink.flow(0);
    EXPECT_EQ(rec.packets, 50u);
    EXPECT_EQ(rec.bytes, 50'000u);
    // One uncontended hop takes ~9 ms.
    EXPECT_GT(rec.delay_us.mean(), 8000.0);
    EXPECT_LT(rec.delay_us.mean(), 20000.0);
    EXPECT_EQ(rec.duplicates, 0u);
    EXPECT_EQ(rec.reordered, 0u);
}

TEST(Sink, GoodputWindowed)
{
    OneLink bed;
    Sink sink(bed.net);
    sink.attach_flow(0);
    CbrSource src(bed.net, 0, 1000, 80'000.0);
    src.activate(0, 10 * kSecond);
    bed.net.run_until(10 * kSecond);
    EXPECT_NEAR(sink.goodput_kbps(0, 0, 10 * kSecond), 80.0, 4.0);
    EXPECT_DOUBLE_EQ(sink.goodput_kbps(0, 10 * kSecond, 10 * kSecond), 0.0);
}

TEST(Sink, UnknownFlowThrows)
{
    OneLink bed;
    Sink sink(bed.net);
    EXPECT_THROW(sink.flow(7), std::invalid_argument);
    EXPECT_THROW(sink.goodput_kbps(7, 0, 1), std::invalid_argument);
    sink.attach_flow(0);
    EXPECT_THROW(sink.attach_flow(0), std::invalid_argument);
}

TEST(Sink, SeparatesFlowsAtSharedDestination)
{
    // Two flows ending at the same node: records must not mix.
    net::Scenario s = net::make_testbed(0, 20, 0, 20, 11);
    net::Network& net = *s.network;
    Sink sink(net);
    sink.attach_flow(1);
    sink.attach_flow(2);
    CbrSource f2(net, 2, 1000, 50'000.0);
    f2.activate(0, 10 * kSecond);
    net.run_until(12 * kSecond);
    EXPECT_EQ(sink.flow(1).packets, 0u);
    EXPECT_GT(sink.flow(2).packets, 0u);
}

}  // namespace
}  // namespace ezflow::traffic

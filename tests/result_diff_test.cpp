#include "analysis/result_diff.h"

#include <gtest/gtest.h>

#include "analysis/result.h"
#include "util/json.h"

namespace ezflow::analysis {
namespace {

FigureResult make_golden()
{
    FigureResult result;
    result.figure = "fig06";
    result.title = "throughput";
    result.scale = 0.05;
    result.seed = 7;
    result.seeds = 2;
    RunResult& cell = result.add_cell("scenario1 / IEEE 802.11");
    WindowResult& window = cell.add_window("F1 alone");
    window.set("F1.kbps", MetricStat{150.0, 4.0, 2});
    window.set("fairness", MetricStat{0.9, 0.01, 2});
    return result;
}

TEST(ResultDiff, IdenticalResultsPass)
{
    const FigureResult golden = make_golden();
    const DiffReport report = diff_results(golden, golden, DiffOptions{});
    EXPECT_TRUE(report.passed());
    EXPECT_EQ(report.metrics_compared, 2);
}

TEST(ResultDiff, WithinTolerancePasses)
{
    const FigureResult golden = make_golden();
    FigureResult candidate = make_golden();
    candidate.cells[0].windows[0].set("F1.kbps", MetricStat{155.0, 5.0, 2});  // +3.3%
    DiffOptions options;
    options.rel_tol = 0.05;
    EXPECT_TRUE(diff_results(golden, candidate, options).passed());
}

TEST(ResultDiff, OutOfToleranceFails)
{
    const FigureResult golden = make_golden();
    FigureResult candidate = make_golden();
    candidate.cells[0].windows[0].set("F1.kbps", MetricStat{180.0, 4.0, 2});  // +20%
    DiffOptions options;
    options.rel_tol = 0.05;
    const DiffReport report = diff_results(golden, candidate, options);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].kind, DiffFinding::Kind::kValue);
    EXPECT_NE(report.to_string().find("F1.kbps"), std::string::npos);
}

TEST(ResultDiff, AbsToleranceCoversNearZero)
{
    FigureResult golden = make_golden();
    golden.cells[0].windows[0].set("delay_s", MetricStat{0.0, 0.0, 2});
    FigureResult candidate = make_golden();
    candidate.cells[0].windows[0].set("delay_s", MetricStat{1e-12, 0.0, 2});
    DiffOptions options;
    options.rel_tol = 0.0;
    options.abs_tol = 1e-9;
    EXPECT_TRUE(diff_results(golden, candidate, options).passed());
}

TEST(ResultDiff, SamplePresenceMismatchFailsEvenInToleranceMode)
{
    // An n=0 cell is an unmeasured window whose 0.0 is a placeholder: it
    // must never pass tolerance against a small real measurement, and two
    // unmeasured cells must pass regardless of their placeholder values.
    const FigureResult golden = make_golden();
    FigureResult fabricated = make_golden();
    fabricated.cells[0].windows[0].set("F1.kbps", MetricStat{0.0, 0.0, 0});
    DiffOptions loose;
    loose.rel_tol = 1e9;  // any value comparison would pass
    const DiffReport report = diff_results(golden, fabricated, loose);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].kind, DiffFinding::Kind::kValue);
    EXPECT_NE(report.to_string().find("metrics[F1.kbps].n"), std::string::npos);
    EXPECT_NE(report.to_string().find("sample presence differs"), std::string::npos);

    FigureResult both_a = make_golden();
    FigureResult both_b = make_golden();
    both_a.cells[0].windows[0].set("F1.kbps", MetricStat{0.0, 0.0, 0});
    both_b.cells[0].windows[0].set("F1.kbps", MetricStat{123.0, 9.0, 0});
    EXPECT_TRUE(diff_results(both_a, both_b, DiffOptions{}).passed());
}

TEST(ResultDiff, MissingMetricFails)
{
    const FigureResult golden = make_golden();
    FigureResult candidate = make_golden();
    candidate.cells[0].windows[0].metrics.pop_back();  // drop "fairness"
    const DiffReport report = diff_results(golden, candidate, DiffOptions{});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].kind, DiffFinding::Kind::kMissingMetric);
}

TEST(ResultDiff, ExtraMetricFlagged)
{
    const FigureResult golden = make_golden();
    FigureResult candidate = make_golden();
    candidate.cells[0].windows[0].set("new_metric", MetricStat{1.0, 0.0, 1});
    const DiffReport report = diff_results(golden, candidate, DiffOptions{});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].kind, DiffFinding::Kind::kExtraMetric);
}

TEST(ResultDiff, ExtraWindowAndCellFlagged)
{
    const FigureResult golden = make_golden();
    FigureResult extra_window = make_golden();
    extra_window.cells[0].add_window("new window").set("m", MetricStat{1.0, 0.0, 1});
    const DiffReport window_report = diff_results(golden, extra_window, DiffOptions{});
    ASSERT_EQ(window_report.findings.size(), 1u);
    EXPECT_EQ(window_report.findings[0].kind, DiffFinding::Kind::kExtraWindow);

    FigureResult extra_cell = make_golden();
    extra_cell.add_cell("new cell");
    const DiffReport cell_report = diff_results(golden, extra_cell, DiffOptions{});
    ASSERT_EQ(cell_report.findings.size(), 1u);
    EXPECT_EQ(cell_report.findings[0].kind, DiffFinding::Kind::kExtraCell);
}

TEST(ResultDiff, MissingWindowAndCellFail)
{
    const FigureResult golden = make_golden();
    FigureResult no_window = make_golden();
    no_window.cells[0].windows.clear();
    EXPECT_EQ(diff_results(golden, no_window, DiffOptions{}).findings[0].kind,
              DiffFinding::Kind::kMissingWindow);
    FigureResult no_cell = make_golden();
    no_cell.cells.clear();
    EXPECT_EQ(diff_results(golden, no_cell, DiffOptions{}).findings[0].kind,
              DiffFinding::Kind::kMissingCell);
}

TEST(ResultDiff, MetadataMismatchFails)
{
    const FigureResult golden = make_golden();
    FigureResult candidate = make_golden();
    candidate.scale = 0.1;
    const DiffReport report = diff_results(golden, candidate, DiffOptions{});
    EXPECT_FALSE(report.passed());
    EXPECT_EQ(report.findings[0].kind, DiffFinding::Kind::kMetadata);
}

TEST(ResultDiff, BitExactCatchesUlpDrift)
{
    const FigureResult golden = make_golden();
    FigureResult candidate = make_golden();
    candidate.cells[0].windows[0].metrics[0].second.mean += 1e-13;  // within any rel_tol
    EXPECT_TRUE(diff_results(golden, candidate, DiffOptions{}).passed());
    DiffOptions exact;
    exact.bit_exact = true;
    EXPECT_FALSE(diff_results(golden, candidate, exact).passed());
    EXPECT_TRUE(diff_results(golden, golden, exact).passed());
}

TEST(ResultDiff, BitExactComparesCiAndSeedCount)
{
    const FigureResult golden = make_golden();
    FigureResult candidate = make_golden();
    candidate.cells[0].windows[0].metrics[0].second.n = 3;
    DiffOptions exact;
    exact.bit_exact = true;
    EXPECT_FALSE(diff_results(golden, candidate, exact).passed());
}

TEST(ResultDiff, JsonRoundTripPreservesDiffEquality)
{
    const FigureResult golden = make_golden();
    const FigureResult reloaded =
        FigureResult::from_json(util::Json::parse(golden.to_json().dump()));
    DiffOptions exact;
    exact.bit_exact = true;
    EXPECT_TRUE(diff_results(golden, reloaded, exact).passed());
    EXPECT_EQ(golden.to_json().dump(), reloaded.to_json().dump());
}

TEST(ResultDiff, CsvHasOneRowPerMetric)
{
    const std::string csv = make_golden().to_csv();
    EXPECT_NE(csv.find("figure,cell,window,metric,mean,ci95,n"), std::string::npos);
    EXPECT_NE(csv.find("fig06,scenario1 / IEEE 802.11,F1 alone,F1.kbps,150,4,2"),
              std::string::npos);
}

}  // namespace
}  // namespace ezflow::analysis

#pragma once

// Shared per-node run fingerprint for equivalence tests: every counter
// that can observably differ when two channel/MAC fast paths diverge.
// channel_cull_test.cpp and grid_test.cpp both compare runs with this,
// so the two suites enforce one notion of equivalence.

#include <cstdint>
#include <vector>

#include "analysis/experiment.h"
#include "net/network.h"

namespace ezflow::testutil {

/// `include_processed = false` drops the scheduler event count: shards=1
/// vs shards=K runs differ in bookkeeping events (one tracer sweep chain
/// per shard) while every radio/MAC/delivery counter stays identical.
inline std::vector<std::uint64_t> experiment_fingerprint(analysis::Experiment& experiment,
                                                         bool include_processed = true)
{
    net::Network& network = experiment.network();
    std::vector<std::uint64_t> print;
    print.push_back(network.total_transmissions());
    print.push_back(network.total_data_transmissions());
    if (include_processed) print.push_back(network.total_processed());
    for (int id = 0; id < network.node_count(); ++id) {
        const net::Node& node = network.node(id);
        print.push_back(node.phy().frames_decoded());
        print.push_back(node.phy().frames_corrupted());
        print.push_back(node.phy().frames_missed_busy());
        print.push_back(node.mac().data_attempts());
        print.push_back(node.mac().retransmissions());
        print.push_back(node.mac().successes());
        print.push_back(node.mac().acks_sent());
        print.push_back(node.delivered());
        print.push_back(node.forwarded());
    }
    return print;
}

}  // namespace ezflow::testutil

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "experiment_fingerprint.h"
#include "phy/channel.h"
#include "phy/link_table.h"
#include "phy/models.h"
#include "phy/propagation.h"
#include "phy/rate_manager.h"
#include "sim/scheduler.h"

// Pluggable-PHY model tests: the degenerate-parameter equivalence suite
// (every model family at its reference point must reproduce the reference
// path exactly), the Rayleigh envelope distribution of the Jakes process,
// and the cumulative-SINR capture semantics the interference ledger adds.
namespace ezflow::phy {
namespace {

using testutil::experiment_fingerprint;

// ------------------------------------------------------------ LinkTable

TEST(LinkTable, InsertFindOverwrite)
{
    LinkTable<int> table;
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(table.find(1, 2), nullptr);
    table.insert_or_assign(1, 2, 10);
    table.insert_or_assign(2, 1, 20);  // directed: distinct from (1,2)
    ASSERT_NE(table.find(1, 2), nullptr);
    ASSERT_NE(table.find(2, 1), nullptr);
    EXPECT_EQ(*table.find(1, 2), 10);
    EXPECT_EQ(*table.find(2, 1), 20);
    table.insert_or_assign(1, 2, 30);
    EXPECT_EQ(*table.find(1, 2), 30);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.find(3, 4), nullptr);
}

TEST(LinkTable, GrowsPastInitialCapacityAndKeepsEveryEntry)
{
    LinkTable<int> table;
    const int n = 500;  // forces several doublings from the initial 16
    for (int tx = 0; tx < n; ++tx) table.insert_or_assign(tx, tx + 1, tx * 7);
    EXPECT_EQ(table.size(), static_cast<std::size_t>(n));
    for (int tx = 0; tx < n; ++tx) {
        ASSERT_NE(table.find(tx, tx + 1), nullptr) << tx;
        EXPECT_EQ(*table.find(tx, tx + 1), tx * 7);
    }
    int visited = 0;
    table.for_each([&](net::NodeId tx, net::NodeId rx, int value) {
        EXPECT_EQ(rx, tx + 1);
        EXPECT_EQ(value, tx * 7);
        ++visited;
    });
    EXPECT_EQ(visited, n);
}

TEST(LinkTable, RejectsNegativeNodeIds)
{
    LinkTable<int> table;
    EXPECT_THROW(table.insert_or_assign(-1, 2, 0), std::invalid_argument);
}

// --------------------------------------- degenerate-parameter equivalence

std::vector<std::uint64_t> line_fingerprint(const PhyModelConfig& models, std::uint64_t seed)
{
    analysis::ScenarioSpec spec = analysis::ScenarioSpec::line(4, /*duration_s=*/12.0);
    spec.models = models;
    analysis::ExperimentFactory factory(spec, analysis::ExperimentOptions{});
    std::unique_ptr<analysis::Experiment> experiment = factory.make(seed);
    experiment->run();
    return experiment_fingerprint(*experiment);
}

TEST(PhyModelEquivalence, JakesZeroDopplerMatchesReference)
{
    // Jakes with zero Doppler is a static unit-gain channel over the
    // reference two-ray law: the full dynamic-model plumbing runs, yet
    // every counter must match the reference path exactly.
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
        PhyModelConfig fading;
        fading.propagation = PhyModelConfig::Propagation::kJakes;
        fading.jakes_doppler_hz = 0.0;
        EXPECT_EQ(line_fingerprint(fading, seed), line_fingerprint(PhyModelConfig{}, seed))
            << "seed " << seed;
    }
}

TEST(PhyModelEquivalence, SinrLedgerWithoutNoiseMatchesReference)
{
    // Cumulative SINR with a zero noise floor and the default 10 dB
    // threshold evaluates the exact reference capture expression (the
    // 1 Mb/s decode floor sits below the capture threshold), so every
    // capture decision — and therefore the whole run — is identical.
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
        PhyModelConfig sinr;
        sinr.interference = PhyModelConfig::Interference::kSinrLedger;
        EXPECT_EQ(line_fingerprint(sinr, seed), line_fingerprint(PhyModelConfig{}, seed))
            << "seed " << seed;
    }
}

TEST(PhyModelEquivalence, ExplicitFixedRateManagerMatchesReference)
{
    // Installing FixedRate at the PHY default rate stamps every data frame
    // explicitly; airtime and capture must not move.
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
        analysis::ScenarioSpec spec = analysis::ScenarioSpec::line(4, /*duration_s=*/12.0);
        analysis::ExperimentFactory factory(spec, analysis::ExperimentOptions{});
        std::unique_ptr<analysis::Experiment> experiment = factory.make(seed);
        experiment->network().channel().set_rate_manager(std::make_unique<FixedRate>(1'000'000));
        experiment->run();
        EXPECT_EQ(experiment_fingerprint(*experiment),
                  line_fingerprint(PhyModelConfig{}, seed))
            << "seed " << seed;
    }
}

// ------------------------------------------------- Jakes/Rayleigh process

TEST(JakesFading, PowerGainIsRayleighDistributed)
{
    // |h|^2 of a Rayleigh channel is exponential with mean 1: check the
    // mean, the second moment (E[X^2] = 2) and the median (ln 2) over many
    // independent links and sample instants.
    JakesFading model(std::make_unique<TwoRayReference>(), /*doppler_hz=*/10.0, /*seed=*/99);
    std::vector<double> samples;
    for (net::NodeId link = 0; link < 16; ++link)
        for (int i = 0; i < 512; ++i)
            samples.push_back(model.power_gain(link, link + 100, i * 13'000));
    double mean = 0.0;
    double second = 0.0;
    std::size_t below_median = 0;
    for (double g : samples) {
        mean += g;
        second += g * g;
        if (g <= std::log(2.0)) ++below_median;
    }
    mean /= static_cast<double>(samples.size());
    second /= static_cast<double>(samples.size());
    const double median_frac =
        static_cast<double>(below_median) / static_cast<double>(samples.size());
    EXPECT_NEAR(mean, 1.0, 0.1);
    EXPECT_NEAR(second, 2.0, 0.4);
    EXPECT_NEAR(median_frac, 0.5, 0.07);
}

TEST(JakesFading, DeterministicPerSeedAndLink)
{
    JakesFading a(std::make_unique<TwoRayReference>(), 10.0, 7);
    JakesFading b(std::make_unique<TwoRayReference>(), 10.0, 7);
    JakesFading c(std::make_unique<TwoRayReference>(), 10.0, 8);
    EXPECT_DOUBLE_EQ(a.power_gain(0, 1, 5000), b.power_gain(0, 1, 5000));
    EXPECT_NE(a.power_gain(0, 1, 5000), c.power_gain(0, 1, 5000));  // seed matters
    EXPECT_NE(a.power_gain(0, 1, 5000), a.power_gain(1, 0, 5000));  // direction matters
}

TEST(JakesFading, ZeroDopplerReturnsBasePowerBitForBit)
{
    JakesFading model(std::make_unique<TwoRayReference>(), 0.0, 7);
    TwoRayReference reference;
    for (double d : {1.0, 150.0, 250.0, 420.0})
        EXPECT_EQ(model.link_power_w(0, 1, 1.0, d, 123'456),
                  reference.rx_power_w(1.0, d));
    EXPECT_TRUE(model.time_invariant());
}

// --------------------------------------------- cumulative-SINR semantics

class NullListener final : public PhyListener {
public:
    void phy_busy_changed(bool) override {}
    void phy_frame_decoded(const Frame& frame) override { decoded.push_back(frame.mac_seq); }
    void phy_tx_done(const Frame&) override {}
    std::vector<std::uint32_t> decoded;
};

struct SinrBed {
    sim::Scheduler scheduler;
    Channel channel;
    std::vector<std::unique_ptr<NodePhy>> phys;
    std::vector<std::unique_ptr<NullListener>> listeners;

    explicit SinrBed(PhyParams params) : channel(scheduler, util::Rng(7), params) {}

    NodePhy& add(double x)
    {
        const auto id = static_cast<net::NodeId>(phys.size());
        phys.push_back(std::make_unique<NodePhy>(id, Position{x, 0.0}, scheduler));
        listeners.push_back(std::make_unique<NullListener>());
        channel.attach(*phys.back());
        phys.back()->set_listener(listeners.back().get());
        return *phys.back();
    }

    static Frame data(net::NodeId from, net::NodeId to, std::int64_t rate_bps = 0)
    {
        Frame f;
        f.type = FrameType::kData;
        f.tx_node = from;
        f.rx_node = to;
        f.mac_seq = 42;
        f.bitrate_bps = rate_bps;
        f.has_packet = true;
        f.packet.bytes = 1000;
        return f;
    }
};

// Geometry shared by the mid-frame capture tests: receiver R at 200 m from
// the sender (power 1/200^4 = 6.25e-10 W) and a hidden interferer whose
// power at R is 12x weaker — above the 10 dB capture ratio, so the
// reference model lets R keep the frame. The interferer starts mid-frame.
constexpr double kSenderX = 0.0;
constexpr double kReceiverX = 200.0;
const double kInterfererX = kReceiverX + 200.0 * std::pow(12.0, 0.25);  // ~372 m from R

TEST(SinrCapture, MidFrameInterfererSurvivesReferenceCapture)
{
    SinrBed bed{PhyParams{}};
    NodePhy& sender = bed.add(kSenderX);
    bed.add(kReceiverX);
    NodePhy& interferer = bed.add(kInterfererX);
    sender.start_tx(SinrBed::data(0, 1));
    bed.scheduler.schedule_at(1000, [&] { interferer.start_tx(SinrBed::data(2, 1)); });
    bed.scheduler.run();
    // Reference capture: 6.25e-10 >= 10 x 5.2e-11, the lock survives.
    EXPECT_EQ(bed.listeners[1]->decoded.size(), 1u);
    EXPECT_EQ(bed.phys[1]->frames_corrupted(), 0u);
}

TEST(SinrCapture, MidFrameInterfererPlusNoiseCorruptsUnderSinrLedger)
{
    // Same geometry, SINR mode with a 2e-11 W noise floor: at lock the
    // frame clears 10 x noise easily, but when the interferer arrives the
    // cumulative test 6.25e-10 < 10 x (5.2e-11 + 2e-11) fails — the
    // mid-frame interferer corrupts a reception the reference model kept.
    PhyParams params;
    params.noise_floor_w = 2e-11;
    SinrBed bed{params};
    bed.channel.set_interference_mode(PhyModelConfig::Interference::kSinrLedger);
    NodePhy& sender = bed.add(kSenderX);
    bed.add(kReceiverX);
    NodePhy& interferer = bed.add(kInterfererX);
    sender.start_tx(SinrBed::data(0, 1));
    bed.scheduler.schedule_at(1000, [&] { interferer.start_tx(SinrBed::data(2, 1)); });
    bed.scheduler.run();
    EXPECT_EQ(bed.listeners[1]->decoded.size(), 0u);
    EXPECT_EQ(bed.phys[1]->frames_corrupted(), 1u);
}

TEST(SinrCapture, StrongMidFrameInterfererCorruptsInBothModes)
{
    // Interferer only 5x weaker than the locked frame: below the 10 dB
    // capture ratio, so reference and SINR mode agree on corruption.
    for (const bool sinr : {false, true}) {
        SinrBed bed{PhyParams{}};
        if (sinr) bed.channel.set_interference_mode(PhyModelConfig::Interference::kSinrLedger);
        NodePhy& sender = bed.add(kSenderX);
        bed.add(kReceiverX);
        NodePhy& interferer = bed.add(kReceiverX + 200.0 * std::pow(5.0, 0.25));
        sender.start_tx(SinrBed::data(0, 1));
        bed.scheduler.schedule_at(1000, [&] { interferer.start_tx(SinrBed::data(2, 1)); });
        bed.scheduler.run();
        EXPECT_EQ(bed.listeners[1]->decoded.size(), 0u) << "sinr=" << sinr;
        EXPECT_EQ(bed.phys[1]->frames_corrupted(), 1u) << "sinr=" << sinr;
    }
}

TEST(SinrCapture, RateDecodeFloorBindsAtHighRates)
{
    // 200 m link, 5e-11 W noise: SNR = 12.5 (11 dB). A 1 Mb/s frame needs
    // max(10 dB capture, 4 dB floor) = 10x and decodes; an 11 Mb/s frame
    // needs max(10 dB, 13 dB) = 19.95x and is corrupted by noise alone.
    PhyParams params;
    params.noise_floor_w = 5e-11;
    for (const std::int64_t rate : {std::int64_t{1'000'000}, std::int64_t{11'000'000}}) {
        SinrBed bed{params};
        bed.channel.set_interference_mode(PhyModelConfig::Interference::kSinrLedger);
        NodePhy& sender = bed.add(kSenderX);
        bed.add(kReceiverX);
        sender.start_tx(SinrBed::data(0, 1, rate));
        bed.scheduler.run();
        const bool should_decode = rate == 1'000'000;
        EXPECT_EQ(bed.listeners[1]->decoded.size(), should_decode ? 1u : 0u) << rate;
    }
}

TEST(InterferenceLedger, TracksActivePowerAndSnapsToZero)
{
    SinrBed bed{PhyParams{}};
    NodePhy& sender = bed.add(kSenderX);
    NodePhy& receiver = bed.add(kReceiverX);
    sender.start_tx(SinrBed::data(0, 1));
    EXPECT_GT(receiver.interference_ledger_w(), 0.0);
    bed.scheduler.run();
    EXPECT_EQ(receiver.interference_ledger_w(), 0.0);  // exactly quiet
}

// ----------------------------------------------------------- rate manager

TEST(Minstrel, WalksDownALinkThatCannotSustainHighRates)
{
    MinstrelRate minstrel;
    // Optimistic start: the first attempt tries the top rate.
    EXPECT_EQ(minstrel.bitrate_bps(0, 1), 11'000'000);
    minstrel.report(0, 1, false);
    // Fail everything above 1 Mb/s, succeed at 1 Mb/s: the EWMA walks the
    // best-throughput estimate down to the only sustainable rate.
    for (int i = 0; i < 200; ++i) {
        const std::int64_t rate = minstrel.bitrate_bps(0, 1);
        minstrel.report(0, 1, rate == 1'000'000);
    }
    EXPECT_EQ(minstrel.best_rate_bps(0, 1), 1'000'000);
    // An untouched link is unaffected (per-link state).
    EXPECT_EQ(minstrel.bitrate_bps(5, 6), 11'000'000);
}

TEST(Minstrel, ProbesNonBestRatesPeriodically)
{
    MinstrelRate minstrel(/*probe_period=*/5);
    for (int i = 0; i < 40; ++i) {
        const std::int64_t rate = minstrel.bitrate_bps(0, 1);
        minstrel.report(0, 1, rate == 1'000'000);
    }
    ASSERT_EQ(minstrel.best_rate_bps(0, 1), 1'000'000);
    // Steady state: in any 5 consecutive decisions, exactly one probes a
    // non-best rate.
    int probes = 0;
    for (int i = 0; i < 20; ++i) {
        const std::int64_t rate = minstrel.bitrate_bps(0, 1);
        if (rate != 1'000'000) ++probes;
        minstrel.report(0, 1, rate == 1'000'000);
    }
    EXPECT_EQ(probes, 4);
}

// --------------------------------------------------------- shared radius

TEST(ConflictRadius, IsTheMaxOfAllInteractionRanges)
{
    PhyParams params;
    EXPECT_DOUBLE_EQ(params.conflict_radius_m(), 550.0);
    params.interference_range_m = 800.0;
    EXPECT_DOUBLE_EQ(params.conflict_radius_m(), 800.0);
    params.tx_range_m = 900.0;
    EXPECT_DOUBLE_EQ(params.conflict_radius_m(), 900.0);
}

}  // namespace
}  // namespace ezflow::phy

// The unified `ezflow` scenario-runner CLI. All logic lives in the
// library (src/cli/); this translation unit only exists so the binary
// has a main.

#include "cli/app.h"

int main(int argc, char** argv)
{
    return ezflow::cli::run_app(argc, argv);
}

// bench_report: run google-benchmark binaries and merge their JSON output
// into one machine-readable perf report (the committed BENCH_<n>.json
// trajectory files and the CI perf-smoke artifact).
//
//   bench_report --out=BENCH.json [--label=STR] [--baseline=FILE]
//                [--extra=FILE] <bench-bin>...
//
// Each benchmark binary is executed with --benchmark_out (JSON); the
// per-benchmark records (times, items/s, user counters) are collected
// under "benchmarks". With --baseline, the baseline report's benchmarks
// are embedded under "baseline" and matching names gain an "improvement"
// entry with the items/s ratio (after / before) — that is how a report
// documents a speedup against a pinned earlier measurement. --extra
// merges the top-level members of a JSON file into the report (e.g.
// externally timed end-to-end wall times).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/json.h"

namespace {

using ezflow::util::Json;

std::string read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string base_name(const std::string& path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// One benchmark record from google-benchmark's JSON: keep the name and
/// timing fields, and gather every other numeric member (user counters
/// like events_per_s) under "counters".
Json condense_benchmark(const Json& bench, const std::string& binary)
{
    static const std::set<std::string> timing = {"real_time", "cpu_time", "iterations",
                                                 "items_per_second"};
    Json out = Json::object();
    const Json* name = bench.find("name");
    out.set("name", name != nullptr ? name->as_string() : "?");
    out.set("binary", binary);
    for (const auto& [key, value] : bench.members()) {
        if (timing.count(key) != 0 && value.is_number()) out.set(key, value);
        if (key == "time_unit" && value.is_string()) out.set(key, value);
    }
    Json counters = Json::object();
    for (const auto& [key, value] : bench.members()) {
        if (!value.is_number() || timing.count(key) != 0) continue;
        if (key == "family_index" || key == "per_family_instance_index" ||
            key == "repetitions" || key == "repetition_index" || key == "threads")
            continue;
        counters.set(key, value);
    }
    if (counters.size() > 0) out.set("counters", counters);
    return out;
}

const Json* find_benchmark(const Json& report, const std::string& name)
{
    const Json* benchmarks = report.find("benchmarks");
    if (benchmarks == nullptr || !benchmarks->is_array()) return nullptr;
    for (const Json& bench : benchmarks->elements()) {
        const Json* bench_name = bench.find("name");
        if (bench_name != nullptr && bench_name->is_string() && bench_name->as_string() == name)
            return &bench;
    }
    return nullptr;
}

double number_or(const Json* value, double fallback)
{
    return value != nullptr && value->is_number() ? value->as_number() : fallback;
}

int run_report(const ezflow::util::Cli& cli)
{
    const std::string out_path = cli.get("out", "");
    if (out_path.empty() || cli.positional().empty()) {
        std::fprintf(stderr,
                     "usage: bench_report --out=FILE [--label=STR] [--baseline=FILE] "
                     "<bench-binary> [...]\n");
        return 2;
    }

    Json report = Json::object();
    report.set("schema", "ezflow-bench-report-v1");
    const std::string label = cli.get("label", "");
    if (!label.empty()) report.set("label", label);

    Json benchmarks = Json::array();
    bool context_written = false;
    Json context = Json::object();
    for (std::size_t i = 0; i < cli.positional().size(); ++i) {
        const std::string& binary = cli.positional()[i];
        const std::string raw_path = out_path + ".raw" + std::to_string(i) + ".json";
        const std::string command = "\"" + binary + "\" --benchmark_out=\"" + raw_path +
                                    "\" --benchmark_out_format=json";
        std::fprintf(stderr, "[bench_report] %s\n", command.c_str());
        if (std::system(command.c_str()) != 0) {
            std::fprintf(stderr, "bench_report: '%s' failed\n", binary.c_str());
            return 1;
        }
        const Json raw = Json::parse(read_file(raw_path));
        std::remove(raw_path.c_str());
        if (!context_written) {
            const Json* raw_context = raw.find("context");
            if (raw_context != nullptr) {
                for (const char* key : {"date", "num_cpus", "mhz_per_cpu", "library_build_type"}) {
                    const Json* value = raw_context->find(key);
                    if (value != nullptr) context.set(key, *value);
                }
                context_written = true;
            }
        }
        const Json* raw_benchmarks = raw.find("benchmarks");
        if (raw_benchmarks == nullptr || !raw_benchmarks->is_array()) {
            std::fprintf(stderr, "bench_report: no benchmarks in %s output\n", binary.c_str());
            return 1;
        }
        for (const Json& bench : raw_benchmarks->elements())
            benchmarks.push_back(condense_benchmark(bench, base_name(binary)));
    }
    report.set("context", context);
    report.set("benchmarks", benchmarks);

    const std::string extra_path = cli.get("extra", "");
    if (!extra_path.empty()) {
        const Json extra = Json::parse(read_file(extra_path));
        for (const auto& [key, value] : extra.members()) report.set(key, value);
    }

    const std::string baseline_path = cli.get("baseline", "");
    if (!baseline_path.empty()) {
        const Json baseline = Json::parse(read_file(baseline_path));
        report.set("baseline", baseline);
        Json improvement = Json::object();
        for (const Json& bench : benchmarks.elements()) {
            const std::string& name = bench.find("name")->as_string();
            const Json* before = find_benchmark(baseline, name);
            if (before == nullptr) continue;
            Json entry = Json::object();
            const double items_before = number_or(before->find("items_per_second"), 0.0);
            const double items_after = number_or(bench.find("items_per_second"), 0.0);
            if (items_before > 0.0 && items_after > 0.0)
                entry.set("items_per_second_ratio", items_after / items_before);
            // Fewer scheduler events for the same simulated work is the
            // point of the event-collapse refactor: report the shrink.
            const Json* counters_before = before->find("counters");
            const Json* counters_after = bench.find("counters");
            if (counters_before != nullptr && counters_after != nullptr) {
                const double events_before = number_or(counters_before->find("events"), 0.0);
                const double events_after = number_or(counters_after->find("events"), 0.0);
                if (events_before > 0.0 && events_after > 0.0)
                    entry.set("events_shrink", events_before / events_after);
            }
            if (entry.size() > 0) improvement.set(name, entry);
        }
        report.set("improvement", improvement);
    }

    std::ofstream out(out_path, std::ios::binary);
    out << report.dump() << "\n";
    out.flush();
    if (!out) {
        std::fprintf(stderr, "bench_report: failed to write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("[bench_report] wrote %s (%zu benchmarks)\n", out_path.c_str(),
                benchmarks.size());
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    try {
        return run_report(ezflow::util::Cli(argc, argv));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_report: %s\n", e.what());
        return 1;
    }
}

#include "util/table.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ezflow::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty()) throw std::invalid_argument("Table: header must have columns");
}

void Table::add_row(std::vector<std::string> cells)
{
    if (cells.size() != header_.size())
        throw std::invalid_argument("Table::add_row: wrong number of cells");
    rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string Table::to_string() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " ");
            if (c == 0)
                os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
            else
                os << std::right << std::setw(static_cast<int>(width[c])) << row[c];
            os << " |";
        }
        os << '\n';
    };
    emit_row(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        os << (c == 0 ? "|" : "") << std::string(width[c] + 3, '-') << (c + 1 == header_.size() ? "|\n" : "");
    }
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

}  // namespace ezflow::util

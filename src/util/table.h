#pragma once

#include <string>
#include <vector>

namespace ezflow::util {

/// Plain-text table formatter used by the benchmark harnesses to print the
/// rows the paper's tables report. Columns are right-aligned except the
/// first, which is left-aligned (row label).
class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Convenience: format a double with the given precision.
    static std::string num(double value, int precision = 1);

    /// Render with column separators and a header rule.
    std::string to_string() const;

    std::size_t rows() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace ezflow::util

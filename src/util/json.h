#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ezflow::util {

/// Minimal JSON document: the machine-readable side of the result
/// pipeline (`ezflow run --out=...` emits it, `ezflow diff` reads it
/// back). Design constraints that rule out a third-party library:
///  * object keys keep insertion order, so dumps are byte-stable and the
///    CI determinism gate can compare outputs byte-for-byte;
///  * doubles round-trip exactly (shortest representation that parses
///    back to the same bits), so a dump -> parse -> dump cycle is the
///    identity and bit-exact diffs are meaningful.
class Json {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Json() : type_(Type::kNull) {}
    Json(bool value) : type_(Type::kBool), bool_(value) {}
    Json(double value) : type_(Type::kNumber), number_(value) {}
    Json(int value) : type_(Type::kNumber), number_(value) {}
    Json(std::int64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
    Json(std::uint64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
    Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
    Json(const char* value) : type_(Type::kString), string_(value) {}

    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    /// Typed accessors; throw std::runtime_error on a type mismatch.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;

    /// Array element count or object member count (0 for scalars).
    std::size_t size() const;

    // -- Array interface --------------------------------------------------
    void push_back(Json value);
    const Json& at(std::size_t index) const;
    const std::vector<Json>& elements() const { return elements_; }

    // -- Object interface (insertion-ordered) -----------------------------
    /// Insert or overwrite a member; returns *this for chaining.
    Json& set(const std::string& key, Json value);
    /// Member lookup; nullptr when absent (or when not an object).
    const Json* find(const std::string& key) const;
    const std::vector<std::pair<std::string, Json>>& members() const { return members_; }

    /// Serialize. `indent` > 0 pretty-prints with that many spaces per
    /// level; 0 emits the compact single-line form.
    std::string dump(int indent = 2) const;

    /// Parse a complete document (trailing garbage is an error). Throws
    /// std::runtime_error with a byte offset on malformed input.
    static Json parse(const std::string& text);

    /// Exact-round-trip rendering of a double (shortest of %.15g/%.16g/
    /// %.17g that parses back to the same value); "1e99"-style exponents,
    /// never inf/nan (serialized as null per JSON).
    static std::string number_to_string(double value);

private:
    void dump_to(std::string& out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> elements_;
    std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace ezflow::util

#include "util/log.h"

#include <iostream>

namespace ezflow::util {

LogLevel Log::level_ = LogLevel::kOff;

LogLevel Log::level() { return level_; }

void Log::set_level(LogLevel level) { level_ = level; }

LogLevel Log::parse_level(const std::string& name)
{
    if (name == "off") return LogLevel::kOff;
    if (name == "error") return LogLevel::kError;
    if (name == "warn") return LogLevel::kWarn;
    if (name == "info") return LogLevel::kInfo;
    if (name == "debug") return LogLevel::kDebug;
    if (name == "trace") return LogLevel::kTrace;
    return LogLevel::kInfo;
}

void Log::write(LogLevel level, SimTime now, const std::string& message)
{
    if (level_ < level) return;
    if (now >= 0)
        std::cerr << "[" << to_seconds(now) << "s] " << message << '\n';
    else
        std::cerr << message << '\n';
}

}  // namespace ezflow::util

#pragma once

#include <map>
#include <string>
#include <vector>

namespace ezflow::util {

/// Tiny command-line flag parser for the examples and bench harnesses.
/// Accepts `--name=value` pairs and bare `--switch` flags (true); anything
/// else is collected as a positional argument.
class Cli {
public:
    Cli(int argc, const char* const* argv);

    bool has(const std::string& name) const;
    std::string get(const std::string& name, const std::string& fallback) const;
    double get_double(const std::string& name, double fallback) const;
    int get_int(const std::string& name, int fallback) const;
    bool get_bool(const std::string& name, bool fallback) const;

    const std::vector<std::string>& positional() const { return positional_; }
    const std::string& program() const { return program_; }
    /// All parsed `--name=value` flags (switches carry the value "true").
    const std::map<std::string, std::string>& flags() const { return flags_; }

private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

}  // namespace ezflow::util

#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace ezflow::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x);

    std::int64_t count() const { return count_; }
    double mean() const;
    /// Sample variance (n-1 denominator). Zero for fewer than two samples.
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

    void reset();

private:
    std::int64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// A (time, value) series with summary helpers; used for buffer traces,
/// windowed throughput, contention-window evolution, etc.
class TimeSeries {
public:
    void add(SimTime t, double value);

    std::size_t size() const { return times_.size(); }
    bool empty() const { return times_.empty(); }
    const std::vector<SimTime>& times() const { return times_; }
    const std::vector<double>& values() const { return values_; }

    /// Mean of values with time >= from and time < to.
    double mean_between(SimTime from, SimTime to) const;
    /// Max of values with time >= from and time < to (0 when no samples).
    double max_between(SimTime from, SimTime to) const;
    /// Standard deviation of values in [from, to).
    double stddev_between(SimTime from, SimTime to) const;
    /// Number of samples with time >= from and time < to. The window
    /// helpers above return 0.0 for an empty window — indistinguishable
    /// from a genuine zero — so callers that must tell "no data" from
    /// "measured zero" check this first.
    std::int64_t count_between(SimTime from, SimTime to) const;

private:
    std::vector<SimTime> times_;
    std::vector<double> values_;
};

/// Percentile of a sample set (linear interpolation, p in [0,100]).
double percentile(std::vector<double> values, double p);

/// Half-width of the two-sided 95% confidence interval of the mean:
/// t_{0.975, n-1} * stddev / sqrt(n). Student-t critical values are used
/// for the small seed counts typical of sweeps (n <= 30), the normal
/// approximation beyond. Zero for fewer than two samples.
double ci95_halfwidth(const RunningStats& stats);

}  // namespace ezflow::util

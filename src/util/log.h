#pragma once

#include <sstream>
#include <string>

#include "util/units.h"

namespace ezflow::util {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global simulator log. Off by default so tests/benches stay quiet;
/// examples turn it up with --log=debug. Not thread-safe by design —
/// the simulator is single-threaded (and deterministic because of it).
class Log {
public:
    static LogLevel level();
    static void set_level(LogLevel level);
    static LogLevel parse_level(const std::string& name);

    /// Emit one line at `level`, stamped with the current simulated time
    /// (pass a negative time to omit the stamp).
    static void write(LogLevel level, SimTime now, const std::string& message);

private:
    static LogLevel level_;
};

#define EZF_LOG(lvl, now, expr)                                               \
    do {                                                                      \
        if (::ezflow::util::Log::level() >= (lvl)) {                          \
            std::ostringstream ezf_log_os;                                    \
            ezf_log_os << expr;                                               \
            ::ezflow::util::Log::write((lvl), (now), ezf_log_os.str());       \
        }                                                                     \
    } while (false)

}  // namespace ezflow::util

#pragma once

#include <cstdint>

// Basic simulation units. The simulator clock is an integer count of
// microseconds: every 802.11b timing constant (20 us slot, 10 us SIFS,
// 192 us PLCP preamble, 8 us per byte at 1 Mb/s) is an exact multiple of
// 1 us, so integer time avoids floating-point drift in event ordering.
namespace ezflow::util {

/// Simulation time in microseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Shared by the propagation and topology geometry (C++17 has no
/// std::numbers::pi).
inline constexpr double kPi = 3.14159265358979323846;

/// Convert a microsecond timestamp to (floating) seconds, for reporting.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / static_cast<double>(kSecond); }

/// Convert seconds to the integer microsecond clock (truncating).
constexpr SimTime from_seconds(double s) { return static_cast<SimTime>(s * static_cast<double>(kSecond)); }

/// Throughput helper: bits delivered over a duration, in kilobits/second.
constexpr double kbps(std::int64_t bits, SimTime duration)
{
    if (duration <= 0) return 0.0;
    return static_cast<double>(bits) / (static_cast<double>(duration) / 1000.0);
}

}  // namespace ezflow::util

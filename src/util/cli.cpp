#include "util/cli.h"

#include <stdexcept>

namespace ezflow::util {

Cli::Cli(int argc, const char* const* argv)
{
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        arg.erase(0, 2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else {
            flags_[arg] = "true";
        }
    }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const
{
    const auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

double Cli::get_double(const std::string& name, double fallback) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    return std::stod(it->second);
}

int Cli::get_int(const std::string& name, int fallback) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    return std::stoi(it->second);
}

bool Cli::get_bool(const std::string& name, bool fallback) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes" || it->second == "on";
}

}  // namespace ezflow::util

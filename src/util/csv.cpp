#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace ezflow::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size())
{
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
    add_row(header);
}

void CsvWriter::add_row(const std::vector<double>& cells)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream os;
        os << v;
        text.push_back(os.str());
    }
    add_row(text);
}

void CsvWriter::add_row(const std::vector<std::string>& cells)
{
    if (cells.size() != columns_) throw std::invalid_argument("CsvWriter: wrong column count");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) out_ << ',';
        out_ << cells[i];
    }
    out_ << '\n';
}

}  // namespace ezflow::util

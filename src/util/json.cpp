#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ezflow::util {

namespace {

[[noreturn]] void type_error(const char* wanted)
{
    throw std::runtime_error(std::string("Json: value is not ") + wanted);
}

void append_escaped(std::string& out, const std::string& s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

/// Recursive-descent parser over a raw byte range.
class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    Json parse_document()
    {
        Json value = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what)
    {
        throw std::runtime_error("Json::parse: " + what + " at offset " + std::to_string(pos_));
    }

    void skip_ws()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* literal)
    {
        std::size_t n = 0;
        while (literal[n] != '\0') ++n;
        if (text_.compare(pos_, n, literal) != 0) return false;
        pos_ += n;
        return true;
    }

    // Deep enough for any real result document, shallow enough that a
    // corrupt/adversarial file fails cleanly instead of overflowing the
    // parser's recursion stack.
    static constexpr int kMaxDepth = 256;

    Json parse_value()
    {
        if (++depth_ > kMaxDepth) fail("nesting deeper than 256 levels");
        struct DepthGuard {
            int& depth;
            ~DepthGuard() { --depth; }
        } guard{depth_};
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json(parse_string());
            case 't':
                if (!consume_literal("true")) fail("invalid literal");
                return Json(true);
            case 'f':
                if (!consume_literal("false")) fail("invalid literal");
                return Json(false);
            case 'n':
                if (!consume_literal("null")) fail("invalid literal");
                return Json();
            default: return parse_number();
        }
    }

    Json parse_object()
    {
        expect('{');
        Json object = Json::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return object;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            object.set(key, parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return object;
        }
    }

    Json parse_array()
    {
        expect('[');
        Json array = Json::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return array;
        }
        while (true) {
            array.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return array;
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char escape = text_[pos_++];
            switch (escape) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code += static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("invalid \\u escape");
                    }
                    // The writer only emits \u for C0 controls; decode the
                    // BMP cases we can and store others as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: fail("invalid escape character");
            }
        }
    }

    Json parse_number()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E')
                ++pos_;
            else
                break;
        }
        if (pos_ == start) fail("invalid value");
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
        return Json(value);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

}  // namespace

Json Json::array()
{
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json Json::object()
{
    Json j;
    j.type_ = Type::kObject;
    return j;
}

bool Json::as_bool() const
{
    if (type_ != Type::kBool) type_error("a bool");
    return bool_;
}

double Json::as_number() const
{
    if (type_ != Type::kNumber) type_error("a number");
    return number_;
}

const std::string& Json::as_string() const
{
    if (type_ != Type::kString) type_error("a string");
    return string_;
}

std::size_t Json::size() const
{
    if (type_ == Type::kArray) return elements_.size();
    if (type_ == Type::kObject) return members_.size();
    return 0;
}

void Json::push_back(Json value)
{
    if (type_ != Type::kArray) type_error("an array");
    elements_.push_back(std::move(value));
}

const Json& Json::at(std::size_t index) const
{
    if (type_ != Type::kArray) type_error("an array");
    if (index >= elements_.size()) throw std::runtime_error("Json: array index out of range");
    return elements_[index];
}

Json& Json::set(const std::string& key, Json value)
{
    if (type_ != Type::kObject) type_error("an object");
    for (auto& [k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

const Json* Json::find(const std::string& key) const
{
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : members_)
        if (k == key) return &v;
    return nullptr;
}

std::string Json::number_to_string(double value)
{
    if (!std::isfinite(value)) return "null";
    char buf[32];
    for (const int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value) break;
    }
    return buf;
}

void Json::dump_to(std::string& out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
    const char* newline = indent > 0 ? "\n" : "";
    switch (type_) {
        case Type::kNull: out += "null"; break;
        case Type::kBool: out += bool_ ? "true" : "false"; break;
        case Type::kNumber: out += number_to_string(number_); break;
        case Type::kString: append_escaped(out, string_); break;
        case Type::kArray: {
            if (elements_.empty()) {
                out += "[]";
                break;
            }
            out += '[';
            out += newline;
            for (std::size_t i = 0; i < elements_.size(); ++i) {
                out += pad;
                elements_[i].dump_to(out, indent, depth + 1);
                if (i + 1 < elements_.size()) out += ',';
                out += newline;
            }
            out += close_pad;
            out += ']';
            break;
        }
        case Type::kObject: {
            if (members_.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            out += newline;
            for (std::size_t i = 0; i < members_.size(); ++i) {
                out += pad;
                append_escaped(out, members_[i].first);
                out += indent > 0 ? ": " : ":";
                members_[i].second.dump_to(out, indent, depth + 1);
                if (i + 1 < members_.size()) out += ',';
                out += newline;
            }
            out += close_pad;
            out += '}';
            break;
        }
    }
}

std::string Json::dump(int indent) const
{
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

Json Json::parse(const std::string& text)
{
    Parser parser(text);
    return parser.parse_document();
}

}  // namespace ezflow::util

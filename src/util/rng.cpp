#include "util/rng.h"

#include <algorithm>
#include <stdexcept>

namespace ezflow::util {

namespace {

/// SplitMix64 finalizer (Steele et al.): a bijective avalanche mix, the
/// standard recipe for deriving decorrelated seeds from sequential keys.
std::uint64_t splitmix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : stream_key_(seed)
{
    // Expand the 64-bit key into enough entropy that sibling streams do
    // not share correlated regions of the 19937-bit state.
    std::uint64_t z = seed;
    std::uint32_t words[8];
    for (int i = 0; i < 4; ++i) {
        z = splitmix64(z);
        words[2 * i] = static_cast<std::uint32_t>(z);
        words[2 * i + 1] = static_cast<std::uint32_t>(z >> 32);
    }
    std::seed_seq seq(words, words + 8);
    engine_.seed(seq);
}

int Rng::uniform_int(int lo, int hi)
{
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

double Rng::uniform_real(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

bool Rng::bernoulli(double p)
{
    const double clamped = std::clamp(p, 0.0, 1.0);
    std::bernoulli_distribution dist(clamped);
    return dist(engine_);
}

double Rng::exponential(double mean)
{
    if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
}

int Rng::weighted_index(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
        total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: no positive weight");
    double x = uniform_real(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size() - 1);
}

Rng Rng::fork()
{
    // Key-based derivation: child key = mix(parent key, fork index). No
    // engine draw is consumed, so fork order is a function of fork calls
    // alone — drawing values between forks cannot re-route child streams.
    ++fork_count_;
    return Rng(splitmix64(stream_key_ ^ splitmix64(fork_count_)));
}

}  // namespace ezflow::util

#include "util/rng.h"

#include <algorithm>
#include <stdexcept>

namespace ezflow::util {

int Rng::uniform_int(int lo, int hi)
{
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

double Rng::uniform_real(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

bool Rng::bernoulli(double p)
{
    const double clamped = std::clamp(p, 0.0, 1.0);
    std::bernoulli_distribution dist(clamped);
    return dist(engine_);
}

double Rng::exponential(double mean)
{
    if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
}

int Rng::weighted_index(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
        total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: no positive weight");
    double x = uniform_real(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size() - 1);
}

Rng Rng::fork()
{
    // SplitMix-style scramble of a fresh draw, so that the child stream is
    // decorrelated from subsequent draws of the parent.
    std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
}

}  // namespace ezflow::util

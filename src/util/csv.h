#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ezflow::util {

/// Minimal CSV writer; used to dump figure series (time vs value) so the
/// paper's plots can be regenerated with any plotting tool.
class CsvWriter {
public:
    /// Opens `path` for writing and emits the header line.
    /// Throws std::runtime_error when the file cannot be opened.
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    void add_row(const std::vector<double>& cells);
    void add_row(const std::vector<std::string>& cells);

    const std::string& path() const { return path_; }

private:
    std::string path_;
    std::ofstream out_;
    std::size_t columns_;
};

}  // namespace ezflow::util

#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ezflow::util {

void RunningStats::add(double x)
{
    ++count_;
    sum_ += x;
    if (count_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double RunningStats::mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ > 0 ? min_ : 0.0; }
double RunningStats::max() const { return count_ > 0 ? max_ : 0.0; }

void RunningStats::reset() { *this = RunningStats{}; }

void TimeSeries::add(SimTime t, double value)
{
    if (!times_.empty() && t < times_.back())
        throw std::invalid_argument("TimeSeries::add: timestamps must be non-decreasing");
    times_.push_back(t);
    values_.push_back(value);
}

namespace {

template <typename Fn>
void for_each_in_window(const std::vector<SimTime>& times, const std::vector<double>& values,
                        SimTime from, SimTime to, Fn&& fn)
{
    const auto begin = std::lower_bound(times.begin(), times.end(), from);
    for (auto it = begin; it != times.end() && *it < to; ++it) {
        fn(values[static_cast<std::size_t>(it - times.begin())]);
    }
}

}  // namespace

double TimeSeries::mean_between(SimTime from, SimTime to) const
{
    RunningStats s;
    for_each_in_window(times_, values_, from, to, [&](double v) { s.add(v); });
    return s.mean();
}

double TimeSeries::max_between(SimTime from, SimTime to) const
{
    RunningStats s;
    for_each_in_window(times_, values_, from, to, [&](double v) { s.add(v); });
    return s.max();
}

double TimeSeries::stddev_between(SimTime from, SimTime to) const
{
    RunningStats s;
    for_each_in_window(times_, values_, from, to, [&](double v) { s.add(v); });
    return s.stddev();
}

std::int64_t TimeSeries::count_between(SimTime from, SimTime to) const
{
    std::int64_t n = 0;
    for_each_in_window(times_, values_, from, to, [&](double) { ++n; });
    return n;
}

double ci95_halfwidth(const RunningStats& stats)
{
    const std::int64_t n = stats.count();
    if (n < 2) return 0.0;
    // t_{0.975, df} for df = 1..30; beyond that the normal quantile.
    static constexpr double kT975[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    };
    const std::int64_t df = n - 1;
    const double t = df <= 30 ? kT975[df - 1] : 1.960;
    return t * stats.stddev() / std::sqrt(static_cast<double>(n));
}

double percentile(std::vector<double> values, double p)
{
    if (values.empty()) throw std::invalid_argument("percentile: empty sample");
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace ezflow::util

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <utility>

namespace ezflow::util {

ThreadPool::ThreadPool(int threads)
{
    int n = threads > 0 ? threads : static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutting_down_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job)
{
    if (!job) throw std::invalid_argument("ThreadPool::submit: empty job");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutting_down_) throw std::logic_error("ThreadPool::submit: pool is shutting down");
        jobs_.push(std::move(job));
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return jobs_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this] { return shutting_down_ || !jobs_.empty(); });
            if (jobs_.empty()) return;  // shutting down and drained
            job = std::move(jobs_.front());
            jobs_.pop();
            ++in_flight_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (jobs_.empty() && in_flight_ == 0) all_done_.notify_all();
        }
    }
}

void parallel_for(int count, int threads, const std::function<void(int)>& fn)
{
    if (count <= 0) return;
    int n = threads > 0 ? threads : static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
    n = std::min(n, count);
    if (n == 1) {
        for (int i = 0; i < count; ++i) fn(i);
        return;
    }

    std::exception_ptr first_error;
    std::mutex error_mutex;
    {
        ThreadPool pool(n);
        for (int i = 0; i < count; ++i) {
            pool.submit([i, &fn, &first_error, &error_mutex] {
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                }
            });
        }
        pool.wait_idle();
    }
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ezflow::util

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ezflow::util {

/// Fixed-size std::thread worker pool with a FIFO job queue.
///
/// Used by analysis::SweepRunner to fan independent simulations across
/// cores. Jobs must not touch shared mutable state unless they
/// synchronize themselves; the sweep machinery gives every job its own
/// Network and a dedicated result slot, so no job-side locking is needed.
class ThreadPool {
public:
    /// `threads` <= 0 selects std::thread::hardware_concurrency().
    explicit ThreadPool(int threads = 0);
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    /// Drains the queue (runs every submitted job), then joins.
    ~ThreadPool();

    void submit(std::function<void()> job);

    /// Block until every submitted job has finished.
    void wait_idle();

    int size() const { return static_cast<int>(workers_.size()); }

private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::queue<std::function<void()>> jobs_;
    std::size_t in_flight_ = 0;
    bool shutting_down_ = false;
    std::vector<std::thread> workers_;
};

/// Run fn(0) .. fn(count - 1) across `threads` workers and return when all
/// are done. `threads` <= 0 selects hardware concurrency; an effective
/// thread count of 1 (or count <= 1) runs inline on the caller's thread.
/// The first exception thrown by any invocation is rethrown to the caller
/// (after all work completes).
void parallel_for(int count, int threads, const std::function<void(int)>& fn);

}  // namespace ezflow::util

#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace ezflow::util {

/// Fixed-capacity circular buffer that overwrites its oldest entry when
/// full. Entries are addressed by a monotonically increasing sequence
/// number, so callers can keep stable references to "the n-th item ever
/// pushed" and ask whether it is still retained. This is exactly the shape
/// needed by the EZ-Flow BOE: "keep in memory a list of the identifiers of
/// the last 1000 packets sent".
template <typename T>
class RingBuffer {
public:
    explicit RingBuffer(std::size_t capacity) : capacity_(capacity), items_(capacity)
    {
        if (capacity == 0) throw std::invalid_argument("RingBuffer: capacity must be > 0");
    }

    /// Append an item, overwriting the oldest entry when at capacity.
    /// Returns the sequence number assigned to the item.
    std::uint64_t push(T item)
    {
        items_[next_seq_ % capacity_] = std::move(item);
        return next_seq_++;
    }

    /// Number of items currently retained.
    std::size_t size() const
    {
        return next_seq_ < capacity_ ? static_cast<std::size_t>(next_seq_) : capacity_;
    }

    std::size_t capacity() const { return capacity_; }
    bool empty() const { return next_seq_ == 0; }

    /// Sequence number of the oldest retained item. Requires !empty().
    std::uint64_t oldest_seq() const
    {
        check_nonempty();
        return next_seq_ < capacity_ ? 0 : next_seq_ - capacity_;
    }

    /// Sequence number of the newest item. Requires !empty().
    std::uint64_t newest_seq() const
    {
        check_nonempty();
        return next_seq_ - 1;
    }

    /// Whether the item with this sequence number is still retained.
    bool contains_seq(std::uint64_t seq) const
    {
        return !empty() && seq >= oldest_seq() && seq <= newest_seq();
    }

    /// Access by sequence number. Requires contains_seq(seq).
    const T& at_seq(std::uint64_t seq) const
    {
        if (!contains_seq(seq)) throw std::out_of_range("RingBuffer::at_seq: evicted or unseen seq");
        return items_[seq % capacity_];
    }

    void clear()
    {
        next_seq_ = 0;
    }

private:
    void check_nonempty() const
    {
        if (empty()) throw std::out_of_range("RingBuffer: empty");
    }

    std::size_t capacity_;
    std::vector<T> items_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace ezflow::util

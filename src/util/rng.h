#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ezflow::util {

/// Deterministic random number generator used across the simulator.
///
/// A thin wrapper over std::mt19937_64 providing the distributions the
/// simulator needs. Components that need independent streams derive them
/// with `fork()`, which produces a child generator whose seed is a function
/// of the parent state; two simulations built from the same root seed are
/// bit-identical.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    int uniform_int(int lo, int hi);

    /// Uniform real in [lo, hi).
    double uniform_real(double lo, double hi);

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool bernoulli(double p);

    /// Exponentially distributed value with the given mean (> 0).
    double exponential(double mean);

    /// Pick an index in [0, weights.size()) with probability proportional
    /// to weights[i]. Requires at least one strictly positive weight.
    int weighted_index(const std::vector<double>& weights);

    /// Derive an independent child generator.
    Rng fork();

    /// Raw 64-bit draw (used by hashing/property tests).
    std::uint64_t next_u64() { return engine_(); }

private:
    std::mt19937_64 engine_;
};

}  // namespace ezflow::util

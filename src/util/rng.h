#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ezflow::util {

/// Deterministic random number generator used across the simulator.
///
/// A thin wrapper over std::mt19937_64 providing the distributions the
/// simulator needs. Components that need independent streams derive them
/// with `fork()`.
///
/// Stream derivation is keyed, not drawn: every Rng carries a stream key,
/// and the i-th fork of a stream is a SplitMix64 finalization of
/// (key, i). Forking therefore never consumes engine state — interleaving
/// draws and forks cannot shift which stream a child receives, which is
/// what keeps parallel sweeps reproducible — and child engines are seeded
/// through a seed_seq expansion of the child key so sibling streams share
/// no correlated generator state. Two simulations built from the same
/// root seed are bit-identical.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    int uniform_int(int lo, int hi);

    /// Uniform real in [lo, hi).
    double uniform_real(double lo, double hi);

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool bernoulli(double p);

    /// Exponentially distributed value with the given mean (> 0).
    double exponential(double mean);

    /// Pick an index in [0, weights.size()) with probability proportional
    /// to weights[i]. Requires at least one strictly positive weight.
    int weighted_index(const std::vector<double>& weights);

    /// Derive an independent child generator. The n-th fork of a given
    /// stream is the same regardless of how many values were drawn in
    /// between.
    Rng fork();

    /// Raw 64-bit draw (used by hashing/property tests).
    std::uint64_t next_u64() { return engine_(); }

private:
    std::mt19937_64 engine_;
    std::uint64_t stream_key_ = 0;
    std::uint64_t fork_count_ = 0;
};

}  // namespace ezflow::util

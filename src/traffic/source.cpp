#include "traffic/source.h"

#include <algorithm>
#include <stdexcept>

namespace ezflow::traffic {

Source::Source(net::Network& network, int flow_id, int payload_bytes)
    : network_(network), flow_id_(flow_id), payload_bytes_(payload_bytes)
{
    if (payload_bytes <= 0) throw std::invalid_argument("Source: payload must be > 0");
    const auto& path = network.routing().path(flow_id);
    src_node_ = path.front();
    dst_node_ = path.back();
    // Partition the uid space per flow so packet uids stay globally unique.
    next_uid_base_ = static_cast<std::uint64_t>(flow_id + 1) << 40;
}

void Source::activate(SimTime start, SimTime stop)
{
    if (activated_) throw std::logic_error("Source::activate: already activated");
    if (stop <= start) throw std::invalid_argument("Source::activate: empty active period");
    activated_ = true;
    stop_at_ = stop;
    network_.scheduler().schedule_at(start, [this] { emit(); });
}

void Source::emit()
{
    if (network_.now() >= stop_at_) return;

    net::Packet packet;
    packet.uid = next_uid_base_ + next_seq_;
    packet.flow_id = flow_id_;
    packet.seq = next_seq_++;
    packet.src = src_node_;
    packet.dst = dst_node_;
    packet.bytes = payload_bytes_;
    packet.checksum = net::packet_checksum(flow_id_, packet.seq, src_node_, dst_node_, payload_bytes_);
    packet.created_at = network_.now();

    ++stats_.generated;
    if (network_.node(src_node_).send(packet))
        ++stats_.accepted;
    else
        ++stats_.dropped_at_source;

    const SimTime gap = std::max<SimTime>(1, next_interval());
    network_.scheduler().schedule_in(gap, [this] { emit(); });
}

CbrSource::CbrSource(net::Network& network, int flow_id, int payload_bytes, double rate_bps)
    : Source(network, flow_id, payload_bytes)
{
    if (rate_bps <= 0.0) throw std::invalid_argument("CbrSource: rate must be > 0");
    interval_us_ = static_cast<SimTime>(static_cast<double>(payload_bytes) * 8.0 * 1e6 / rate_bps);
    interval_us_ = std::max<SimTime>(1, interval_us_);
}

PoissonSource::PoissonSource(net::Network& network, int flow_id, int payload_bytes, double rate_bps)
    : Source(network, flow_id, payload_bytes), rng_(network.fork_rng())
{
    if (rate_bps <= 0.0) throw std::invalid_argument("PoissonSource: rate must be > 0");
    mean_interval_us_ = static_cast<double>(payload_bytes) * 8.0 * 1e6 / rate_bps;
}

SimTime PoissonSource::next_interval()
{
    return static_cast<SimTime>(rng_.exponential(mean_interval_us_));
}

OnOffSource::OnOffSource(net::Network& network, int flow_id, int payload_bytes,
                         double peak_rate_bps, double mean_on_s, double mean_off_s)
    : Source(network, flow_id, payload_bytes), rng_(network.fork_rng())
{
    if (peak_rate_bps <= 0.0) throw std::invalid_argument("OnOffSource: rate must be > 0");
    if (mean_on_s <= 0.0 || mean_off_s <= 0.0)
        throw std::invalid_argument("OnOffSource: on/off means must be > 0");
    interval_us_ =
        std::max<SimTime>(1, static_cast<SimTime>(static_cast<double>(payload_bytes) * 8.0 * 1e6 / peak_rate_bps));
    mean_on_us_ = util::from_seconds(mean_on_s);
    mean_off_us_ = util::from_seconds(mean_off_s);
}

SimTime OnOffSource::next_interval()
{
    if (burst_remaining_us_ >= interval_us_) {
        burst_remaining_us_ -= interval_us_;
        return interval_us_;
    }
    const auto off = static_cast<SimTime>(rng_.exponential(static_cast<double>(mean_off_us_)));
    burst_remaining_us_ =
        std::max(interval_us_, static_cast<SimTime>(rng_.exponential(static_cast<double>(mean_on_us_))));
    return std::max<SimTime>(1, off) + interval_us_;
}

}  // namespace ezflow::traffic

#include "traffic/source.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ezflow::traffic {

Source::Source(net::Network& network, int flow_id, int payload_bytes)
    : network_(network), flow_id_(flow_id), payload_bytes_(payload_bytes)
{
    if (payload_bytes <= 0) throw std::invalid_argument("Source: payload must be > 0");
    gating_enabled_ = network.reference_mode().backpressure_gating;
    const auto& path = network.routing().path(flow_id);
    src_node_ = path.front();
    dst_node_ = path.back();
    scheduler_ = &network.scheduler_for(src_node_);
    // Partition the uid space per flow so packet uids stay globally unique.
    next_uid_base_ = static_cast<std::uint64_t>(flow_id + 1) << 40;
}

Source::~Source()
{
    if (gated_ && gate_queue_ != nullptr) gate_queue_->remove_vacancy_waiter(this);
}

void Source::activate(SimTime start, SimTime stop)
{
    if (activated_) throw std::logic_error("Source::activate: already activated");
    if (stop <= start) throw std::invalid_argument("Source::activate: empty active period");
    activated_ = true;
    stop_at_ = stop;
    chain_scheduled_at_ = scheduler_->now();
    next_emit_at_ = start;
    scheduler_->schedule_at(start, [this] { emit(); });
}

bool Source::boundary_emit_fires_first() const
{
    // Whether a virtual generation due exactly now would already have
    // fired before the currently running event: its (virtual) emit event
    // was scheduled at chain_scheduled_at_, so scheduler FIFO puts it
    // first iff that is before the running event's scheduling instant.
    // Outside event execution (after run_until drained the instant)
    // every same-instant event has fired, so the boundary is always
    // included.
    const SimTime running = scheduler_->current_event_scheduled_at();
    if (running < 0) return true;
    if (chain_scheduled_at_ != running) return chain_scheduled_at_ < running;
    // Scheduled at the same instant: exact when the chain event was real
    // (gate entry snapshotted the seq the reference's emit would have
    // consumed). The gated run never consumed that seq, so every event
    // scheduled after gate entry carries a seq >= the snapshot while the
    // reference would have placed it after the emit — hence <=, not <.
    // After closed-form advances the chain event never ran, so the seq
    // is unknowable; treat the chain as first, matching the common case
    // of chains armed before the interleaving event.
    if (virtual_chain_seq_ != kUnknownSeq)
        return virtual_chain_seq_ <= scheduler_->current_event_seq();
    return true;
}

void Source::set_backpressure_gating(bool enabled)
{
    if (enabled == gating_enabled_) return;
    gating_enabled_ = enabled;
    if (!enabled && gated_) {
        // Resume the per-period event chain from the pending generation
        // (instants already due are settled first, exactly as a vacancy
        // would have).
        leave_gate();
        if (settle(scheduler_->now(), boundary_emit_fires_first()))
            scheduler_->schedule_at(next_emit_at_, [this] { emit(); });
    }
}

const Source::Stats& Source::stats()
{
    // While gated there are no emit events; bring the closed-form
    // accounting up to date so readers see the reference counters.
    if (gated_) settle(scheduler_->now(), boundary_emit_fires_first());
    return stats_;
}

bool Source::routable() const
{
    return network_.node_is_up(src_node_) && !network_.routing().is_suspended(flow_id_);
}

void Source::emit()
{
    if (scheduler_->now() >= stop_at_) {
        chain_dead_ = true;
        return;
    }

    if (!routable()) {
        // The source node is down or the flow is suspended (partition).
        // Pause the application: nothing is generated (no next_interval
        // draw — the CBR/Poisson chain resumes where it left off) and
        // the probe backs off exponentially instead of spinning.
        ++stats_.backoff_retries;
        const SimTime delay = retry_backoff_us_;
        retry_backoff_us_ = std::min(retry_backoff_us_ * 2, kRetryBackoffMaxUs);
        chain_scheduled_at_ = scheduler_->now();
        next_emit_at_ = scheduler_->now() + delay;
        virtual_chain_seq_ = kUnknownSeq;
        scheduler_->schedule_at(next_emit_at_, [this] { emit(); });
        return;
    }
    retry_backoff_us_ = kRetryBackoffBaseUs;

    net::Packet packet;
    packet.uid = next_uid_base_ + next_seq_;
    packet.flow_id = flow_id_;
    packet.seq = next_seq_++;
    packet.src = src_node_;
    packet.dst = dst_node_;
    packet.bytes = payload_bytes_;
    packet.checksum = net::packet_checksum(flow_id_, packet.seq, src_node_, dst_node_, payload_bytes_);
    packet.created_at = scheduler_->now();

    ++stats_.generated;
    const bool accepted = network_.node(src_node_).send(std::move(packet));
    if (accepted)
        ++stats_.accepted;
    else
        ++stats_.dropped_at_source;

    const SimTime gap = std::max<SimTime>(1, next_interval());
    chain_scheduled_at_ = scheduler_->now();
    next_emit_at_ = scheduler_->now() + gap;

    if (!accepted && gating_enabled_) {
        // The own-traffic queue is full (a failed send means the MAC
        // queue dropped the packet; an interceptor that consumed it
        // would have reported acceptance). Park on a vacancy callback
        // instead of burning one event per generated-and-dropped packet.
        // Snapshot the seq the reference's schedule call would consume
        // right here, so an exact same-instant FIFO tie against the
        // never-materialized emit event stays decidable.
        if (mac::MacQueue* queue = network_.node(src_node_).own_traffic_queue(flow_id_)) {
            virtual_chain_seq_ = scheduler_->next_event_seq();
            enter_gate(*queue);
            return;
        }
    }
    scheduler_->schedule_at(next_emit_at_, [this] { emit(); });
}

void Source::enter_gate(mac::MacQueue& queue)
{
    queue.add_vacancy_waiter(this);
    gate_queue_ = &queue;
    gated_ = true;
}

void Source::leave_gate()
{
    if (gate_queue_ != nullptr) gate_queue_->remove_vacancy_waiter(this);
    gate_queue_ = nullptr;
    gated_ = false;
}

void Source::account_skipped_generation()
{
    // What the per-packet reference would have done at this instant with
    // a full queue: generate, consume a sequence number, push (counting a
    // queue drop), and count the source-side drop.
    ++stats_.generated;
    ++stats_.dropped_at_source;
    ++stats_.gated_skips;
    ++next_seq_;
    if (gate_queue_ != nullptr) gate_queue_->count_gated_drops(1);
    network_.node(src_node_).count_gated_source_drops(1);
}

bool Source::settle(SimTime horizon, bool include_boundary)
{
    if (chain_dead_) return false;
    while (next_emit_at_ < horizon || (include_boundary && next_emit_at_ == horizon)) {
        if (next_emit_at_ >= stop_at_) {
            chain_dead_ = true;
            return false;
        }
        account_skipped_generation();
        const SimTime gap = std::max<SimTime>(1, next_interval());
        chain_scheduled_at_ = next_emit_at_;
        virtual_chain_seq_ = kUnknownSeq;  // this chain event never ran
        next_emit_at_ += gap;
    }
    return true;
}

Source::Resume Source::vacancy_prepare()
{
    // The queue detached this registration before calling; we are no
    // longer parked either way.
    gated_ = false;
    // A generation due exactly at the pop instant fires before the
    // popping event — and therefore still found the queue full — iff its
    // (virtual) emit event was scheduled no later than the popping event
    // (scheduler FIFO among same-instant events; see
    // boundary_emit_fires_first for the equal-instant caveat).
    if (!settle(scheduler_->now(), boundary_emit_fires_first())) {
        gate_queue_ = nullptr;
        return Resume{};
    }
    return Resume{next_emit_at_, chain_scheduled_at_};
}

void Source::vacancy_commit()
{
    gate_queue_ = nullptr;
    scheduler_->schedule_at(next_emit_at_, [this] { emit(); });
}

CbrSource::CbrSource(net::Network& network, int flow_id, int payload_bytes, double rate_bps)
    : Source(network, flow_id, payload_bytes)
{
    if (rate_bps <= 0.0) throw std::invalid_argument("CbrSource: rate must be > 0");
    ideal_interval_us_ = static_cast<double>(payload_bytes) * 8.0 * 1e6 / rate_bps;
}

SimTime CbrSource::next_interval()
{
    // Error-carrying ideal timeline: packet n is due floor(n * ideal)
    // after activation, so truncation error never accumulates into a
    // systematic rate offset. Exact-microsecond ideals (all paper rates)
    // degenerate to the uniform grid.
    const double prev = static_cast<double>(ticks_) * ideal_interval_us_;
    ++ticks_;
    const double next = static_cast<double>(ticks_) * ideal_interval_us_;
    return std::max<SimTime>(1, static_cast<SimTime>(std::floor(next)) -
                                    static_cast<SimTime>(std::floor(prev)));
}

PoissonSource::PoissonSource(net::Network& network, int flow_id, int payload_bytes, double rate_bps)
    : Source(network, flow_id, payload_bytes), rng_(network.fork_rng())
{
    if (rate_bps <= 0.0) throw std::invalid_argument("PoissonSource: rate must be > 0");
    mean_interval_us_ = static_cast<double>(payload_bytes) * 8.0 * 1e6 / rate_bps;
}

SimTime PoissonSource::next_interval()
{
    return static_cast<SimTime>(rng_.exponential(mean_interval_us_));
}

OnOffSource::OnOffSource(net::Network& network, int flow_id, int payload_bytes,
                         double peak_rate_bps, double mean_on_s, double mean_off_s)
    : Source(network, flow_id, payload_bytes), rng_(network.fork_rng())
{
    if (peak_rate_bps <= 0.0) throw std::invalid_argument("OnOffSource: rate must be > 0");
    if (mean_on_s <= 0.0 || mean_off_s <= 0.0)
        throw std::invalid_argument("OnOffSource: on/off means must be > 0");
    interval_us_ =
        std::max<SimTime>(1, static_cast<SimTime>(static_cast<double>(payload_bytes) * 8.0 * 1e6 / peak_rate_bps));
    mean_on_us_ = util::from_seconds(mean_on_s);
    mean_off_us_ = util::from_seconds(mean_off_s);
}

SimTime OnOffSource::next_interval()
{
    if (!first_burst_drawn_) {
        // The activation packet opens the first burst: its length is an
        // on-draw like every later burst's, not a hardwired singleton
        // followed by an off-gap.
        first_burst_drawn_ = true;
        burst_remaining_us_ = std::max(
            interval_us_,
            static_cast<SimTime>(rng_.exponential(static_cast<double>(mean_on_us_))));
    }
    if (burst_remaining_us_ >= interval_us_) {
        burst_remaining_us_ -= interval_us_;
        return interval_us_;
    }
    const auto off = static_cast<SimTime>(rng_.exponential(static_cast<double>(mean_off_us_)));
    burst_remaining_us_ =
        std::max(interval_us_, static_cast<SimTime>(rng_.exponential(static_cast<double>(mean_on_us_))));
    return std::max<SimTime>(1, off) + interval_us_;
}

}  // namespace ezflow::traffic

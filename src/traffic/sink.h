#pragma once

#include <cstdint>
#include <map>

#include "net/network.h"
#include "net/packet.h"
#include "util/stats.h"

namespace ezflow::traffic {

using util::SimTime;

/// Per-flow traffic sink. Installed at a flow's destination node; records
/// delivered bytes, end-to-end delay and in-order/duplicate accounting so
/// the analysis layer can compute throughput/delay/fairness exactly as the
/// paper reports them.
class Sink {
public:
    struct FlowRecord {
        std::uint64_t packets = 0;
        std::uint64_t bytes = 0;
        std::uint64_t duplicates = 0;
        std::uint64_t reordered = 0;
        /// Network delay: first transmission at the source -> delivery
        /// (the paper's end-to-end delay; a greedy source's local backlog
        /// is excluded, see net::Packet::first_tx_at).
        util::RunningStats delay_us;
        /// Total delay including the source's own queueing (from packet
        /// creation), kept for completeness.
        util::RunningStats total_delay_us;
        /// (time, network delay) samples, for Fig. 7 / Fig. 10 plots.
        util::TimeSeries delay_series;
        /// Highest sequence number seen, for reorder/duplicate detection.
        std::int64_t max_seq_seen = -1;
    };

    explicit Sink(net::Network& network);
    Sink(const Sink&) = delete;
    Sink& operator=(const Sink&) = delete;

    /// Streaming mode: keep only the whole-run RunningStats per flow —
    /// no delay series, no arrival log — so sink memory is O(flows)
    /// regardless of run length. Windowed queries (goodput_kbps, the
    /// delay_series) are unavailable. Set before attaching flows.
    void set_streaming(bool on);
    bool streaming() const { return streaming_; }

    /// Attach this sink to the destination node of `flow_id`.
    void attach_flow(int flow_id);

    bool has_flow(int flow_id) const { return flows_.count(flow_id) > 0; }
    const FlowRecord& flow(int flow_id) const;

    /// Total goodput of a flow over [from, to) in kb/s, computed from the
    /// per-packet arrival log. Throws in streaming mode (no log).
    double goodput_kbps(int flow_id, SimTime from, SimTime to) const;

    /// Stored per-event samples across all flows (delay series + arrival
    /// logs); stays 0 in streaming mode — the flat-memory assertion of
    /// the islands benchmark.
    std::size_t stored_samples() const;

private:
    void on_delivery(int flow_id, const net::Packet& packet);

    net::Network& network_;
    bool streaming_ = false;
    std::map<int, FlowRecord> flows_;
    /// The destination node's shard scheduler per flow: delivery
    /// timestamps are shard-local.
    std::map<int, sim::Scheduler*> schedulers_;
    /// Arrival log per flow: (time, bits) — kept to window throughput.
    std::map<int, util::TimeSeries> arrivals_;
};

}  // namespace ezflow::traffic

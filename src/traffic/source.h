#pragma once

#include <cstdint>
#include <functional>

#include "net/network.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace ezflow::traffic {

using util::SimTime;

/// Common behaviour of packet sources: generate packets of a flow at a
/// node between start/stop times. Packets enter the node's own-traffic
/// MAC queue; when it is full they are dropped at the source, which is how
/// a saturated (greedy) application behaves on real hardware.
class Source {
public:
    struct Stats {
        std::uint64_t generated = 0;
        std::uint64_t accepted = 0;
        std::uint64_t dropped_at_source = 0;
    };

    Source(net::Network& network, int flow_id, int payload_bytes);
    virtual ~Source() = default;
    Source(const Source&) = delete;
    Source& operator=(const Source&) = delete;

    /// Schedule the active period [start, stop). Call once.
    void activate(SimTime start, SimTime stop);

    const Stats& stats() const { return stats_; }
    int flow_id() const { return flow_id_; }

protected:
    /// Time until the next packet (strictly positive).
    virtual SimTime next_interval() = 0;

    net::Network& network() { return network_; }

private:
    void emit();

    net::Network& network_;
    int flow_id_;
    int payload_bytes_;
    net::NodeId src_node_;
    net::NodeId dst_node_;
    SimTime stop_at_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_uid_base_ = 0;
    Stats stats_;
    bool activated_ = false;
};

/// Constant bit rate source (the paper's workload: CBR at 2 Mb/s to keep
/// sources saturated).
class CbrSource final : public Source {
public:
    CbrSource(net::Network& network, int flow_id, int payload_bytes, double rate_bps);

protected:
    SimTime next_interval() override { return interval_us_; }

private:
    SimTime interval_us_;
};

/// Poisson (exponential inter-arrival) source, for non-saturated and
/// bursty-load experiments.
class PoissonSource final : public Source {
public:
    PoissonSource(net::Network& network, int flow_id, int payload_bytes, double rate_bps);

protected:
    SimTime next_interval() override;

private:
    double mean_interval_us_;
    util::Rng rng_;
};

/// On-off source: exponentially distributed bursts at peak rate separated
/// by exponential silences. Used by the traffic-adaptivity ablations.
class OnOffSource final : public Source {
public:
    OnOffSource(net::Network& network, int flow_id, int payload_bytes, double peak_rate_bps,
                double mean_on_s, double mean_off_s);

protected:
    SimTime next_interval() override;

private:
    SimTime interval_us_;
    SimTime mean_on_us_;
    SimTime mean_off_us_;
    util::Rng rng_;
    SimTime burst_remaining_us_ = 0;
};

}  // namespace ezflow::traffic

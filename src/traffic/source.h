#pragma once

#include <cstdint>
#include <functional>

#include "mac/mac_queue.h"
#include "net/network.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace ezflow::traffic {

using util::SimTime;

/// Common behaviour of packet sources: generate packets of a flow at a
/// node between start/stop times. Packets enter the node's own-traffic
/// MAC queue; when it is full they are dropped at the source, which is how
/// a saturated (greedy) application behaves on real hardware.
///
/// Saturated sources are backpressure-gated: when an emission finds the
/// own-traffic queue full, the source stops burning one scheduler event
/// per nominal packet period and instead registers a vacancy callback
/// with the MAC queue (mac::VacancyWaiter). The generations that the
/// per-packet reference would have produced — and dropped — while the
/// queue stayed full are accounted in closed form when the queue frees a
/// slot (or when stats() is read), consuming the same per-generation
/// next_interval() draws in the same order, so packet sequence numbers,
/// Rng streams, per-queue/per-node drop counters and delivery order are
/// identical to the reference. set_backpressure_gating(false) keeps the
/// one-event-per-period reference path; tests prove the equivalence.
///
/// Residual tie caveat: an emit re-materialized at a vacancy is
/// scheduled "now", so against an unrelated event scheduled during the
/// gated stretch and firing at the exact same microsecond it sorts
/// after, where the reference's long-armed emit sorted first. The pair
/// only interacts if that event touches the same node's queue/MAC state
/// within the instant — and the MAC cannot be idle right after a gated
/// stretch (>= capacity-1 packets remain), so the enqueue commutes; the
/// committed goldens and the seeded gated-vs-reference races pin the
/// practical space down.
///
/// Lifetime: a Source references its Network (and, while gated, the MAC
/// queue it waits on), so it must be destroyed before the Network —
/// declare sources after the network/scenario that owns it, as every
/// in-tree user does.
class Source : private mac::VacancyWaiter {
public:
    struct Stats {
        std::uint64_t generated = 0;
        std::uint64_t accepted = 0;
        std::uint64_t dropped_at_source = 0;
        /// Generations accounted in closed form instead of an event each
        /// (a subset of dropped_at_source; 0 with gating disabled).
        std::uint64_t gated_skips = 0;
        /// Retry waits taken because the flow was unroutable (source node
        /// down or flow suspended). The application pauses — no
        /// generations, no drops — and re-probes with exponential
        /// backoff instead of spinning one doomed send per period.
        std::uint64_t backoff_retries = 0;
    };

    Source(net::Network& network, int flow_id, int payload_bytes);
    ~Source() override;
    Source(const Source&) = delete;
    Source& operator=(const Source&) = delete;

    /// Schedule the active period [start, stop). Call once.
    void activate(SimTime start, SimTime stop);

    /// Disable (or re-enable) the backpressure gate, falling back to one
    /// emit event per nominal packet period. The outcomes are identical
    /// either way — this exists so tests and benches can prove exactly
    /// that.
    void set_backpressure_gating(bool enabled);
    bool backpressure_gating() const { return gating_enabled_; }
    /// Whether the source is currently parked on a vacancy callback.
    bool gated() const { return gated_; }

    /// Settles any closed-form accounting up to now() first, so the
    /// counters always match the per-packet reference.
    const Stats& stats();
    int flow_id() const { return flow_id_; }

protected:
    /// Time until the next packet (strictly positive). Called exactly
    /// once per generation — real or closed-form — in generation order,
    /// so Rng-drawing implementations reproduce their draw sequence
    /// exactly under gating.
    virtual SimTime next_interval() = 0;

    net::Network& network() { return network_; }

private:
    void emit();
    /// Whether a packet generated now could leave this node at all: the
    /// source node is up and the flow has not been suspended by route
    /// repair. Checked before generating so an outage produces a paused
    /// application, not a stream of spurious per-period drops.
    bool routable() const;
    /// Account generations the reference would have dropped while the
    /// queue stayed full, up to `horizon`. `include_boundary`: whether a
    /// generation exactly at `horizon` fires before the running event
    /// (scheduler FIFO; see vacancy_prepare). Returns false when the
    /// chain left its active period (no further generations).
    bool settle(SimTime horizon, bool include_boundary);
    /// FIFO tie-break for a virtual generation due exactly now against
    /// the currently running event (true outside event execution).
    bool boundary_emit_fires_first() const;
    void account_skipped_generation();
    void enter_gate(mac::MacQueue& queue);
    void leave_gate();

    // --- mac::VacancyWaiter ---
    Resume vacancy_prepare() override;
    void vacancy_commit() override;

    net::Network& network_;
    /// The source node's shard scheduler: emissions are events of the
    /// shard that owns the source node, never of shard 0.
    sim::Scheduler* scheduler_ = nullptr;
    int flow_id_;
    int payload_bytes_;
    net::NodeId src_node_;
    net::NodeId dst_node_;
    SimTime stop_at_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_uid_base_ = 0;
    Stats stats_;
    bool activated_ = false;

    bool gating_enabled_ = true;
    bool gated_ = false;
    mac::MacQueue* gate_queue_ = nullptr;  ///< registered waiter target
    /// Next pending generation instant (the emit event's fire time, real
    /// or virtual) and the instant of the chain event that scheduled it
    /// (its scheduler-FIFO tie-break key against other events).
    SimTime next_emit_at_ = 0;
    SimTime chain_scheduled_at_ = 0;
    /// Sequence number the pending virtual emit would have received had
    /// the reference scheduled it (snapshotted at gate entry, where the
    /// chain event is real); kUnknownSeq once the chain advances through
    /// closed-form instants, whose scheduling seqs never materialized.
    static constexpr std::uint64_t kUnknownSeq = ~0ull;
    std::uint64_t virtual_chain_seq_ = kUnknownSeq;
    bool chain_dead_ = false;  ///< left [start, stop): no more generations

    /// Retry-with-backoff while unroutable: doubling wait, reset on the
    /// first routable emission.
    static constexpr SimTime kRetryBackoffBaseUs = 10'000;  ///< 10 ms
    static constexpr SimTime kRetryBackoffMaxUs = 200'000;  ///< 200 ms
    SimTime retry_backoff_us_ = kRetryBackoffBaseUs;
};

/// Constant bit rate source (the paper's workload: CBR at 2 Mb/s to keep
/// sources saturated). Emissions follow an error-carrying ideal timeline:
/// the n-th packet is due floor(n * payload_bits / rate) after start, so
/// the realized rate matches the nominal one even when the ideal interval
/// is not a whole number of microseconds (a single truncated interval
/// would systematically exceed the nominal rate). Rates that divide
/// payload*8e6 evenly — all the paper's — produce the exact same uniform
/// grid as the truncated interval did.
class CbrSource final : public Source {
public:
    CbrSource(net::Network& network, int flow_id, int payload_bytes, double rate_bps);

protected:
    SimTime next_interval() override;

private:
    double ideal_interval_us_;
    std::uint64_t ticks_ = 0;  ///< intervals elapsed on the ideal timeline
};

/// Poisson (exponential inter-arrival) source, for non-saturated and
/// bursty-load experiments.
class PoissonSource final : public Source {
public:
    PoissonSource(net::Network& network, int flow_id, int payload_bytes, double rate_bps);

protected:
    SimTime next_interval() override;

private:
    double mean_interval_us_;
    util::Rng rng_;
};

/// On-off source: exponentially distributed bursts at peak rate separated
/// by exponential silences. Used by the traffic-adaptivity ablations.
class OnOffSource final : public Source {
public:
    OnOffSource(net::Network& network, int flow_id, int payload_bytes, double peak_rate_bps,
                double mean_on_s, double mean_off_s);

protected:
    SimTime next_interval() override;

private:
    SimTime interval_us_;
    SimTime mean_on_us_;
    SimTime mean_off_us_;
    util::Rng rng_;
    SimTime burst_remaining_us_ = 0;
    bool first_burst_drawn_ = false;
};

}  // namespace ezflow::traffic

#include "traffic/sink.h"

#include <stdexcept>

namespace ezflow::traffic {

Sink::Sink(net::Network& network) : network_(network) {}

void Sink::set_streaming(bool on)
{
    if (!flows_.empty()) throw std::logic_error("Sink::set_streaming: flows already attached");
    streaming_ = on;
}

void Sink::attach_flow(int flow_id)
{
    if (flows_.count(flow_id) > 0) throw std::invalid_argument("Sink::attach_flow: already attached");
    flows_[flow_id];  // default-construct the record
    if (!streaming_) arrivals_[flow_id];
    const auto& path = network_.routing().path(flow_id);
    schedulers_[flow_id] = &network_.scheduler_for(path.back());
    net::Node& dst = network_.node(path.back());
    // Several flows can terminate at the same node; the callback filters
    // on the flow id this attach call registered.
    dst.add_delivery_handler([this, flow_id](const net::Packet& packet) {
        if (packet.flow_id == flow_id) on_delivery(flow_id, packet);
    });
}

void Sink::on_delivery(int flow_id, const net::Packet& packet)
{
    FlowRecord& record = flows_.at(flow_id);
    const SimTime now = schedulers_.at(flow_id)->now();
    const auto seq = static_cast<std::int64_t>(packet.seq);
    if (seq <= record.max_seq_seen) {
        // Either a duplicate (lost ACK path) or reordering; with FIFO
        // queues and a single path, equality means duplicate.
        if (seq == record.max_seq_seen)
            ++record.duplicates;
        else
            ++record.reordered;
    }
    record.max_seq_seen = std::max(record.max_seq_seen, seq);
    ++record.packets;
    record.bytes += static_cast<std::uint64_t>(packet.bytes);
    const SimTime network_start = packet.first_tx_at >= 0 ? packet.first_tx_at : packet.created_at;
    const auto delay = static_cast<double>(now - network_start);
    record.delay_us.add(delay);
    record.total_delay_us.add(static_cast<double>(now - packet.created_at));
    if (!streaming_) {
        record.delay_series.add(now, delay);
        arrivals_.at(flow_id).add(now, static_cast<double>(packet.bytes) * 8.0);
    }
}

const Sink::FlowRecord& Sink::flow(int flow_id) const
{
    const auto it = flows_.find(flow_id);
    if (it == flows_.end()) throw std::invalid_argument("Sink::flow: unknown flow");
    return it->second;
}

double Sink::goodput_kbps(int flow_id, SimTime from, SimTime to) const
{
    if (streaming_)
        throw std::logic_error("Sink::goodput_kbps: no arrival log in streaming mode");
    const auto it = arrivals_.find(flow_id);
    if (it == arrivals_.end()) throw std::invalid_argument("Sink::goodput_kbps: unknown flow");
    if (to <= from) return 0.0;
    const util::TimeSeries& log = it->second;
    double bits = 0.0;
    const auto& times = log.times();
    const auto& values = log.values();
    for (std::size_t i = 0; i < times.size(); ++i) {
        if (times[i] >= from && times[i] < to) bits += values[i];
    }
    return util::kbps(static_cast<std::int64_t>(bits), to - from);
}

std::size_t Sink::stored_samples() const
{
    std::size_t total = 0;
    for (const auto& [flow, record] : flows_) total += record.delay_series.size();
    for (const auto& [flow, log] : arrivals_) total += log.size();
    return total;
}

}  // namespace ezflow::traffic


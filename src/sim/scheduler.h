#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace ezflow::sim {

using util::SimTime;

/// Handle to a scheduled event, usable for cancellation.
struct EventId {
    std::uint64_t value = 0;
    bool valid() const { return value != 0; }
};

/// Single-threaded discrete-event scheduler with an integer-microsecond
/// clock. Events scheduled for the same time fire in scheduling order
/// (stable FIFO tie-break), which keeps runs deterministic.
///
/// Cancellation is O(1) via tombstoning: cancelled events stay in the heap
/// and are discarded when they surface.
class Scheduler {
public:
    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    SimTime now() const { return now_; }

    /// Schedule `action` to run at absolute time `at` (must be >= now()).
    EventId schedule_at(SimTime at, std::function<void()> action);

    /// Schedule `action` to run `delay` microseconds from now (delay >= 0).
    EventId schedule_in(SimTime delay, std::function<void()> action);

    /// Cancel a pending event. Returns false if the event already ran,
    /// was already cancelled, or the id is unknown.
    bool cancel(EventId id);

    /// Run events until the queue is empty or `stop()` is called.
    void run();

    /// Run events with a timestamp <= `until`. The clock is left at
    /// `until` even if the queue empties earlier.
    void run_until(SimTime until);

    /// Request that the current run()/run_until() stops after the event
    /// being processed returns.
    void stop() { stopped_ = true; }

    std::size_t pending() const { return live_events_; }
    std::uint64_t processed() const { return processed_; }

private:
    struct Entry {
        SimTime at;
        std::uint64_t seq;  // tie-break: FIFO among same-time events
        std::uint64_t id;
        std::function<void()> action;
        bool operator>(const Entry& other) const
        {
            if (at != other.at) return at > other.at;
            return seq > other.seq;
        }
    };

    bool pop_and_run_next(SimTime limit);

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::unordered_set<std::uint64_t> pending_ids_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_id_ = 1;
    std::size_t live_events_ = 0;
    std::uint64_t processed_ = 0;
    bool stopped_ = false;
};

}  // namespace ezflow::sim

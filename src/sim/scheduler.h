#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.h"
#include "util/units.h"

namespace ezflow::sim {

using util::SimTime;

/// Handle to a scheduled event, usable for cancellation. Encodes a slot
/// index into the scheduler's event arena plus the slot's generation at
/// scheduling time, so a handle outliving its event (fired or cancelled,
/// slot possibly recycled) is rejected in O(1) without any hash lookup.
struct EventId {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;

    bool valid() const { return gen != 0; }
    bool operator==(const EventId& o) const { return slot == o.slot && gen == o.gen; }
    bool operator!=(const EventId& o) const { return !(*this == o); }
};

/// Single-threaded discrete-event scheduler with an integer-microsecond
/// clock. Events scheduled for the same time fire in scheduling order
/// (stable FIFO tie-break), which keeps runs deterministic.
///
/// Storage is a pooled event arena: each live event occupies a
/// generation-counted slot recycled through a free list, and the callback
/// lives inline in the slot (EventFn's small buffer), so steady-state
/// scheduling performs no heap allocation. The time-ordered index is a
/// binary heap of plain {time, seq, slot, gen} records, fed through a
/// staging buffer: newly scheduled records sit unsorted until the next
/// event pop, so the many events that are cancelled before ever firing
/// (the MAC arms an ACK timeout per frame and cancels it when the ACK
/// lands) are filtered out without ever paying a heap push. Cancellation
/// itself releases the slot immediately (O(1)); a record already in the
/// heap goes stale and is dropped when it surfaces, and when stale
/// records outnumber live ones the heap is compacted in place, bounding
/// memory in long runs with heavy cancel churn.
class Scheduler {
public:
    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    SimTime now() const { return now_; }

    /// Schedule `action` to run at absolute time `at` (must be >= now()).
    EventId schedule_at(SimTime at, EventFn action);

    /// Schedule `action` to run `delay` microseconds from now (delay >= 0).
    EventId schedule_in(SimTime delay, EventFn action);

    /// Cancel a pending event. Returns false if the event already ran,
    /// was already cancelled, or the id is unknown/stale.
    bool cancel(EventId id);

    /// Run events until the queue is empty or `stop()` is called.
    void run();

    /// Run events with a timestamp <= `until`. The clock is left at
    /// `until` even if the queue empties earlier.
    void run_until(SimTime until);

    /// Request that the current run()/run_until() stops after the event
    /// being processed returns.
    void stop() { stopped_ = true; }

    std::size_t pending() const { return live_events_; }
    std::uint64_t processed() const { return processed_; }

    /// Timestamp of the earliest pending event, or -1 when none is
    /// queued. Flushes the staging buffer and discards stale (cancelled)
    /// heap heads so the answer is exact. The sharded engine's dynamic
    /// horizon peeks at this between epochs; it must not be called while
    /// the scheduler is inside run()/run_until().
    SimTime next_event_time();

    /// Simulated time at which the currently executing event was
    /// scheduled (-1 outside event execution). Lets observers reproduce
    /// the FIFO tie-break of a hypothetical event against the running one
    /// without materializing it — the backpressure-gated traffic sources
    /// use this to keep their closed-form drop accounting byte-identical
    /// to the one-event-per-packet reference.
    SimTime current_event_scheduled_at() const { return current_scheduled_at_; }

    /// Sequence number of the currently executing event (same-instant
    /// events fire in ascending sequence), or ~0 outside event execution.
    std::uint64_t current_event_seq() const { return current_seq_; }

    /// The sequence number the next scheduled event will receive. A
    /// hypothetical event "scheduled right here" can be tie-broken
    /// exactly against real events by snapshotting this.
    std::uint64_t next_event_seq() const { return next_seq_; }

    // --- introspection (tests and micro-benchmarks) ---
    /// Total slots ever allocated in the arena (live + recyclable).
    std::size_t arena_slots() const { return slots_.size(); }
    /// Time-index records (staged + heaped), live + stale-awaiting-drop.
    /// Bounded at O(live) by compaction even under sustained cancel churn.
    std::size_t heap_records() const { return heap_.size() + staging_.size(); }

private:
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    struct Slot {
        EventFn action;
        SimTime at = 0;
        SimTime scheduled_at = 0;  ///< now() when the event was scheduled
        std::uint64_t seq = 0;
        std::uint32_t gen = 1;
        std::uint32_t next_free = kNoSlot;
        bool armed = false;
    };

    struct HeapRecord {
        SimTime at;
        std::uint64_t seq;  // tie-break: FIFO among same-time events
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /// Min-heap order on (at, seq).
    static bool later(const HeapRecord& a, const HeapRecord& b)
    {
        if (a.at != b.at) return a.at > b.at;
        return a.seq > b.seq;
    }

    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t index);
    bool pop_and_run_next(SimTime limit);
    void flush_staging();
    void compact_heap();

    std::vector<Slot> slots_;
    std::vector<HeapRecord> heap_;
    std::vector<HeapRecord> staging_;
    std::uint32_t free_head_ = kNoSlot;
    std::size_t stale_records_ = 0;
    SimTime now_ = 0;
    SimTime current_scheduled_at_ = -1;
    std::uint64_t current_seq_ = ~0ull;
    std::uint64_t next_seq_ = 0;
    std::size_t live_events_ = 0;
    std::uint64_t processed_ = 0;
    bool stopped_ = false;
};

}  // namespace ezflow::sim

#pragma once

#include <stdexcept>
#include <utility>

#include "sim/scheduler.h"

namespace ezflow::sim {

/// A re-armable one-shot timer over the Scheduler, for the recurring
/// timeouts of the MAC (DIFS, backoff slot, ACK/CTS timeout) and the
/// pacer's release clock.
///
/// The callback is stored once at construction; every arm schedules only
/// a `this`-capturing trampoline (inline in the event arena, no
/// allocation), and re-arming or cancelling tracks the pending EventId so
/// callers never juggle handles or hit stale-id bugs.
class Timer {
public:
    Timer(Scheduler& scheduler, EventFn callback)
        : scheduler_(scheduler), callback_(std::move(callback))
    {
        if (!callback_) throw std::invalid_argument("Timer: empty callback");
    }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    ~Timer() { cancel(); }

    /// Arm to fire `delay` microseconds from now, replacing any pending
    /// expiry.
    void arm_in(SimTime delay)
    {
        cancel();
        id_ = scheduler_.schedule_in(delay, [this] { fire(); });
    }

    /// Arm to fire at absolute time `at`, replacing any pending expiry.
    void arm_at(SimTime at)
    {
        cancel();
        id_ = scheduler_.schedule_at(at, [this] { fire(); });
    }

    /// Disarm. Returns true when a pending expiry was actually cancelled.
    bool cancel()
    {
        if (!id_.valid()) return false;
        const bool cancelled = scheduler_.cancel(id_);
        id_ = EventId{};
        return cancelled;
    }

    bool armed() const { return id_.valid(); }

private:
    void fire()
    {
        id_ = EventId{};  // cleared before the callback so it may re-arm
        callback_();
    }

    Scheduler& scheduler_;
    EventFn callback_;
    EventId id_{};
};

}  // namespace ezflow::sim

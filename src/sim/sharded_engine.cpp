#include "sim/sharded_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.h"

namespace ezflow::sim {

ShardedEngine::ShardedEngine(std::vector<Scheduler*> shards, Options options)
    : shards_(std::move(shards)), options_(options), post_seq_(shards_.size(), 0)
{
    if (shards_.empty()) throw std::invalid_argument("ShardedEngine: no shards");
    for (Scheduler* shard : shards_)
        if (shard == nullptr) throw std::invalid_argument("ShardedEngine: null shard");
}

void ShardedEngine::run_until(util::SimTime t)
{
    // Every shard's clock sits at clock_ between epochs (run_until leaves
    // the scheduler clock at the horizon even when no event lands there).
    while (clock_ < t) {
        util::SimTime horizon;
        if (horizon_provider_) {
            // The provider's answer is conservative but may be stale or
            // beyond the target; clamping into (clock_, t] preserves both
            // progress and the posting contract (see set_horizon_provider).
            horizon = horizon_provider_(clock_, t);
            if (horizon <= clock_) horizon = clock_ + 1;
            if (horizon > t) horizon = t;
        } else {
            horizon =
                options_.lookahead > 0 ? std::min<util::SimTime>(t, clock_ + options_.lookahead) : t;
        }
        horizon_ = horizon;
        util::parallel_for(shard_count(), options_.threads, [&](int s) {
            shards_[static_cast<std::size_t>(s)]->run_until(horizon);
        });

        // Barrier: deliver the epoch's handoffs in one deterministic
        // total order — by timestamp, then posting shard, then the
        // poster's own sequence — so target-side event seqs are
        // independent of worker interleaving.
        std::vector<Handoff> drained;
        {
            std::lock_guard<std::mutex> lock(mailbox_mutex_);
            drained.swap(mailbox_);
        }
        std::sort(drained.begin(), drained.end(), [](const Handoff& a, const Handoff& b) {
            if (a.at != b.at) return a.at < b.at;
            if (a.from != b.from) return a.from < b.from;
            return a.seq < b.seq;
        });
        for (Handoff& handoff : drained) {
            shards_[static_cast<std::size_t>(handoff.to)]->schedule_at(handoff.at,
                                                                       std::move(handoff.fn));
        }
        handoffs_ += drained.size();
        clock_ = horizon;
        ++epochs_;
    }
}

void ShardedEngine::post(int from_shard, int to_shard, util::SimTime at, EventFn fn)
{
    if (from_shard < 0 || from_shard >= shard_count() || to_shard < 0 ||
        to_shard >= shard_count())
        throw std::invalid_argument("ShardedEngine::post: bad shard id");
    std::lock_guard<std::mutex> lock(mailbox_mutex_);
    if (at < horizon_)
        throw std::logic_error(
            "ShardedEngine::post: handoff timestamp precedes the epoch horizon "
            "(conservative lookahead contract violated)");
    mailbox_.push_back(Handoff{at, from_shard, post_seq_[static_cast<std::size_t>(from_shard)]++,
                               to_shard, std::move(fn)});
}

}  // namespace ezflow::sim

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/event_fn.h"
#include "sim/scheduler.h"
#include "util/units.h"

namespace ezflow::sim {

/// Conservative space-parallel driver over per-shard Schedulers.
///
/// The Network partitions nodes so that no radio (sense/delivery/
/// interference) edge crosses a shard boundary — see net::plan_shards —
/// and gives every shard its own Scheduler, Channel and
/// ContentionCoordinator. Radio causality is therefore intra-shard by
/// construction and no null messages are needed: the engine simply runs
/// all shards forward in lockstep epochs on util::parallel_for.
///
/// The only cross-shard dependency is a timestamped wired handoff
/// (gateway/backhaul packet injection), posted mid-epoch via post().
/// Handoffs obey a conservative lookahead contract: a handoff posted
/// during an epoch must be stamped at or after that epoch's horizon, so
/// delivering it at the barrier never rewinds a shard. With no lookahead
/// configured (the default, correct while no wired links exist) each
/// run_until() is a single epoch.
///
/// Determinism: shards never share state mid-epoch, and the barrier
/// drains the mailbox sorted by (timestamp, posting shard, per-shard
/// post sequence) before scheduling into the targets — the same total
/// order regardless of worker count or interleaving.
class ShardedEngine {
public:
    struct Options {
        int threads = 0;        ///< <= 0: hardware concurrency
        util::SimTime lookahead = 0;  ///< <= 0: run each run_until() as one epoch
    };

    ShardedEngine(std::vector<Scheduler*> shards, Options options);
    ShardedEngine(const ShardedEngine&) = delete;
    ShardedEngine& operator=(const ShardedEngine&) = delete;

    /// Advance every shard to `t` (epoch loop with barriers).
    void run_until(util::SimTime t);

    /// Dynamic conservative lookahead: called between epochs with
    /// (epoch start, run target), must return a horizon H such that no
    /// cross-shard handoff with a timestamp < H can be posted during the
    /// epoch (handoffs exactly at H are legal). The engine clamps the
    /// answer into (epoch start, target] — returning a stale instant is
    /// safe, it just degrades into minimal one-microsecond epochs. When
    /// installed it replaces the static Options::lookahead stepping; the
    /// Network's connected-cut support derives H from the boundary MACs'
    /// committed transmission times plus the SIFS decision-to-air bound.
    using HorizonProvider = std::function<util::SimTime(util::SimTime epoch_start,
                                                        util::SimTime target)>;
    void set_horizon_provider(HorizonProvider provider) { horizon_provider_ = std::move(provider); }

    /// Post a timestamped cross-shard handoff; delivered into the target
    /// shard's scheduler at the next epoch barrier. Callable from any
    /// shard worker mid-epoch. `at` must be >= the current epoch horizon
    /// (the conservative lookahead contract) — violations throw.
    void post(int from_shard, int to_shard, util::SimTime at, EventFn fn);

    int shard_count() const { return static_cast<int>(shards_.size()); }
    std::uint64_t epochs() const { return epochs_; }
    std::uint64_t handoffs() const { return handoffs_; }
    util::SimTime now() const { return clock_; }

private:
    struct Handoff {
        util::SimTime at;
        int from;
        std::uint64_t seq;  ///< per-posting-shard counter
        int to;
        EventFn fn;
    };

    std::vector<Scheduler*> shards_;
    Options options_;
    HorizonProvider horizon_provider_;

    std::mutex mailbox_mutex_;
    std::vector<Handoff> mailbox_;
    std::vector<std::uint64_t> post_seq_;  ///< next seq per posting shard

    util::SimTime clock_ = 0;
    util::SimTime horizon_ = 0;
    std::uint64_t epochs_ = 0;
    std::uint64_t handoffs_ = 0;
};

}  // namespace ezflow::sim

#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ezflow::sim {

/// Move-only type-erased `void()` callable with a small-buffer store.
///
/// Scheduler callbacks are overwhelmingly a captured `this` pointer (MAC
/// timers, tracers, pacers) or the channel's delivery events, which since
/// the single-copy frame pipeline capture only {NodePhy*, signal id,
/// FrameRef} (24 B) instead of a ~100 B phy::Frame by value. The inline
/// buffer is sized for those hot captures with headroom, which keeps the
/// event arena slots compact; scheduling a hot-path event never touches
/// the allocator. Larger captures fall back to the heap transparently.
class EventFn {
public:
    static constexpr std::size_t kInlineBytes = 64;

    EventFn() = default;

    template <typename F,
              std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                   std::is_invocable_r_v<void, std::decay_t<F>&>,
                               int> = 0>
    EventFn(F&& fn)  // NOLINT: implicit by design, mirrors std::function
    {
        using Decayed = std::decay_t<F>;
        if constexpr (fits_inline<Decayed>()) {
            ::new (static_cast<void*>(buf_)) Decayed(std::forward<F>(fn));
            vtable_ = inline_vtable<Decayed>();
        } else {
            ::new (static_cast<void*>(buf_)) Decayed*(new Decayed(std::forward<F>(fn)));
            vtable_ = heap_vtable<Decayed>();
        }
    }

    EventFn(EventFn&& other) noexcept { move_from(other); }

    EventFn& operator=(EventFn&& other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    EventFn(const EventFn&) = delete;
    EventFn& operator=(const EventFn&) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const { return vtable_ != nullptr; }

    void operator()() { vtable_->invoke(buf_); }

    void reset()
    {
        if (vtable_ != nullptr) {
            vtable_->destroy(buf_);
            vtable_ = nullptr;
        }
    }

    /// True when the held callable lives in the inline buffer (no heap
    /// allocation happened). Exposed for the arena's micro-benchmarks.
    bool is_inline() const { return vtable_ != nullptr && vtable_->inline_storage; }

private:
    struct VTable {
        void (*invoke)(void*);
        void (*destroy)(void*);
        /// Move-construct into `dst` from `src`, then destroy `src`.
        void (*relocate)(void* dst, void* src);
        bool inline_storage;
    };

    template <typename F>
    static constexpr bool fits_inline()
    {
        return sizeof(F) <= kInlineBytes && alignof(F) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<F>;
    }

    template <typename F>
    static const VTable* inline_vtable()
    {
        static const VTable table = {
            [](void* p) { (*std::launder(reinterpret_cast<F*>(p)))(); },
            [](void* p) { std::launder(reinterpret_cast<F*>(p))->~F(); },
            [](void* dst, void* src) {
                F* from = std::launder(reinterpret_cast<F*>(src));
                ::new (dst) F(std::move(*from));
                from->~F();
            },
            true,
        };
        return &table;
    }

    template <typename F>
    static const VTable* heap_vtable()
    {
        static const VTable table = {
            [](void* p) { (**std::launder(reinterpret_cast<F**>(p)))(); },
            [](void* p) { delete *std::launder(reinterpret_cast<F**>(p)); },
            [](void* dst, void* src) {
                F** from = std::launder(reinterpret_cast<F**>(src));
                ::new (dst) F*(*from);
            },
            false,
        };
        return &table;
    }

    void move_from(EventFn& other) noexcept
    {
        vtable_ = other.vtable_;
        if (vtable_ != nullptr) {
            vtable_->relocate(buf_, other.buf_);
            other.vtable_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes] = {};
    const VTable* vtable_ = nullptr;
};

}  // namespace ezflow::sim

#include "sim/scheduler.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace ezflow::sim {

std::uint32_t Scheduler::acquire_slot()
{
    if (free_head_ != kNoSlot) {
        const std::uint32_t index = free_head_;
        free_head_ = slots_[index].next_free;
        slots_[index].next_free = kNoSlot;
        return index;
    }
    if (slots_.size() >= static_cast<std::size_t>(kNoSlot))
        throw std::length_error("Scheduler: event arena exhausted");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t index)
{
    Slot& slot = slots_[index];
    slot.action.reset();
    slot.armed = false;
    // Bump the generation so every outstanding EventId for this slot goes
    // stale; 0 is reserved for the invalid handle.
    if (++slot.gen == 0) slot.gen = 1;
    slot.next_free = free_head_;
    free_head_ = index;
}

EventId Scheduler::schedule_at(SimTime at, EventFn action)
{
    if (at < now_) throw std::invalid_argument("Scheduler::schedule_at: time in the past");
    if (!action) throw std::invalid_argument("Scheduler::schedule_at: empty action");
    const std::uint32_t index = acquire_slot();
    Slot& slot = slots_[index];
    slot.action = std::move(action);
    slot.at = at;
    slot.scheduled_at = now_;
    slot.seq = next_seq_++;
    slot.armed = true;
    staging_.push_back(HeapRecord{at, slot.seq, index, slot.gen});
    ++live_events_;
    return EventId{index, slot.gen};
}

EventId Scheduler::schedule_in(SimTime delay, EventFn action)
{
    if (delay < 0) throw std::invalid_argument("Scheduler::schedule_in: negative delay");
    return schedule_at(now_ + delay, std::move(action));
}

bool Scheduler::cancel(EventId id)
{
    if (!id.valid() || id.slot >= slots_.size()) return false;
    Slot& slot = slots_[id.slot];
    if (!slot.armed || slot.gen != id.gen) return false;  // already ran or cancelled
    release_slot(id.slot);
    --live_events_;
    ++stale_records_;
    // Keep the time index O(live): once stale records dominate, rebuild
    // without them. Amortized O(1) per cancel.
    if (stale_records_ > 64 && stale_records_ > (heap_.size() + staging_.size()) / 2)
        compact_heap();
    return true;
}

void Scheduler::flush_staging()
{
    for (const HeapRecord& rec : staging_) {
        const Slot& slot = slots_[rec.slot];
        if (!slot.armed || slot.gen != rec.gen) {
            // Cancelled while staged: never enters the heap at all.
            if (stale_records_ > 0) --stale_records_;
            continue;
        }
        heap_.push_back(rec);
        std::push_heap(heap_.begin(), heap_.end(), later);
    }
    staging_.clear();
}

void Scheduler::compact_heap()
{
    const auto stale = [this](const HeapRecord& rec) {
        const Slot& slot = slots_[rec.slot];
        return !slot.armed || slot.gen != rec.gen;
    };
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(), stale), heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), later);
    staging_.erase(std::remove_if(staging_.begin(), staging_.end(), stale), staging_.end());
    stale_records_ = 0;
}

SimTime Scheduler::next_event_time()
{
    if (!staging_.empty()) flush_staging();
    while (!heap_.empty()) {
        const HeapRecord& rec = heap_.front();
        const Slot& slot = slots_[rec.slot];
        if (slot.armed && slot.gen == rec.gen) return rec.at;
        std::pop_heap(heap_.begin(), heap_.end(), later);
        heap_.pop_back();
        if (stale_records_ > 0) --stale_records_;
    }
    return -1;
}

bool Scheduler::pop_and_run_next(SimTime limit)
{
    if (!staging_.empty()) flush_staging();
    while (!heap_.empty()) {
        if (heap_.front().at > limit) return false;
        std::pop_heap(heap_.begin(), heap_.end(), later);
        const HeapRecord rec = heap_.back();
        heap_.pop_back();
        Slot& slot = slots_[rec.slot];
        if (!slot.armed || slot.gen != rec.gen) {
            if (stale_records_ > 0) --stale_records_;
            continue;  // cancelled; slot possibly recycled since
        }
        // Move the action out before releasing the slot so the handler may
        // schedule further events (which can reuse this very slot).
        EventFn action = std::move(slot.action);
        const SimTime scheduled_at = slot.scheduled_at;
        release_slot(rec.slot);
        now_ = rec.at;
        current_scheduled_at_ = scheduled_at;
        current_seq_ = rec.seq;
        --live_events_;
        ++processed_;
        action();
        current_scheduled_at_ = -1;
        current_seq_ = ~0ull;
        return true;
    }
    return false;
}

void Scheduler::run()
{
    stopped_ = false;
    while (!stopped_ && pop_and_run_next(std::numeric_limits<SimTime>::max())) {
    }
}

void Scheduler::run_until(SimTime until)
{
    if (until < now_) throw std::invalid_argument("Scheduler::run_until: time in the past");
    stopped_ = false;
    while (!stopped_ && pop_and_run_next(until)) {
    }
    if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace ezflow::sim

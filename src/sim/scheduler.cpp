#include "sim/scheduler.h"

#include <limits>
#include <stdexcept>
#include <utility>

namespace ezflow::sim {

EventId Scheduler::schedule_at(SimTime at, std::function<void()> action)
{
    if (at < now_) throw std::invalid_argument("Scheduler::schedule_at: time in the past");
    if (!action) throw std::invalid_argument("Scheduler::schedule_at: empty action");
    const std::uint64_t id = next_id_++;
    queue_.push(Entry{at, next_seq_++, id, std::move(action)});
    pending_ids_.insert(id);
    ++live_events_;
    return EventId{id};
}

EventId Scheduler::schedule_in(SimTime delay, std::function<void()> action)
{
    if (delay < 0) throw std::invalid_argument("Scheduler::schedule_in: negative delay");
    return schedule_at(now_ + delay, std::move(action));
}

bool Scheduler::cancel(EventId id)
{
    if (!id.valid()) return false;
    if (pending_ids_.erase(id.value) == 0) return false;  // already ran or cancelled
    cancelled_.insert(id.value);
    --live_events_;
    return true;
}

bool Scheduler::pop_and_run_next(SimTime limit)
{
    while (!queue_.empty()) {
        const Entry& top = queue_.top();
        if (top.at > limit) return false;
        if (cancelled_.erase(top.id) > 0) {
            queue_.pop();
            continue;
        }
        // Move the action out before popping so the handler may schedule
        // further events (which can reallocate the heap).
        Entry entry = std::move(const_cast<Entry&>(top));
        queue_.pop();
        pending_ids_.erase(entry.id);
        now_ = entry.at;
        --live_events_;
        ++processed_;
        entry.action();
        return true;
    }
    return false;
}

void Scheduler::run()
{
    stopped_ = false;
    while (!stopped_ && pop_and_run_next(std::numeric_limits<SimTime>::max())) {
    }
}

void Scheduler::run_until(SimTime until)
{
    if (until < now_) throw std::invalid_argument("Scheduler::run_until: time in the past");
    stopped_ = false;
    while (!stopped_ && pop_and_run_next(until)) {
    }
    if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace ezflow::sim

#include "sim/fault_injector.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

namespace ezflow::sim {

FaultInjector::FaultInjector(net::Network& network, net::FaultPlan plan)
    : network_(network), plan_(std::move(plan))
{
    // Deliberately re-asserted for connected-cut sharding too: beyond the
    // routing-builder race, a mid-run node death would invalidate the
    // ghost-mirror wiring (boundary sets, cached ghost reach) and the
    // horizon provider's committed-transmission bounds, none of which are
    // safe to mutate while shard workers run.
    if (network.shard_count() > 1)
        throw std::invalid_argument(
            "FaultInjector: requires a single-shard network (route repair mutates the shared "
            "routing builder, which must not race shard threads; with connected-cut sharding "
            "the ghost-mirror wiring would go stale as well)");
}

void FaultInjector::arm()
{
    if (armed_) throw std::logic_error("FaultInjector::arm: already armed");
    armed_ = true;

    // Snapshot the delivery-range graph and every flow's original path —
    // the repair graph and the restoration targets.
    const int n = network_.node_count();
    topo_.positions.reserve(static_cast<std::size_t>(n));
    for (net::NodeId id = 0; id < n; ++id) topo_.positions.push_back(network_.node(id).phy().position());
    topo_.link_range_m = network_.config().phy.tx_range_m;
    net::rebuild_links(topo_);
    node_admin_up_.assign(static_cast<std::size_t>(n), 1);
    for (int flow : network_.routing().flow_ids()) original_path_[flow] = network_.routing().path(flow);

    for (const net::FaultEvent& event : plan_.sorted()) {
        if (event.kind == net::FaultKind::kNodeDown || event.kind == net::FaultKind::kNodeUp) {
            if (event.node < 0 || event.node >= n)
                throw std::invalid_argument("FaultInjector: plan names an unknown node");
        } else {
            if (event.a < 0 || event.a >= n || event.b < 0 || event.b >= n || event.a == event.b)
                throw std::invalid_argument("FaultInjector: plan names a bad link");
        }
        network_.scheduler().schedule_at(event.at, [this, event] { apply(event); });
    }
}

bool FaultInjector::link_is_up(net::NodeId a, net::NodeId b) const
{
    return links_admin_down_.count(link_key(a, b)) == 0;
}

void FaultInjector::apply(const net::FaultEvent& event)
{
    switch (event.kind) {
    case net::FaultKind::kNodeDown:
        if (!node_admin_up_[static_cast<std::size_t>(event.node)]) return;
        node_admin_up_[static_cast<std::size_t>(event.node)] = 0;
        network_.set_node_down(event.node);
        ++stats_.node_downs;
        repair_after_element_down();
        return;
    case net::FaultKind::kNodeUp:
        if (node_admin_up_[static_cast<std::size_t>(event.node)]) return;
        node_admin_up_[static_cast<std::size_t>(event.node)] = 1;
        network_.set_node_up(event.node);
        ++stats_.node_ups;
        reconsider_after_element_up();
        return;
    case net::FaultKind::kLinkDown:
        if (!links_admin_down_.insert(link_key(event.a, event.b)).second) return;
        ++stats_.link_downs;
        repair_after_element_down();
        return;
    case net::FaultKind::kLinkUp:
        if (links_admin_down_.erase(link_key(event.a, event.b)) == 0) return;
        ++stats_.link_ups;
        reconsider_after_element_up();
        return;
    }
}

bool FaultInjector::path_is_live(const std::vector<net::NodeId>& path) const
{
    for (net::NodeId node : path)
        if (!node_admin_up_[static_cast<std::size_t>(node)]) return false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        if (links_admin_down_.count(link_key(path[i], path[i + 1])) != 0) return false;
    return true;
}

std::vector<net::NodeId> FaultInjector::live_path(net::NodeId src, net::NodeId dst)
{
    ++stats_.repair_bfs_runs;
    // Same structure as net::shortest_path — BFS of hop distances from the
    // destination, then walk downhill taking the smallest-id neighbour —
    // restricted to live nodes and in-service links, so repaired routes
    // tie-break exactly like the planners' originals.
    const auto n = static_cast<std::size_t>(topo_.node_count());
    std::vector<int> dist(n, -1);
    std::deque<net::NodeId> frontier;
    dist[static_cast<std::size_t>(dst)] = 0;
    frontier.push_back(dst);
    while (!frontier.empty()) {
        const net::NodeId at = frontier.front();
        frontier.pop_front();
        for (net::NodeId next : topo_.neighbours[static_cast<std::size_t>(at)]) {
            if (!node_admin_up_[static_cast<std::size_t>(next)]) continue;
            if (links_admin_down_.count(link_key(at, next)) != 0) continue;
            if (dist[static_cast<std::size_t>(next)] >= 0) continue;
            dist[static_cast<std::size_t>(next)] = dist[static_cast<std::size_t>(at)] + 1;
            frontier.push_back(next);
        }
    }
    if (dist[static_cast<std::size_t>(src)] < 0) return {};

    std::vector<net::NodeId> path;
    path.push_back(src);
    net::NodeId at = src;
    while (at != dst) {
        const int d = dist[static_cast<std::size_t>(at)];
        for (net::NodeId next : topo_.neighbours[static_cast<std::size_t>(at)]) {
            if (!node_admin_up_[static_cast<std::size_t>(next)]) continue;
            if (links_admin_down_.count(link_key(at, next)) != 0) continue;
            if (dist[static_cast<std::size_t>(next)] == d - 1) {
                path.push_back(next);
                at = next;
                break;
            }
        }
    }
    return path;
}

void FaultInjector::repair_after_element_down()
{
    net::StaticRouting& routing = network_.routing();
    for (const auto& [flow, original] : original_path_) {
        if (routing.is_suspended(flow)) continue;  // already out of service
        const std::vector<net::NodeId>& current = routing.path(flow);
        if (path_is_live(current)) continue;  // untouched by the fault
        detoured_.insert(flow);
        const net::NodeId src = original.front();
        const net::NodeId dst = original.back();
        if (!node_admin_up_[static_cast<std::size_t>(src)] ||
            !node_admin_up_[static_cast<std::size_t>(dst)]) {
            routing.suspend_flow(flow);
            ++stats_.flows_suspended;
            continue;
        }
        std::vector<net::NodeId> detour = live_path(src, dst);
        if (detour.empty()) {
            routing.suspend_flow(flow);
            ++stats_.flows_suspended;
        } else {
            routing.update_flow(flow, std::move(detour));
            ++stats_.flows_rerouted;
        }
    }
}

void FaultInjector::reconsider_after_element_up()
{
    net::StaticRouting& routing = network_.routing();
    // Only flows off their original path can profit from a revival.
    const std::vector<int> candidates(detoured_.begin(), detoured_.end());
    for (int flow : candidates) {
        const std::vector<net::NodeId>& original = original_path_.at(flow);
        const bool was_suspended = routing.is_suspended(flow);
        if (path_is_live(original)) {
            // Exact re-convergence: the moment the original path is fully
            // live again, restore it verbatim.
            routing.update_flow(flow, original);
            detoured_.erase(flow);
            ++stats_.flows_restored;
            continue;
        }
        const net::NodeId src = original.front();
        const net::NodeId dst = original.back();
        if (!node_admin_up_[static_cast<std::size_t>(src)] ||
            !node_admin_up_[static_cast<std::size_t>(dst)])
            continue;  // endpoint still down: stays suspended
        std::vector<net::NodeId> detour = live_path(src, dst);
        if (detour.empty()) {
            // Still partitioned; a previously routed detour may now be
            // broken (should not happen on an up-event), keep state.
            continue;
        }
        if (!was_suspended && detour == routing.path(flow)) continue;  // same detour
        routing.update_flow(flow, std::move(detour));
        if (was_suspended)
            ++stats_.flows_restored;
        else
            ++stats_.flows_rerouted;
    }
}

}  // namespace ezflow::sim

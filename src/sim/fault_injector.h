#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "net/fault_plan.h"
#include "net/network.h"
#include "net/topo_gen.h"

namespace ezflow::sim {

/// Executes a net::FaultPlan against a live Network: schedules every
/// event on the simulation clock and, when it fires, drives the graceful
/// teardown/revival through every layer (Network::set_node_down/up) plus
/// the incremental route repair that keeps traffic flowing around the
/// hole.
///
/// Semantics:
///  * Node faults are physical. Down: MAC quiesced (queues flushed into
///    drops_node_down), radio powered off and detached from the channel;
///    in-flight frames from the dying node complete at their receivers,
///    frames to it die unheard and resolve through sender retries.
///  * Link faults are administrative (routing-plane): the link is
///    removed from the repair graph and flows are steered off it, but a
///    frame already committed to the air still propagates.
///  * Repair is incremental: only flows whose current path touches a
///    dead element are recomputed — BFS over the live delivery graph
///    (same smallest-id tie-break as the topology planners), or
///    suspension when src/dst is partitioned. On revival, affected flows
///    return to their original path as soon as it is fully live again
///    (EZ-Flow re-convergence is measured against that restoration).
///
/// Determinism: all bookkeeping is event-driven on the shard scheduler;
/// same plan + same seed -> byte-identical runs at any --threads. The
/// injector requires a single-shard network (every canned connected
/// topology): repair mutates the shared routing builder, which must not
/// race shard threads.
class FaultInjector {
public:
    struct Stats {
        std::uint64_t node_downs = 0;
        std::uint64_t node_ups = 0;
        std::uint64_t link_downs = 0;
        std::uint64_t link_ups = 0;
        std::uint64_t flows_rerouted = 0;   ///< repaired onto a detour
        std::uint64_t flows_suspended = 0;  ///< partitioned, taken out of service
        std::uint64_t flows_restored = 0;   ///< returned to the original path
        std::uint64_t repair_bfs_runs = 0;  ///< per-flow BFS recomputations
    };

    FaultInjector(net::Network& network, net::FaultPlan plan);
    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    /// Schedule every plan event (call once, before running). Snapshots
    /// the delivery-range topology and each flow's original path — the
    /// restoration targets.
    void arm();

    const Stats& stats() const { return stats_; }
    /// Administrative link state (true = in service). Endpoints order-free.
    bool link_is_up(net::NodeId a, net::NodeId b) const;

private:
    void apply(const net::FaultEvent& event);
    /// Re-route (or suspend) every in-service flow whose current path
    /// touches a dead node or an administratively down link.
    void repair_after_element_down();
    /// Re-examine suspended and detoured flows after a revival: restore
    /// the original path when fully live, otherwise the best live detour.
    void reconsider_after_element_up();
    bool path_is_live(const std::vector<net::NodeId>& path) const;
    /// Shortest live src -> dst path (BFS, smallest-id tie-break over
    /// sorted neighbour lists), skipping down nodes and admin-down
    /// links. Empty when unreachable.
    std::vector<net::NodeId> live_path(net::NodeId src, net::NodeId dst);

    static std::pair<net::NodeId, net::NodeId> link_key(net::NodeId a, net::NodeId b)
    {
        return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    }

    net::Network& network_;
    net::FaultPlan plan_;
    bool armed_ = false;
    net::Topology topo_;  ///< delivery-range graph snapshot (arm time)
    std::vector<char> node_admin_up_;
    std::set<std::pair<net::NodeId, net::NodeId>> links_admin_down_;
    std::map<int, std::vector<net::NodeId>> original_path_;
    /// Flows not currently on their original path (detoured or
    /// suspended) — the only candidates a revival re-examines.
    std::set<int> detoured_;
    Stats stats_;
};

}  // namespace ezflow::sim

#include "analysis/metrics.h"

#include <stdexcept>

namespace ezflow::analysis {

double jain_index(const std::vector<double>& throughputs)
{
    if (throughputs.empty()) throw std::invalid_argument("jain_index: empty input");
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double x : throughputs) {
        if (x < 0.0) throw std::invalid_argument("jain_index: negative throughput");
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq == 0.0) return 1.0;
    return sum * sum / (static_cast<double>(throughputs.size()) * sum_sq);
}

}  // namespace ezflow::analysis

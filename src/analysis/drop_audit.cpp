#include "analysis/drop_audit.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ezflow::analysis {

namespace {

[[noreturn]] void fail(const std::string& what, std::uint64_t lhs, std::uint64_t rhs)
{
    std::ostringstream out;
    out << "drop audit: " << what << " (" << lhs << " vs " << rhs << ")";
    throw std::logic_error(out.str());
}

}  // namespace

DropLedger collect_drop_ledger(Experiment& experiment)
{
    DropLedger ledger;
    for (const auto& source : experiment.sources()) {
        const traffic::Source::Stats& stats = source->stats();
        ledger.generated += stats.generated;
        ledger.dropped_at_source += stats.dropped_at_source;
    }
    net::Network& network = experiment.network();
    for (net::NodeId id = 0; id < network.node_count(); ++id) {
        const net::Node& node = network.node(id);
        ledger.delivered += node.delivered();
        ledger.forward_queue_drops += node.forward_queue_drops();
        ledger.drops_node_down += node.drops_node_down();
        ledger.drops_unroutable += node.drops_unroutable();
        ledger.retry_drops += node.mac().retry_drops();
        ledger.dup_rx_suppressed += node.mac().dup_rx_suppressed();
        // MPDUs flushed out of a quiesced sender window leave through the
        // node-down bucket; unsettled window MPDUs and reorder-parked
        // receptions are in-flight backlog, exactly like queued packets.
        ledger.drops_node_down += node.mac().ampdu_node_down_drops();
        ledger.backlog += node.mac().ampdu_pending() + node.reorder_buffered();
        // A frozen serving MAC holds one half-open dialogue — or, with
        // aggregation, up to a whole window of them (every unsettled MPDU
        // may already be decoded and progressed at the receiver).
        if (node.mac().serving())
            ledger.clone_allowance += std::max<std::uint64_t>(1, node.mac().ampdu_pending());
        // A node-down quiesce that cut a dialogue short flushed a head
        // packet (or window) its receiver may already have decoded — one
        // more potential clone per abort, just like a frozen dialogue.
        ledger.clone_allowance += node.mac().teardown_aborts();
        for (const auto& queue : node.mac().queues().queues()) {
            ledger.drops_node_down += queue->dropped_node_down();
            ledger.backlog += static_cast<std::uint64_t>(queue->size());
        }
    }
    // Every clone requires a retry_drop of an already-progressed packet.
    ledger.clone_allowance += ledger.retry_drops;
    return ledger;
}

DropLedger audit_drop_accounting(Experiment& experiment)
{
    net::Network& network = experiment.network();
    for (net::NodeId id = 0; id < network.node_count(); ++id) {
        if (network.node(id).has_interceptor()) {
            DropLedger skipped;
            skipped.status = DropLedger::Status::kSkippedInterceptor;
            return skipped;
        }
    }

    // Exact local conservation first: it localizes a leak to one queue or
    // MAC before the end-to-end partition smears it across the network.
    for (net::NodeId id = 0; id < network.node_count(); ++id) {
        const net::Node& node = network.node(id);
        std::uint64_t dequeued = 0;
        for (const auto& queue : node.mac().queues().queues()) {
            const std::uint64_t kept = queue->dequeued() + queue->dropped_node_down() +
                                       static_cast<std::uint64_t>(queue->size());
            if (queue->enqueued() != kept) fail("queue conservation", queue->enqueued(), kept);
            dequeued += queue->dequeued();
        }
        // A packet leaves its queue exactly when its exchange settles
        // (success or retry drop); a frozen in-service head is unpopped.
        // With aggregation the batch is popped at TXOP fill instead, so
        // unsettled window MPDUs (and window flushes at teardown) make up
        // the difference — exactly, not as an allowance.
        const std::uint64_t settled = node.mac().successes() + node.mac().retry_drops() +
                                      node.mac().ampdu_pending() +
                                      node.mac().ampdu_node_down_drops();
        if (dequeued != settled) fail("MAC settlement", dequeued, settled);
    }

    DropLedger ledger = collect_drop_ledger(experiment);
    const std::uint64_t accounted = ledger.accounted();
    if (accounted < ledger.generated) fail("packet leak", ledger.generated, accounted);
    if (accounted > ledger.generated + ledger.clone_allowance)
        fail("packet double-count beyond clone allowance",
             ledger.generated + ledger.clone_allowance, accounted);
    return ledger;
}

}  // namespace ezflow::analysis

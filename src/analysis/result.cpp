#include "analysis/result.h"

#include <stdexcept>

namespace ezflow::analysis {

MetricStat metric_from_stats(const util::RunningStats& stats)
{
    return MetricStat{stats.mean(), util::ci95_halfwidth(stats),
                      static_cast<int>(stats.count())};
}

void WindowResult::set(const std::string& name, MetricStat value)
{
    for (auto& [existing, stat] : metrics) {
        if (existing == name) {
            stat = value;
            return;
        }
    }
    metrics.emplace_back(name, value);
}

const MetricStat* WindowResult::find(const std::string& name) const
{
    for (const auto& [existing, stat] : metrics)
        if (existing == name) return &stat;
    return nullptr;
}

WindowResult& RunResult::add_window(const std::string& window_label)
{
    windows.push_back(WindowResult{window_label, {}});
    return windows.back();
}

const WindowResult* RunResult::find_window(const std::string& window_label) const
{
    for (const WindowResult& window : windows)
        if (window.label == window_label) return &window;
    return nullptr;
}

RunResult& FigureResult::add_cell(const std::string& cell_label)
{
    cells.push_back(RunResult{cell_label, {}});
    return cells.back();
}

const RunResult* FigureResult::find_cell(const std::string& cell_label) const
{
    for (const RunResult& cell : cells)
        if (cell.label == cell_label) return &cell;
    return nullptr;
}

util::Json FigureResult::to_json() const
{
    util::Json root = util::Json::object();
    root.set("schema_version", kSchemaVersion);
    root.set("figure", figure);
    root.set("title", title);
    util::Json options = util::Json::object();
    options.set("scale", scale);
    // As a string: a JSON number is a double, which cannot carry the
    // full 64-bit seed range (and a 2^64 round-trip would be UB).
    options.set("seed", std::to_string(seed));
    options.set("seeds", seeds);
    root.set("options", std::move(options));

    util::Json cells_json = util::Json::array();
    for (const RunResult& cell : cells) {
        util::Json cell_json = util::Json::object();
        cell_json.set("label", cell.label);
        util::Json windows_json = util::Json::array();
        for (const WindowResult& window : cell.windows) {
            util::Json window_json = util::Json::object();
            window_json.set("label", window.label);
            util::Json metrics_json = util::Json::object();
            for (const auto& [name, stat] : window.metrics) {
                util::Json stat_json = util::Json::object();
                stat_json.set("mean", stat.mean);
                stat_json.set("ci95", stat.ci95);
                stat_json.set("n", stat.n);
                metrics_json.set(name, std::move(stat_json));
            }
            window_json.set("metrics", std::move(metrics_json));
            windows_json.push_back(std::move(window_json));
        }
        cell_json.set("windows", std::move(windows_json));
        cells_json.push_back(std::move(cell_json));
    }
    root.set("cells", std::move(cells_json));
    return root;
}

namespace {

const util::Json& require(const util::Json& json, const std::string& key)
{
    const util::Json* value = json.find(key);
    if (value == nullptr)
        throw std::runtime_error("FigureResult: missing field '" + key + "'");
    return *value;
}

}  // namespace

FigureResult FigureResult::from_json(const util::Json& json)
{
    FigureResult result;
    const int version = static_cast<int>(require(json, "schema_version").as_number());
    if (version != kSchemaVersion)
        throw std::runtime_error("FigureResult: unsupported schema_version " +
                                 std::to_string(version));
    result.figure = require(json, "figure").as_string();
    result.title = require(json, "title").as_string();
    const util::Json& options = require(json, "options");
    result.scale = require(options, "scale").as_number();
    result.seed = std::stoull(require(options, "seed").as_string());
    result.seeds = static_cast<int>(require(options, "seeds").as_number());
    for (const util::Json& cell_json : require(json, "cells").elements()) {
        RunResult& cell = result.add_cell(require(cell_json, "label").as_string());
        for (const util::Json& window_json : require(cell_json, "windows").elements()) {
            WindowResult& window = cell.add_window(require(window_json, "label").as_string());
            for (const auto& [name, stat_json] : require(window_json, "metrics").members()) {
                MetricStat stat;
                stat.mean = require(stat_json, "mean").as_number();
                stat.ci95 = require(stat_json, "ci95").as_number();
                stat.n = static_cast<int>(require(stat_json, "n").as_number());
                window.set(name, stat);
            }
        }
    }
    return result;
}

std::string FigureResult::to_csv() const
{
    std::string out = "figure,cell,window,metric,mean,ci95,n\n";
    for (const RunResult& cell : cells) {
        for (const WindowResult& window : cell.windows) {
            for (const auto& [name, stat] : window.metrics) {
                out += figure + ',' + cell.label + ',' + window.label + ',' + name + ',' +
                       util::Json::number_to_string(stat.mean) + ',' +
                       util::Json::number_to_string(stat.ci95) + ',' + std::to_string(stat.n) +
                       '\n';
            }
        }
    }
    return out;
}

RunResult run_result_from_sweep(const SweepResult& sweep, const std::vector<SweepWindow>& windows)
{
    RunResult cell;
    cell.label = sweep.label;
    for (std::size_t w = 0; w < windows.size() && w < sweep.windows.size(); ++w) {
        const SweepWindow& spec = windows[w];
        const WindowAggregate& aggregate = sweep.windows[w];
        WindowResult& window = cell.add_window(spec.label);
        for (std::size_t f = 0; f < spec.flow_ids.size() && f < aggregate.flows.size(); ++f) {
            const std::string prefix = "F" + std::to_string(spec.flow_ids[f]);
            const FlowAggregate& flow = aggregate.flows[f];
            window.set(prefix + ".kbps", metric_from_stats(flow.mean_kbps));
            window.set(prefix + ".kbps_sd", metric_from_stats(flow.stddev_kbps));
            window.set(prefix + ".delay_s", metric_from_stats(flow.mean_delay_s));
            window.set(prefix + ".delay_max_s", metric_from_stats(flow.max_delay_s));
        }
        if (spec.flow_ids.size() > 1)
            window.set("fairness", metric_from_stats(aggregate.fairness));
        window.set("aggregate_kbps", metric_from_stats(aggregate.aggregate_kbps));
    }
    return cell;
}

}  // namespace ezflow::analysis

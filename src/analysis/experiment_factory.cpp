#include "analysis/experiment_factory.h"

#include <sstream>
#include <stdexcept>

namespace ezflow::analysis {

ScenarioSpec ScenarioSpec::line(int hops, double duration_s)
{
    ScenarioSpec spec;
    spec.kind = Kind::kLine;
    spec.line_hops = hops;
    spec.line_duration_s = duration_s;
    return spec;
}

ScenarioSpec ScenarioSpec::testbed(double f1_start_s, double f1_stop_s, double f2_start_s,
                                   double f2_stop_s)
{
    ScenarioSpec spec;
    spec.kind = Kind::kTestbed;
    spec.testbed_f1_start_s = f1_start_s;
    spec.testbed_f1_stop_s = f1_stop_s;
    spec.testbed_f2_start_s = f2_start_s;
    spec.testbed_f2_stop_s = f2_stop_s;
    return spec;
}

ScenarioSpec ScenarioSpec::scenario1(double time_scale)
{
    ScenarioSpec spec;
    spec.kind = Kind::kScenario1;
    spec.time_scale = time_scale;
    return spec;
}

ScenarioSpec ScenarioSpec::scenario2(double time_scale)
{
    ScenarioSpec spec;
    spec.kind = Kind::kScenario2;
    spec.time_scale = time_scale;
    return spec;
}

ScenarioSpec ScenarioSpec::grid_cross(const net::GridSpec& grid)
{
    ScenarioSpec spec;
    spec.kind = Kind::kGridCross;
    spec.grid = grid;
    return spec;
}

ScenarioSpec ScenarioSpec::grid_gateway(const net::GridSpec& grid)
{
    ScenarioSpec spec;
    spec.kind = Kind::kGridGateway;
    spec.grid = grid;
    return spec;
}

ScenarioSpec ScenarioSpec::parking_lot(int hops, int flows, double duration_s)
{
    ScenarioSpec spec;
    spec.kind = Kind::kParkingLot;
    spec.lot_hops = hops;
    spec.lot_flows = flows;
    spec.lot_duration_s = duration_s;
    return spec;
}

ScenarioSpec ScenarioSpec::random_mesh(const net::MeshSpec& mesh)
{
    ScenarioSpec spec;
    spec.kind = Kind::kMesh;
    spec.mesh = mesh;
    return spec;
}

ScenarioSpec ScenarioSpec::islands_spec(const net::IslandsSpec& islands)
{
    ScenarioSpec spec;
    spec.kind = Kind::kIslands;
    spec.islands = islands;
    spec.shards = islands.max_shards;
    return spec;
}

ScenarioSpec ScenarioSpec::clusters_spec(const net::ClustersSpec& clusters)
{
    ScenarioSpec spec;
    spec.kind = Kind::kClusters;
    spec.clusters = clusters;
    spec.shards = clusters.max_shards;
    return spec;
}

std::string scenario_name(const ScenarioSpec& spec)
{
    std::ostringstream out;
    switch (spec.kind) {
        case ScenarioSpec::Kind::kLine: out << "line-" << spec.line_hops << "hop"; break;
        case ScenarioSpec::Kind::kTestbed: out << "testbed"; break;
        case ScenarioSpec::Kind::kScenario1: out << "scenario1 x" << spec.time_scale; break;
        case ScenarioSpec::Kind::kScenario2: out << "scenario2 x" << spec.time_scale; break;
        case ScenarioSpec::Kind::kGridCross:
            out << "grid-" << spec.grid.cols << "x" << spec.grid.rows << "-f"
                << spec.grid.cross_flows;
            break;
        case ScenarioSpec::Kind::kGridGateway:
            out << "grid-" << spec.grid.cols << "x" << spec.grid.rows << "-gw"
                << spec.grid.sources;
            break;
        case ScenarioSpec::Kind::kParkingLot:
            out << "lot-" << spec.lot_hops << "hop-f" << spec.lot_flows;
            break;
        case ScenarioSpec::Kind::kMesh:
            out << "mesh-" << spec.mesh.nodes << "n-f" << spec.mesh.flows;
            break;
        case ScenarioSpec::Kind::kIslands:
            out << "islands-" << spec.islands.islands << "x" << spec.islands.cols << "x"
                << spec.islands.rows;
            break;
        case ScenarioSpec::Kind::kClusters:
            out << "clusters-" << spec.clusters.clusters << "x" << spec.clusters.cols << "x"
                << spec.clusters.rows;
            break;
    }
    // Deliberately no shard suffix: the label feeds figure JSON, which
    // must stay byte-identical across shard counts. The A-MPDU batch size
    // DOES change results, so it is part of the name (K=1 keeps every
    // pre-existing label untouched).
    if (spec.ampdu_max_mpdus > 1) out << "-k" << spec.ampdu_max_mpdus;
    return out.str();
}

namespace {

net::Scenario build_topology(const ScenarioSpec& spec, std::uint64_t seed)
{
    switch (spec.kind) {
        case ScenarioSpec::Kind::kLine:
            return net::make_line(spec.line_hops, spec.line_duration_s, seed);
        case ScenarioSpec::Kind::kTestbed:
            return net::make_testbed(spec.testbed_f1_start_s, spec.testbed_f1_stop_s,
                                     spec.testbed_f2_start_s, spec.testbed_f2_stop_s, seed);
        case ScenarioSpec::Kind::kScenario1:
            return net::make_scenario1(spec.time_scale, seed);
        case ScenarioSpec::Kind::kScenario2:
            return net::make_scenario2(spec.time_scale, seed);
        case ScenarioSpec::Kind::kGridCross: {
            net::GridSpec grid = spec.grid;
            grid.max_shards = spec.shards;
            return net::make_grid_cross(grid, seed);
        }
        case ScenarioSpec::Kind::kGridGateway: {
            net::GridSpec grid = spec.grid;
            grid.max_shards = spec.shards;
            return net::make_grid_convergecast(grid, seed);
        }
        case ScenarioSpec::Kind::kParkingLot:
            return net::make_parking_lot_chain(spec.lot_hops, spec.lot_flows, spec.lot_start_s,
                                               spec.lot_duration_s, seed);
        case ScenarioSpec::Kind::kMesh: {
            net::MeshSpec mesh = spec.mesh;
            mesh.max_shards = spec.shards;
            return net::make_random_mesh(mesh, seed);
        }
        case ScenarioSpec::Kind::kIslands: {
            net::IslandsSpec islands = spec.islands;
            islands.max_shards = spec.shards;
            return net::make_islands(islands, seed);
        }
        case ScenarioSpec::Kind::kClusters: {
            net::ClustersSpec clusters = spec.clusters;
            clusters.max_shards = spec.shards;
            return net::make_cluster_grid(clusters, seed);
        }
    }
    throw std::logic_error("build_scenario: unknown scenario kind");
}

}  // namespace

net::Scenario build_scenario(const ScenarioSpec& spec, std::uint64_t seed)
{
    net::Scenario scenario = build_topology(spec, seed);
    // Model installation is applied after construction rather than threaded
    // through every topology builder; a reference config is an exact no-op.
    scenario.network->set_phy_models(spec.models);
    if (spec.ampdu_max_mpdus > 1) scenario.network->set_ampdu_max_mpdus(spec.ampdu_max_mpdus);
    scenario.faults = spec.faults;
    return scenario;
}

}  // namespace ezflow::analysis

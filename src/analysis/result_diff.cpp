#include "analysis/result_diff.h"

#include <cmath>

namespace ezflow::analysis {

namespace {

bool within_tolerance(double golden, double candidate, const DiffOptions& options)
{
    if (options.bit_exact) return golden == candidate;
    const double magnitude = std::max(std::fabs(golden), std::fabs(candidate));
    return std::fabs(golden - candidate) <= options.abs_tol + options.rel_tol * magnitude;
}

void add_finding(DiffReport& report, DiffFinding::Kind kind, std::string path,
                 std::string message, double golden = 0.0, double candidate = 0.0)
{
    report.findings.push_back(
        DiffFinding{kind, std::move(path), golden, candidate, std::move(message)});
}

void diff_metric(DiffReport& report, const std::string& path, const MetricStat& golden,
                 const MetricStat& candidate, const DiffOptions& options)
{
    ++report.metrics_compared;
    // n=0 marks a cell with no underlying samples (an unmeasured window):
    // its mean is a placeholder 0.0, not a measured zero. Presence of data
    // must match on both sides even in tolerance mode — comparing a
    // fabricated zero against a real measurement (or vice versa) would
    // silently pass whenever the measurement is small.
    if ((golden.n == 0) != (candidate.n == 0)) {
        add_finding(report, DiffFinding::Kind::kValue, path + ".n",
                    "sample presence differs (n=0 means no data, not zero)",
                    static_cast<double>(golden.n), static_cast<double>(candidate.n));
        return;
    }
    if (golden.n == 0) return;  // both unmeasured: placeholders carry no information
    if (!within_tolerance(golden.mean, candidate.mean, options)) {
        add_finding(report, DiffFinding::Kind::kValue, path + ".mean",
                    "mean out of tolerance", golden.mean, candidate.mean);
    }
    // Confidence widths and seed counts only matter for exactness: a
    // tolerance-mode diff compares the estimates, not their noise.
    if (options.bit_exact) {
        if (golden.ci95 != candidate.ci95)
            add_finding(report, DiffFinding::Kind::kValue, path + ".ci95",
                        "ci95 not bit-exact", golden.ci95, candidate.ci95);
        if (golden.n != candidate.n)
            add_finding(report, DiffFinding::Kind::kValue, path + ".n", "seed count differs",
                        golden.n, candidate.n);
    }
}

void diff_window(DiffReport& report, const std::string& path, const WindowResult& golden,
                 const WindowResult& candidate, const DiffOptions& options)
{
    for (const auto& [name, stat] : golden.metrics) {
        const MetricStat* other = candidate.find(name);
        if (other == nullptr) {
            add_finding(report, DiffFinding::Kind::kMissingMetric, path + ".metrics[" + name + "]",
                        "metric missing from candidate");
            continue;
        }
        diff_metric(report, path + ".metrics[" + name + "]", stat, *other, options);
    }
    for (const auto& [name, stat] : candidate.metrics) {
        if (golden.find(name) == nullptr)
            add_finding(report, DiffFinding::Kind::kExtraMetric, path + ".metrics[" + name + "]",
                        "metric absent from golden (regenerate goldens?)");
    }
}

}  // namespace

DiffReport diff_results(const FigureResult& golden, const FigureResult& candidate,
                        const DiffOptions& options)
{
    DiffReport report;
    if (golden.figure != candidate.figure)
        add_finding(report, DiffFinding::Kind::kMetadata, "figure",
                    "figure name mismatch: golden '" + golden.figure + "' vs candidate '" +
                        candidate.figure + "'");
    if (golden.scale != candidate.scale || golden.seed != candidate.seed ||
        golden.seeds != candidate.seeds)
        add_finding(report, DiffFinding::Kind::kMetadata, "options",
                    "run options differ (scale/seed/seeds) — not comparable");

    for (const RunResult& cell : golden.cells) {
        const RunResult* other = candidate.find_cell(cell.label);
        const std::string cell_path = "cells[" + cell.label + "]";
        if (other == nullptr) {
            add_finding(report, DiffFinding::Kind::kMissingCell, cell_path,
                        "cell missing from candidate");
            continue;
        }
        for (const WindowResult& window : cell.windows) {
            const WindowResult* other_window = other->find_window(window.label);
            const std::string window_path = cell_path + ".windows[" + window.label + "]";
            if (other_window == nullptr) {
                add_finding(report, DiffFinding::Kind::kMissingWindow, window_path,
                            "window missing from candidate");
                continue;
            }
            diff_window(report, window_path, window, *other_window, options);
        }
        // Candidate windows the golden lacks: new coverage must be pinned
        // by regenerating the goldens, not slipped past the diff.
        for (const WindowResult& window : other->windows) {
            if (cell.find_window(window.label) == nullptr)
                add_finding(report, DiffFinding::Kind::kExtraWindow,
                            cell_path + ".windows[" + window.label + "]",
                            "window absent from golden (regenerate goldens?)");
        }
    }
    for (const RunResult& cell : candidate.cells) {
        if (golden.find_cell(cell.label) == nullptr)
            add_finding(report, DiffFinding::Kind::kExtraCell, "cells[" + cell.label + "]",
                        "cell absent from golden (regenerate goldens?)");
    }
    return report;
}

std::string DiffReport::to_string() const
{
    std::string out;
    for (const DiffFinding& finding : findings) {
        out += "  FAIL " + finding.path + ": " + finding.message;
        if (finding.kind == DiffFinding::Kind::kValue) {
            out += " (golden " + util::Json::number_to_string(finding.golden) + ", candidate " +
                   util::Json::number_to_string(finding.candidate);
            const double magnitude =
                std::max(std::fabs(finding.golden), std::fabs(finding.candidate));
            if (magnitude > 0) {
                const double rel = std::fabs(finding.golden - finding.candidate) / magnitude;
                out += ", rel " + util::Json::number_to_string(rel);
            }
            out += ")";
        }
        out += '\n';
    }
    return out;
}

}  // namespace ezflow::analysis

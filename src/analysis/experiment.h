#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.h"
#include "analysis/recorder.h"
#include "core/agent.h"
#include "core/penalty.h"
#include "net/topologies.h"
#include "sim/fault_injector.h"
#include "traffic/sink.h"
#include "traffic/source.h"

namespace ezflow::analysis {

/// Channel-access policy under test.
enum class Mode {
    kBaseline80211,  ///< plain IEEE 802.11 DCF (the paper's baseline)
    kEzFlow,         ///< EZ-Flow agents at every transmitting node
    kPenalty,        ///< the static penalty-q policy of [9] (ablation)
};

std::string mode_name(Mode mode);

struct ExperimentOptions {
    Mode mode = Mode::kBaseline80211;
    core::CaaConfig caa{};             ///< EZ-Flow parameters (mode kEzFlow)
    core::PenaltyConfig penalty{};     ///< penalty parameters (mode kPenalty)
    double cbr_rate_bps = 2e6;         ///< saturating CBR, as in the paper
    int payload_bytes = 1000;
    util::SimTime throughput_window = 10 * util::kSecond;
    util::SimTime buffer_sample_period = 100 * util::kMillisecond;
    util::SimTime cw_sample_period = util::kSecond;
    double boe_sniff_loss = 0.0;       ///< ablation: fraction of sniffs missed
    std::size_t boe_history = 1000;    ///< BOE sent-list length (paper: 1000)
    /// Streaming measurement: recorders keep whole-run summaries
    /// (RunningStats) instead of per-event series, so peak memory is
    /// O(nodes + flows) regardless of run length. summarize() then
    /// reports whole-run delay stats instead of windowed ones; series
    /// accessors (delay_series, tracer trace(), goodput_kbps) are
    /// unavailable. For long perf runs (islands / 10k grids), not for
    /// figure generation.
    bool streaming = false;
};

/// Owns a scenario plus everything needed to run and measure it:
/// CBR sources per flow plan, a sink at each destination, buffer and cw
/// tracers on every transmitting node, and a throughput meter per flow.
class Experiment {
public:
    Experiment(net::Scenario scenario, ExperimentOptions options);
    Experiment(const Experiment&) = delete;
    Experiment& operator=(const Experiment&) = delete;

    /// Run until the latest flow stop time plus a small drain margin.
    void run();
    /// Run until `t_s` seconds of simulated time.
    void run_until_s(double t_s);

    net::Network& network() { return *scenario_.network; }
    const net::Scenario& scenario() const { return scenario_; }
    traffic::Sink& sink() { return *sink_; }
    BufferTracer& buffers() { return *buffer_tracer_; }
    CwTracer& cw_tracer() { return *cw_tracer_; }
    ThroughputMeter& throughput(int flow_id);
    const core::EzFlowAgent* agent(net::NodeId node) const;

    /// Mean/stddev goodput (kb/s) and mean delay (s) over [from_s, to_s).
    /// The sample counts distinguish a measured zero from an unmeasured
    /// window (throughput windows / deliveries inside the interval): the
    /// value fields are 0.0 either way, and aggregation must not treat a
    /// window that was never measured as a genuine zero.
    struct FlowSummary {
        double mean_kbps = 0.0;
        double stddev_kbps = 0.0;
        double mean_delay_s = 0.0;
        double max_delay_s = 0.0;
        std::int64_t throughput_samples = 0;
        std::int64_t delay_samples = 0;
    };
    FlowSummary summarize(int flow_id, double from_s, double to_s) const;

    /// Jain's index over the given flows' goodput in [from_s, to_s).
    double fairness(const std::vector<int>& flow_ids, double from_s, double to_s) const;

    /// Nodes that transmit data (sources + relays), in id order.
    const std::vector<net::NodeId>& transmitting_nodes() const { return transmitters_; }

    /// The flows' traffic sources, in scenario flow-plan order (stats()
    /// settles closed-form accounting, hence non-const).
    const std::vector<std::unique_ptr<traffic::Source>>& sources() { return sources_; }

    /// The armed fault injector, or null when the scenario carries no
    /// fault plan.
    const sim::FaultInjector* fault_injector() const { return fault_injector_.get(); }

private:
    net::Scenario scenario_;
    ExperimentOptions options_;
    std::unique_ptr<traffic::Sink> sink_;
    std::vector<std::unique_ptr<traffic::Source>> sources_;
    std::map<int, std::unique_ptr<ThroughputMeter>> throughput_;
    std::unique_ptr<BufferTracer> buffer_tracer_;
    std::unique_ptr<CwTracer> cw_tracer_;
    std::map<net::NodeId, std::unique_ptr<core::EzFlowAgent>> agents_;
    std::vector<net::NodeId> transmitters_;
    std::unique_ptr<sim::FaultInjector> fault_injector_;
};

}  // namespace ezflow::analysis

#include "analysis/recorder.h"

#include <stdexcept>

namespace ezflow::analysis {

BufferTracer::BufferTracer(net::Network& network, std::vector<net::NodeId> nodes, SimTime period)
    : network_(network), nodes_(std::move(nodes)), period_(period)
{
    if (period_ <= 0) throw std::invalid_argument("BufferTracer: period must be > 0");
    for (net::NodeId n : nodes_) traces_[n];
}

void BufferTracer::start()
{
    if (started_) throw std::logic_error("BufferTracer::start: already started");
    started_ = true;
    network_.scheduler().schedule_in(period_, [this] { sample(); });
}

void BufferTracer::sample()
{
    for (net::NodeId n : nodes_) {
        const int backlog = network_.node(n).mac().queues().total_packets();
        traces_.at(n).add(network_.now(), static_cast<double>(backlog));
    }
    network_.scheduler().schedule_in(period_, [this] { sample(); });
}

const util::TimeSeries& BufferTracer::trace(net::NodeId node) const
{
    const auto it = traces_.find(node);
    if (it == traces_.end()) throw std::invalid_argument("BufferTracer::trace: untracked node");
    return it->second;
}

double BufferTracer::mean_occupancy(net::NodeId node, SimTime from, SimTime to) const
{
    return trace(node).mean_between(from, to);
}

double BufferTracer::max_occupancy(net::NodeId node) const
{
    const util::TimeSeries& t = trace(node);
    double max = 0.0;
    for (double v : t.values()) max = std::max(max, v);
    return max;
}

ThroughputMeter::ThroughputMeter(net::Network& network, int flow_id, SimTime window)
    : network_(network), flow_id_(flow_id), window_(window)
{
    if (window_ <= 0) throw std::invalid_argument("ThroughputMeter: window must be > 0");
    const auto& path = network_.routing().path(flow_id);
    network_.node(path.back()).add_delivery_handler([this](const net::Packet& packet) {
        if (packet.flow_id == flow_id_)
            bits_in_window_ += static_cast<std::uint64_t>(packet.bytes) * 8;
    });
}

void ThroughputMeter::start()
{
    if (started_) throw std::logic_error("ThroughputMeter::start: already started");
    started_ = true;
    network_.scheduler().schedule_in(window_, [this] { on_window(); });
}

void ThroughputMeter::on_window()
{
    series_.add(network_.now(), util::kbps(static_cast<std::int64_t>(bits_in_window_), window_));
    bits_in_window_ = 0;
    network_.scheduler().schedule_in(window_, [this] { on_window(); });
}

CwTracer::CwTracer(net::Network& network, std::vector<Target> targets, SimTime period)
    : network_(network), targets_(std::move(targets)), period_(period)
{
    if (period_ <= 0) throw std::invalid_argument("CwTracer: period must be > 0");
    for (const Target& t : targets_) traces_[t.node];
}

void CwTracer::start()
{
    if (started_) throw std::logic_error("CwTracer::start: already started");
    started_ = true;
    network_.scheduler().schedule_in(period_, [this] { sample(); });
}

void CwTracer::sample()
{
    for (const Target& t : targets_) {
        // Either traffic class toward the successor carries the EZ-Flow
        // cw; prefer whichever queue exists.
        const mac::MacQueueSet& queues = network_.node(t.node).mac().queues();
        const mac::MacQueue* q = queues.find(mac::QueueKey{t.successor, false});
        if (q == nullptr) q = queues.find(mac::QueueKey{t.successor, true});
        if (q == nullptr) continue;  // node has not transmitted yet
        traces_.at(t.node).add(network_.now(), static_cast<double>(q->cw_min()));
    }
    network_.scheduler().schedule_in(period_, [this] { sample(); });
}

const util::TimeSeries& CwTracer::trace(net::NodeId node) const
{
    const auto it = traces_.find(node);
    if (it == traces_.end()) throw std::invalid_argument("CwTracer::trace: untracked node");
    return it->second;
}

}  // namespace ezflow::analysis

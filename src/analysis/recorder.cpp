#include "analysis/recorder.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ezflow::analysis {

namespace {

/// Group items into per-shard sweeps, preserving the input order within
/// each shard; sweeps ascend by shard id. One shard (the serial
/// reference) yields a single sweep over the original order, so the
/// event pattern is byte-identical to the unsharded tracer.
template <typename Item, typename Sweep, typename ShardOf>
std::vector<Sweep> group_by_shard(net::Network& network, const std::vector<Item>& items,
                                  const ShardOf& shard_of)
{
    std::map<int, std::vector<Item>> by_shard;
    for (const Item& item : items) by_shard[shard_of(item)].push_back(item);
    std::vector<Sweep> sweeps;
    sweeps.reserve(by_shard.size());
    for (auto& [shard, members] : by_shard)
        sweeps.push_back(Sweep{&network.shard_scheduler(shard), std::move(members)});
    return sweeps;
}

}  // namespace

BufferTracer::BufferTracer(net::Network& network, std::vector<net::NodeId> nodes, SimTime period,
                           bool streaming)
    : network_(network), period_(period), streaming_(streaming)
{
    if (period_ <= 0) throw std::invalid_argument("BufferTracer: period must be > 0");
    for (net::NodeId n : nodes) {
        if (streaming_)
            stats_[n];
        else
            traces_[n];
    }
    sweeps_ = group_by_shard<net::NodeId, Sweep>(
        network_, nodes, [this](net::NodeId n) { return network_.shard_of(n); });
}

void BufferTracer::start()
{
    if (started_) throw std::logic_error("BufferTracer::start: already started");
    started_ = true;
    for (std::size_t s = 0; s < sweeps_.size(); ++s)
        sweeps_[s].scheduler->schedule_in(period_, [this, s] { sample(s); });
}

void BufferTracer::sample(std::size_t sweep)
{
    Sweep& group = sweeps_[sweep];
    const SimTime now = group.scheduler->now();
    for (net::NodeId n : group.nodes) {
        const int backlog = network_.node(n).mac().queues().total_packets();
        if (streaming_)
            stats_.at(n).add(static_cast<double>(backlog));
        else
            traces_.at(n).add(now, static_cast<double>(backlog));
    }
    group.scheduler->schedule_in(period_, [this, sweep] { sample(sweep); });
}

const util::TimeSeries& BufferTracer::trace(net::NodeId node) const
{
    if (streaming_)
        throw std::logic_error("BufferTracer::trace: no series in streaming mode");
    const auto it = traces_.find(node);
    if (it == traces_.end()) throw std::invalid_argument("BufferTracer::trace: untracked node");
    return it->second;
}

double BufferTracer::mean_occupancy(net::NodeId node, SimTime from, SimTime to) const
{
    if (streaming_) {
        const auto it = stats_.find(node);
        if (it == stats_.end())
            throw std::invalid_argument("BufferTracer::mean_occupancy: untracked node");
        return it->second.mean();  // whole-run mean; windows need the series
    }
    return trace(node).mean_between(from, to);
}

double BufferTracer::max_occupancy(net::NodeId node) const
{
    if (streaming_) {
        const auto it = stats_.find(node);
        if (it == stats_.end())
            throw std::invalid_argument("BufferTracer::max_occupancy: untracked node");
        return it->second.count() > 0 ? it->second.max() : 0.0;
    }
    const util::TimeSeries& t = trace(node);
    double max = 0.0;
    for (double v : t.values()) max = std::max(max, v);
    return max;
}

std::size_t BufferTracer::stored_samples() const
{
    std::size_t total = 0;
    for (const auto& [node, series] : traces_) total += series.size();
    return total;
}

ThroughputMeter::ThroughputMeter(net::Network& network, int flow_id, SimTime window)
    : network_(network), flow_id_(flow_id), window_(window)
{
    if (window_ <= 0) throw std::invalid_argument("ThroughputMeter: window must be > 0");
    const auto& path = network_.routing().path(flow_id);
    scheduler_ = &network_.scheduler_for(path.back());
    network_.node(path.back()).add_delivery_handler([this](const net::Packet& packet) {
        if (packet.flow_id == flow_id_)
            bits_in_window_ += static_cast<std::uint64_t>(packet.bytes) * 8;
    });
}

void ThroughputMeter::start()
{
    if (started_) throw std::logic_error("ThroughputMeter::start: already started");
    started_ = true;
    scheduler_->schedule_in(window_, [this] { on_window(); });
}

void ThroughputMeter::on_window()
{
    series_.add(scheduler_->now(), util::kbps(static_cast<std::int64_t>(bits_in_window_), window_));
    bits_in_window_ = 0;
    scheduler_->schedule_in(window_, [this] { on_window(); });
}

CwTracer::CwTracer(net::Network& network, std::vector<Target> targets, SimTime period,
                   bool streaming)
    : network_(network), period_(period), streaming_(streaming)
{
    if (period_ <= 0) throw std::invalid_argument("CwTracer: period must be > 0");
    for (const Target& t : targets) {
        if (streaming_)
            stats_[t.node];
        else
            traces_[t.node];
    }
    sweeps_ = group_by_shard<Target, Sweep>(
        network_, targets, [this](const Target& t) { return network_.shard_of(t.node); });
}

void CwTracer::start()
{
    if (started_) throw std::logic_error("CwTracer::start: already started");
    started_ = true;
    for (std::size_t s = 0; s < sweeps_.size(); ++s)
        sweeps_[s].scheduler->schedule_in(period_, [this, s] { sample(s); });
}

void CwTracer::sample(std::size_t sweep)
{
    Sweep& group = sweeps_[sweep];
    const SimTime now = group.scheduler->now();
    for (const Target& t : group.targets) {
        // Either traffic class toward the successor carries the EZ-Flow
        // cw; prefer whichever queue exists.
        const mac::MacQueueSet& queues = network_.node(t.node).mac().queues();
        const mac::MacQueue* q = queues.find(mac::QueueKey{t.successor, false});
        if (q == nullptr) q = queues.find(mac::QueueKey{t.successor, true});
        if (q == nullptr) continue;  // node has not transmitted yet
        if (streaming_)
            stats_.at(t.node).add(static_cast<double>(q->cw_min()));
        else
            traces_.at(t.node).add(now, static_cast<double>(q->cw_min()));
    }
    group.scheduler->schedule_in(period_, [this, sweep] { sample(sweep); });
}

const util::TimeSeries& CwTracer::trace(net::NodeId node) const
{
    if (streaming_) throw std::logic_error("CwTracer::trace: no series in streaming mode");
    const auto it = traces_.find(node);
    if (it == traces_.end()) throw std::invalid_argument("CwTracer::trace: untracked node");
    return it->second;
}

std::size_t CwTracer::stored_samples() const
{
    std::size_t total = 0;
    for (const auto& [node, series] : traces_) total += series.size();
    return total;
}

}  // namespace ezflow::analysis

#pragma once

#include <vector>

namespace ezflow::analysis {

/// Jain's fairness index, Eq. (1) of the paper:
/// FI = (sum x_i)^2 / (n * sum x_i^2). 1.0 means perfectly fair;
/// 1/n means one flow takes everything. Throws on an empty input;
/// all-zero throughputs return 1.0 by convention (everyone equally starved).
double jain_index(const std::vector<double>& throughputs);

}  // namespace ezflow::analysis

#include "analysis/experiment.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ezflow::analysis {

std::string mode_name(Mode mode)
{
    switch (mode) {
        case Mode::kBaseline80211: return "802.11";
        case Mode::kEzFlow: return "EZ-flow";
        case Mode::kPenalty: return "penalty-q";
    }
    throw std::logic_error("mode_name: unknown mode");
}

Experiment::Experiment(net::Scenario scenario, ExperimentOptions options)
    : scenario_(std::move(scenario)), options_(options)
{
    net::Network& net = *scenario_.network;

    // Collect transmitting nodes (sources + relays) and cw-trace targets.
    std::set<net::NodeId> transmitters;
    std::vector<CwTracer::Target> cw_targets;
    for (const net::FlowPlan& plan : scenario_.flows) {
        for (std::size_t i = 0; i + 1 < plan.path.size(); ++i) {
            if (transmitters.insert(plan.path[i]).second)
                cw_targets.push_back(CwTracer::Target{plan.path[i], plan.path[i + 1]});
        }
    }
    transmitters_.assign(transmitters.begin(), transmitters.end());

    // Policy under test.
    switch (options_.mode) {
        case Mode::kBaseline80211:
            break;
        case Mode::kEzFlow:
            agents_ = core::install_ezflow(net, options_.caa, options_.boe_history,
                                           options_.boe_sniff_loss,
                                           /*record_traces=*/!options_.streaming);
            break;
        case Mode::kPenalty:
            core::apply_penalty_policy(net, options_.penalty);
            break;
    }

    // Traffic and measurement plumbing.
    sink_ = std::make_unique<traffic::Sink>(net);
    sink_->set_streaming(options_.streaming);
    for (const net::FlowPlan& plan : scenario_.flows) {
        sink_->attach_flow(plan.flow_id);
        throughput_[plan.flow_id] =
            std::make_unique<ThroughputMeter>(net, plan.flow_id, options_.throughput_window);
        throughput_[plan.flow_id]->start();
        auto source = std::make_unique<traffic::CbrSource>(net, plan.flow_id, options_.payload_bytes,
                                                           options_.cbr_rate_bps);
        source->activate(util::from_seconds(plan.start_s), util::from_seconds(plan.stop_s));
        sources_.push_back(std::move(source));
    }
    buffer_tracer_ = std::make_unique<BufferTracer>(net, transmitters_,
                                                    options_.buffer_sample_period,
                                                    options_.streaming);
    buffer_tracer_->start();
    cw_tracer_ = std::make_unique<CwTracer>(net, cw_targets, options_.cw_sample_period,
                                            options_.streaming);
    cw_tracer_->start();

    if (!scenario_.faults.empty()) {
        fault_injector_ = std::make_unique<sim::FaultInjector>(net, scenario_.faults);
        fault_injector_->arm();
    }
}

void Experiment::run()
{
    double stop_s = 0.0;
    for (const net::FlowPlan& plan : scenario_.flows) stop_s = std::max(stop_s, plan.stop_s);
    run_until_s(stop_s + 1.0);
}

void Experiment::run_until_s(double t_s)
{
    scenario_.network->run_until(util::from_seconds(t_s));
}

ThroughputMeter& Experiment::throughput(int flow_id)
{
    const auto it = throughput_.find(flow_id);
    if (it == throughput_.end()) throw std::invalid_argument("Experiment::throughput: unknown flow");
    return *it->second;
}

const core::EzFlowAgent* Experiment::agent(net::NodeId node) const
{
    const auto it = agents_.find(node);
    return it == agents_.end() ? nullptr : it->second.get();
}

Experiment::FlowSummary Experiment::summarize(int flow_id, double from_s, double to_s) const
{
    const auto it = throughput_.find(flow_id);
    if (it == throughput_.end()) throw std::invalid_argument("Experiment::summarize: unknown flow");
    const util::SimTime from = util::from_seconds(from_s);
    const util::SimTime to = util::from_seconds(to_s);
    FlowSummary summary;
    summary.mean_kbps = it->second->mean_kbps(from, to);
    summary.stddev_kbps = it->second->stddev_kbps(from, to);
    summary.throughput_samples = it->second->samples(from, to);
    if (options_.streaming) {
        // No delay series in streaming mode; report the whole-run stats.
        const util::RunningStats& delays = sink_->flow(flow_id).delay_us;
        summary.delay_samples = delays.count();
        if (delays.count() > 0) {
            summary.mean_delay_s = delays.mean() / static_cast<double>(util::kSecond);
            summary.max_delay_s = delays.max() / static_cast<double>(util::kSecond);
        }
        return summary;
    }
    const util::TimeSeries& delays = sink_->flow(flow_id).delay_series;
    summary.delay_samples = delays.count_between(from, to);
    summary.mean_delay_s = delays.mean_between(from, to) / static_cast<double>(util::kSecond);
    summary.max_delay_s = delays.max_between(from, to) / static_cast<double>(util::kSecond);
    return summary;
}

double Experiment::fairness(const std::vector<int>& flow_ids, double from_s, double to_s) const
{
    std::vector<double> rates;
    rates.reserve(flow_ids.size());
    for (int id : flow_ids) {
        const auto it = throughput_.find(id);
        if (it == throughput_.end()) throw std::invalid_argument("Experiment::fairness: unknown flow");
        rates.push_back(
            it->second->mean_kbps(util::from_seconds(from_s), util::from_seconds(to_s)));
    }
    return jain_index(rates);
}

}  // namespace ezflow::analysis

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sweep.h"
#include "util/json.h"
#include "util/stats.h"

namespace ezflow::analysis {

/// One reported metric of a figure: the across-seed mean, the 95%
/// confidence half-width, and the number of seeds behind it (n = 1 for
/// point measurements from a single run).
struct MetricStat {
    double mean = 0.0;
    double ci95 = 0.0;
    int n = 1;
};

/// A single-run value (no confidence interval).
inline MetricStat metric_point(double value)
{
    return MetricStat{value, 0.0, 1};
}

/// Across-seed aggregate of a RunningStats accumulator.
MetricStat metric_from_stats(const util::RunningStats& stats);

/// One measurement window of one grid cell: a label ("F1 alone", "P2",
/// "settled") plus an insertion-ordered metric map. Metric names are
/// stable identifiers ("F1.kbps", "fairness", "N1.buf_mean") — the diff
/// harness matches goldens by them.
struct WindowResult {
    std::string label;
    std::vector<std::pair<std::string, MetricStat>> metrics;

    void set(const std::string& name, MetricStat value);
    const MetricStat* find(const std::string& name) const;
};

/// Everything one grid cell (scenario x policy/variant) of a figure
/// produced: the cell label and its measurement windows in order.
struct RunResult {
    std::string label;
    std::vector<WindowResult> windows;

    WindowResult& add_window(const std::string& label);
    const WindowResult* find_window(const std::string& label) const;
};

/// The machine-readable product of one figure run: what `ezflow run`
/// serializes to <out>/<figure>.json and `ezflow diff` compares against
/// the committed goldens. Deliberately excludes wall-clock time and the
/// thread count so same-seed runs are byte-identical across machines'
/// parallelism (the CI determinism gate relies on this).
struct FigureResult {
    static constexpr int kSchemaVersion = 1;

    std::string figure;  ///< registry name, e.g. "fig06"
    std::string title;
    double scale = 1.0;
    std::uint64_t seed = 0;
    int seeds = 1;
    std::vector<RunResult> cells;

    RunResult& add_cell(const std::string& label);
    const RunResult* find_cell(const std::string& label) const;

    util::Json to_json() const;
    static FigureResult from_json(const util::Json& json);

    /// Flat CSV rows (cell,window,metric,mean,ci95,n), one per metric.
    std::string to_csv() const;
};

/// Convert one sweep cell into a RunResult: per window, per flow, the
/// across-seed mean/CI of kbps / stddev / delay, plus fairness and the
/// aggregate throughput when the window spans several flows. `windows`
/// must be the SweepConfig windows the sweep ran with (for labels and
/// flow ids).
RunResult run_result_from_sweep(const SweepResult& sweep, const std::vector<SweepWindow>& windows);

}  // namespace ezflow::analysis

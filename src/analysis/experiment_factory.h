#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/experiment.h"
#include "net/topo_gen.h"
#include "net/topologies.h"

namespace ezflow::analysis {

/// Declarative description of which canned topology to build and with
/// which knobs — the "scenario" axis of a sweep grid. Extracted from the
/// per-bench construction code so the same spec can be replayed across
/// seeds, modes, and threads.
struct ScenarioSpec {
    enum class Kind {
        kLine,        ///< K-hop chain (Fig. 1 family)
        kTestbed,     ///< 9-router testbed of Fig. 3 (Table 1/2, Fig. 4)
        kScenario1,   ///< two 8-hop flows merging at a gateway (Figs. 6-8)
        kScenario2,   ///< three crossing flows, hidden sources (Figs. 9-11)
        kGridCross,   ///< N x M lattice with crossing row/column flows
        kGridGateway, ///< N x M lattice, edge sources converging on node 0
        kParkingLot,  ///< arbitrary-length chain, staggered entry flows
        kMesh,        ///< seeded random mesh, shortest-path flows
        kIslands,     ///< disconnected grid islands (sharded-engine bench)
        kClusters,    ///< connected clustered grids (connected-cut bench)
    };

    Kind kind = Kind::kScenario1;

    /// Timeline compression for scenario 1/2 (1.0 = the paper's full
    /// durations).
    double time_scale = 1.0;

    // kLine knobs.
    int line_hops = 4;
    double line_duration_s = 60.0;

    // kTestbed activity windows (seconds).
    double testbed_f1_start_s = 5.0;
    double testbed_f1_stop_s = 65.0;
    double testbed_f2_start_s = 5.0;
    double testbed_f2_stop_s = 65.0;

    // kGridCross / kGridGateway knobs (generated lattices, net/topo_gen.h).
    net::GridSpec grid;

    // kParkingLot knobs.
    int lot_hops = 8;
    int lot_flows = 3;
    double lot_start_s = 5.0;
    double lot_duration_s = 60.0;

    // kMesh knobs.
    net::MeshSpec mesh;

    // kIslands knobs.
    net::IslandsSpec islands;

    // kClusters knobs.
    net::ClustersSpec clusters;

    /// Shard budget for generated topologies (grid / mesh / islands):
    /// the Network partitions nodes into up to this many conflict-free
    /// shards. 1 keeps the serial engine; connected topologies collapse
    /// back to one shard regardless. Ignored by the hand-built paper
    /// scenarios, which are all single-component.
    int shards = 1;

    /// PHY model selection applied to the built Network (propagation /
    /// interference / rate, see phy::PhyModelConfig). The default is the
    /// reference configuration — an exact no-op, so every pre-existing
    /// spec is unaffected.
    phy::PhyModelConfig models;

    /// A-MPDU batch size applied to every node's MAC. 1 (the default)
    /// keeps the legacy single-MSDU pipeline, bit-exactly; larger values
    /// enable aggregation + block-ack and suffix the scenario name with
    /// "-k<K>" so sweep cells stay distinguishable.
    int ampdu_max_mpdus = 1;

    /// Scheduled node/link faults carried into the built Scenario (empty
    /// default: no injector is constructed, zero overhead). Event times
    /// are absolute simulation seconds, so specs compose with the
    /// topology's start/duration knobs.
    net::FaultPlan faults;

    static ScenarioSpec line(int hops, double duration_s);
    static ScenarioSpec testbed(double f1_start_s, double f1_stop_s, double f2_start_s,
                                double f2_stop_s);
    static ScenarioSpec scenario1(double time_scale);
    static ScenarioSpec scenario2(double time_scale);
    static ScenarioSpec grid_cross(const net::GridSpec& grid);
    static ScenarioSpec grid_gateway(const net::GridSpec& grid);
    static ScenarioSpec parking_lot(int hops, int flows, double duration_s);
    static ScenarioSpec random_mesh(const net::MeshSpec& mesh);
    static ScenarioSpec islands_spec(const net::IslandsSpec& islands);
    static ScenarioSpec clusters_spec(const net::ClustersSpec& clusters);
};

std::string scenario_name(const ScenarioSpec& spec);

/// Build the network + flow plan a spec describes, seeded for one run.
net::Scenario build_scenario(const ScenarioSpec& spec, std::uint64_t seed);

/// Binds a ScenarioSpec to the ExperimentOptions under test and stamps
/// out independent, identically-configured experiments per seed — the
/// unit of work a SweepRunner fans across threads.
class ExperimentFactory {
public:
    ExperimentFactory(ScenarioSpec spec, ExperimentOptions options)
        : spec_(spec), options_(options)
    {
    }

    /// A fresh experiment over a fresh Network, deterministic in `seed`.
    std::unique_ptr<Experiment> make(std::uint64_t seed) const
    {
        return std::make_unique<Experiment>(build_scenario(spec_, seed), options_);
    }

    /// Same spec, different policy — convenience for building mode grids.
    ExperimentFactory with_mode(Mode mode) const
    {
        ExperimentOptions options = options_;
        options.mode = mode;
        return ExperimentFactory(spec_, options);
    }

    const ScenarioSpec& spec() const { return spec_; }
    const ExperimentOptions& options() const { return options_; }

    /// "scenario1 x0.3 / EZ-flow" — used in sweep reports.
    std::string label() const { return scenario_name(spec_) + " / " + mode_name(options_.mode); }

private:
    ScenarioSpec spec_;
    ExperimentOptions options_;
};

}  // namespace ezflow::analysis

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment_factory.h"
#include "util/stats.h"

namespace ezflow::analysis {

/// One measurement interval of a sweep, in scenario seconds, plus the
/// flows to summarize inside it. Fairness (Jain's index) is computed over
/// exactly these flows.
struct SweepWindow {
    std::string label;
    double from_s = 0.0;
    double to_s = 0.0;
    std::vector<int> flow_ids;
};

struct SweepConfig {
    std::vector<SweepWindow> windows;
    std::vector<std::uint64_t> seeds;
    /// Keep every per-seed Experiment alive in the result (time series,
    /// tracers) — used by figure drivers that also plot one run's traces.
    bool keep_experiments = false;
};

/// Per-seed measurements for one grid cell, in config order.
struct SeedResult {
    std::uint64_t seed = 0;
    struct Window {
        /// Parallel to SweepWindow::flow_ids.
        std::vector<Experiment::FlowSummary> flows;
        double fairness = 1.0;
        double aggregate_kbps = 0.0;
    };
    std::vector<Window> windows;
};

/// Across-seed aggregate of one flow in one window; each RunningStats
/// accumulates the per-seed summary values, so mean()/ci95 give the
/// sweep-level estimate and its confidence.
struct FlowAggregate {
    util::RunningStats mean_kbps;
    util::RunningStats stddev_kbps;
    util::RunningStats mean_delay_s;
    util::RunningStats max_delay_s;
};

struct WindowAggregate {
    std::vector<FlowAggregate> flows;  ///< parallel to SweepWindow::flow_ids
    util::RunningStats fairness;
    util::RunningStats aggregate_kbps;
};

/// Everything a sweep of one grid cell produced. Deterministic: the same
/// factory, seeds, and windows yield bit-identical per_seed/windows
/// contents regardless of the thread count (each task runs an
/// independent Network and writes to its own slot; aggregation happens
/// serially in seed order).
struct SweepResult {
    std::string label;                  ///< factory label, for reports
    std::vector<SeedResult> per_seed;   ///< parallel to config.seeds
    std::vector<WindowAggregate> windows;  ///< parallel to config.windows
    std::vector<std::unique_ptr<Experiment>> experiments;  ///< when kept
    double wall_seconds = 0.0;
};

/// Process-wide tally of simulation effort: scheduler events processed,
/// completed (cell, seed) runs, and wall time spent inside run_grid. The
/// CLI reports wall time and events/second from snapshots of this — the
/// numbers never enter any result JSON, so byte-determinism of results
/// across thread counts is untouched.
struct PerfTotals {
    std::uint64_t events = 0;
    std::uint64_t runs = 0;
    double wall_seconds = 0.0;
    /// Largest shard count any completed run used (1 = serial engine).
    int shards = 1;
    /// Events processed per shard id, summed across multi-shard runs
    /// (empty until a multi-shard run completes; capped at a small fixed
    /// number of slots — the CLI reports "+" when a run had more).
    std::vector<std::uint64_t> shard_events;
};

/// Snapshot of the accumulated totals (monotonic; diff two snapshots to
/// measure one command).
PerfTotals perf_totals();

/// Fans an experiment grid (modes x seeds x scenario knobs, expressed as
/// ExperimentFactory cells x SweepConfig seeds) across a std::thread
/// pool. One independent Network per task; per-seed RNG streams are
/// derived from the task's seed alone, so results do not depend on
/// scheduling.
class SweepRunner {
public:
    /// `threads` <= 0 selects hardware concurrency.
    explicit SweepRunner(int threads = 0) : threads_(threads) {}

    /// Sweep one cell across config.seeds.
    SweepResult run(const ExperimentFactory& factory, const SweepConfig& config) const;

    /// Sweep several cells (e.g. one per mode) over the same seed grid.
    /// The full cells x seeds task list shares one pool, so parallelism
    /// spans the grid, not just one cell. Results are in cell order.
    std::vector<SweepResult> run_grid(const std::vector<ExperimentFactory>& cells,
                                      const SweepConfig& config) const;

    int threads() const { return threads_; }

private:
    int threads_;
};

}  // namespace ezflow::analysis

#include "analysis/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "analysis/drop_audit.h"
#include "util/thread_pool.h"

namespace ezflow::analysis {

namespace {

// Effort accumulators behind perf_totals(). Wall time is tracked in
// nanoseconds so a plain integer atomic suffices.
std::atomic<std::uint64_t> g_events{0};
std::atomic<std::uint64_t> g_runs{0};
std::atomic<std::uint64_t> g_wall_ns{0};

// Shard accounting for the [perf] line: the widest shard count seen and
// per-shard event totals over a fixed number of display slots.
constexpr int kShardSlots = 8;
std::atomic<int> g_shards_max{1};
std::atomic<std::uint64_t> g_shard_events[kShardSlots]{};

/// Run one (cell, seed) task to completion and summarize every window.
SeedResult run_one(const ExperimentFactory& factory, const SweepConfig& config,
                   std::uint64_t seed, std::unique_ptr<Experiment>* keep)
{
    std::unique_ptr<Experiment> experiment = factory.make(seed);
    experiment->run();
    // Every swept run balances its packet ledger: the losses must
    // partition into the named drop buckets (throws on a leak or a
    // double-count, so the goldens cannot absorb an accounting bug).
    // Interceptor runs (EZ-Flow pacers) cannot balance and are skipped —
    // announce that coverage gap once per process instead of silently
    // returning an all-zero ledger.
    if (audit_drop_accounting(*experiment).skipped()) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true, std::memory_order_relaxed))
            std::fprintf(stderr,
                         "[audit] drop-accounting audit skipped for runs with forward "
                         "interceptors (pacer holds packets outside the MAC queues); "
                         "conservation is unchecked there\n");
    }
    net::Network& network = experiment->network();
    g_events.fetch_add(network.total_processed(), std::memory_order_relaxed);
    g_runs.fetch_add(1, std::memory_order_relaxed);
    const int shards = network.shard_count();
    int widest = g_shards_max.load(std::memory_order_relaxed);
    while (shards > widest &&
           !g_shards_max.compare_exchange_weak(widest, shards, std::memory_order_relaxed)) {
    }
    if (shards > 1) {
        for (int s = 0; s < shards && s < kShardSlots; ++s)
            g_shard_events[s].fetch_add(network.shard_processed(s), std::memory_order_relaxed);
    }

    SeedResult result;
    result.seed = seed;
    result.windows.reserve(config.windows.size());
    for (const SweepWindow& window : config.windows) {
        SeedResult::Window measured;
        measured.flows.reserve(window.flow_ids.size());
        for (int flow_id : window.flow_ids) {
            const auto summary = experiment->summarize(flow_id, window.from_s, window.to_s);
            measured.aggregate_kbps += summary.mean_kbps;
            measured.flows.push_back(summary);
        }
        measured.fairness = window.flow_ids.empty()
                                ? 1.0
                                : experiment->fairness(window.flow_ids, window.from_s, window.to_s);
        result.windows.push_back(std::move(measured));
    }
    if (keep != nullptr) *keep = std::move(experiment);
    return result;
}

/// Serial, seed-ordered merge of per-seed measurements — the aggregation
/// order is fixed so sweeps are bit-identical across thread counts.
void aggregate(const SweepConfig& config, SweepResult& sweep)
{
    sweep.windows.assign(config.windows.size(), WindowAggregate{});
    for (std::size_t w = 0; w < config.windows.size(); ++w)
        sweep.windows[w].flows.assign(config.windows[w].flow_ids.size(), FlowAggregate{});

    for (const SeedResult& seed_result : sweep.per_seed) {
        for (std::size_t w = 0; w < seed_result.windows.size(); ++w) {
            const SeedResult::Window& measured = seed_result.windows[w];
            WindowAggregate& agg = sweep.windows[w];
            for (std::size_t f = 0; f < measured.flows.size(); ++f) {
                const Experiment::FlowSummary& summary = measured.flows[f];
                // A window the run never measured (no throughput windows /
                // no deliveries inside it) contributes no sample: its 0.0
                // is fabricated, and folding it in would be
                // indistinguishable from a genuine zero. The across-seed
                // count then lands in the result JSON as n=0 — diffable as
                // missing data, not as a measured zero.
                if (summary.throughput_samples > 0) {
                    agg.flows[f].mean_kbps.add(summary.mean_kbps);
                    agg.flows[f].stddev_kbps.add(summary.stddev_kbps);
                }
                if (summary.delay_samples > 0) {
                    agg.flows[f].mean_delay_s.add(summary.mean_delay_s);
                    agg.flows[f].max_delay_s.add(summary.max_delay_s);
                }
            }
            agg.fairness.add(measured.fairness);
            agg.aggregate_kbps.add(measured.aggregate_kbps);
        }
    }
}

}  // namespace

PerfTotals perf_totals()
{
    PerfTotals totals;
    totals.events = g_events.load(std::memory_order_relaxed);
    totals.runs = g_runs.load(std::memory_order_relaxed);
    totals.wall_seconds = static_cast<double>(g_wall_ns.load(std::memory_order_relaxed)) * 1e-9;
    totals.shards = g_shards_max.load(std::memory_order_relaxed);
    if (totals.shards > 1) {
        const int slots = totals.shards < kShardSlots ? totals.shards : kShardSlots;
        totals.shard_events.reserve(static_cast<std::size_t>(slots));
        for (int s = 0; s < slots; ++s)
            totals.shard_events.push_back(g_shard_events[s].load(std::memory_order_relaxed));
    }
    return totals;
}

SweepResult SweepRunner::run(const ExperimentFactory& factory, const SweepConfig& config) const
{
    std::vector<SweepResult> results = run_grid({factory}, config);
    return std::move(results.front());
}

std::vector<SweepResult> SweepRunner::run_grid(const std::vector<ExperimentFactory>& cells,
                                               const SweepConfig& config) const
{
    if (cells.empty()) throw std::invalid_argument("SweepRunner::run_grid: no cells");
    if (config.seeds.empty()) throw std::invalid_argument("SweepRunner::run_grid: no seeds");

    const auto started = std::chrono::steady_clock::now();

    std::vector<SweepResult> results(cells.size());
    const std::size_t seeds = config.seeds.size();
    for (std::size_t c = 0; c < cells.size(); ++c) {
        results[c].label = cells[c].label();
        results[c].per_seed.resize(seeds);
        if (config.keep_experiments) results[c].experiments.resize(seeds);
    }

    // One task per (cell, seed); every task owns its Network and writes
    // only to its pre-sized slot.
    const int task_count = static_cast<int>(cells.size() * seeds);
    util::parallel_for(task_count, threads_, [&](int task) {
        const std::size_t c = static_cast<std::size_t>(task) / seeds;
        const std::size_t s = static_cast<std::size_t>(task) % seeds;
        std::unique_ptr<Experiment>* keep =
            config.keep_experiments ? &results[c].experiments[s] : nullptr;
        results[c].per_seed[s] = run_one(cells[c], config, config.seeds[s], keep);
    });

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
    g_wall_ns.fetch_add(static_cast<std::uint64_t>(wall * 1e9), std::memory_order_relaxed);
    for (SweepResult& result : results) {
        aggregate(config, result);
        result.wall_seconds = wall;
    }
    return results;
}

}  // namespace ezflow::analysis

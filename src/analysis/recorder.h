#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "mac/mac_queue.h"
#include "net/network.h"
#include "util/stats.h"

namespace ezflow::analysis {

using util::SimTime;

/// Samples the MAC buffer occupancy of a set of nodes at a fixed period,
/// producing the (time, queue size) traces of Fig. 1 and Fig. 4. The
/// sampled value is the node's total MAC backlog (all interface queues),
/// which is what the testbed's driver instrumentation measured.
///
/// Sampling is vectorized per shard: one periodic sweep event per shard
/// visits every tracked node of that shard (a single chain — the serial
/// reference — when the network is unsharded), so tracer event cost is
/// O(shards) per period instead of O(nodes).
///
/// `streaming` mode keeps only whole-run RunningStats per node instead
/// of the full (time, value) series — O(nodes) memory for arbitrarily
/// long runs. trace() is unavailable then; mean_occupancy ignores its
/// window and reports the whole-run mean.
class BufferTracer {
public:
    BufferTracer(net::Network& network, std::vector<net::NodeId> nodes, SimTime period,
                 bool streaming = false);

    /// Begin periodic sampling at the next period boundary.
    void start();

    const util::TimeSeries& trace(net::NodeId node) const;
    /// Mean occupancy of `node` over [from, to) (whole run in streaming
    /// mode).
    double mean_occupancy(net::NodeId node, SimTime from, SimTime to) const;
    /// Max occupancy of `node` over the whole trace.
    double max_occupancy(net::NodeId node) const;

    bool streaming() const { return streaming_; }
    /// Total series samples held (stays 0 in streaming mode — the flat
    /// memory assertion of the islands benchmark).
    std::size_t stored_samples() const;

private:
    struct Sweep {
        sim::Scheduler* scheduler;
        std::vector<net::NodeId> nodes;
    };

    void sample(std::size_t sweep);

    net::Network& network_;
    SimTime period_;
    bool streaming_;
    std::vector<Sweep> sweeps_;  ///< one periodic chain per shard, shard id ascending
    std::map<net::NodeId, util::TimeSeries> traces_;
    std::map<net::NodeId, util::RunningStats> stats_;
    bool started_ = false;
};

/// Windowed goodput meter for a flow: records kb/s per window, the series
/// behind Fig. 6's throughput-vs-time plots. Runs on the destination
/// node's shard scheduler; memory is O(run length / window), independent
/// of event count.
class ThroughputMeter {
public:
    ThroughputMeter(net::Network& network, int flow_id, SimTime window);

    void start();

    const util::TimeSeries& series() const { return series_; }
    /// Mean/stddev of the per-window goodput over [from, to), counting
    /// only windows that end inside the interval.
    double mean_kbps(SimTime from, SimTime to) const { return series_.mean_between(from, to); }
    double stddev_kbps(SimTime from, SimTime to) const { return series_.stddev_between(from, to); }
    /// Windows ending inside [from, to) — 0 means the interval was never
    /// measured (run too short / meter not yet started), as opposed to a
    /// measured zero-goodput interval.
    std::int64_t samples(SimTime from, SimTime to) const
    {
        return series_.count_between(from, to);
    }

private:
    void on_window();

    net::Network& network_;
    sim::Scheduler* scheduler_;  ///< the destination node's shard
    int flow_id_;
    SimTime window_;
    util::TimeSeries series_;
    std::uint64_t bits_in_window_ = 0;
    bool started_ = false;
};

/// Samples EZ-Flow contention windows (per node, toward a given successor)
/// periodically: the data behind Fig. 8 / Fig. 11. Works off the MAC's
/// queue CWmin so it also traces the baseline and penalty policies.
/// Vectorized per shard and streamable exactly like BufferTracer.
class CwTracer {
public:
    struct Target {
        net::NodeId node;
        net::NodeId successor;
    };

    CwTracer(net::Network& network, std::vector<Target> targets, SimTime period,
             bool streaming = false);

    void start();

    const util::TimeSeries& trace(net::NodeId node) const;

    bool streaming() const { return streaming_; }
    std::size_t stored_samples() const;

private:
    struct Sweep {
        sim::Scheduler* scheduler;
        std::vector<Target> targets;
    };

    void sample(std::size_t sweep);

    net::Network& network_;
    SimTime period_;
    bool streaming_;
    std::vector<Sweep> sweeps_;  ///< one periodic chain per shard, shard id ascending
    std::map<net::NodeId, util::TimeSeries> traces_;
    std::map<net::NodeId, util::RunningStats> stats_;
    bool started_ = false;
};

}  // namespace ezflow::analysis

#pragma once

#include <string>
#include <vector>

#include "analysis/result.h"

namespace ezflow::analysis {

/// Tolerances for comparing a candidate FigureResult against a golden.
struct DiffOptions {
    /// A metric passes when |golden - candidate| <=
    /// abs_tol + rel_tol * max(|golden|, |candidate|).
    double rel_tol = 0.10;
    double abs_tol = 1e-9;
    /// Same-binary/same-seed mode: every metric (mean, ci95, n) must be
    /// exactly equal. Used by the CI determinism gate that compares a
    /// --threads=1 run against a --threads=4 run.
    bool bit_exact = false;
};

/// One discrepancy found by diff_results. `path` locates the value
/// ("cells[scenario1 / EZ-flow].windows[F1 alone].metrics[F1.kbps]").
struct DiffFinding {
    enum class Kind {
        kMissingCell,     ///< golden cell absent from the candidate
        kMissingWindow,   ///< golden window absent from the candidate cell
        kMissingMetric,   ///< golden metric absent from the candidate window
        kExtraCell,       ///< candidate cell the golden does not have
        kExtraWindow,     ///< candidate window the golden does not have
        kExtraMetric,     ///< candidate metric the golden does not have
        kValue,           ///< metric present on both sides but out of tolerance
        kMetadata,        ///< figure name / options mismatch
    };

    Kind kind;
    std::string path;
    double golden = 0.0;
    double candidate = 0.0;
    std::string message;
};

struct DiffReport {
    std::vector<DiffFinding> findings;
    int metrics_compared = 0;

    bool passed() const { return findings.empty(); }
    /// Human-readable one-line-per-finding summary.
    std::string to_string() const;
};

/// Compare `candidate` against `golden` under the given tolerances. The
/// comparison is structural: cells/windows are matched by label, metrics
/// by name; anything present in the golden but absent from the candidate
/// is a failure (and extra candidate metrics are flagged so goldens do
/// not silently drift out of sync with the code).
DiffReport diff_results(const FigureResult& golden, const FigureResult& candidate,
                        const DiffOptions& options);

}  // namespace ezflow::analysis

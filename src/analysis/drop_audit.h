#pragma once

#include <cstdint>
#include <string>

#include "analysis/experiment.h"

namespace ezflow::analysis {

/// The end-to-end packet ledger of one finished (or frozen) experiment:
/// every generated packet must sit in exactly one bucket. Collected by
/// audit_drop_accounting and exposed for tests and reports.
struct DropLedger {
    /// Whether the audit actually ran. kSkippedInterceptor means the
    /// network had forward interceptors (the EZ-Flow pacer holds packets
    /// outside the MAC queues), so the MAC-level ledger cannot balance
    /// and every counter below is zero — a coverage gap, not a verified
    /// zero-traffic run.
    enum class Status { kBalanced, kSkippedInterceptor };
    Status status = Status::kBalanced;
    bool skipped() const { return status != Status::kBalanced; }

    std::uint64_t generated = 0;          ///< source generations (all flows)
    std::uint64_t dropped_at_source = 0;  ///< refused at the full own-queue
    std::uint64_t delivered = 0;          ///< reached a destination node
    std::uint64_t forward_queue_drops = 0;
    std::uint64_t retry_drops = 0;        ///< abandoned at the MAC retry limit
    std::uint64_t drops_node_down = 0;    ///< queue flushes + refused sends at dead nodes
    std::uint64_t drops_unroutable = 0;   ///< no next hop (suspension / repair window)
    std::uint64_t backlog = 0;            ///< still queued when the run froze
    /// Accounted instances (the right-hand side of the partition).
    std::uint64_t accounted() const
    {
        return dropped_at_source + delivered + forward_queue_drops + retry_drops +
               drops_node_down + drops_unroutable + backlog;
    }
    /// Legitimate over-count allowance: a packet can be counted twice when
    /// its data was decoded but the sender never saw an ACK — the sender's
    /// retry_drop coexists with the receiver's progression (a clone). A
    /// run frozen mid-exchange holds at most one such half-open dialogue
    /// per serving MAC, and a node-down quiesce that cut a dialogue short
    /// (teardown_aborts) flushed a possibly-decoded head the same way.
    std::uint64_t clone_allowance = 0;
    std::uint64_t dup_rx_suppressed = 0;  ///< diagnostic: clones usually match these
};

/// Sum the ledger over every source, node, MAC and interface queue of the
/// experiment's network.
DropLedger collect_drop_ledger(Experiment& experiment);

/// Verify the loss partition:
///   generated <= accounted() <= generated + clone_allowance
/// plus the exact local conservation laws (per interface queue:
/// enqueued == dequeued + dropped_node_down + size; per MAC:
/// dequeued == successes + retry_drops + ampdu_pending +
/// ampdu_node_down_drops — the A-MPDU terms cover batches popped at TXOP
/// fill whose MPDUs have not settled yet, and are zero at K=1).
/// Throws std::logic_error naming the violated invariant. Stands down
/// when any node has a forward interceptor — the pacer holds packets
/// outside the MAC queues, so the MAC-level ledger cannot balance — and
/// says so: the returned ledger carries Status::kSkippedInterceptor
/// (all counters zero) instead of masquerading as a balanced
/// zero-traffic run.
DropLedger audit_drop_accounting(Experiment& experiment);

}  // namespace ezflow::analysis

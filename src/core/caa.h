#pragma once

#include <cstdint>
#include <functional>

#include "util/stats.h"

namespace ezflow::core {

/// EZ-Flow tuning knobs (Sections 3.3 and 5.1). Defaults are the values
/// the paper's simulations use: bmin = 0.05, bmax = 20, mincw = 2^4,
/// maxcw = 2^15, decisions every 50 BOE samples.
struct CaaConfig {
    double bmin = 0.05;   ///< below: successor under-utilized -> more aggressive
    double bmax = 20.0;   ///< above: successor over-utilized -> less aggressive
    int min_cw = 1 << 4;  ///< 2^4, smallest contention window
    int max_cw = 1 << 15; ///< 2^15 (the testbed hardware capped at 2^10)
    int sample_window = 50;  ///< BOE samples averaged per decision
    int initial_cw = 1 << 4; ///< relays start aggressive and back off as needed
    /// countdown threshold constant: cw halves after
    /// (count_base - log2(cw)) consecutive under-utilization signals.
    int count_base = 15;
};

/// Channel Access Adaptation (Section 3.3, Algorithm 1).
///
/// Consumes BOE samples; every `sample_window` samples it averages them and
/// applies the multiplicative-increase / multiplicative-decrease policy with
/// the cw-dependent hysteresis counters:
///  * average > bmax: countup++; when countup >= log2(cw), cw *= 2
///  * average < bmin: countdown++; when countdown >= count_base - log2(cw), cw /= 2
///  * otherwise both counters reset.
/// Nodes with large cw therefore react quickly to under-utilization and
/// slowly to over-utilization (and vice versa), which is what gives EZ-Flow
/// its inter-flow fairness (the paper's countup/countdown discussion).
class ChannelAccessAdaptation {
public:
    /// `apply_cw` is invoked whenever the contention window changes
    /// (EZ-Flow's only interaction with the MAC).
    using CwSetter = std::function<void(int cw)>;

    ChannelAccessAdaptation(CaaConfig config, CwSetter apply_cw);

    /// Feed one BOE sample (successor buffer occupancy, in packets).
    void on_sample(int buffer_occupancy);

    int cw() const { return cw_; }
    int countup() const { return countup_; }
    int countdown() const { return countdown_; }
    const CaaConfig& config() const { return config_; }

    /// Decision history: (decision index, new cw) — cheap tracing for the
    /// Fig. 8 / Fig. 11 style cw-evolution plots.
    std::uint64_t decisions() const { return decisions_; }
    std::uint64_t increases() const { return increases_; }
    std::uint64_t decreases() const { return decreases_; }

    /// log2 for exact powers of two (throws otherwise); exposed for tests.
    static int log2_exact(int value);

private:
    void decide(double average);
    void set_cw(int cw);

    CaaConfig config_;
    CwSetter apply_cw_;
    int cw_;
    int countup_ = 0;
    int countdown_ = 0;
    int samples_in_window_ = 0;
    double sample_sum_ = 0.0;
    std::uint64_t decisions_ = 0;
    std::uint64_t increases_ = 0;
    std::uint64_t decreases_ = 0;
};

}  // namespace ezflow::core

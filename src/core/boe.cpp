#include "core/boe.h"

namespace ezflow::core {

BufferOccupancyEstimator::BufferOccupancyEstimator(std::size_t history) : sent_(history) {}

void BufferOccupancyEstimator::on_packet_sent(std::uint16_t checksum)
{
    sent_.push(Entry{checksum});
    ++sent_recorded_;
}

std::optional<int> BufferOccupancyEstimator::on_packet_overheard(std::uint16_t checksum)
{
    if (sent_.empty()) {
        ++misses_;
        return std::nullopt;
    }
    const std::uint64_t oldest = sent_.oldest_seq();
    const std::uint64_t newest = sent_.newest_seq();
    const std::uint64_t search_from = cursor_ > oldest ? cursor_ : oldest;

    // FIFO forwarding: the overheard packet should be the oldest entry not
    // yet forwarded, so search forward from the cursor first.
    for (std::uint64_t s = search_from; s <= newest; ++s) {
        if (sent_.at_seq(s).checksum == checksum) {
            cursor_ = s + 1;
            ++matches_;
            return static_cast<int>(newest - s);
        }
    }
    // Fall back to entries behind the cursor: the successor may be
    // retransmitting a frame we already matched (its ACK got lost).
    for (std::uint64_t s = search_from; s-- > oldest;) {
        if (sent_.at_seq(s).checksum == checksum) {
            ++matches_;
            return static_cast<int>(newest - s);
        }
    }
    ++misses_;
    return std::nullopt;
}

}  // namespace ezflow::core

#include "core/caa.h"

#include <algorithm>
#include <stdexcept>

namespace ezflow::core {

namespace {

bool is_power_of_two(int value) { return value > 0 && (value & (value - 1)) == 0; }

}  // namespace

ChannelAccessAdaptation::ChannelAccessAdaptation(CaaConfig config, CwSetter apply_cw)
    : config_(config), apply_cw_(std::move(apply_cw)), cw_(config.initial_cw)
{
    if (!is_power_of_two(config.min_cw) || !is_power_of_two(config.max_cw) ||
        !is_power_of_two(config.initial_cw))
        throw std::invalid_argument("CAA: cw bounds must be powers of two (hardware constraint)");
    if (config.min_cw > config.max_cw) throw std::invalid_argument("CAA: min_cw > max_cw");
    if (config.initial_cw < config.min_cw || config.initial_cw > config.max_cw)
        throw std::invalid_argument("CAA: initial_cw out of bounds");
    if (config.sample_window <= 0) throw std::invalid_argument("CAA: sample_window must be > 0");
    if (config.bmin < 0.0 || config.bmax < config.bmin)
        throw std::invalid_argument("CAA: need 0 <= bmin <= bmax");
    if (apply_cw_) apply_cw_(cw_);
}

int ChannelAccessAdaptation::log2_exact(int value)
{
    if (!is_power_of_two(value)) throw std::invalid_argument("log2_exact: not a power of two");
    int log = 0;
    while ((1 << log) < value) ++log;
    return log;
}

void ChannelAccessAdaptation::on_sample(int buffer_occupancy)
{
    if (buffer_occupancy < 0) throw std::invalid_argument("CAA::on_sample: negative occupancy");
    sample_sum_ += buffer_occupancy;
    if (++samples_in_window_ < config_.sample_window) return;
    const double average = sample_sum_ / static_cast<double>(samples_in_window_);
    samples_in_window_ = 0;
    sample_sum_ = 0.0;
    decide(average);
}

void ChannelAccessAdaptation::decide(double average)
{
    ++decisions_;
    const int log_cw = log2_exact(cw_);
    if (average > config_.bmax) {
        countdown_ = 0;
        ++countup_;
        if (countup_ >= log_cw) {
            set_cw(cw_ * 2);
            countup_ = 0;
        }
    } else if (average < config_.bmin) {
        countup_ = 0;
        ++countdown_;
        if (countdown_ >= config_.count_base - log_cw) {
            set_cw(cw_ / 2);
            countdown_ = 0;
        }
    } else {
        countup_ = 0;
        countdown_ = 0;
    }
}

void ChannelAccessAdaptation::set_cw(int cw)
{
    const int clamped = std::clamp(cw, config_.min_cw, config_.max_cw);
    if (clamped == cw_) return;
    if (clamped > cw_)
        ++increases_;
    else
        ++decreases_;
    cw_ = clamped;
    if (apply_cw_) apply_cw_(cw_);
}

}  // namespace ezflow::core

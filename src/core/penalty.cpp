#include "core/penalty.h"

#include <cmath>
#include <stdexcept>

namespace ezflow::core {

std::map<net::NodeId, int> apply_penalty_policy(net::Network& network, const PenaltyConfig& config)
{
    if (config.q <= 0.0 || config.q > 1.0)
        throw std::invalid_argument("apply_penalty_policy: q must be in (0, 1]");
    if (config.relay_cw <= 0) throw std::invalid_argument("apply_penalty_policy: relay_cw must be > 0");

    const int source_cw = static_cast<int>(std::lround(config.relay_cw / config.q));
    std::map<net::NodeId, int> assigned;
    for (int flow_id : network.routing().flow_ids()) {
        const auto& path = network.routing().path(flow_id);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const net::NodeId node = path[i];
            const net::NodeId next = path[i + 1];
            const bool is_source = (i == 0);
            const int cw = is_source ? source_cw : config.relay_cw;
            network.node(node).mac().set_queue_cw_min(mac::QueueKey{next, /*own_traffic=*/is_source}, cw);
            assigned[node] = cw;
        }
    }
    return assigned;
}

}  // namespace ezflow::core

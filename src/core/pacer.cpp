#include "core/pacer.h"

#include <stdexcept>

namespace ezflow::core {

PacedQueue::PacedQueue(net::Network& network, net::NodeId node, mac::QueueKey key,
                       CaaConfig config, int capacity, util::SimTime base_interval)
    : network_(network),
      node_(node),
      key_(key),
      capacity_(capacity),
      base_interval_(base_interval),
      interval_(base_interval),
      // The CAA's cw output is reinterpreted: release interval =
      // base_interval * cw / min_cw, so Algorithm 1's doubling halves the
      // pacing rate and vice versa.
      caa_(config, [this](int cw) {
          interval_ = base_interval_ * cw / caa_.config().min_cw;
      }),
      release_timer_(network.scheduler_for(node), [this] { release_one(); })
{
    if (capacity <= 0) throw std::invalid_argument("PacedQueue: capacity must be > 0");
    if (base_interval <= 0) throw std::invalid_argument("PacedQueue: base_interval must be > 0");
}

bool PacedQueue::push(const net::Packet& packet)
{
    if (static_cast<int>(queue_.size()) >= capacity_) {
        ++dropped_;
        return false;
    }
    queue_.push_back(packet);
    schedule_release();
    return true;
}

void PacedQueue::schedule_release()
{
    if (release_timer_.armed() || queue_.empty()) return;
    release_timer_.arm_in(interval_);
}

void PacedQueue::release_one()
{
    if (queue_.empty()) return;
    const net::Packet packet = queue_.front();
    queue_.pop_front();
    ++released_;
    // Hand the packet to the MAC with the standard CWmin untouched. The
    // MAC's own 50-packet queue should stay nearly empty: the pacing
    // interval is the congestion control.
    network_.node(node_).mac().enqueue(key_, packet);
    schedule_release();
}

PacedEzFlowAgent::PacedEzFlowAgent(net::Network& network, net::NodeId node, Options options)
    : network_(network), node_id_(node), options_(options)
{
    net::Node& n = network_.node(node_id_);
    n.set_forward_interceptor(
        [this](const mac::QueueKey& key, const net::Packet& packet) { return intercept(key, packet); });
    n.add_first_tx_handler(
        [this](const mac::QueueKey& key, const net::Packet& packet) { on_first_tx(key, packet); });
    n.add_sniff_handler([this](const phy::Frame& frame) { on_sniffed(frame); });
}

PacedEzFlowAgent::SuccessorState& PacedEzFlowAgent::ensure(net::NodeId successor,
                                                           const mac::QueueKey& key)
{
    auto it = successors_.find(successor);
    if (it != successors_.end()) return *it->second;
    auto state = std::make_unique<SuccessorState>(options_.boe_history);
    state->queue = std::make_unique<PacedQueue>(network_, node_id_, key, options_.caa,
                                                options_.queue_capacity, options_.base_interval);
    successors_[successor] = std::move(state);
    return *successors_.at(successor);
}

bool PacedEzFlowAgent::intercept(const mac::QueueKey& key, const net::Packet& packet)
{
    SuccessorState& state = ensure(key.next_hop, key);
    state.queue->push(packet);  // drop accounting inside the queue
    return true;
}

void PacedEzFlowAgent::on_first_tx(const mac::QueueKey& key, const net::Packet& packet)
{
    ensure(key.next_hop, key).boe.on_packet_sent(packet.checksum);
}

void PacedEzFlowAgent::on_sniffed(const phy::Frame& frame)
{
    if (frame.type != phy::FrameType::kData) return;
    const auto it = successors_.find(frame.tx_node);
    if (it == successors_.end()) return;
    SuccessorState& state = *it->second;
    if (frame.aggregated()) {
        // Each A-MPDU subframe forwarded by the successor is its own
        // sniff opportunity (the testbed monitor radio sees every MSDU).
        for (const phy::Mpdu& mpdu : frame.subframes)
            if (const auto estimate = state.boe.on_packet_overheard(mpdu.packet.checksum))
                state.queue->on_sample(*estimate);
        return;
    }
    if (!frame.has_packet) return;
    if (const auto estimate = state.boe.on_packet_overheard(frame.packet.checksum))
        state.queue->on_sample(*estimate);
}

const PacedQueue* PacedEzFlowAgent::queue_toward(net::NodeId successor) const
{
    const auto it = successors_.find(successor);
    return it == successors_.end() ? nullptr : it->second->queue.get();
}

std::map<net::NodeId, std::unique_ptr<PacedEzFlowAgent>> install_paced_ezflow(
    net::Network& network, const PacedEzFlowAgent::Options& options)
{
    std::map<net::NodeId, std::unique_ptr<PacedEzFlowAgent>> agents;
    for (int flow_id : network.routing().flow_ids()) {
        const auto& path = network.routing().path(flow_id);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const net::NodeId node = path[i];
            if (agents.count(node) > 0) continue;
            agents[node] = std::make_unique<PacedEzFlowAgent>(network, node, options);
        }
    }
    return agents;
}

}  // namespace ezflow::core

#pragma once

#include <map>
#include <memory>

#include "core/boe.h"
#include "core/caa.h"
#include "net/network.h"
#include "net/node.h"
#include "util/stats.h"

namespace ezflow::core {

/// The EZ-Flow program running at one node (Section 3.1): one BOE + CAA
/// pair per successor. Wires itself to the node's MAC hooks:
///  * first-transmission hook -> BOE sent-list;
///  * promiscuous sniff hook  -> BOE matching -> CAA sample;
///  * CAA decision            -> per-successor queue CWmin.
///
/// The last hop before a destination never overhears forwarded packets
/// (the destination consumes them), so its cw stays at the initial value —
/// exactly as on the testbed.
class EzFlowAgent {
public:
    struct SuccessorState {
        BufferOccupancyEstimator boe;
        std::unique_ptr<ChannelAccessAdaptation> caa;
        /// (time, cw) trace for Fig. 8 / Fig. 11.
        util::TimeSeries cw_trace;
        /// (time, estimated successor occupancy) trace.
        util::TimeSeries estimate_trace;

        explicit SuccessorState(std::size_t history) : boe(history) {}
    };

    /// Attach EZ-Flow to `node`. `sniff_loss` optionally drops a fraction
    /// of overheard frames before they reach the BOE (ablation: robustness
    /// to missed sniffs). `record_traces = false` (streaming runs) skips
    /// the O(events) cw/estimate trace appends; the control loop itself
    /// is unaffected.
    EzFlowAgent(net::Network& network, net::NodeId node, CaaConfig config,
                std::size_t boe_history = 1000, double sniff_loss = 0.0,
                bool record_traces = true);
    EzFlowAgent(const EzFlowAgent&) = delete;
    EzFlowAgent& operator=(const EzFlowAgent&) = delete;

    net::NodeId node_id() const { return node_id_; }

    /// Current contention window toward `successor` (throws if the agent
    /// has never sent toward it).
    int cw_toward(net::NodeId successor) const;

    /// Successor states, keyed by successor node id (for tracing).
    const std::map<net::NodeId, std::unique_ptr<SuccessorState>>& successors() const
    {
        return successors_;
    }

    std::uint64_t samples_delivered() const { return samples_delivered_; }

private:
    SuccessorState& ensure_successor(net::NodeId successor);
    void on_first_tx(const mac::QueueKey& key, const net::Packet& packet);
    void on_sniffed(const phy::Frame& frame);
    /// Feed one overheard checksum (a legacy frame's packet or one A-MPDU
    /// subframe) through the BOE into the CAA control loop.
    void deliver_sample(SuccessorState& state, std::uint16_t checksum);

    net::Network& network_;
    sim::Scheduler* scheduler_;  ///< the node's shard scheduler (trace timestamps)
    net::NodeId node_id_;
    CaaConfig config_;
    std::size_t boe_history_;
    double sniff_loss_;
    bool record_traces_;
    util::Rng rng_;
    std::map<net::NodeId, std::unique_ptr<SuccessorState>> successors_;
    std::uint64_t samples_delivered_ = 0;
};

/// Install EZ-Flow agents on every node that transmits data (sources and
/// relays) of every registered flow. Returns the agents keyed by node id.
std::map<net::NodeId, std::unique_ptr<EzFlowAgent>> install_ezflow(net::Network& network,
                                                                   const CaaConfig& config,
                                                                   std::size_t boe_history = 1000,
                                                                   double sniff_loss = 0.0,
                                                                   bool record_traces = true);

}  // namespace ezflow::core

#include "core/agent.h"

#include <stdexcept>

namespace ezflow::core {

EzFlowAgent::EzFlowAgent(net::Network& network, net::NodeId node, CaaConfig config,
                         std::size_t boe_history, double sniff_loss, bool record_traces)
    : network_(network),
      scheduler_(&network.scheduler_for(node)),
      node_id_(node),
      config_(config),
      boe_history_(boe_history),
      sniff_loss_(sniff_loss),
      record_traces_(record_traces),
      rng_(network.fork_rng())
{
    if (sniff_loss < 0.0 || sniff_loss > 1.0)
        throw std::invalid_argument("EzFlowAgent: sniff_loss out of range");
    net::Node& n = network_.node(node_id_);
    n.add_first_tx_handler(
        [this](const mac::QueueKey& key, const net::Packet& packet) { on_first_tx(key, packet); });
    n.add_sniff_handler([this](const phy::Frame& frame) { on_sniffed(frame); });
}

EzFlowAgent::SuccessorState& EzFlowAgent::ensure_successor(net::NodeId successor)
{
    auto it = successors_.find(successor);
    if (it != successors_.end()) return *it->second;

    auto state = std::make_unique<SuccessorState>(boe_history_);
    SuccessorState* raw = state.get();
    mac::DcfMac& mac = network_.node(node_id_).mac();
    // EZ-Flow steers the CWmin of every queue feeding this successor:
    // the forwarded-traffic queue and (at nodes that are also sources)
    // the own-traffic queue share the same channel-access budget.
    raw->caa = std::make_unique<ChannelAccessAdaptation>(
        config_, [this, successor, raw, &mac](int cw) {
            mac.set_queue_cw_min(mac::QueueKey{successor, /*own_traffic=*/false}, cw);
            mac.set_queue_cw_min(mac::QueueKey{successor, /*own_traffic=*/true}, cw);
            if (record_traces_) raw->cw_trace.add(scheduler_->now(), static_cast<double>(cw));
        });
    successors_[successor] = std::move(state);
    return *successors_.at(successor);
}

void EzFlowAgent::on_first_tx(const mac::QueueKey& key, const net::Packet& packet)
{
    SuccessorState& state = ensure_successor(key.next_hop);
    state.boe.on_packet_sent(packet.checksum);
}

void EzFlowAgent::on_sniffed(const phy::Frame& frame)
{
    if (frame.type != phy::FrameType::kData) return;
    const auto it = successors_.find(frame.tx_node);
    if (it == successors_.end()) return;  // not one of our successors
    SuccessorState& state = *it->second;
    if (frame.aggregated()) {
        // The testbed BOE sniffs with a second monitor-mode radio, which
        // sees each forwarded MSDU inside the successor's A-MPDU
        // individually — so every subframe is a sniff opportunity, with
        // the sniff-loss ablation rolled per subframe.
        for (const phy::Mpdu& mpdu : frame.subframes) {
            if (sniff_loss_ > 0.0 && rng_.bernoulli(sniff_loss_)) continue;
            deliver_sample(state, mpdu.packet.checksum);
        }
        return;
    }
    if (!frame.has_packet) return;
    if (sniff_loss_ > 0.0 && rng_.bernoulli(sniff_loss_)) return;
    deliver_sample(state, frame.packet.checksum);
}

void EzFlowAgent::deliver_sample(SuccessorState& state, std::uint16_t checksum)
{
    const std::optional<int> estimate = state.boe.on_packet_overheard(checksum);
    if (!estimate.has_value()) return;
    ++samples_delivered_;
    if (record_traces_)
        state.estimate_trace.add(scheduler_->now(), static_cast<double>(*estimate));
    state.caa->on_sample(*estimate);
}

int EzFlowAgent::cw_toward(net::NodeId successor) const
{
    const auto it = successors_.find(successor);
    if (it == successors_.end())
        throw std::invalid_argument("EzFlowAgent::cw_toward: unknown successor");
    return it->second->caa->cw();
}

std::map<net::NodeId, std::unique_ptr<EzFlowAgent>> install_ezflow(net::Network& network,
                                                                   const CaaConfig& config,
                                                                   std::size_t boe_history,
                                                                   double sniff_loss,
                                                                   bool record_traces)
{
    std::map<net::NodeId, std::unique_ptr<EzFlowAgent>> agents;
    for (int flow_id : network.routing().flow_ids()) {
        const auto& path = network.routing().path(flow_id);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const net::NodeId node = path[i];
            if (agents.count(node) > 0) continue;
            agents[node] = std::make_unique<EzFlowAgent>(network, node, config, boe_history,
                                                         sniff_loss, record_traces);
        }
    }
    return agents;
}

}  // namespace ezflow::core

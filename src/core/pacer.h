#pragma once

#include <deque>
#include <map>
#include <memory>

#include "core/boe.h"
#include "core/caa.h"
#include "net/network.h"
#include "net/node.h"
#include "sim/timer.h"
#include "util/stats.h"

namespace ezflow::core {

/// Rate-based variant of EZ-Flow, the extension sketched in the paper's
/// conclusion for deployments that cannot (or should not) touch CWmin:
/// packets toward a successor are held in a routing-layer queue and
/// released to the MAC at a paced rate; the CAA decision logic is reused
/// verbatim, but its output steers the release interval instead of the
/// contention window (release interval scales with cw / min_cw, so the
/// x2 / /2 decisions of Algorithm 1 halve / double the pacing rate).
class PacedQueue {
public:
    /// `base_interval` is the release spacing at full aggressiveness
    /// (cw = min_cw); it should approximate one packet's channel time.
    PacedQueue(net::Network& network, net::NodeId node, mac::QueueKey key, CaaConfig config,
               int capacity, util::SimTime base_interval);
    PacedQueue(const PacedQueue&) = delete;
    PacedQueue& operator=(const PacedQueue&) = delete;

    /// Accept a packet into the routing-layer queue. Returns false (drop)
    /// when the queue is full.
    bool push(const net::Packet& packet);

    /// Feed a BOE sample (successor buffer estimate) into the pacing CAA.
    void on_sample(int estimate) { caa_.on_sample(estimate); }

    int size() const { return static_cast<int>(queue_.size()); }
    int capacity() const { return capacity_; }
    util::SimTime release_interval() const { return interval_; }
    const ChannelAccessAdaptation& caa() const { return caa_; }
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t released() const { return released_; }

private:
    void schedule_release();
    void release_one();

    net::Network& network_;
    net::NodeId node_;
    mac::QueueKey key_;
    int capacity_;
    util::SimTime base_interval_;
    util::SimTime interval_;
    ChannelAccessAdaptation caa_;
    std::deque<net::Packet> queue_;
    sim::Timer release_timer_;
    std::uint64_t dropped_ = 0;
    std::uint64_t released_ = 0;
};

/// The paced EZ-Flow program at one node: BOE per successor (identical to
/// EzFlowAgent's) feeding a PacedQueue per successor. The MAC keeps the
/// standard 802.11 CWmin throughout — nothing below the routing layer is
/// modified, which is the point of the variant.
class PacedEzFlowAgent {
public:
    struct Options {
        CaaConfig caa{};
        std::size_t boe_history = 1000;
        int queue_capacity = 200;  ///< routing-layer queues can be larger than MAC's 50
        util::SimTime base_interval = 10 * util::kMillisecond;
    };

    PacedEzFlowAgent(net::Network& network, net::NodeId node, Options options);
    PacedEzFlowAgent(const PacedEzFlowAgent&) = delete;
    PacedEzFlowAgent& operator=(const PacedEzFlowAgent&) = delete;

    net::NodeId node_id() const { return node_id_; }
    /// Paced queue toward `successor`; nullptr before any packet went
    /// that way.
    const PacedQueue* queue_toward(net::NodeId successor) const;

private:
    struct SuccessorState {
        BufferOccupancyEstimator boe;
        std::unique_ptr<PacedQueue> queue;
        explicit SuccessorState(std::size_t history) : boe(history) {}
    };

    SuccessorState& ensure(net::NodeId successor, const mac::QueueKey& key);
    bool intercept(const mac::QueueKey& key, const net::Packet& packet);
    void on_first_tx(const mac::QueueKey& key, const net::Packet& packet);
    void on_sniffed(const phy::Frame& frame);

    net::Network& network_;
    net::NodeId node_id_;
    Options options_;
    std::map<net::NodeId, std::unique_ptr<SuccessorState>> successors_;
};

/// Install paced agents on every transmitting node of every flow.
std::map<net::NodeId, std::unique_ptr<PacedEzFlowAgent>> install_paced_ezflow(
    net::Network& network, const PacedEzFlowAgent::Options& options);

}  // namespace ezflow::core

#pragma once

#include <map>

#include "net/network.h"

namespace ezflow::core {

/// The static "penalty" policy of reference [9] (Aziz et al., SECON 2009),
/// which the paper uses as the known-stable but topology-dependent
/// comparator: sources are throttled by a fixed factor q = cw_relay /
/// cw_source (q in (0,1]), i.e. the source's contention window is the
/// relays' window divided by q. EZ-Flow's selling point is discovering the
/// equivalent distribution automatically; this module exists for the
/// ablation bench that compares the two.
struct PenaltyConfig {
    int relay_cw = 1 << 4;  ///< CWmin at relay nodes
    double q = 1.0 / 8.0;   ///< throttling factor; source cw = relay_cw / q
};

/// Apply the penalty policy to every flow: the source's own-traffic queue
/// gets relay_cw / q, every relay's forwarding queue gets relay_cw.
/// Returns the cw assigned per node (for reporting).
std::map<net::NodeId, int> apply_penalty_policy(net::Network& network, const PenaltyConfig& config);

}  // namespace ezflow::core

#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.h"
#include "util/ring_buffer.h"

namespace ezflow::core {

/// Buffer Occupancy Estimator (Section 3.2).
///
/// Passively derives the buffer occupancy of the successor node, without
/// any message passing:
///  * every packet this node sends to the successor has its 16-bit
///    transport checksum stored in a ring of the last `history` (paper:
///    1000) identifiers;
///  * every frame *overheard* from the successor (forwarding a packet to
///    its own next hop) is matched against the ring: because the successor
///    serves its queue FIFO, the number of identifiers between the matched
///    entry and the most recently sent one is exactly the number of our
///    packets still buffered at the successor.
///
/// The estimator is robust to missed sniffs (hidden nodes, channel
/// variability, half-duplex deafness while transmitting): each successful
/// match yields an exact sample, and missing samples only slows reaction.
class BufferOccupancyEstimator {
public:
    explicit BufferOccupancyEstimator(std::size_t history = 1000);

    /// Record a packet transmitted to the successor (first on-air attempt;
    /// retransmissions of the same packet must not be recorded again).
    void on_packet_sent(std::uint16_t checksum);

    /// Process an overheard frame forwarded by the successor. Returns the
    /// estimated successor buffer occupancy when the checksum matches a
    /// remembered identifier, std::nullopt otherwise.
    std::optional<int> on_packet_overheard(std::uint16_t checksum);

    std::uint64_t sent_recorded() const { return sent_recorded_; }
    std::uint64_t matches() const { return matches_; }
    std::uint64_t misses() const { return misses_; }

private:
    struct Entry {
        std::uint16_t checksum = 0;
    };

    util::RingBuffer<Entry> sent_;
    /// Sequence number (in the ring's numbering) of the first entry not yet
    /// known to have been forwarded by the successor: FIFO service means
    /// matches advance this cursor monotonically. Entries behind the cursor
    /// are still searched (retransmissions by the successor re-sniff the
    /// same packet), but newer entries are preferred from the cursor on, so
    /// a checksum collision behind the cursor cannot shadow fresh packets.
    std::uint64_t cursor_ = 0;

    std::uint64_t sent_recorded_ = 0;
    std::uint64_t matches_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace ezflow::core

#include "mac/dcf.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ezflow::mac {

DcfMac::DcfMac(phy::NodePhy& phy, sim::Scheduler& scheduler, ContentionCoordinator& coordinator,
               util::Rng rng, MacParams params)
    : phy_(phy),
      scheduler_(scheduler),
      coordinator_(coordinator),
      rng_(std::move(rng)),
      params_(params),
      queues_(params.queue_capacity, params.cw_min),
      ack_timer_(scheduler, [this] { on_ack_timeout(); }),
      cts_timer_(scheduler, [this] { on_cts_timeout(); }),
      ctrl_timer_(scheduler, [this] { send_pending_control(); }),
      cts_data_timer_(scheduler, [this] { on_cts_data_follow_up(); })
{
    phy_.set_listener(this);
}

DcfMac::~DcfMac()
{
    coordinator_.unregister(*this);
}

bool DcfMac::enqueue(const QueueKey& key, const net::Packet& packet)
{
    if (down_) return false;  // callers account the drop (node-down bucket)
    MacQueue& queue = queues_.ensure(key);
    const bool accepted = queue.push(packet);
    maybe_start_work();
    return accepted;
}

bool DcfMac::enqueue(const QueueKey& key, net::Packet&& packet)
{
    if (down_) return false;  // callers account the drop (node-down bucket)
    MacQueue& queue = queues_.ensure(key);
    const bool accepted = queue.push(std::move(packet));
    maybe_start_work();
    return accepted;
}

void DcfMac::quiesce()
{
    if (down_) return;
    down_ = true;
    coordinator_.unregister(*this);  // no-op when not registered
    ack_timer_.cancel();
    cts_timer_.cancel();
    // The control trigger and CTS follow-up are cancellable timers, so a
    // teardown leaves nothing armed: no stale event can ever fire into a
    // revived MAC's fresh control queue and violate SIFS spacing.
    ctrl_timer_.cancel();
    cts_data_timer_.cancel();
    pending_ctrl_.clear();
    ack_tx_scheduled_ = false;
    next_ctrl_at_ = -1;
    cts_data_at_ = -1;
    in_contention_ = false;
    if (current_queue_ != nullptr && !ba_.batch_active()) ++teardown_aborts_;
    current_queue_ = nullptr;
    // Surrender the block-ack window: these MPDUs were dequeued but never
    // settled. Each one the receiver may already hold — the same cloned-
    // outcome slack a single aborted dialogue contributes.
    const std::vector<BlockAckManager::SenderEntry> flushed = ba_.flush();
    ampdu_node_down_drops_ += flushed.size();
    teardown_aborts_ += flushed.size();
    retries_ = 0;
    backoff_remaining_ = 0;
    nav_until_ = 0;
    state_ = State::kIdle;
    // The committed head packet (if any) is still queue backlog —
    // finish_current never popped it — so the flush accounts it exactly
    // once, in drops_node_down, never as a dequeue.
    queues_.flush_all_node_down();
}

void DcfMac::revive()
{
    if (!down_) return;
    down_ = false;
    // Neighbours' sequence numbers moved on while this node was dead;
    // stale entries could suppress the first genuinely new frame. The
    // block-ack scoreboards are in the same position.
    last_rx_seq_.clear();
    ba_.clear_rx_state();
    maybe_start_work();
}

void DcfMac::set_ampdu_max_mpdus(int k)
{
    params_.ampdu_max_mpdus = std::min(std::max(k, 1), 64);
}

void DcfMac::set_queue_cw_min(const QueueKey& key, int cw)
{
    queues_.ensure(key).set_cw_min(cw);
}

int DcfMac::queue_cw_min(const QueueKey& key) const
{
    const MacQueue* queue = queues_.find(key);
    if (queue == nullptr) throw std::invalid_argument("DcfMac::queue_cw_min: unknown queue");
    return queue->cw_min();
}

void DcfMac::maybe_start_work()
{
    if (down_) return;
    if (state_ != State::kIdle) return;
    if (ack_tx_scheduled_) return;  // finish the ACK exchange first
    if (queues_.all_empty()) return;
    start_new_contention();
}

void DcfMac::start_new_contention()
{
    current_queue_ = queues_.next_nonempty();
    if (current_queue_ == nullptr) throw std::logic_error("DcfMac: no work to contend for");
    in_contention_ = true;
    retries_ = 0;
    if (aggregation_enabled()) {
        // Fill the TXOP batch: the window persists across retries (only
        // unsettled MPDUs are retransmitted) and a new batch starts only
        // once the previous one settled completely.
        if (ba_.batch_active())
            throw std::logic_error("DcfMac: new contention with unsettled block-ack window");
        batch_key_ = current_queue_->key();
        batch_fill_.clear();
        current_queue_->pop_batch(std::min(params_.ampdu_max_mpdus, 64), params_.ampdu_max_bytes,
                                  batch_fill_);
        for (net::Packet& packet : batch_fill_) ba_.add_mpdu(std::move(packet), next_seq_++);
        batch_fill_.clear();
    } else {
        current_seq_ = next_seq_++;
    }
    backoff_remaining_ = rng_.uniform_int(0, effective_cw() - 1);
    resume_access();
}

int DcfMac::effective_cw() const
{
    if (current_queue_ == nullptr) throw std::logic_error("DcfMac::effective_cw: no queue");
    const int base = current_queue_->cw_min();
    const int cap = std::max(params_.cw_max_escalation, base);
    // Escalate binary-exponentially; guard against shift overflow.
    long long cw = base;
    for (int i = 0; i < retries_ && cw < cap; ++i) cw *= 2;
    return static_cast<int>(std::min<long long>(cw, cap));
}

bool DcfMac::medium_busy() const
{
    return phy_.busy() || scheduler_.now() < nav_until_;
}

void DcfMac::resume_access()
{
    if (!in_contention_) throw std::logic_error("DcfMac::resume_access: no contention context");
    if (medium_busy()) {
        state_ = State::kWaitMediumIdle;
        return;
    }
    start_difs();
}

void DcfMac::start_difs()
{
    state_ = State::kContending;
    // EIFS replaces DIFS when the last sensed busy period could not be
    // decoded: the station must leave room for an exchange (ACK) it may
    // have jammed or missed. The coordinator owns the whole wait — DIFS
    // end, per-slot decrements, and the expiry — in one registration.
    const SimTime wait = phy_.last_rx_error() ? params_.eifs_us : params_.difs_us;
    coordinator_.register_access(*this, wait, backoff_remaining_, params_.slot_us);
}

void DcfMac::set_nav_for_ack(bool aggregated)
{
    const phy::PhyParams& phy_params = phy_.channel_params();
    phy::Frame ack;
    ack.type = aggregated ? phy::FrameType::kBlockAck : phy::FrameType::kAck;
    set_nav_until(scheduler_.now() + params_.sifs_us + phy_params.tx_duration(ack));
}

void DcfMac::set_nav_until(SimTime until)
{
    if (until <= nav_until_ || until <= scheduler_.now()) return;
    nav_until_ = until;
    if (state_ == State::kContending) {
        freeze_contention();
        state_ = State::kWaitMediumIdle;
    }
    scheduler_.schedule_at(nav_until_, [this] { on_nav_expired(); });
}

void DcfMac::on_nav_expired()
{
    if (scheduler_.now() < nav_until_) return;  // NAV was extended meanwhile
    if (state_ == State::kWaitMediumIdle && in_contention_ && !ack_tx_scheduled_ && !medium_busy())
        start_difs();
}

void DcfMac::freeze_contention()
{
    // The coordinator reports every decrement that elapsed, the DIFS-end
    // one included; a freeze still inside the DIFS consumes nothing.
    backoff_remaining_ -= coordinator_.freeze(*this);
}

void DcfMac::backoff_expired()
{
    if (state_ != State::kContending || !in_contention_)
        throw std::logic_error("DcfMac::backoff_expired: not contending");
    backoff_remaining_ = 0;
    start_exchange();
}

SimTime DcfMac::current_data_airtime() const
{
    phy::Frame data;
    data.type = phy::FrameType::kData;
    data.bitrate_bps = current_rate_bps_;
    data.has_packet = true;
    data.packet = current_queue_->front();
    return phy_.channel_params().tx_duration(data);
}

void DcfMac::start_exchange()
{
    if (ba_.batch_active()) {
        // Aggregated access is always basic: the block-ack exchange is
        // its own protection and RTS/CTS duration fields cannot describe
        // a selective-retransmit TXOP.
        current_rate_bps_ = phy_.data_bitrate_for(batch_key_.next_hop);
        transmit_aggregated();
        return;
    }
    // One rate decision per attempt (retries re-ask, so the manager can
    // walk a failing link down); 0 = the fixed PHY default. The choice is
    // cached so the RTS duration field and the data frame agree on the
    // airtime.
    current_rate_bps_ = phy_.data_bitrate_for(current_queue_->key().next_hop);
    if (params_.rts_cts_enabled && current_queue_->front().bytes >= params_.rts_threshold_bytes) {
        transmit_rts();
        return;
    }
    transmit_data();
}

void DcfMac::transmit_rts()
{
    state_ = State::kTxRts;
    const phy::PhyParams& phy_params = phy_.channel_params();
    phy::Frame cts;
    cts.type = phy::FrameType::kCts;
    phy::Frame ack;
    ack.type = phy::FrameType::kAck;
    phy::Frame rts;
    rts.type = phy::FrameType::kRts;
    rts.tx_node = phy_.id();
    rts.rx_node = current_queue_->key().next_hop;
    rts.mac_seq = current_seq_;
    rts.retry = retries_;
    // Duration: the rest of the exchange after the RTS ends.
    rts.duration_us = 3 * params_.sifs_us + phy_params.tx_duration(cts) + current_data_airtime() +
                      phy_params.tx_duration(ack);
    phy_.start_tx(std::move(rts));
}

void DcfMac::transmit_data()
{
    state_ = State::kTxData;
    if (retries_ == 0) {
        net::Packet& head = current_queue_->mutable_front();
        if (head.first_tx_at < 0) head.first_tx_at = scheduler_.now();
    }
    phy::Frame frame;
    frame.type = phy::FrameType::kData;
    frame.tx_node = phy_.id();
    frame.rx_node = current_queue_->key().next_hop;
    frame.mac_seq = current_seq_;
    frame.retry = retries_;
    frame.bitrate_bps = current_rate_bps_;
    frame.has_packet = true;
    frame.packet = current_queue_->front();
    ++data_attempts_;
    if (retries_ > 0) ++retransmissions_;
    if (retries_ == 0 && callbacks_ != nullptr)
        callbacks_->mac_first_tx(current_queue_->key(), frame.packet);
    phy_.start_tx(std::move(frame));
}

void DcfMac::transmit_aggregated()
{
    state_ = State::kTxData;
    phy::Frame frame;
    frame.type = phy::FrameType::kData;
    frame.tx_node = phy_.id();
    frame.rx_node = batch_key_.next_hop;
    frame.mac_seq = ba_.window_start();
    frame.ba_start_seq = ba_.window_start();
    frame.retry = retries_;
    frame.bitrate_bps = current_rate_bps_;
    frame.has_packet = false;
    frame.subframes.reserve(ba_.window().size());
    for (BlockAckManager::SenderEntry& entry : ba_.window()) {
        if (!entry.sent) {
            entry.sent = true;
            if (entry.packet.first_tx_at < 0) entry.packet.first_tx_at = scheduler_.now();
            if (callbacks_ != nullptr) callbacks_->mac_first_tx(batch_key_, entry.packet);
        }
        phy::Mpdu mpdu;
        mpdu.packet = entry.packet;
        mpdu.seq = entry.seq;
        mpdu.retry = entry.retry;
        frame.subframes.push_back(std::move(mpdu));
    }
    ++data_attempts_;
    if (retries_ > 0) ++retransmissions_;
    phy_.start_tx(std::move(frame));
}

void DcfMac::phy_tx_done(const phy::Frame& frame)
{
    if (frame.type == phy::FrameType::kAck || frame.type == phy::FrameType::kCts ||
        frame.type == phy::FrameType::kBlockAck) {
        if (frame.type == phy::FrameType::kAck) ++acks_sent_;
        if (frame.type == phy::FrameType::kBlockAck) ++block_acks_sent_;
        ack_tx_scheduled_ = false;
        if (!pending_ctrl_.empty()) {
            schedule_control_if_needed();
            return;
        }
        // Resume whatever the contention machine was doing.
        if (in_contention_) {
            resume_access();
        } else {
            state_ = State::kIdle;
            maybe_start_work();
        }
        return;
    }
    const phy::PhyParams& phy_params = phy_.channel_params();
    if (frame.type == phy::FrameType::kRts) {
        // RTS sent: await the CTS.
        state_ = State::kWaitCts;
        phy::Frame cts;
        cts.type = phy::FrameType::kCts;
        cts_timer_.arm_in(params_.sifs_us + phy_params.tx_duration(cts) +
                          params_.ack_timeout_slack_us);
        return;
    }
    // Data frame sent: await the ACK (block-ack for an A-MPDU).
    state_ = State::kWaitAck;
    phy::Frame ack;
    ack.type = frame.aggregated() ? phy::FrameType::kBlockAck : phy::FrameType::kAck;
    const SimTime ack_air = phy_params.tx_duration(ack);
    ack_timer_.arm_in(params_.sifs_us + ack_air + params_.ack_timeout_slack_us);
}

void DcfMac::phy_frame_decoded(const phy::Frame& frame)
{
    if (frame.rx_node != phy_.id()) {
        // Virtual carrier sense. A decoded foreign data frame announces
        // its ACK exchange; foreign RTS/CTS frames carry the remaining
        // exchange duration explicitly.
        if (frame.type == phy::FrameType::kData) {
            set_nav_for_ack(frame.aggregated());
        } else if (frame.type == phy::FrameType::kRts || frame.type == phy::FrameType::kCts) {
            set_nav_until(scheduler_.now() + frame.duration_us);
        }
        if (callbacks_ != nullptr) callbacks_->mac_sniffed(frame);
        return;
    }
    switch (frame.type) {
        case phy::FrameType::kAck:
            if (state_ == State::kWaitAck && !ba_.batch_active() &&
                frame.mac_seq == current_seq_ &&
                frame.tx_node == current_queue_->key().next_hop) {
                ack_timer_.cancel();
                phy_.report_tx_result(frame.tx_node, /*success=*/true);
                finish_current(/*success=*/true);
            }
            return;
        case phy::FrameType::kCts:
            if (state_ == State::kWaitCts && frame.mac_seq == current_seq_ &&
                frame.tx_node == current_queue_->key().next_hop) {
                cts_timer_.cancel();
                // Data follows the CTS after SIFS, without re-contending.
                cts_data_at_ = scheduler_.now() + params_.sifs_us;
                cts_data_timer_.arm_in(params_.sifs_us);
            }
            return;
        case phy::FrameType::kBlockAck:
            if (state_ == State::kWaitAck && ba_.batch_active() &&
                frame.tx_node == batch_key_.next_hop) {
                ack_timer_.cancel();
                const BlockAckManager::Settled settled =
                    ba_.on_block_ack(frame.ba_start_seq, frame.ba_bitmap, params_.retry_limit);
                settle_block_ack(settled, /*any_acked=*/!settled.acked.empty());
            }
            return;
        case phy::FrameType::kRts: {
            // Answer with a CTS advertising the rest of the exchange.
            const phy::PhyParams& phy_params = phy_.channel_params();
            phy::Frame cts;
            cts.type = phy::FrameType::kCts;
            const SimTime remaining =
                frame.duration_us - params_.sifs_us - phy_params.tx_duration(cts);
            pending_ctrl_.push_back(
                PendingControl{phy::FrameType::kCts, frame.tx_node, frame.mac_seq,
                               std::max<SimTime>(0, remaining)});
            schedule_control_if_needed();
            return;
        }
        case phy::FrameType::kData: {
            if (frame.aggregated()) {
                // Score the surviving subframes (the PHY's per-MPDU
                // verdict is valid during this callback), answer with a
                // compressed block-ack after SIFS, and hand the newly
                // received MPDUs — plus the release threshold — to the
                // reorder buffer upstairs. The scoreboard does the
                // duplicate filtering, not last_rx_seq_.
                const BlockAckManager::RxVerdict verdict =
                    ba_.receive(frame, phy_.last_decode_mpdu_errors());
                dup_rx_suppressed_ += verdict.duplicates;
                const BlockAckManager::BaResponse response = ba_.response_for(frame.tx_node);
                PendingControl ctrl{phy::FrameType::kBlockAck, frame.tx_node, frame.mac_seq, 0,
                                    response.start, response.bitmap};
                pending_ctrl_.push_back(ctrl);
                schedule_control_if_needed();
                if (callbacks_ != nullptr)
                    callbacks_->mac_rx_aggregated(frame, verdict.ok_bits, verdict.release_below);
                return;
            }
            // Always acknowledge; deliver unless duplicate.
            pending_ctrl_.push_back(
                PendingControl{phy::FrameType::kAck, frame.tx_node, frame.mac_seq, 0});
            schedule_control_if_needed();
            const auto it = last_rx_seq_.find(frame.tx_node);
            const bool duplicate =
                frame.retry > 0 && it != last_rx_seq_.end() && it->second == frame.mac_seq;
            last_rx_seq_[frame.tx_node] = frame.mac_seq;
            if (duplicate) ++dup_rx_suppressed_;
            if (!duplicate && callbacks_ != nullptr) callbacks_->mac_rx(frame);
            return;
        }
    }
}

void DcfMac::schedule_control_if_needed()
{
    if (ack_tx_scheduled_ || pending_ctrl_.empty()) return;
    ack_tx_scheduled_ = true;
    // Control responses have SIFS priority: suspend the contention wait.
    if (state_ == State::kContending) {
        freeze_contention();
        state_ = State::kWaitMediumIdle;  // re-entered after the response
    }
    next_ctrl_at_ = scheduler_.now() + params_.sifs_us;
    ctrl_timer_.arm_in(params_.sifs_us);
}

void DcfMac::send_pending_control()
{
    // Stale triggers cannot reach here (quiesce cancels the timer); the
    // state guards below cover same-lifetime races only.
    if (down_ || pending_ctrl_.empty()) return;
    if (phy_.transmitting()) {
        // Extremely rare: our own transmission started in the SIFS
        // window. Retry shortly after.
        next_ctrl_at_ = scheduler_.now() + params_.slot_us;
        ctrl_timer_.arm_in(params_.slot_us);
        return;
    }
    next_ctrl_at_ = -1;  // the control frame goes on air now
    const PendingControl ctrl = pending_ctrl_.front();
    pending_ctrl_.pop_front();
    phy::Frame frame;
    frame.type = ctrl.type;
    frame.tx_node = phy_.id();
    frame.rx_node = ctrl.to;
    frame.mac_seq = ctrl.seq;
    frame.duration_us = ctrl.duration_us;
    frame.ba_start_seq = ctrl.ba_start;
    frame.ba_bitmap = ctrl.ba_bitmap;
    frame.has_packet = false;
    // SIFS-timed response: its trigger was scheduled after any contending
    // station's virtual slot re-arm one slot earlier, so boundary ties
    // resolve in the contenders' favour (late_trigger = true).
    coordinator_.begin_external_tx(/*late_trigger=*/true);
    phy_.start_tx(std::move(frame));
    coordinator_.end_external_tx();
}

void DcfMac::on_cts_data_follow_up()
{
    cts_data_at_ = -1;
    if (state_ == State::kWaitCts && !phy_.transmitting()) {
        coordinator_.begin_external_tx(/*late_trigger=*/true);
        transmit_data();
        coordinator_.end_external_tx();
    }
}

void DcfMac::settle_block_ack(const BlockAckManager::Settled& settled, bool any_acked)
{
    phy_.report_tx_result(batch_key_.next_hop, any_acked);
    for (const BlockAckManager::SenderEntry& entry : settled.acked) {
        ++successes_;
        if (callbacks_ != nullptr) callbacks_->mac_tx_success(batch_key_, entry.packet);
    }
    for (const BlockAckManager::SenderEntry& entry : settled.dropped) {
        ++retry_drops_;
        if (callbacks_ != nullptr) callbacks_->mac_tx_drop(batch_key_, entry.packet);
    }
    if (ba_.batch_active()) {
        // Selective retransmit of the remainder: escalate and re-contend.
        ++retries_;
        backoff_remaining_ = rng_.uniform_int(0, effective_cw() - 1);
        resume_access();
        return;
    }
    in_contention_ = false;
    current_queue_ = nullptr;
    retries_ = 0;
    state_ = State::kIdle;
    maybe_start_work();
}

void DcfMac::on_ack_timeout()
{
    if (state_ != State::kWaitAck) throw std::logic_error("DcfMac::on_ack_timeout: bad state");
    if (ba_.batch_active()) {
        // No block-ack at all: every window entry burns a retry
        // (settle_block_ack reports the failed attempt to the rate
        // manager).
        const BlockAckManager::Settled settled = ba_.on_timeout(params_.retry_limit);
        settle_block_ack(settled, /*any_acked=*/false);
        return;
    }
    phy_.report_tx_result(current_queue_->key().next_hop, /*success=*/false);
    ++retries_;
    if (retries_ > params_.retry_limit) {
        ++retry_drops_;
        finish_current(/*success=*/false);
        return;
    }
    // Redraw the backoff from the escalated window and re-contend.
    backoff_remaining_ = rng_.uniform_int(0, effective_cw() - 1);
    resume_access();
}

void DcfMac::on_cts_timeout()
{
    if (state_ != State::kWaitCts) throw std::logic_error("DcfMac::on_cts_timeout: bad state");
    ++retries_;
    if (retries_ > params_.retry_limit) {
        ++retry_drops_;
        finish_current(/*success=*/false);
        return;
    }
    backoff_remaining_ = rng_.uniform_int(0, effective_cw() - 1);
    resume_access();
}

void DcfMac::finish_current(bool success)
{
    const QueueKey key = current_queue_->key();
    const net::Packet packet = std::move(current_queue_->mutable_front());
    current_queue_->pop();
    in_contention_ = false;
    current_queue_ = nullptr;
    retries_ = 0;
    state_ = State::kIdle;
    if (success) {
        ++successes_;
        if (callbacks_ != nullptr) callbacks_->mac_tx_success(key, packet);
    } else {
        if (callbacks_ != nullptr) callbacks_->mac_tx_drop(key, packet);
    }
    maybe_start_work();
}

SimTime DcfMac::earliest_committed_tx_at() const
{
    if (down_) return -1;
    SimTime earliest = -1;
    const auto consider = [&earliest](SimTime at) {
        if (at >= 0 && (earliest < 0 || at < earliest)) earliest = at;
    };
    consider(next_ctrl_at_);
    consider(cts_data_at_);
    consider(coordinator_.registered_expiry(*this));
    return earliest;
}

void DcfMac::phy_busy_changed(bool busy)
{
    if (down_) return;
    if (busy) {
        if (state_ == State::kContending) {
            freeze_contention();
            state_ = State::kWaitMediumIdle;
        }
        return;
    }
    // Physical carrier became idle; the NAV may still hold us back (its
    // expiry event re-checks).
    if (state_ == State::kWaitMediumIdle && in_contention_ && !ack_tx_scheduled_ &&
        !medium_busy()) {
        start_difs();
    }
}

}  // namespace ezflow::mac

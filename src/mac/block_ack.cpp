#include "mac/block_ack.h"

#include <stdexcept>
#include <utility>

namespace ezflow::mac {

std::uint32_t BlockAckManager::window_start() const
{
    if (window_.empty()) throw std::logic_error("BlockAckManager::window_start: empty window");
    return window_.front().seq;
}

void BlockAckManager::add_mpdu(net::Packet&& packet, std::uint32_t seq)
{
    if (!window_.empty() && seq <= window_.back().seq)
        throw std::logic_error("BlockAckManager::add_mpdu: sequence not ascending");
    if (window_.size() >= 64)
        throw std::logic_error("BlockAckManager::add_mpdu: window exceeds bitmap width");
    SenderEntry entry;
    entry.packet = std::move(packet);
    entry.seq = seq;
    window_.push_back(std::move(entry));
}

BlockAckManager::Settled BlockAckManager::on_block_ack(std::uint32_t start, std::uint64_t bitmap,
                                                       int retry_limit)
{
    Settled settled;
    std::vector<SenderEntry> keep;
    keep.reserve(window_.size());
    for (SenderEntry& entry : window_) {
        const bool acked =
            entry.seq < start ||
            (entry.seq - start < 64 && ((bitmap >> (entry.seq - start)) & 1) != 0);
        if (acked) {
            settled.acked.push_back(std::move(entry));
        } else if (++entry.retry > retry_limit) {
            settled.dropped.push_back(std::move(entry));
        } else {
            keep.push_back(std::move(entry));
        }
    }
    window_ = std::move(keep);
    return settled;
}

BlockAckManager::Settled BlockAckManager::on_timeout(int retry_limit)
{
    return on_block_ack(/*start=*/0, /*bitmap=*/0, retry_limit);
}

std::vector<BlockAckManager::SenderEntry> BlockAckManager::flush()
{
    return std::exchange(window_, {});
}

BlockAckManager::RxVerdict BlockAckManager::receive(const phy::Frame& frame,
                                                    std::uint64_t corrupt_bits)
{
    Scoreboard& sb = scoreboards_[frame.tx_node];
    // BAR-free window advance: the frame's advertised start releases
    // everything below it (the sender either saw it acknowledged or
    // abandoned it at the retry limit — either way it will never be
    // retransmitted, so holding out for it would stall delivery forever).
    if (frame.ba_start_seq > sb.window_start) {
        sb.window_start = frame.ba_start_seq;
        sb.received.erase(sb.received.begin(), sb.received.lower_bound(sb.window_start));
    }
    RxVerdict verdict;
    verdict.release_below = sb.window_start;
    for (std::size_t i = 0; i < frame.subframes.size() && i < 64; ++i) {
        if ((corrupt_bits >> i) & 1) continue;
        const std::uint32_t seq = frame.subframes[i].seq;
        if (seq < sb.window_start || !sb.received.insert(seq).second) {
            ++verdict.duplicates;
            continue;
        }
        verdict.ok_bits |= (1ull << i);
    }
    return verdict;
}

BlockAckManager::BaResponse BlockAckManager::response_for(net::NodeId tx) const
{
    const auto it = scoreboards_.find(tx);
    if (it == scoreboards_.end())
        throw std::logic_error("BlockAckManager::response_for: unknown originator");
    BaResponse response;
    response.start = it->second.window_start;
    for (const std::uint32_t seq : it->second.received) {
        const std::uint32_t offset = seq - response.start;
        if (offset < 64) response.bitmap |= (1ull << offset);
    }
    return response;
}

}  // namespace ezflow::mac

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/packet.h"

namespace ezflow::mac {

/// Identifies one MAC interface queue. The paper requires a node to keep
/// one queue per successor, and nodes that are both source and relay to
/// keep the locally generated traffic separate from forwarded traffic so
/// that forwarded packets are never starved (Section 3.1).
struct QueueKey {
    net::NodeId next_hop = -1;
    bool own_traffic = false;

    bool operator==(const QueueKey& o) const
    {
        return next_hop == o.next_hop && own_traffic == o.own_traffic;
    }
    bool operator!=(const QueueKey& o) const { return !(*this == o); }
    bool operator<(const QueueKey& o) const
    {
        if (next_hop != o.next_hop) return next_hop < o.next_hop;
        return own_traffic < o.own_traffic;
    }
};

/// A party waiting for space in a full MacQueue. Backpressure-gated
/// traffic sources implement this instead of burning one scheduler event
/// per generated-and-dropped packet: the queue calls back at the first
/// pop after registration. Notification is two-phase so that several
/// waiters resuming at the same instant can be ordered exactly the way
/// their independent per-packet event chains would have interleaved.
class VacancyWaiter {
public:
    virtual ~VacancyWaiter() = default;

    /// Phase 1 — a slot just freed. Settle internal accounting and
    /// return the absolute time of the next pending emission, plus the
    /// time of the virtual event that would have scheduled it (the FIFO
    /// tie-break key of the per-packet reference). Return
    /// `resume_at < 0` to drop out (e.g. the source's active period
    /// ended).
    struct Resume {
        util::SimTime resume_at = -1;
        util::SimTime scheduled_from = -1;
    };
    virtual Resume vacancy_prepare() = 0;

    /// Phase 2 — schedule the resume event. Called in deterministic
    /// order: ascending (resume_at, scheduled_from, registration order).
    virtual void vacancy_commit() = 0;
};

/// One DropTail FIFO interface queue with its own CWmin — the single
/// IEEE 802.11 parameter EZ-Flow manipulates.
class MacQueue {
public:
    MacQueue(QueueKey key, int capacity, int cw_min);

    const QueueKey& key() const { return key_; }

    /// Returns false (and counts a drop) when the queue is full.
    bool push(const net::Packet& packet);
    bool push(net::Packet&& packet);
    const net::Packet& front() const;
    /// Mutable head access (the MAC stamps first-transmission times).
    net::Packet& mutable_front();
    void pop();

    /// Dequeue up to `max_count` packets (stopping before the packet that
    /// would push the cumulative payload past `max_bytes`; 0 = unlimited,
    /// and the first packet is always taken) into `out`. Counts each as
    /// dequeued but wakes vacancy waiters once, after the whole batch —
    /// the A-MPDU TXOP fill. Returns the number of packets taken.
    int pop_batch(int max_count, std::int64_t max_bytes, std::vector<net::Packet>& out);

    /// Register `waiter` for a one-shot callback at the next pop. A
    /// waiter may re-register from within its own commit. Registration
    /// order is preserved (it is the tie-break of last resort when two
    /// waiters resume at the same instant from the same virtual slot).
    void add_vacancy_waiter(VacancyWaiter* waiter);
    /// Drop a registration (waiter teardown). No-op when absent.
    void remove_vacancy_waiter(VacancyWaiter* waiter);
    std::size_t vacancy_waiters() const { return waiters_.size(); }

    /// Account `count` generations a gated source skipped in closed form
    /// while this queue was full: the per-packet reference would have
    /// pushed (and drop-counted) each of them individually.
    void count_gated_drops(std::uint64_t count) { dropped_full_ += count; }

    /// Node-death teardown: discard every queued packet into the
    /// `dropped_node_down` accounting bucket (NOT `dequeued` — these
    /// packets never reached the air) and wake any gated sources so they
    /// settle and move to the retry-with-backoff path instead of parking
    /// forever on a queue that will never pop again. Returns the number
    /// of packets flushed.
    std::uint64_t flush_node_down();

    int size() const { return static_cast<int>(packets_.size()); }
    bool empty() const { return packets_.empty(); }
    int capacity() const { return capacity_; }

    int cw_min() const { return cw_min_; }
    void set_cw_min(int cw);

    // Statistics. Conservation: enqueued == dequeued + dropped_node_down
    // + size at all times (dropped_full counts packets never accepted).
    std::uint64_t enqueued() const { return enqueued_; }
    std::uint64_t dropped_full() const { return dropped_full_; }
    std::uint64_t dequeued() const { return dequeued_; }
    std::uint64_t dropped_node_down() const { return dropped_node_down_; }

private:
    /// Capacity check + drop/enqueue accounting shared by both push
    /// overloads (counts the enqueue on acceptance).
    bool accept_one();
    void notify_vacancy();

    struct PendingResume {
        VacancyWaiter* waiter;
        VacancyWaiter::Resume resume;
        std::size_t order;
    };

    QueueKey key_;
    int capacity_;
    int cw_min_;
    std::deque<net::Packet> packets_;
    std::vector<VacancyWaiter*> waiters_;  ///< one-shot, registration order
    std::vector<VacancyWaiter*> notifying_;  ///< scratch for notify_vacancy
    std::vector<PendingResume> pending_;     ///< scratch for notify_vacancy
    std::uint64_t enqueued_ = 0;
    std::uint64_t dropped_full_ = 0;
    std::uint64_t dequeued_ = 0;
    std::uint64_t dropped_node_down_ = 0;
};

/// The set of interface queues at one node, served round-robin so no
/// successor (and no traffic class) is starved by the MAC itself.
class MacQueueSet {
public:
    MacQueueSet(int capacity, int default_cw_min);

    /// Get or create the queue for `key`.
    MacQueue& ensure(const QueueKey& key);
    /// Lookup; nullptr when absent.
    MacQueue* find(const QueueKey& key);
    const MacQueue* find(const QueueKey& key) const;

    /// Next non-empty queue in round-robin order, advancing the cursor.
    /// nullptr when all queues are empty.
    MacQueue* next_nonempty();

    int total_packets() const;
    bool all_empty() const { return total_packets() == 0; }

    /// Flush every queue into its `dropped_node_down` bucket (node
    /// teardown). Returns the total packets flushed.
    std::uint64_t flush_all_node_down();

    const std::vector<std::unique_ptr<MacQueue>>& queues() const { return queues_; }

private:
    int capacity_;
    int default_cw_min_;
    std::vector<std::unique_ptr<MacQueue>> queues_;
    std::size_t rr_cursor_ = 0;
};

}  // namespace ezflow::mac

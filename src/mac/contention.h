#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/scheduler.h"
#include "sim/timer.h"
#include "util/units.h"

namespace ezflow::mac {

using util::SimTime;

/// A station engaged in a batched backoff countdown (implemented by
/// DcfMac). The coordinator calls back when the registered counter
/// reaches zero.
class BackoffClient {
public:
    virtual ~BackoffClient() = default;
    /// The backoff counter expired on an idle medium: transmit now.
    virtual void backoff_expired() = 0;
};

/// Per-channel backoff coordinator: collapses the classic one-event-per-
/// slot countdown (one Timer firing every slot_us for every contending
/// MAC) into one scheduler event per transmission opportunity.
///
/// A MAC that finished its DIFS registers its remaining slot count
/// instead of arming a per-slot timer; the coordinator keeps a single
/// timer armed at the earliest expiry across all registrants. When a
/// registrant's medium goes busy it calls freeze(), which consumes the
/// number of whole slots that elapsed since registration in one batch —
/// the same arithmetic the per-slot countdown would have performed, so
/// transmission instants and Rng consumption are identical while the
/// event count drops from O(slots) to O(transmissions).
///
/// Equivalence with the per-slot reference is exact including ties. The
/// reference decrements at the *start* of each slot boundary, and a
/// transmission beginning exactly on a registrant's boundary may arrive
/// before or after that registrant's slot event depending on scheduler
/// insertion order (the scheduler breaks time ties FIFO). The
/// coordinator reproduces that order without per-slot events:
///  * `entries_` is kept in the order the per-slot timer chains would
///    fire within one instant: registrants joining at a later instant go
///    in front (their DIFS event was inserted before the older chains'
///    most recent re-arm), same-instant registrants keep their
///    registration order (their DIFS timers fired in insertion order).
///  * expiries due at the same instant fire in `entries_` order, and a
///    registrant frozen by an earlier-firing registrant counts the
///    boundary decrement exactly when it precedes the transmitter in
///    that order.
///  * transmissions that do not come from a coordinator expiry announce
///    themselves via begin_external_tx(late_trigger): a SIFS-timed frame
///    (ACK/CTS, or data following a CTS) was scheduled *after* the
///    registrants' virtual slot re-arm one slot earlier, so at an exact
///    boundary tie the reference would have decremented first
///    (late_trigger = true); a DIFS/EIFS-end transmission was scheduled
///    before it and preempts the decrement (late_trigger = false).
class ContentionCoordinator {
public:
    explicit ContentionCoordinator(sim::Scheduler& scheduler);
    ContentionCoordinator(const ContentionCoordinator&) = delete;
    ContentionCoordinator& operator=(const ContentionCoordinator&) = delete;

    /// Start a batched countdown for `client`. The caller has already
    /// consumed the decrement at the current instant (the per-slot
    /// reference decrements immediately when DIFS elapses);
    /// `remaining_slots` more decrements are owed, one per further slot
    /// boundary, and backoff_expired() fires one slot after the last of
    /// them. Throws if `client` is already registered.
    void register_backoff(BackoffClient& client, int remaining_slots, SimTime slot_us);

    /// The client's medium went busy: consume the slots that elapsed
    /// since registration (batch decrement) and unregister. Returns the
    /// number of slots consumed; the client subtracts it from its
    /// remaining count. Throws if `client` is not registered.
    int freeze(BackoffClient& client);

    /// Drop a registration without slot accounting (client teardown).
    void unregister(BackoffClient& client);

    bool is_registered(const BackoffClient& client) const;

    /// Bracket a transmission that is not driven by a coordinator expiry
    /// (DIFS-end immediate access, SIFS-timed control frames, data after
    /// CTS) so that freezes caused by its busy cascade resolve exact
    /// slot-boundary ties the way the per-slot reference would (see the
    /// class comment). `late_trigger`: the event that triggered this
    /// transmission was scheduled less than one slot before now.
    void begin_external_tx(bool late_trigger);
    void end_external_tx();

    /// Currently registered backoff counters.
    std::size_t contenders() const { return entries_.size(); }
    /// Total slot decrements consumed through batched freezes (stats).
    std::uint64_t slots_batched() const { return slots_batched_; }
    /// Total backoff expiries delivered (stats).
    std::uint64_t expiries() const { return expiries_; }

private:
    struct Entry {
        BackoffClient* client;
        SimTime start;   ///< registration instant (decrement already taken)
        SimTime slot;    ///< slot duration, microseconds
        int remaining;   ///< decrements owed after `start`
        SimTime expiry;  ///< start + (remaining + 1) * slot
    };

    void on_timer();
    /// Re-aim the single timer at the earliest registered expiry (or
    /// disarm when no one is registered). No-op while the due-expiry
    /// loop runs — it re-arms once, after the last due entry fired.
    ///
    /// Arming is two-phase to preserve the scheduler's FIFO tie order
    /// against the per-slot reference: the reference arms the event that
    /// transmits at X during the slot boundary at X - slot, so an event
    /// armed earlier (a DIFS, a SIFS response) due at the same instant X
    /// fires first. The coordinator therefore wakes once at X - slot (the
    /// stage event) and only then arms the expiry event for X, giving it
    /// the same insertion point the reference's final slot event had.
    void rearm();
    std::size_t find_index(const BackoffClient& client) const;
    void erase_at(std::size_t index);
    /// Whether `entry`'s virtual slot event at the current instant would
    /// have fired before the transmission that is interrupting it.
    bool precedes_transmitter(std::size_t index) const;

    sim::Scheduler& scheduler_;
    sim::Timer timer_;
    std::vector<Entry> entries_;  ///< virtual per-slot chain order
    SimTime armed_at_ = -1;       ///< pending wake-up instant (-1: none)
    bool armed_final_ = false;    ///< armed at an expiry (else at its stage)
    SimTime last_register_at_ = -1;
    std::size_t block_end_ = 0;  ///< end of the same-instant insert block
    const BackoffClient* firing_ = nullptr;
    int external_depth_ = 0;
    bool external_late_ = false;
    bool in_fire_ = false;
    std::uint64_t slots_batched_ = 0;
    std::uint64_t expiries_ = 0;
};

}  // namespace ezflow::mac

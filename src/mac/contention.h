#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/scheduler.h"
#include "sim/timer.h"
#include "util/units.h"

namespace ezflow::mac {

using util::SimTime;

/// A station engaged in a batched backoff countdown (implemented by
/// DcfMac). The coordinator calls back when the registered counter
/// reaches zero.
class BackoffClient {
public:
    virtual ~BackoffClient() = default;
    /// The backoff counter expired on an idle medium: transmit now.
    virtual void backoff_expired() = 0;
};

/// Per-channel backoff coordinator: collapses the classic one-event-per-
/// slot countdown (one Timer firing every slot_us for every contending
/// MAC) into one scheduler event per transmission opportunity.
///
/// register_access() fuses the DIFS wait and the backoff countdown into a
/// single registration: the MAC hands over its interframe space and its
/// remaining slot count in one call, and the coordinator owns the whole
/// idle-medium timeline — DIFS end, per-slot decrements, and the final
/// expiry — with one timer. That is one scheduler insert per contention
/// cycle instead of a DIFS timer plus a registration. When a registrant's
/// medium goes busy it calls freeze(), which consumes the decrements that
/// elapsed since registration in one batch — the same arithmetic the
/// per-slot countdown would have performed, so transmission instants and
/// Rng consumption are identical while the event count drops from
/// O(slots) to O(transmissions).
///
/// Equivalence with the per-slot reference is exact including ties. The
/// reference decrements at the *start* of each slot boundary, and a
/// transmission beginning exactly on a registrant's boundary may arrive
/// before or after that registrant's slot event depending on scheduler
/// insertion order (the scheduler breaks time ties FIFO). The coordinator
/// reproduces that order without per-slot events by keeping `entries_`
/// sorted the way the reference's pending events would fire if due at the
/// same instant:
///  * DIFS-end first (reg_at descending): a chain still inside its DIFS
///    has its pending event armed a whole interframe space back, which is
///    earlier than any ongoing chain's most recent per-slot re-arm (this
///    requires difs_us > slot_us, which register_access enforces); and a
///    chain that entered backoff later re-armed in front of older chains
///    at their first shared boundary.
///  * Among equal DIFS-ends, arming instant ascending then registration
///    order: two DIFS waits ending at the same instant fire in the order
///    their timers were armed, which is the order the reference's
///    scheduler would pop them.
///  * expiries due at the same instant fire in `entries_` order, and a
///    registrant frozen by an earlier-firing registrant counts the
///    boundary decrement exactly when it precedes the transmitter in
///    that order.
///  * transmissions that do not come from a coordinator expiry announce
///    themselves via begin_external_tx(late_trigger): a SIFS-timed frame
///    (ACK/CTS, or data following a CTS) was scheduled *after* the
///    registrants' virtual slot re-arm one slot earlier, so at an exact
///    boundary tie the reference would have decremented first
///    (late_trigger = true); a transmission whose trigger was armed at
///    least one slot back preempts the decrement (late_trigger = false).
class ContentionCoordinator {
public:
    explicit ContentionCoordinator(sim::Scheduler& scheduler);
    ContentionCoordinator(const ContentionCoordinator&) = delete;
    ContentionCoordinator& operator=(const ContentionCoordinator&) = delete;

    /// Fused DIFS + backoff registration: the medium just went idle (or
    /// the MAC re-entered the access procedure) and the interframe space
    /// of `difs_us` begins now. `backoff_slots` is the full remaining
    /// counter: the first decrement is owed at DIFS end (exactly when the
    /// per-slot reference decrements inside its DIFS-end event), one more
    /// per subsequent slot boundary, and backoff_expired() fires at
    /// now + difs_us + backoff_slots * slot_us — immediately at DIFS end
    /// when the counter is zero. freeze() reports every decrement that
    /// happened, DIFS-end one included; a freeze before DIFS end consumes
    /// nothing. Requires difs_us > slot_us (the tie-order argument above
    /// relies on it). Throws if `client` is already registered.
    void register_access(BackoffClient& client, SimTime difs_us, int backoff_slots,
                         SimTime slot_us);

    /// Backoff-only registration (the pre-fused API, kept for equivalence
    /// tests): the caller has already consumed the decrement at the
    /// current instant; `remaining_slots` more decrements are owed, one
    /// per further slot boundary, and backoff_expired() fires one slot
    /// after the last of them. Throws if `client` is already registered.
    void register_backoff(BackoffClient& client, int remaining_slots, SimTime slot_us);

    /// The client's medium went busy: consume the decrements that elapsed
    /// since registration (batch decrement) and unregister. Returns the
    /// number of decrements; the client subtracts it from its remaining
    /// count. Throws if `client` is not registered.
    int freeze(BackoffClient& client);

    /// Drop a registration without slot accounting (client teardown).
    void unregister(BackoffClient& client);

    bool is_registered(const BackoffClient& client) const;

    /// The registered expiry instant of `client`, or -1 when it is not
    /// registered. For a frozen-then-rearmed chain this is the instant
    /// currently committed; it can only move later, never earlier — the
    /// conservative property the sharded engine's lookahead relies on
    /// when bounding the next boundary transmission.
    SimTime registered_expiry(const BackoffClient& client) const;

    /// Bracket a transmission that is not driven by a coordinator expiry
    /// (SIFS-timed control frames, data after CTS) so that freezes caused
    /// by its busy cascade resolve exact slot-boundary ties the way the
    /// per-slot reference would (see the class comment). `late_trigger`:
    /// the event that triggered this transmission was scheduled less than
    /// one slot before now.
    void begin_external_tx(bool late_trigger);
    void end_external_tx();

    /// Currently registered contenders (DIFS phase included).
    std::size_t contenders() const { return entries_.size(); }
    /// Total decrements consumed through batched freezes (stats).
    std::uint64_t slots_batched() const { return slots_batched_; }
    /// Total backoff expiries delivered (stats).
    std::uint64_t expiries() const { return expiries_; }

private:
    struct Entry {
        BackoffClient* client;
        SimTime reg_at;  ///< DIFS end: first decrement owed here (difs_pending)
        SimTime armed;   ///< when the pending DIFS-end event was armed
        std::uint64_t seq;  ///< registration order, ties in (reg_at, armed)
        SimTime slot;    ///< slot duration, microseconds
        int remaining;   ///< decrements owed at boundaries after reg_at
        bool difs_pending;  ///< a decrement is owed at reg_at itself
        SimTime expiry;  ///< fire instant: reg_at when the counter is
                         ///< already zero, else reg_at + (remaining+1)*slot
    };

    void insert_entry(Entry entry);
    void on_timer();
    /// Re-aim the single timer at the earliest registered expiry (or
    /// disarm when no one is registered). No-op while the due-expiry
    /// loop runs — it re-arms once, after the last due entry fired.
    ///
    /// Arming is two-phase to preserve the scheduler's FIFO tie order
    /// against the per-slot reference: the reference arms the event that
    /// transmits at X during the slot boundary at X - slot, so an event
    /// armed earlier (a DIFS, a SIFS response) due at the same instant X
    /// fires first. The coordinator therefore wakes once at X - slot (the
    /// stage event) and only then arms the expiry event for X, giving it
    /// the same insertion point the reference's final slot event had.
    void rearm();
    std::size_t find_index(const BackoffClient& client) const;
    void erase_at(std::size_t index);
    /// Whether `entry`'s virtual event at the current instant would have
    /// fired before the transmission that is interrupting it.
    bool precedes_transmitter(std::size_t index) const;

    sim::Scheduler& scheduler_;
    sim::Timer timer_;
    std::vector<Entry> entries_;  ///< virtual pending-event fire order
    std::uint64_t next_seq_ = 0;
    SimTime armed_at_ = -1;       ///< pending wake-up instant (-1: none)
    bool armed_final_ = false;    ///< armed at an expiry (else at its stage)
    const BackoffClient* firing_ = nullptr;
    int external_depth_ = 0;
    bool external_late_ = false;
    bool in_fire_ = false;
    std::uint64_t slots_batched_ = 0;
    std::uint64_t expiries_ = 0;
};

}  // namespace ezflow::mac

#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "mac/block_ack.h"
#include "mac/contention.h"
#include "mac/mac_params.h"
#include "mac/mac_queue.h"
#include "phy/phy.h"
#include "sim/scheduler.h"
#include "sim/timer.h"
#include "util/rng.h"

namespace ezflow::mac {

using util::SimTime;

/// Upper-layer callbacks of the MAC. The forwarding plane and EZ-Flow's
/// BOE both hang off these hooks.
class MacCallbacks {
public:
    virtual ~MacCallbacks() = default;
    /// A data frame addressed to this node was received (after ACK and
    /// duplicate filtering).
    virtual void mac_rx(const phy::Frame& frame) = 0;
    /// A decoded frame not addressed to this node (promiscuous tap —
    /// the raw-socket/monitor-mode capture EZ-Flow's BOE relies on).
    virtual void mac_sniffed(const phy::Frame& frame) = 0;
    /// The first on-air transmission attempt of a packet (BOE stores the
    /// checksum at this moment: the packet was truly sent at the PHY).
    virtual void mac_first_tx(const QueueKey& key, const net::Packet& packet) = 0;
    /// A data frame was acknowledged by the next hop.
    virtual void mac_tx_success(const QueueKey& key, const net::Packet& packet) = 0;
    /// A data frame was abandoned after the retry limit.
    virtual void mac_tx_drop(const QueueKey& key, const net::Packet& packet) = 0;
    /// An aggregated data frame addressed to this node was received: bit i
    /// of `ok_bits` marks subframe i as decoded, new (scoreboard-filtered)
    /// and to be delivered; reorder-held packets with seq below
    /// `release_below` must be released first (BAR-free window advance).
    /// Default no-op so legacy single-MSDU listeners need no change.
    virtual void mac_rx_aggregated(const phy::Frame& frame, std::uint64_t ok_bits,
                                   std::uint32_t release_below)
    {
        (void)frame;
        (void)ok_bits;
        (void)release_below;
    }
};

/// IEEE 802.11 DCF (basic access, no RTS/CTS) over one NodePhy.
///
/// Contention rule, matching the paper's description: every transmission
/// draws a fresh backoff uniformly from [0, cw-1]; the counter decrements
/// once per idle slot after a DIFS of idle medium, freezes while the medium
/// is busy, and resumes (same remaining count) after the next idle DIFS.
/// Retransmissions escalate cw binary-exponentially from the queue's CWmin
/// (the parameter EZ-Flow adapts) up to max(cw_max_escalation, CWmin).
///
/// The whole idle-medium wait is batched: instead of a DIFS timer plus a
/// timer per slot, the MAC registers its interframe space and remaining
/// slot count with the channel's shared ContentionCoordinator in one call
/// and is called back once, at the instant the per-slot countdown would
/// have reached zero; a busy medium consumes the elapsed decrements in
/// one batch. Same DCF dynamics (identical Rng draws and transmission
/// instants), O(transmissions) scheduler events — one insert per
/// contention cycle.
class DcfMac final : public phy::PhyListener, public BackoffClient {
public:
    DcfMac(phy::NodePhy& phy, sim::Scheduler& scheduler, ContentionCoordinator& coordinator,
           util::Rng rng, MacParams params);
    ~DcfMac() override;
    DcfMac(const DcfMac&) = delete;
    DcfMac& operator=(const DcfMac&) = delete;

    void set_callbacks(MacCallbacks* callbacks) { callbacks_ = callbacks; }

    /// Enqueue a packet toward `key.next_hop`. Returns false when the
    /// interface queue was full and the packet was dropped. The rvalue
    /// overload moves the packet into the queue (single-copy pipeline).
    bool enqueue(const QueueKey& key, const net::Packet& packet);
    bool enqueue(const QueueKey& key, net::Packet&& packet);

    /// Per-queue CWmin control (EZ-Flow's single knob). Creates the queue
    /// if it does not exist yet.
    void set_queue_cw_min(const QueueKey& key, int cw);
    int queue_cw_min(const QueueKey& key) const;

    /// A-MPDU batch size (1 = legacy single-MSDU pipeline). Clamped to
    /// [1, 64]; call before traffic starts — mid-run changes only take
    /// effect at the next batch fill.
    void set_ampdu_max_mpdus(int k);
    bool aggregation_enabled() const { return params_.ampdu_max_mpdus > 1; }

    // --- fault injection ---
    /// Graceful teardown (node death): cancel the coordinator
    /// registration and both response timers, abandon the contention
    /// context and any pending SIFS control responses, and flush every
    /// queue into the `dropped_node_down` bucket. Un-cancellable events
    /// already scheduled against this MAC (SIFS sends, NAV expiries,
    /// CTS follow-ups) become no-ops via their state guards. Idempotent.
    void quiesce();
    /// Undo quiesce after the PHY is powered and reattached: clear the
    /// duplicate filter (neighbours restart their sequence dialogue) and
    /// resume serving whatever has been enqueued since.
    void revive();
    bool is_down() const { return down_; }

    MacQueueSet& queues() { return queues_; }
    const MacQueueSet& queues() const { return queues_; }
    const MacParams& params() const { return params_; }

    // --- PhyListener ---
    void phy_busy_changed(bool busy) override;
    void phy_frame_decoded(const phy::Frame& frame) override;
    void phy_tx_done(const phy::Frame& frame) override;

    // --- BackoffClient ---
    void backoff_expired() override;

    // --- statistics ---
    std::uint64_t data_attempts() const { return data_attempts_; }
    std::uint64_t retransmissions() const { return retransmissions_; }
    std::uint64_t retry_drops() const { return retry_drops_; }
    std::uint64_t acks_sent() const { return acks_sent_; }
    std::uint64_t successes() const { return successes_; }
    /// Duplicate data frames suppressed by the receive filter. Each one
    /// marks a packet the sender may have retry-dropped (or will ACK
    /// later) after it already progressed — the exact slack the
    /// end-to-end drop audit must allow for cloned outcomes.
    std::uint64_t dup_rx_suppressed() const { return dup_rx_suppressed_; }

    /// Virtual carrier sense deadline (NAV). Exposed for tests.
    SimTime nav_until() const { return nav_until_; }

    /// Earliest instant at which this MAC is already committed to putting
    /// energy on the air: the armed SIFS/slot control trigger, the
    /// CTS -> data follow-up, or the coordinator backoff expiry —
    /// whichever comes first; -1 when nothing is committed. Commitments
    /// can only be replaced by later ones (a busy medium postpones, never
    /// advances), so the value is a sound lower bound on the next
    /// transmission — the per-node input to the sharded engine's
    /// conservative epoch horizon.
    SimTime earliest_committed_tx_at() const;

    /// Whether the MAC is currently committed to a head packet (an access
    /// or exchange is in progress). The packet stays queue backlog until
    /// the exchange settles, but its receiver may already have progressed
    /// it — the one-per-node in-flight slack the drop audit allows when a
    /// run is frozen mid-dialogue.
    bool serving() const { return current_queue_ != nullptr; }

    /// Dialogues cut short by a node-down quiesce while the MAC was
    /// committed to a head packet. The receiver may already have decoded
    /// that packet's data before the teardown flushed it into
    /// drops_node_down — each abort is therefore one more potential
    /// cloned outcome the drop audit must allow.
    std::uint64_t teardown_aborts() const { return teardown_aborts_; }

    /// MPDUs currently held in the sender's block-ack window: dequeued
    /// from their interface queue but not yet settled (acked, retry-
    /// dropped, or teardown-flushed). Counts as MAC-held backlog in the
    /// drop audit's conservation laws.
    std::uint64_t ampdu_pending() const { return ba_.window_size(); }
    /// Window MPDUs surrendered by a node-down quiesce (the aggregated
    /// analogue of a queue's dropped_node_down bucket: these packets were
    /// dequeued but never settled on the air).
    std::uint64_t ampdu_node_down_drops() const { return ampdu_node_down_drops_; }
    /// Compressed block-acks transmitted by this MAC.
    std::uint64_t block_acks_sent() const { return block_acks_sent_; }

private:
    enum class State {
        kIdle,
        kWaitMediumIdle,
        /// Registered with the ContentionCoordinator for the fused
        /// DIFS + backoff countdown (one registration covers both).
        kContending,
        kTxRts,
        kWaitCts,
        kTxData,
        kWaitAck,
    };

    /// Commit to the head packet of the next round-robin queue and draw a
    /// fresh backoff from its (possibly escalated) contention window.
    void start_new_contention();
    /// Enter the access procedure keeping the current backoff counter.
    void resume_access();
    /// Register the fused DIFS + backoff countdown with the coordinator.
    void start_difs();
    /// Suspend the access procedure: batch-consume the decrements (DIFS-
    /// end one included) that elapsed since registration.
    void freeze_contention();
    /// Physical or virtual (NAV) carrier indicates a busy medium.
    bool medium_busy() const;
    /// Extend the NAV to cover a sniffed data frame's ACK (or, for
    /// aggregated data, block-ack) exchange.
    void set_nav_for_ack(bool aggregated);
    /// Extend the NAV to an absolute deadline (RTS/CTS Duration fields).
    void set_nav_until(SimTime until);
    void on_nav_expired();
    /// Start the frame exchange for the committed packet: either the data
    /// frame directly (basic access) or the RTS when the handshake is on.
    void start_exchange();
    void transmit_rts();
    void transmit_data();
    /// Build and transmit the A-MPDU carrying every unsettled window
    /// entry (selective retransmit: settled MPDUs are already gone).
    void transmit_aggregated();
    void on_ack_timeout();
    void on_cts_timeout();
    void finish_current(bool success);
    /// Apply a block-ack verdict (or its timeout analogue) to the sender
    /// window: report acked/dropped MPDUs upward, then either re-contend
    /// for the remainder or finish the batch.
    void settle_block_ack(const BlockAckManager::Settled& settled, bool any_acked);
    /// CTS received: transmit the data frame SIFS later (timer callback).
    void on_cts_data_follow_up();
    int effective_cw() const;
    void maybe_start_work();
    /// Airtime of the committed packet's data frame.
    SimTime current_data_airtime() const;
    void schedule_control_if_needed();
    void send_pending_control();

    phy::NodePhy& phy_;
    sim::Scheduler& scheduler_;
    ContentionCoordinator& coordinator_;
    util::Rng rng_;
    MacParams params_;
    MacCallbacks* callbacks_ = nullptr;

    MacQueueSet queues_;
    State state_ = State::kIdle;
    bool down_ = false;  ///< quiesced by fault injection

    // Current contention context (valid when in_contention_).
    bool in_contention_ = false;
    MacQueue* current_queue_ = nullptr;
    int retries_ = 0;
    int backoff_remaining_ = 0;
    std::uint32_t current_seq_ = 0;
    /// Rate of the in-flight attempt (0 = PHY default), chosen once per
    /// attempt in start_exchange so RTS duration and data frame agree.
    std::int64_t current_rate_bps_ = 0;

    sim::Timer ack_timer_;
    sim::Timer cts_timer_;

    // SIFS-spaced control responses (ACK / CTS / block-ack), out-of-band
    // wrt contention.
    struct PendingControl {
        phy::FrameType type;
        net::NodeId to;
        std::uint32_t seq;
        SimTime duration_us;  ///< NAV to advertise (CTS)
        std::uint32_t ba_start = 0;   ///< kBlockAck: scoreboard window start
        std::uint64_t ba_bitmap = 0;  ///< kBlockAck: compressed bitmap
    };
    std::deque<PendingControl> pending_ctrl_;
    bool ack_tx_scheduled_ = false;  ///< SIFS timer armed or control frame on air
    /// One re-armed timer per MAC for every SIFS/slot control trigger
    /// (and one for the CTS -> data follow-up) instead of a fresh
    /// scheduler insert per dialogue. Re-arming replaces the pending
    /// expiry at the same call sites and instants a fresh insert would
    /// have used, so event placement — and every golden — is unchanged;
    /// quiesce simply cancels them (no generation counter needed: a
    /// cancelled timer cannot fire after a teardown or revive).
    sim::Timer ctrl_timer_;
    sim::Timer cts_data_timer_;
    SimTime next_ctrl_at_ = -1;  ///< armed control trigger (-1: none/on air)
    SimTime cts_data_at_ = -1;   ///< armed CTS -> data follow-up (-1: none)

    // A-MPDU batch state (aggregation_enabled() only; empty otherwise).
    BlockAckManager ba_;
    QueueKey batch_key_{};  ///< queue the active batch was filled from
    std::vector<net::Packet> batch_fill_;  ///< pop_batch scratch

    std::uint32_t next_seq_ = 1;
    std::map<net::NodeId, std::uint32_t> last_rx_seq_;  ///< duplicate filter
    SimTime nav_until_ = 0;  ///< virtual carrier sense (Duration field)

    std::uint64_t data_attempts_ = 0;
    std::uint64_t retransmissions_ = 0;
    std::uint64_t retry_drops_ = 0;
    std::uint64_t acks_sent_ = 0;
    std::uint64_t successes_ = 0;
    std::uint64_t dup_rx_suppressed_ = 0;
    std::uint64_t teardown_aborts_ = 0;
    std::uint64_t ampdu_node_down_drops_ = 0;
    std::uint64_t block_acks_sent_ = 0;
};

}  // namespace ezflow::mac

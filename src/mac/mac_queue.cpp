#include "mac/mac_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ezflow::mac {

MacQueue::MacQueue(QueueKey key, int capacity, int cw_min)
    : key_(key), capacity_(capacity), cw_min_(cw_min)
{
    if (capacity <= 0) throw std::invalid_argument("MacQueue: capacity must be > 0");
    if (cw_min <= 0) throw std::invalid_argument("MacQueue: cw_min must be > 0");
}

bool MacQueue::accept_one()
{
    if (static_cast<int>(packets_.size()) >= capacity_) {
        ++dropped_full_;
        return false;
    }
    ++enqueued_;
    return true;
}

bool MacQueue::push(const net::Packet& packet)
{
    if (!accept_one()) return false;
    packets_.push_back(packet);
    return true;
}

bool MacQueue::push(net::Packet&& packet)
{
    if (!accept_one()) return false;
    packets_.push_back(std::move(packet));
    return true;
}

const net::Packet& MacQueue::front() const
{
    if (packets_.empty()) throw std::logic_error("MacQueue::front: empty");
    return packets_.front();
}

net::Packet& MacQueue::mutable_front()
{
    if (packets_.empty()) throw std::logic_error("MacQueue::mutable_front: empty");
    return packets_.front();
}

void MacQueue::pop()
{
    if (packets_.empty()) throw std::logic_error("MacQueue::pop: empty");
    packets_.pop_front();
    ++dequeued_;
    if (!waiters_.empty()) notify_vacancy();
}

int MacQueue::pop_batch(int max_count, std::int64_t max_bytes, std::vector<net::Packet>& out)
{
    int taken = 0;
    std::int64_t bytes = 0;
    while (taken < max_count && !packets_.empty()) {
        const std::int64_t next_bytes = bytes + packets_.front().bytes;
        if (taken > 0 && max_bytes > 0 && next_bytes > max_bytes) break;
        bytes = next_bytes;
        out.push_back(std::move(packets_.front()));
        packets_.pop_front();
        ++dequeued_;
        ++taken;
    }
    if (taken > 0 && !waiters_.empty()) notify_vacancy();
    return taken;
}

std::uint64_t MacQueue::flush_node_down()
{
    const auto count = static_cast<std::uint64_t>(packets_.size());
    packets_.clear();
    dropped_node_down_ += count;
    // Waiters only exist while the queue is full, so a non-empty flush is
    // the vacancy they were parked for. They settle their closed-form
    // accounting exactly as a pop-notification would, then re-emit into
    // the down node and land on the source's retry-with-backoff path.
    if (count > 0 && !waiters_.empty()) notify_vacancy();
    return count;
}

void MacQueue::add_vacancy_waiter(VacancyWaiter* waiter)
{
    if (waiter == nullptr) throw std::invalid_argument("MacQueue::add_vacancy_waiter: null");
    if (std::find(waiters_.begin(), waiters_.end(), waiter) != waiters_.end())
        throw std::logic_error("MacQueue::add_vacancy_waiter: already registered");
    waiters_.push_back(waiter);
}

void MacQueue::remove_vacancy_waiter(VacancyWaiter* waiter)
{
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), waiter), waiters_.end());
}

void MacQueue::notify_vacancy()
{
    // One-shot: detach the current registrations first so a waiter that
    // re-gates from within its commit registers for the NEXT pop. Both
    // scratch buffers are members so steady-state pops on a gated queue
    // stay allocation-free (this is the hot path the gate exists for).
    notifying_.clear();
    notifying_.swap(waiters_);  // waiters_ inherits the retained capacity

    // Phase 1: every waiter settles its closed-form accounting and
    // reports when (and from which virtual event) it would resume.
    pending_.clear();
    for (std::size_t i = 0; i < notifying_.size(); ++i) {
        const VacancyWaiter::Resume resume = notifying_[i]->vacancy_prepare();
        if (resume.resume_at >= 0) pending_.push_back(PendingResume{notifying_[i], resume, i});
    }

    // Phase 2: commit in the order the per-packet reference chains would
    // have fired — earlier resume instant first; at the same instant the
    // chain whose previous event ran earlier was scheduled earlier
    // (scheduler FIFO); equal on both means the chains last fired at the
    // same instant, where registration order IS their relative order.
    std::sort(pending_.begin(), pending_.end(), [](const PendingResume& a, const PendingResume& b) {
        if (a.resume.resume_at != b.resume.resume_at)
            return a.resume.resume_at < b.resume.resume_at;
        if (a.resume.scheduled_from != b.resume.scheduled_from)
            return a.resume.scheduled_from < b.resume.scheduled_from;
        return a.order < b.order;
    });
    for (const PendingResume& p : pending_) p.waiter->vacancy_commit();
}

void MacQueue::set_cw_min(int cw)
{
    if (cw <= 0) throw std::invalid_argument("MacQueue::set_cw_min: cw must be > 0");
    cw_min_ = cw;
}

MacQueueSet::MacQueueSet(int capacity, int default_cw_min)
    : capacity_(capacity), default_cw_min_(default_cw_min)
{
}

MacQueue& MacQueueSet::ensure(const QueueKey& key)
{
    if (MacQueue* q = find(key)) return *q;
    queues_.push_back(std::make_unique<MacQueue>(key, capacity_, default_cw_min_));
    return *queues_.back();
}

MacQueue* MacQueueSet::find(const QueueKey& key)
{
    for (auto& q : queues_)
        if (q->key() == key) return q.get();
    return nullptr;
}

const MacQueue* MacQueueSet::find(const QueueKey& key) const
{
    for (const auto& q : queues_)
        if (q->key() == key) return q.get();
    return nullptr;
}

MacQueue* MacQueueSet::next_nonempty()
{
    if (queues_.empty()) return nullptr;
    const std::size_t n = queues_.size();
    for (std::size_t i = 0; i < n; ++i) {
        MacQueue* q = queues_[(rr_cursor_ + i) % n].get();
        if (!q->empty()) {
            rr_cursor_ = (rr_cursor_ + i + 1) % n;
            return q;
        }
    }
    return nullptr;
}

int MacQueueSet::total_packets() const
{
    int total = 0;
    for (const auto& q : queues_) total += q->size();
    return total;
}

std::uint64_t MacQueueSet::flush_all_node_down()
{
    std::uint64_t total = 0;
    for (auto& q : queues_) total += q->flush_node_down();
    return total;
}

}  // namespace ezflow::mac

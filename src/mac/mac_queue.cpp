#include "mac/mac_queue.h"

#include <stdexcept>

namespace ezflow::mac {

MacQueue::MacQueue(QueueKey key, int capacity, int cw_min)
    : key_(key), capacity_(capacity), cw_min_(cw_min)
{
    if (capacity <= 0) throw std::invalid_argument("MacQueue: capacity must be > 0");
    if (cw_min <= 0) throw std::invalid_argument("MacQueue: cw_min must be > 0");
}

bool MacQueue::push(const net::Packet& packet)
{
    if (static_cast<int>(packets_.size()) >= capacity_) {
        ++dropped_full_;
        return false;
    }
    packets_.push_back(packet);
    ++enqueued_;
    return true;
}

const net::Packet& MacQueue::front() const
{
    if (packets_.empty()) throw std::logic_error("MacQueue::front: empty");
    return packets_.front();
}

net::Packet& MacQueue::mutable_front()
{
    if (packets_.empty()) throw std::logic_error("MacQueue::mutable_front: empty");
    return packets_.front();
}

void MacQueue::pop()
{
    if (packets_.empty()) throw std::logic_error("MacQueue::pop: empty");
    packets_.pop_front();
    ++dequeued_;
}

void MacQueue::set_cw_min(int cw)
{
    if (cw <= 0) throw std::invalid_argument("MacQueue::set_cw_min: cw must be > 0");
    cw_min_ = cw;
}

MacQueueSet::MacQueueSet(int capacity, int default_cw_min)
    : capacity_(capacity), default_cw_min_(default_cw_min)
{
}

MacQueue& MacQueueSet::ensure(const QueueKey& key)
{
    if (MacQueue* q = find(key)) return *q;
    queues_.push_back(std::make_unique<MacQueue>(key, capacity_, default_cw_min_));
    return *queues_.back();
}

MacQueue* MacQueueSet::find(const QueueKey& key)
{
    for (auto& q : queues_)
        if (q->key() == key) return q.get();
    return nullptr;
}

const MacQueue* MacQueueSet::find(const QueueKey& key) const
{
    for (const auto& q : queues_)
        if (q->key() == key) return q.get();
    return nullptr;
}

MacQueue* MacQueueSet::next_nonempty()
{
    if (queues_.empty()) return nullptr;
    const std::size_t n = queues_.size();
    for (std::size_t i = 0; i < n; ++i) {
        MacQueue* q = queues_[(rr_cursor_ + i) % n].get();
        if (!q->empty()) {
            rr_cursor_ = (rr_cursor_ + i + 1) % n;
            return q;
        }
    }
    return nullptr;
}

int MacQueueSet::total_packets() const
{
    int total = 0;
    for (const auto& q : queues_) total += q->size();
    return total;
}

}  // namespace ezflow::mac

#include "mac/contention.h"

#include <algorithm>
#include <stdexcept>

namespace ezflow::mac {

ContentionCoordinator::ContentionCoordinator(sim::Scheduler& scheduler)
    : scheduler_(scheduler), timer_(scheduler, [this] { on_timer(); })
{
}

std::size_t ContentionCoordinator::find_index(const BackoffClient& client) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].client == &client) return i;
    return entries_.size();
}

bool ContentionCoordinator::is_registered(const BackoffClient& client) const
{
    return find_index(client) != entries_.size();
}

void ContentionCoordinator::register_backoff(BackoffClient& client, int remaining_slots,
                                             SimTime slot_us)
{
    if (remaining_slots < 0)
        throw std::invalid_argument("ContentionCoordinator::register_backoff: negative count");
    if (slot_us <= 0)
        throw std::invalid_argument("ContentionCoordinator::register_backoff: bad slot");
    if (is_registered(client))
        throw std::logic_error("ContentionCoordinator::register_backoff: already registered");

    const SimTime now = scheduler_.now();
    if (now != last_register_at_) {
        last_register_at_ = now;
        block_end_ = 0;
    }
    Entry entry;
    entry.client = &client;
    entry.start = now;
    entry.slot = slot_us;
    entry.remaining = remaining_slots;
    entry.expiry = now + (static_cast<SimTime>(remaining_slots) + 1) * slot_us;
    // A chain joining now goes in front of every chain that re-armed at an
    // earlier instant; same-instant joiners keep their arrival order.
    entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(block_end_), entry);
    ++block_end_;
    rearm();
}

bool ContentionCoordinator::precedes_transmitter(std::size_t index) const
{
    if (firing_ != nullptr) {
        const std::size_t tx_index = find_index(*firing_);
        return index < tx_index;
    }
    if (external_depth_ > 0) return external_late_;
    // Unknown transmitter (e.g. a raw PHY injection in tests): treat its
    // trigger as armed before the registrant's virtual slot event.
    return false;
}

int ContentionCoordinator::freeze(BackoffClient& client)
{
    const std::size_t index = find_index(client);
    if (index == entries_.size())
        throw std::logic_error("ContentionCoordinator::freeze: not registered");
    const Entry entry = entries_[index];
    const SimTime elapsed = scheduler_.now() - entry.start;
    int consumed = 0;
    if (elapsed > 0) {
        // The per-slot reference decrements at boundaries start + k*slot,
        // k >= 1. Boundaries strictly before now all fired; the boundary
        // exactly at now fired only when this chain's event preceded the
        // interrupting transmission in the scheduler's FIFO tie order.
        const SimTime whole = elapsed / entry.slot;
        if (elapsed % entry.slot != 0) {
            consumed = static_cast<int>(whole);
        } else {
            consumed = static_cast<int>(whole) - 1 + (precedes_transmitter(index) ? 1 : 0);
        }
        consumed = std::min(std::max(consumed, 0), entry.remaining);
    }
    slots_batched_ += static_cast<std::uint64_t>(consumed);
    erase_at(index);
    return consumed;
}

void ContentionCoordinator::unregister(BackoffClient& client)
{
    const std::size_t index = find_index(client);
    if (index != entries_.size()) erase_at(index);
}

void ContentionCoordinator::erase_at(std::size_t index)
{
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
    // Keep the same-instant insert block aligned when a freeze removes an
    // entry below it (a hidden node may still register at this instant).
    if (index < block_end_ && block_end_ > 0) --block_end_;
    if (!in_fire_) rearm();
}

void ContentionCoordinator::rearm()
{
    if (entries_.empty()) {
        if (armed_at_ >= 0) {
            timer_.cancel();
            armed_at_ = -1;
            armed_final_ = false;
        }
        return;
    }
    const Entry* earliest = &entries_.front();
    for (const Entry& entry : entries_)
        if (entry.expiry < earliest->expiry) earliest = &entry;
    const SimTime stage = earliest->expiry - earliest->slot;
    const SimTime at = scheduler_.now() < stage ? stage : earliest->expiry;
    const bool final = at == earliest->expiry;
    if (at != armed_at_ || final != armed_final_) {
        timer_.arm_at(at);
        armed_at_ = at;
        armed_final_ = final;
    }
}

void ContentionCoordinator::on_timer()
{
    const SimTime now = scheduler_.now();
    armed_at_ = -1;
    if (!armed_final_) {
        // Stage wake-up one slot ahead of the earliest expiry: arm the
        // expiry event now so it takes the FIFO position the per-slot
        // reference's last countdown event would have had.
        rearm();
        return;
    }
    armed_final_ = false;
    in_fire_ = true;
    // Fire every counter expiring now in chain order. An expiry's
    // transmission cascades busy carrier sense synchronously, so due
    // entries that heard it freeze (and unregister) before their turn —
    // only stations hidden from every earlier transmitter also fire,
    // which is exactly how per-slot DCF collides.
    for (;;) {
        std::size_t due = entries_.size();
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].expiry == now) {
                due = i;
                break;
            }
        }
        if (due == entries_.size()) break;
        BackoffClient* client = entries_[due].client;
        firing_ = client;
        ++expiries_;
        client->backoff_expired();
        firing_ = nullptr;
        // The client transmitted (it never freezes on its own carrier);
        // retire its entry. The cascade may have erased others, so look
        // the index up again.
        const std::size_t index = find_index(*client);
        if (index == entries_.size())
            throw std::logic_error("ContentionCoordinator: fired entry vanished");
        erase_at(index);
    }
    in_fire_ = false;
    rearm();
}

void ContentionCoordinator::begin_external_tx(bool late_trigger)
{
    // The busy cascade of a transmission never starts another one
    // synchronously, so brackets cannot nest — and external_late_ is a
    // single flag, so silently allowing nesting would corrupt the outer
    // bracket's tie polarity. Fail loudly instead.
    if (external_depth_ != 0)
        throw std::logic_error("ContentionCoordinator::begin_external_tx: nested transmission");
    ++external_depth_;
    external_late_ = late_trigger;
}

void ContentionCoordinator::end_external_tx()
{
    if (external_depth_ <= 0)
        throw std::logic_error("ContentionCoordinator::end_external_tx: not in a transmission");
    --external_depth_;
}

}  // namespace ezflow::mac

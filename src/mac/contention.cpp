#include "mac/contention.h"

#include <algorithm>
#include <stdexcept>

namespace ezflow::mac {

ContentionCoordinator::ContentionCoordinator(sim::Scheduler& scheduler)
    : scheduler_(scheduler), timer_(scheduler, [this] { on_timer(); })
{
}

std::size_t ContentionCoordinator::find_index(const BackoffClient& client) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].client == &client) return i;
    return entries_.size();
}

bool ContentionCoordinator::is_registered(const BackoffClient& client) const
{
    return find_index(client) != entries_.size();
}

SimTime ContentionCoordinator::registered_expiry(const BackoffClient& client) const
{
    const std::size_t index = find_index(client);
    return index == entries_.size() ? -1 : entries_[index].expiry;
}

void ContentionCoordinator::insert_entry(Entry entry)
{
    // Fire order of two entries' pending virtual events, were they due at
    // the same instant (see the ordering discussion in the header): later
    // DIFS end first; among equal DIFS ends, earlier-armed first, then
    // registration order. The key is immutable, so sorted insertion keeps
    // the whole vector ordered with no re-sorting.
    const auto fires_before = [](const Entry& a, const Entry& b) {
        if (a.reg_at != b.reg_at) return a.reg_at > b.reg_at;
        if (a.armed != b.armed) return a.armed < b.armed;
        return a.seq < b.seq;
    };
    const auto position = std::lower_bound(entries_.begin(), entries_.end(), entry, fires_before);
    entries_.insert(position, entry);
    rearm();
}

void ContentionCoordinator::register_access(BackoffClient& client, SimTime difs_us,
                                            int backoff_slots, SimTime slot_us)
{
    if (backoff_slots < 0)
        throw std::invalid_argument("ContentionCoordinator::register_access: negative count");
    if (slot_us <= 0)
        throw std::invalid_argument("ContentionCoordinator::register_access: bad slot");
    if (difs_us <= slot_us)
        throw std::invalid_argument(
            "ContentionCoordinator::register_access: difs must exceed one slot");
    if (is_registered(client))
        throw std::logic_error("ContentionCoordinator::register_access: already registered");

    const SimTime now = scheduler_.now();
    Entry entry;
    entry.client = &client;
    entry.reg_at = now + difs_us;
    entry.armed = now;
    entry.seq = next_seq_++;
    entry.slot = slot_us;
    if (backoff_slots == 0) {
        // Immediate access: the reference transmits inside its DIFS-end
        // event; no decrement is ever owed.
        entry.remaining = 0;
        entry.difs_pending = false;
        entry.expiry = entry.reg_at;
    } else {
        // One decrement at DIFS end, the rest at subsequent boundaries.
        entry.remaining = backoff_slots - 1;
        entry.difs_pending = true;
        entry.expiry = entry.reg_at + static_cast<SimTime>(backoff_slots) * slot_us;
    }
    insert_entry(entry);
}

void ContentionCoordinator::register_backoff(BackoffClient& client, int remaining_slots,
                                             SimTime slot_us)
{
    if (remaining_slots < 0)
        throw std::invalid_argument("ContentionCoordinator::register_backoff: negative count");
    if (slot_us <= 0)
        throw std::invalid_argument("ContentionCoordinator::register_backoff: bad slot");
    if (is_registered(client))
        throw std::logic_error("ContentionCoordinator::register_backoff: already registered");

    const SimTime now = scheduler_.now();
    Entry entry;
    entry.client = &client;
    entry.reg_at = now;  // the caller's DIFS ended (and decremented) here
    entry.armed = now;
    entry.seq = next_seq_++;
    entry.slot = slot_us;
    entry.remaining = remaining_slots;
    entry.difs_pending = false;
    entry.expiry = now + (static_cast<SimTime>(remaining_slots) + 1) * slot_us;
    insert_entry(entry);
}

bool ContentionCoordinator::precedes_transmitter(std::size_t index) const
{
    if (firing_ != nullptr) {
        const std::size_t tx_index = find_index(*firing_);
        return index < tx_index;
    }
    if (external_depth_ > 0) return external_late_;
    // Unknown transmitter (e.g. a raw PHY injection in tests): treat its
    // trigger as armed before the registrant's virtual slot event.
    return false;
}

int ContentionCoordinator::freeze(BackoffClient& client)
{
    const std::size_t index = find_index(client);
    if (index == entries_.size())
        throw std::logic_error("ContentionCoordinator::freeze: not registered");
    const Entry entry = entries_[index];
    const SimTime now = scheduler_.now();
    int consumed = 0;
    if (now == entry.reg_at) {
        // Exactly at the (virtual) DIFS end: the first decrement happened
        // only when the DIFS-end event preceded the interrupting
        // transmission in the scheduler's FIFO tie order.
        if (entry.difs_pending && precedes_transmitter(index)) consumed = 1;
    } else if (now > entry.reg_at) {
        // The DIFS-end decrement (when owed) certainly fired; boundaries
        // reg_at + k*slot, k >= 1, strictly before now all fired, and the
        // boundary exactly at now fired only when this chain's event
        // preceded the interrupting transmission.
        const SimTime elapsed = now - entry.reg_at;
        const SimTime whole = elapsed / entry.slot;
        int boundaries = 0;
        if (elapsed % entry.slot != 0) {
            boundaries = static_cast<int>(whole);
        } else {
            boundaries = static_cast<int>(whole) - 1 + (precedes_transmitter(index) ? 1 : 0);
        }
        const int owed = entry.remaining + (entry.difs_pending ? 1 : 0);
        consumed = (entry.difs_pending ? 1 : 0) + std::max(boundaries, 0);
        consumed = std::min(consumed, owed);
    }
    slots_batched_ += static_cast<std::uint64_t>(consumed);
    erase_at(index);
    return consumed;
}

void ContentionCoordinator::unregister(BackoffClient& client)
{
    const std::size_t index = find_index(client);
    if (index != entries_.size()) erase_at(index);
}

void ContentionCoordinator::erase_at(std::size_t index)
{
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
    if (!in_fire_) rearm();
}

void ContentionCoordinator::rearm()
{
    if (entries_.empty()) {
        if (armed_at_ >= 0) {
            timer_.cancel();
            armed_at_ = -1;
            armed_final_ = false;
        }
        return;
    }
    const Entry* earliest = &entries_.front();
    for (const Entry& entry : entries_)
        if (entry.expiry < earliest->expiry) earliest = &entry;
    const SimTime stage = earliest->expiry - earliest->slot;
    const SimTime at = scheduler_.now() < stage ? stage : earliest->expiry;
    const bool final = at == earliest->expiry;
    if (at != armed_at_ || final != armed_final_) {
        timer_.arm_at(at);
        armed_at_ = at;
        armed_final_ = final;
    }
}

void ContentionCoordinator::on_timer()
{
    const SimTime now = scheduler_.now();
    armed_at_ = -1;
    if (!armed_final_) {
        // Stage wake-up one slot ahead of the earliest expiry: arm the
        // expiry event now so it takes the FIFO position the per-slot
        // reference's last countdown event would have had.
        rearm();
        return;
    }
    armed_final_ = false;
    in_fire_ = true;
    // Fire every counter expiring now in chain order. An expiry's
    // transmission cascades busy carrier sense synchronously, so due
    // entries that heard it freeze (and unregister) before their turn —
    // only stations hidden from every earlier transmitter also fire,
    // which is exactly how per-slot DCF collides.
    for (;;) {
        std::size_t due = entries_.size();
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].expiry == now) {
                due = i;
                break;
            }
        }
        if (due == entries_.size()) break;
        BackoffClient* client = entries_[due].client;
        firing_ = client;
        ++expiries_;
        client->backoff_expired();
        firing_ = nullptr;
        // The client transmitted (it never freezes on its own carrier);
        // retire its entry. The cascade may have erased others, so look
        // the index up again.
        const std::size_t index = find_index(*client);
        if (index == entries_.size())
            throw std::logic_error("ContentionCoordinator: fired entry vanished");
        erase_at(index);
    }
    in_fire_ = false;
    rearm();
}

void ContentionCoordinator::begin_external_tx(bool late_trigger)
{
    // The busy cascade of a transmission never starts another one
    // synchronously, so brackets cannot nest — and external_late_ is a
    // single flag, so silently allowing nesting would corrupt the outer
    // bracket's tie polarity. Fail loudly instead.
    if (external_depth_ != 0)
        throw std::logic_error("ContentionCoordinator::begin_external_tx: nested transmission");
    ++external_depth_;
    external_late_ = late_trigger;
}

void ContentionCoordinator::end_external_tx()
{
    if (external_depth_ <= 0)
        throw std::logic_error("ContentionCoordinator::end_external_tx: not in a transmission");
    --external_depth_;
}

}  // namespace ezflow::mac

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/packet.h"
#include "phy/frame.h"

namespace ezflow::mac {

/// Block-ack state of one DcfMac: the sender-side A-MPDU window (the
/// batch of MPDUs in flight toward the current next hop, each retried
/// selectively until acknowledged or past the retry limit) and the
/// receiver-side per-originator scoreboards that answer aggregated data
/// with a compressed block-ack and filter duplicates.
///
/// Window advance is BAR-free: every aggregated data frame advertises the
/// sender's current window start (`Frame::ba_start_seq`), and the receiver
/// releases its scoreboard — and the node its reorder buffer — below it.
/// An MPDU the sender abandoned at the retry limit therefore never stalls
/// in-order delivery: the next data frame's advertised start flushes past
/// the hole.
class BlockAckManager {
public:
    // --- sender side ---
    struct SenderEntry {
        net::Packet packet{};
        std::uint32_t seq = 0;
        int retry = 0;    ///< failed attempts so far
        bool sent = false;  ///< first transmission stamped (mac_first_tx fired)
    };

    /// MPDUs settled by one block-ack (or timeout): acknowledged packets
    /// and retry-limit drops, each reported exactly once.
    struct Settled {
        std::vector<SenderEntry> acked;
        std::vector<SenderEntry> dropped;
    };

    bool batch_active() const { return !window_.empty(); }
    std::size_t window_size() const { return window_.size(); }
    /// Oldest unsettled sequence number (the advertised window start).
    /// Entries are kept in ascending-seq order, so this is the front.
    std::uint32_t window_start() const;
    std::vector<SenderEntry>& window() { return window_; }
    const std::vector<SenderEntry>& window() const { return window_; }

    /// Admit one freshly dequeued MSDU into the sender window.
    void add_mpdu(net::Packet&& packet, std::uint32_t seq);

    /// Apply a received compressed block-ack: sequence `seq` is
    /// acknowledged when `seq < start` (slid past) or bit `seq - start`
    /// of `bitmap` is set. Unacknowledged entries gain a retry; those
    /// past `retry_limit` are dropped.
    Settled on_block_ack(std::uint32_t start, std::uint64_t bitmap, int retry_limit);

    /// No block-ack arrived: every window entry gains a retry; those past
    /// `retry_limit` are dropped.
    Settled on_timeout(int retry_limit);

    /// Teardown: surrender every unsettled entry (node-down flush).
    std::vector<SenderEntry> flush();

    // --- receiver side ---
    struct RxVerdict {
        std::uint64_t ok_bits = 0;  ///< subframe i decoded AND new (deliver it)
        /// Scoreboard window start after applying the frame's advertised
        /// `ba_start_seq`: the node releases reorder-held packets below it.
        std::uint32_t release_below = 0;
        std::uint64_t duplicates = 0;  ///< clean subframes suppressed as dups
    };

    /// Score an aggregated data frame against the originator's scoreboard.
    /// `corrupt_bits` is the PHY's per-MPDU verdict (bit i = subframe i
    /// lost); clean subframes are deduplicated and recorded.
    RxVerdict receive(const phy::Frame& frame, std::uint64_t corrupt_bits);

    /// Compressed block-ack to answer `tx` with: the scoreboard window
    /// start plus a 64-bit map of sequences received at or above it.
    struct BaResponse {
        std::uint32_t start = 0;
        std::uint64_t bitmap = 0;
    };
    BaResponse response_for(net::NodeId tx) const;

    /// Forget every originator scoreboard (revive after a power cycle:
    /// neighbours' sequence spaces moved on while this node was dead).
    void clear_rx_state() { scoreboards_.clear(); }

private:
    struct Scoreboard {
        std::uint32_t window_start = 0;
        std::set<std::uint32_t> received;  ///< sequences at/above window_start
    };

    std::vector<SenderEntry> window_;  ///< ascending seq
    std::map<net::NodeId, Scoreboard> scoreboards_;
};

}  // namespace ezflow::mac

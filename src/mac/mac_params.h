#pragma once

#include <cstdint>

#include "util/units.h"

namespace ezflow::mac {

using util::SimTime;

/// IEEE 802.11b DCF timing and policy parameters (DSSS PHY, long preamble,
/// 1 Mb/s, RTS/CTS disabled — the configuration used throughout the paper).
struct MacParams {
    SimTime slot_us = 20;
    SimTime sifs_us = 10;
    SimTime difs_us = 50;  ///< SIFS + 2 * slot
    /// Extended IFS, used instead of DIFS after a busy period the station
    /// could not decode (collision, or energy above carrier-sense but
    /// below decode threshold): SIFS + ACK airtime + DIFS. This is what
    /// protects a hidden exchange's ACK from stations that only saw noise.
    SimTime eifs_us = 10 + (192 + 112) + 50;

    /// Default minimum contention window (number of backoff slots drawn
    /// from [0, cw-1]). 802.11b default is 32; EZ-Flow overrides this
    /// per successor queue within [2^4, 2^15].
    int cw_min = 32;
    /// Binary-exponential escalation cap for retries. When EZ-Flow raises
    /// a queue's CWmin above this, escalation starts saturated.
    int cw_max_escalation = 1024;
    /// Maximum number of retransmissions of a data frame before it is
    /// dropped (802.11 short retry limit).
    int retry_limit = 7;

    /// MAC interface queue capacity in packets. The paper stresses that
    /// off-the-shelf hardware has "a standard MAC buffer of only 50
    /// packets"; the instability of Fig. 1 manifests as this buffer
    /// saturating at relays.
    int queue_capacity = 50;

    /// Extra slack added to the ACK timeout beyond SIFS + ACK airtime.
    SimTime ack_timeout_slack_us = 20;

    /// RTS/CTS handshake. The paper disables it (its testbed and ns-2
    /// configurations both run basic access); the option exists to test
    /// that design claim (§5.1) under the simulator's hidden-terminal
    /// regimes. When enabled, data payloads of at least
    /// `rts_threshold_bytes` are preceded by an RTS/CTS exchange whose
    /// Duration fields set third-party NAVs over the whole exchange.
    bool rts_cts_enabled = false;
    int rts_threshold_bytes = 0;

    /// A-MPDU aggregation: maximum MPDUs dequeued into one TXOP batch.
    /// 1 (the default) keeps the legacy one-MSDU-per-access pipeline —
    /// the golden-pinned path — bit-exactly; values above 1 enable the
    /// batch/block-ack machinery (capped at 64, the compressed block-ack
    /// bitmap width). Aggregated access is always basic (no RTS/CTS).
    int ampdu_max_mpdus = 1;
    /// Byte ceiling on one A-MPDU batch (payload bytes of the batched
    /// MSDUs); 0 means unlimited. The batch always admits at least one
    /// MPDU so an oversized head-of-line packet cannot wedge the queue.
    std::int64_t ampdu_max_bytes = 0;
};

}  // namespace ezflow::mac

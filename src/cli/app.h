#pragma once

#include <string>

namespace ezflow::cli {

/// Entry point of the unified `ezflow` binary:
///   ezflow list [--category=<c>]
///   ezflow run <figure...> [--scale= --seed= --seeds= --threads= --out=
///                           --csv= --smoke --all --json-only --quiet]
///   ezflow sweep <figure...> --grid=axis=v1:v2,axis=v1:v2 [run flags]
///   ezflow diff <golden> <candidate> [--rel-tol= --abs-tol= --bit-exact]
///   ezflow help [command]
/// Returns a process exit code (0 ok, 1 run/diff failure, 2 usage error).
int run_app(int argc, char** argv);

/// Compatibility shim for the former standalone bench/example mains:
/// `run_figure_main("fig06", argc, argv)` behaves like
/// `ezflow run fig06 <argv flags...>`.
int run_figure_main(const std::string& name, int argc, char** argv);

}  // namespace ezflow::cli

#include "cli/registry.h"

#include <stdexcept>

namespace ezflow::cli {

std::vector<std::uint64_t> FigureContext::seed_grid() const
{
    std::vector<std::uint64_t> grid;
    grid.reserve(static_cast<std::size_t>(seeds));
    for (int i = 0; i < seeds; ++i) grid.push_back(seed + static_cast<std::uint64_t>(i));
    return grid;
}

int FigureContext::extra_int(const std::string& name, int fallback) const
{
    extra_consumed.insert(name);
    const auto it = extra.find(name);
    if (it == extra.end()) return fallback;
    return std::stoi(it->second);  // throws on malformed input, like core flags
}

double FigureContext::extra_double(const std::string& name, double fallback) const
{
    extra_consumed.insert(name);
    const auto it = extra.find(name);
    if (it == extra.end()) return fallback;
    return std::stod(it->second);
}

bool FigureContext::extra_bool(const std::string& name, bool fallback) const
{
    extra_consumed.insert(name);
    const auto it = extra.find(name);
    if (it == extra.end()) return fallback;
    return it->second != "false" && it->second != "0";
}

FigureRegistry& FigureRegistry::instance()
{
    static FigureRegistry registry;
    return registry;
}

void FigureRegistry::add(FigureSpec spec)
{
    if (spec.name.empty()) throw std::invalid_argument("FigureRegistry: empty name");
    if (find(spec.name) != nullptr || (!spec.aka.empty() && find(spec.aka) != nullptr))
        throw std::invalid_argument("FigureRegistry: duplicate figure '" + spec.name + "'");
    specs_.emplace(spec.name, std::move(spec));
}

const FigureSpec* FigureRegistry::find(const std::string& name) const
{
    const auto it = specs_.find(name);
    if (it != specs_.end()) return &it->second;
    for (const auto& [key, spec] : specs_)
        if (spec.aka == name) return &spec;
    return nullptr;
}

std::vector<const FigureSpec*> FigureRegistry::list() const
{
    std::vector<const FigureSpec*> specs;
    specs.reserve(specs_.size());
    for (const auto& [key, spec] : specs_) specs.push_back(&spec);
    return specs;  // std::map iteration is already name-sorted
}

}  // namespace ezflow::cli

// The failover figure family: node-death and revival mid-run on the 7x7
// convergecast grid, driven by the deterministic fault injector. Measures
// how deep goodput dips during the outage, how fast the network
// re-converges after revival, and how many packets the fault strands —
// EZ-Flow against plain 802.11, exercising graceful teardown and the
// incremental route repair end to end.

#include <algorithm>
#include <vector>

#include "analysis/drop_audit.h"
#include "cli/figures.h"
#include "cli/figures_common.h"
#include "net/topo_gen.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

/// The shared timeline: fault at 35% of the active period, revival at
/// 65%, so every run has comparable pre-fault / outage / recovery spans.
struct FailoverTimeline {
    double start_s;
    double end_s;
    double down_s;  ///< fault instant
    double up_s;    ///< revival instant

    FailoverTimeline(const net::GridSpec& grid)
        : start_s(grid.start_s),
          end_s(grid.start_s + grid.duration_s),
          down_s(grid.start_s + 0.35 * grid.duration_s),
          up_s(grid.start_s + 0.65 * grid.duration_s)
    {
    }

    std::vector<SweepWindow> windows(int flows) const
    {
        std::vector<int> ids;
        for (int f = 1; f <= flows; ++f) ids.push_back(f);
        // Pre-fault net of a warmup; outage and recovery exactly as the
        // fault plan carves them.
        return {
            SweepWindow{"pre-fault", start_s + 0.4 * (down_s - start_s), down_s, ids},
            SweepWindow{"outage", down_s, up_s, ids},
            SweepWindow{"recovery", up_s, end_s, ids},
        };
    }
};

/// Re-convergence time: the first instant after revival at which a
/// sliding window's aggregate goodput regains 70% of the pre-fault rate,
/// scanned on a fine grid. Capped at the end of the run when the network
/// never recovers.
double reconvergence_time_s(Experiment& experiment, const std::vector<int>& flow_ids,
                            const FailoverTimeline& timeline, double pre_fault_kbps)
{
    const double horizon = timeline.end_s - timeline.up_s;
    if (horizon <= 0.0 || pre_fault_kbps <= 0.0) return 0.0;
    const double step = horizon / 40.0;
    for (int k = 0; k < 40; ++k) {
        const double from = timeline.up_s + k * step;
        double aggregate = 0.0;
        for (int flow : flow_ids)
            aggregate += experiment.summarize(flow, from, from + step).mean_kbps;
        if (aggregate >= 0.7 * pre_fault_kbps) return k * step;
    }
    return horizon;
}

/// Custom failover metrics, aggregated across the kept per-seed
/// experiments: goodput dip depth, re-convergence time, stranded
/// packets, and the injector's repair counters.
void add_failover_metrics(RunResult& cell, const SweepResult& sweep,
                          const std::vector<SweepWindow>& windows,
                          const FailoverTimeline& timeline)
{
    util::RunningStats dip_ratio, recovery_ratio, reconv_s, stranded, backoffs;
    util::RunningStats rerouted, suspended, restored;
    for (std::size_t s = 0; s < sweep.per_seed.size(); ++s) {
        const SeedResult& seed = sweep.per_seed[s];
        const double pre = seed.windows[0].aggregate_kbps;
        dip_ratio.add(pre > 0.0 ? seed.windows[1].aggregate_kbps / pre : 1.0);
        recovery_ratio.add(pre > 0.0 ? seed.windows[2].aggregate_kbps / pre : 1.0);

        Experiment& experiment = *sweep.experiments[s];
        reconv_s.add(reconvergence_time_s(experiment, windows[0].flow_ids, timeline, pre));
        const DropLedger ledger = collect_drop_ledger(experiment);
        stranded.add(static_cast<double>(ledger.drops_node_down + ledger.drops_unroutable));
        double retries = 0.0;
        for (const auto& source : experiment.sources())
            retries += static_cast<double>(source->stats().backoff_retries);
        backoffs.add(retries);
        const sim::FaultInjector* injector = experiment.fault_injector();
        rerouted.add(static_cast<double>(injector->stats().flows_rerouted));
        suspended.add(static_cast<double>(injector->stats().flows_suspended));
        restored.add(static_cast<double>(injector->stats().flows_restored));
    }
    WindowResult& outage = cell.windows[1];
    outage.set("goodput_dip_ratio", metric_from_stats(dip_ratio));
    outage.set("stranded_packets", metric_from_stats(stranded));
    outage.set("source_backoff_retries", metric_from_stats(backoffs));
    outage.set("flows_rerouted", metric_from_stats(rerouted));
    outage.set("flows_suspended", metric_from_stats(suspended));
    WindowResult& recovery = cell.windows[2];
    recovery.set("reconv_time_s", metric_from_stats(reconv_s));
    recovery.set("recovery_ratio", metric_from_stats(recovery_ratio));
    recovery.set("flows_restored", metric_from_stats(restored));
}

FigureResult run_failover(const FigureContext& ctx, net::NodeId victim,
                          const std::string& victim_label)
{
    net::GridSpec grid;
    grid.cols = ctx.extra_int("cols", 7);
    grid.rows = ctx.extra_int("rows", 7);
    grid.sources = ctx.extra_int("sources", 4);
    grid.duration_s = ctx.extra_double("duration", 120.0 * ctx.scale);
    const FailoverTimeline timeline(grid);

    ScenarioSpec spec = ScenarioSpec::grid_gateway(grid);
    spec.faults.node_down(timeline.down_s, victim).node_up(timeline.up_s, victim);

    const std::vector<SweepWindow> windows = timeline.windows(grid.sources);
    FigureResult result = make_result(ctx);
    // Not sweep_modes: failover windows are fractions of the active
    // period, so the goodput meter must resolve well below the default
    // 10 s window or a smoke-scaled outage holds no samples at all.
    if (ctx.shards > 0) spec.shards = ctx.shards;
    std::vector<ExperimentFactory> cells;
    for (Mode mode : {Mode::kBaseline80211, Mode::kEzFlow}) {
        ExperimentOptions options;
        options.mode = mode;
        options.streaming = ctx.streaming;
        options.throughput_window =
            std::max<util::SimTime>(util::from_seconds(grid.duration_s / 60.0), 1);
        cells.emplace_back(spec, options);
    }
    SweepConfig config;
    config.windows = windows;
    config.seeds = ctx.seed_grid();
    config.keep_experiments = true;
    const auto sweeps = SweepRunner(ctx.threads).run_grid(cells, config);
    for (std::size_t m = 0; m < sweeps.size(); ++m) {
        const SweepResult& sweep = sweeps[m];
        RunResult cell = run_result_from_sweep(sweep, windows);
        cell.label += " / " + victim_label;
        add_failover_metrics(cell, sweep, windows, timeline);
        result.cells.push_back(std::move(cell));
        if (!sweep.experiments.empty()) {
            // First-seed per-flow goodput timeline: the dip-and-recovery
            // curve the figure's windowed numbers summarize.
            Experiment& first = *sweep.experiments.front();
            std::vector<std::pair<std::string, const util::TimeSeries*>> series;
            for (int f = 1; f <= grid.sources; ++f)
                series.emplace_back("F" + std::to_string(f), &first.throughput(f).series());
            maybe_dump_series(ctx,
                              ctx.spec->name + std::string(m == 0 ? "_80211" : "_ezflow"),
                              series);
        }
    }
    return result;
}

FigureResult run_failover_gateway(const FigureContext& ctx)
{
    // Killing the gateway partitions every flow from its destination: all
    // flows suspend, goodput collapses to zero, sources pause on backoff,
    // and revival must restore every original path exactly.
    return run_failover(ctx, 0, "gateway down");
}

FigureResult run_failover_relay(const FigureContext& ctx)
{
    // Node 1 is the gateway's row neighbour — under the planner's
    // smallest-id downhill routing nearly every convergecast path funnels
    // through it, so its death forces incremental repair onto same-length
    // detours through the second row while traffic keeps flowing.
    return run_failover(ctx, 1, "relay down");
}

}  // namespace

void register_failover_figures()
{
    FigureRegistry& registry = FigureRegistry::instance();
    registry.add(FigureSpec{
        "failover_gateway", "", "figure",
        "gateway death and revival mid-run on the convergecast grid",
        "fault injection / churn robustness (beyond the paper's static runs)",
        "The outage suspends every flow (goodput_dip_ratio -> 0, sources pause on backoff); "
        "revival restores all original paths and goodput re-converges. EZ-flow recovers its "
        "pre-fault balance without message passing. Extra flags: --cols, --rows, --sources, "
        "--duration.",
        1.0, 2, 0.1, 2, run_failover_gateway});
    registry.add(FigureSpec{
        "failover_relay", "", "figure",
        "arterial relay death on the convergecast grid, incremental reroute",
        "fault injection / churn robustness (beyond the paper's static runs)",
        "The incremental repair steers flows onto same-length detours (flows_rerouted > 0, "
        "flows_suspended = 0) so the dip is shallow; revival restores the original paths. "
        "Extra flags: --cols, --rows, --sources, --duration.",
        1.0, 2, 0.1, 2, run_failover_relay});
}

}  // namespace ezflow::cli

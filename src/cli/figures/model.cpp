// Model figures (Fig. 12 / Theorem 1, Table 4): the Section 6 slotted
// random walk, driven without any packet-level simulation.

#include <algorithm>
#include <map>

#include "cli/figures.h"
#include "cli/figures_common.h"
#include "model/lyapunov.h"
#include "model/region.h"
#include "model/table4.h"
#include "model/walk.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

FigureResult run_fig12(const FigureContext& ctx)
{
    FigureResult result = make_result(ctx);

    // (i) trajectories of the total backlog h(b) with fixed equal windows
    // (divergent) vs EZ-Flow dynamics (bounded).
    const std::uint64_t slots =
        static_cast<std::uint64_t>(300000 * std::max(ctx.scale, 0.05));
    for (const bool ezflow : {false, true}) {
        model::RandomWalkModel::Config config;
        config.hops = 4;
        config.ezflow_enabled = ezflow;
        if (!ezflow) config.initial_cw = {32, 32, 32, 32};
        model::RandomWalkModel walk(config, util::Rng(ctx.seed));
        RunResult& cell = result.add_cell(ezflow ? "EZ-flow (Eq. 2)" : "fixed cw = 32");
        WindowResult& window = cell.add_window("trajectory");
        const char* quarter_names[] = {"h_q1", "h_q2", "h_q3", "h_end"};
        for (int quarter = 0; quarter < 4; ++quarter) {
            walk.run(slots / 4);
            window.set(quarter_names[quarter],
                       metric_point(static_cast<double>(walk.total_backlog())));
        }
        window.set("delivered", metric_point(static_cast<double>(walk.delivered())));
    }

    // (ii) the Foster-Lyapunov drift per region with the paper's
    // look-ahead horizons, which must be negative outside the finite set S.
    model::RandomWalkModel::Config config;
    config.hops = 4;
    config.ezflow_enabled = true;
    model::LyapunovEstimator estimator(config, {1 << 9, 1 << 4, 1 << 4, 1 << 4},
                                       util::Rng(ctx.seed));
    const long long big = 60;
    const std::vector<std::pair<int, model::BufferVector>> states = {
        {model::kRegionB, {big, 0, 0}},   {model::kRegionC, {0, big, 0}},
        {model::kRegionD, {0, 0, big}},   {model::kRegionE, {big, big, 0}},
        {model::kRegionF, {big, 0, big}}, {model::kRegionG, {0, big, big}},
        {model::kRegionH, {big, big, big}},
    };
    const int samples = static_cast<int>(8000 * std::max(ctx.scale, 0.05));
    RunResult& drift_cell = result.add_cell("Foster-Lyapunov drift");
    for (const auto& [region, relays] : states) {
        const int k = model::LyapunovEstimator::paper_horizon(region);
        const auto d = estimator.estimate(relays, k, samples);
        WindowResult& window = drift_cell.add_window("region " + model::region_name(region, 3));
        window.set("horizon_k", metric_point(k));
        window.set("mean_drift", metric_point(d.mean_drift));
        window.set("stderr_drift", metric_point(d.stderr_drift));
        window.set("stable", metric_point(d.mean_drift + 2 * d.stderr_drift < 0.05 ? 1.0 : 0.0));
    }
    return result;
}

std::string pattern_key(const std::vector<int>& z)
{
    std::string key = "z";
    for (int bit : z) key += static_cast<char>('0' + bit);
    return key;
}

void table4_report(const FigureContext& ctx, FigureResult& result, const std::vector<double>& cw,
                   const char* cw_label)
{
    RunResult& cell = result.add_cell(cw_label);

    model::RandomWalkModel::Config config;
    config.hops = 4;
    model::RandomWalkModel sampler(config, util::Rng(ctx.seed));

    const int n = static_cast<int>(50000 * std::max(ctx.scale, 0.02));
    for (int region = 0; region < 8; ++region) {
        model::BufferVector relays = {0, 0, 0};
        for (int i = 0; i < 3; ++i)
            if (region & (1 << i)) relays[static_cast<std::size_t>(i)] = 5;

        std::map<std::string, int> counts;
        for (int i = 0; i < n; ++i) ++counts[pattern_key(sampler.sample_pattern(relays, cw))];

        WindowResult& window = cell.add_window("region " + model::region_name(region, 3));
        for (const model::Pattern& p : model::table4_distribution(region, cw)) {
            const std::string key = pattern_key(p.z);
            const double observed = counts.count(key) ? counts[key] / double(n) : 0.0;
            window.set(key + ".closed_form", metric_point(p.probability));
            window.set(key + ".monte_carlo", metric_point(observed));
        }
    }
}

FigureResult run_table4(const FigureContext& ctx)
{
    FigureResult result = make_result(ctx);
    table4_report(ctx, result, {32, 32, 32, 32}, "cw = (32 32 32 32) [plain 802.11]");
    table4_report(ctx, result, {512, 16, 16, 16}, "cw = (512 16 16 16) [EZ-flow stable]");
    return result;
}

}  // namespace

void register_model_figures()
{
    FigureRegistry& registry = FigureRegistry::instance();
    registry.add(FigureSpec{
        "fig12", "fig12_lyapunov_walk", "figure",
        "random-walk stability of the 4-hop model",
        "Fig. 12 / Theorem 1 — EZ-flow keeps the walk near the origin",
        "The fixed-window walk's backlog grows roughly linearly in time (instability of [9]); "
        "the EZ-flow walk stays within tens of packets, and the per-region drifts of h are "
        "negative — Foster's criterion, i.e. Theorem 1.",
        1.0, 1, 0.05, 1, run_fig12});
    registry.add(FigureSpec{
        "table4", "table4_model_probabilities", "table",
        "pattern distribution per region of the slotted model",
        "Table 4 — closed forms vs the generative race/interference process",
        "Monte-Carlo matches the closed forms in every region; with the EZ-flow window vector "
        "the source-favouring patterns lose most of their probability mass.",
        1.0, 1, 0.02, 1, run_table4});
}

}  // namespace ezflow::cli

// The example workloads, registered so `ezflow run` can exercise them
// with the same structured-result/golden machinery as the paper figures.
// The former standalone example binaries remain as thin launchers.

#include <map>
#include <memory>

#include "cli/figures.h"
#include "cli/figures_common.h"
#include "core/agent.h"
#include "core/caa.h"
#include "model/lyapunov.h"
#include "model/region.h"
#include "model/walk.h"
#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"
#include "util/stats.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

// -- quickstart: one K-hop chain, both policies --------------------------

FigureResult run_quickstart(const FigureContext& ctx)
{
    const int hops = ctx.extra_int("hops", 4);
    // --duration keeps the former standalone binary's flag working.
    const double duration_s = ctx.extra_double("duration", 300.0 * ctx.scale);
    FigureResult result = make_result(ctx);
    for (const Mode mode : {Mode::kBaseline80211, Mode::kEzFlow}) {
        ExperimentOptions options;
        options.mode = mode;
        Experiment experiment(net::make_line(hops, duration_s, ctx.seed), options);
        experiment.run();

        const double warmup_s = 0.3 * duration_s;
        const auto summary = experiment.summarize(0, warmup_s, duration_s);
        WindowResult& window = result.add_cell(mode_name(mode)).add_window("settled");
        window.set("goodput_kbps", metric_point(summary.mean_kbps));
        window.set("delay_s", metric_point(summary.mean_delay_s));
        window.set("delay_max_s", metric_point(summary.max_delay_s));
        for (int n = 1; n < hops; ++n) {
            const std::string prefix = "N" + std::to_string(n);
            window.set(prefix + ".buf_mean",
                       metric_point(experiment.buffers().mean_occupancy(
                           n, util::from_seconds(warmup_s), util::from_seconds(duration_s))));
            window.set(prefix + ".drops",
                       metric_point(static_cast<double>(
                           experiment.network().node(n).forward_queue_drops())));
        }
        if (mode == Mode::kEzFlow) {
            for (int n = 0; n < hops; ++n)
                if (const core::EzFlowAgent* agent = experiment.agent(n))
                    window.set("cw" + std::to_string(n),
                               metric_point(agent->cw_toward(n + 1)));
        }
    }
    return result;
}

// -- parking_lot: testbed parking-lot fairness ---------------------------

FigureResult run_parking_lot(const FigureContext& ctx)
{
    const double duration_s = ctx.extra_double("duration", 400.0 * ctx.scale);
    const int cap = ctx.extra_int("cap", 1 << 10);

    ExperimentOptions options;
    options.caa.max_cw = cap;  // the testbed's MadWifi driver capped at 2^10
    const ExperimentFactory baseline(ScenarioSpec::testbed(5, duration_s, 5, duration_s),
                                     options);

    SweepConfig config;
    config.windows.push_back(SweepWindow{"settled", 0.3 * duration_s, duration_s, {1, 2}});
    config.seeds = ctx.seed_grid();
    config.keep_experiments = true;  // to read the EZ agents' final windows

    const auto sweeps = SweepRunner(ctx.threads).run_grid(
        {baseline, baseline.with_mode(Mode::kEzFlow)}, config);

    FigureResult result = make_result(ctx);
    for (const SweepResult& sweep : sweeps)
        result.cells.push_back(run_result_from_sweep(sweep, config.windows));

    // The self-throttled source windows of the first EZ-Flow run.
    const Experiment& ez = *sweeps[1].experiments.front();
    const net::Scenario& s = ez.scenario();
    WindowResult& window = result.cells.back().windows.front();
    window.set("F1.source_cw",
               metric_point(ez.agent(s.flows[0].path[0])->cw_toward(s.flows[0].path[1])));
    window.set("F2.source_cw",
               metric_point(ez.agent(s.flows[1].path[0])->cw_toward(s.flows[1].path[1])));
    return result;
}

// -- backhaul_gateway: scenario 1's settled two-flow regime --------------

FigureResult run_backhaul_gateway(const FigureContext& ctx)
{
    // Measure the settled two-flow regime of the paper's timeline.
    const double both_begin = (605.0 + 360.0) * ctx.scale;
    const double both_end = 1804.0 * ctx.scale;
    SweepConfig config;
    config.windows.push_back(SweepWindow{"both flows", both_begin, both_end, {1, 2}});
    config.seeds = ctx.seed_grid();

    const ExperimentFactory baseline(ScenarioSpec::scenario1(ctx.scale), {});
    const auto sweeps = SweepRunner(ctx.threads).run_grid(
        {baseline, baseline.with_mode(Mode::kEzFlow)}, config);

    FigureResult result = make_result(ctx);
    for (const SweepResult& sweep : sweeps)
        result.cells.push_back(run_result_from_sweep(sweep, config.windows));
    return result;
}

// -- voip_mesh: voice tail latency next to a greedy bulk flow ------------

void voip_run(const FigureContext& ctx, FigureResult& result, bool ezflow, double duration_s)
{
    net::Scenario scenario = net::make_line(4, duration_s, ctx.seed);
    net::Network& network = *scenario.network;
    // Voice flow shares the same path (flow id 1).
    network.add_flow(1, scenario.flows[0].path);

    std::map<net::NodeId, std::unique_ptr<core::EzFlowAgent>> agents;
    if (ezflow) agents = core::install_ezflow(network, core::CaaConfig{});

    traffic::Sink sink(network);
    sink.attach_flow(0);
    sink.attach_flow(1);
    traffic::CbrSource bulk(network, 0, 1000, 2e6);  // greedy background
    bulk.activate(util::from_seconds(5), util::from_seconds(duration_s));
    traffic::CbrSource voice(network, 1, 200, 64'000.0);  // 40 pkt/s voice
    voice.activate(util::from_seconds(5), util::from_seconds(duration_s));

    network.run_until(util::from_seconds(duration_s));

    const auto& record = sink.flow(1);
    std::vector<double> delays_ms;
    const double from = 0.3 * duration_s;
    const auto& times = record.delay_series.times();
    const auto& values = record.delay_series.values();
    for (std::size_t i = 0; i < times.size(); ++i)
        if (util::to_seconds(times[i]) >= from) delays_ms.push_back(values[i] / 1000.0);

    WindowResult& window =
        result.add_cell(ezflow ? "EZ-flow" : "IEEE 802.11").add_window("voice");
    window.set("delivered", metric_point(static_cast<double>(record.packets)));
    window.set("delay_p50_ms",
               metric_point(delays_ms.empty() ? 0.0 : util::percentile(delays_ms, 50)));
    window.set("delay_p95_ms",
               metric_point(delays_ms.empty() ? 0.0 : util::percentile(delays_ms, 95)));
    window.set("delay_p99_ms",
               metric_point(delays_ms.empty() ? 0.0 : util::percentile(delays_ms, 99)));
}

FigureResult run_voip_mesh(const FigureContext& ctx)
{
    const double duration_s = ctx.extra_double("duration", 400.0 * ctx.scale);
    FigureResult result = make_result(ctx);
    voip_run(ctx, result, false, duration_s);
    voip_run(ctx, result, true, duration_s);
    return result;
}

// -- adaptive_traffic: windows breathing with an on-off flow -------------

FigureResult run_adaptive_traffic(const FigureContext& ctx)
{
    const double duration_s = ctx.extra_double("duration", 600.0 * ctx.scale);
    net::Scenario scenario = net::make_testbed(5, duration_s, 5, duration_s, ctx.seed);
    net::Network& network = *scenario.network;

    auto agents = core::install_ezflow(network, core::CaaConfig{});
    traffic::Sink sink(network);
    sink.attach_flow(1);
    sink.attach_flow(2);

    // F1 carries steady CBR; F2 is bursty on-off traffic at the junction.
    traffic::CbrSource steady(network, 1, 1000, 2e6);
    steady.activate(util::from_seconds(5), util::from_seconds(duration_s));
    traffic::OnOffSource bursty(network, 2, 1000, 2e6, /*mean_on_s=*/30.0, /*mean_off_s=*/30.0);
    bursty.activate(util::from_seconds(5), util::from_seconds(duration_s));

    // Sample the two sources' windows at each quarter of the run.
    const net::NodeId f1_src = scenario.flows[0].path[0];
    const net::NodeId f2_src = scenario.flows[1].path[0];
    FigureResult result = make_result(ctx);
    RunResult& cell = result.add_cell("EZ-flow / steady + bursty");
    for (int quarter = 1; quarter <= 4; ++quarter) {
        network.run_until(util::from_seconds(duration_s * quarter / 4.0));
        WindowResult& window = cell.add_window("q" + std::to_string(quarter));
        window.set("F1.source_cw",
                   metric_point(agents.at(f1_src)->cw_toward(scenario.flows[0].path[1])));
        window.set("F2.source_cw",
                   metric_point(agents.at(f2_src)->cw_toward(scenario.flows[1].path[1])));
        window.set("F1.delivered", metric_point(static_cast<double>(sink.flow(1).packets)));
        window.set("F2.delivered", metric_point(static_cast<double>(sink.flow(2).packets)));
    }
    return result;
}

// -- model_explorer: the Section 6 slotted walk, directly ----------------

FigureResult run_model_explorer(const FigureContext& ctx)
{
    const int hops = ctx.extra_int("hops", 4);
    const auto slots =
        static_cast<std::uint64_t>(ctx.extra_double("slots", 200000 * ctx.scale));
    const long long fixed_cw = ctx.extra_int("cw", 32);

    FigureResult result = make_result(ctx);
    for (const bool ezflow : {false, true}) {
        model::RandomWalkModel::Config config;
        config.hops = hops;
        config.ezflow_enabled = ezflow;
        if (!ezflow) config.initial_cw.assign(static_cast<std::size_t>(hops), fixed_cw);

        model::RandomWalkModel walk(config, util::Rng(ctx.seed));
        std::map<int, std::uint64_t> region_time;
        RunResult& cell =
            result.add_cell(ezflow ? "EZ-flow dynamics (Eq. 2)" : "fixed windows");
        for (int quarter = 1; quarter <= 4; ++quarter) {
            for (std::uint64_t i = 0; i < slots / 4; ++i) {
                walk.step();
                ++region_time[walk.region()];
            }
            WindowResult& window = cell.add_window("q" + std::to_string(quarter));
            window.set("h", metric_point(static_cast<double>(walk.total_backlog())));
            window.set("delivered", metric_point(static_cast<double>(walk.delivered())));
        }
        WindowResult& shares = cell.add_window("region time share");
        for (const auto& [region, count] : region_time)
            shares.set(model::region_name(region, hops - 1),
                       metric_point(static_cast<double>(count) /
                                    static_cast<double>(walk.slots())));
    }
    return result;
}

}  // namespace

void register_example_figures()
{
    FigureRegistry& registry = FigureRegistry::instance();
    registry.add(FigureSpec{
        "quickstart", "", "example",
        "K-hop chain quickstart: 802.11 vs EZ-flow end to end",
        "the smallest end-to-end use of the library's public API",
        "EZ-flow stabilizes the chain plain 802.11 cannot: relay queues drain, goodput rises, "
        "delay collapses. Extra flag: --hops=<k>.",
        1.0, 1, 0.15, 1, run_quickstart});
    registry.add(FigureSpec{
        "parking_lot", "", "example",
        "testbed parking lot: short flow starves long flow",
        "Table 2's scenario as a library example",
        "802.11 starves the 7-hop flow; with EZ-flow both sources self-throttle and the "
        "fairness index recovers. Extra flag: --cap=<max_cw>.",
        1.0, 2, 0.2, 2, run_parking_lot});
    registry.add(FigureSpec{
        "backhaul_gateway", "", "example",
        "two 8-hop access flows merging toward the gateway",
        "the workload the paper's introduction motivates (Fig. 2 / Fig. 5)",
        "EZ-flow keeps the merge smooth while plain 802.11 congests; no message passing — "
        "each node sniffs its successor's forwards and steers only its own CWmin.",
        0.2, 4, 0.05, 2, run_backhaul_gateway});
    registry.add(FigureSpec{
        "voip_mesh", "", "example",
        "64 kb/s voice flow sharing a 4-hop backhaul with greedy bulk",
        "the delay-sensitive workload of the introduction",
        "Voice packets queue behind the bulk flow's backlog at every relay; EZ-flow keeps "
        "those buffers drained, so tail latency drops by an order of magnitude.",
        1.0, 1, 0.15, 1, run_voip_mesh});
    registry.add(FigureSpec{
        "adaptive_traffic", "", "example",
        "EZ-flow windows breathing with a bursty on-off flow",
        "the adaptivity property Section 2.2 demands",
        "Both source windows follow the offered load up and down without any signalling: they "
        "climb while the burst is on and decay during silences.",
        1.0, 1, 0.1, 1, run_adaptive_traffic});
    registry.add(FigureSpec{
        "model_explorer", "", "example",
        "drive the Section 6 slotted random-walk model directly",
        "the stability boundary without packet-level simulation",
        "With fixed windows the backlog h(b) grows roughly linearly for hops >= 4; with "
        "EZ-flow it stays within tens of packets (Theorem 1). Extra flags: --hops, --cw.",
        1.0, 1, 0.1, 1, run_model_explorer});
}

}  // namespace ezflow::cli

// Scenario 1 figures (Figs. 6-8): two 8-hop flows merging toward a
// gateway. Ported from the former standalone bench mains; the logic is
// unchanged, the output is now a structured FigureResult.

#include <cmath>

#include "cli/figures.h"
#include "cli/figures_common.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

FigureResult run_fig06(const FigureContext& ctx)
{
    const Scenario1Periods periods(ctx.scale);
    const std::vector<Mode> modes = {Mode::kBaseline80211, Mode::kEzFlow};
    const auto windows = periods.windows();
    const auto sweeps = sweep_modes(ctx, ScenarioSpec::scenario1(ctx.scale), modes, windows);

    FigureResult result = make_result(ctx);
    for (std::size_t m = 0; m < modes.size(); ++m) {
        result.cells.push_back(run_result_from_sweep(sweeps[m], windows));
        if (!sweeps[m].experiments.empty()) {
            Experiment& first = *sweeps[m].experiments.front();
            maybe_dump_series(
                ctx, std::string("fig06_") + (modes[m] == Mode::kEzFlow ? "ezflow" : "80211"),
                {{"F1", &first.throughput(1).series()}, {"F2", &first.throughput(2).series()}});
        }
    }
    return result;
}

FigureResult run_fig07(const FigureContext& ctx)
{
    const Scenario1Periods periods(ctx.scale);
    std::vector<SweepWindow> windows = periods.windows();
    // The transient right after F2 arrives (the paper's delay peak),
    // measured as its own window.
    const double w2 = 0.3 * (periods.p2_end - periods.p2_begin);
    windows.push_back(SweepWindow{"transient", periods.p2_begin, periods.p2_begin + w2, {1, 2}});
    const std::vector<Mode> modes = {Mode::kBaseline80211, Mode::kEzFlow};
    const auto sweeps = sweep_modes(ctx, ScenarioSpec::scenario1(ctx.scale), modes, windows);

    FigureResult result = make_result(ctx);
    for (std::size_t m = 0; m < modes.size(); ++m) {
        result.cells.push_back(run_result_from_sweep(sweeps[m], windows));
        if (!sweeps[m].experiments.empty()) {
            Experiment& first = *sweeps[m].experiments.front();
            maybe_dump_series(
                ctx, std::string("fig07_") + (modes[m] == Mode::kEzFlow ? "ezflow" : "80211"),
                {{"F1", &first.sink().flow(1).delay_series},
                 {"F2", &first.sink().flow(2).delay_series}});
        }
    }
    return result;
}

double log_cw_at(const util::TimeSeries& trace, double t_s, double scale)
{
    const double cw = trace.mean_between(util::from_seconds(t_s - 10.0 * scale),
                                         util::from_seconds(t_s + 40.0 * scale));
    return cw > 0 ? std::log2(cw) : 0.0;
}

FigureResult run_fig08(const FigureContext& ctx)
{
    const Scenario1Periods periods(ctx.scale);
    // The contention windows live in the per-seed CwTracers, so keep the
    // experiments alive rather than relying on FlowSummary aggregates.
    const auto sweeps = sweep_modes(ctx, ScenarioSpec::scenario1(ctx.scale), {Mode::kEzFlow},
                                    periods.windows(), /*keep_experiments=*/true);
    const SweepResult& sweep = sweeps.front();
    const net::Scenario& scenario = sweep.experiments.front()->scenario();

    // The nodes the paper plots: the two sources (N12, N11), the first
    // relays of each branch (N10, N9, N8, N7) and a trunk relay (N4).
    const std::vector<std::string> labels = {"N12", "N11", "N10", "N9", "N8", "N7", "N4"};
    const double sample_times[] = {periods.p1_end - 50 * ctx.scale,
                                   periods.p2_end - 50 * ctx.scale,
                                   periods.p3_end - 50 * ctx.scale};
    const char* window_names[] = {"F1 alone", "F1 + F2", "end"};

    FigureResult result = make_result(ctx);
    RunResult& cell = result.add_cell(sweep.label);
    std::vector<std::pair<std::string, const util::TimeSeries*>> series;
    for (int t = 0; t < 3; ++t) {
        WindowResult& window = cell.add_window(window_names[t]);
        for (const std::string& label : labels) {
            const int node = label_to_node(scenario, label);
            if (node < 0) continue;
            util::RunningStats stats;
            for (const auto& experiment : sweep.experiments)
                stats.add(
                    log_cw_at(experiment->cw_tracer().trace(node), sample_times[t], ctx.scale));
            window.set(label + ".log2_cw", metric_from_stats(stats));
        }
    }
    for (const std::string& label : labels) {
        const int node = label_to_node(scenario, label);
        if (node >= 0)
            series.emplace_back(label, &sweep.experiments.front()->cw_tracer().trace(node));
    }
    maybe_dump_series(ctx, "fig08_cw", series);
    return result;
}

}  // namespace

void register_scenario1_figures()
{
    FigureRegistry& registry = FigureRegistry::instance();
    registry.add(FigureSpec{
        "fig06", "fig06_scenario1_throughput", "figure",
        "throughput vs time, 2-flow merge (scenario 1)",
        "Fig. 6 — EZ-flow raises F1-alone throughput ~20% and smooths both flows",
        "EZ-flow improves the single-flow period's throughput (~20% in the paper) and keeps "
        "the two-flow period smoother (lower spread) at an equal or better aggregate.",
        0.3, 8, 0.05, 2, run_fig06});
    registry.add(FigureSpec{
        "fig07", "fig07_scenario1_delay", "figure",
        "end-to-end delay vs time, 2-flow merge (scenario 1)",
        "Fig. 7 — 802.11 ~4-6 s; EZ-flow ~0.2 s with transient peaks at load changes",
        "An order-of-magnitude delay reduction under EZ-flow in every period; a visible "
        "transient peak right after F2 joins, quickly damped as the windows re-converge.",
        0.3, 8, 0.05, 2, run_fig07});
    registry.add(FigureSpec{
        "fig08", "fig08_scenario1_cw", "figure",
        "EZ-Flow contention-window evolution (scenario 1)",
        "Fig. 8 — relays at 2^4; F1 source to ~2^7 alone, sources to ~2^11 together",
        "Sources carry the largest windows (self-throttling), relays near the gateway stay "
        "at/near the 2^4 minimum, windows rise when F2 joins and relax back after it leaves.",
        0.3, 8, 0.05, 2, run_fig08});
}

}  // namespace ezflow::cli

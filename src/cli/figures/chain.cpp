// Fig. 1: relay-buffer evolution of 3- and 4-hop chains under plain
// IEEE 802.11 — the paper's motivating instability dichotomy.

#include "cli/figures.h"
#include "cli/figures_common.h"
#include "net/topologies.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

FigureResult run_fig01(const FigureContext& ctx)
{
    FigureResult result = make_result(ctx);
    for (const int hops : {3, 4}) {
        const double duration_s = 1800.0 * ctx.scale;
        ExperimentOptions options;
        options.mode = Mode::kBaseline80211;
        Experiment exp(net::make_line(hops, duration_s, ctx.seed), options);
        exp.run();

        RunResult& cell = result.add_cell(std::to_string(hops) + "-hop chain / IEEE 802.11");
        WindowResult& window = cell.add_window("settled");
        const double warmup = 0.2 * duration_s;
        std::vector<std::pair<std::string, const util::TimeSeries*>> series;
        for (int n = 1; n < hops; ++n) {
            const std::string prefix = "N" + std::to_string(n);
            window.set(prefix + ".buf_mean",
                       metric_point(exp.buffers().mean_occupancy(
                           n, util::from_seconds(warmup), util::from_seconds(duration_s + 5))));
            window.set(prefix + ".buf_max", metric_point(exp.buffers().max_occupancy(n)));
            window.set(prefix + ".drops",
                       metric_point(static_cast<double>(
                           exp.network().node(n).forward_queue_drops())));
            series.emplace_back(prefix, &exp.buffers().trace(n));
        }
        window.set("goodput_kbps", metric_point(exp.summarize(0, warmup, duration_s).mean_kbps));
        maybe_dump_series(ctx, "fig01_" + std::to_string(hops) + "hop", series);
    }
    return result;
}

}  // namespace

void register_chain_figures()
{
    FigureRegistry::instance().add(FigureSpec{
        "fig01", "fig01_instability", "figure",
        "relay buffers, 3-hop vs 4-hop chain under 802.11",
        "Fig. 1 — 3-hop stable, 4-hop first relay saturates",
        "3-hop relay buffers stay bounded well below the 50-packet cap; the 4-hop chain's "
        "first relay rides the cap and drops packets.",
        0.12, 1, 0.03, 1, run_fig01});
}

}  // namespace ezflow::cli

// Scenario 2 figures (Figs. 10-11, Table 3): three crossing flows with
// hidden sources. Ported from the former standalone bench mains.

#include <cmath>

#include "cli/figures.h"
#include "cli/figures_common.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

FigureResult run_fig10(const FigureContext& ctx)
{
    const Scenario2Periods periods(ctx.scale);
    const std::vector<Mode> modes = {Mode::kBaseline80211, Mode::kEzFlow};
    const auto windows = periods.windows();
    const auto sweeps = sweep_modes(ctx, ScenarioSpec::scenario2(ctx.scale), modes, windows);

    FigureResult result = make_result(ctx);
    for (std::size_t m = 0; m < modes.size(); ++m) {
        result.cells.push_back(run_result_from_sweep(sweeps[m], windows));
        if (!sweeps[m].experiments.empty()) {
            Experiment& first = *sweeps[m].experiments.front();
            maybe_dump_series(
                ctx, std::string("fig10_") + (modes[m] == Mode::kEzFlow ? "ezflow" : "80211"),
                {{"F1", &first.sink().flow(1).delay_series},
                 {"F2", &first.sink().flow(2).delay_series},
                 {"F3", &first.sink().flow(3).delay_series}});
        }
    }
    return result;
}

double log_cw_before(const util::TimeSeries& trace, double t_s, double scale)
{
    const double cw =
        trace.mean_between(util::from_seconds(t_s - 60.0 * scale), util::from_seconds(t_s));
    return cw > 0 ? std::log2(cw) : 0.0;
}

FigureResult run_fig11(const FigureContext& ctx)
{
    const Scenario2Periods periods(ctx.scale);
    const auto sweeps = sweep_modes(ctx, ScenarioSpec::scenario2(ctx.scale), {Mode::kEzFlow},
                                    periods.windows(), /*keep_experiments=*/true);
    const SweepResult& sweep = sweeps.front();
    const net::Scenario& scenario = sweep.experiments.front()->scenario();

    // The paper plots cw0, cw1 (F1), cw10, cw11 (F2), cw19, cw20 (F3).
    const std::vector<std::string> labels = {"N0", "N1", "N10", "N11", "N19", "N20"};
    const double sample_times[] = {periods.p1_end, periods.p2_end, periods.p3_end};
    const char* window_names[] = {"P1", "P2", "P3"};

    FigureResult result = make_result(ctx);
    RunResult& cell = result.add_cell(sweep.label);
    for (int t = 0; t < 3; ++t) {
        WindowResult& window = cell.add_window(window_names[t]);
        for (const std::string& label : labels) {
            const int node = label_to_node(scenario, label);
            if (node < 0) continue;
            util::RunningStats stats;
            for (const auto& experiment : sweep.experiments)
                stats.add(log_cw_before(experiment->cw_tracer().trace(node), sample_times[t],
                                        ctx.scale));
            window.set(label + ".log2_cw", metric_from_stats(stats));
        }
    }
    std::vector<std::pair<std::string, const util::TimeSeries*>> series;
    for (const std::string& label : labels) {
        const int node = label_to_node(scenario, label);
        if (node >= 0)
            series.emplace_back(label, &sweep.experiments.front()->cw_tracer().trace(node));
    }
    maybe_dump_series(ctx, "fig11_cw", series);
    return result;
}

FigureResult run_table3(const FigureContext& ctx)
{
    const Scenario2Periods periods(ctx.scale);
    const std::vector<Mode> modes = {Mode::kBaseline80211, Mode::kEzFlow};
    const auto windows = periods.windows();
    const auto sweeps = sweep_modes(ctx, ScenarioSpec::scenario2(ctx.scale), modes, windows);

    FigureResult result = make_result(ctx);
    for (const SweepResult& sweep : sweeps) result.cells.push_back(run_result_from_sweep(sweep, windows));
    return result;
}

}  // namespace

void register_scenario2_figures()
{
    FigureRegistry& registry = FigureRegistry::instance();
    registry.add(FigureSpec{
        "fig10", "fig10_scenario2_delay", "figure",
        "end-to-end delay vs time, 3 crossing flows (scenario 2)",
        "Fig. 10 — 802.11: seconds-to-tens-of-seconds delays; EZ-flow: >=10x lower",
        "EZ-flow reduces every flow's delay by an order of magnitude in every period, and the "
        "final F1-alone period returns to the single-flow regime of scenario 1.",
        0.15, 8, 0.04, 2, run_fig10});
    registry.add(FigureSpec{
        "fig11", "fig11_scenario2_cw", "figure",
        "contention windows at the flows' first nodes (scenario 2)",
        "Fig. 11 — sources self-throttle (2^7..2^10); first relays stay aggressive",
        "Each flow's source carries a much larger window than its first relay; windows grow "
        "when a new flow joins (period 2) and relax when traffic leaves (period 3).",
        0.15, 8, 0.04, 2, run_fig11});
    registry.add(FigureSpec{
        "table3", "table3_scenario2", "table",
        "per-period throughput / stddev / fairness (scenario 2)",
        "Table 3 — EZ-flow: +62% cumulative throughput and FI 0.64 -> 0.80 in period 2",
        "Under 802.11 the crossing flows starve each other (low FI); EZ-flow lifts the starved "
        "flows, raises the cumulative throughput and the fairness index.",
        0.15, 8, 0.04, 2, run_table3});
}

}  // namespace ezflow::cli

// The generated-topology figure family: cross-traffic grids and
// gateway convergecast in the style of Chan, Liew & Chan
// (arXiv:0704.0528), and a Leith et al. (arXiv:1002.1581) style
// per-flow-throughput / max-min sweep over parking-lot chains. These are
// the first workloads beyond the paper's own 9-node scenarios, opened up
// by the PR-3 event collapse and the O(1) compiled routing table.

#include <algorithm>
#include <vector>

#include "cli/figures.h"
#include "cli/figures_common.h"
#include "net/topo_gen.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

/// All flow ids of a built scenario spec, 1..F by generator convention.
std::vector<int> flow_ids_upto(int flows)
{
    std::vector<int> ids;
    for (int f = 1; f <= flows; ++f) ids.push_back(f);
    return ids;
}

/// The settled window of a generated scenario (net of a 30% warmup).
std::vector<SweepWindow> settled_window(const net::GridSpec& grid, int flows)
{
    const double begin = grid.start_s + 0.3 * grid.duration_s;
    const double end = grid.start_s + grid.duration_s;
    return {SweepWindow{"settled", begin, end, flow_ids_upto(flows)}};
}

/// Per-seed min/max across the flows of each window, aggregated across
/// seeds — the per-flow-throughput summary a max-min study reports.
void add_maxmin_metrics(RunResult& cell, const SweepResult& sweep)
{
    for (std::size_t w = 0; w < cell.windows.size(); ++w) {
        util::RunningStats min_kbps, max_kbps, maxmin;
        for (const SeedResult& seed : sweep.per_seed) {
            const SeedResult::Window& window = seed.windows[w];
            if (window.flows.empty()) continue;
            double lo = window.flows.front().mean_kbps;
            double hi = lo;
            for (const Experiment::FlowSummary& flow : window.flows) {
                lo = std::min(lo, flow.mean_kbps);
                hi = std::max(hi, flow.mean_kbps);
            }
            min_kbps.add(lo);
            max_kbps.add(hi);
            maxmin.add(hi > 0 ? lo / hi : 1.0);
        }
        WindowResult& window = cell.windows[w];
        window.set("min_flow_kbps", metric_from_stats(min_kbps));
        window.set("max_flow_kbps", metric_from_stats(max_kbps));
        window.set("maxmin_ratio", metric_from_stats(maxmin));
    }
}

net::GridSpec grid_spec_from(const FigureContext& ctx, int default_cols, int default_rows)
{
    net::GridSpec grid;
    grid.cols = ctx.extra_int("cols", default_cols);
    grid.rows = ctx.extra_int("rows", default_rows);
    grid.spacing_m = ctx.extra_double("spacing", grid.spacing_m);
    grid.cs_range_m = ctx.extra_double("cs-range", 0.0);
    grid.interference_range_m = ctx.extra_double("interference-range", 0.0);
    grid.duration_s = ctx.extra_double("duration", 120.0 * ctx.scale);
    return grid;
}

void append_mode_cells(FigureResult& result, const FigureContext& ctx, const ScenarioSpec& spec,
                       const std::vector<SweepWindow>& windows, bool maxmin)
{
    const std::vector<Mode> modes = {Mode::kBaseline80211, Mode::kEzFlow};
    const auto sweeps = sweep_modes(ctx, spec, modes, windows);
    for (const SweepResult& sweep : sweeps) {
        result.cells.push_back(run_result_from_sweep(sweep, windows));
        if (maxmin) add_maxmin_metrics(result.cells.back(), sweep);
    }
}

// -- grid_cross: crossing row/column flows over an N x M lattice ---------

FigureResult run_grid_cross(const FigureContext& ctx)
{
    net::GridSpec grid = grid_spec_from(ctx, 5, 5);
    grid.cross_flows = ctx.extra_int("flows", 4);
    FigureResult result = make_result(ctx);
    append_mode_cells(result, ctx, ScenarioSpec::grid_cross(grid),
                      settled_window(grid, grid.cross_flows), /*maxmin=*/false);
    return result;
}

// -- grid_gateway: edge sources converging on the corner gateway ---------

FigureResult run_grid_gateway(const FigureContext& ctx)
{
    net::GridSpec grid = grid_spec_from(ctx, 5, 5);
    grid.sources = ctx.extra_int("sources", 4);
    FigureResult result = make_result(ctx);
    append_mode_cells(result, ctx, ScenarioSpec::grid_gateway(grid),
                      settled_window(grid, grid.sources), /*maxmin=*/false);
    return result;
}

// -- grid_maxmin: per-flow throughput over parking-lot chains ------------

FigureResult run_grid_maxmin(const FigureContext& ctx)
{
    const int hops = ctx.extra_int("hops", 8);
    const double duration_s = ctx.extra_double("duration", 120.0 * ctx.scale);
    FigureResult result = make_result(ctx);
    for (const int flows : {2, 4}) {
        const ScenarioSpec spec = ScenarioSpec::parking_lot(hops, flows, duration_s);
        const std::vector<SweepWindow> windows = {
            SweepWindow{"settled", spec.lot_start_s + 0.3 * duration_s,
                        spec.lot_start_s + duration_s, flow_ids_upto(flows)}};
        append_mode_cells(result, ctx, spec, windows, /*maxmin=*/true);
    }
    return result;
}

// -- islands: disconnected grid islands, one shard each ------------------

FigureResult run_islands(const FigureContext& ctx)
{
    net::IslandsSpec islands;
    islands.islands = ctx.extra_int("islands", 4);
    islands.cols = ctx.extra_int("cols", 4);
    islands.rows = ctx.extra_int("rows", 4);
    islands.sources = ctx.extra_int("sources", 2);
    islands.spacing_m = ctx.extra_double("spacing", islands.spacing_m);
    islands.gap_m = ctx.extra_double("gap", islands.gap_m);
    islands.duration_s = ctx.extra_double("duration", 60.0 * ctx.scale);
    // Default to one shard per island so every run (including CI smoke)
    // exercises the sharded engine; results are byte-identical to serial.
    islands.max_shards = islands.islands;
    const int flows = islands.islands * islands.sources;
    const std::vector<SweepWindow> windows = {
        SweepWindow{"settled", islands.start_s + 0.3 * islands.duration_s,
                    islands.start_s + islands.duration_s, flow_ids_upto(flows)}};
    FigureResult result = make_result(ctx);
    append_mode_cells(result, ctx, ScenarioSpec::islands_spec(islands), windows,
                      /*maxmin=*/false);
    return result;
}

// -- grid_clusters: connected clustered grids, interference-only gap -----

FigureResult run_grid_clusters(const FigureContext& ctx)
{
    net::ClustersSpec clusters;
    clusters.clusters = ctx.extra_int("clusters", 4);
    clusters.cols = ctx.extra_int("cols", 4);
    clusters.rows = ctx.extra_int("rows", 4);
    clusters.sources = ctx.extra_int("sources", 2);
    clusters.spacing_m = ctx.extra_double("spacing", clusters.spacing_m);
    clusters.gap_m = ctx.extra_double("gap", clusters.gap_m);
    clusters.duration_s = ctx.extra_double("duration", 60.0 * ctx.scale);
    // Default to one shard per cluster so every run (including CI smoke)
    // exercises the connected-cut engine; --shards overrides, and the
    // figure JSON is byte-identical at any shard count.
    clusters.max_shards = clusters.clusters;
    const int flows = clusters.clusters * clusters.sources;
    const std::vector<SweepWindow> windows = {
        SweepWindow{"settled", clusters.start_s + 0.3 * clusters.duration_s,
                    clusters.start_s + clusters.duration_s, flow_ids_upto(flows)}};
    FigureResult result = make_result(ctx);
    append_mode_cells(result, ctx, ScenarioSpec::clusters_spec(clusters), windows,
                      /*maxmin=*/false);
    return result;
}

}  // namespace

void register_grid_figures()
{
    FigureRegistry& registry = FigureRegistry::instance();
    registry.add(FigureSpec{
        "grid_cross", "", "figure",
        "crossing row/column flows over a generated N x M grid",
        "the cross-traffic grid workload of Chan, Liew & Chan (arXiv:0704.0528)",
        "Plain 802.11 lets the crossing flows starve each other at the shared relays; EZ-flow "
        "keeps every flow moving and lifts Jain's index toward 1. Extra flags: --cols, --rows, "
        "--flows, --spacing, --cs-range, --duration.",
        1.0, 2, 0.1, 2, run_grid_cross});
    registry.add(FigureSpec{
        "grid_gateway", "", "figure",
        "edge sources converging on a corner gateway of a generated grid",
        "the convergecast backhaul pattern of mesh access networks",
        "All flows funnel into the gateway's one-hop neighbourhood; 802.11 starves the "
        "longest paths while EZ-flow balances the merge. Extra flags: --cols, --rows, "
        "--sources, --spacing, --cs-range, --duration.",
        1.0, 2, 0.1, 2, run_grid_gateway});
    registry.add(FigureSpec{
        "grid_maxmin", "", "figure",
        "per-flow throughput / max-min ratio over parking-lot chains",
        "the max-min fairness study style of Leith et al. (arXiv:1002.1581)",
        "With 802.11 the long flow's share collapses as entry flows are added "
        "(maxmin_ratio -> 0); EZ-flow holds the ratio up without any message passing. "
        "Extra flags: --hops, --duration.",
        1.0, 2, 0.1, 2, run_grid_maxmin});
    registry.add(FigureSpec{
        "islands", "", "figure",
        "disconnected grid islands partitioned one shard per island",
        "the space-parallel sharded engine's embarrassingly-parallel case",
        "Each island is an independent convergecast grid; the conflict-graph partitioner "
        "assigns one shard per island and the sharded engine runs them on the thread pool. "
        "Figure JSON is byte-identical to the serial engine (--shards=1). Extra flags: "
        "--islands, --cols, --rows, --sources, --spacing, --gap, --duration.",
        1.0, 2, 0.1, 2, run_islands});
    registry.add(FigureSpec{
        "grid_clusters", "", "figure",
        "connected clustered grids cut along an interference-only gap",
        "the connected-cut partitioner's target case: one conflict component, severable edges",
        "Clusters are linked only by cross-gap interference (no sensing or delivery), so the "
        "partitioner cuts the gap and the sharded engine mirrors boundary transmissions as "
        "read-only ghost signals. Figure JSON is byte-identical to the serial engine "
        "(--shards=1). Extra flags: --clusters, --cols, --rows, --sources, --spacing, --gap, "
        "--duration.",
        1.0, 2, 0.1, 2, run_grid_clusters});
}

}  // namespace ezflow::cli

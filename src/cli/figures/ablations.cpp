// Ablation studies: the modelling and parameter sensitivity checks that
// back the paper's design arguments. Ported from the former standalone
// bench mains; each produces a structured FigureResult.

#include <algorithm>
#include <map>
#include <memory>

#include "cli/figures.h"
#include "cli/figures_common.h"
#include "core/pacer.h"
#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"
#include "util/table.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

// -- ablation_pacer: CWmin control vs routing-layer rate pacing ----------

void pacer_cw_variant(const FigureContext& ctx, FigureResult& result, Mode mode,
                      double duration_s)
{
    ExperimentOptions options;
    options.mode = mode;
    Experiment exp(net::make_line(4, duration_s, ctx.seed), options);
    exp.run();
    const double from = 0.5 * duration_s;
    const auto summary = exp.summarize(0, from, duration_s);
    WindowResult& window = result.add_cell(mode_name(mode)).add_window("settled");
    window.set("goodput_kbps", metric_point(summary.mean_kbps));
    window.set("mac_b1", metric_point(exp.buffers().mean_occupancy(
                             1, util::from_seconds(from), util::from_seconds(duration_s))));
    window.set("delay_s", metric_point(summary.mean_delay_s));
}

FigureResult run_ablation_pacer(const FigureContext& ctx)
{
    const double duration_s = 4000.0 * ctx.scale;
    FigureResult result = make_result(ctx);
    pacer_cw_variant(ctx, result, Mode::kBaseline80211, duration_s);
    pacer_cw_variant(ctx, result, Mode::kEzFlow, duration_s);

    net::Scenario scenario = net::make_line(4, duration_s, ctx.seed);
    net::Network& network = *scenario.network;
    auto agents = core::install_paced_ezflow(network, core::PacedEzFlowAgent::Options{});
    traffic::Sink sink(network);
    sink.attach_flow(0);
    BufferTracer tracer(network, {1}, 100 * util::kMillisecond);
    tracer.start();
    traffic::CbrSource source(network, 0, 1000, 2e6);
    source.activate(util::from_seconds(5), util::from_seconds(duration_s));
    network.run_until(util::from_seconds(duration_s));
    const double from = 0.5 * duration_s;
    const auto& rec = sink.flow(0);
    WindowResult& window = result.add_cell("EZ-flow (paced)").add_window("settled");
    window.set("goodput_kbps", metric_point(sink.goodput_kbps(0, util::from_seconds(from),
                                                              util::from_seconds(duration_s))));
    window.set("mac_b1", metric_point(tracer.mean_occupancy(1, util::from_seconds(from),
                                                            util::from_seconds(duration_s))));
    window.set("delay_s",
               metric_point(rec.delay_series.mean_between(util::from_seconds(from),
                                                          util::from_seconds(duration_s)) /
                            static_cast<double>(util::kSecond)));
    return result;
}

// -- ablation_penalty_q: static penalty of [9] vs self-tuning EZ-Flow ----

void penalty_run(const FigureContext& ctx, RunResult& cell, const std::string& window_label,
                 int hops, Mode mode, double q)
{
    const double duration_s = 4000.0 * ctx.scale;
    ExperimentOptions options;
    options.mode = mode;
    options.penalty.relay_cw = 1 << 4;
    options.penalty.q = q;
    Experiment exp(net::make_line(hops, duration_s, ctx.seed), options);
    exp.run();
    const double warmup = 0.4 * duration_s;
    double b_worst = 0.0;
    for (int n = 1; n < hops; ++n)
        b_worst = std::max(b_worst,
                           exp.buffers().mean_occupancy(n, util::from_seconds(warmup),
                                                        util::from_seconds(duration_s + 5)));
    WindowResult& window = cell.add_window(window_label);
    window.set("b_worst", metric_point(b_worst));
    window.set("goodput_kbps", metric_point(exp.summarize(0, warmup, duration_s).mean_kbps));
}

FigureResult run_ablation_penalty_q(const FigureContext& ctx)
{
    FigureResult result = make_result(ctx);
    for (const int hops : {3, 4, 5}) {
        RunResult& cell = result.add_cell(std::to_string(hops) + "-hop chain");
        for (const double q : {1.0, 1.0 / 4.0, 1.0 / 16.0, 1.0 / 64.0})
            penalty_run(ctx, cell, "penalty q=1/" + std::to_string(int(1.0 / q)), hops,
                        Mode::kPenalty, q);
        penalty_run(ctx, cell, "EZ-flow (self-tuned)", hops, Mode::kEzFlow, 1.0);
    }
    return result;
}

// -- ablation_phy_capture: SIR capture vs the Fig. 1 dichotomy -----------

void capture_run(const FigureContext& ctx, RunResult& cell, int hops, double capture_threshold,
                 double duration_s)
{
    net::Network::Config config = net::testbed_config(ctx.seed);
    config.phy.capture_threshold = capture_threshold;
    net::Network network(config);
    std::vector<net::NodeId> path;
    for (int i = 0; i <= hops; ++i) path.push_back(network.add_node({200.0 * i, 0.0}));
    network.add_flow(0, path);
    traffic::Sink sink(network);
    sink.attach_flow(0);
    BufferTracer tracer(network, {path.begin() + 1, path.end() - 1}, 100 * util::kMillisecond);
    tracer.start();
    traffic::CbrSource source(network, 0, 1000, 2e6);
    source.activate(util::from_seconds(5), util::from_seconds(duration_s));
    network.run_until(util::from_seconds(duration_s));
    const double from = 0.4 * duration_s;
    WindowResult& window = cell.add_window(std::to_string(hops) + "-hop");
    window.set("b1", metric_point(tracer.mean_occupancy(1, util::from_seconds(from),
                                                        util::from_seconds(duration_s))));
    window.set("b_last", metric_point(tracer.mean_occupancy(hops - 1, util::from_seconds(from),
                                                            util::from_seconds(duration_s))));
    window.set("goodput_kbps", metric_point(sink.goodput_kbps(0, util::from_seconds(from),
                                                              util::from_seconds(duration_s))));
}

FigureResult run_ablation_phy_capture(const FigureContext& ctx)
{
    const double duration_s = 1800.0 * ctx.scale;
    FigureResult result = make_result(ctx);
    for (const double threshold : {10.0, 1e9}) {
        RunResult& cell =
            result.add_cell(threshold < 1e6 ? "capture 10 dB (ns-2)" : "capture disabled");
        for (const int hops : {3, 4}) capture_run(ctx, cell, hops, threshold, duration_s);
    }
    return result;
}

// -- ablation_rtscts: is RTS/CTS an alternative to EZ-Flow? --------------

void rtscts_run(const FigureContext& ctx, RunResult& cell, const std::string& window_label,
                double cs_range, bool rts, bool ezflow, double duration_s)
{
    net::Network::Config config = net::default_config(ctx.seed);
    config.phy.cs_range_m = cs_range;
    config.mac.rts_cts_enabled = rts;
    net::Network network(config);
    std::vector<net::NodeId> path;
    for (int i = 0; i <= 4; ++i) path.push_back(network.add_node({200.0 * i, 0.0}));
    network.add_flow(0, path);

    std::map<net::NodeId, std::unique_ptr<core::EzFlowAgent>> agents;
    if (ezflow) agents = core::install_ezflow(network, core::CaaConfig{});

    traffic::Sink sink(network);
    sink.attach_flow(0);
    BufferTracer tracer(network, {1}, 100 * util::kMillisecond);
    tracer.start();
    traffic::CbrSource source(network, 0, 1000, 2e6);
    source.activate(util::from_seconds(5), util::from_seconds(duration_s));
    network.run_until(util::from_seconds(duration_s));
    const double from = 0.4 * duration_s;
    WindowResult& window = cell.add_window(window_label);
    window.set("goodput_kbps", metric_point(sink.goodput_kbps(0, util::from_seconds(from),
                                                              util::from_seconds(duration_s))));
    window.set("b1", metric_point(tracer.mean_occupancy(1, util::from_seconds(from),
                                                        util::from_seconds(duration_s))));
}

FigureResult run_ablation_rtscts(const FigureContext& ctx)
{
    const double duration_s = 3000.0 * ctx.scale;
    FigureResult result = make_result(ctx);
    for (const double cs : {550.0, 250.0}) {
        RunResult& cell = result.add_cell(cs > 400 ? "CS ns-2 (550 m)" : "CS testbed (1-hop)");
        rtscts_run(ctx, cell, "802.11 basic", cs, false, false, duration_s);
        rtscts_run(ctx, cell, "802.11 + RTS/CTS", cs, true, false, duration_s);
        rtscts_run(ctx, cell, "EZ-flow (no RTS)", cs, false, true, duration_s);
    }
    return result;
}

// -- ablation_sample_window: CAA decision window sweep -------------------

FigureResult run_ablation_sample_window(const FigureContext& ctx)
{
    const double duration_s = 6000.0 * ctx.scale;
    FigureResult result = make_result(ctx);
    RunResult& cell = result.add_cell("4-hop + joining flow");
    for (const int sample_window : {5, 20, 50, 200, 1000}) {
        ExperimentOptions options;
        options.mode = Mode::kEzFlow;
        options.caa.sample_window = sample_window;
        // F2 joins for the middle third of the run.
        net::Scenario scenario = net::make_testbed(5.0, duration_s, duration_s / 3.0,
                                                   2.0 * duration_s / 3.0, ctx.seed);
        Experiment exp(std::move(scenario), options);
        exp.run_until_s(duration_s);
        const double warmup = 0.15 * duration_s;
        const auto summary = exp.summarize(1, warmup, duration_s);
        const auto* agent = exp.agent(0);
        std::uint64_t changes = 0;
        if (agent != nullptr) {
            for (const auto& [succ, state] : agent->successors())
                changes += state->caa->increases() + state->caa->decreases();
        }
        WindowResult& window = cell.add_window("window " + std::to_string(sample_window));
        window.set("b1", metric_point(exp.buffers().mean_occupancy(
                       1, util::from_seconds(warmup), util::from_seconds(duration_s))));
        window.set("goodput_kbps", metric_point(summary.mean_kbps));
        window.set("delay_s", metric_point(summary.mean_delay_s));
        window.set("cw_changes", metric_point(static_cast<double>(changes)));
    }
    return result;
}

// -- ablation_sniff_loss: robustness of the BOE to missed sniffs ---------

FigureResult run_ablation_sniff_loss(const FigureContext& ctx)
{
    const double duration_s = 6000.0 * ctx.scale;
    FigureResult result = make_result(ctx);
    RunResult& cell = result.add_cell("4-hop chain / EZ-flow");
    for (const double loss : {0.0, 0.5, 0.8, 0.95}) {
        ExperimentOptions options;
        options.mode = Mode::kEzFlow;
        options.boe_sniff_loss = loss;
        Experiment exp(net::make_line(4, duration_s, ctx.seed), options);
        exp.run();
        const double warmup = 0.4 * duration_s;
        const auto summary = exp.summarize(0, warmup, duration_s);
        const auto* agent = exp.agent(0);
        WindowResult& window = cell.add_window("loss " + util::Table::num(loss, 2));
        window.set("b1", metric_point(exp.buffers().mean_occupancy(
                       1, util::from_seconds(warmup), util::from_seconds(duration_s + 5))));
        window.set("goodput_kbps", metric_point(summary.mean_kbps));
        window.set("delay_s", metric_point(summary.mean_delay_s));
        window.set("source_cw", metric_point(agent != nullptr ? agent->cw_toward(1) : -1));
    }
    return result;
}

// -- ablation_thresholds: bmin/bmax sensitivity --------------------------

FigureResult run_ablation_thresholds(const FigureContext& ctx)
{
    const double duration_s = 600.0 * ctx.scale * 10.0;  // default scale 0.1 -> 600 s
    FigureResult result = make_result(ctx);
    for (const double bmin : {0.05, 0.5, 2.0}) {
        RunResult& cell = result.add_cell("bmin " + util::Table::num(bmin, 2));
        for (const double bmax : {10.0, 20.0, 40.0}) {
            ExperimentOptions options;
            options.mode = Mode::kEzFlow;
            options.caa.bmin = bmin;
            options.caa.bmax = bmax;
            Experiment exp(net::make_line(4, duration_s, ctx.seed), options);
            exp.run();
            const double warmup = 0.4 * duration_s;
            const auto summary = exp.summarize(0, warmup, duration_s);
            WindowResult& window = cell.add_window("bmax " + util::Table::num(bmax, 0));
            window.set("b1", metric_point(exp.buffers().mean_occupancy(
                           1, util::from_seconds(warmup), util::from_seconds(duration_s + 5))));
            window.set("goodput_kbps", metric_point(summary.mean_kbps));
            window.set("delay_s", metric_point(summary.mean_delay_s));
        }
    }
    return result;
}

}  // namespace

void register_ablation_figures()
{
    FigureRegistry& registry = FigureRegistry::instance();
    registry.add(FigureSpec{
        "ablation_pacer", "", "ablation", "CWmin control vs routing-layer rate pacing",
        "Conclusion — the pacing variant for dense neighbourhoods",
        "Both EZ-flow variants drain the first relay's MAC buffer that plain 802.11 saturates; "
        "the paced variant keeps its backlog in the routing layer without touching the MAC.",
        0.1, 1, 0.02, 1, run_ablation_pacer});
    registry.add(FigureSpec{
        "ablation_penalty_q", "", "ablation", "static penalty of [9] vs self-tuning EZ-Flow",
        "Sec. 2.3 — q is topology-dependent; EZ-flow discovers it online",
        "No single q works everywhere — q = 1 saturates relays, very small q wastes capacity "
        "on short chains. EZ-flow matches the best static q per topology without knowing it.",
        0.1, 1, 0.015, 1, run_ablation_penalty_q});
    registry.add(FigureSpec{
        "ablation_phy_capture", "", "ablation", "capture threshold vs the Fig. 1 dichotomy",
        "modelling ablation — why SIR capture is required to reproduce the paper",
        "With 10 dB capture, 3-hop stays drained while 4-hop's first relay saturates. With "
        "capture disabled the structure degrades and congestion appears in the wrong places.",
        0.1, 1, 0.03, 1, run_ablation_phy_capture});
    registry.add(FigureSpec{
        "ablation_rtscts", "", "ablation", "is RTS/CTS an alternative to EZ-Flow?",
        "Sec. 5.1 — the paper disables RTS/CTS; EZ-flow attacks the cause instead",
        "Under 550 m carrier sense the handshake only costs airtime. Under 1-hop sensing it "
        "softens hidden-terminal losses but does not drain the relay buffers; EZ-flow does.",
        0.1, 1, 0.02, 1, run_ablation_rtscts});
    registry.add(FigureSpec{
        "ablation_sample_window", "", "ablation", "CAA decision window sweep",
        "Sec. 3.3 / Alg. 1 — decisions every 50 BOE samples",
        "Tiny windows over-react (more cw churn for no gain); huge windows adapt sluggishly "
        "when the second flow joins. The paper's 50 sits in the flat middle.",
        0.1, 1, 0.015, 1, run_ablation_sample_window});
    registry.add(FigureSpec{
        "ablation_sniff_loss", "", "ablation", "EZ-Flow under missed sniffs",
        "Sec. 3.2 — robustness to forwarded packets that are not overheard",
        "Stabilization persists across the sweep — the relay buffer stays drained and goodput "
        "flat even when 95% of sniffs are lost; only the convergence time stretches.",
        0.1, 1, 0.02, 1, run_ablation_sniff_loss});
    registry.add(FigureSpec{
        "ablation_thresholds", "", "ablation", "bmin/bmax sensitivity on the 4-hop chain",
        "Sec. 3.3 — small bmin is essential; bmax trades reactivity for calm",
        "The paper's (0.05, 20) keeps the relay drained at full goodput. Large bmin makes "
        "nodes regain aggressiveness too easily; the bmax choice matters much less.",
        0.1, 1, 0.02, 1, run_ablation_thresholds});
}

}  // namespace ezflow::cli

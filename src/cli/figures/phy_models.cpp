// The pluggable-PHY figure family: what the interference-accurate models
// add beyond the paper's binary-range reference. `fading` drives the
// 4-hop chain through Jakes/Rayleigh fading over the cumulative-SINR
// ledger; `rate_adapt` puts Minstrel rate adaptation on a noisy 2-hop
// relay at growing hop distances, where the per-rate SNR decode floors
// turn link distance into a rate ladder.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cli/figures.h"
#include "cli/figures_common.h"
#include "core/pacer.h"
#include "net/topologies.h"
#include "phy/channel.h"
#include "phy/rate_manager.h"
#include "traffic/sink.h"
#include "traffic/source.h"
#include "util/table.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

// -- fading: Rayleigh outage on the 4-hop chain --------------------------

FigureResult run_fading(const FigureContext& ctx)
{
    const double duration_s = 1500.0 * ctx.scale;
    // Noise floor such that the 200 m links run at ~22 dB mean SNR: only
    // deep fades (|h|^2 < ~0.06, about 6% of frames) drop below the 10 dB
    // ledger threshold, so outage — not the mean — is what doppler adds.
    const double noise_w = ctx.extra_double("noise", 4e-12);
    FigureResult result = make_result(ctx);
    const std::vector<SweepWindow> windows = {
        SweepWindow{"settled", 0.3 * duration_s, duration_s, {0}}};
    for (const double doppler_hz : {0.0, 2.5, 10.0}) {
        ScenarioSpec spec = ScenarioSpec::line(4, duration_s);
        spec.models.propagation = phy::PhyModelConfig::Propagation::kJakes;
        spec.models.interference = phy::PhyModelConfig::Interference::kSinrLedger;
        spec.models.jakes_doppler_hz = doppler_hz;
        spec.models.noise_floor_w = noise_w;
        const auto sweeps =
            sweep_modes(ctx, spec, {Mode::kBaseline80211, Mode::kEzFlow}, windows);
        for (const SweepResult& sweep : sweeps) {
            RunResult cell = run_result_from_sweep(sweep, windows);
            cell.label = "doppler " + util::Table::num(doppler_hz, 1) + " Hz / " + cell.label;
            result.cells.push_back(std::move(cell));
        }
    }
    return result;
}

// -- rate_adapt: Minstrel vs fixed rate on a noisy 2-hop relay -----------

void rate_adapt_run(const FigureContext& ctx, RunResult& cell, double hop_m, bool minstrel,
                    bool ezflow, double duration_s)
{
    net::Network::Config config = net::default_config(ctx.seed);
    // SINR ledger with the per-rate decode floors as the only thresholds:
    // with a 6e-11 W noise floor the DSSS ladder binds by distance —
    // 11 Mb/s decodes to ~170 m, 5.5 Mb/s to ~202 m, 2 Mb/s to ~240 m,
    // 1 Mb/s to the 250 m delivery range.
    config.phy.capture_threshold_db = 0.0;
    config.phy.noise_floor_w = 6e-11;
    config.models.interference = phy::PhyModelConfig::Interference::kSinrLedger;
    if (minstrel) config.models.rate = phy::PhyModelConfig::Rate::kMinstrel;
    net::Network network(config);
    std::vector<net::NodeId> path;
    for (int i = 0; i < 3; ++i) path.push_back(network.add_node({hop_m * i, 0.0}));
    network.add_flow(0, path);

    std::map<net::NodeId, std::unique_ptr<core::EzFlowAgent>> agents;
    if (ezflow) agents = core::install_ezflow(network, core::CaaConfig{});

    traffic::Sink sink(network);
    sink.attach_flow(0);
    BufferTracer tracer(network, {1}, 100 * util::kMillisecond);
    tracer.start();
    traffic::CbrSource source(network, 0, 1000, 4e6);
    source.activate(util::from_seconds(5), util::from_seconds(duration_s));
    network.run_until(util::from_seconds(duration_s));

    const double from = 0.4 * duration_s;
    WindowResult& window = cell.add_window("hop " + util::Table::num(hop_m, 0) + " m");
    window.set("goodput_kbps", metric_point(sink.goodput_kbps(0, util::from_seconds(from),
                                                              util::from_seconds(duration_s))));
    window.set("b1", metric_point(tracer.mean_occupancy(1, util::from_seconds(from),
                                                        util::from_seconds(duration_s))));
    auto* manager = dynamic_cast<phy::MinstrelRate*>(network.channel().rate_manager());
    window.set("rate_0_1_mbps",
               metric_point(manager != nullptr
                                ? static_cast<double>(manager->best_rate_bps(0, 1)) / 1e6
                                : static_cast<double>(network.config().phy.bitrate_bps) / 1e6));
}

FigureResult run_rate_adapt(const FigureContext& ctx)
{
    const double duration_s = 1800.0 * ctx.scale;
    FigureResult result = make_result(ctx);
    struct Variant {
        const char* label;
        bool minstrel;
        bool ezflow;
    };
    for (const Variant v : {Variant{"802.11 / fixed 1 Mb/s", false, false},
                            Variant{"802.11 / minstrel", true, false},
                            Variant{"EZ-flow / minstrel", true, true}}) {
        RunResult& cell = result.add_cell(v.label);
        for (const double hop_m : {150.0, 190.0, 230.0})
            rate_adapt_run(ctx, cell, hop_m, v.minstrel, v.ezflow, duration_s);
    }
    return result;
}

}  // namespace

void register_phy_model_figures()
{
    FigureRegistry& registry = FigureRegistry::instance();
    registry.add(FigureSpec{
        "fading", "", "figure", "Rayleigh fading outage on the 4-hop chain",
        "PHY-model extension — Jakes fading over the cumulative-SINR ledger",
        "Doppler 0 matches the clean chain; at 2.5 and 10 Hz deep fades corrupt ~6% of frames "
        "per link, retransmissions grow and goodput sags — while EZ-flow keeps the relay "
        "buffers bounded under the extra churn. Extra flags: --noise.",
        0.1, 2, 0.03, 2, run_fading});
    registry.add(FigureSpec{
        "rate_adapt", "", "figure", "Minstrel rate adaptation vs hop distance",
        "PHY-model extension — per-rate SNR decode floors + Minstrel probing",
        "At 150 m Minstrel settles at 11 Mb/s and multiplies goodput over the fixed-rate "
        "baseline; at 190 m it drops to 5.5, at 230 m to 2 — degrading gracefully to the "
        "fixed baseline as distance eats the SNR margin.",
        0.1, 1, 0.03, 1, run_rate_adapt});
}

}  // namespace ezflow::cli

// The A-MPDU aggregation family: the grid_gateway convergecast workload
// re-run at TXOP batch sizes K = 1, 4, 16, with and without EZ-Flow.
// K=1 is the legacy one-MSDU-per-frame MAC (bit-identical to the
// grid_gateway figure); K>1 engages the block-ack scoreboard, selective
// retransmit, and the receiver reorder buffer, amortising one
// DIFS/backoff/BA exchange over a whole batch.

#include <vector>

#include "cli/figures.h"
#include "cli/figures_common.h"
#include "net/topo_gen.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

std::vector<int> gateway_flow_ids(int sources)
{
    std::vector<int> ids;
    for (int f = 1; f <= sources; ++f) ids.push_back(f);
    return ids;
}

FigureResult run_ampdu(const FigureContext& ctx)
{
    net::GridSpec grid;
    grid.cols = ctx.extra_int("cols", 5);
    grid.rows = ctx.extra_int("rows", 5);
    grid.sources = ctx.extra_int("sources", 4);
    grid.spacing_m = ctx.extra_double("spacing", grid.spacing_m);
    grid.cs_range_m = ctx.extra_double("cs-range", 0.0);
    grid.interference_range_m = ctx.extra_double("interference-range", 0.0);
    grid.duration_s = ctx.extra_double("duration", 120.0 * ctx.scale);
    const std::vector<SweepWindow> windows = {
        SweepWindow{"settled", grid.start_s + 0.3 * grid.duration_s,
                    grid.start_s + grid.duration_s, gateway_flow_ids(grid.sources)}};

    FigureResult result = make_result(ctx);
    for (const int k : {1, 4, 16}) {
        ScenarioSpec spec = ScenarioSpec::grid_gateway(grid);
        spec.ampdu_max_mpdus = k;
        // Cell labels stay distinct per batch size: scenario_name appends
        // "-k<K>" for K > 1, so the K=1 cells keep the legacy labels.
        const auto sweeps =
            sweep_modes(ctx, spec, {Mode::kBaseline80211, Mode::kEzFlow}, windows);
        for (const SweepResult& sweep : sweeps)
            result.cells.push_back(run_result_from_sweep(sweep, windows));
    }
    return result;
}

}  // namespace

void register_ampdu_figures()
{
    FigureRegistry& registry = FigureRegistry::instance();
    registry.add(FigureSpec{
        "ampdu", "", "figure",
        "gateway convergecast at A-MPDU batch sizes K = 1, 4, 16",
        "802.11n-style frame aggregation applied to the EZ-flow relay workload",
        "Aggregation amortises contention overhead: aggregate throughput rises with K while "
        "per-packet airtime falls. EZ-flow's sniff-based control keeps working — the monitor "
        "radio sees every MSDU inside a batch — so fairness holds at every K. Extra flags: "
        "--cols, --rows, --sources, --spacing, --cs-range, --duration.",
        1.0, 2, 0.1, 2, run_ampdu});
}

}  // namespace ezflow::cli

// Testbed figures (Fig. 4, Tables 1-2): the 9-router deployment of
// Fig. 3 with the 7-hop flow F1 and the 4-hop flow F2.

#include "cli/figures.h"
#include "cli/figures_common.h"
#include "net/topologies.h"
#include "traffic/sink.h"
#include "traffic/source.h"

namespace ezflow::cli {

namespace {

using namespace ezflow::analysis;

struct FlowCase {
    const char* name;
    int flow_id;
    std::vector<int> relays;  ///< labels of the relay nodes the paper plots
};

void fig04_case(const FigureContext& ctx, FigureResult& result, const FlowCase& fc, Mode mode)
{
    const double duration_s = 2000.0 * ctx.scale;
    // Activate only the flow under test (the other gets a null window).
    const bool is_f1 = fc.flow_id == 1;
    net::Scenario scenario =
        net::make_testbed(is_f1 ? 5.0 : duration_s, is_f1 ? duration_s : duration_s + 0.001,
                          is_f1 ? duration_s : 5.0, is_f1 ? duration_s + 0.001 : duration_s,
                          ctx.seed);
    ExperimentOptions options;
    options.mode = mode;
    options.caa.max_cw = 1 << 10;  // MadWifi hardware limit (Sec. 4.1)
    Experiment exp(std::move(scenario), options);
    exp.run_until_s(duration_s);

    RunResult& cell = result.add_cell(std::string(fc.name) + " / " + mode_name(mode));
    WindowResult& window = cell.add_window("settled");
    const double warmup = 0.25 * duration_s;
    std::vector<std::pair<std::string, const util::TimeSeries*>> series;
    for (int n : fc.relays) {
        const std::string prefix = "N" + std::to_string(n);
        window.set(prefix + ".buf_mean",
                   metric_point(exp.buffers().mean_occupancy(n, util::from_seconds(warmup),
                                                             util::from_seconds(duration_s))));
        window.set(prefix + ".buf_max", metric_point(exp.buffers().max_occupancy(n)));
        series.emplace_back(prefix, &exp.buffers().trace(n));
    }
    window.set("goodput_kbps",
               metric_point(exp.summarize(fc.flow_id, warmup, duration_s).mean_kbps));
    if (mode == Mode::kEzFlow) {
        const auto& path = exp.scenario().flows[static_cast<std::size_t>(fc.flow_id - 1)].path;
        if (const auto* src = exp.agent(path[0]))
            window.set("source_cw", metric_point(src->cw_toward(path[1])));
    }
    maybe_dump_series(ctx,
                      std::string("fig04_") + fc.name + "_" +
                          (mode == Mode::kEzFlow ? "ezflow" : "80211"),
                      series);
}

FigureResult run_fig04(const FigureContext& ctx)
{
    FigureResult result = make_result(ctx);
    const FlowCase f1{"F1", 1, {1, 2, 3}};
    const FlowCase f2{"F2", 2, {4, 5, 6}};
    for (const FlowCase& fc : {f1, f2}) {
        fig04_case(ctx, result, fc, Mode::kBaseline80211);
        fig04_case(ctx, result, fc, Mode::kEzFlow);
    }
    return result;
}

double measure_link(const FigureContext& ctx, int link, double duration_s)
{
    // A 1-hop network with the link's loss rate applied.
    net::Network net(net::testbed_config(ctx.seed + static_cast<std::uint64_t>(link)));
    const auto tx = net.add_node({0, 0});
    const auto rx = net.add_node({200, 0});
    net.add_flow(0, {tx, rx});
    net.channel().set_link_loss(tx, rx, net::testbed_link_loss()[static_cast<std::size_t>(link)]);
    traffic::Sink sink(net);
    sink.attach_flow(0);
    traffic::CbrSource source(net, 0, 1000, 2e6);
    source.activate(0, util::from_seconds(duration_s));
    net.run_until(util::from_seconds(duration_s));
    return sink.goodput_kbps(0, util::from_seconds(duration_s * 0.05),
                             util::from_seconds(duration_s));
}

FigureResult run_table1(const FigureContext& ctx)
{
    const double duration_s = 1200.0 * ctx.scale;
    FigureResult result = make_result(ctx);
    RunResult& cell = result.add_cell("per-link capacity");
    WindowResult& window = cell.add_window("isolation");
    for (int l = 0; l < 7; ++l)
        window.set("l" + std::to_string(l) + ".kbps",
                   metric_point(measure_link(ctx, l, duration_s)));
    return result;
}

void table2_config(const FigureContext& ctx, FigureResult& result, bool f1_active, bool f2_active,
                   Mode mode, double duration_s)
{
    // Disabled flows get a zero-length window after the measured horizon.
    const double off = duration_s + 1.0;
    net::Scenario scenario = net::make_testbed(
        f1_active ? 5.0 : off, f1_active ? duration_s : off + 0.001, f2_active ? 5.0 : off,
        f2_active ? duration_s : off + 0.001, ctx.seed);
    ExperimentOptions options;
    options.mode = mode;
    options.caa.max_cw = 1 << 10;  // testbed hardware cap
    Experiment exp(std::move(scenario), options);
    exp.run_until_s(duration_s);

    const double warmup = 0.2 * duration_s;
    std::string label = f1_active && f2_active ? "both" : (f1_active ? "F1 alone" : "F2 alone");
    RunResult& cell = result.add_cell(label + " / " + mode_name(mode));
    WindowResult& window = cell.add_window("settled");
    if (f1_active) {
        const auto s = exp.summarize(1, warmup, duration_s);
        window.set("F1.kbps", metric_point(s.mean_kbps));
        window.set("F1.kbps_sd", metric_point(s.stddev_kbps));
    }
    if (f2_active) {
        const auto s = exp.summarize(2, warmup, duration_s);
        window.set("F2.kbps", metric_point(s.mean_kbps));
        window.set("F2.kbps_sd", metric_point(s.stddev_kbps));
    }
    if (f1_active && f2_active)
        window.set("fairness", metric_point(exp.fairness({1, 2}, warmup, duration_s)));
}

FigureResult run_table2(const FigureContext& ctx)
{
    const double duration_s = 1800.0 * ctx.scale;
    FigureResult result = make_result(ctx);
    for (const Mode mode : {Mode::kBaseline80211, Mode::kEzFlow}) {
        table2_config(ctx, result, true, false, mode, duration_s);
        table2_config(ctx, result, false, true, mode, duration_s);
        table2_config(ctx, result, true, true, mode, duration_s);
    }
    return result;
}

}  // namespace

void register_testbed_figures()
{
    FigureRegistry& registry = FigureRegistry::instance();
    registry.add(FigureSpec{
        "fig04", "fig04_testbed_buffers", "figure",
        "testbed relay buffers with/without EZ-Flow",
        "Fig. 4 — 802.11: ~42-44 pkts at N1/N2 (F1) and N4 (F2); EZ-flow: 29.5 / 5.2 / 5.3",
        "Under 802.11 the relays before the bottleneck saturate (F1: N1, N2 at the l2 "
        "bottleneck; F2: N4). EZ-flow drains them by an order of magnitude; F1's N1 stays "
        "partially loaded because the 2^10 cw cap limits the source's self-throttling.",
        0.1, 1, 0.03, 1, run_fig04});
    registry.add(FigureSpec{
        "table1", "table1_link_capacity", "table",
        "per-link capacity of flow F1's links",
        "Table 1 — l2 is the bottleneck at ~408 kb/s",
        "l0 fastest (~845 kb/s at 1 Mb/s PHY), l2 the bottleneck around half of that, the "
        "remaining links in between.",
        0.1, 1, 0.05, 1, run_table1});
    registry.add(FigureSpec{
        "table2", "table2_testbed", "table",
        "testbed throughput / stddev / fairness",
        "Table 2 — 802.11: (7, 143) FI 0.55 together; EZ-flow: (71, 110) FI 0.96",
        "Alone, each flow gains ~20% with EZ-flow. Together, 802.11 starves the long flow F1 "
        "(low FI); EZ-flow restores both flows to comparable rates and pushes FI toward 1.",
        0.15, 1, 0.03, 1, run_table2});
}

}  // namespace ezflow::cli

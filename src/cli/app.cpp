#include "cli/app.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "analysis/result_diff.h"
#include "analysis/sweep.h"
#include "cli/registry.h"
#include "util/cli.h"
#include "util/table.h"

namespace ezflow::cli {

namespace {

namespace fs = std::filesystem;

int usage(const char* message = nullptr)
{
    if (message != nullptr) std::fprintf(stderr, "ezflow: %s\n\n", message);
    std::printf(
        "usage: ezflow <command> [args]\n"
        "\n"
        "  list  [--category=figure|table|ablation|example|micro]\n"
        "        enumerate the registered scenarios/figures\n"
        "  run   <figure...> [--scale=F] [--seed=N] [--seeds=K] [--threads=T]\n"
        "        [--shards=S] [--streaming] [--out=DIR] [--csv=DIR] [--smoke] [--all]\n"
        "        [--json-only] [--quiet]\n"
        "        run figures; with --out, write <out>/<figure>.json (+ .csv)\n"
        "        --smoke uses each figure's canned fast grid (the goldens grid)\n"
        "  sweep <figure...> --grid=axis=v1:v2[,axis=...] [run flags]\n"
        "        cross-product sweep over axes scale, seeds, seed, threads, shards\n"
        "  diff  <golden> <candidate> [--rel-tol=R] [--abs-tol=A] [--bit-exact]\n"
        "        compare result JSON files (or directories of them); exit 1 on drift\n"
        "  help  show this text\n"
        "\n"
        "Former bench/example binaries map 1:1 onto registered names; see `ezflow list`.\n");
    return message == nullptr ? 0 : 2;
}

/// The flags every run-like command understands; everything else is kept
/// as a figure-specific extra.
struct RunFlags {
    double scale = -1.0;  ///< <0: use the spec default
    std::uint64_t seed = 7;
    int seeds = -1;  ///< <0: use the spec default
    int threads = 0;
    int shards = 0;  ///< 0: keep each figure's default shard budget
    bool streaming = false;
    std::string out_dir;
    std::string csv_dir;
    bool smoke = false;
    bool all = false;
    bool json_only = false;
    bool quiet = false;
    std::map<std::string, std::string> extra;
};

/// Throws std::invalid_argument (caught by the command dispatchers and
/// turned into a usage error) on malformed numeric flag values.
RunFlags parse_run_flags(const util::Cli& cli)
{
    RunFlags flags;
    flags.scale = cli.get_double("scale", -1.0);
    const std::string seed_text = cli.get("seed", "7");
    if (seed_text.empty() || seed_text[0] == '-')  // stoull would silently wrap negatives
        throw std::invalid_argument("seed");
    flags.seed = std::stoull(seed_text);  // full 64-bit seed range
    flags.seeds = cli.get_int("seeds", -1);
    flags.threads = cli.get_int("threads", 0);
    flags.shards = cli.get_int("shards", 0);
    flags.streaming = cli.get_bool("streaming", false);
    flags.out_dir = cli.get("out", "");
    flags.csv_dir = cli.get("csv", "");
    flags.smoke = cli.get_bool("smoke", false);
    flags.all = cli.get_bool("all", false);
    flags.json_only = cli.get_bool("json-only", false);
    flags.quiet = cli.get_bool("quiet", false);
    // Anything not claimed above rides along as a figure-specific knob
    // (e.g. quickstart's --hops), exposed via FigureContext::extra.
    static const std::set<std::string> known = {"scale", "seed",      "seeds", "threads",
                                               "shards", "streaming",
                                               "out",   "csv",       "smoke", "all",
                                               "grid",  "json-only", "quiet", "rel-tol",
                                               "abs-tol", "bit-exact", "category"};
    for (const auto& [name, value] : cli.flags())
        if (known.count(name) == 0) flags.extra[name] = value;
    return flags;
}

FigureContext make_context(const FigureSpec& spec, const RunFlags& flags)
{
    FigureContext ctx;
    ctx.spec = &spec;
    // An explicit flag always wins; --smoke only replaces the defaults.
    ctx.scale = flags.scale > 0 ? flags.scale
                                : (flags.smoke ? spec.smoke_scale : spec.default_scale);
    ctx.seed = flags.seed;
    ctx.seeds = flags.seeds > 0 ? flags.seeds
                                : (flags.smoke ? spec.smoke_seeds : spec.default_seeds);
    ctx.threads = flags.threads;
    ctx.shards = flags.shards;
    ctx.streaming = flags.streaming;
    ctx.csv_dir = flags.csv_dir;
    ctx.extra = flags.extra;
    return ctx;
}

/// Format "mean +/-ci" with a precision that adapts to the magnitude.
std::string format_stat(const analysis::MetricStat& stat)
{
    std::ostringstream os;
    os.precision(4);
    os << stat.mean;
    if (stat.n > 1 && stat.ci95 > 0) {
        os << " +/-";
        os.precision(3);
        os << stat.ci95;
    }
    return os.str();
}

/// Generic human-readable report: one table per cell, metrics as rows and
/// windows as columns (the transpose of most of the former printf
/// tables, but uniform across every figure).
void print_report(const FigureSpec& spec, const analysis::FigureResult& result)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", spec.name.c_str(), spec.title.c_str());
    if (!spec.paper_ref.empty()) std::printf("(reproduces %s)\n", spec.paper_ref.c_str());
    std::printf("==============================================================\n");
    for (const analysis::RunResult& cell : result.cells) {
        std::printf("\n%s:\n", cell.label.c_str());
        std::vector<std::string> header = {"metric"};
        for (const analysis::WindowResult& window : cell.windows) header.push_back(window.label);
        util::Table table(header);
        // Metric rows in first-appearance order across windows.
        std::vector<std::string> names;
        for (const analysis::WindowResult& window : cell.windows)
            for (const auto& [name, stat] : window.metrics)
                if (std::find(names.begin(), names.end(), name) == names.end())
                    names.push_back(name);
        for (const std::string& name : names) {
            std::vector<std::string> row = {name};
            for (const analysis::WindowResult& window : cell.windows) {
                const analysis::MetricStat* stat = window.find(name);
                row.push_back(stat != nullptr ? format_stat(*stat) : "-");
            }
            table.add_row(row);
        }
        std::printf("%s", table.to_string().c_str());
    }
    std::printf("[run] scale %g, seed %llu, %d seed(s)\n", result.scale,
                static_cast<unsigned long long>(result.seed), result.seeds);
    if (!spec.expectation.empty()) std::printf("\nExpected shape: %s\n", spec.expectation.c_str());
}

/// "1234567" -> "1.23M"-style compact magnitude for the perf report. The
/// unit thresholds sit at 999.5 so 3-significant-digit rounding can never
/// produce "1e+03k": anything that would round to 1000 uses the next unit.
std::string format_magnitude(double value)
{
    const char* suffix = "";
    if (value >= 999.5e9) {
        value /= 1e12;
        suffix = "T";
    } else if (value >= 999.5e6) {
        value /= 1e9;
        suffix = "G";
    } else if (value >= 999.5e3) {
        value /= 1e6;
        suffix = "M";
    } else if (value >= 999.5) {
        value /= 1e3;
        suffix = "k";
    }
    std::ostringstream os;
    os.precision(3);
    os << value << suffix;
    return os.str();
}

/// Wall-time/event-rate line for one figure run. Reported to the console
/// only — the result JSON stays byte-deterministic across thread counts
/// and machines.
void print_perf(const FigureSpec& spec, const analysis::PerfTotals& before)
{
    const analysis::PerfTotals now = analysis::perf_totals();
    const std::uint64_t events = now.events - before.events;
    const std::uint64_t runs = now.runs - before.runs;
    const double wall = now.wall_seconds - before.wall_seconds;
    if (runs == 0 || wall <= 0.0) return;
    std::printf("[perf] %s: %.2f s wall, %s events, %s events/s (%llu run%s)\n",
                spec.name.c_str(), wall, format_magnitude(static_cast<double>(events)).c_str(),
                format_magnitude(static_cast<double>(events) / wall).c_str(),
                static_cast<unsigned long long>(runs), runs == 1 ? "" : "s");
    if (now.shards > 1) {
        std::string per_shard;
        for (std::size_t s = 0; s < now.shard_events.size(); ++s) {
            const std::uint64_t prior = s < before.shard_events.size() ? before.shard_events[s] : 0;
            if (!per_shard.empty()) per_shard += " ";
            per_shard += format_magnitude(static_cast<double>(now.shard_events[s] - prior));
        }
        if (now.shards > static_cast<int>(now.shard_events.size())) per_shard += " ...";
        std::printf("[perf] %s: %d shards, events/shard: %s\n", spec.name.c_str(), now.shards,
                    per_shard.c_str());
    }
}

bool write_file(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
    out.flush();
    if (!out) {
        std::fprintf(stderr, "ezflow: failed to write %s\n", path.c_str());
        return false;
    }
    return true;
}

bool write_outputs(const RunFlags& flags, const analysis::FigureResult& result)
{
    if (flags.out_dir.empty()) return true;
    fs::create_directories(flags.out_dir);
    const std::string base = flags.out_dir + "/" + result.figure;
    if (!write_file(base + ".json", result.to_json().dump() + "\n")) return false;
    if (!flags.json_only && !write_file(base + ".csv", result.to_csv())) return false;
    if (!flags.quiet) std::printf("[out] wrote %s.json%s\n", base.c_str(),
                                  flags.json_only ? "" : " and .csv");
    return true;
}

std::vector<const FigureSpec*> resolve_figures(const std::vector<std::string>& names,
                                               bool all_runnable, std::string& error)
{
    FigureRegistry& registry = FigureRegistry::instance();
    std::vector<const FigureSpec*> specs;
    if (all_runnable) {
        for (const FigureSpec* spec : registry.list())
            if (spec->runnable()) specs.push_back(spec);
        return specs;
    }
    for (const std::string& name : names) {
        const FigureSpec* spec = registry.find(name);
        if (spec == nullptr) {
            error = "unknown figure '" + name + "' (see `ezflow list`)";
            return {};
        }
        if (!spec->runnable()) {
            error = "'" + name + "' is a standalone " + spec->category +
                    " harness; run build/bench/" + name + " directly";
            return {};
        }
        specs.push_back(spec);
    }
    return specs;
}

int cmd_list(const util::Cli& cli)
{
    register_builtin_figures();
    const std::string category = cli.get("category", "");
    util::Table table({"name", "category", "scale", "seeds", "title"});
    for (const FigureSpec* spec : FigureRegistry::instance().list()) {
        if (!category.empty() && spec->category != category) continue;
        table.add_row({spec->name + (spec->aka.empty() ? "" : " (" + spec->aka + ")"),
                       spec->category + (spec->runnable() ? "" : " [standalone]"),
                       util::Table::num(spec->default_scale, 2), std::to_string(spec->default_seeds),
                       spec->title});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("%zu entries. `ezflow run <name>` runs one; `ezflow help` for flags.\n",
                table.rows());
    return 0;
}

int run_one(const FigureSpec& spec, const RunFlags& flags)
{
    FigureContext ctx = make_context(spec, flags);
    try {
        if (!ctx.csv_dir.empty()) fs::create_directories(ctx.csv_dir);
        const analysis::PerfTotals perf_before = analysis::perf_totals();
        const analysis::FigureResult result = spec.run(ctx);
        for (const auto& [name, value] : ctx.extra) {
            if (ctx.extra_consumed.count(name) == 0)
                std::fprintf(stderr, "ezflow: warning: --%s is not used by figure '%s'\n",
                             name.c_str(), spec.name.c_str());
        }
        if (!flags.quiet) {
            print_report(spec, result);
            print_perf(spec, perf_before);
        }
        if (!write_outputs(flags, result)) return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ezflow: figure '%s' failed: %s\n", spec.name.c_str(), e.what());
        return 1;
    }
    return 0;
}

int cmd_run(const util::Cli& cli)
{
    register_builtin_figures();
    const RunFlags flags = parse_run_flags(cli);
    std::vector<std::string> names(cli.positional().begin() + 1, cli.positional().end());
    if (names.empty() && !flags.all) return usage("run: no figures given (or use --all)");
    std::string error;
    const auto specs = resolve_figures(names, flags.all, error);
    if (!error.empty()) return usage(error.c_str());
    int rc = 0;
    for (const FigureSpec* spec : specs) rc = std::max(rc, run_one(*spec, flags));
    return rc;
}

/// Parse "--grid=scale=0.02:0.05,seeds=2:4" into ordered (axis, values).
bool parse_grid(const std::string& grid,
                std::vector<std::pair<std::string, std::vector<std::string>>>& axes)
{
    std::stringstream all(grid);
    std::string axis_spec;
    while (std::getline(all, axis_spec, ',')) {
        const std::size_t eq = axis_spec.find('=');
        if (eq == std::string::npos) return false;
        const std::string axis = axis_spec.substr(0, eq);
        if (axis != "scale" && axis != "seeds" && axis != "seed" && axis != "threads" &&
            axis != "shards")
            return false;
        for (const auto& [existing, values] : axes)
            if (existing == axis) return false;  // a duplicate axis would clobber the first
        std::vector<std::string> values;
        std::stringstream vs(axis_spec.substr(eq + 1));
        std::string value;
        while (std::getline(vs, value, ':'))
            if (!value.empty()) values.push_back(value);
        if (values.empty()) return false;
        axes.emplace_back(axis, std::move(values));
    }
    return !axes.empty();
}

int cmd_sweep(const util::Cli& cli)
{
    register_builtin_figures();
    RunFlags flags = parse_run_flags(cli);
    std::vector<std::string> names(cli.positional().begin() + 1, cli.positional().end());
    if (names.empty() && !flags.all) return usage("sweep: no figures given (or use --all)");
    std::vector<std::pair<std::string, std::vector<std::string>>> axes;
    if (!parse_grid(cli.get("grid", ""), axes))
        return usage(
            "sweep: --grid=axis=v1:v2[,axis=...] with axes scale/seeds/seed/threads/shards");
    std::string error;
    const auto specs = resolve_figures(names, flags.all, error);
    if (!error.empty()) return usage(error.c_str());

    // Cross product, first axis slowest.
    std::vector<std::map<std::string, std::string>> points{{}};
    for (const auto& [axis, values] : axes) {
        std::vector<std::map<std::string, std::string>> next;
        for (const auto& point : points) {
            for (const std::string& value : values) {
                auto extended = point;
                extended[axis] = value;
                next.push_back(std::move(extended));
            }
        }
        points = std::move(next);
    }

    const std::string out_root = flags.out_dir;
    int rc = 0;
    for (const FigureSpec* spec : specs) {
        for (const auto& point : points) {
            RunFlags point_flags = flags;
            std::string suffix;
            for (const auto& [axis, value] : point) {
                suffix += "_" + axis + value;
                if (axis == "scale") point_flags.scale = std::stod(value);
                if (axis == "seeds") point_flags.seeds = std::stoi(value);
                if (axis == "seed") point_flags.seed = std::stoull(value);
                if (axis == "threads") point_flags.threads = std::stoi(value);
                if (axis == "shards") point_flags.shards = std::stoi(value);
            }
            if (!out_root.empty()) point_flags.out_dir = out_root + "/" + spec->name + suffix;
            if (!flags.quiet)
                std::printf("[sweep] %s%s\n", spec->name.c_str(), suffix.c_str());
            // With --out, per-point results go to files and the console
            // reports are suppressed; without it, printing is all there is.
            if (!out_root.empty()) point_flags.quiet = true;
            rc = std::max(rc, run_one(*spec, point_flags));
        }
    }
    return rc;
}

analysis::FigureResult load_result(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return analysis::FigureResult::from_json(util::Json::parse(buffer.str()));
}

int diff_files(const std::string& golden_path, const std::string& candidate_path,
               const analysis::DiffOptions& options)
{
    const analysis::FigureResult golden = load_result(golden_path);
    const analysis::FigureResult candidate = load_result(candidate_path);
    const analysis::DiffReport report = analysis::diff_results(golden, candidate, options);
    if (report.passed()) {
        std::printf("PASS %s (%d metrics within %s)\n", golden.figure.c_str(),
                    report.metrics_compared,
                    options.bit_exact
                        ? "bit-exact"
                        : ("rel " + util::Json::number_to_string(options.rel_tol)).c_str());
        return 0;
    }
    std::printf("FAIL %s: %zu finding(s)\n%s", golden.figure.c_str(), report.findings.size(),
                report.to_string().c_str());
    return 1;
}

int cmd_diff(const util::Cli& cli)
{
    if (cli.positional().size() != 3)
        return usage("diff: expected <golden> <candidate> (files or directories)");
    const std::string golden = cli.positional()[1];
    const std::string candidate = cli.positional()[2];
    analysis::DiffOptions options;
    options.rel_tol = cli.get_double("rel-tol", options.rel_tol);
    options.abs_tol = cli.get_double("abs-tol", options.abs_tol);
    options.bit_exact = cli.get_bool("bit-exact", false);

    try {
        if (!fs::is_directory(golden))
            return diff_files(golden, candidate, options);
        // Directory mode: every golden *.json must have a passing partner.
        std::vector<std::string> names;
        for (const auto& entry : fs::directory_iterator(golden))
            if (entry.path().extension() == ".json") names.push_back(entry.path().filename());
        std::sort(names.begin(), names.end());
        if (names.empty()) return usage("diff: no *.json files in golden directory");
        int rc = 0;
        for (const std::string& name : names) {
            const std::string candidate_path = candidate + "/" + name;
            if (!fs::exists(candidate_path)) {
                std::printf("FAIL %s: missing from %s\n", name.c_str(), candidate.c_str());
                rc = 1;
                continue;
            }
            rc = std::max(rc, diff_files(golden + "/" + name, candidate_path, options));
        }
        // Candidate-only results are failures too: a new figure must be
        // pinned by committing its golden, not slip past the gate.
        for (const auto& entry : fs::directory_iterator(candidate)) {
            const std::string name = entry.path().filename();
            if (entry.path().extension() == ".json" &&
                std::find(names.begin(), names.end(), name) == names.end()) {
                std::printf("FAIL %s: no golden for it (regenerate goldens?)\n", name.c_str());
                rc = 1;
            }
        }
        return rc;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ezflow: diff failed: %s\n", e.what());
        return 2;
    }
}

}  // namespace

int run_app(int argc, char** argv)
{
    const util::Cli cli(argc, argv);
    if (cli.positional().empty()) return usage("missing command");
    const std::string& command = cli.positional().front();
    try {
        if (command == "list") return cmd_list(cli);
        if (command == "run") return cmd_run(cli);
        if (command == "sweep") return cmd_sweep(cli);
        if (command == "diff") return cmd_diff(cli);
    } catch (const std::invalid_argument&) {
        return usage("malformed numeric flag value");
    } catch (const std::out_of_range&) {
        return usage("numeric flag value out of range");
    }
    if (command == "help" || command == "--help") return usage();
    return usage(("unknown command '" + command + "'").c_str());
}

int run_figure_main(const std::string& name, int argc, char** argv)
{
    register_builtin_figures();
    const FigureSpec* spec = FigureRegistry::instance().find(name);
    if (spec == nullptr || !spec->runnable()) {
        std::fprintf(stderr, "ezflow: figure '%s' is not registered\n", name.c_str());
        return 2;
    }
    const util::Cli cli(argc, argv);
    try {
        return run_one(*spec, parse_run_flags(cli));
    } catch (const std::invalid_argument&) {
        return usage("malformed numeric flag value");
    } catch (const std::out_of_range&) {
        return usage("numeric flag value out of range");
    }
}

}  // namespace ezflow::cli

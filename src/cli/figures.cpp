#include "cli/figures.h"

#include "cli/registry.h"

namespace ezflow::cli {

void register_micro_entries()
{
    FigureRegistry& registry = FigureRegistry::instance();
    // The micro benchmarks are google-benchmark harnesses with their own
    // flag surface (--benchmark_filter etc.); they are listed here for
    // discoverability but stay standalone binaries under build/bench/.
    registry.add(FigureSpec{
        "micro_core", "", "micro", "google-benchmark microbenchmarks of the core hot paths",
        "run build/bench/micro_core directly", "", 1.0, 1, 1.0, 1, nullptr});
    registry.add(FigureSpec{
        "micro_scheduler", "", "micro",
        "google-benchmark microbenchmarks of the event scheduler",
        "run build/bench/micro_scheduler directly", "", 1.0, 1, 1.0, 1, nullptr});
}

void register_builtin_figures()
{
    static const bool registered = [] {
        register_chain_figures();
        register_testbed_figures();
        register_scenario1_figures();
        register_scenario2_figures();
        register_model_figures();
        register_grid_figures();
        register_ampdu_figures();
        register_failover_figures();
        register_phy_model_figures();
        register_ablation_figures();
        register_example_figures();
        register_micro_entries();
        return true;
    }();
    (void)registered;
}

}  // namespace ezflow::cli

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/result.h"

namespace ezflow::cli {

struct FigureSpec;

/// Everything a registered figure runner needs for one invocation:
/// the resolved knobs (scale/seed/seeds/threads already defaulted from
/// the spec) plus any extra `--name=value` flags the caller passed
/// through (for figure-specific knobs like quickstart's --hops).
struct FigureContext {
    const FigureSpec* spec = nullptr;
    double scale = 1.0;
    std::uint64_t seed = 7;
    int seeds = 1;
    int threads = 0;            ///< 0 = hardware concurrency
    /// Shard budget for generated topologies (0 = the figure's default).
    /// Results are byte-identical across shard counts; only event
    /// partitioning changes.
    int shards = 0;
    /// Streaming recorders: O(nodes + flows) peak memory, whole-run delay
    /// stats instead of windowed ones. For long perf runs only.
    bool streaming = false;
    std::string csv_dir;        ///< when non-empty, dump first-seed series here
    std::map<std::string, std::string> extra;  ///< unclaimed --key=value flags
    /// Names the runner actually read, so the CLI can warn about flags
    /// (typos, legacy knobs) that silently did nothing.
    mutable std::set<std::string> extra_consumed;

    std::vector<std::uint64_t> seed_grid() const;
    /// Throws std::invalid_argument on a malformed value (like the core
    /// numeric flags do); marks `name` consumed either way.
    int extra_int(const std::string& name, int fallback) const;
    double extra_double(const std::string& name, double fallback) const;
    bool extra_bool(const std::string& name, bool fallback) const;
};

/// A registered scenario/figure: the unit `ezflow list | run | sweep`
/// operates on. Every former standalone bench/example main is one of
/// these; the old binaries remain as thin launchers around the registry.
struct FigureSpec {
    std::string name;        ///< canonical short name ("fig06", "table2", ...)
    std::string aka;         ///< former bench/example target name, also resolvable
    std::string category;    ///< "figure" | "table" | "ablation" | "example" | "micro"
    std::string title;       ///< one-line description for `ezflow list`
    std::string paper_ref;   ///< which paper artifact it reproduces
    std::string expectation; ///< the qualitative shape the paper predicts

    double default_scale = 1.0;
    int default_seeds = 1;
    /// The canned fast grid used by `--smoke`, the goldens, and CI.
    double smoke_scale = 0.05;
    int smoke_seeds = 2;

    /// Null for external entries (the google-benchmark micro harnesses),
    /// which are listed but not runnable through the CLI.
    std::function<analysis::FigureResult(const FigureContext&)> run;

    bool runnable() const { return static_cast<bool>(run); }
};

/// Process-wide name -> FigureSpec table. Populated by
/// register_builtin_figures(); tests may add their own entries.
class FigureRegistry {
public:
    static FigureRegistry& instance();

    /// Throws std::invalid_argument on a duplicate name or aka.
    void add(FigureSpec spec);

    /// Lookup by canonical name or by former target name (aka).
    const FigureSpec* find(const std::string& name) const;

    /// All specs in canonical-name order.
    std::vector<const FigureSpec*> list() const;

    std::size_t size() const { return specs_.size(); }

private:
    std::map<std::string, FigureSpec> specs_;  ///< keyed by canonical name
};

/// Register every figure/table/ablation/example/micro entry exactly once
/// (idempotent; safe to call from each thin launcher main).
void register_builtin_figures();

}  // namespace ezflow::cli

#pragma once

// Per-family registration hooks for the built-in figure runners. Each
// function adds its FigureSpecs to FigureRegistry::instance(); call them
// through register_builtin_figures() (registry.h), which is idempotent.
namespace ezflow::cli {

void register_chain_figures();      // fig01
void register_testbed_figures();    // fig04, table1, table2
void register_scenario1_figures();  // fig06, fig07, fig08
void register_scenario2_figures();  // fig10, fig11, table3
void register_model_figures();      // fig12, table4
void register_grid_figures();       // grid_cross, grid_gateway, grid_maxmin, islands, grid_clusters
void register_ampdu_figures();      // ampdu (gateway convergecast at K = 1, 4, 16)
void register_failover_figures();   // failover_gateway, failover_relay
void register_phy_model_figures();  // fading, rate_adapt
void register_ablation_figures();   // ablation_*
void register_example_figures();    // quickstart, parking_lot, ...
void register_micro_entries();      // micro_core, micro_scheduler (external)

}  // namespace ezflow::cli

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/experiment_factory.h"
#include "analysis/result.h"
#include "analysis/sweep.h"
#include "cli/registry.h"
#include "util/csv.h"
#include "util/stats.h"

// Shared plumbing for the registered figure runners — the successor of
// the old bench/bench_common.h, producing structured FigureResults
// instead of printf tables.
namespace ezflow::cli {

/// Fan `modes` x the context's seed grid across a thread pool; one
/// ExperimentFactory cell per mode, results in mode order.
inline std::vector<analysis::SweepResult> sweep_modes(
    const FigureContext& ctx, const analysis::ScenarioSpec& spec,
    const std::vector<analysis::Mode>& modes, std::vector<analysis::SweepWindow> windows,
    bool keep_experiments = false)
{
    analysis::ScenarioSpec resolved = spec;
    // --shards overrides the figure's shard budget; connected topologies
    // collapse back to one shard, so this is always safe to pass.
    if (ctx.shards > 0) resolved.shards = ctx.shards;
    std::vector<analysis::ExperimentFactory> cells;
    cells.reserve(modes.size());
    for (analysis::Mode mode : modes) {
        analysis::ExperimentOptions options;
        options.mode = mode;
        options.streaming = ctx.streaming;
        cells.emplace_back(resolved, options);
    }
    analysis::SweepConfig config;
    config.windows = std::move(windows);
    config.seeds = ctx.seed_grid();
    config.keep_experiments = keep_experiments || !ctx.csv_dir.empty();
    auto results = analysis::SweepRunner(ctx.threads).run_grid(cells, config);
    if (!keep_experiments) {
        for (analysis::SweepResult& result : results)
            if (result.experiments.size() > 1) result.experiments.resize(1);
    }
    return results;
}

/// Start a FigureResult stamped with the context's run options.
inline analysis::FigureResult make_result(const FigureContext& ctx)
{
    analysis::FigureResult result;
    result.figure = ctx.spec->name;
    result.title = ctx.spec->title;
    result.scale = ctx.scale;
    result.seed = ctx.seed;
    result.seeds = ctx.seeds;
    return result;
}

/// The three activity periods of scenario 1 (Fig. 5 timeline), scaled.
struct Scenario1Periods {
    double p1_begin, p1_end;  ///< F1 alone
    double p2_begin, p2_end;  ///< F1 + F2
    double p3_begin, p3_end;  ///< F1 alone again
    double total;

    explicit Scenario1Periods(double scale)
        : p1_begin(5 * scale),
          p1_end(605 * scale),
          p2_begin(605 * scale),
          p2_end(1804 * scale),
          p3_begin(1804 * scale),
          p3_end(2504 * scale),
          total(2504 * scale)
    {
    }

    /// The settled regime of each period (the paper reports means net of a
    /// warmup after every traffic-matrix change), as sweep windows.
    std::vector<analysis::SweepWindow> windows() const
    {
        const double w1 = 0.3 * (p1_end - p1_begin);
        const double w2 = 0.3 * (p2_end - p2_begin);
        return {
            {"F1 alone", p1_begin + w1, p1_end, {1}},
            {"F1 + F2", p2_begin + w2, p2_end, {1, 2}},
            {"F1 alone again", p3_begin + w2, p3_end, {1}},
        };
    }
};

/// The three activity periods of scenario 2 (Fig. 9 timeline), scaled.
struct Scenario2Periods {
    double p1_begin, p1_end;  ///< F1 + F2
    double p2_begin, p2_end;  ///< F1 + F2 + F3
    double p3_begin, p3_end;  ///< F1 alone
    double total;

    explicit Scenario2Periods(double scale)
        : p1_begin(5 * scale),
          p1_end(1805 * scale),
          p2_begin(1805 * scale),
          p2_end(3605 * scale),
          p3_begin(3605 * scale),
          p3_end(4500 * scale),
          total(4500 * scale)
    {
    }

    std::vector<analysis::SweepWindow> windows() const
    {
        const double w1 = 0.3 * (p1_end - p1_begin);
        const double w2 = 0.3 * (p2_end - p2_begin);
        const double w3 = 0.3 * (p3_end - p3_begin);
        return {
            {"F1 + F2", p1_begin + w1, p1_end, {1, 2}},
            {"F1 + F2 + F3", p2_begin + w2, p2_end, {1, 2, 3}},
            {"F1 alone", p3_begin + w3, p3_end, {1}},
        };
    }
};

/// Dump a time series set as CSV when the context carries a --csv dir.
inline void maybe_dump_series(
    const FigureContext& ctx, const std::string& name,
    const std::vector<std::pair<std::string, const util::TimeSeries*>>& series)
{
    if (ctx.csv_dir.empty()) return;
    for (const auto& [label, ts] : series) {
        util::CsvWriter csv(ctx.csv_dir + "/" + name + "_" + label + ".csv", {"time_s", "value"});
        for (std::size_t i = 0; i < ts->size(); ++i)
            csv.add_row(std::vector<double>{util::to_seconds(ts->times()[i]), ts->values()[i]});
    }
}

/// Node id for a paper label like "N12" (-1 when absent).
inline int label_to_node(const net::Scenario& scenario, const std::string& label)
{
    for (const auto& [id, l] : scenario.labels)
        if (l == label) return id;
    return -1;
}

}  // namespace ezflow::cli

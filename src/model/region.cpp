#include "model/region.h"

#include <stdexcept>

namespace ezflow::model {

int region_index(const BufferVector& relays)
{
    if (relays.empty()) throw std::invalid_argument("region_index: empty state");
    int index = 0;
    for (std::size_t i = 0; i < relays.size(); ++i) {
        if (relays[i] < 0) throw std::invalid_argument("region_index: negative buffer");
        if (relays[i] > 0) index |= 1 << i;
    }
    return index;
}

std::string region_name(int index, int relay_count)
{
    if (relay_count < 1 || index < 0 || index >= (1 << relay_count))
        throw std::invalid_argument("region_name: bad index");
    if (relay_count == 3) {
        static const char* kNames[8] = {"A", "B", "C", "E", "D", "F", "G", "H"};
        return kNames[index];
    }
    std::string bits;
    for (int i = 0; i < relay_count; ++i) bits += (index & (1 << i)) ? '1' : '0';
    return bits;
}

}  // namespace ezflow::model

#include "model/table4.h"

#include <stdexcept>

#include "model/region.h"

namespace ezflow::model {

namespace {

Pattern make(std::vector<int> z, double p) { return Pattern{std::move(z), p}; }

/// P(node i wins a rate-1/cw race among `contenders`):
///   (1/cw_i) / sum_j (1/cw_j)  ==  prod_{j != i} cw_j / sum_k prod_{j != k} cw_j.
double win_probability(int winner, const std::vector<int>& contenders, const std::vector<double>& cw)
{
    double numerator = 0.0;
    double denominator = 0.0;
    for (int k : contenders) {
        double prod = 1.0;
        for (int j : contenders)
            if (j != k) prod *= cw[static_cast<std::size_t>(j)];
        denominator += prod;
        if (k == winner) numerator = prod;
    }
    if (denominator <= 0.0) throw std::invalid_argument("win_probability: bad windows");
    return numerator / denominator;
}

}  // namespace

std::vector<Pattern> table4_distribution(int region, const std::vector<double>& cw)
{
    if (cw.size() != 4) throw std::invalid_argument("table4_distribution: need cw0..cw3");
    for (double w : cw)
        if (w <= 0.0) throw std::invalid_argument("table4_distribution: cw must be positive");

    const double cw0 = cw[0];
    const double cw1 = cw[1];
    const double cw2 = cw[2];
    const double cw3 = cw[3];

    switch (region) {
        case kRegionA:
            // Only the saturated source holds packets.
            return {make({1, 0, 0, 0}, 1.0)};
        case kRegionB: {
            // Nodes 0 and 1 contend; they sense each other, winner's link
            // succeeds.
            const double p0 = cw1 / (cw0 + cw1);
            return {make({1, 0, 0, 0}, p0), make({0, 1, 0, 0}, 1.0 - p0)};
        }
        case kRegionC:
            // Nodes 0 and 2 are hidden from each other: both transmit;
            // node 2 corrupts link 0 at receiver 1, link 2 succeeds.
            return {make({0, 0, 1, 0}, 1.0)};
        case kRegionD:
            // Nodes 0 and 3 are three hops apart: both transmissions
            // succeed concurrently (spatial reuse).
            return {make({1, 0, 0, 1}, 1.0)};
        case kRegionE: {
            // Contenders 0, 1, 2. If node 1 wins the race, its neighbours
            // 0 and 2 freeze and link 1 succeeds; otherwise nodes 0 and 2
            // (hidden from each other) both transmit and only link 2's
            // receiver is clear.
            const double p1 = win_probability(1, {0, 1, 2}, cw);
            return {make({0, 1, 0, 0}, p1), make({0, 0, 1, 0}, 1.0 - p1)};
        }
        case kRegionF: {
            // Contenders 0, 1, 3. Node 3 is hidden from both 0 and 1, so
            // it always transmits and link 3 always succeeds; the 0 vs 1
            // race decides whether link 0 also succeeds (node 1 transmitting
            // corrupts nothing of link 3 but its own receiver is jammed by
            // node 3).
            const double p0_first = win_probability(0, {0, 1, 3}, cw);
            const double p1_first = win_probability(1, {0, 1, 3}, cw);
            const double p3_first = win_probability(3, {0, 1, 3}, cw);
            const double p0_sub = cw1 / (cw0 + cw1);  // 0 beats 1 in the sub-race
            const double p_0and3 = p0_first + p3_first * p0_sub;
            const double p_only3 = p1_first + p3_first * (1.0 - p0_sub);
            return {make({1, 0, 0, 1}, p_0and3), make({0, 0, 0, 1}, p_only3)};
        }
        case kRegionG: {
            // Contenders 0, 2, 3. Nodes 2 and 3 sense each other; node 0 is
            // hidden from both. Node 2 transmitting kills link 0; node 3
            // transmitting leaves links 0 and 3 compatible.
            const double p2_first = win_probability(2, {0, 2, 3}, cw);
            const double p3_first = win_probability(3, {0, 2, 3}, cw);
            const double p0_first = win_probability(0, {0, 2, 3}, cw);
            const double p2_sub = cw3 / (cw2 + cw3);  // 2 beats 3 in the sub-race
            const double p_link2 = p2_first + p0_first * p2_sub;
            const double p_0and3 = p3_first + p0_first * (1.0 - p2_sub);
            return {make({0, 0, 1, 0}, p_link2), make({1, 0, 0, 1}, p_0and3)};
        }
        case kRegionH: {
            // All four contend. First winner w freezes its carrier-sense
            // neighbours; remaining hidden contenders run a sub-race.
            const double p0 = win_probability(0, {0, 1, 2, 3}, cw);
            const double p1 = win_probability(1, {0, 1, 2, 3}, cw);
            const double p2 = win_probability(2, {0, 1, 2, 3}, cw);
            const double p3 = win_probability(3, {0, 1, 2, 3}, cw);
            const double p2_beats3 = cw3 / (cw2 + cw3);
            const double p0_beats1 = cw1 / (cw0 + cw1);
            // w=2: node 1,3 freeze; node 0 transmits too -> link 2 only.
            // w=1: node 0,2 freeze; node 3 transmits too -> link 3 only.
            // w=0: node 1 freezes; nodes 2,3 sub-race:
            //        2 wins -> {0,2} transmit -> link 2 only;
            //        3 wins -> {0,3} transmit -> links 0 and 3.
            // w=3: node 2 freezes; nodes 0,1 sub-race:
            //        0 wins -> {0,3} -> links 0 and 3;
            //        1 wins -> {1,3} -> link 3 only.
            const double p_link2 = p2 + p0 * p2_beats3;
            const double p_link3 = p1 + p3 * (1.0 - p0_beats1);
            const double p_0and3 = p0 * (1.0 - p2_beats3) + p3 * p0_beats1;
            return {make({0, 0, 1, 0}, p_link2), make({0, 0, 0, 1}, p_link3),
                    make({1, 0, 0, 1}, p_0and3)};
        }
        default:
            throw std::invalid_argument("table4_distribution: bad region index");
    }
}

}  // namespace ezflow::model

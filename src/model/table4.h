#pragma once

#include <vector>

namespace ezflow::model {

/// One successful-transmission pattern of the 4-hop model: entry i is 1
/// when link i (node i -> node i+1) completes a successful transmission in
/// the slot.
struct Pattern {
    std::vector<int> z;
    double probability;
};

/// Closed-form distribution of transmission patterns for each region of
/// the 4-hop model, as a function of the contention windows cw0..cw3 —
/// the content of Table 4 of the paper.
///
/// The distribution is derived from the generative rule set (races won
/// with probability proportional to 1/cw, carrier-sense freezing of 1-hop
/// neighbours, recursive sub-races among hidden contenders, and a link
/// succeeding iff no other transmitter sits within one hop of its
/// receiver); the unit tests verify the expressions match the table's
/// entries symbolically and the Monte-Carlo sampler numerically.
///
/// `region` is the bitmask index (see region.h); `cw` must hold 4 positive
/// values. Patterns with zero probability are omitted; probabilities sum
/// to 1.
std::vector<Pattern> table4_distribution(int region, const std::vector<double>& cw);

}  // namespace ezflow::model

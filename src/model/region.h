#pragma once

#include <string>
#include <vector>

namespace ezflow::model {

/// State of the Section 6 slotted model for a K-hop flow: the buffer
/// occupancies of the K-1 relays (the source is saturated, b0 = infinity;
/// the destination drains instantly).
using BufferVector = std::vector<long long>;

/// Region index of the positive orthant partition: bit i set means relay
/// i+1 has a non-empty buffer. For K = 4 this is the paper's A..H lettering
/// of Fig. 12 with A=000, B=100 (b1>0), C=010 (b2>0), D=001 (b3>0),
/// E=110, F=101, G=011, H=111.
int region_index(const BufferVector& relays);

/// Letter name for a region of the 4-hop model (indices 0..7 -> "A".."H").
/// Also accepts general K: returns the bitmask rendered as e.g. "101".
std::string region_name(int index, int relay_count);

/// The 4-hop mapping between letters and indices, for tests and tables.
inline constexpr int kRegionA = 0;  // b1=0, b2=0, b3=0
inline constexpr int kRegionB = 1;  // b1>0
inline constexpr int kRegionC = 2;  // b2>0
inline constexpr int kRegionD = 4;  // b3>0
inline constexpr int kRegionE = 3;  // b1>0, b2>0
inline constexpr int kRegionF = 5;  // b1>0, b3>0
inline constexpr int kRegionG = 6;  // b2>0, b3>0
inline constexpr int kRegionH = 7;  // all non-empty

}  // namespace ezflow::model

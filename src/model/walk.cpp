#include "model/walk.h"

#include <algorithm>
#include <stdexcept>

namespace ezflow::model {

RandomWalkModel::RandomWalkModel(Config config, util::Rng rng)
    : config_(config), rng_(std::move(rng))
{
    if (config_.hops < 2) throw std::invalid_argument("RandomWalkModel: need >= 2 hops");
    relays_.assign(static_cast<std::size_t>(config_.hops - 1), 0);
    if (config_.initial_cw.empty()) {
        cw_.assign(static_cast<std::size_t>(config_.hops), config_.caa.min_cw);
    } else {
        if (config_.initial_cw.size() != static_cast<std::size_t>(config_.hops))
            throw std::invalid_argument("RandomWalkModel: initial_cw size mismatch");
        cw_ = config_.initial_cw;
    }
    for (long long w : cw_)
        if (w <= 0) throw std::invalid_argument("RandomWalkModel: cw must be positive");
    last_pattern_.assign(static_cast<std::size_t>(config_.hops), 0);
}

void RandomWalkModel::set_relays(BufferVector relays)
{
    if (relays.size() != relays_.size())
        throw std::invalid_argument("RandomWalkModel::set_relays: size mismatch");
    for (long long b : relays)
        if (b < 0) throw std::invalid_argument("RandomWalkModel::set_relays: negative buffer");
    relays_ = std::move(relays);
}

void RandomWalkModel::set_cw(std::vector<long long> cw)
{
    if (cw.size() != cw_.size()) throw std::invalid_argument("RandomWalkModel::set_cw: size mismatch");
    for (long long w : cw)
        if (w <= 0) throw std::invalid_argument("RandomWalkModel::set_cw: cw must be positive");
    cw_ = std::move(cw);
}

std::vector<int> RandomWalkModel::draw_transmitters(const BufferVector& relays,
                                                    const std::vector<double>& cw)
{
    const int n = config_.hops;  // transmitting nodes are 0..K-1
    // Contenders: the saturated source plus every backlogged relay.
    std::vector<int> contenders;
    contenders.push_back(0);
    for (int i = 1; i < n; ++i)
        if (relays[static_cast<std::size_t>(i - 1)] > 0) contenders.push_back(i);

    std::vector<int> transmitters;
    // Repeated races: winner drawn with probability proportional to 1/cw;
    // the winner silences (carrier sense) its 1-hop neighbours; contenders
    // hidden from every winner keep racing.
    while (!contenders.empty()) {
        std::vector<double> weights;
        weights.reserve(contenders.size());
        for (int node : contenders) weights.push_back(1.0 / cw[static_cast<std::size_t>(node)]);
        const int winner = contenders[static_cast<std::size_t>(rng_.weighted_index(weights))];
        transmitters.push_back(winner);
        std::vector<int> remaining;
        for (int node : contenders) {
            if (node == winner) continue;
            if (std::abs(node - winner) <= 1) continue;  // senses the winner: freezes
            remaining.push_back(node);
        }
        contenders = std::move(remaining);
    }
    return transmitters;
}

std::vector<int> RandomWalkModel::sample_pattern(const BufferVector& relays,
                                                 const std::vector<double>& cw)
{
    if (relays.size() != relays_.size())
        throw std::invalid_argument("RandomWalkModel::sample_pattern: relay size mismatch");
    if (cw.size() != cw_.size())
        throw std::invalid_argument("RandomWalkModel::sample_pattern: cw size mismatch");
    const int n = config_.hops;
    const std::vector<int> transmitters = draw_transmitters(relays, cw);

    // Link i (node i -> node i+1) succeeds iff node i transmitted and no
    // other transmitter sits within one hop of receiver i+1.
    std::vector<int> pattern(static_cast<std::size_t>(n), 0);
    for (int i : transmitters) {
        const int receiver = i + 1;
        bool clear = true;
        for (int j : transmitters) {
            if (j == i) continue;
            if (std::abs(j - receiver) <= 1) {
                clear = false;
                break;
            }
        }
        if (clear) pattern[static_cast<std::size_t>(i)] = 1;
    }
    return pattern;
}

const std::vector<int>& RandomWalkModel::step()
{
    std::vector<double> cw_real(cw_.begin(), cw_.end());
    last_pattern_ = sample_pattern(relays_, cw_real);

    // Buffer update, Eq. (3): b_i += z_{i-1} - z_i for relays 1..K-1.
    const int n = config_.hops;
    for (int i = 1; i < n; ++i) {
        auto& b = relays_[static_cast<std::size_t>(i - 1)];
        b += last_pattern_[static_cast<std::size_t>(i - 1)];
        b -= last_pattern_[static_cast<std::size_t>(i)];
        if (b < 0) throw std::logic_error("RandomWalkModel::step: negative buffer");
    }
    delivered_ += static_cast<std::uint64_t>(last_pattern_[static_cast<std::size_t>(n - 1)]);

    if (config_.ezflow_enabled) apply_caa();
    ++slots_;
    return last_pattern_;
}

void RandomWalkModel::apply_caa()
{
    // Eq. (2): node i reacts to its successor's buffer b_{i+1}. Node K-1's
    // successor is the destination whose buffer is always empty, so its
    // window only ever decreases (to min_cw).
    const int n = config_.hops;
    const ModelCaaParams& p = config_.caa;
    for (int i = 0; i < n; ++i) {
        const double successor_buffer =
            (i + 1 < n) ? static_cast<double>(relays_[static_cast<std::size_t>(i)]) : 0.0;
        auto& w = cw_[static_cast<std::size_t>(i)];
        if (successor_buffer > p.bmax)
            w = std::min(w * 2, p.max_cw);
        else if (successor_buffer < p.bmin)
            w = std::max(w / 2, p.min_cw);
    }
}

void RandomWalkModel::run(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i) step();
}

long long RandomWalkModel::total_backlog() const
{
    long long total = 0;
    for (long long b : relays_) total += b;
    return total;
}

}  // namespace ezflow::model

#pragma once

#include <map>
#include <vector>

#include "model/walk.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ezflow::model {

/// Numerical companion to the paper's Theorem 1 (Foster–Lyapunov
/// stability of the 4-hop walk under EZ-Flow).
///
/// For each region outside the finite set S, the theorem exhibits a
/// look-ahead horizon k(region) such that
///   E[h(b(n+k)) | b(n)] - h(b(n)) <= -eps,  h(b) = sum_i b_i.
/// This estimator measures that conditional drift by Monte-Carlo: it
/// prepares states inside a region (far enough from the axes that the
/// walk cannot change region within k slots), runs k slots many times and
/// averages the change of h.
class LyapunovEstimator {
public:
    struct Drift {
        int region = 0;
        int horizon = 0;        ///< k(region) used
        double mean_drift = 0.0;
        double stderr_drift = 0.0;
        int samples = 0;
    };

    /// `config` describes the walk (EZ-Flow on/off, K, caa params);
    /// windows are re-initialized to `cw` before every sample.
    LyapunovEstimator(RandomWalkModel::Config config, std::vector<long long> cw, util::Rng rng);

    /// Estimate the k-slot drift of h starting from `relays` (the walk's
    /// region is derived from it).
    Drift estimate(const BufferVector& relays, int horizon, int samples);

    /// The paper's horizons for the 4-hop proof: k=1 for F,H; k=2 for D,E;
    /// k=3 for G; k=4 for C; k=25 for B. Region A belongs to S.
    static int paper_horizon(int region);

private:
    RandomWalkModel::Config config_;
    std::vector<long long> cw_;
    util::Rng rng_;
};

}  // namespace ezflow::model

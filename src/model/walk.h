#pragma once

#include <cstdint>
#include <vector>

#include "model/region.h"
#include "util/rng.h"

namespace ezflow::model {

/// Contention-window adaptation used by the slotted model, Eq. (2) of the
/// paper: every slot, node i doubles cw when its successor's buffer
/// exceeds bmax, halves it when below bmin, clamped to [min_cw, max_cw].
struct ModelCaaParams {
    double bmin = 0.05;
    double bmax = 20.0;
    long long min_cw = 1 << 4;
    long long max_cw = 1 << 15;
};

/// The Section 6 slotted-time model of a saturated K-hop chain, generic
/// in K. Each slot:
///  1. contenders = nodes with non-empty buffers (the source always);
///  2. repeated races: a winner is drawn with probability proportional to
///     1/cw among remaining contenders, then freezes its 1-hop
///     carrier-sense neighbours; contenders hidden from every winner keep
///     racing;
///  3. link i succeeds iff i transmitted and no other transmitter is
///     within one hop of receiver i+1 (hidden-terminal corruption);
///  4. buffers update per Eq. (3); with EZ-Flow enabled, windows update
///     per Eq. (2).
/// For K = 4 the induced pattern distribution is exactly Table 4
/// (verified in tests against model/table4.h).
class RandomWalkModel {
public:
    struct Config {
        int hops = 4;               ///< K; relays are nodes 1..K-1
        bool ezflow_enabled = true; ///< fixed windows when false
        std::vector<long long> initial_cw;  ///< per node 0..K-1; defaults to min_cw
        ModelCaaParams caa{};
    };

    RandomWalkModel(Config config, util::Rng rng);

    /// Advance one slot. Returns the link activation pattern z (size K).
    const std::vector<int>& step();

    /// Advance `n` slots.
    void run(std::uint64_t n);

    /// Sample the transmission pattern for an arbitrary buffer state
    /// without mutating the walk (used by the Table 4 Monte-Carlo tests).
    std::vector<int> sample_pattern(const BufferVector& relays, const std::vector<double>& cw);

    const BufferVector& relays() const { return relays_; }
    const std::vector<long long>& cw() const { return cw_; }
    long long total_backlog() const;  ///< Lyapunov function h(b) = sum b_i
    int region() const { return region_index(relays_); }
    std::uint64_t slots() const { return slots_; }
    std::uint64_t delivered() const { return delivered_; }

    /// Direct state manipulation for analyses (drift estimation restarts
    /// the walk from chosen states).
    void set_relays(BufferVector relays);
    void set_cw(std::vector<long long> cw);

private:
    std::vector<int> draw_transmitters(const BufferVector& relays, const std::vector<double>& cw);
    void apply_caa();

    Config config_;
    util::Rng rng_;
    BufferVector relays_;          ///< b1..b_{K-1}
    std::vector<long long> cw_;    ///< cw0..cw_{K-1}
    std::vector<int> last_pattern_;
    std::uint64_t slots_ = 0;
    std::uint64_t delivered_ = 0;
};

}  // namespace ezflow::model

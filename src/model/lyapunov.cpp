#include "model/lyapunov.h"

#include <cmath>
#include <stdexcept>

namespace ezflow::model {

LyapunovEstimator::LyapunovEstimator(RandomWalkModel::Config config, std::vector<long long> cw,
                                     util::Rng rng)
    : config_(std::move(config)), cw_(std::move(cw)), rng_(std::move(rng))
{
}

int LyapunovEstimator::paper_horizon(int region)
{
    switch (region) {
        case kRegionF:
        case kRegionH: return 1;
        case kRegionD:
        case kRegionE: return 2;
        case kRegionG: return 3;
        case kRegionC: return 4;
        case kRegionB: return 25;
        default: throw std::invalid_argument("paper_horizon: region A is inside S");
    }
}

LyapunovEstimator::Drift LyapunovEstimator::estimate(const BufferVector& relays, int horizon,
                                                     int samples)
{
    if (horizon <= 0) throw std::invalid_argument("LyapunovEstimator: horizon must be > 0");
    if (samples <= 0) throw std::invalid_argument("LyapunovEstimator: samples must be > 0");

    util::RunningStats drift;
    for (int s = 0; s < samples; ++s) {
        RandomWalkModel walk(config_, rng_.fork());
        walk.set_relays(relays);
        walk.set_cw(cw_);
        const long long before = walk.total_backlog();
        for (int k = 0; k < horizon; ++k) walk.step();
        drift.add(static_cast<double>(walk.total_backlog() - before));
    }

    Drift result;
    result.region = region_index(relays);
    result.horizon = horizon;
    result.mean_drift = drift.mean();
    result.stderr_drift = drift.stddev() / std::sqrt(static_cast<double>(drift.count()));
    result.samples = samples;
    return result;
}

}  // namespace ezflow::model

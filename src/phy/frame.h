#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/units.h"

namespace ezflow::phy {

using net::NodeId;
using util::SimTime;

enum class FrameType { kData, kAck, kRts, kCts, kBlockAck };

/// One MPDU of an aggregated (A-MPDU) data frame: the MSDU payload plus
/// its own MAC sequence number and retry count — each subframe succeeds or
/// fails independently at the PHY and is acknowledged selectively by the
/// compressed block-ack.
struct Mpdu {
    net::Packet packet{};
    std::uint32_t seq = 0;
    int retry = 0;  ///< retry index of this MPDU (0 = first transmission)
};

/// A MAC frame on the air. Data frames carry a Packet; control frames
/// (ACK/RTS/CTS) carry only the MAC addressing needed for the exchange.
///
/// Copies are counted (a relaxed atomic, so multi-seed sweeps stay safe):
/// the transmission pipeline is single-copy by design — one FrameRecord
/// per transmission, handles everywhere else — and tests pin that down by
/// asserting the per-transmission copy count does not grow with the
/// receiver fan-out. Moves are free and uncounted.
struct Frame {
    FrameType type = FrameType::kData;
    NodeId tx_node = -1;  ///< transmitter (MAC source)
    NodeId rx_node = -1;  ///< addressee (MAC destination)
    std::uint32_t mac_seq = 0;
    int retry = 0;  ///< retry index of this transmission attempt (0 = first)
    /// Remaining duration of the exchange (NAV value), microseconds.
    /// Meaningful on RTS/CTS; third parties defer for this long after the
    /// frame ends.
    SimTime duration_us = 0;
    /// Payload bitrate this frame is modulated at; 0 means the PHY default
    /// (`PhyParams::bitrate_bps`). Stamped by the MAC when a RateManager
    /// picks a per-link rate; control frames always stay at the default so
    /// timeout/NAV arithmetic is rate-independent.
    std::int64_t bitrate_bps = 0;
    bool has_packet = false;
    net::Packet packet{};

    /// A-MPDU subframes. Empty on every frame of the legacy one-MSDU
    /// pipeline (the golden-pinned path); a data frame carrying MPDUs here
    /// is one PPDU whose subframes are error-checked, acknowledged and
    /// retransmitted individually. At most 64 (the compressed block-ack
    /// bitmap width).
    std::vector<Mpdu> subframes;
    /// Sender window start advertised on aggregated data frames (the
    /// oldest unsettled sequence number): the receiver releases its
    /// scoreboard and reorder buffer below it, so abandoned MPDUs never
    /// stall in-order delivery (BAR-free window advance). On kBlockAck
    /// frames: the responder's scoreboard window start.
    std::uint32_t ba_start_seq = 0;
    /// kBlockAck only: bit j acknowledges sequence ba_start_seq + j.
    std::uint64_t ba_bitmap = 0;

    bool aggregated() const { return !subframes.empty(); }

    Frame() = default;
    Frame(Frame&&) = default;
    Frame& operator=(Frame&&) = default;
    Frame(const Frame& other)
        : type(other.type),
          tx_node(other.tx_node),
          rx_node(other.rx_node),
          mac_seq(other.mac_seq),
          retry(other.retry),
          duration_us(other.duration_us),
          bitrate_bps(other.bitrate_bps),
          has_packet(other.has_packet),
          packet(other.packet),
          subframes(other.subframes),
          ba_start_seq(other.ba_start_seq),
          ba_bitmap(other.ba_bitmap)
    {
        copy_counter().fetch_add(1, std::memory_order_relaxed);
    }
    Frame& operator=(const Frame& other)
    {
        if (this != &other) {
            type = other.type;
            tx_node = other.tx_node;
            rx_node = other.rx_node;
            mac_seq = other.mac_seq;
            retry = other.retry;
            duration_us = other.duration_us;
            bitrate_bps = other.bitrate_bps;
            has_packet = other.has_packet;
            packet = other.packet;
            subframes = other.subframes;
            ba_start_seq = other.ba_start_seq;
            ba_bitmap = other.ba_bitmap;
            copy_counter().fetch_add(1, std::memory_order_relaxed);
        }
        return *this;
    }

    /// Process-wide count of Frame copies performed so far.
    static std::uint64_t copies() { return copy_counter().load(std::memory_order_relaxed); }

private:
    static std::atomic<std::uint64_t>& copy_counter()
    {
        static std::atomic<std::uint64_t> counter{0};
        return counter;
    }
};

/// PHY parameters: IEEE 802.11b DSSS, long preamble, fixed 1 Mb/s, and the
/// ns-2 default ranges the paper's simulations use.
struct PhyParams {
    double tx_range_m = 250.0;       ///< delivery range (two-ray, ns-2 default)
    double cs_range_m = 550.0;       ///< carrier-sense range
    double interference_range_m = 550.0;  ///< corrupts receptions within this range
    /// Capture threshold (linear SIR). A locked reception survives
    /// overlapping interference as long as its power exceeds the sum of
    /// interferer powers by this ratio (ns-2 CPThresh = 10 dB). Power
    /// follows the two-ray 1/d^4 law — all scenario distances exceed the
    /// ~86 m crossover, so the d^-4 regime applies throughout.
    double capture_threshold = 10.0;
    /// Capture threshold in dB, used by the cumulative-SINR interference
    /// ledger (`PhyModelConfig::Interference::kSinrLedger`). 10 dB is
    /// exactly the linear 10.0 above, so the degenerate ledger (zero noise,
    /// no rate floors binding) reproduces the reference capture test.
    double capture_threshold_db = 10.0;
    /// Thermal-noise floor added to the interference sum in SINR mode,
    /// watts on the same normalized scale as the propagation model output
    /// (reference two-ray emits 1/d^4 for unit tx power). 0 keeps SINR a
    /// pure signal-to-interference ratio.
    double noise_floor_w = 0.0;
    /// Interference weighting for the cumulative-SINR ledger: when set, an
    /// interferer overlapping x% of a locked frame contributes x-weighted
    /// energy to the capture test (settled once, at frame end) instead of
    /// full power at every overlap instant. Off by default — the sticky
    /// instantaneous test is the golden-pinned behaviour — and installed
    /// via PhyModelConfig::weighted_overlap. A 100%-overlap interferer
    /// yields the same verdict either way.
    bool weighted_overlap_interference = false;
    std::int64_t bitrate_bps = 1'000'000;
    SimTime plcp_overhead_us = 192;  ///< long PLCP preamble + header at 1 Mb/s
    int mac_data_overhead_bytes = 36;  ///< 24 B MAC header + 4 B FCS + 8 B LLC/SNAP
    int ack_frame_bytes = 14;
    int rts_frame_bytes = 20;
    int cts_frame_bytes = 14;
    /// A-MPDU subframe delimiter prepended to every aggregated MPDU.
    int ampdu_delimiter_bytes = 4;
    /// Compressed block-ack frame: control header + starting sequence +
    /// 8-byte bitmap.
    int ba_frame_bytes = 32;

    /// Airtime of a frame, in microseconds. The payload time is rounded
    /// UP, matching 802.11 symbol rounding: a partially filled final
    /// microsecond still occupies the medium (at 1 Mb/s every frame is an
    /// exact number of microseconds, so the paper figures are unaffected;
    /// at 2/5.5/11 Mb/s truncation would undercount airtime). An
    /// aggregated data frame pays one PLCP for the whole PPDU plus the
    /// per-MPDU MAC overhead and delimiter — the amortization that makes
    /// A-MPDU a throughput (and events-per-byte) win.
    SimTime tx_duration(const Frame& frame) const
    {
        const std::int64_t rate = frame.bitrate_bps > 0 ? frame.bitrate_bps : bitrate_bps;
        std::int64_t bytes = 0;
        switch (frame.type) {
            case FrameType::kAck: bytes = ack_frame_bytes; break;
            case FrameType::kRts: bytes = rts_frame_bytes; break;
            case FrameType::kCts: bytes = cts_frame_bytes; break;
            case FrameType::kBlockAck: bytes = ba_frame_bytes; break;
            case FrameType::kData:
                if (frame.aggregated()) {
                    for (const Mpdu& mpdu : frame.subframes)
                        bytes += mac_data_overhead_bytes + ampdu_delimiter_bytes +
                                 mpdu.packet.bytes;
                } else {
                    bytes = mac_data_overhead_bytes + (frame.has_packet ? frame.packet.bytes : 0);
                }
                break;
        }
        const std::int64_t bits = bytes * 8;
        return plcp_overhead_us + (bits * 1'000'000 + rate - 1) / rate;
    }

    /// End offsets (microseconds from frame start) of every subframe of an
    /// aggregated data frame; subframe i occupies [out[i-1], out[i]) with
    /// the PLCP preamble attributed to subframe 0. The last offset equals
    /// tx_duration(frame), so per-MPDU interference intervals tile the
    /// PPDU airtime exactly.
    void mpdu_end_offsets(const Frame& frame, std::vector<SimTime>& out) const
    {
        out.clear();
        const std::int64_t rate = frame.bitrate_bps > 0 ? frame.bitrate_bps : bitrate_bps;
        std::int64_t cum_bytes = 0;
        for (const Mpdu& mpdu : frame.subframes) {
            cum_bytes += mac_data_overhead_bytes + ampdu_delimiter_bytes + mpdu.packet.bytes;
            const std::int64_t bits = cum_bytes * 8;
            out.push_back(plcp_overhead_us + (bits * 1'000'000 + rate - 1) / rate);
        }
    }

    /// Radius within which two nodes can interact at all — delivery, carrier
    /// sense, or interference. Both the Channel's reachability cull and the
    /// sharded engine's conflict-graph partitioner (`net::plan_shards`) must
    /// use this same bound: the interference ledger accumulates energy from
    /// every node inside it, so a shard cut through this radius would lose
    /// ledger contributions.
    double conflict_radius_m() const
    {
        double r = tx_range_m;
        if (cs_range_m > r) r = cs_range_m;
        if (interference_range_m > r) r = interference_range_m;
        return r;
    }
};

}  // namespace ezflow::phy

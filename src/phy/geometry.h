#pragma once

#include <cmath>

namespace ezflow::phy {

/// Planar node position in meters. The testbed map (Fig. 3) and the ns-2
/// scenarios are both 2-D deployments.
struct Position {
    double x = 0.0;
    double y = 0.0;
};

inline double distance(const Position& a, const Position& b)
{
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

}  // namespace ezflow::phy

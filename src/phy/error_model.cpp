#include "phy/error_model.h"

#include <cmath>
#include <stdexcept>

namespace ezflow::phy {

double gilbert_stationary_loss(const GilbertParams& params)
{
    const double pi_bad = params.to_bad_per_s / (params.to_bad_per_s + params.to_good_per_s);
    return pi_bad * params.loss_bad + (1.0 - pi_bad) * params.loss_good;
}

StaticLoss::StaticLoss(double loss_probability) : loss_(loss_probability)
{
    if (loss_probability < 0.0 || loss_probability > 1.0)
        throw std::invalid_argument("StaticLoss: probability out of range");
}

double StaticLoss::loss_probability(util::SimTime now, util::Rng& rng)
{
    (void)now;
    (void)rng;
    return loss_;
}

GilbertElliott::GilbertElliott(GilbertParams params) : params_(params)
{
    if (params.to_bad_per_s <= 0.0 || params.to_good_per_s <= 0.0)
        throw std::invalid_argument("GilbertElliott: rates must be > 0");
    if (params.loss_good < 0.0 || params.loss_good > 1.0 || params.loss_bad < 0.0 ||
        params.loss_bad > 1.0)
        throw std::invalid_argument("GilbertElliott: losses out of range");
}

void GilbertElliott::reset(util::SimTime now, util::Rng& rng)
{
    last_update_ = now;
    // Start in the stationary distribution so measurements need no warmup.
    bad_ = rng.bernoulli(params_.to_bad_per_s / (params_.to_bad_per_s + params_.to_good_per_s));
}

double GilbertElliott::loss_probability(util::SimTime now, util::Rng& rng)
{
    // Exact two-state CTMC transition over the elapsed interval:
    // P(state changed once net | dt) via the standard closed form.
    const double dt = util::to_seconds(now - last_update_);
    last_update_ = now;
    if (dt > 0.0) {
        const double lambda = params_.to_bad_per_s;
        const double mu = params_.to_good_per_s;
        const double pi_bad = lambda / (lambda + mu);
        const double decay = std::exp(-(lambda + mu) * dt);
        const double p_bad_now = bad_ ? pi_bad + (1.0 - pi_bad) * decay : pi_bad * (1.0 - decay);
        bad_ = rng.bernoulli(p_bad_now);
    }
    return bad_ ? params_.loss_bad : params_.loss_good;
}

std::unique_ptr<ErrorModel> make_gilbert(const GilbertParams& params)
{
    return std::make_unique<GilbertElliott>(params);
}

}  // namespace ezflow::phy

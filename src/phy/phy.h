#pragma once

#include <cstdint>

#include "phy/frame.h"
#include "phy/geometry.h"
#include "sim/scheduler.h"

namespace ezflow::phy {

class Channel;

/// Everything the channel tells a receiver about an arriving signal: the
/// geometry/range facts, the received power, and the model verdicts
/// (per-link error roll, the SINR threshold this frame must clear, the
/// noise floor beneath it). One struct instead of a positional boolean
/// soup — a new model extends this type, not every signal_start call site.
struct RxEvent {
    std::uint64_t signal_id = 0;
    const Frame* frame = nullptr;
    double power_w = 0.0;  ///< received power at this node (propagation model)
    /// Thermal noise added to the interference sum in the capture test
    /// (0 in the reference configuration).
    double noise_w = 0.0;
    /// Linear SINR this frame needs to lock and survive: the capture
    /// threshold, already combined with the rate's decode floor in SINR
    /// mode (`PhyParams::capture_threshold` verbatim in reference mode).
    double capture_threshold = 10.0;
    bool in_delivery = false;  ///< within tx_range: decode candidate
    bool sensed = false;       ///< within cs_range: counts for energy detection
    bool error = false;        ///< per-link error model rolled a loss
    /// Aggregated frames only: bit i set means the per-link error model
    /// corrupted subframe i (the channel rolls once per MPDU instead of
    /// once per PPDU). `error` is then the all-subframes-lost verdict —
    /// a fully corrupted A-MPDU fails to lock, like a lost legacy frame.
    std::uint64_t mpdu_error_bits = 0;

    bool decodable() const { return in_delivery && !error; }
};

/// Callbacks a MAC implements to drive and observe its PHY.
class PhyListener {
public:
    virtual ~PhyListener() = default;
    /// Medium busy/idle transitions as seen by carrier sense (other nodes'
    /// energy or own transmission).
    virtual void phy_busy_changed(bool busy) = 0;
    /// A frame was decoded at this node — addressed to it or not (the MAC
    /// performs address filtering; promiscuous listeners get the rest).
    virtual void phy_frame_decoded(const Frame& frame) = 0;
    /// Own transmission finished.
    virtual void phy_tx_done(const Frame& frame) = 0;
};

/// Per-node radio. Models a half-duplex 802.11 interface:
///  * carrier sense counts overlapping signals within cs_range;
///  * the node locks onto the first decodable signal while idle;
///  * overlapping signals within interference range accumulate in the
///    interference ledger; the locked frame survives only while its power
///    clears `capture_threshold x (interference + noise)` (cumulative
///    SINR — the threshold and noise arrive per-frame in the RxEvent);
///  * a transmitting node hears nothing (half duplex) — this is what made
///    the authors use a second radio as sniffer on the testbed.
class NodePhy {
public:
    NodePhy(net::NodeId id, Position position, sim::Scheduler& scheduler);
    NodePhy(const NodePhy&) = delete;
    NodePhy& operator=(const NodePhy&) = delete;

    void set_channel(Channel* channel) { channel_ = channel; }
    void set_listener(PhyListener* listener) { listener_ = listener; }

    net::NodeId id() const { return id_; }
    const Position& position() const { return position_; }

    /// PHY parameters of the attached channel (throws when detached).
    const PhyParams& channel_params() const;

    /// Medium busy for carrier sense: own TX or any sensed energy.
    bool busy() const { return transmitting_ || sensed_active_ > 0; }
    bool transmitting() const { return transmitting_; }

    /// Start transmitting `frame` (taken by value and moved into the
    /// channel's shared per-transmission record — pass an rvalue to keep
    /// the pipeline single-copy). Throws if a transmission is in
    /// progress. Aborts (corrupts) any reception in progress: half-duplex.
    void start_tx(Frame frame);

    // --- channel-facing interface ---
    /// A signal reaching this node started; `rx` carries the power, range
    /// facts and model verdicts (see RxEvent). The node locks onto the
    /// first decodable arrival while idle and applies the capture test —
    /// locked power vs threshold x (interference + noise) — both at lock
    /// and again at every later arrival, so mid-frame interferers corrupt
    /// a reception that no longer clears its SINR (corruption is sticky).
    void signal_start(const RxEvent& rx);
    /// The same signal ended.
    void signal_end(std::uint64_t signal_id, const Frame& frame);
    /// Own transmission ended (scheduled by the channel).
    void tx_end(const Frame& frame);

    // --- power cycling (fault injection) ---
    /// Kill the radio: wipe every live reception, the interference
    /// ledger, carrier-sense state and any transmission in progress —
    /// silently, without listener callbacks (the MAC is quiesced first).
    /// Signal-end / tx-end events already scheduled against this PHY
    /// become tolerated no-ops instead of logic errors, because the
    /// frames they refer to were wiped here, not lost by a bug.
    void power_off();
    /// Bring the radio back (typically right after Channel::attach).
    void power_on();
    bool powered() const { return powered_; }

    // --- rate adaptation (MAC-facing, forwards to the channel's manager) ---
    /// Rate for the next data attempt to `rx`; 0 means the PHY default
    /// (leave the frame unstamped).
    std::int64_t data_bitrate_for(net::NodeId rx) const;
    /// Report the ACK verdict of the most recent attempt to `rx`.
    void report_tx_result(net::NodeId rx, bool success);

    /// Total power currently on the air at this node — the interference
    /// ledger. Maintained incrementally (O(1) per signal edge) and snapped
    /// to exactly 0 whenever the ledger empties, so it cannot drift.
    double interference_ledger_w() const { return ledger_w_; }

    /// Whether the most recent sensed signal ended without a correct
    /// decode at this node (drives the MAC's EIFS rule).
    bool last_rx_error() const { return last_rx_error_; }

    /// Per-MPDU corruption verdict of the most recently decoded aggregated
    /// frame (error-model bits combined with the per-subframe interference
    /// intervals). Valid during the phy_frame_decoded callback; 0 for
    /// legacy frames.
    std::uint64_t last_decode_mpdu_errors() const { return last_decode_mpdu_errors_; }

    // --- statistics ---
    std::uint64_t frames_decoded() const { return frames_decoded_; }
    std::uint64_t frames_corrupted() const { return frames_corrupted_; }
    std::uint64_t frames_missed_busy() const { return frames_missed_busy_; }

private:
    struct ActiveSignal {
        std::uint64_t id;
        double power_w;
        bool sensed;
        SimTime start_us;  ///< arrival time (overlap weighting, interval tracking)
    };

    void update_busy();
    /// Sum of active signal powers excluding `except_id`.
    double interference_sum(std::uint64_t except_id) const;
    /// Instantaneous capture test of the locked frame against the current
    /// interference sum plus noise (true = below threshold, corrupting).
    bool rx_below_threshold() const
    {
        return rx_power_w_ < rx_threshold_ * (interference_sum(rx_signal_id_) + rx_noise_w_);
    }
    /// Mark every subframe of the locked aggregated frame overlapping the
    /// below-threshold interval [bad_from, bad_to) as corrupt.
    void mark_mpdus_corrupt(SimTime bad_from, SimTime bad_to);
    /// Whether the locked legacy frame defers its capture verdict to frame
    /// end, integrating overlap-weighted interferer energy.
    bool rx_weighted() const;

    net::NodeId id_;
    Position position_;
    sim::Scheduler& scheduler_;
    Channel* channel_ = nullptr;
    PhyListener* listener_ = nullptr;

    std::vector<ActiveSignal> active_;  ///< overlapping signals at this node
    int sensed_active_ = 0;  ///< sensed members of active_ (O(1) carrier sense)
    bool transmitting_ = false;
    bool last_busy_ = false;
    bool powered_ = true;
    /// Set once the PHY has ever been power-cycled: from then on, stale
    /// signal-end/tx-end events referring to wiped state are silently
    /// ignored rather than treated as scheduler-integrity violations.
    bool power_cycled_ = false;

    bool rx_active_ = false;
    std::uint64_t rx_signal_id_ = 0;
    double rx_power_w_ = 0.0;
    double rx_threshold_ = 0.0;  ///< linear SINR the locked frame must keep clearing
    double rx_noise_w_ = 0.0;    ///< noise floor under the locked frame
    bool rx_corrupted_ = false;
    bool last_rx_error_ = false;
    double ledger_w_ = 0.0;  ///< incremental total of active signal power

    // Aggregated reception: instead of the sticky whole-frame corruption
    // bit, the PHY tracks the below-threshold intervals of the locked
    // PPDU (interference changes only at signal edges, so the interval
    // endpoints are observed exactly) and maps them onto subframe
    // boundaries at recovery/frame end.
    bool rx_aggregated_ = false;
    SimTime rx_started_at_ = 0;
    SimTime rx_bad_since_ = -1;  ///< start of the open below-threshold interval
    std::uint64_t rx_mpdu_errors_ = 0;       ///< error-model + interference bits
    std::vector<SimTime> rx_mpdu_ends_;      ///< subframe end offsets from lock
    std::uint64_t last_decode_mpdu_errors_ = 0;
    /// Overlap-weighted interferer energy-time integral (power x us) under
    /// the locked frame; only accrued in weighted-overlap mode.
    double rx_interference_integral_ = 0.0;

    std::uint64_t frames_decoded_ = 0;
    std::uint64_t frames_corrupted_ = 0;
    std::uint64_t frames_missed_busy_ = 0;
};

}  // namespace ezflow::phy

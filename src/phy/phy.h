#pragma once

#include <cstdint>

#include "phy/frame.h"
#include "phy/geometry.h"
#include "sim/scheduler.h"

namespace ezflow::phy {

class Channel;

/// Callbacks a MAC implements to drive and observe its PHY.
class PhyListener {
public:
    virtual ~PhyListener() = default;
    /// Medium busy/idle transitions as seen by carrier sense (other nodes'
    /// energy or own transmission).
    virtual void phy_busy_changed(bool busy) = 0;
    /// A frame was decoded at this node — addressed to it or not (the MAC
    /// performs address filtering; promiscuous listeners get the rest).
    virtual void phy_frame_decoded(const Frame& frame) = 0;
    /// Own transmission finished.
    virtual void phy_tx_done(const Frame& frame) = 0;
};

/// Per-node radio. Models a half-duplex 802.11 interface:
///  * carrier sense counts overlapping signals within cs_range;
///  * the node locks onto the first decodable signal while idle;
///  * any overlapping signal within interference range corrupts a
///    reception in progress (no capture);
///  * a transmitting node hears nothing (half duplex) — this is what made
///    the authors use a second radio as sniffer on the testbed.
class NodePhy {
public:
    NodePhy(net::NodeId id, Position position, sim::Scheduler& scheduler);
    NodePhy(const NodePhy&) = delete;
    NodePhy& operator=(const NodePhy&) = delete;

    void set_channel(Channel* channel) { channel_ = channel; }
    void set_listener(PhyListener* listener) { listener_ = listener; }

    net::NodeId id() const { return id_; }
    const Position& position() const { return position_; }

    /// PHY parameters of the attached channel (throws when detached).
    const PhyParams& channel_params() const;

    /// Medium busy for carrier sense: own TX or any sensed energy.
    bool busy() const { return transmitting_ || sensed_active_ > 0; }
    bool transmitting() const { return transmitting_; }

    /// Start transmitting `frame` (taken by value and moved into the
    /// channel's shared per-transmission record — pass an rvalue to keep
    /// the pipeline single-copy). Throws if a transmission is in
    /// progress. Aborts (corrupts) any reception in progress: half-duplex.
    void start_tx(Frame frame);

    // --- channel-facing interface ---
    /// A signal reaching this node started. `decodable`: within delivery
    /// range and the per-link loss roll succeeded. `sensed`: within
    /// carrier-sense range (contributes to energy detection). `power_w`:
    /// received power (two-ray), used for capture decisions against
    /// interference within interference range.
    void signal_start(std::uint64_t signal_id, const Frame& frame, bool decodable, bool sensed,
                      double power_w);
    /// The same signal ended.
    void signal_end(std::uint64_t signal_id, const Frame& frame);
    /// Own transmission ended (scheduled by the channel).
    void tx_end(const Frame& frame);

    /// Whether the most recent sensed signal ended without a correct
    /// decode at this node (drives the MAC's EIFS rule).
    bool last_rx_error() const { return last_rx_error_; }

    // --- statistics ---
    std::uint64_t frames_decoded() const { return frames_decoded_; }
    std::uint64_t frames_corrupted() const { return frames_corrupted_; }
    std::uint64_t frames_missed_busy() const { return frames_missed_busy_; }

private:
    struct ActiveSignal {
        std::uint64_t id;
        double power_w;
        bool sensed;
    };

    void update_busy();
    /// Sum of active signal powers excluding `except_id`.
    double interference_sum(std::uint64_t except_id) const;

    net::NodeId id_;
    Position position_;
    sim::Scheduler& scheduler_;
    Channel* channel_ = nullptr;
    PhyListener* listener_ = nullptr;

    std::vector<ActiveSignal> active_;  ///< overlapping signals at this node
    int sensed_active_ = 0;  ///< sensed members of active_ (O(1) carrier sense)
    bool transmitting_ = false;
    bool last_busy_ = false;

    bool rx_active_ = false;
    std::uint64_t rx_signal_id_ = 0;
    double rx_power_w_ = 0.0;
    bool rx_corrupted_ = false;
    bool last_rx_error_ = false;

    std::uint64_t frames_decoded_ = 0;
    std::uint64_t frames_corrupted_ = 0;
    std::uint64_t frames_missed_busy_ = 0;
};

}  // namespace ezflow::phy

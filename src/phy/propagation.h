#pragma once

#include "phy/geometry.h"

namespace ezflow::phy {

/// Received-power propagation models. The paper's simulations use ns-2
/// defaults: two-ray ground reflection with a 250 m delivery range and a
/// 550 m carrier-sense range. The packet simulator works with range
/// thresholds; these models exist to *derive* consistent thresholds from
/// physical parameters, and are unit-tested against the ns-2 constants.
class PropagationModel {
public:
    virtual ~PropagationModel() = default;
    /// Received power in watts for a transmit power `tx_power_w` at distance d (m).
    virtual double rx_power_w(double tx_power_w, double distance_m) const = 0;
    /// Distance at which rx power crosses `threshold_w` (monotone models only).
    double range_for_threshold(double tx_power_w, double threshold_w) const;
};

/// Friis free-space model: Pr = Pt * (Gt*Gr*lambda^2) / ((4*pi*d)^2 * L).
class FreeSpace final : public PropagationModel {
public:
    FreeSpace(double wavelength_m, double gain_tx = 1.0, double gain_rx = 1.0, double system_loss = 1.0);
    double rx_power_w(double tx_power_w, double distance_m) const override;

private:
    double wavelength_m_;
    double gain_tx_;
    double gain_rx_;
    double system_loss_;
};

/// Two-ray ground reflection: Pr = Pt * Gt*Gr*ht^2*hr^2 / (d^4*L) beyond the
/// crossover distance, Friis below it (the ns-2 implementation).
class TwoRayGround final : public PropagationModel {
public:
    TwoRayGround(double wavelength_m, double antenna_height_m, double gain_tx = 1.0,
                 double gain_rx = 1.0, double system_loss = 1.0);
    double rx_power_w(double tx_power_w, double distance_m) const override;
    double crossover_distance_m() const { return crossover_m_; }

private:
    FreeSpace friis_;
    double height_m_;
    double gain_tx_;
    double gain_rx_;
    double system_loss_;
    double crossover_m_;
};

/// ns-2 default WiFi PHY constants (wireless-phy.cc), used in tests to show
/// that the 250 m / 550 m thresholds follow from the two-ray model.
struct Ns2DefaultPhy {
    static constexpr double kTxPowerW = 0.28183815;
    static constexpr double kRxThresholdW = 3.652e-10;  // ~250 m
    static constexpr double kCsThresholdW = 1.559e-11;  // ~550 m
    static constexpr double kFrequencyHz = 914e6;
    static constexpr double kAntennaHeightM = 1.5;
    static constexpr double kSpeedOfLight = 3e8;
};

}  // namespace ezflow::phy

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "phy/geometry.h"
#include "util/units.h"

namespace ezflow::phy {

/// Received-power propagation models. The paper's simulations use ns-2
/// defaults: two-ray ground reflection with a 250 m delivery range and a
/// 550 m carrier-sense range. Historically the packet simulator worked with
/// range thresholds and these models only *derived* consistent thresholds
/// from physical parameters; the Channel now also consults a
/// PropagationModel per transmission through `link_power_w`, so time- and
/// link-dependent processes (fading) plug in behind the same interface.
class PropagationModel {
public:
    virtual ~PropagationModel() = default;
    /// Received power in watts for a transmit power `tx_power_w` at distance d (m).
    virtual double rx_power_w(double tx_power_w, double distance_m) const = 0;

    /// Received power on the directed link tx -> rx at simulation time
    /// `now`. The default forwards to the pure distance law; time-variant
    /// models (fading) override this and must also report
    /// `time_invariant() == false` so the Channel recomputes per
    /// transmission instead of caching per-link powers.
    virtual double link_power_w(net::NodeId tx, net::NodeId rx, double tx_power_w,
                                double distance_m, util::SimTime now)
    {
        (void)tx;
        (void)rx;
        (void)now;
        return rx_power_w(tx_power_w, distance_m);
    }

    /// True when link_power_w depends only on distance, so per-link powers
    /// may be precomputed once.
    virtual bool time_invariant() const { return true; }

    /// Distance at which rx power crosses `threshold_w` (monotone models only).
    double range_for_threshold(double tx_power_w, double threshold_w) const;
};

/// Friis free-space model: Pr = Pt * (Gt*Gr*lambda^2) / ((4*pi*d)^2 * L).
class FreeSpace final : public PropagationModel {
public:
    FreeSpace(double wavelength_m, double gain_tx = 1.0, double gain_rx = 1.0, double system_loss = 1.0);
    double rx_power_w(double tx_power_w, double distance_m) const override;

private:
    double wavelength_m_;
    double gain_tx_;
    double gain_rx_;
    double system_loss_;
};

/// Two-ray ground reflection: Pr = Pt * Gt*Gr*ht^2*hr^2 / (d^4*L) beyond the
/// crossover distance, Friis below it (the ns-2 implementation).
class TwoRayGround final : public PropagationModel {
public:
    TwoRayGround(double wavelength_m, double antenna_height_m, double gain_tx = 1.0,
                 double gain_rx = 1.0, double system_loss = 1.0);
    double rx_power_w(double tx_power_w, double distance_m) const override;
    double crossover_distance_m() const { return crossover_m_; }

private:
    FreeSpace friis_;
    double height_m_;
    double gain_tx_;
    double gain_rx_;
    double system_loss_;
    double crossover_m_;
};

/// The reference path-loss law the golden-pinned simulations use: the
/// normalized far-field two-ray limit Pr = Pt / max(d, 1)^4 with all gains
/// and heights folded into the unit transmit power. This is *exactly* the
/// expression the Channel historically inlined (`1.0 / d_eff^4`), written
/// with the same operation order so selecting this model keeps every golden
/// byte-identical under `-ffp-contract=off`.
class TwoRayReference final : public PropagationModel {
public:
    double rx_power_w(double tx_power_w, double distance_m) const override;
};

/// Jakes sum-of-sinusoids Rayleigh fading over a base path-loss model.
///
/// Each directed link owns a fixed bank of `oscillators` rays whose arrival
/// angles and phases are drawn once from a private RNG keyed by
/// (seed, tx, rx) — deterministic, independent of every simulator stream,
/// and symmetric links fade independently (distinct keys). The complex
/// channel gain at time t is
///     h(t) = sqrt(1/M) * sum_k exp(j * (w_d * cos(alpha_k) * t + phi_k))
/// and the power gain |h(t)|^2 multiplies the base model's link power.
/// E[|h|^2] = 1, so fading preserves mean power; the envelope |h| is
/// Rayleigh-distributed for moderate M (16 by default, the classic Jakes
/// configuration).
///
/// Degenerate parameters reproduce the base model exactly: with
/// `doppler_hz == 0` the gain computation is bypassed entirely and
/// link_power_w returns the base power bit-for-bit.
class JakesFading final : public PropagationModel {
public:
    JakesFading(std::unique_ptr<PropagationModel> base, double doppler_hz, std::uint64_t seed,
                int oscillators = 16);
    ~JakesFading() override;

    double rx_power_w(double tx_power_w, double distance_m) const override;
    double link_power_w(net::NodeId tx, net::NodeId rx, double tx_power_w, double distance_m,
                        util::SimTime now) override;
    bool time_invariant() const override { return doppler_hz_ == 0.0; }

    /// Power gain |h(t)|^2 on a link at time t; exposed for the
    /// distribution tests.
    double power_gain(net::NodeId tx, net::NodeId rx, util::SimTime now);

private:
    struct Oscillators;  // per-link ray bank, built lazily
    Oscillators& rays_for(net::NodeId tx, net::NodeId rx);

    std::unique_ptr<PropagationModel> base_;
    double doppler_hz_;
    std::uint64_t seed_;
    int oscillators_;
    // Lazily-populated per-link ray banks. Flat-hashed (LinkTable) would
    // also work; the bank is touched once per transmission so a map is off
    // the critical path, but we keep it pointer-stable via unique_ptr.
    std::vector<std::pair<std::uint64_t, std::unique_ptr<Oscillators>>> banks_;
};

/// ns-2 default WiFi PHY constants (wireless-phy.cc), used in tests to show
/// that the 250 m / 550 m thresholds follow from the two-ray model.
struct Ns2DefaultPhy {
    static constexpr double kTxPowerW = 0.28183815;
    static constexpr double kRxThresholdW = 3.652e-10;  // ~250 m
    static constexpr double kCsThresholdW = 1.559e-11;  // ~550 m
    static constexpr double kFrequencyHz = 914e6;
    static constexpr double kAntennaHeightM = 1.5;
    static constexpr double kSpeedOfLight = 3e8;
};

}  // namespace ezflow::phy

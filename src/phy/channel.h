#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "phy/frame.h"
#include "phy/frame_record.h"
#include "phy/phy.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace ezflow::phy {

/// The shared wireless medium. Dispatches every transmission to the nodes
/// within carrier-sense or interference range, decides decodability per
/// receiver (delivery range + per-link loss roll) and schedules signal-end
/// events. The channel never filters by MAC address — everyone in range
/// hears everything, which is exactly the property EZ-Flow's BOE exploits.
///
/// Node positions are fixed for the lifetime of a run (NodePhy has no
/// position setter), so the per-transmitter reachability set — which
/// receivers can sense or be interfered by it, with their precomputed
/// two-ray powers — is static. Transmissions iterate only that culled
/// neighbour list instead of every attached PHY, in attach order, and the
/// per-link loss rolls are drawn for exactly the same receivers as the
/// full broadcast would (out-of-range nodes never drew), so the Rng
/// stream and all outcomes are identical while per-transmission cost
/// drops from O(nodes) to O(reachable neighbours).
class Channel {
public:
    Channel(sim::Scheduler& scheduler, util::Rng rng, PhyParams params);
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Register a node's PHY (id-indexed duplicate check, O(1)). The PHY
    /// must outlive the channel and must not move afterwards; reachability
    /// sets are rebuilt lazily after every attach.
    void attach(NodePhy& phy);

    /// Frame-loss probability for the directed link tx -> rx. Models link
    /// quality (distance, obstacles); used to calibrate the heterogeneous
    /// testbed capacities of Table 1.
    void set_link_loss(net::NodeId tx, net::NodeId rx, double loss_probability);
    double link_loss(net::NodeId tx, net::NodeId rx) const;

    /// Two-state Gilbert–Elliott bursty loss for the directed link
    /// tx -> rx, replacing any static loss on that link: the link flips
    /// between a good and a bad state as a continuous-time Markov chain
    /// (rates per second) with a per-state frame loss probability. Models
    /// the channel variability the paper cites as a reason the BOE must
    /// tolerate missed sniffs.
    struct GilbertParams {
        double to_bad_per_s = 0.1;   ///< good -> bad transition rate
        double to_good_per_s = 1.0;  ///< bad -> good transition rate
        double loss_good = 0.0;
        double loss_bad = 0.8;
    };
    void set_link_gilbert(net::NodeId tx, net::NodeId rx, GilbertParams params);

    /// Stationary loss fraction of a Gilbert link (for tests/calibration).
    static double gilbert_stationary_loss(const GilbertParams& params);

    /// Broadcast a frame from `sender`. Called by NodePhy::start_tx.
    /// Takes the frame by value: it is moved into a pooled FrameRecord
    /// shared by every receiver's signal-end event (single-copy fan-out).
    void transmit(NodePhy& sender, Frame frame);

    /// Disable (or re-enable) the reachability cull, falling back to the
    /// full-broadcast scan over every attached PHY. The outcomes are
    /// identical either way — this exists so tests can prove exactly that.
    void set_reachability_cull(bool enabled) { cull_enabled_ = enabled; }
    bool reachability_cull() const { return cull_enabled_; }

    /// Size of `tx`'s reachability set (receivers within carrier-sense or
    /// interference range). Exposed for tests and benchmarks.
    std::size_t reachable_count(net::NodeId tx);

    const PhyParams& params() const { return params_; }

    std::uint64_t transmissions() const { return transmissions_; }
    std::uint64_t data_transmissions() const { return data_transmissions_; }

    /// The per-transmission FrameRecord pool (stats for tests/benches).
    const FramePool& frame_pool() const { return frame_pool_; }

private:
    struct GilbertState {
        GilbertParams params;
        bool bad = false;
        util::SimTime last_update = 0;
    };

    /// Current loss probability of the link, evolving any Gilbert state.
    double sample_link_loss(net::NodeId tx, net::NodeId rx);

    /// One receiver a transmitter can affect, with the geometry-derived
    /// facts transmit() needs, precomputed once per topology.
    struct ReachEntry {
        NodePhy* phy;
        bool in_delivery;  ///< within tx_range: decode + per-link loss roll
        bool sensed;       ///< within cs_range: counts for energy detection
        double power_w;    ///< two-ray received power (capture decisions)
    };

    /// Rebuild the per-transmitter reachability sets when stale.
    void ensure_reach();

    sim::Scheduler& scheduler_;
    util::Rng rng_;
    PhyParams params_;
    std::vector<NodePhy*> phys_;
    std::unordered_map<net::NodeId, std::size_t> index_by_id_;  ///< attach index per node id
    std::vector<std::vector<ReachEntry>> reach_;  ///< per transmitter, in attach order
    bool cull_enabled_ = true;
    std::map<std::pair<net::NodeId, net::NodeId>, double> link_loss_;
    std::map<std::pair<net::NodeId, net::NodeId>, GilbertState> gilbert_;
    FramePool frame_pool_;
    std::uint64_t next_signal_id_ = 1;
    std::uint64_t transmissions_ = 0;
    std::uint64_t data_transmissions_ = 0;
};

}  // namespace ezflow::phy

#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "phy/frame.h"
#include "phy/phy.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace ezflow::phy {

/// The shared wireless medium. Dispatches every transmission to all nodes
/// within carrier-sense range, decides decodability per receiver (delivery
/// range + per-link loss roll) and schedules signal-end events. The channel
/// never filters by MAC address — everyone in range hears everything, which
/// is exactly the property EZ-Flow's BOE exploits.
class Channel {
public:
    Channel(sim::Scheduler& scheduler, util::Rng rng, PhyParams params);
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Register a node's PHY. The PHY must outlive the channel.
    void attach(NodePhy& phy);

    /// Frame-loss probability for the directed link tx -> rx. Models link
    /// quality (distance, obstacles); used to calibrate the heterogeneous
    /// testbed capacities of Table 1.
    void set_link_loss(net::NodeId tx, net::NodeId rx, double loss_probability);
    double link_loss(net::NodeId tx, net::NodeId rx) const;

    /// Two-state Gilbert–Elliott bursty loss for the directed link
    /// tx -> rx, replacing any static loss on that link: the link flips
    /// between a good and a bad state as a continuous-time Markov chain
    /// (rates per second) with a per-state frame loss probability. Models
    /// the channel variability the paper cites as a reason the BOE must
    /// tolerate missed sniffs.
    struct GilbertParams {
        double to_bad_per_s = 0.1;   ///< good -> bad transition rate
        double to_good_per_s = 1.0;  ///< bad -> good transition rate
        double loss_good = 0.0;
        double loss_bad = 0.8;
    };
    void set_link_gilbert(net::NodeId tx, net::NodeId rx, GilbertParams params);

    /// Stationary loss fraction of a Gilbert link (for tests/calibration).
    static double gilbert_stationary_loss(const GilbertParams& params);

    /// Broadcast a frame from `sender`. Called by NodePhy::start_tx.
    void transmit(NodePhy& sender, const Frame& frame);

    const PhyParams& params() const { return params_; }

    std::uint64_t transmissions() const { return transmissions_; }
    std::uint64_t data_transmissions() const { return data_transmissions_; }

private:
    struct GilbertState {
        GilbertParams params;
        bool bad = false;
        util::SimTime last_update = 0;
    };

    /// Current loss probability of the link, evolving any Gilbert state.
    double sample_link_loss(net::NodeId tx, net::NodeId rx);

    sim::Scheduler& scheduler_;
    util::Rng rng_;
    PhyParams params_;
    std::vector<NodePhy*> phys_;
    std::map<std::pair<net::NodeId, net::NodeId>, double> link_loss_;
    std::map<std::pair<net::NodeId, net::NodeId>, GilbertState> gilbert_;
    std::uint64_t next_signal_id_ = 1;
    std::uint64_t transmissions_ = 0;
    std::uint64_t data_transmissions_ = 0;
};

}  // namespace ezflow::phy

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "phy/error_model.h"
#include "phy/frame.h"
#include "phy/frame_record.h"
#include "phy/link_table.h"
#include "phy/models.h"
#include "phy/phy.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace ezflow::phy {

/// The shared wireless medium. Dispatches every transmission to the nodes
/// within carrier-sense or interference range, decides decodability per
/// receiver (delivery range + per-link error model roll) and schedules
/// signal-end events. The channel never filters by MAC address — everyone
/// in range hears everything, which is exactly the property EZ-Flow's BOE
/// exploits.
///
/// The physics is pluggable behind three model interfaces, installed via
/// `set_models` / the individual setters:
///  * PropagationModel — per-link received power; null means the inlined
///    reference two-ray 1/d^4 (the golden-pinned fast path). Time-variant
///    models (fading) are re-evaluated per transmission.
///  * ErrorModel — per-directed-link loss process (`set_link_error_model`);
///    the Gilbert–Elliott chain is one implementation, installed by the
///    `make_gilbert` factory.
///  * RateManager — per-link data bitrate selection, consulted by the MAC
///    through NodePhy; null means the fixed PHY default.
/// Interference semantics are selected by `PhyModelConfig::Interference`:
/// the reference start-time capture against the linear threshold, or the
/// cumulative-SINR ledger (capture_threshold_db + per-rate decode floors +
/// noise floor).
///
/// Node positions are fixed for the lifetime of a run (NodePhy has no
/// position setter), so the per-transmitter reachability set — which
/// receivers can sense or be interfered by it, with their precomputed
/// powers — is static (time-variant propagation stores the distance and
/// re-derives power at transmit time). Transmissions iterate only that
/// culled neighbour list instead of every attached PHY, in attach order,
/// and the per-link loss rolls are drawn for exactly the same receivers as
/// the full broadcast would (out-of-range nodes never drew), so the Rng
/// stream and all outcomes are identical while per-transmission cost
/// drops from O(nodes) to O(reachable neighbours).
class Channel {
public:
    Channel(sim::Scheduler& scheduler, util::Rng rng, PhyParams params);
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Register a node's PHY (id-indexed duplicate check, O(1)). The PHY
    /// must outlive the channel and must not move afterwards; reachability
    /// sets are rebuilt lazily after every attach.
    void attach(NodePhy& phy);

    /// Remove a PHY from the medium (node death). The reachability cache
    /// is invalidated symmetrically with attach — a same-size detach +
    /// attach cycle can never serve stale sets — and signal-end events
    /// already in flight keep their pooled frame references, so they
    /// drain without touching the channel. Throws if not attached.
    void detach(NodePhy& phy);

    /// Whether this PHY is currently attached to the medium.
    bool is_attached(const NodePhy& phy) const;

    // --- pluggable models ---
    /// Install the full model selection in one call. A reference config is
    /// an exact no-op (models stay null, semantics stay the inlined
    /// golden-pinned path). `network_seed` keys model-private randomness.
    void set_models(const PhyModelConfig& config, std::uint64_t network_seed);

    /// Propagation model for link powers; nullptr restores the inlined
    /// reference two-ray expression.
    void set_propagation_model(std::unique_ptr<PropagationModel> model);
    /// Interference/capture semantics (reference vs cumulative SINR).
    void set_interference_mode(PhyModelConfig::Interference mode) { interference_ = mode; }
    PhyModelConfig::Interference interference_mode() const { return interference_; }
    /// Rate manager consulted by MACs via NodePhy; nullptr = fixed default.
    void set_rate_manager(std::unique_ptr<RateManager> manager)
    {
        rate_manager_ = std::move(manager);
    }
    RateManager* rate_manager() { return rate_manager_.get(); }

    /// Install a frame error process on the directed link tx -> rx,
    /// replacing any previous one. The model's `reset` hook runs
    /// immediately against the channel clock and RNG (state machines draw
    /// their initial state there).
    void set_link_error_model(net::NodeId tx, net::NodeId rx, std::unique_ptr<ErrorModel> model);

    /// Convenience: time-invariant loss probability for the directed link
    /// tx -> rx (installs a StaticLoss model). Models link quality
    /// (distance, obstacles); used to calibrate the heterogeneous testbed
    /// capacities of Table 1.
    void set_link_loss(net::NodeId tx, net::NodeId rx, double loss_probability);
    /// Long-run mean loss of the link's installed error model (0 if none).
    double link_loss(net::NodeId tx, net::NodeId rx) const;

    using GilbertParams = phy::GilbertParams;

    /// Stationary loss fraction of a Gilbert link (for tests/calibration).
    static double gilbert_stationary_loss(const GilbertParams& params)
    {
        return phy::gilbert_stationary_loss(params);
    }

    /// Broadcast a frame from `sender`. Called by NodePhy::start_tx.
    /// Takes the frame by value: it is moved into a pooled FrameRecord
    /// shared by every receiver's signal-end event (single-copy fan-out).
    void transmit(NodePhy& sender, Frame frame);

    // --- connected-cut sharding: boundary-proxy (ghost) layer ---
    /// Observer of boundary transmissions. Called synchronously inside
    /// transmit() for senders named in `set_mirror_hook`, after the local
    /// fan-out; the Network's hook posts the mirror into the neighbouring
    /// shards through the sharded engine's mailbox.
    using MirrorHook = std::function<void(const NodePhy& sender, const Frame& frame,
                                          SimTime duration_us, std::uint64_t signal_id)>;
    /// Mark the node ids whose transmissions must be mirrored into
    /// foreign shards and install the hook that performs the mirroring.
    /// `boundary_senders` must be sorted ascending.
    void set_mirror_hook(std::vector<net::NodeId> boundary_senders, MirrorHook hook);

    /// Inject a foreign shard's boundary transmission as a read-only
    /// ghost signal: every attached PHY within interference range of
    /// `foreign_pos` receives a pure SINR-ledger RxEvent (no decode, no
    /// carrier sense, no error-model roll — and therefore no RNG
    /// consumption), with signal-end scheduled `duration_us` later.
    /// `ghost_signal_id` must be namespaced by the caller so it can never
    /// collide with this channel's own signal ids. Throws if any local
    /// PHY sits within sense/delivery range of the foreign node — that
    /// would mean the shard plan cut a non-interference edge.
    void inject_ghost(net::NodeId foreign_id, const Position& foreign_pos, Frame frame,
                      SimTime duration_us, std::uint64_t ghost_signal_id);

    /// Rate for the next data attempt on tx -> rx (0 = PHY default).
    std::int64_t data_bitrate(net::NodeId tx, net::NodeId rx)
    {
        return rate_manager_ ? rate_manager_->bitrate_bps(tx, rx) : 0;
    }
    /// ACK verdict of the most recent attempt on tx -> rx.
    void report_tx_result(net::NodeId tx, net::NodeId rx, bool success)
    {
        if (rate_manager_) rate_manager_->report(tx, rx, success);
    }

    /// Disable (or re-enable) the reachability cull, falling back to the
    /// full-broadcast scan over every attached PHY. The outcomes are
    /// identical either way — this exists so tests can prove exactly that.
    void set_reachability_cull(bool enabled) { cull_enabled_ = enabled; }
    bool reachability_cull() const { return cull_enabled_; }

    /// Size of `tx`'s reachability set (receivers within carrier-sense or
    /// interference range). Exposed for tests and benchmarks.
    std::size_t reachable_count(net::NodeId tx);

    const PhyParams& params() const { return params_; }

    std::uint64_t transmissions() const { return transmissions_; }
    std::uint64_t data_transmissions() const { return data_transmissions_; }

    /// The per-transmission FrameRecord pool (stats for tests/benches).
    const FramePool& frame_pool() const { return frame_pool_; }

private:
    /// Current loss probability of the link, evolving any stateful model.
    double sample_link_loss(net::NodeId tx, net::NodeId rx);

    /// Received power on tx -> rx at distance d: the installed propagation
    /// model, or the inlined reference two-ray 1/max(d,1)^4.
    double link_power(net::NodeId tx, net::NodeId rx, double distance_m);

    /// Linear SINR threshold a frame must clear at its receivers: the
    /// reference linear capture threshold, or (SINR mode) the max of the
    /// dB capture threshold and the frame rate's decode floor.
    double frame_capture_threshold(const Frame& frame) const;

    /// One receiver a transmitter can affect, with the geometry-derived
    /// facts transmit() needs, precomputed once per topology.
    struct ReachEntry {
        NodePhy* phy;
        bool in_delivery;   ///< within tx_range: decode + per-link loss roll
        bool sensed;        ///< within cs_range: counts for energy detection
        double power_w;     ///< received power (capture decisions); stale for
                            ///< time-variant propagation — see distance_m
        double distance_m;  ///< link distance, for time-variant re-evaluation
    };

    /// Rebuild the per-transmitter reachability sets when stale.
    void ensure_reach();

    /// One local receiver of a foreign boundary node's ghost signals,
    /// with its precomputed power. Cached per foreign node (positions are
    /// fixed for a run); invalidated symmetrically with reach_.
    struct GhostReachEntry {
        NodePhy* phy;
        double power_w;
    };

    sim::Scheduler& scheduler_;
    util::Rng rng_;
    PhyParams params_;
    std::vector<NodePhy*> phys_;
    std::unordered_map<net::NodeId, std::size_t> index_by_id_;  ///< attach index per node id
    std::vector<std::vector<ReachEntry>> reach_;  ///< per transmitter, in attach order
    std::unordered_map<net::NodeId, std::vector<GhostReachEntry>> ghost_reach_;
    std::vector<net::NodeId> mirror_senders_;  ///< sorted; mirror their transmissions
    MirrorHook mirror_hook_;
    bool cull_enabled_ = true;
    LinkTable<std::unique_ptr<ErrorModel>> error_models_;
    std::unique_ptr<PropagationModel> propagation_;  ///< null = reference two-ray
    std::unique_ptr<RateManager> rate_manager_;      ///< null = fixed default
    PhyModelConfig::Interference interference_ = PhyModelConfig::Interference::kReference;
    FramePool frame_pool_;
    std::uint64_t next_signal_id_ = 1;
    std::uint64_t transmissions_ = 0;
    std::uint64_t data_transmissions_ = 0;
};

}  // namespace ezflow::phy

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace ezflow::phy {

/// Flat open-addressing hash table keyed by a directed link (tx, rx).
///
/// The per-signal hot path of the Channel consults per-link model state
/// (error models, fading oscillators, rate tables) once per reachable
/// receiver per transmission. A std::map there costs an ordered-tree
/// walk with a pair comparator per lookup; this table packs the link
/// into one 64-bit key, hashes it with a SplitMix64 finalizer and probes
/// linearly through a power-of-two slot array — no allocation on lookup,
/// one cache line for the common hit/miss. Slots are never erased
/// (models are installed, then live for the run), which keeps probing
/// tombstone-free. bench/micro_phy.cpp carries the lookup-rate
/// comparison against the ordered map it replaced.
template <typename T>
class LinkTable {
public:
    LinkTable() = default;

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /// Pointer to the value for tx -> rx, or nullptr when absent.
    T* find(net::NodeId tx, net::NodeId rx)
    {
        if (size_ == 0) return nullptr;
        const std::uint64_t key = link_key(tx, rx);
        for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
            Slot& slot = slots_[i];
            if (!slot.used) return nullptr;
            if (slot.key == key) return &slot.value;
        }
    }
    const T* find(net::NodeId tx, net::NodeId rx) const
    {
        return const_cast<LinkTable*>(this)->find(tx, rx);
    }

    /// Insert or overwrite the value for tx -> rx; returns a reference to
    /// the stored value.
    T& insert_or_assign(net::NodeId tx, net::NodeId rx, T value)
    {
        if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
        const std::uint64_t key = link_key(tx, rx);
        for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
            Slot& slot = slots_[i];
            if (!slot.used) {
                slot.used = true;
                slot.key = key;
                slot.value = std::move(value);
                ++size_;
                return slot.value;
            }
            if (slot.key == key) {
                slot.value = std::move(value);
                return slot.value;
            }
        }
    }

    /// Visit every (key, value) pair, in unspecified order.
    template <typename Fn>
    void for_each(Fn&& fn)
    {
        for (Slot& slot : slots_)
            if (slot.used) fn(tx_of(slot.key), rx_of(slot.key), slot.value);
    }

    static std::uint64_t link_key(net::NodeId tx, net::NodeId rx)
    {
        if (tx < 0 || rx < 0) throw std::invalid_argument("LinkTable: negative node id");
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tx)) << 32) |
               static_cast<std::uint64_t>(static_cast<std::uint32_t>(rx));
    }
    static net::NodeId tx_of(std::uint64_t key) { return static_cast<net::NodeId>(key >> 32); }
    static net::NodeId rx_of(std::uint64_t key)
    {
        return static_cast<net::NodeId>(key & 0xFFFFFFFFULL);
    }

private:
    struct Slot {
        std::uint64_t key = 0;
        T value{};
        bool used = false;
    };

    std::size_t mask() const { return slots_.size() - 1; }

    std::size_t index_of(std::uint64_t key) const
    {
        // SplitMix64 finalizer: full-avalanche, so linear probing sees a
        // uniform spread even for dense sequential node ids.
        std::uint64_t h = key + 0x9e3779b97f4a7c15ULL;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
        h ^= h >> 31;
        return static_cast<std::size_t>(h) & mask();
    }

    void grow()
    {
        std::vector<Slot> old = std::move(slots_);
        std::vector<Slot> fresh(old.empty() ? 16 : old.size() * 2);
        slots_.swap(fresh);
        size_ = 0;
        for (Slot& slot : old) {
            if (!slot.used) continue;
            const std::uint64_t key = slot.key;
            for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
                if (slots_[i].used) continue;
                slots_[i].used = true;
                slots_[i].key = key;
                slots_[i].value = std::move(slot.value);
                ++size_;
                break;
            }
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

}  // namespace ezflow::phy

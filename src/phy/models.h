#pragma once

#include <cstdint>
#include <memory>

#include "phy/propagation.h"
#include "phy/rate_manager.h"

namespace ezflow::phy {

/// Selection of pluggable PHY models for a simulation. The default value is
/// the golden-pinned reference configuration — binary-range two-ray power,
/// start-time capture against the linear threshold, fixed PHY bitrate —
/// and `Network::set_phy_models` with `is_reference() == true` is an exact
/// no-op, so every existing golden stays byte-identical.
struct PhyModelConfig {
    enum class Propagation {
        kTwoRay,  ///< reference: normalized two-ray 1/d^4, time-invariant
        kJakes,   ///< Jakes/Rayleigh fading over two-ray (doppler 0 = two-ray)
    };
    enum class Interference {
        kReference,   ///< capture vs linear threshold, no noise, no rate floors
        kSinrLedger,  ///< cumulative SINR vs capture_threshold_db + rate SNR floors
    };
    enum class Rate {
        kFixed,     ///< every frame at the PHY default bitrate
        kMinstrel,  ///< per-link Minstrel-style probing
    };

    Propagation propagation = Propagation::kTwoRay;
    Interference interference = Interference::kReference;
    Rate rate = Rate::kFixed;

    double jakes_doppler_hz = 0.0;  ///< 0 reproduces the base model exactly
    int jakes_oscillators = 16;
    /// Seed for model-private randomness (fading ray banks). 0 derives a
    /// key from the network seed; model RNGs never touch simulator streams.
    std::uint64_t model_seed = 0;
    /// Noise floor override for SINR mode; negative means keep
    /// `PhyParams::noise_floor_w`.
    double noise_floor_w = -1.0;
    /// Partial-overlap interference weighting for the SINR ledger: an
    /// interferer overlapping x% of a locked frame contributes x-weighted
    /// energy (settled at frame end) instead of full power at any overlap
    /// instant. Only meaningful with Interference::kSinrLedger.
    bool weighted_overlap = false;
    int minstrel_probe_period = 10;
    double minstrel_ewma = 0.25;

    bool is_reference() const
    {
        return propagation == Propagation::kTwoRay && interference == Interference::kReference &&
               rate == Rate::kFixed;
    }
};

/// Build the configured propagation model, or nullptr for the reference
/// configuration (the Channel keeps its inlined two-ray fast path).
std::unique_ptr<PropagationModel> make_propagation(const PhyModelConfig& config,
                                                   std::uint64_t network_seed);

/// Build the configured rate manager, or nullptr for the reference
/// configuration (frames stay unstamped at the PHY default rate).
std::unique_ptr<RateManager> make_rate_manager(const PhyModelConfig& config);

}  // namespace ezflow::phy
